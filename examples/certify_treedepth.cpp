// Certifying "treedepth <= t" (Theorem 2.4): generate graphs of bounded
// treedepth, run the ancestor-list scheme, and print the O(t log n)
// certificate sizes; then demonstrate the prover refusing a no-instance and
// the verifier rejecting forged certificates.
#include <cstdio>

#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/treedepth/exact.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  Rng rng(7);
  const std::size_t t = 5;

  std::printf("certifying treedepth <= %zu (Theorem 2.4)\n", t);
  std::printf("%8s %14s %20s\n", "n", "max cert bits", "bits / (t log2 n)");
  for (std::size_t n : {32u, 128u, 512u, 2048u, 8192u}) {
    auto inst = make_bounded_treedepth_graph(n, t, 0.3, rng);
    assign_random_ids(inst.graph, rng);
    RootedTree witness = inst.elimination_tree;
    TreedepthScheme scheme(t, [witness](const Graph&) { return witness; });
    const std::size_t bits = certified_size_bits(scheme, inst.graph);
    std::printf("%8zu %14zu %20.2f\n", n, bits,
                static_cast<double>(bits) / (t * bits_for(n)));
  }

  // No-instance: the path P_63 has treedepth 6 > 5.
  Graph deep = make_path(63);
  assign_random_ids(deep, rng);
  TreedepthScheme strict(t);
  std::printf("\nP_63 (treedepth %zu): prover %s\n", treedepth_of_path(63),
              strict.assign(deep).has_value() ? "CHEATED" : "correctly refuses");

  // Adversarial certificates on a small no-instance.
  Graph c8 = make_cycle(8);  // treedepth 4
  assign_random_ids(c8, rng);
  TreedepthScheme tiny(3);
  const auto forged = attack_soundness(tiny, c8, nullptr, rng);
  std::printf("forgery search on C_8 against 'td<=3': %s\n",
              forged.has_value() ? "FORGED (bug!)" : "all attacks rejected");
  return forged.has_value() ? 1 : 0;
}
