// The Section 7 machinery, executable: build the Theorem 2.5 gadget, verify
// Lemma 7.3 with the exact treedepth solver and the cops-and-robber game,
// then run the cut-and-plug pigeonhole attack against an undersized scheme on
// the Theorem 2.3 family.
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/tree_iso.hpp"
#include "src/lowerbounds/constructions.hpp"
#include "src/lowerbounds/framework.hpp"
#include "src/lowerbounds/tree_enumeration.hpp"
#include "src/treedepth/cops_robber.hpp"
#include "src/treedepth/exact.hpp"
#include "src/util/rng.hpp"

namespace {

// The undersized scheme from the tests: a shared fingerprint, agreement-only
// verification. Proposition 7.2 says nothing this small can be sound.
class TinyFingerprintScheme final : public lcert::Scheme {
 public:
  explicit TinyFingerprintScheme(std::size_t bits) : bits_(bits) {}
  std::string name() const override { return "tiny-fingerprint"; }
  bool holds(const lcert::Graph& g) const override {
    return lcert::has_fixed_point_free_automorphism(g);
  }
  std::optional<std::vector<lcert::Certificate>> assign(const lcert::Graph& g) const override {
    if (!holds(g)) return std::nullopt;
    std::uint64_t h = 1469598103934665603ull;
    for (char c : lcert::canonical_tree_encoding(g))
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    lcert::BitWriter w;
    w.write(h & ((std::uint64_t{1} << bits_) - 1), static_cast<unsigned>(bits_));
    return std::vector<lcert::Certificate>(g.vertex_count(),
                                           lcert::Certificate::from_writer(w));
  }
  bool verify(const lcert::ViewRef& view) const override {
    for (const auto& nb : view.neighbors())
      if (!(*nb.certificate == *view.certificate)) return false;
    return view.certificate->bit_size == bits_;
  }

 private:
  std::size_t bits_;
};

}  // namespace

int main() {
  using namespace lcert;

  // Lemma 7.3 on the smallest gadget (17 vertices): equal matchings -> td 5,
  // unequal -> td >= 6, cross-checked by two independent solvers.
  TreedepthFamily family(2);
  const std::vector<bool> zero{false}, one{true};
  for (const auto& [sa, sb] : {std::pair{zero, zero}, std::pair{zero, one}}) {
    const CcInstance inst = family.build(sa, sb);
    const std::size_t td = exact_treedepth(inst.graph);
    const std::size_t game = cops_and_robber_number(inst.graph);
    std::printf("G(s_A%s=s_B): treedepth = %zu, cops-and-robber = %zu\n",
                sa == sb ? "=" : "!", td, game);
  }

  // Implied Theorem 2.5 bound: ell / r = log2(n!) / (4n+1).
  std::printf("\nimplied Omega(log n) bound from the reduction:\n%8s %10s %8s %12s\n",
              "n", "ell", "r", "ell/r");
  for (std::size_t n : {8u, 32u, 128u, 512u}) {
    TreedepthFamily f(n);
    std::printf("%8zu %10zu %8zu %12.2f\n", n, f.string_length(), f.boundary_size(),
                static_cast<double>(f.string_length()) / f.boundary_size());
  }

  // Cut-and-plug on the Theorem 2.3 family: a 2-bit scheme collides among 32
  // strings, and the splice forges an accepting no-instance assignment.
  FpfAutomorphismFamily fpf(5);
  TinyFingerprintScheme weak(2);
  std::vector<std::vector<bool>> strings;
  for (std::uint64_t code = 0; code < 32; ++code) {
    std::vector<bool> s(5);
    for (std::size_t i = 0; i < 5; ++i) s[i] = (code >> i) & 1;
    strings.push_back(s);
  }
  const auto attack = cut_and_plug_attack(weak, fpf, strings);
  if (attack.has_value()) {
    const CcInstance no = fpf.build(attack->s_a, attack->s_b);
    const bool accepted = verify_assignment(weak, no.graph, attack->forged).all_accept;
    std::printf("\ncut-and-plug: boundary collision found; spliced certificates %s"
                " a no-instance — the contradiction behind Theorem 2.3.\n",
                accepted ? "ACCEPT" : "reject");
  } else {
    std::printf("\ncut-and-plug: no collision (unexpected for a 2-bit scheme)\n");
  }
  return 0;
}
