// LCL-flavoured example: certifying a leader election on a tree network.
// "Exactly one vertex is marked" is a *global* constraint — a radius-1
// verifier cannot check it without help — yet the labeled Theorem 2.2 scheme
// certifies it with 3-bit certificates.
#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/lcl/lcl_scheme.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  Rng rng(3);

  LabeledTreeInstance inst;
  inst.tree = make_random_tree(40, rng);
  assign_random_ids(inst.tree, rng);
  inst.labels.assign(40, 0);
  inst.labels[17] = 1;  // the elected leader

  LclTreeScheme scheme(standard_labeled_automata()[0]);  // unique-leader
  std::printf("instance: tree on 40 vertices, vertex 17 marked as leader\n");

  auto certs = scheme.assign(inst);
  if (!certs.has_value()) {
    std::printf("prover failed (bug)\n");
    return 1;
  }
  auto outcome = verify_labeled_assignment(scheme, inst, *certs);
  std::printf("certificates: %zu bits per vertex; all accept: %s\n",
              outcome.max_certificate_bits, outcome.all_accept ? "yes" : "no");

  // A second usurper appears: the same certificates cannot survive.
  LabeledTreeInstance usurped = inst;
  usurped.labels[3] = 1;
  auto bad = verify_labeled_assignment(scheme, usurped, *certs);
  std::printf("after marking a second leader: %zu vertices reject\n", bad.rejecting.size());

  // And no certificates at all can make two leaders pass.
  std::printf("prover on the two-leader instance: %s\n",
              scheme.assign(usurped).has_value() ? "CHEATED (bug)" : "correctly refuses");
  return bad.all_accept ? 1 : 0;
}
