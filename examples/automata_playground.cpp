// Tree-automata playground: run every library UOP automaton over a zoo of
// trees and print the acceptance matrix plus one accepting run, exercising
// the nondeterministic run finder (interval boxes + bounded flow).
#include <cstdio>

#include "src/automata/library.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  Rng rng(5);

  struct Zoo {
    const char* name;
    Graph tree;
  };
  const std::vector<Zoo> zoo = {
      {"P_8", make_path(8)},
      {"P_9", make_path(9)},
      {"star_9", make_star(9)},
      {"caterpillar_4x2", make_caterpillar(4, 2)},
      {"random_16", make_random_tree(16, rng)},
  };

  const auto automata = standard_tree_automata();
  std::printf("%-18s", "");
  for (const auto& a : automata) std::printf(" %-16s", a.name.c_str());
  std::printf("\n");

  for (const auto& z : zoo) {
    std::printf("%-18s", z.name);
    for (const auto& a : automata) {
      bool accepted = false;
      for (Vertex root : a.good_roots(z.tree)) {
        if (accepts(a.automaton, RootedTree::from_graph(z.tree, root))) {
          accepted = true;
          break;
        }
      }
      const bool truth = a.oracle(z.tree);
      std::printf(" %-16s", accepted == truth ? (accepted ? "yes" : "no") : "MISMATCH");
    }
    std::printf("\n");
  }

  // Show one accepting run in detail: perfect matching on P_8.
  const auto& pm = automata[4];
  const RootedTree p8 = RootedTree::from_graph(make_path(8), 0);
  const auto run = find_accepting_run(pm.automaton, p8);
  if (run.has_value()) {
    std::printf("\naccepting run of '%s' on P_8 rooted at 0:\n", pm.name.c_str());
    for (std::size_t v = 0; v < p8.size(); ++v)
      std::printf("  vertex %zu (depth %zu): state %s\n", v, p8.depth(v),
                  pm.automaton.state_names[(*run)[v]].c_str());
  }
  return 0;
}
