// Quickstart: certify an MSO property on a tree with O(1)-bit certificates
// (Theorem 2.2), watch the verification succeed, then tamper with one
// certificate and watch a vertex reject.
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  Rng rng(2022);

  // A tree that certainly has a perfect matching: a random tree doubled, with
  // every vertex joined to its copy (match each vertex with its twin).
  const std::size_t half = 12;
  const Graph base = make_random_tree(half, rng);
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (auto [u, v] : base.edges()) edges.emplace_back(u, v);
  for (Vertex v = 1; v < half; ++v) edges.emplace_back(v, v + half);
  edges.emplace_back(0, half);
  Graph tree(2 * half, edges);
  assign_random_ids(tree, rng);
  std::printf("network: tree on %zu vertices\n", tree.vertex_count());

  // The MSO property "the tree has a perfect matching", as a UOP tree
  // automaton (the compiled form Theorem 2.2 uses).
  const auto library = standard_tree_automata();
  const NamedAutomaton& pm = library[4];
  std::printf("property: %s; holds = %s\n", pm.name.c_str(),
              pm.oracle(tree) ? "yes" : "no");

  MsoTreeScheme scheme(pm);
  const auto certs = scheme.assign(tree);
  if (!certs.has_value()) {
    std::printf("prover: no accepting run (property fails) — nothing to certify\n");
    return 0;
  }

  const auto outcome = verify_assignment(scheme, tree, *certs);
  std::printf("honest certificates: %zu bits per vertex, all %zu vertices accept: %s\n",
              outcome.max_certificate_bits, tree.vertex_count(),
              outcome.all_accept ? "true" : "false");

  // Tamper: flip one bit of vertex 0's certificate.
  auto tampered = *certs;
  tampered[0].bytes[0] ^= 0x80;
  const auto bad = verify_assignment(scheme, tree, tampered);
  std::printf("after flipping one bit: %zu vertices reject\n", bad.rejecting.size());
  return bad.all_accept ? 1 : 0;  // tampering must be caught
}
