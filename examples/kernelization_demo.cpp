// The Section 6 pipeline, end to end: take a bounded-treedepth graph, build
// its k-reduced kernel, audit G ≃_k kernel with Ehrenfeucht–Fraïssé games,
// and certify an FO property through the kernel scheme (Theorem 2.6).
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/kernel/reduce.hpp"
#include "src/logic/ef_game.hpp"
#include "src/logic/eval.hpp"
#include "src/logic/formulas.hpp"
#include "src/schemes/kernel_scheme.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  Rng rng(11);

  // A graph of treedepth <= 3 with ~60 vertices.
  auto inst = make_bounded_treedepth_graph(60, 3, 0.4, rng);
  assign_random_ids(inst.graph, rng);
  const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
  std::printf("graph: n=%zu m=%zu, coherent 3-model in hand\n",
              inst.graph.vertex_count(), inst.graph.edge_count());

  // Kernelize at several thresholds.
  for (std::size_t k : {1u, 2u, 3u}) {
    const Kernelization kz = k_reduce(inst.graph, model, k);
    std::printf("k=%zu: kernel has %zu vertices (%zu prunings, %zu end types)\n", k,
                kz.kernel.vertex_count(), kz.pruning_operations, kz.interner.size());
  }

  // Audit Proposition 6.3 on a small instance where EF games are affordable.
  auto small = make_bounded_treedepth_graph(12, 3, 0.5, rng);
  const RootedTree small_model = make_coherent(small.graph, small.elimination_tree);
  const Kernelization kz2 = k_reduce(small.graph, small_model, 2);
  std::printf("EF audit (n=12, k=2): G =_2 kernel? %s\n",
              ef_equivalent(small.graph, kz2.kernel, 2) ? "yes" : "NO (bug)");

  // Certify "triangle-free" on the big instance via Theorem 2.6.
  const Formula phi = f_triangle_free();
  RootedTree witness = inst.elimination_tree;
  KernelMsoScheme scheme(phi, 3, 3, [witness](const Graph&) { return witness; });
  if (!scheme.holds(inst.graph)) {
    std::printf("instance has a triangle; kernel scheme correctly refuses\n");
    return 0;
  }
  const std::size_t bits = certified_size_bits(scheme, inst.graph);
  std::printf("Theorem 2.6 certificate for 'triangle-free': %zu bits per vertex\n", bits);
  return 0;
}
