// lcert_cli — run any registered certification scheme on a graph.
//
//   lcert_cli list                          # available schemes
//   lcert_cli demo <scheme> [n]             # generate a yes-instance, certify it
//   lcert_cli run  <scheme> <file|->        # certify a graph in edge-list format
//   lcert_cli audit <scheme> [n]            # completeness + soundness attack battery
//   lcert_cli dot  <file|->                 # print the graph as Graphviz DOT
//
// Every subcommand accepts --metrics-out <file> (or the LCERT_METRICS env
// var) to dump the obs metrics/trace artifact as JSON (.csv for CSV).
// Edge-list format: see src/graph/io.hpp.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/io.hpp"
#include "src/logic/eval.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/registry.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

Graph load(const std::string& path) {
  if (path == "-") return parse_edge_list(std::cin);
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open " + path);
  return parse_edge_list(in);
}

int run_scheme_on(const RegisteredScheme& entry, const Graph& g) {
  const auto scheme = entry.make();
  std::printf("scheme:   %s (%s)\n", entry.key.c_str(), entry.description.c_str());
  std::printf("instance: n=%zu m=%zu\n", g.vertex_count(), g.edge_count());
  bool truth;
  try {
    truth = scheme->holds(g);
  } catch (const std::exception& e) {
    std::printf("ground truth unavailable: %s\n", e.what());
    return 2;
  }
  std::printf("property holds: %s\n", truth ? "yes" : "no");
  const auto certs = scheme->assign(g);
  if (!certs.has_value()) {
    std::printf("prover: refuses (%s)\n",
                truth ? "BUG: completeness violated" : "as expected on a no-instance");
    return truth ? 1 : 0;
  }
  const auto outcome = verify_assignment(*scheme, g, *certs);
  std::printf("prover: assigned certificates, max %zu bits/vertex (total %zu)\n",
              outcome.max_certificate_bits, outcome.total_certificate_bits);
  std::printf("verification: %s\n",
              outcome.all_accept ? "all vertices accept" : "SOME VERTEX REJECTS (bug)");
  return outcome.all_accept && truth ? 0 : 1;
}

// Completeness check plus the full soundness-attack battery on generated
// instances, reported through the shared obs pipeline: audit/* counters say
// how many trials each attack family executed, prover/* histograms where the
// honest certificate sizes landed.
int audit_scheme(const RegisteredScheme& entry, std::size_t n, obs::Report& report) {
  const auto scheme = entry.make();
  Rng rng(42);
  std::printf("scheme:   %s (%s)\n", entry.key.c_str(), entry.description.c_str());

  const Graph yes = entry.yes_instance(n, rng);
  require_complete(*scheme, yes);
  const auto tmpl = scheme->assign(yes);
  std::printf("completeness: ok on a yes-instance with n=%zu\n", yes.vertex_count());

  const Graph no = entry.no_instance(n, rng);
  const auto forged =
      attack_soundness(*scheme, no, tmpl ? &*tmpl : nullptr, rng, AuditOptions{});
  if (forged.has_value()) {
    std::printf("soundness: FORGED via '%s' attack on n=%zu — scheme is unsound\n",
                forged->attack.c_str(), no.vertex_count());
  } else {
    std::printf("soundness: no forgery found on a no-instance with n=%zu\n",
                no.vertex_count());
  }

  report.add()
      .set("scheme", entry.key)
      .set("n", yes.vertex_count())
      .set("complete", "yes")
      .set("forged", forged.has_value() ? forged->attack : "no");
  std::printf("\n");
  report.print_metrics();
  return forged.has_value() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto report = obs::Report::from_cli("lcert-cli", argc, argv);
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "list") {
      std::printf("available schemes:\n");
      for (const auto& entry : scheme_registry())
        std::printf("  %-24s %s\n", entry.key.c_str(), entry.description.c_str());
      return 0;
    }
    if (args[0] == "demo" && args.size() >= 2) {
      const auto& entry = find_scheme(args[1]);
      const std::size_t n = args.size() >= 3 ? std::stoul(args[2]) : 24;
      Rng rng(42);
      const Graph g = entry.yes_instance(n, rng);
      const int rc = run_scheme_on(entry, g);
      if (!report.output_path().empty()) report.write(report.output_path());
      return rc;
    }
    if (args[0] == "run" && args.size() >= 3) {
      const auto& entry = find_scheme(args[1]);
      const int rc = run_scheme_on(entry, load(args[2]));
      if (!report.output_path().empty()) report.write(report.output_path());
      return rc;
    }
    if (args[0] == "audit" && args.size() >= 2) {
      const auto& entry = find_scheme(args[1]);
      const std::size_t n = args.size() >= 3 ? std::stoul(args[2]) : 24;
      const int rc = audit_scheme(entry, n, report);
      if (!report.output_path().empty()) report.write(report.output_path());
      return rc;
    }
    if (args[0] == "dot" && args.size() >= 2) {
      std::fputs(to_dot(load(args[1])).c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr,
               "usage: lcert_cli list | demo <scheme> [n] | run <scheme> <file|-> | "
               "audit <scheme> [n] | dot <file|->\n");
  return 2;
}
