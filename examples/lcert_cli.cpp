// lcert_cli — run any registered certification scheme on a graph.
//
//   lcert_cli list                          # available schemes
//   lcert_cli demo <scheme> [n]             # generate a yes-instance, certify it
//   lcert_cli run  <scheme> <file|->        # certify a graph in edge-list format
//   lcert_cli audit <scheme|all> [n]        # completeness + the per-strategy
//                                           # soundness attack plan (random,
//                                           # empty, replay, bit-flip, SAT-
//                                           # guided run search)
//   lcert_cli prove <scheme> [n] [--threads T] [--no-memo]
//                   [--family F] [--solver S]
//                                           # batch prover: timing + memo and
//                                           # solver decision stats. --family
//                                           # swaps the instance shape (path,
//                                           # caterpillar, complete-binary,
//                                           # random-tree) for the scheme's
//                                           # default yes-instance; --solver
//                                           # picks the feasibility backend
//                                           # (greedy|warm-flow|cold-flow|sat;
//                                           # --feas-tier-max is a deprecated
//                                           # alias)
//   lcert_cli fuzz <scheme|all> [flags]     # differential fuzzing campaign
//   lcert_cli apply-edit <scheme> <file|-> <spec>... [--threads T] [--check]
//                                           # certify a graph, then stream
//                                           # textual edits through the
//                                           # incremental layer; per-edit
//                                           # stats on stdout
//   lcert_cli watch <scheme> [n] [--family F] [--edits K] [--seed S]
//                   [--threads T] [--check]
//                                           # random streaming-edit workload:
//                                           # amortized cost per edit vs the
//                                           # cold full re-prove (the CI
//                                           # incremental-smoke driver)
//   lcert_cli dot  <file|->                 # print the graph as Graphviz DOT
//
// fuzz flags:
//   --trials N        trial-count mode, deterministic across thread counts
//   --time-budget S   wall-clock mode (seconds); overrides --trials
//   --seed S          campaign seed (default 1)
//   --threads T       worker threads (default auto)
//   --base-n N        base instance size (default 12)
//   --replay T        re-run exactly one trial index and report it
//   --out DIR         write <scheme>-trial<T>.lcg + .repro.txt per finding
//   --solver S        feasibility backend for the incremental re-proves (the
//                     solver-divergence oracle sweeps all backends anyway)
//
// edit spec grammar (apply-edit): graft:U[:ID] | prune:V | swap:M:OP:NP |
// edge-add:U:V | edge-del:U:V | permute:SEED — vertex indices refer to the
// graph as it stands when the edit applies (prune renumbers: v > pruned
// shifts down by one). swap deletes edge {M, OP} and inserts {M, NP}.
// --check cross-checks every edit against a cold full re-prove
// (bit-identity, the same oracle the fuzzer runs).
//
// Every subcommand accepts --metrics-out <file> (or the LCERT_METRICS env
// var) to dump the obs metrics/trace artifact as JSON (.csv for CSV), and
// --trace-out <file> (or LCERT_TRACE) to record a Chrome trace-event
// timeline (chrome://tracing / Perfetto). An unwritable artifact path is
// rejected up front with exit code 2.
// Edge-list format: see src/graph/io.hpp.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/cert/prove.hpp"
#include "src/fuzz/campaign.hpp"
#include "src/fuzz/mutators.hpp"
#include "src/graph/edit.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/io.hpp"
#include "src/incr/incremental.hpp"
#include "src/logic/eval.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/registry.hpp"
#include "src/solve/backend.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

Graph load(const std::string& path) {
  if (path == "-") return parse_edge_list(std::cin);
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open " + path);
  return parse_edge_list(in);
}

/// Non-throwing lookup front end: unknown keys list the valid ones on stderr
/// (exit code 2 at the call site) instead of an uncaught exception.
const RegisteredScheme* lookup(const std::string& key) {
  const RegisteredScheme* entry = try_find_scheme(key);
  if (entry == nullptr) {
    std::fprintf(stderr, "error: unknown scheme '%s'; valid keys:\n", key.c_str());
    for (const auto& e : scheme_registry())
      std::fprintf(stderr, "  %s\n", e.key.c_str());
  }
  return entry;
}

/// Non-throwing solver lookup, same contract as lookup() above: unknown names
/// list the valid backends on stderr, exit code 2 at the call site.
std::optional<solve::Backend> lookup_solver(const std::string& name) {
  const auto backend = solve::parse_backend(name);
  if (!backend.has_value())
    std::fprintf(stderr, "error: unknown solver '%s'; valid solvers: %s\n",
                 name.c_str(), solve::backend_listing().c_str());
  return backend;
}

/// Deprecated --feas-tier-max alias: tier numbers map onto the backend that
/// used to sit at that tier (0=cold-flow, 1=greedy, 2=warm-flow). Out-of-range
/// tiers are rejected with the backend listing (they used to be accepted
/// silently); in-range ones warn once and select the named solver.
std::optional<solve::Backend> solver_from_tier_flag(const std::string& value) {
  const int tier = std::stoi(value);
  const auto backend = solve::backend_from_tier(tier);
  if (!backend.has_value()) {
    std::fprintf(stderr,
                 "error: --feas-tier-max %d is out of range; use --solver with "
                 "one of: %s\n",
                 tier, solve::backend_listing().c_str());
    return std::nullopt;
  }
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "warning: --feas-tier-max is deprecated; use --solver %s\n",
                 solve::backend_name(*backend));
  }
  return backend;
}

int run_scheme_on(const RegisteredScheme& entry, const Graph& g) {
  const auto scheme = entry.make();
  std::printf("scheme:   %s (%s)\n", entry.key.c_str(), entry.description.c_str());
  std::printf("instance: n=%zu m=%zu\n", g.vertex_count(), g.edge_count());
  bool truth;
  try {
    truth = scheme->holds(g);
  } catch (const std::exception& e) {
    std::printf("ground truth unavailable: %s\n", e.what());
    return 2;
  }
  std::printf("property holds: %s\n", truth ? "yes" : "no");
  const auto certs = scheme->assign(g);
  if (!certs.has_value()) {
    std::printf("prover: refuses (%s)\n",
                truth ? "BUG: completeness violated" : "as expected on a no-instance");
    return truth ? 1 : 0;
  }
  const auto outcome = verify_assignment(*scheme, g, *certs);
  std::printf("prover: assigned certificates, max %zu bits/vertex (total %zu)\n",
              outcome.max_certificate_bits, outcome.total_certificate_bits);
  std::printf("verification: %s\n",
              outcome.all_accept ? "all vertices accept" : "SOME VERTEX REJECTS (bug)");
  return outcome.all_accept && truth ? 0 : 1;
}

// Completeness check plus the full per-strategy soundness attack plan on
// generated instances, reported through the shared obs pipeline: audit/*
// counters say how many trials each attack family executed, prover/*
// histograms where the honest certificate sizes landed. Prints one row per
// AttackOutcome so "no forgery" is attributable: which strategies applied,
// how much of their budget they spent, and — for the SAT-guided run search —
// whether every rooting was exhausted (a completeness statement for that
// forgery family).
int audit_scheme(const RegisteredScheme& entry, std::size_t n, obs::Report& report) {
  const auto scheme = entry.make();
  Rng rng(42);
  std::printf("scheme:   %s (%s)\n", entry.key.c_str(), entry.description.c_str());

  const Graph yes = entry.family.yes_instance(n, rng);
  require_complete(*scheme, yes);
  const auto tmpl = scheme->assign(yes);
  std::printf("completeness: ok on a yes-instance with n=%zu\n", yes.vertex_count());

  const Graph no = entry.family.no_instance(n, rng);
  const SoundnessAuditReport audit =
      run_soundness_audit(*scheme, no, tmpl ? &*tmpl : nullptr, rng, RunOptions{});
  std::printf("soundness attack plan (no-instance n=%zu):\n", no.vertex_count());
  for (const AttackOutcome& out : audit.outcomes) {
    const char* status =
        out.forged ? "FORGED" : (out.applicable ? "no forgery" : "skipped");
    std::printf("  %-16s trials %3zu/%-3zu %-10s %s\n", out.strategy.c_str(),
                out.trials, out.budget, status, out.detail.c_str());
  }
  if (audit.forgery.has_value()) {
    std::printf("soundness: FORGED via '%s' attack on n=%zu — scheme is unsound\n",
                audit.forgery->attack.c_str(), no.vertex_count());
  } else {
    std::printf("soundness: every strategy exhausted without a forgery (n=%zu)\n",
                no.vertex_count());
  }

  report.add()
      .set("scheme", entry.key)
      .set("n", yes.vertex_count())
      .set("complete", "yes")
      .set("forged", audit.forgery.has_value() ? audit.forgery->attack : "no");
  return audit.forgery.has_value() ? 1 : 0;
}

// `audit <scheme|all> [n]`: per-scheme audit, or the whole registry (the CI
// solver-audit-smoke job runs `audit all` so the SAT forgery search sweeps
// every scheme's no-instances).
int audit_command(const std::vector<std::string>& args, obs::Report& report) {
  std::size_t n = 24;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--metrics-out" || flag == "--trace-out") {
      ++i;  // consumed by obs::Report::from_cli
    } else if (!flag.empty() && flag[0] != '-') {
      n = std::stoul(flag);
    } else {
      throw std::invalid_argument("unknown audit flag '" + flag + "'");
    }
  }
  int rc = 0;
  if (args[1] == "all") {
    for (const auto& entry : scheme_registry()) {
      rc = std::max(rc, audit_scheme(entry, n, report));
      std::printf("\n");
    }
  } else {
    const RegisteredScheme* entry = lookup(args[1]);
    if (entry == nullptr) return 2;
    rc = audit_scheme(*entry, n, report);
    std::printf("\n");
  }
  report.print_metrics();
  return rc;
}

// Named instance shapes for `prove --family`, mirroring the bench harness
// (bench_prove_throughput.cpp) so the RandomTree prover cliff reproduces from
// the CLI: `lcert_cli prove mso-leaves4 4096 --family random-tree`.
struct ShapeFamily {
  const char* name;
  Graph (*make)(std::size_t n, Rng& rng);
};

Graph shape_path(std::size_t n, Rng&) { return make_path(std::max<std::size_t>(n, 2)); }
Graph shape_caterpillar(std::size_t n, Rng&) {
  return make_caterpillar(std::max<std::size_t>(n / 2, 1), 1);
}
Graph shape_complete_binary(std::size_t n, Rng&) {
  std::size_t levels = 1;
  while (((std::size_t{1} << (levels + 1)) - 1) <= n) ++levels;
  return make_complete_binary_tree(levels);  // largest 2^L - 1 <= n
}
Graph shape_random_tree(std::size_t n, Rng& rng) { return make_random_tree(n, rng); }

constexpr ShapeFamily kShapeFamilies[] = {
    {"path", &shape_path},
    {"caterpillar", &shape_caterpillar},
    {"complete-binary", &shape_complete_binary},
    {"random-tree", &shape_random_tree},
};

/// Non-throwing shape lookup, same contract as lookup() above: unknown names
/// list the valid ones on stderr, exit code 2 at the call site.
const ShapeFamily* lookup_shape(const std::string& name) {
  for (const ShapeFamily& f : kShapeFamilies)
    if (name == f.name) return &f;
  std::fprintf(stderr, "error: unknown family '%s'; valid families:\n", name.c_str());
  for (const ShapeFamily& f : kShapeFamilies) std::fprintf(stderr, "  %s\n", f.name);
  return nullptr;
}

// Run the batch prover on a generated yes-instance, verify the output, and
// report wall time plus the memo and solver decision counters — the CLI face
// of prove_assignment.
int prove_command(const std::vector<std::string>& args, obs::Report& report) {
  const RegisteredScheme* entry = lookup(args[1]);
  if (entry == nullptr) return 2;
  std::size_t n = 1024;
  RunOptions options;
  const ShapeFamily* shape = nullptr;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--metrics-out" || flag == "--trace-out") {
      ++i;  // consumed by obs::Report::from_cli
    } else if (flag == "--threads") {
      if (i + 1 >= args.size()) throw std::invalid_argument("missing value for --threads");
      options.num_threads = std::stoul(args[++i]);
    } else if (flag == "--no-memo") {
      options.memoize = false;
    } else if (flag == "--family") {
      if (i + 1 >= args.size()) throw std::invalid_argument("missing value for --family");
      shape = lookup_shape(args[++i]);
      if (shape == nullptr) return 2;
    } else if (flag == "--solver") {
      if (i + 1 >= args.size()) throw std::invalid_argument("missing value for --solver");
      const auto backend = lookup_solver(args[++i]);
      if (!backend.has_value()) return 2;
      options.solver = *backend;
    } else if (flag == "--feas-tier-max") {
      if (i + 1 >= args.size())
        throw std::invalid_argument("missing value for --feas-tier-max");
      const auto backend = solver_from_tier_flag(args[++i]);
      if (!backend.has_value()) return 2;
      options.solver = *backend;
    } else if (!flag.empty() && flag[0] != '-') {
      n = std::stoul(flag);
    } else {
      throw std::invalid_argument("unknown prove flag '" + flag + "'");
    }
  }

  const auto scheme = entry->make();
  Rng rng(42);
  Graph g = shape == nullptr ? entry->family.yes_instance(n, rng) : shape->make(n, rng);
  if (shape != nullptr) assign_random_ids(g, rng);
  std::printf("scheme:   %s (%s)\n", entry->key.c_str(), entry->description.c_str());
  std::printf("instance: %s n=%zu m=%zu, threads=%zu, memo=%s, solver=%s\n",
              shape == nullptr ? "yes-instance" : shape->name, g.vertex_count(),
              g.edge_count(), options.num_threads, options.memoize ? "on" : "off",
              solve::backend_name(options.solver));

  const auto start = std::chrono::steady_clock::now();
  const ProveResult result = prove_assignment(*scheme, g, options);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (!result.certificates.has_value()) {
    std::printf(shape == nullptr
                    ? "prover: refuses (BUG: family generated a no-instance?)\n"
                    : "prover: refuses (the --family shape is a no-instance here)\n");
    return 1;
  }
  const auto outcome = verify_assignment(*scheme, g, *result.certificates, options);
  std::printf("prover: %.3f ms, memo hits %zu / misses %zu\n", ms, result.memo_hits,
              result.memo_misses);
  std::printf(
      "solver decisions: pruned %llu / greedy %llu / warm %llu / flow %llu / sat %llu\n",
      static_cast<unsigned long long>(result.feas.pruned),
      static_cast<unsigned long long>(result.feas.greedy),
      static_cast<unsigned long long>(result.feas.warm),
      static_cast<unsigned long long>(result.feas.flow),
      static_cast<unsigned long long>(result.feas.sat));
  std::printf("certificates: max %zu bits/vertex (total %zu)\n",
              outcome.max_certificate_bits, outcome.total_certificate_bits);
  std::printf("verification: %s\n",
              outcome.all_accept ? "all vertices accept" : "SOME VERTEX REJECTS (bug)");

  report.add()
      .set("scheme", entry->key)
      .set("n", g.vertex_count())
      .set("threads", options.num_threads)
      .set("memo", options.memoize ? "on" : "off")
      .set("family", shape == nullptr ? "yes-instance" : shape->name)
      .set("solver", solve::backend_name(options.solver))
      .set("prove_ms", ms)
      .set("memo_hits", result.memo_hits)
      .set("memo_misses", result.memo_misses)
      .set("feas_pruned", result.feas.pruned)
      .set("feas_greedy", result.feas.greedy)
      .set("feas_warm", result.feas.warm)
      .set("feas_flow", result.feas.flow)
      .set("feas_sat", result.feas.sat)
      .set("max_bits", outcome.max_certificate_bits);
  std::printf("\n");
  report.print_metrics();
  return outcome.all_accept ? 0 : 1;
}

struct FuzzCliOptions {
  fuzz::CampaignOptions campaign;
  std::optional<std::size_t> replay;
  std::string out_dir;
};

/// Parses the fuzz flags starting at args[from]; throws std::invalid_argument
/// on a malformed flag.
FuzzCliOptions parse_fuzz_flags(const std::vector<std::string>& args, std::size_t from) {
  FuzzCliOptions out;
  for (std::size_t i = from; i < args.size(); ++i) {
    const std::string& flag = args[i];
    // --metrics-out/--trace-out are consumed by obs::Report::from_cli.
    if (flag == "--metrics-out" || flag == "--trace-out") {
      ++i;
      continue;
    }
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size())
        throw std::invalid_argument("missing value for " + flag);
      return args[++i];
    };
    if (flag == "--trials") out.campaign.trials = std::stoul(value());
    else if (flag == "--time-budget") out.campaign.time_budget_s = std::stod(value());
    else if (flag == "--seed") out.campaign.seed = std::stoull(value());
    else if (flag == "--threads") out.campaign.num_threads = std::stoul(value());
    else if (flag == "--base-n") out.campaign.base_n = std::stoul(value());
    else if (flag == "--replay") out.replay = std::stoul(value());
    else if (flag == "--out") out.out_dir = value();
    else if (flag == "--solver") {
      // Drives the incremental-divergence re-proves; the solver-divergence
      // oracle still sweeps every registered backend regardless.
      const auto backend = solve::parse_backend(value());
      if (!backend.has_value())
        throw std::invalid_argument(std::string("unknown solver; valid solvers: ") +
                                    solve::backend_listing());
      out.campaign.attack.solver = *backend;
    } else if (flag == "--feas-tier-max") {
      const auto backend = solver_from_tier_flag(value());
      if (!backend.has_value())
        throw std::invalid_argument(std::string("--feas-tier-max out of range; valid "
                                                "solvers: ") +
                                    solve::backend_listing());
      out.campaign.attack.solver = *backend;
    }
    else throw std::invalid_argument("unknown fuzz flag '" + flag + "'");
  }
  return out;
}

void write_finding_artifacts(const fuzz::Finding& finding, const std::string& scheme_key,
                             const std::string& out_dir) {
  const std::string stem = out_dir + "/" + scheme_key + "-trial" +
                           std::to_string(finding.trial);
  save_graph(finding.graph, stem + ".lcg");
  std::ofstream snippet(stem + ".repro.txt");
  if (!snippet) throw std::runtime_error("cannot write " + stem + ".repro.txt");
  snippet << fuzz::repro_snippet(finding, scheme_key);
  std::printf("  wrote %s.lcg and %s.repro.txt\n", stem.c_str(), stem.c_str());
}

int fuzz_one(const RegisteredScheme& entry, const FuzzCliOptions& cli,
             obs::Report& report) {
  const auto scheme = entry.make();
  const fuzz::CampaignResult result =
      cli.replay.has_value()
          ? fuzz::replay_trial(*scheme, entry.family, cli.campaign, *cli.replay)
          : fuzz::run_campaign(*scheme, entry.family, cli.campaign);

  const double rate =
      result.stats.seconds > 0 ? result.stats.trials_run / result.stats.seconds : 0;
  std::printf("scheme: %s\n", entry.key.c_str());
  std::printf(
      "  trials: %zu run, %zu skipped (%zu yes / %zu no), %.2fs, %.0f trials/s\n",
      result.stats.trials_run, result.stats.trials_skipped, result.stats.yes_instances,
      result.stats.no_instances, result.stats.seconds, rate);
  for (const fuzz::Finding& f : result.findings) {
    std::printf("  FINDING trial=%zu seed=%llu oracle=%s\n    %s\n", f.trial,
                static_cast<unsigned long long>(f.seed),
                fuzz::oracle_name(f.oracle).c_str(), f.detail.c_str());
    std::printf("    shrunk n=%zu m=%zu (from n=%zu, %zu steps)\n",
                f.graph.vertex_count(), f.graph.edge_count(),
                f.original.vertex_count(), f.shrink_steps);
    if (!cli.out_dir.empty()) write_finding_artifacts(f, entry.key, cli.out_dir);
  }

  report.add()
      .set("scheme", entry.key)
      .set("trials", result.stats.trials_run)
      .set("skipped", result.stats.trials_skipped)
      .set("findings", result.findings.size())
      .set("seconds", result.stats.seconds)
      .set("trials_per_s", rate);
  return result.findings.empty() ? 0 : 1;
}

int fuzz_command(const std::vector<std::string>& args, obs::Report& report) {
  const FuzzCliOptions cli = parse_fuzz_flags(args, 2);
  int rc = 0;
  if (args[1] == "all") {
    for (const auto& entry : scheme_registry())
      rc = std::max(rc, fuzz_one(entry, cli, report));
  } else {
    const RegisteredScheme* entry = lookup(args[1]);
    if (entry == nullptr) return 2;
    rc = fuzz_one(*entry, cli, report);
  }
  std::printf("\n");
  report.print_metrics();
  return rc;
}

// --- incremental recertification subcommands (DESIGN.md §13) ---------------

/// Parses one textual edit spec against the graph it will apply to. Grammar
/// (see the header comment): graft:U[:ID] | prune:V | swap:M:OP:NP |
/// edge-add:U:V | edge-del:U:V | permute:SEED. Throws std::invalid_argument
/// on malformed specs; apply() rejects specs that are well-formed but illegal
/// on the current graph.
GraphEdit parse_edit_spec(const std::string& spec, const Graph& g) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  const auto arity = [&](std::size_t lo, std::size_t hi) {
    if (parts.size() < lo || parts.size() > hi)
      throw std::invalid_argument("malformed edit spec '" + spec + "'");
  };
  const auto num = [&](std::size_t i) -> std::uint64_t {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(parts[i], &used);
    if (used != parts[i].size())
      throw std::invalid_argument("malformed number in edit spec '" + spec + "'");
    return value;
  };

  const std::string& kind = parts[0];
  if (kind == "graft") {
    arity(2, 3);
    GraphEdit edit;
    edit.kind = EditKind::kLeafGraft;
    edit.a = num(1);
    if (parts.size() == 3) {
      edit.fresh_id = num(2);
    } else {
      // Default fresh ID: one past the current maximum, always distinct.
      VertexId max_id = 0;
      for (Vertex v = 0; v < g.vertex_count(); ++v)
        max_id = std::max(max_id, g.id(v));
      edit.fresh_id = max_id + 1;
    }
    return edit;
  }
  if (kind == "prune") {
    arity(2, 2);
    GraphEdit edit;
    edit.kind = EditKind::kLeafPrune;
    edit.a = num(1);
    return edit;
  }
  if (kind == "swap") {
    arity(4, 4);
    GraphEdit edit;
    edit.kind = EditKind::kSubtreeSwap;
    edit.a = num(1);   // moved subtree root
    edit.c = num(2);   // old parent
    edit.b = num(3);   // new parent
    return edit;
  }
  if (kind == "edge-add" || kind == "edge-del") {
    arity(3, 3);
    GraphEdit edit;
    edit.kind = kind == "edge-add" ? EditKind::kEdgeAdd : EditKind::kEdgeDelete;
    edit.a = num(1);
    edit.b = num(2);
    return edit;
  }
  if (kind == "permute") {
    arity(2, 2);
    GraphEdit edit;
    edit.kind = EditKind::kIdPermute;
    edit.ids.reserve(g.vertex_count());
    for (Vertex v = 0; v < g.vertex_count(); ++v) edit.ids.push_back(g.id(v));
    Rng rng(num(1));
    rng.shuffle(edit.ids);
    return edit;
  }
  throw std::invalid_argument("unknown edit kind '" + kind + "' in spec '" + spec +
                              "' (valid: graft prune swap edge-add edge-del permute)");
}

void print_edit_stats(std::size_t step, const GraphEdit& edit,
                      const IncrementalStats& st) {
  std::printf("edit %zu: %s\n", step, to_string(edit).c_str());
  std::printf(
      "  %s, %s, dirty-path %zu, re-proved %zu, re-verified %zu, "
      "changed certs %zu, reuse %.3f, memo %zu/%zu\n",
      st.certified ? "certified" : "NOT CERTIFIABLE",
      st.full_reprove ? "full re-prove" : "incremental",
      st.dirty_path_len, st.reproved_vertices, st.reverified_vertices,
      st.changed_certificates, st.reuse_ratio, st.memo_hits, st.memo_misses);
}

/// --check body shared by apply-edit and watch: the live certificates must be
/// bit-identical to a cold full re-prove of the accumulated graph, and the
/// changed slice must have re-verified cleanly.
bool edits_check_clean(const Scheme& scheme, const incr::CertifiedInstance& live,
                       const Graph& expected, const RunOptions& options,
                       const IncrementalStats& st) {
  const auto cold = prove_assignment(scheme, expected, options).certificates;
  const auto& ours = live.certificates();
  if (ours.has_value() != cold.has_value() || (ours.has_value() && !(*ours == *cold))) {
    std::printf("  CHECK FAILED: diverged from a cold full re-prove\n");
    return false;
  }
  if (!st.reverify_clean) {
    std::printf("  CHECK FAILED: re-verification of the changed slice rejected\n");
    return false;
  }
  return true;
}

int apply_edit_command(const std::vector<std::string>& args, obs::Report& report) {
  const RegisteredScheme* entry = lookup(args[1]);
  if (entry == nullptr) return 2;
  RunOptions options;
  bool check = false;
  std::vector<std::string> specs;
  for (std::size_t i = 3; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--metrics-out" || arg == "--trace-out") {
      ++i;  // consumed by obs::Report::from_cli
    } else if (arg == "--threads") {
      if (i + 1 >= args.size()) throw std::invalid_argument("missing value for --threads");
      options.num_threads = std::stoul(args[++i]);
    } else if (arg == "--check") {
      check = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      throw std::invalid_argument("unknown apply-edit flag '" + arg + "'");
    } else {
      specs.push_back(arg);
    }
  }
  if (specs.empty()) throw std::invalid_argument("apply-edit: no edit specs given");

  const auto scheme = entry->make();
  Graph cur = load(args[2]);
  incr::CertifiedInstance live(*scheme, options);
  const auto& init = live.init(cur);
  std::printf("scheme:   %s (%s)\n", entry->key.c_str(), entry->description.c_str());
  std::printf("instance: n=%zu m=%zu, path=%s\n", cur.vertex_count(), cur.edge_count(),
              live.incremental() ? "incremental" : "full-reprove fallback");
  std::printf("init: %s\n", init.has_value() ? "certified" : "not certifiable");

  int rc = 0;
  std::size_t applied = 0;
  for (std::size_t step = 0; step < specs.size(); ++step) {
    const GraphEdit edit = parse_edit_spec(specs[step], cur);
    const IncrementalStats st = live.apply(edit);
    cur = apply_edit(cur, edit);
    ++applied;
    print_edit_stats(step, edit, st);
    if (check && !edits_check_clean(*scheme, live, cur, options, st)) rc = 1;
  }

  const bool certified = live.certificates().has_value();
  std::printf("final: n=%zu, %s\n", cur.vertex_count(),
              certified ? "certified" : "not certifiable");
  report.add()
      .set("scheme", entry->key)
      .set("edits", applied)
      .set("final_n", cur.vertex_count())
      .set("certified", certified ? "yes" : "no")
      .set("check", check ? (rc == 0 ? "pass" : "FAIL") : "off");
  std::printf("\n");
  report.print_metrics();
  return rc;
}

int watch_command(const std::vector<std::string>& args, obs::Report& report) {
  const RegisteredScheme* entry = lookup(args[1]);
  if (entry == nullptr) return 2;
  std::size_t n = 1024;
  std::size_t edits = 64;
  std::uint64_t seed = 1;
  bool check = false;
  RunOptions options;
  const ShapeFamily* shape = nullptr;  // default: the scheme's own yes-instance
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--metrics-out" || flag == "--trace-out") {
      ++i;  // consumed by obs::Report::from_cli
    } else if (flag == "--family") {
      if (i + 1 >= args.size()) throw std::invalid_argument("missing value for --family");
      shape = lookup_shape(args[++i]);
      if (shape == nullptr) return 2;
    } else if (flag == "--edits") {
      if (i + 1 >= args.size()) throw std::invalid_argument("missing value for --edits");
      edits = std::stoul(args[++i]);
    } else if (flag == "--seed") {
      if (i + 1 >= args.size()) throw std::invalid_argument("missing value for --seed");
      seed = std::stoull(args[++i]);
    } else if (flag == "--threads") {
      if (i + 1 >= args.size()) throw std::invalid_argument("missing value for --threads");
      options.num_threads = std::stoul(args[++i]);
    } else if (flag == "--check") {
      check = true;
    } else if (!flag.empty() && flag[0] != '-') {
      n = std::stoul(flag);
    } else {
      throw std::invalid_argument("unknown watch flag '" + flag + "'");
    }
  }

  const auto scheme = entry->make();
  Rng rng(seed);
  Graph cur = shape == nullptr ? entry->family.yes_instance(n, rng) : shape->make(n, rng);
  if (shape != nullptr) assign_random_ids(cur, rng);
  incr::CertifiedInstance live(*scheme, options);

  const auto t0 = std::chrono::steady_clock::now();
  const auto& init = live.init(cur);
  const double init_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  std::printf("scheme:   %s (%s)\n", entry->key.c_str(), entry->description.c_str());
  std::printf("instance: %s n=%zu m=%zu, threads=%zu, path=%s\n",
              shape == nullptr ? "yes-instance" : shape->name, cur.vertex_count(),
              cur.edge_count(), options.num_threads,
              live.incremental() ? "incremental" : "full-reprove fallback");
  if (!init.has_value()) {
    std::printf("init: the generated instance is not certifiable (pick a family "
                "the scheme certifies, or drop --family for its yes-instance)\n");
    return 1;
  }
  std::printf("init (cold full prove): %.3f ms\n", init_ms);

  const std::vector<fuzz::MutatorKind> kinds = fuzz::tree_preserving_mutators();
  int rc = 0;
  std::size_t applied = 0, full_reproves = 0, rejected_draws = 0;
  std::size_t sum_dirty = 0, max_dirty = 0;
  std::size_t sum_reproved = 0, sum_reverified = 0, sum_changed = 0;
  double sum_reuse = 0, edit_seconds = 0;
  for (std::size_t step = 0; step < edits; ++step) {
    // Drawing the edit is untimed — it is workload generation, not repair.
    // Property-breaking edits are redrawn (the watch workload measures the
    // repair cost on instances that stay certifiable; certified/uncertified
    // transitions are the fuzz oracle's territory).
    std::optional<GraphEdit> edit;
    std::optional<Graph> next;
    for (std::size_t attempt = 0; attempt < 16; ++attempt) {
      edit = fuzz::draw_edit(cur, kinds[rng.index(kinds.size())], rng);
      if (!edit.has_value()) continue;
      next = apply_edit(cur, *edit);
      if (scheme->holds(*next)) break;
      ++rejected_draws;
      edit.reset();
    }
    if (!edit.has_value()) continue;

    const auto e0 = std::chrono::steady_clock::now();
    const IncrementalStats st = live.apply(*edit);
    edit_seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - e0)
                        .count();
    cur = std::move(*next);
    ++applied;
    if (st.full_reprove) ++full_reproves;
    sum_dirty += st.dirty_path_len;
    max_dirty = std::max(max_dirty, st.dirty_path_len);
    sum_reproved += st.reproved_vertices;
    sum_reverified += st.reverified_vertices;
    sum_changed += st.changed_certificates;
    sum_reuse += st.reuse_ratio;
    if (!st.certified) {
      std::printf("edit %zu (%s): NOT certified although holds() is true (bug)\n",
                  step, to_string(*edit).c_str());
      rc = 1;
      break;
    }
    if (check && !edits_check_clean(*scheme, live, cur, options, st)) {
      std::printf("  at edit %zu (%s)\n", step, to_string(*edit).c_str());
      rc = 1;
      break;
    }
  }

  if (applied == 0) {
    std::printf("no edits applied (every draw came up empty)\n");
    return rc;
  }
  const double us_per_edit = edit_seconds * 1e6 / static_cast<double>(applied);
  const double speedup = us_per_edit > 0 ? init_ms * 1e3 / us_per_edit : 0;
  const double inv = 1.0 / static_cast<double>(applied);
  std::printf("edits: %zu applied (%zu full re-proves, %zu property-breaking draws "
              "redrawn), %.1f us/edit amortized\n",
              applied, full_reproves, rejected_draws, us_per_edit);
  std::printf("speedup vs cold full re-prove: %.1fx\n", speedup);
  std::printf("dirty-path length: mean %.1f, max %zu\n",
              static_cast<double>(sum_dirty) * inv, max_dirty);
  std::printf("re-proved %.1f / re-verified %.1f vertices per edit, "
              "%.1f changed certs per edit, mean reuse ratio %.3f\n",
              static_cast<double>(sum_reproved) * inv,
              static_cast<double>(sum_reverified) * inv,
              static_cast<double>(sum_changed) * inv, sum_reuse * inv);
  if (check) std::printf("check: %s\n", rc == 0 ? "all edits bit-identical to cold" : "FAILED");

  report.add()
      .set("scheme", entry->key)
      .set("family", shape == nullptr ? "yes-instance" : shape->name)
      .set("n", n)
      .set("edits", applied)
      .set("full_reproves", full_reproves)
      .set("init_ms", init_ms)
      .set("us_per_edit", us_per_edit)
      .set("speedup", speedup)
      .set("mean_reuse", sum_reuse * inv)
      .set("mean_dirty_path", static_cast<double>(sum_dirty) * inv)
      .set("check", check ? (rc == 0 ? "pass" : "FAIL") : "off");
  std::printf("\n");
  report.print_metrics();
  return rc;
}

// Artifact writes gate the exit code: a run whose --metrics-out/--trace-out
// cannot be written exits 2 instead of silently dropping the report.
int finish_cli(obs::Report& report, int rc) {
  const int wrc = report.write_artifacts();
  return rc != 0 ? rc : wrc;
}

}  // namespace

int main(int argc, char** argv) {
  auto report = obs::Report::from_cli("lcert-cli", argc, argv);
  std::string probe_error;
  if (!report.outputs_writable(&probe_error)) {
    std::fprintf(stderr, "error: %s\n", probe_error.c_str());
    return 2;
  }
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "list") {
      std::printf("available schemes:\n");
      for (const auto& entry : scheme_registry())
        std::printf("  %-24s %s\n", entry.key.c_str(), entry.description.c_str());
      return 0;
    }
    if (args[0] == "demo" && args.size() >= 2) {
      const RegisteredScheme* entry = lookup(args[1]);
      if (entry == nullptr) return 2;
      const std::size_t n = args.size() >= 3 ? std::stoul(args[2]) : 24;
      Rng rng(42);
      const Graph g = entry->family.yes_instance(n, rng);
      const int rc = run_scheme_on(*entry, g);
      return finish_cli(report, rc);
    }
    if (args[0] == "run" && args.size() >= 3) {
      const RegisteredScheme* entry = lookup(args[1]);
      if (entry == nullptr) return 2;
      const int rc = run_scheme_on(*entry, load(args[2]));
      return finish_cli(report, rc);
    }
    if (args[0] == "audit" && args.size() >= 2) {
      const int rc = audit_command(args, report);
      return finish_cli(report, rc);
    }
    if (args[0] == "prove" && args.size() >= 2) {
      const int rc = prove_command(args, report);
      return finish_cli(report, rc);
    }
    if (args[0] == "fuzz" && args.size() >= 2) {
      const int rc = fuzz_command(args, report);
      return finish_cli(report, rc);
    }
    if (args[0] == "apply-edit" && args.size() >= 4) {
      const int rc = apply_edit_command(args, report);
      return finish_cli(report, rc);
    }
    if (args[0] == "watch" && args.size() >= 2) {
      const int rc = watch_command(args, report);
      return finish_cli(report, rc);
    }
    if (args[0] == "dot" && args.size() >= 2) {
      std::fputs(to_dot(load(args[1])).c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr,
               "usage: lcert_cli list | demo <scheme> [n] | run <scheme> <file|-> | "
               "audit <scheme|all> [n] | prove <scheme> [n] [--threads T] [--no-memo] "
               "[--family F] [--solver greedy|warm-flow|cold-flow|sat] | "
               "fuzz <scheme|all> [--trials N] [--time-budget S] "
               "[--seed S] [--threads T] [--base-n N] [--replay T] [--out DIR] "
               "[--solver S] | "
               "apply-edit <scheme> <file|-> <spec>... [--threads T] [--check] | "
               "watch <scheme> [n] [--family F] [--edits K] [--seed S] [--threads T] "
               "[--check] | "
               "dot <file|->\n");
  return 2;
}
