// lcert_cli — run any registered certification scheme on a graph.
//
//   lcert_cli list                          # available schemes
//   lcert_cli demo <scheme> [n]             # generate a yes-instance, certify it
//   lcert_cli run  <scheme> <file|->        # certify a graph in edge-list format
//   lcert_cli audit <scheme> [n]            # completeness + soundness attack battery
//   lcert_cli prove <scheme> [n] [--threads T] [--no-memo]
//                   [--family F] [--feas-tier-max T]
//                                           # batch prover: timing + memo and
//                                           # feasibility-tier stats. --family
//                                           # swaps the instance shape (path,
//                                           # caterpillar, complete-binary,
//                                           # random-tree) for the scheme's
//                                           # default yes-instance
//   lcert_cli fuzz <scheme|all> [flags]     # differential fuzzing campaign
//   lcert_cli dot  <file|->                 # print the graph as Graphviz DOT
//
// fuzz flags:
//   --trials N        trial-count mode, deterministic across thread counts
//   --time-budget S   wall-clock mode (seconds); overrides --trials
//   --seed S          campaign seed (default 1)
//   --threads T       worker threads (default auto)
//   --base-n N        base instance size (default 12)
//   --replay T        re-run exactly one trial index and report it
//   --out DIR         write <scheme>-trial<T>.lcg + .repro.txt per finding
//
// Every subcommand accepts --metrics-out <file> (or the LCERT_METRICS env
// var) to dump the obs metrics/trace artifact as JSON (.csv for CSV).
// Edge-list format: see src/graph/io.hpp.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/cert/prove.hpp"
#include "src/fuzz/campaign.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/io.hpp"
#include "src/logic/eval.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/registry.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

Graph load(const std::string& path) {
  if (path == "-") return parse_edge_list(std::cin);
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open " + path);
  return parse_edge_list(in);
}

/// Non-throwing lookup front end: unknown keys list the valid ones on stderr
/// (exit code 2 at the call site) instead of an uncaught exception.
const RegisteredScheme* lookup(const std::string& key) {
  const RegisteredScheme* entry = try_find_scheme(key);
  if (entry == nullptr) {
    std::fprintf(stderr, "error: unknown scheme '%s'; valid keys:\n", key.c_str());
    for (const auto& e : scheme_registry())
      std::fprintf(stderr, "  %s\n", e.key.c_str());
  }
  return entry;
}

int run_scheme_on(const RegisteredScheme& entry, const Graph& g) {
  const auto scheme = entry.make();
  std::printf("scheme:   %s (%s)\n", entry.key.c_str(), entry.description.c_str());
  std::printf("instance: n=%zu m=%zu\n", g.vertex_count(), g.edge_count());
  bool truth;
  try {
    truth = scheme->holds(g);
  } catch (const std::exception& e) {
    std::printf("ground truth unavailable: %s\n", e.what());
    return 2;
  }
  std::printf("property holds: %s\n", truth ? "yes" : "no");
  const auto certs = scheme->assign(g);
  if (!certs.has_value()) {
    std::printf("prover: refuses (%s)\n",
                truth ? "BUG: completeness violated" : "as expected on a no-instance");
    return truth ? 1 : 0;
  }
  const auto outcome = verify_assignment(*scheme, g, *certs);
  std::printf("prover: assigned certificates, max %zu bits/vertex (total %zu)\n",
              outcome.max_certificate_bits, outcome.total_certificate_bits);
  std::printf("verification: %s\n",
              outcome.all_accept ? "all vertices accept" : "SOME VERTEX REJECTS (bug)");
  return outcome.all_accept && truth ? 0 : 1;
}

// Completeness check plus the full soundness-attack battery on generated
// instances, reported through the shared obs pipeline: audit/* counters say
// how many trials each attack family executed, prover/* histograms where the
// honest certificate sizes landed.
int audit_scheme(const RegisteredScheme& entry, std::size_t n, obs::Report& report) {
  const auto scheme = entry.make();
  Rng rng(42);
  std::printf("scheme:   %s (%s)\n", entry.key.c_str(), entry.description.c_str());

  const Graph yes = entry.family.yes_instance(n, rng);
  require_complete(*scheme, yes);
  const auto tmpl = scheme->assign(yes);
  std::printf("completeness: ok on a yes-instance with n=%zu\n", yes.vertex_count());

  const Graph no = entry.family.no_instance(n, rng);
  const auto forged =
      attack_soundness(*scheme, no, tmpl ? &*tmpl : nullptr, rng, RunOptions{});
  if (forged.has_value()) {
    std::printf("soundness: FORGED via '%s' attack on n=%zu — scheme is unsound\n",
                forged->attack.c_str(), no.vertex_count());
  } else {
    std::printf("soundness: no forgery found on a no-instance with n=%zu\n",
                no.vertex_count());
  }

  report.add()
      .set("scheme", entry.key)
      .set("n", yes.vertex_count())
      .set("complete", "yes")
      .set("forged", forged.has_value() ? forged->attack : "no");
  std::printf("\n");
  report.print_metrics();
  return forged.has_value() ? 1 : 0;
}

// Named instance shapes for `prove --family`, mirroring the bench harness
// (bench_prove_throughput.cpp) so the RandomTree prover cliff reproduces from
// the CLI: `lcert_cli prove mso-leaves4 4096 --family random-tree`.
struct ShapeFamily {
  const char* name;
  Graph (*make)(std::size_t n, Rng& rng);
};

Graph shape_path(std::size_t n, Rng&) { return make_path(std::max<std::size_t>(n, 2)); }
Graph shape_caterpillar(std::size_t n, Rng&) {
  return make_caterpillar(std::max<std::size_t>(n / 2, 1), 1);
}
Graph shape_complete_binary(std::size_t n, Rng&) {
  std::size_t levels = 1;
  while (((std::size_t{1} << (levels + 1)) - 1) <= n) ++levels;
  return make_complete_binary_tree(levels);  // largest 2^L - 1 <= n
}
Graph shape_random_tree(std::size_t n, Rng& rng) { return make_random_tree(n, rng); }

constexpr ShapeFamily kShapeFamilies[] = {
    {"path", &shape_path},
    {"caterpillar", &shape_caterpillar},
    {"complete-binary", &shape_complete_binary},
    {"random-tree", &shape_random_tree},
};

/// Non-throwing shape lookup, same contract as lookup() above: unknown names
/// list the valid ones on stderr, exit code 2 at the call site.
const ShapeFamily* lookup_shape(const std::string& name) {
  for (const ShapeFamily& f : kShapeFamilies)
    if (name == f.name) return &f;
  std::fprintf(stderr, "error: unknown family '%s'; valid families:\n", name.c_str());
  for (const ShapeFamily& f : kShapeFamilies) std::fprintf(stderr, "  %s\n", f.name);
  return nullptr;
}

// Run the batch prover on a generated yes-instance, verify the output, and
// report wall time plus the memo and feasibility-tier counters — the CLI face
// of prove_assignment.
int prove_command(const std::vector<std::string>& args, obs::Report& report) {
  const RegisteredScheme* entry = lookup(args[1]);
  if (entry == nullptr) return 2;
  std::size_t n = 1024;
  RunOptions options;
  const ShapeFamily* shape = nullptr;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--metrics-out") {
      ++i;  // consumed by obs::Report::from_cli
    } else if (flag == "--threads") {
      if (i + 1 >= args.size()) throw std::invalid_argument("missing value for --threads");
      options.num_threads = std::stoul(args[++i]);
    } else if (flag == "--no-memo") {
      options.memoize = false;
    } else if (flag == "--family") {
      if (i + 1 >= args.size()) throw std::invalid_argument("missing value for --family");
      shape = lookup_shape(args[++i]);
      if (shape == nullptr) return 2;
    } else if (flag == "--feas-tier-max") {
      if (i + 1 >= args.size())
        throw std::invalid_argument("missing value for --feas-tier-max");
      options.feas_tier_max = std::stoi(args[++i]);
    } else if (!flag.empty() && flag[0] != '-') {
      n = std::stoul(flag);
    } else {
      throw std::invalid_argument("unknown prove flag '" + flag + "'");
    }
  }

  const auto scheme = entry->make();
  Rng rng(42);
  Graph g = shape == nullptr ? entry->family.yes_instance(n, rng) : shape->make(n, rng);
  if (shape != nullptr) assign_random_ids(g, rng);
  std::printf("scheme:   %s (%s)\n", entry->key.c_str(), entry->description.c_str());
  std::printf("instance: %s n=%zu m=%zu, threads=%zu, memo=%s, feas-tiers<=%d\n",
              shape == nullptr ? "yes-instance" : shape->name, g.vertex_count(),
              g.edge_count(), options.num_threads, options.memoize ? "on" : "off",
              options.feas_tier_max);

  const auto start = std::chrono::steady_clock::now();
  const ProveResult result = prove_assignment(*scheme, g, options);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (!result.certificates.has_value()) {
    std::printf(shape == nullptr
                    ? "prover: refuses (BUG: family generated a no-instance?)\n"
                    : "prover: refuses (the --family shape is a no-instance here)\n");
    return 1;
  }
  const auto outcome = verify_assignment(*scheme, g, *result.certificates, options);
  std::printf("prover: %.3f ms, memo hits %zu / misses %zu\n", ms, result.memo_hits,
              result.memo_misses);
  std::printf("feasibility tiers: greedy %llu / warm-flow %llu / cold-flow %llu\n",
              static_cast<unsigned long long>(result.feas.greedy),
              static_cast<unsigned long long>(result.feas.warm),
              static_cast<unsigned long long>(result.feas.flow));
  std::printf("certificates: max %zu bits/vertex (total %zu)\n",
              outcome.max_certificate_bits, outcome.total_certificate_bits);
  std::printf("verification: %s\n",
              outcome.all_accept ? "all vertices accept" : "SOME VERTEX REJECTS (bug)");

  report.add()
      .set("scheme", entry->key)
      .set("n", g.vertex_count())
      .set("threads", options.num_threads)
      .set("memo", options.memoize ? "on" : "off")
      .set("family", shape == nullptr ? "yes-instance" : shape->name)
      .set("feas_tier_max", options.feas_tier_max)
      .set("prove_ms", ms)
      .set("memo_hits", result.memo_hits)
      .set("memo_misses", result.memo_misses)
      .set("feas_greedy", result.feas.greedy)
      .set("feas_warm", result.feas.warm)
      .set("feas_flow", result.feas.flow)
      .set("max_bits", outcome.max_certificate_bits);
  std::printf("\n");
  report.print_metrics();
  return outcome.all_accept ? 0 : 1;
}

struct FuzzCliOptions {
  fuzz::CampaignOptions campaign;
  std::optional<std::size_t> replay;
  std::string out_dir;
};

/// Parses the fuzz flags starting at args[from]; throws std::invalid_argument
/// on a malformed flag.
FuzzCliOptions parse_fuzz_flags(const std::vector<std::string>& args, std::size_t from) {
  FuzzCliOptions out;
  for (std::size_t i = from; i < args.size(); ++i) {
    const std::string& flag = args[i];
    // --metrics-out is consumed by obs::Report::from_cli; skip it here.
    if (flag == "--metrics-out") {
      ++i;
      continue;
    }
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size())
        throw std::invalid_argument("missing value for " + flag);
      return args[++i];
    };
    if (flag == "--trials") out.campaign.trials = std::stoul(value());
    else if (flag == "--time-budget") out.campaign.time_budget_s = std::stod(value());
    else if (flag == "--seed") out.campaign.seed = std::stoull(value());
    else if (flag == "--threads") out.campaign.num_threads = std::stoul(value());
    else if (flag == "--base-n") out.campaign.base_n = std::stoul(value());
    else if (flag == "--replay") out.replay = std::stoul(value());
    else if (flag == "--out") out.out_dir = value();
    else throw std::invalid_argument("unknown fuzz flag '" + flag + "'");
  }
  return out;
}

void write_finding_artifacts(const fuzz::Finding& finding, const std::string& scheme_key,
                             const std::string& out_dir) {
  const std::string stem = out_dir + "/" + scheme_key + "-trial" +
                           std::to_string(finding.trial);
  save_graph(finding.graph, stem + ".lcg");
  std::ofstream snippet(stem + ".repro.txt");
  if (!snippet) throw std::runtime_error("cannot write " + stem + ".repro.txt");
  snippet << fuzz::repro_snippet(finding, scheme_key);
  std::printf("  wrote %s.lcg and %s.repro.txt\n", stem.c_str(), stem.c_str());
}

int fuzz_one(const RegisteredScheme& entry, const FuzzCliOptions& cli,
             obs::Report& report) {
  const auto scheme = entry.make();
  const fuzz::CampaignResult result =
      cli.replay.has_value()
          ? fuzz::replay_trial(*scheme, entry.family, cli.campaign, *cli.replay)
          : fuzz::run_campaign(*scheme, entry.family, cli.campaign);

  const double rate =
      result.stats.seconds > 0 ? result.stats.trials_run / result.stats.seconds : 0;
  std::printf("scheme: %s\n", entry.key.c_str());
  std::printf(
      "  trials: %zu run, %zu skipped (%zu yes / %zu no), %.2fs, %.0f trials/s\n",
      result.stats.trials_run, result.stats.trials_skipped, result.stats.yes_instances,
      result.stats.no_instances, result.stats.seconds, rate);
  for (const fuzz::Finding& f : result.findings) {
    std::printf("  FINDING trial=%zu seed=%llu oracle=%s\n    %s\n", f.trial,
                static_cast<unsigned long long>(f.seed),
                fuzz::oracle_name(f.oracle).c_str(), f.detail.c_str());
    std::printf("    shrunk n=%zu m=%zu (from n=%zu, %zu steps)\n",
                f.graph.vertex_count(), f.graph.edge_count(),
                f.original.vertex_count(), f.shrink_steps);
    if (!cli.out_dir.empty()) write_finding_artifacts(f, entry.key, cli.out_dir);
  }

  report.add()
      .set("scheme", entry.key)
      .set("trials", result.stats.trials_run)
      .set("skipped", result.stats.trials_skipped)
      .set("findings", result.findings.size())
      .set("seconds", result.stats.seconds)
      .set("trials_per_s", rate);
  return result.findings.empty() ? 0 : 1;
}

int fuzz_command(const std::vector<std::string>& args, obs::Report& report) {
  const FuzzCliOptions cli = parse_fuzz_flags(args, 2);
  int rc = 0;
  if (args[1] == "all") {
    for (const auto& entry : scheme_registry())
      rc = std::max(rc, fuzz_one(entry, cli, report));
  } else {
    const RegisteredScheme* entry = lookup(args[1]);
    if (entry == nullptr) return 2;
    rc = fuzz_one(*entry, cli, report);
  }
  std::printf("\n");
  report.print_metrics();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  auto report = obs::Report::from_cli("lcert-cli", argc, argv);
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "list") {
      std::printf("available schemes:\n");
      for (const auto& entry : scheme_registry())
        std::printf("  %-24s %s\n", entry.key.c_str(), entry.description.c_str());
      return 0;
    }
    if (args[0] == "demo" && args.size() >= 2) {
      const RegisteredScheme* entry = lookup(args[1]);
      if (entry == nullptr) return 2;
      const std::size_t n = args.size() >= 3 ? std::stoul(args[2]) : 24;
      Rng rng(42);
      const Graph g = entry->family.yes_instance(n, rng);
      const int rc = run_scheme_on(*entry, g);
      if (!report.output_path().empty()) report.write(report.output_path());
      return rc;
    }
    if (args[0] == "run" && args.size() >= 3) {
      const RegisteredScheme* entry = lookup(args[1]);
      if (entry == nullptr) return 2;
      const int rc = run_scheme_on(*entry, load(args[2]));
      if (!report.output_path().empty()) report.write(report.output_path());
      return rc;
    }
    if (args[0] == "audit" && args.size() >= 2) {
      const RegisteredScheme* entry = lookup(args[1]);
      if (entry == nullptr) return 2;
      const std::size_t n = args.size() >= 3 ? std::stoul(args[2]) : 24;
      const int rc = audit_scheme(*entry, n, report);
      if (!report.output_path().empty()) report.write(report.output_path());
      return rc;
    }
    if (args[0] == "prove" && args.size() >= 2) {
      const int rc = prove_command(args, report);
      if (!report.output_path().empty()) report.write(report.output_path());
      return rc;
    }
    if (args[0] == "fuzz" && args.size() >= 2) {
      const int rc = fuzz_command(args, report);
      if (!report.output_path().empty()) report.write(report.output_path());
      return rc;
    }
    if (args[0] == "dot" && args.size() >= 2) {
      std::fputs(to_dot(load(args[1])).c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr,
               "usage: lcert_cli list | demo <scheme> [n] | run <scheme> <file|-> | "
               "audit <scheme> [n] | prove <scheme> [n] [--threads T] [--no-memo] "
               "[--family F] [--feas-tier-max T] | "
               "fuzz <scheme|all> [--trials N] [--time-budget S] "
               "[--seed S] [--threads T] [--base-n N] [--replay T] [--out DIR] | "
               "dot <file|->\n");
  return 2;
}
