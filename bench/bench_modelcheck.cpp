// E13 (Section 6, centralized payoff): model checking FO on bounded-treedepth
// graphs through the kernel vs. brute force. The repro-band note says
// "Courcelle-style automata are notoriously impractical"; the paper's own
// kernelization is the practical counterpoint — evaluation cost collapses
// from O(n^k) to O(n + |kernel|^k).
#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/logic/eval.hpp"
#include "src/logic/formulas.hpp"
#include "src/logic/modelcheck.hpp"
#include "src/obs/report.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lcert;
  auto report = obs::Report::from_cli("E13-modelcheck", argc, argv);
  Rng rng(13);
  report.meta("seed", 13);
  const Formula phi = f_triangle_free();  // FO depth 3

  std::printf("E13 / Section 6: FO model checking via kernelization (phi = triangle-free)\n\n");
  for (std::size_t n : {12u, 100u, 1000u, 10000u, 50000u}) {
    auto inst = make_bounded_treedepth_graph(n, 3, 0.25, rng);
    const obs::StopwatchMs kernel_timer;
    ModelCheckStats stats;
    const bool via_kernel =
        modelcheck_bounded_treedepth(inst.graph, phi, inst.elimination_tree, 0, &stats);
    const double kernel_ms = kernel_timer.elapsed();

    auto& record = report.add();
    record.set("scheme", "modelcheck[triangle-free]")
        .set("n", n)
        .set("kernel_size", stats.kernel_size)
        .set("wall_ms", kernel_ms);
    if (n <= 300) {  // O(n^3) evaluation: only feasible at small n
      const obs::StopwatchMs brute_timer;
      const bool brute = evaluate(inst.graph, phi);
      record.set("brute_ms", brute_timer.elapsed())
          .set("agree", brute == via_kernel ? "yes" : "NO(bug)");
    } else {
      record.set("agree", "-");
    }
  }
  report.note("");
  report.note("paper claim: the kernel column is flat in n, so model checking scales to");
  report.note("sizes where the direct O(n^k) evaluation is hopeless.");
  return report.finish();
}
