// E13 (Section 6, centralized payoff): model checking FO on bounded-treedepth
// graphs through the kernel vs. brute force. The repro-band note says
// "Courcelle-style automata are notoriously impractical"; the paper's own
// kernelization is the practical counterpoint — evaluation cost collapses
// from O(n^k) to O(n + |kernel|^k).
#include <chrono>
#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/logic/eval.hpp"
#include "src/logic/formulas.hpp"
#include "src/logic/modelcheck.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  using clk = std::chrono::steady_clock;
  Rng rng(13);
  const Formula phi = f_triangle_free();  // FO depth 3

  std::printf("E13 / Section 6: FO model checking via kernelization (phi = triangle-free)\n\n");
  std::printf("%10s %12s %14s %14s %10s\n", "n", "kernel size", "kernel ms",
              "brute ms", "agree");
  for (std::size_t n : {12u, 100u, 1000u, 10000u, 50000u}) {
    auto inst = make_bounded_treedepth_graph(n, 3, 0.25, rng);
    const auto t0 = clk::now();
    ModelCheckStats stats;
    const bool via_kernel =
        modelcheck_bounded_treedepth(inst.graph, phi, inst.elimination_tree, 0, &stats);
    const double kernel_ms =
        std::chrono::duration<double, std::milli>(clk::now() - t0).count();

    double brute_ms = -1;
    bool agree = true;
    if (n <= 300) {  // O(n^3) evaluation: only feasible at small n
      const auto t1 = clk::now();
      const bool brute = evaluate(inst.graph, phi);
      brute_ms = std::chrono::duration<double, std::milli>(clk::now() - t1).count();
      agree = (brute == via_kernel);
    }
    if (brute_ms >= 0)
      std::printf("%10zu %12zu %14.1f %14.1f %10s\n", n, stats.kernel_size, kernel_ms,
                  brute_ms, agree ? "yes" : "NO(bug)");
    else
      std::printf("%10zu %12zu %14.1f %14s %10s\n", n, stats.kernel_size, kernel_ms,
                  "infeasible", "-");
  }
  std::printf("\npaper claim: the kernel column is flat in n, so model checking scales to\n"
              "sizes where the direct O(n^k) evaluation is hopeless.\n");
  return 0;
}
