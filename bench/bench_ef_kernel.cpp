// E11 (supporting): cost of the correctness tooling — the kernelization's
// wall time and shrink ratio vs n, and the EF-game auditor's cost vs
// quantifier depth (the reason the audit runs on small instances only).
#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/kernel/reduce.hpp"
#include "src/logic/ef_game.hpp"
#include "src/obs/report.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lcert;
  auto report = obs::Report::from_cli("E11-ef-kernel", argc, argv);
  Rng rng(10);
  report.meta("seed", 10);

  std::printf("E11: kernelization cost and EF-audit cost\n\n");

  for (std::size_t n : {500u, 2000u, 8000u, 32000u}) {
    auto inst = make_bounded_treedepth_graph(n, 4, 0.3, rng);
    const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
    const obs::StopwatchMs timer;
    const Kernelization kz = k_reduce(inst.graph, model, 2);
    report.add()
        .set("scheme", "k_reduce[t=4,k=2]")
        .set("n", n)
        .set("kernel_size", kz.kernel.vertex_count())
        .set("shrink_pct", 100.0 * static_cast<double>(kz.kernel.vertex_count()) / n)
        .set("wall_ms", timer.elapsed());
  }

  auto inst = make_bounded_treedepth_graph(12, 3, 0.5, rng);
  const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
  for (std::size_t k : {1u, 2u, 3u}) {
    const Kernelization kz = k_reduce(inst.graph, model, k);
    const obs::StopwatchMs timer;
    const bool eq = ef_equivalent(inst.graph, kz.kernel, k);
    report.add()
        .set("scheme", "ef_equivalent")
        .set("n", 12)
        .set("k", k)
        .set("result", eq ? "equivalent" : "BUG")
        .set("wall_ms", timer.elapsed());
  }
  report.note("");
  report.note("note: EF cost is exponential in k — the audit backs Proposition 6.3 on");
  report.note("small instances; the schemes themselves run at full scale.");
  return report.finish();
}
