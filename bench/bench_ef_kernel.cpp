// E11 (supporting): cost of the correctness tooling — the kernelization's
// wall time and shrink ratio vs n, and the EF-game auditor's cost vs
// quantifier depth (the reason the audit runs on small instances only).
#include <chrono>
#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/kernel/reduce.hpp"
#include "src/logic/ef_game.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  using clock = std::chrono::steady_clock;
  Rng rng(10);

  std::printf("E11: kernelization cost and EF-audit cost\n\n");

  std::printf("k_reduce (t=4, k=2):\n%10s %14s %12s %12s\n", "n", "kernel size", "shrink",
              "ms");
  for (std::size_t n : {500u, 2000u, 8000u, 32000u}) {
    auto inst = make_bounded_treedepth_graph(n, 4, 0.3, rng);
    const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
    const auto start = clock::now();
    const Kernelization kz = k_reduce(inst.graph, model, 2);
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - start).count();
    std::printf("%10zu %14zu %11.1f%% %12.1f\n", n, kz.kernel.vertex_count(),
                100.0 * static_cast<double>(kz.kernel.vertex_count()) / n, ms);
  }

  std::printf("\nEF-game audit G =_k kernel(G) (n = 12):\n%8s %12s %10s\n", "k", "result",
              "ms");
  auto inst = make_bounded_treedepth_graph(12, 3, 0.5, rng);
  const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
  for (std::size_t k : {1u, 2u, 3u}) {
    const Kernelization kz = k_reduce(inst.graph, model, k);
    const auto start = clock::now();
    const bool eq = ef_equivalent(inst.graph, kz.kernel, k);
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - start).count();
    std::printf("%8zu %12s %10.1f\n", k, eq ? "equivalent" : "BUG", ms);
  }
  std::printf("\nnote: EF cost is exponential in k — the audit backs Proposition 6.3 on\n"
              "small instances; the schemes themselves run at full scale.\n");
  return 0;
}
