// E9 (Proposition 3.4): spanning tree + vertex count certification with
// O(log n) bits — the toolbox primitive. Measured via the vertex-parity
// scheme (itself a Theta(log n) property by Göös–Suomela).
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/spanning_tree.hpp"
#include "src/util/bitio.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lcert;
  auto report = obs::Report::from_cli("E9-spanning-tree", argc, argv);
  Rng rng(9);
  report.meta("seed", 9);

  std::printf("E9 / Proposition 3.4: spanning tree + count with O(log n) bits\n\n");
  VertexParityScheme scheme;
  for (std::size_t n : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    Graph g = make_random_tree(n, rng);
    assign_random_ids(g, rng);
    const obs::StopwatchMs timer;
    const std::size_t bits = certified_size_bits(scheme, g);
    report.add()
        .set("scheme", scheme.name())
        .set("n", n)
        .set("max_bits", bits)
        .set("bits/log2(n)", static_cast<double>(bits) / bits_for(n))
        .set("wall_ms", timer.elapsed());
  }
  report.note("");
  report.note("paper claim: the ratio column is bounded (certificates are Theta(log n)).");
  return report.finish();
}
