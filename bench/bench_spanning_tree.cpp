// E9 (Proposition 3.4): spanning tree + vertex count certification with
// O(log n) bits — the toolbox primitive. Measured via the vertex-parity
// scheme (itself a Theta(log n) property by Göös–Suomela).
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/schemes/spanning_tree.hpp"
#include "src/util/bitio.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  Rng rng(9);

  std::printf("E9 / Proposition 3.4: spanning tree + count with O(log n) bits\n\n");
  std::printf("%10s %14s %16s\n", "n", "max cert bits", "bits/log2(n)");
  VertexParityScheme scheme;
  for (std::size_t n : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    Graph g = make_random_tree(n, rng);
    assign_random_ids(g, rng);
    const std::size_t bits = certified_size_bits(scheme, g);
    std::printf("%10zu %14zu %16.2f\n", n, bits, static_cast<double>(bits) / bits_for(n));
  }
  std::printf("\npaper claim: the ratio column is bounded (certificates are Theta(log n)).\n");
  return 0;
}
