// E5 (Theorem 2.6): FO/MSO certification on treedepth <= t graphs costs
// O(t log n + f(t, phi)) bits. Sweeping n at fixed (t, phi) the certificate
// size must be affine in log n — the kernel/type part is constant in n.
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/logic/formulas.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/kernel_scheme.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/util/bitio.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lcert;
  auto report = obs::Report::from_cli("E5-kernel-cert", argc, argv);
  Rng rng(5);
  report.meta("seed", 5);

  std::printf("E5 / Theorem 2.6: FO certification via certified kernels\n");
  std::printf("phi = triangle-free (depth 3), t = 3, threshold k = 3\n\n");
  const Formula phi = f_triangle_free();
  for (std::size_t n : {64u, 256u, 1024u, 4096u, 16384u}) {
    // Sparse instances are trees: triangle-free with certainty.
    auto inst = make_bounded_treedepth_graph(n, 3, 0.0, rng);
    assign_random_ids(inst.graph, rng);
    RootedTree witness = inst.elimination_tree;
    KernelMsoScheme scheme(phi, 3, 3, [witness](const Graph&) { return witness; });
    TreedepthScheme base(3, [witness](const Graph&) { return witness; });
    const obs::StopwatchMs timer;
    const std::size_t kernel_bits = certified_size_bits(scheme, inst.graph);
    const std::size_t base_bits = certified_size_bits(base, inst.graph);
    report.add()
        .set("scheme", scheme.name())
        .set("n", n)
        .set("max_bits", kernel_bits)
        .set("thm2.4_bits", base_bits)
        .set("kernel_extra", kernel_bits - base_bits)
        .set("wall_ms", timer.elapsed());
  }
  report.note("");
  report.note("paper claim: kernel_extra (types + flags = f(t, phi)) is bounded in n;");
  report.note("the growth comes only from the O(t log n) Theorem 2.4 layer.");
  return report.finish();
}
