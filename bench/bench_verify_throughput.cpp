// E10 (supporting): the verifier is genuinely local — per-vertex verification
// time is independent of n (it depends on the degree and certificate size
// only). google-benchmark micro-measurements of Scheme::verify.
//
// The BM_Engine* family measures whole-round verify_assignment throughput and
// backs BENCH_verify.json (bench/run_verify_bench.sh): the seed engine built
// an owning View per vertex per round (certificate deep copies); the current
// engine binds a precomputed ViewCache (pointer fills only) and optionally
// fans out across a worker pool.
#include <benchmark/benchmark.h>

#include "src/automata/box_index.hpp"
#include "src/cert/audit.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/logic/formulas.hpp"
#include "src/schemes/kernel_scheme.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/spanning_tree.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

struct Prepared {
  Graph graph;
  std::vector<Certificate> certs;
  std::vector<View> views;
};

Prepared prepare(const Scheme& scheme, Graph g, Rng& rng) {
  assign_random_ids(g, rng);
  auto certs = scheme.assign(g);
  if (!certs.has_value()) throw std::logic_error("bench: prover failed");
  Prepared p{std::move(g), std::move(*certs), {}};
  for (Vertex v = 0; v < p.graph.vertex_count(); ++v)
    p.views.push_back(make_view(p.graph, p.certs, v));
  return p;
}

void run_all_views(benchmark::State& state, const Scheme& scheme, Prepared& p) {
  for (auto _ : state) {
    bool all = true;
    for (View& view : p.views) all = all && scheme.verify(view.as_ref());
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.views.size()));
}

void BM_VerifyParity(benchmark::State& state) {
  Rng rng(1);
  VertexParityScheme scheme;
  auto p = prepare(scheme, make_random_tree(static_cast<std::size_t>(state.range(0)), rng),
                         rng);
  run_all_views(state, scheme, p);
}
BENCHMARK(BM_VerifyParity)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VerifyMsoTree(benchmark::State& state) {
  Rng rng(2);
  MsoTreeScheme scheme(standard_tree_automata()[0]);  // "path"
  auto p = prepare(scheme, make_path(static_cast<std::size_t>(state.range(0))), rng);
  run_all_views(state, scheme, p);
}
BENCHMARK(BM_VerifyMsoTree)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VerifyTreedepth(benchmark::State& state) {
  Rng rng(3);
  auto inst = make_bounded_treedepth_graph(static_cast<std::size_t>(state.range(0)), 5, 0.3, rng);
  RootedTree witness = inst.elimination_tree;
  TreedepthScheme scheme(5, [witness](const Graph&) { return witness; });
  auto p = prepare(scheme, inst.graph, rng);
  run_all_views(state, scheme, p);
}
BENCHMARK(BM_VerifyTreedepth)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VerifyKernelMso(benchmark::State& state) {
  Rng rng(4);
  auto inst = make_bounded_treedepth_graph(static_cast<std::size_t>(state.range(0)), 3, 0.0, rng);
  RootedTree witness = inst.elimination_tree;
  KernelMsoScheme scheme(f_triangle_free(), 3, 3, [witness](const Graph&) { return witness; });
  auto p = prepare(scheme, inst.graph, rng);
  run_all_views(state, scheme, p);
}
BENCHMARK(BM_VerifyKernelMso)->Arg(256)->Arg(1024);

// ---------------------------------------------------------------------------
// Engine throughput: copy-vs-zero-copy and serial-vs-parallel, one full
// verification round (all n vertices) per item batch.
// ---------------------------------------------------------------------------

Prepared prepare_mso(std::size_t n) {
  Rng rng(2);
  MsoTreeScheme scheme(standard_tree_automata()[0]);  // "path"
  return prepare(scheme, make_path(n), rng);
}

// Seed-engine behavior: a fresh owning View (certificate deep copies) per
// vertex per round, serial sweep.
void BM_EngineSeedCopies(benchmark::State& state) {
  MsoTreeScheme scheme(standard_tree_automata()[0]);
  const auto p = prepare_mso(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bool all = true;
    for (Vertex v = 0; v < p.graph.vertex_count(); ++v) {
      View view = make_view(p.graph, p.certs, v);
      all = all && scheme.verify(view.as_ref());
    }
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.graph.vertex_count()));
}
BENCHMARK(BM_EngineSeedCopies)->Arg(1024)->Arg(4096);

void run_engine_rounds(benchmark::State& state, std::size_t n, std::size_t threads) {
  MsoTreeScheme scheme(standard_tree_automata()[0]);
  const auto p = prepare_mso(n);
  const ViewCache cache(p.graph);  // amortized across rounds, as in the audit
  const RunOptions options{threads, /*stop_at_first_reject=*/false};
  for (auto _ : state) {
    const auto outcome = verify_assignment(scheme, cache, p.certs, options);
    benchmark::DoNotOptimize(outcome.all_accept);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_EngineZeroCopySerial(benchmark::State& state) {
  run_engine_rounds(state, static_cast<std::size_t>(state.range(0)), 1);
}
BENCHMARK(BM_EngineZeroCopySerial)->Arg(1024)->Arg(4096);

// Same rounds with the metrics registry forced off: the spread between this
// and BM_EngineZeroCopySerial is the instrumentation overhead (budget: <5%
// at n=4096), measured in-process so machine drift between runs cancels.
void BM_EngineZeroCopySerialNoMetrics(benchmark::State& state) {
  const bool was_enabled = obs::registry().enabled();
  obs::registry().set_enabled(false);
  run_engine_rounds(state, static_cast<std::size_t>(state.range(0)), 1);
  obs::registry().set_enabled(was_enabled);
}
BENCHMARK(BM_EngineZeroCopySerialNoMetrics)->Arg(1024)->Arg(4096);

void BM_EngineZeroCopyParallel(benchmark::State& state) {
  run_engine_rounds(state, static_cast<std::size_t>(state.range(0)), 0);  // 0 = auto
}
BENCHMARK(BM_EngineZeroCopyParallel)->Arg(1024)->Arg(4096);

// Audit throughput: one full attack_soundness sweep (shared ViewCache,
// trial-level fan-out); items = attack trials executed.
void run_audit(benchmark::State& state, std::size_t threads) {
  MsoTreeScheme scheme(standard_tree_automata()[0]);
  Rng rng(5);
  Graph no = make_star(static_cast<std::size_t>(state.range(0)));  // not a path
  assign_random_ids(no, rng);
  Rng yes_rng(6);
  Graph yes = make_path(no.vertex_count());
  assign_random_ids(yes, yes_rng);
  const auto tmpl = scheme.assign(yes);
  RunOptions options;
  options.random_trials = 64;
  options.mutation_trials = 64;
  options.num_threads = threads;
  std::uint64_t seed = 7;
  for (auto _ : state) {
    Rng attack_rng(seed++);  // fresh randomness, same cost profile
    const auto forged =
        attack_soundness(scheme, no, tmpl ? &*tmpl : nullptr, attack_rng, options);
    if (forged.has_value()) state.SkipWithError("unexpected forgery");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.random_trials +
                                                    options.mutation_trials));
}

void BM_AuditSerial(benchmark::State& state) { run_audit(state, 1); }
BENCHMARK(BM_AuditSerial)->Arg(512);

void BM_AuditParallel(benchmark::State& state) { run_audit(state, 0); }
BENCHMARK(BM_AuditParallel)->Arg(512);

// ---------------------------------------------------------------------------
// The leaves>=4 cliff (E19): one automaton state expands to ~29k raw DNF
// boxes, so the seed verifier's linear sweep cost ~140µs per vertex in that
// state. The rows below isolate the fix: canonicalization (raw -> a handful
// of boxes) plus the per-state BoxIndex.
// ---------------------------------------------------------------------------

constexpr std::size_t kLeaves4 = 7;  // standard_tree_automata() index

// levels such that 2^levels - 1 is the largest complete binary tree <= n.
std::size_t levels_for(std::size_t n) {
  std::size_t levels = 1;
  while (((std::size_t{1} << (levels + 1)) - 1) <= n) ++levels;
  return levels;
}

Prepared prepare_leaves4(std::size_t n) {
  Rng rng(8);
  MsoTreeScheme scheme(standard_tree_automata()[kLeaves4]);
  return prepare(scheme, make_complete_binary_tree(levels_for(n)), rng);
}

// Whole-round engine throughput on the scheme that used to fall off the
// cliff (n=1023 / n=4095 complete binary trees).
void BM_EngineLeaves4(benchmark::State& state) {
  MsoTreeScheme scheme(standard_tree_automata()[kLeaves4]);
  const auto p = prepare_leaves4(static_cast<std::size_t>(state.range(0)));
  const ViewCache cache(p.graph);
  const RunOptions options{1, /*stop_at_first_reject=*/false};
  for (auto _ : state) {
    const auto outcome = verify_assignment(scheme, cache, p.certs, options);
    benchmark::DoNotOptimize(outcome.all_accept);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.graph.vertex_count()));
}
BENCHMARK(BM_EngineLeaves4)->Arg(1024)->Arg(4096);

// The worst state of the leaves>=4 automaton, as the verifier probes it:
// child-state count vectors with total <= 2 (binary-tree child multisets).
struct Leaves4WorstState {
  std::size_t k = 0;
  std::size_t worst = 0;
  std::vector<IntervalBox> raw;                    // seed representation
  std::vector<std::vector<std::size_t>> probes;    // realistic counts vectors
};

Leaves4WorstState leaves4_worst_state() {
  Leaves4WorstState w;
  const auto entry = standard_tree_automata()[kLeaves4];
  w.k = entry.automaton.state_count;
  for (std::size_t q = 0; q < w.k; ++q) {
    auto boxes = entry.automaton.transition(q).to_boxes_raw(w.k);
    if (boxes.size() > w.raw.size()) {
      w.worst = q;
      w.raw = std::move(boxes);
    }
  }
  // Every multiset of <= 2 children over k states, the exact vectors
  // verify_view feeds first_containing on a binary tree.
  w.probes.push_back(std::vector<std::size_t>(w.k, 0));
  for (std::size_t a = 0; a < w.k; ++a) {
    std::vector<std::size_t> one(w.k, 0);
    one[a] = 1;
    w.probes.push_back(one);
    for (std::size_t b = a; b < w.k; ++b) {
      std::vector<std::size_t> two(w.k, 0);
      ++two[a];
      ++two[b];
      w.probes.push_back(two);
    }
  }
  return w;
}

// Seed path: linear sweep over the raw DNF of the worst state.
void BM_Leaves4WorstStateRawLinear(benchmark::State& state) {
  const auto w = leaves4_worst_state();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& counts : w.probes) {
      for (std::size_t i = 0; i < w.raw.size(); ++i)
        if (w.raw[i].contains(counts)) {
          ++hits;
          break;
        }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.probes.size()));
  state.counters["boxes"] = static_cast<double>(w.raw.size());
}
BENCHMARK(BM_Leaves4WorstStateRawLinear);

// Fixed path: canonical DNF behind the per-state BoxIndex.
void BM_Leaves4WorstStateIndexed(benchmark::State& state) {
  const auto w = leaves4_worst_state();
  const auto entry = standard_tree_automata()[kLeaves4];
  const BoxIndex index(entry.automaton.transition(w.worst).to_boxes(w.k));
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& counts : w.probes)
      if (index.first_containing(counts.data(), w.k).index != BoxIndex::npos)
        ++hits;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.probes.size()));
  state.counters["boxes"] = static_cast<double>(index.size());
}
BENCHMARK(BM_Leaves4WorstStateIndexed);

// One timed verify_assignment round for the structured record: the
// google-benchmark reporters above stay authoritative for the micro numbers;
// this row feeds the shared obs::Report artifact ({scheme, n, max_bits,
// wall_ms} plus engine counters) that every bench emits.
void add_engine_record(obs::Report& report, std::size_t n, std::size_t threads,
                       const char* mode) {
  MsoTreeScheme scheme(standard_tree_automata()[0]);
  const auto p = prepare_mso(n);
  const ViewCache cache(p.graph);
  const RunOptions options{threads, /*stop_at_first_reject=*/false};
  std::size_t max_bits = 0;
  const std::size_t rounds = 50;
  const obs::StopwatchMs timer;
  for (std::size_t i = 0; i < rounds; ++i) {
    const auto outcome = verify_assignment(scheme, cache, p.certs, options);
    if (!outcome.all_accept) throw std::logic_error("bench: honest round rejected");
    max_bits = outcome.max_certificate_bits;
  }
  const double wall_ms = timer.elapsed();
  report.add()
      .set("scheme", scheme.name())
      .set("mode", mode)
      .set("n", n)
      .set("max_bits", max_bits)
      .set("wall_ms", wall_ms)
      .set("Mvertices/s",
           static_cast<double>(n) * static_cast<double>(rounds) / (wall_ms * 1e3));
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --metrics-out / LCERT_METRICS before google-benchmark sees argv.
  auto report = obs::Report::from_cli("E10-verify-throughput", argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  add_engine_record(report, 4096, 1, "serial");
  add_engine_record(report, 4096, 0, "parallel");
  report.note("");
  report.note("micro numbers above are google-benchmark's; the table rows re-measure one");
  report.note("verify_assignment round (50x) for the structured artifact.");
  return report.finish();
}
