// E10 (supporting): the verifier is genuinely local — per-vertex verification
// time is independent of n (it depends on the degree and certificate size
// only). google-benchmark micro-measurements of Scheme::verify.
#include <benchmark/benchmark.h>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/logic/formulas.hpp"
#include "src/schemes/kernel_scheme.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/spanning_tree.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

struct Prepared {
  Graph graph;
  std::vector<Certificate> certs;
  std::vector<View> views;
};

Prepared prepare(const Scheme& scheme, Graph g, Rng& rng) {
  assign_random_ids(g, rng);
  auto certs = scheme.assign(g);
  if (!certs.has_value()) throw std::logic_error("bench: prover failed");
  Prepared p{std::move(g), std::move(*certs), {}};
  for (Vertex v = 0; v < p.graph.vertex_count(); ++v)
    p.views.push_back(make_view(p.graph, p.certs, v));
  return p;
}

void run_all_views(benchmark::State& state, const Scheme& scheme, const Prepared& p) {
  for (auto _ : state) {
    bool all = true;
    for (const View& view : p.views) all = all && scheme.verify(view);
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.views.size()));
}

void BM_VerifyParity(benchmark::State& state) {
  Rng rng(1);
  VertexParityScheme scheme;
  const auto p = prepare(scheme, make_random_tree(static_cast<std::size_t>(state.range(0)), rng),
                         rng);
  run_all_views(state, scheme, p);
}
BENCHMARK(BM_VerifyParity)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VerifyMsoTree(benchmark::State& state) {
  Rng rng(2);
  MsoTreeScheme scheme(standard_tree_automata()[0]);  // "path"
  const auto p = prepare(scheme, make_path(static_cast<std::size_t>(state.range(0))), rng);
  run_all_views(state, scheme, p);
}
BENCHMARK(BM_VerifyMsoTree)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VerifyTreedepth(benchmark::State& state) {
  Rng rng(3);
  auto inst = make_bounded_treedepth_graph(static_cast<std::size_t>(state.range(0)), 5, 0.3, rng);
  RootedTree witness = inst.elimination_tree;
  TreedepthScheme scheme(5, [witness](const Graph&) { return witness; });
  const auto p = prepare(scheme, inst.graph, rng);
  run_all_views(state, scheme, p);
}
BENCHMARK(BM_VerifyTreedepth)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VerifyKernelMso(benchmark::State& state) {
  Rng rng(4);
  auto inst = make_bounded_treedepth_graph(static_cast<std::size_t>(state.range(0)), 3, 0.0, rng);
  RootedTree witness = inst.elimination_tree;
  KernelMsoScheme scheme(f_triangle_free(), 3, 3, [witness](const Graph&) { return witness; });
  const auto p = prepare(scheme, inst.graph, rng);
  run_all_views(state, scheme, p);
}
BENCHMARK(BM_VerifyKernelMso)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
