#!/usr/bin/env bash
# Runs the verification-engine benchmarks and records the headline numbers in
# BENCH_verify.json at the repo root.
#
# The headline metric is the speedup of the zero-copy batched engine over the
# seed engine's per-vertex-copy loop (BM_EngineSeedCopies emulates it) on the
# MsoTree scheme at n=4096. Usage:
#
#   bench/run_verify_bench.sh [build-dir]      # default build dir: build/
#
# The artifact carries a "provenance" block (compiler, flags, CPU count, git
# SHA, run date) so a stored BENCH_verify.json can always be traced back to
# the toolchain and commit that produced it. Override the timestamp with
# LCERT_BENCH_DATE for reproducible artifacts.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
BIN="$BUILD_DIR/bench/bench_verify_throughput"
OUT="$REPO_ROOT/BENCH_verify.json"
RAW="$(mktemp)"
METRICS="$(mktemp)"
trap 'rm -f "$RAW" "$METRICS"' EXIT

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — build first: cmake --build '$BUILD_DIR' --target bench_verify_throughput" >&2
  exit 1
fi

cache_var() {  # cache_var <name> — value of a CMakeCache entry, empty if absent
  sed -n "s/^$1:[^=]*=//p" "$BUILD_DIR/CMakeCache.txt" 2>/dev/null | head -n1
}

GIT_SHA="$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=0
if [[ "$GIT_SHA" != unknown ]] && \
   [[ -n "$(git -C "$REPO_ROOT" status --porcelain 2>/dev/null)" ]]; then
  GIT_DIRTY=1
fi
# Provenance guard: a tracked artifact must stay traceable to a commit. When
# the SHA is unknown (no git, shallow mishap, ...) refuse to clobber the
# committed file rather than produce an orphaned artifact.
if [[ "$GIT_SHA" == unknown && -z "${LCERT_BENCH_FORCE:-}" ]] && \
   git -C "$REPO_ROOT" ls-files --error-unmatch "$(basename "$OUT")" >/dev/null 2>&1; then
  echo "error: git SHA is unknown but $OUT is committed — refusing to overwrite" >&2
  echo "       (set LCERT_BENCH_FORCE=1 to override)" >&2
  exit 1
fi
RUN_DATE="${LCERT_BENCH_DATE:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"

# Artifact schema guard (companion to the provenance guard above): refuse to
# overwrite an artifact written under a different schema version — a silent
# cross-schema overwrite corrupts the bench trajectory that EXPERIMENTS.md
# tables and tools/bench_compare.py read. LCERT_BENCH_FORCE=1 overrides.
SCHEMA_VERSION=2
if [[ -f "$OUT" && -z "${LCERT_BENCH_FORCE:-}" ]]; then
  EXISTING_SCHEMA="$(python3 -c \
      'import json,sys; print(json.load(open(sys.argv[1])).get("schema", 1))' \
      "$OUT" 2>/dev/null || echo unreadable)"
  if [[ "$EXISTING_SCHEMA" != "$SCHEMA_VERSION" ]]; then
    echo "error: $OUT carries schema $EXISTING_SCHEMA but this script writes schema $SCHEMA_VERSION — refusing to overwrite" >&2
    echo "       (set LCERT_BENCH_FORCE=1 to override)" >&2
    exit 1
  fi
fi
NUM_CPUS="$(nproc 2>/dev/null || echo 1)"
BUILD_TYPE="$(cache_var CMAKE_BUILD_TYPE)"
CXX_COMPILER="$(cache_var CMAKE_CXX_COMPILER)"
CXX_FLAGS="$(cache_var CMAKE_CXX_FLAGS)"
TYPE_UPPER="$(echo "${BUILD_TYPE:-}" | tr '[:lower:]' '[:upper:]')"
CXX_FLAGS_TYPE="$([[ -n "$TYPE_UPPER" ]] && cache_var "CMAKE_CXX_FLAGS_${TYPE_UPPER}" || true)"
COMPILER_VERSION="$("${CXX_COMPILER:-c++}" --version 2>/dev/null | head -n1 || echo unknown)"

# The obs table goes to stdout for the human; the google-benchmark JSON goes
# straight to a file so the table cannot corrupt it.
"$BIN" --benchmark_filter='BM_Engine|BM_Audit' \
       --benchmark_min_time=0.3 \
       --benchmark_out="$RAW" --benchmark_out_format=json \
       --metrics-out "$METRICS" \
       ${LCERT_TRACE_OUT:+--trace-out "$LCERT_TRACE_OUT"}

env RAW="$RAW" METRICS="$METRICS" OUT="$OUT" SCHEMA_VERSION="$SCHEMA_VERSION" GIT_SHA="$GIT_SHA" GIT_DIRTY="$GIT_DIRTY" \
    RUN_DATE="$RUN_DATE" \
    NUM_CPUS="$NUM_CPUS" BUILD_TYPE="$BUILD_TYPE" CXX_COMPILER="$CXX_COMPILER" \
    CXX_FLAGS="$CXX_FLAGS" CXX_FLAGS_TYPE="$CXX_FLAGS_TYPE" \
    COMPILER_VERSION="$COMPILER_VERSION" \
    python3 - <<'EOF'
import json
import os

with open(os.environ["RAW"]) as f:
    raw = json.load(f)
try:
    with open(os.environ["METRICS"]) as f:
        obs = json.load(f)
except (OSError, json.JSONDecodeError):
    obs = {}

rates = {}  # benchmark name -> items per second
for b in raw.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips is not None:
        rates[b["name"]] = ips

seed = rates.get("BM_EngineSeedCopies/4096")
serial = rates.get("BM_EngineZeroCopySerial/4096")
parallel = rates.get("BM_EngineZeroCopyParallel/4096")
best = max(v for v in (serial, parallel) if v is not None)
speedup = best / seed if seed else None

result = {
    "schema": int(os.environ["SCHEMA_VERSION"]),
    "written_at": os.environ["RUN_DATE"],
    "benchmark": "verify_engine_throughput",
    "scheme": "mso-tree[path]",
    "n": 4096,
    "provenance": {
        "git_sha": os.environ["GIT_SHA"],
        "dirty": os.environ["GIT_DIRTY"] == "1",
        "date": os.environ["RUN_DATE"],
        "num_cpus": int(os.environ["NUM_CPUS"]),
        "compiler": os.environ["CXX_COMPILER"],
        "compiler_version": os.environ["COMPILER_VERSION"],
        "build_type": os.environ["BUILD_TYPE"],
        "cxx_flags": " ".join(
            s for s in (os.environ["CXX_FLAGS"], os.environ["CXX_FLAGS_TYPE"]) if s
        ),
    },
    "context": raw.get("context", {}),
    "items_per_second": rates,
    "obs_records": obs.get("records", []),
    "headline": {
        "seed_engine_items_per_second": seed,
        "zero_copy_serial_items_per_second": serial,
        "zero_copy_parallel_items_per_second": parallel,
        "speedup_vs_seed_engine": speedup,
        "target_speedup": 5.0,
        "meets_target": speedup is not None and speedup >= 5.0,
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {os.environ['OUT']}")
if speedup is not None:
    print(f"speedup vs seed engine at n=4096: {speedup:.2f}x "
          f"({'meets' if speedup >= 5.0 else 'MISSES'} the 5x target)")
EOF
