#!/usr/bin/env bash
# Runs the verification-engine benchmarks and records the headline numbers in
# BENCH_verify.json at the repo root.
#
# The headline metric is the speedup of the zero-copy batched engine over the
# seed engine's per-vertex-copy loop (BM_EngineSeedCopies emulates it) on the
# MsoTree scheme at n=4096. Usage:
#
#   bench/run_verify_bench.sh [build-dir]      # default build dir: build/
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
BIN="$BUILD_DIR/bench/bench_verify_throughput"
OUT="$REPO_ROOT/BENCH_verify.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — build first: cmake --build '$BUILD_DIR' --target bench_verify_throughput" >&2
  exit 1
fi

"$BIN" --benchmark_filter='BM_Engine|BM_Audit' \
       --benchmark_min_time=0.3 \
       --benchmark_format=json >"$RAW"

python3 - "$RAW" "$OUT" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

rates = {}  # benchmark name -> items per second
for b in raw.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips is not None:
        rates[b["name"]] = ips

seed = rates.get("BM_EngineSeedCopies/4096")
serial = rates.get("BM_EngineZeroCopySerial/4096")
parallel = rates.get("BM_EngineZeroCopyParallel/4096")
best = max(v for v in (serial, parallel) if v is not None)
speedup = best / seed if seed else None

result = {
    "benchmark": "verify_engine_throughput",
    "scheme": "mso-tree[path]",
    "n": 4096,
    "context": raw.get("context", {}),
    "items_per_second": rates,
    "headline": {
        "seed_engine_items_per_second": seed,
        "zero_copy_serial_items_per_second": serial,
        "zero_copy_parallel_items_per_second": parallel,
        "speedup_vs_seed_engine": speedup,
        "target_speedup": 5.0,
        "meets_target": speedup is not None and speedup >= 5.0,
    },
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
if speedup is not None:
    print(f"speedup vs seed engine at n=4096: {speedup:.2f}x "
          f"({'meets' if speedup >= 5.0 else 'MISSES'} the 5x target)")
EOF
