#!/usr/bin/env bash
# Runs the verification-engine benchmarks and records the headline numbers in
# BENCH_verify.json at the repo root.
#
# The headline metric is the speedup of the zero-copy batched engine over the
# seed engine's per-vertex-copy loop (BM_EngineSeedCopies emulates it) on the
# MsoTree scheme at n=4096. Usage:
#
#   bench/run_verify_bench.sh [build-dir]          # default build dir: build/
#   bench/run_verify_bench.sh [build-dir] --smoke  # n=1024 + cliff rows (CI)
#
# The artifact carries a "provenance" block (compiler, flags, CPU count, git
# SHA, run date) so a stored BENCH_verify.json can always be traced back to
# the toolchain and commit that produced it. Override the timestamp with
# LCERT_BENCH_DATE for reproducible artifacts.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
BIN="$BUILD_DIR/bench/bench_verify_throughput"
OUT="$REPO_ROOT/BENCH_verify.json"
RAW="$(mktemp)"
METRICS="$(mktemp)"
trap 'rm -f "$RAW" "$METRICS"' EXIT

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — build first: cmake --build '$BUILD_DIR' --target bench_verify_throughput" >&2
  exit 1
fi

cache_var() {  # cache_var <name> — value of a CMakeCache entry, empty if absent
  sed -n "s/^$1:[^=]*=//p" "$BUILD_DIR/CMakeCache.txt" 2>/dev/null | head -n1
}

GIT_SHA="$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=0
if [[ "$GIT_SHA" != unknown ]] && \
   [[ -n "$(git -C "$REPO_ROOT" status --porcelain 2>/dev/null)" ]]; then
  GIT_DIRTY=1
fi
# Provenance guard: a tracked artifact must stay traceable to a commit. When
# the SHA is unknown (no git, shallow mishap, ...) refuse to clobber the
# committed file rather than produce an orphaned artifact.
if [[ "$GIT_SHA" == unknown && -z "${LCERT_BENCH_FORCE:-}" ]] && \
   git -C "$REPO_ROOT" ls-files --error-unmatch "$(basename "$OUT")" >/dev/null 2>&1; then
  echo "error: git SHA is unknown but $OUT is committed — refusing to overwrite" >&2
  echo "       (set LCERT_BENCH_FORCE=1 to override)" >&2
  exit 1
fi
# Dirty-tree guard: a committed artifact must be reproducible from the SHA in
# its provenance block. A run from a dirty tree would stamp dirty=true over a
# clean artifact, so refuse outright instead of warning.
if [[ "$GIT_DIRTY" == 1 && -z "${LCERT_BENCH_FORCE:-}" ]] && \
   git -C "$REPO_ROOT" ls-files --error-unmatch "$(basename "$OUT")" >/dev/null 2>&1; then
  echo "error: working tree is dirty but $OUT is committed — refusing to overwrite" >&2
  echo "       (commit or stash first, or set LCERT_BENCH_FORCE=1 to override)" >&2
  exit 1
fi
RUN_DATE="${LCERT_BENCH_DATE:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"

# Artifact schema guard (companion to the provenance guard above): refuse to
# overwrite an artifact written under a different schema version — a silent
# cross-schema overwrite corrupts the bench trajectory that EXPERIMENTS.md
# tables and tools/bench_compare.py read. LCERT_BENCH_FORCE=1 overrides.
SCHEMA_VERSION=2
if [[ -f "$OUT" && -z "${LCERT_BENCH_FORCE:-}" ]]; then
  EXISTING_SCHEMA="$(python3 -c \
      'import json,sys; print(json.load(open(sys.argv[1])).get("schema", 1))' \
      "$OUT" 2>/dev/null || echo unreadable)"
  if [[ "$EXISTING_SCHEMA" != "$SCHEMA_VERSION" ]]; then
    echo "error: $OUT carries schema $EXISTING_SCHEMA but this script writes schema $SCHEMA_VERSION — refusing to overwrite" >&2
    echo "       (set LCERT_BENCH_FORCE=1 to override)" >&2
    exit 1
  fi
fi
NUM_CPUS="$(nproc 2>/dev/null || echo 1)"
BUILD_TYPE="$(cache_var CMAKE_BUILD_TYPE)"
CXX_COMPILER="$(cache_var CMAKE_CXX_COMPILER)"
CXX_FLAGS="$(cache_var CMAKE_CXX_FLAGS)"
TYPE_UPPER="$(echo "${BUILD_TYPE:-}" | tr '[:lower:]' '[:upper:]')"
CXX_FLAGS_TYPE="$([[ -n "$TYPE_UPPER" ]] && cache_var "CMAKE_CXX_FLAGS_${TYPE_UPPER}" || true)"
COMPILER_VERSION="$("${CXX_COMPILER:-c++}" --version 2>/dev/null | head -n1 || echo unknown)"

# Smoke mode keeps the n=1024 engine rows plus the leaves>=4 cliff micro
# rows: the CI job wants the artifact shape, the raw-vs-canonical box counts,
# and a regression signal on the cliff — not the full sweep.
FILTER='BM_Engine|BM_Audit|BM_Leaves4'
if [[ "$SMOKE" == 1 ]]; then
  FILTER='BM_Engine.*/1024$|BM_Leaves4WorstState'
fi

# The obs table goes to stdout for the human; the google-benchmark JSON goes
# straight to a file so the table cannot corrupt it.
"$BIN" --benchmark_filter="$FILTER" \
       --benchmark_min_time=0.3 \
       --benchmark_out="$RAW" --benchmark_out_format=json \
       --metrics-out "$METRICS" \
       ${LCERT_TRACE_OUT:+--trace-out "$LCERT_TRACE_OUT"}

env RAW="$RAW" METRICS="$METRICS" OUT="$OUT" SCHEMA_VERSION="$SCHEMA_VERSION" GIT_SHA="$GIT_SHA" GIT_DIRTY="$GIT_DIRTY" \
    RUN_DATE="$RUN_DATE" SMOKE="$SMOKE" \
    NUM_CPUS="$NUM_CPUS" BUILD_TYPE="$BUILD_TYPE" CXX_COMPILER="$CXX_COMPILER" \
    CXX_FLAGS="$CXX_FLAGS" CXX_FLAGS_TYPE="$CXX_FLAGS_TYPE" \
    COMPILER_VERSION="$COMPILER_VERSION" \
    python3 - <<'EOF'
import json
import os

with open(os.environ["RAW"]) as f:
    raw = json.load(f)
try:
    with open(os.environ["METRICS"]) as f:
        obs = json.load(f)
except (OSError, json.JSONDecodeError):
    obs = {}

rates = {}  # benchmark name -> items per second
boxes = {}  # benchmark name -> user counter "boxes" (DNF size of the row)
for b in raw.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips is not None:
        rates[b["name"]] = ips
    if "boxes" in b:
        boxes[b["name"]] = int(b["boxes"])

smoke = os.environ["SMOKE"] == "1"
seed = rates.get("BM_EngineSeedCopies/4096")
serial = rates.get("BM_EngineZeroCopySerial/4096")
parallel = rates.get("BM_EngineZeroCopyParallel/4096")
best_rates = [v for v in (serial, parallel) if v is not None]
best = max(best_rates) if best_rates else None
speedup = best / seed if seed and best else None

# The leaves>=4 cliff (E19): per-probe throughput of the seed linear sweep
# over the worst state's raw DNF vs the canonical DNF behind the BoxIndex.
cliff_raw = rates.get("BM_Leaves4WorstStateRawLinear")
cliff_indexed = rates.get("BM_Leaves4WorstStateIndexed")
cliff_improvement = cliff_indexed / cliff_raw if cliff_raw and cliff_indexed else None

result = {
    "schema": int(os.environ["SCHEMA_VERSION"]),
    "written_at": os.environ["RUN_DATE"],
    "benchmark": "verify_engine_throughput",
    "scheme": "mso-tree[path]",
    "n": 4096,
    "provenance": {
        "git_sha": os.environ["GIT_SHA"],
        "dirty": os.environ["GIT_DIRTY"] == "1",
        "date": os.environ["RUN_DATE"],
        "num_cpus": int(os.environ["NUM_CPUS"]),
        "compiler": os.environ["CXX_COMPILER"],
        "compiler_version": os.environ["COMPILER_VERSION"],
        "build_type": os.environ["BUILD_TYPE"],
        "cxx_flags": " ".join(
            s for s in (os.environ["CXX_FLAGS"], os.environ["CXX_FLAGS_TYPE"]) if s
        ),
    },
    "context": raw.get("context", {}),
    "smoke": smoke,
    "items_per_second": rates,
    "obs_records": obs.get("records", []),
    "headline": {
        "seed_engine_items_per_second": seed,
        "zero_copy_serial_items_per_second": serial,
        "zero_copy_parallel_items_per_second": parallel,
        "speedup_vs_seed_engine": speedup,
        "target_speedup": 5.0,
        "meets_target": speedup is not None and speedup >= 5.0,
    },
    "leaves4_cliff": {
        "worst_state_raw_boxes": boxes.get("BM_Leaves4WorstStateRawLinear"),
        "worst_state_canonical_boxes": boxes.get("BM_Leaves4WorstStateIndexed"),
        "raw_linear_probes_per_second": cliff_raw,
        "indexed_probes_per_second": cliff_indexed,
        "per_vertex_improvement": cliff_improvement,
        "target_improvement": 25.0,
        "meets_target": cliff_improvement is not None and cliff_improvement >= 25.0,
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {os.environ['OUT']}")
if speedup is not None:
    print(f"speedup vs seed engine at n=4096: {speedup:.2f}x "
          f"({'meets' if speedup >= 5.0 else 'MISSES'} the 5x target)")
if boxes:
    print(f"leaves>=4 worst state: {boxes.get('BM_Leaves4WorstStateRawLinear')} raw boxes "
          f"-> {boxes.get('BM_Leaves4WorstStateIndexed')} canonical boxes")
if cliff_improvement is not None:
    print(f"leaves>=4 worst-state per-vertex improvement: {cliff_improvement:.1f}x "
          f"({'meets' if cliff_improvement >= 25.0 else 'MISSES'} the 25x target)")
EOF
