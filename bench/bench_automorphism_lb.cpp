// E2 (Theorem 2.3): certifying fixed-point-free automorphisms of bounded-
// depth trees requires Omega~(n) bits. Reproduced as a sandwich:
//  - lower curve: the reduction's implied bound log2(T_3(n)) / r with r = 2,
//    where T_3(n) is the exact count of rooted trees of height <= 3 ([42],
//    computed with exact big-integer Euler transforms);
//  - upper curve: the measured certificate size of the matching Theta(n log n)
//    upper-bound scheme on doubled random trees.
// Both curves are ~linear in n (up to log factors): no compact certification.
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/lowerbounds/tree_enumeration.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/automorphism_scheme.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lcert;
  auto report = obs::Report::from_cli("E2-automorphism-lb", argc, argv);
  Rng rng(2);
  report.meta("seed", 2);

  std::printf("E2 / Theorem 2.3: fixed-point-free automorphism needs Omega~(n) bits\n\n");
  for (std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u}) {
    const double lower = log2_tree_count(n, 3) / 2.0;

    // Upper bound: a doubled random tree on ~2n vertices (always a yes-instance).
    const std::size_t half = n;
    const Graph base = make_random_tree(half, rng);
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (auto [u, v] : base.edges()) {
      edges.emplace_back(u, v);
      edges.emplace_back(u + half, v + half);
    }
    edges.emplace_back(0, half);
    Graph doubled(2 * half, edges);
    assign_random_ids(doubled, rng);
    FpfAutomorphismScheme scheme;
    const obs::StopwatchMs timer;
    const std::size_t upper = certified_size_bits(scheme, doubled);
    report.add()
        .set("scheme", scheme.name())
        .set("n", n)
        .set("lower_bits", lower)
        .set("max_bits", upper)
        .set("upper/n", static_cast<double>(upper) / (2.0 * n))
        .set("wall_ms", timer.elapsed());
  }
  report.note("");
  report.note(
      "paper claim: both curves grow ~linearly in n — contrast with E1's flat MSO column.");
  report.note("lower_bits = log2 T_3(n)/2 (reduction bound); max_bits = upper-bound scheme.");
  return report.finish();
}
