// E6 (Proposition 6.2, ablation): kernel sizes and end-type counts vs (k, t).
// The theoretical bound f_d(k,t) = 2^d * (k+1)^{f_{d+1}(k,t)} is a tower —
// this is the non-elementary blow-up that makes Courcelle-style pipelines
// impractical (repro note in DESIGN.md). Measured kernels on random instances
// stay far below the bound but show the steep growth in t.
#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/kernel/reduce.hpp"
#include "src/obs/report.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/util/bignum.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

// f_d(k,t), capped: returns the bit length of the bound (the value itself
// towers out of reach immediately).
std::size_t bound_bits(std::size_t k, std::size_t t, std::size_t d) {
  if (d >= t) return 1;
  // f_d = 2^d * (k+1)^{f_{d+1}}; bitlen(f_d) ~ d + f_{d+1} * log2(k+1).
  const std::size_t inner = bound_bits(k, t, d + 1);
  if (inner > 40) return SIZE_MAX;  // > 2^40 exponent: report as "tower"
  const BigNat f_inner = BigNat::pow(BigNat(2), inner);  // crude upper proxy
  BigNat value = BigNat::pow(BigNat(k + 1), std::min<std::uint64_t>(f_inner.to_u64(), 1u << 20));
  value *= BigNat::pow(BigNat(2), d);
  return value.bit_length() > (1u << 22) ? SIZE_MAX : value.bit_length();
}

}  // namespace

int main(int argc, char** argv) {
  auto report = lcert::obs::Report::from_cli("E6-kernel-size", argc, argv);
  Rng rng(6);
  report.meta("seed", 6);

  std::printf("E6 / Proposition 6.2: kernel size census (n = 2000 instances)\n\n");
  for (std::size_t t : {2u, 3u, 4u}) {
    for (std::size_t k : {1u, 2u, 3u}) {
      auto inst = make_bounded_treedepth_graph(2000, t, 0.3, rng);
      const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
      const lcert::obs::StopwatchMs timer;
      const Kernelization kz = k_reduce(inst.graph, model, k);
      const std::size_t bb = bound_bits(k, t, 1);
      auto& record = report.add();
      record.set("scheme", "k_reduce")
          .set("n", 2000)
          .set("t", t)
          .set("k", k)
          .set("kernel_size", kz.kernel.vertex_count())
          .set("end_types", kz.interner.size())
          .set("prunings", kz.pruning_operations)
          .set("wall_ms", timer.elapsed());
      if (bb == SIZE_MAX)
        record.set("f_1(k,t)_bits", "tower(>2^40)");
      else
        record.set("f_1(k,t)_bits", bb);
    }
  }

  for (std::size_t n : {200u, 2000u, 20000u}) {
    auto inst = make_bounded_treedepth_graph(n, 3, 0.3, rng);
    const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
    const lcert::obs::StopwatchMs timer;
    const Kernelization kz = k_reduce(inst.graph, model, 2);
    report.add()
        .set("scheme", "k_reduce[n-sweep]")
        .set("n", n)
        .set("t", 3)
        .set("k", 2)
        .set("kernel_size", kz.kernel.vertex_count())
        .set("wall_ms", timer.elapsed());
  }
  report.note("");
  report.note("paper claim: kernel size depends only on (k, t), not n — and the worst-case");
  report.note("bound is a tower, reproducing why the generic MSO->automaton route is");
  report.note("impractical while instance kernels stay small.");
  return report.finish();
}
