// E6 (Proposition 6.2, ablation): kernel sizes and end-type counts vs (k, t).
// The theoretical bound f_d(k,t) = 2^d * (k+1)^{f_{d+1}(k,t)} is a tower —
// this is the non-elementary blow-up that makes Courcelle-style pipelines
// impractical (repro note in DESIGN.md). Measured kernels on random instances
// stay far below the bound but show the steep growth in t.
#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/kernel/reduce.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/util/bignum.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

// f_d(k,t), capped: returns the bit length of the bound (the value itself
// towers out of reach immediately).
std::size_t bound_bits(std::size_t k, std::size_t t, std::size_t d) {
  if (d >= t) return 1;
  // f_d = 2^d * (k+1)^{f_{d+1}}; bitlen(f_d) ~ d + f_{d+1} * log2(k+1).
  const std::size_t inner = bound_bits(k, t, d + 1);
  if (inner > 40) return SIZE_MAX;  // > 2^40 exponent: report as "tower"
  const BigNat f_inner = BigNat::pow(BigNat(2), inner);  // crude upper proxy
  BigNat value = BigNat::pow(BigNat(k + 1), std::min<std::uint64_t>(f_inner.to_u64(), 1u << 20));
  value *= BigNat::pow(BigNat(2), d);
  return value.bit_length() > (1u << 22) ? SIZE_MAX : value.bit_length();
}

}  // namespace

int main() {
  Rng rng(6);

  std::printf("E6 / Proposition 6.2: kernel size census (n = 2000 instances)\n\n");
  std::printf("%4s %4s %14s %14s %14s %16s\n", "t", "k", "kernel size", "end types",
              "prunings", "f_1(k,t) bits");
  for (std::size_t t : {2u, 3u, 4u}) {
    for (std::size_t k : {1u, 2u, 3u}) {
      auto inst = make_bounded_treedepth_graph(2000, t, 0.3, rng);
      const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
      const Kernelization kz = k_reduce(inst.graph, model, k);
      const std::size_t bb = bound_bits(k, t, 1);
      char bound_str[32];
      if (bb == SIZE_MAX)
        std::snprintf(bound_str, sizeof bound_str, "tower(>2^40)");
      else
        std::snprintf(bound_str, sizeof bound_str, "%zu", bb);
      std::printf("%4zu %4zu %14zu %14zu %14zu %16s\n", t, k, kz.kernel.vertex_count(),
                  kz.interner.size(), kz.pruning_operations, bound_str);
    }
  }
  std::printf("\npaper claim: kernel size depends only on (k, t), not n — and the worst-case\n"
              "bound is a tower, reproducing why the generic MSO->automaton route is\n"
              "impractical while instance kernels stay small.\n");

  std::printf("\nkernel size is n-independent (t=3, k=2):\n%10s %14s\n", "n", "kernel size");
  for (std::size_t n : {200u, 2000u, 20000u}) {
    auto inst = make_bounded_treedepth_graph(n, 3, 0.3, rng);
    const RootedTree model = make_coherent(inst.graph, inst.elimination_tree);
    const Kernelization kz = k_reduce(inst.graph, model, 2);
    std::printf("%10zu %14zu\n", n, kz.kernel.vertex_count());
  }
  return 0;
}
