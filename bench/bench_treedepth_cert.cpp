// E3 (Theorem 2.4): certifying "treedepth <= t" costs O(t log n) bits.
// Two sweeps: n at fixed t (column grows like log n) and t at fixed n
// (column grows linearly in t).
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/util/bitio.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lcert;
  auto report = obs::Report::from_cli("E3-treedepth-cert", argc, argv);
  Rng rng(3);
  report.meta("seed", 3);

  std::printf("E3 / Theorem 2.4: treedepth <= t with O(t log n) bits\n\n");

  const auto add_row = [&report](std::size_t n, std::size_t t, const char* sweep, Rng& r) {
    auto inst = make_bounded_treedepth_graph(n, t, 0.3, r);
    assign_random_ids(inst.graph, r);
    RootedTree witness = inst.elimination_tree;
    TreedepthScheme scheme(t, [witness](const Graph&) { return witness; });
    const obs::StopwatchMs timer;
    const std::size_t bits = certified_size_bits(scheme, inst.graph);
    report.add()
        .set("scheme", scheme.name())
        .set("sweep", sweep)
        .set("n", n)
        .set("t", t)
        .set("max_bits", bits)
        .set("bits/(t*log2 n)",
             static_cast<double>(bits) / (static_cast<double>(t) * bits_for(n)))
        .set("wall_ms", timer.elapsed());
  };

  for (std::size_t n : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) add_row(n, 5, "n", rng);
  for (std::size_t t : {3u, 4u, 5u, 6u, 7u, 8u}) add_row(4096, t, "t", rng);

  report.note("");
  report.note(
      "paper claim: both ratio columns stay bounded (certificates are Theta(t log n)).");
  return report.finish();
}
