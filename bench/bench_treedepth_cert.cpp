// E3 (Theorem 2.4): certifying "treedepth <= t" costs O(t log n) bits.
// Two sweeps: n at fixed t (column grows like log n) and t at fixed n
// (column grows linearly in t).
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/util/bitio.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  Rng rng(3);

  std::printf("E3 / Theorem 2.4: treedepth <= t with O(t log n) bits\n\n");

  std::printf("sweep n (t = 5):\n%10s %14s %18s\n", "n", "max cert bits", "bits/(t*log2 n)");
  for (std::size_t n : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    auto inst = make_bounded_treedepth_graph(n, 5, 0.3, rng);
    assign_random_ids(inst.graph, rng);
    RootedTree witness = inst.elimination_tree;
    TreedepthScheme scheme(5, [witness](const Graph&) { return witness; });
    const std::size_t bits = certified_size_bits(scheme, inst.graph);
    std::printf("%10zu %14zu %18.2f\n", n, bits,
                static_cast<double>(bits) / (5.0 * bits_for(n)));
  }

  std::printf("\nsweep t (n = 4096):\n%10s %14s %18s\n", "t", "max cert bits", "bits/(t*log2 n)");
  for (std::size_t t : {3u, 4u, 5u, 6u, 7u, 8u}) {
    auto inst = make_bounded_treedepth_graph(4096, t, 0.3, rng);
    assign_random_ids(inst.graph, rng);
    RootedTree witness = inst.elimination_tree;
    TreedepthScheme scheme(t, [witness](const Graph&) { return witness; });
    const std::size_t bits = certified_size_bits(scheme, inst.graph);
    std::printf("%10zu %14zu %18.2f\n", t, bits,
                static_cast<double>(bits) / (static_cast<double>(t) * bits_for(4096)));
  }
  std::printf("\npaper claim: both ratio columns stay bounded (certificates are Theta(t log n)).\n");
  return 0;
}
