// E8 (Corollary 2.7): P_t-minor-free and C_t-minor-free graphs have
// O(log n)-bit certifications. P_t via treedepth + kernel; C_t via the
// certified block decomposition with per-block kernels.
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/minor_free.hpp"
#include "src/util/bitio.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lcert;
  auto report = obs::Report::from_cli("E8-minor-free", argc, argv);
  Rng rng(8);
  report.meta("seed", 8);

  std::printf("E8 / Corollary 2.7: minor-free certification\n\n");

  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    // Random trees of height 2 => longest path <= 5 => P_6-minor-free.
    const RootedTree t = make_random_rooted_tree(n, 2, rng);
    Graph g = t.to_graph();
    assign_random_ids(g, rng);
    // The rooted tree is its own elimination model (depth 3 <= t = 6).
    RootedTree witness = t;
    PtMinorFreeScheme scheme(6, [witness](const Graph&) { return witness; });
    const obs::StopwatchMs timer;
    const std::size_t bits = certified_size_bits(scheme, g);
    report.add()
        .set("scheme", scheme.name())
        .set("n", n)
        .set("max_bits", bits)
        .set("bits/log2(n)", static_cast<double>(bits) / bits_for(n))
        .set("wall_ms", timer.elapsed());
  }

  for (std::size_t triangles : {8u, 32u, 128u, 512u}) {
    // Chains of triangles are C_4-minor-free.
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (std::size_t i = 0; i < triangles; ++i) {
      const Vertex base = static_cast<Vertex>(2 * i);
      edges.emplace_back(base, base + 1);
      edges.emplace_back(base, base + 2);
      edges.emplace_back(base + 1, base + 2);
    }
    Graph g(2 * triangles + 1, edges);
    assign_random_ids(g, rng);
    CtMinorFreeScheme scheme(4);
    const obs::StopwatchMs timer;
    const std::size_t bits = certified_size_bits(scheme, g);
    report.add()
        .set("scheme", scheme.name())
        .set("n", g.vertex_count())
        .set("max_bits", bits)
        .set("bits/log2(n)", static_cast<double>(bits) / bits_for(g.vertex_count()))
        .set("wall_ms", timer.elapsed());
  }
  report.note("");
  report.note("paper claim: both ratio columns stay bounded — O(log n) certificates.");
  return report.finish();
}
