// E8 (Corollary 2.7): P_t-minor-free and C_t-minor-free graphs have
// O(log n)-bit certifications. P_t via treedepth + kernel; C_t via the
// certified block decomposition with per-block kernels.
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/schemes/minor_free.hpp"
#include "src/util/bitio.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  Rng rng(8);

  std::printf("E8 / Corollary 2.7: minor-free certification\n\n");

  std::printf("P_6-minor-free (random trees of height 2 => longest path <= 5):\n");
  std::printf("%10s %14s %16s\n", "n", "max cert bits", "bits/log2(n)");
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const RootedTree t = make_random_rooted_tree(n, 2, rng);
    Graph g = t.to_graph();
    assign_random_ids(g, rng);
    // The rooted tree is its own elimination model (depth 3 <= t = 6).
    RootedTree witness = t;
    PtMinorFreeScheme scheme(6, [witness](const Graph&) { return witness; });
    const std::size_t bits = certified_size_bits(scheme, g);
    std::printf("%10zu %14zu %16.2f\n", n, bits, static_cast<double>(bits) / bits_for(n));
  }

  std::printf("\nC_4-minor-free (chains of triangles):\n");
  std::printf("%10s %14s %16s\n", "n", "max cert bits", "bits/log2(n)");
  for (std::size_t triangles : {8u, 32u, 128u, 512u}) {
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (std::size_t i = 0; i < triangles; ++i) {
      const Vertex base = static_cast<Vertex>(2 * i);
      edges.emplace_back(base, base + 1);
      edges.emplace_back(base, base + 2);
      edges.emplace_back(base + 1, base + 2);
    }
    Graph g(2 * triangles + 1, edges);
    assign_random_ids(g, rng);
    CtMinorFreeScheme scheme(4);
    const std::size_t bits = certified_size_bits(scheme, g);
    std::printf("%10zu %14zu %16.2f\n", g.vertex_count(), bits,
                static_cast<double>(bits) / bits_for(g.vertex_count()));
  }
  std::printf("\npaper claim: both ratio columns stay bounded — O(log n) certificates.\n");
  return 0;
}
