// E1 (Theorem 2.2): MSO properties on trees are certifiable with O(1)-bit
// certificates. For every library automaton we certify crafted yes-instances
// of growing size and report the maximum certificate size — the column must
// be flat in n. The universal scheme's Theta(n^2) column shows the contrast.
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/universal.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

// A yes-instance generator per library property.
Graph yes_instance(const std::string& property, std::size_t n, Rng& rng) {
  if (property == "path") return make_path(n);
  if (property == "star" || property == "perfect-code" || property == "leaves>=4")
    return make_star(n);
  if (property == "caterpillar" || property == "max-degree<=3")
    return make_caterpillar(n / 2, 1);
  if (property == "perfect-matching") {
    const std::size_t half = n / 2;
    const Graph base = make_random_tree(half, rng);
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (auto [u, v] : base.edges()) edges.emplace_back(u, v);
    for (Vertex v = 1; v < half; ++v) edges.emplace_back(v, v + half);
    edges.emplace_back(0, half);
    return Graph(2 * half, edges);
  }
  if (property == "radius<=3") return make_random_rooted_tree(n, 3, rng).to_graph();
  throw std::invalid_argument("no generator for " + property);
}

}  // namespace

int main() {
  Rng rng(1);
  std::printf("E1 / Theorem 2.2: MSO on trees, O(1)-bit certificates\n");
  std::printf("paper claim: certificate size independent of n; universal baseline is O(n^2)\n\n");
  std::printf("%-18s", "property \\ n");
  const std::vector<std::size_t> ns = {64, 256, 1024, 4096, 16384};
  for (std::size_t n : ns) std::printf("%8zu", n);
  std::printf("\n");

  for (const auto& entry : standard_tree_automata()) {
    MsoTreeScheme scheme(entry);
    std::printf("%-18s", entry.name.c_str());
    for (std::size_t n : ns) {
      Graph g = yes_instance(entry.name, n, rng);
      assign_random_ids(g, rng);
      if (!scheme.holds(g)) {
        std::printf("%8s", "-");
        continue;
      }
      std::printf("%8zu", certified_size_bits(scheme, g));
    }
    std::printf("  bits\n");
  }

  std::printf("%-18s", "universal (any)");
  UniversalScheme universal("any", [](const Graph&) { return true; });
  for (std::size_t n : ns) {
    if (n > 1024) {
      std::printf("%8s", ">1e6");
      continue;
    }
    Graph g = make_path(n);
    assign_random_ids(g, rng);
    std::printf("%8zu", certified_size_bits(universal, g));
  }
  std::printf("  bits\n");
  return 0;
}
