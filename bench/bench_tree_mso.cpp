// E1 (Theorem 2.2): MSO properties on trees are certifiable with O(1)-bit
// certificates. For every library automaton we certify crafted yes-instances
// of growing size and report the maximum certificate size — the max_bits
// column must be flat in n. The universal scheme's Theta(n^2) rows show the
// contrast. Records: {scheme, n, max_bits, mean_bits, wall_ms}.
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/universal.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

// A yes-instance generator per library property.
Graph yes_instance(const std::string& property, std::size_t n, Rng& rng) {
  if (property == "path") return make_path(n);
  if (property == "star" || property == "perfect-code" || property == "leaves>=4")
    return make_star(n);
  if (property == "caterpillar" || property == "max-degree<=3")
    return make_caterpillar(n / 2, 1);
  if (property == "perfect-matching") {
    const std::size_t half = n / 2;
    const Graph base = make_random_tree(half, rng);
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (auto [u, v] : base.edges()) edges.emplace_back(u, v);
    for (Vertex v = 1; v < half; ++v) edges.emplace_back(v, v + half);
    edges.emplace_back(0, half);
    return Graph(2 * half, edges);
  }
  if (property == "radius<=3") return make_random_rooted_tree(n, 3, rng).to_graph();
  throw std::invalid_argument("no generator for " + property);
}

void add_record(obs::Report& report, const Scheme& scheme, const Graph& g) {
  const obs::StopwatchMs timer;
  const auto outcome = run_scheme(scheme, g);
  if (!outcome.prover_succeeded || !outcome.verification.all_accept)
    throw std::logic_error(scheme.name() + ": prover/verifier failed on a yes-instance");
  const auto& v = outcome.verification;
  report.add()
      .set("scheme", scheme.name())
      .set("n", g.vertex_count())
      .set("max_bits", v.max_certificate_bits)
      .set("mean_bits",
           static_cast<double>(v.total_certificate_bits) / static_cast<double>(g.vertex_count()))
      .set("wall_ms", timer.elapsed());
}

}  // namespace

int main(int argc, char** argv) {
  auto report = obs::Report::from_cli("E1-tree-mso", argc, argv);
  Rng rng(1);
  report.meta("seed", 1);
  std::printf("E1 / Theorem 2.2: MSO on trees, O(1)-bit certificates\n");
  std::printf("paper claim: certificate size independent of n; universal baseline is O(n^2)\n\n");

  const std::vector<std::size_t> ns = {64, 256, 1024, 4096, 16384};
  for (const auto& entry : standard_tree_automata()) {
    MsoTreeScheme scheme(entry);
    for (std::size_t n : ns) {
      Graph g = yes_instance(entry.name, n, rng);
      assign_random_ids(g, rng);
      if (!scheme.holds(g)) continue;
      add_record(report, scheme, g);
    }
  }

  UniversalScheme universal("any", [](const Graph&) { return true; });
  for (std::size_t n : ns) {
    if (n > 1024) continue;  // Theta(n^2) certificates: >1e6 bits past here
    Graph g = make_path(n);
    assign_random_ids(g, rng);
    add_record(report, universal, g);
  }

  report.note("");
  report.note("paper claim: max_bits is flat in n for every automaton (O(1) certificates);");
  report.note("universal[any] grows as Theta(n^2) and is skipped past n=1024 (>1e6 bits).");
  return report.finish();
}
