// E12 (Section 4, labeled extension): certifying globally-constrained
// labelings of trees — unique leader, marked-count thresholds, connectivity
// of the marked set — with O(1)-bit certificates. None of these are plain
// LCLs (a radius-1 verifier cannot check them without certificates), yet the
// labeled Theorem 2.2 scheme keeps the column flat in n.
#include <cstdio>

#include "src/graph/generators.hpp"
#include "src/lcl/lcl_scheme.hpp"
#include "src/obs/report.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

LabeledTreeInstance yes_instance(const std::string& property, std::size_t n, Rng& rng) {
  LabeledTreeInstance inst;
  inst.tree = make_random_tree(n, rng);
  assign_random_ids(inst.tree, rng);
  inst.labels.assign(n, 0);
  if (property == "unique-leader") {
    inst.labels[rng.index(n)] = 1;
  } else if (property == "marked>=3") {
    for (std::size_t i = 0; i < 5 && i < n; ++i) inst.labels[i] = 1;
  } else if (property == "marked-connected") {
    // Mark a BFS ball around vertex 0.
    const auto dist = inst.tree.bfs_distances(0);
    for (Vertex v = 0; v < n; ++v)
      if (dist[v] <= 2) inst.labels[v] = 1;
  } else {
    throw std::invalid_argument("no generator for " + property);
  }
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  auto report = lcert::obs::Report::from_cli("E12-lcl", argc, argv);
  Rng rng(12);
  report.meta("seed", 12);
  std::printf("E12 / Section 4 extension: labeled-tree (LCL-style) certification\n");
  std::printf("paper claim: constant-size certificates, labels are trusted inputs\n\n");
  const std::vector<std::size_t> ns = {64, 256, 1024, 4096};
  for (const auto& entry : standard_labeled_automata()) {
    LclTreeScheme scheme(entry);
    for (std::size_t n : ns) {
      const auto inst = yes_instance(entry.name, n, rng);
      const obs::StopwatchMs timer;
      const auto certs = scheme.assign(inst);
      if (!certs.has_value()) continue;
      const auto outcome = verify_labeled_assignment(scheme, inst, *certs);
      if (!outcome.all_accept)
        throw std::logic_error(entry.name + ": verifier rejected an honest assignment");
      report.add()
          .set("scheme", "lcl[" + entry.name + "]")
          .set("n", n)
          .set("max_bits", outcome.max_certificate_bits)
          .set("wall_ms", timer.elapsed());
    }
  }
  report.note("");
  report.note("paper claim: max_bits is flat in n for every labeled property.");
  return report.finish();
}
