// E4 (Theorem 2.5): certifying "treedepth <= 5" requires Omega(log n) bits.
// The sandwich:
//  - lower curve: the Section 7.3 reduction's implied bound
//    ell / r = floor(log2 n!) / (4n + 1) = Theta(log n);
//  - upper curve: the Theorem 2.4 scheme's measured boundary-vertex
//    certificate bits on the gadget's yes-instances (O(t log n)).
// Small instances also re-verify Lemma 7.3 with the exact solver.
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/lowerbounds/constructions.hpp"
#include "src/lowerbounds/framework.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/treedepth/exact.hpp"

int main(int argc, char** argv) {
  using namespace lcert;
  auto report = obs::Report::from_cli("E4-treedepth-lb", argc, argv);

  std::printf("E4 / Theorem 2.5: treedepth <= 5 needs Omega(log n) bits\n\n");

  // Lemma 7.3 sanity on the smallest gadget.
  {
    TreedepthFamily family(2);
    const std::vector<bool> zero{false}, one{true};
    const auto yes = family.build(zero, zero);
    const auto no = family.build(zero, one);
    std::printf("Lemma 7.3 (n=2 gadget, 17 vertices): td(equal)=%zu td(unequal)=%zu\n\n",
                exact_treedepth(yes.graph), exact_treedepth(no.graph));
  }

  for (std::size_t nm : {4u, 8u, 16u, 32u, 64u, 128u}) {
    TreedepthFamily family(nm);
    const std::vector<bool> s(family.string_length(), false);
    const CcInstance inst = family.build(s, s);
    TreedepthScheme scheme(5, [&family](const Graph& g) { return family.witness_model(g); });
    const obs::StopwatchMs timer;
    const auto certs = scheme.assign(inst.graph);
    std::size_t boundary_bits = 0;
    if (certs.has_value()) {
      for (Vertex v : inst.boundary())
        boundary_bits = std::max(boundary_bits, (*certs)[v].bit_size);
    }
    report.add()
        .set("scheme", scheme.name())
        .set("n", inst.graph.vertex_count())
        .set("ell", family.string_length())
        .set("r", family.boundary_size())
        .set("lower_bits",
             static_cast<double>(family.string_length()) / family.boundary_size())
        .set("max_bits", boundary_bits)
        .set("wall_ms", timer.elapsed());
  }
  report.note("");
  report.note("paper claim: lower_bits grows like log n; max_bits like t log n —");
  report.note("Theorem 2.4 is optimal up to the factor t.");
  return report.finish();
}
