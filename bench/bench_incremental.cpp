// Incremental recertification throughput: amortized cost per streaming edit
// through a live incr::CertifiedInstance versus a cold full re-prove of the
// same instance. Backs BENCH_incremental.json (bench/run_incremental_bench.sh).
//
// The workloads are periodic so the steady state needs no per-iteration
// setup: the triple graft/swap/prune returns the instance to its original
// shape after every round, and the subtree rehang alternates between two
// positions (period 2). Every edit runs through exactly the code path the
// kIncrementalDivergence fuzz oracle pins bit-identical to a cold
// prove_assignment — the speedup here is pure work saved, not work changed.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cert/prove.hpp"
#include "src/graph/edit.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/incr/incremental.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

struct Family {
  const char* name;
  Graph (*make)(std::size_t n, Rng& rng);
};

Graph make_complete_binary_family(std::size_t n, Rng&) {
  std::size_t levels = 1;
  while (((std::size_t{1} << (levels + 1)) - 1) <= n) ++levels;
  return make_complete_binary_tree(levels);  // largest 2^L - 1 <= n
}
Graph make_random_tree_family(std::size_t n, Rng& rng) { return make_random_tree(n, rng); }

constexpr Family kCompleteBinary{"complete-binary", &make_complete_binary_family};
constexpr Family kRandomTree{"random-tree", &make_random_tree_family};

// standard_tree_automata(): 4 = perfect-matching, 7 = leaves>=4.
constexpr std::size_t kPerfectMatching = 4;
constexpr std::size_t kLeaves4 = 7;

Graph prepare_instance(const Family& fam, std::size_t n) {
  Rng rng(11);
  Graph g = fam.make(n, rng);
  assign_random_ids(g, rng);
  return g;
}

/// Deepest vertex under the certification rooting (root 0) — grafting there
/// makes the dirty path the full tree height, the honest worst case for the
/// O(depth) repair claim.
std::size_t deepest_vertex(const Graph& g) {
  const RootedTree t = RootedTree::from_graph(g, 0);
  std::size_t best = 0;
  for (std::size_t v = 0; v < t.size(); ++v)
    if (t.depth(v) > t.depth(best)) best = v;
  return best;
}

GraphEdit graft_edit(Vertex anchor, VertexId fresh_id) {
  GraphEdit e;
  e.kind = EditKind::kLeafGraft;
  e.a = anchor;
  e.fresh_id = fresh_id;
  return e;
}
GraphEdit prune_edit(Vertex leaf) {
  GraphEdit e;
  e.kind = EditKind::kLeafPrune;
  e.a = leaf;
  return e;
}
GraphEdit swap_edit(Vertex moved, Vertex old_parent, Vertex new_parent) {
  GraphEdit e;
  e.kind = EditKind::kSubtreeSwap;
  e.a = moved;
  e.c = old_parent;
  e.b = new_parent;
  return e;
}

/// Edits applied per second (the incremental rows) or full re-proves per
/// second (the cold row); speedup = ratio of the two, computed by
/// run_incremental_bench.sh from the JSON.
void set_items(benchmark::State& state, std::size_t per_iteration) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(per_iteration));
}

// Graft a leaf under the deepest vertex, rehang it to the root, prune it:
// three edits that leave the instance exactly where it started (the pruned
// vertex is the last index, so the renumbering is the identity). Runs on the
// leaves>=4 automaton, whose property no single leaf edit can break on
// instances this size.
void BM_IncrEditTriple(benchmark::State& state, Family fam) {
  const MsoTreeScheme scheme(standard_tree_automata()[kLeaves4]);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Graph g = prepare_instance(fam, n);
  const Vertex anchor = deepest_vertex(g);
  VertexId max_id = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v) max_id = std::max(max_id, g.id(v));

  RunOptions options;
  options.num_threads = 1;
  incr::CertifiedInstance live(scheme, options);
  if (!live.init(g).has_value()) throw std::logic_error("bench: init refused");

  const Vertex leaf = g.vertex_count();  // index of the grafted vertex
  for (auto _ : state) {
    IncrementalStats st = live.apply(graft_edit(anchor, max_id + 1));
    st = live.apply(swap_edit(leaf, anchor, 0));
    st = live.apply(prune_edit(leaf));
    benchmark::DoNotOptimize(st);
    if (!st.certified) throw std::logic_error("bench: edit left the property");
  }
  set_items(state, 3);
}

/// A period-2 subtree rehang that stays inside the property: a deep leaf
/// `moved` alternating between two deep parents. Keeping both attachment
/// points deep matters twice over — the dirty path is the honest full-height
/// repair, and the re-verified slice stays away from the root, whose
/// accepting state can carry a combinatorially large transition DNF (the
/// leaves>=4 automaton has ~29k interval boxes there; that cost belongs to
/// the verifier benchmarks, not this one).
struct SwapPlan {
  Vertex moved;
  Vertex parent_a;  ///< original parent
  Vertex parent_b;  ///< alternative parent
};

std::optional<SwapPlan> find_period2_swap(const MsoTreeScheme& scheme, const Graph& g) {
  const RootedTree t = RootedTree::from_graph(g, 0);
  std::vector<std::size_t> order(t.size());
  for (std::size_t v = 0; v < t.size(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return t.depth(a) > t.depth(b); });
  // Deepest-first pairs of leaves with distinct parents, bounded scan: the
  // properties benchmarked here accept the first few candidates.
  for (std::size_t i = 0; i < order.size() && i < 64; ++i) {
    const std::size_t moved = order[i];
    if (moved == 0 || !t.children(moved).empty()) continue;
    const std::size_t pa = t.parent(moved);
    for (std::size_t j = 0; j < order.size() && j < 64; ++j) {
      const std::size_t other = order[j];
      if (other == 0 || !t.children(other).empty()) continue;
      const std::size_t pb = t.parent(other);
      if (pb == pa || pb == moved) continue;
      const Graph swapped = apply_edit(g, swap_edit(moved, pa, pb));
      if (scheme.holds(swapped)) return SwapPlan{static_cast<Vertex>(moved),
                                                 static_cast<Vertex>(pa),
                                                 static_cast<Vertex>(pb)};
    }
  }
  return std::nullopt;
}

// The 1-edit workload behind the headline speedup: rehang one deep subtree
// back and forth. Two edits per iteration (there and back), each a single
// O(depth)-dirty repair.
void BM_IncrSubtreeSwap(benchmark::State& state, const MsoTreeScheme& scheme,
                        const Graph& g, const SwapPlan& plan) {
  RunOptions options;
  options.num_threads = 1;
  incr::CertifiedInstance live(scheme, options);
  if (!live.init(g).has_value()) throw std::logic_error("bench: init refused");

  for (auto _ : state) {
    IncrementalStats st = live.apply(swap_edit(plan.moved, plan.parent_a, plan.parent_b));
    st = live.apply(swap_edit(plan.moved, plan.parent_b, plan.parent_a));
    benchmark::DoNotOptimize(st);
    if (!st.certified) throw std::logic_error("bench: swap left the property");
  }
  set_items(state, 2);
}

void BM_IncrSubtreeSwapFound(benchmark::State& state, Family fam, std::size_t automaton) {
  const MsoTreeScheme scheme(standard_tree_automata()[automaton]);
  const Graph g = prepare_instance(fam, static_cast<std::size_t>(state.range(0)));
  const auto plan = find_period2_swap(scheme, g);
  if (!plan.has_value()) {
    state.SkipWithError("no property-preserving period-2 swap found");
    return;
  }
  BM_IncrSubtreeSwap(state, scheme, g, *plan);
}

// ---------------------------------------------------------------------------
// Perfect matching needs its own instance family: a random spine tree with
// one pendant leaf per spine vertex. The pendant edges ARE the perfect
// matching, and rehanging any spine subtree under another spine vertex only
// replaces a non-matching tree edge — the matching survives by construction,
// so the period-2 plan needs no search.
// ---------------------------------------------------------------------------

struct MatchedInstance {
  Graph graph;
  SwapPlan plan;
};

MatchedInstance prepare_matched_instance(std::size_t n) {
  Rng rng(11);
  const std::size_t m = std::max<std::size_t>(n / 2, 4);
  const Graph spine = make_random_tree(m, rng);
  std::vector<std::pair<Vertex, Vertex>> edges = spine.edges();
  for (Vertex v = 0; v < m; ++v)
    edges.emplace_back(v, static_cast<Vertex>(m + v));  // pendant partner of v
  Graph g(2 * m, edges);
  {
    Rng id_rng(17);
    assign_random_ids(g, id_rng);
  }
  // Deepest spine vertex under the certification rooting (root 0); its
  // parent is a spine vertex too, and depth >= 2 keeps the root distinct.
  const RootedTree t = RootedTree::from_graph(g, 0);
  std::size_t moved = 0;
  for (std::size_t v = 1; v < m; ++v)
    if (t.depth(v) > t.depth(moved)) moved = v;
  if (t.depth(moved) < 2) throw std::logic_error("bench: spine tree degenerated");
  const SwapPlan plan{static_cast<Vertex>(moved),
                      static_cast<Vertex>(t.parent(moved)), 0};
  return {std::move(g), plan};
}

void BM_IncrSubtreeSwapMatched(benchmark::State& state) {
  const MsoTreeScheme scheme(standard_tree_automata()[kPerfectMatching]);
  const MatchedInstance inst =
      prepare_matched_instance(static_cast<std::size_t>(state.range(0)));
  if (!scheme.holds(inst.graph) ||
      !scheme.holds(apply_edit(inst.graph,
                               swap_edit(inst.plan.moved, inst.plan.parent_a,
                                         inst.plan.parent_b))))
    throw std::logic_error("bench: matched instance lost its matching");
  BM_IncrSubtreeSwap(state, scheme, inst.graph, inst.plan);
}

// The baseline the speedup is measured against: what one edit would cost
// without the incremental layer — a cold full prove_assignment of the same
// instance (fresh memo every round, exactly the fallback path's work).
void BM_ColdReprove(benchmark::State& state, Family fam, std::size_t automaton) {
  const MsoTreeScheme scheme(standard_tree_automata()[automaton]);
  const Graph g = prepare_instance(fam, static_cast<std::size_t>(state.range(0)));
  RunOptions options;
  options.num_threads = 1;
  for (auto _ : state) {
    auto result = prove_assignment(scheme, g, options);
    benchmark::DoNotOptimize(result.certificates);
  }
  set_items(state, 1);
}

void BM_ColdReproveMatched(benchmark::State& state) {
  const MsoTreeScheme scheme(standard_tree_automata()[kPerfectMatching]);
  const MatchedInstance inst =
      prepare_matched_instance(static_cast<std::size_t>(state.range(0)));
  RunOptions options;
  options.num_threads = 1;
  for (auto _ : state) {
    auto result = prove_assignment(scheme, inst.graph, options);
    benchmark::DoNotOptimize(result.certificates);
  }
  set_items(state, 1);
}

void BM_IncrSubtreeSwapLeaves(benchmark::State& state, Family fam) {
  BM_IncrSubtreeSwapFound(state, fam, kLeaves4);
}
void BM_ColdReproveLeaves(benchmark::State& state, Family fam) {
  BM_ColdReprove(state, fam, kLeaves4);
}

#define LCERT_INCR_FAMILY(family, ...)                                       \
  BENCHMARK_CAPTURE(BM_IncrEditTriple, family, k##family)__VA_ARGS__;        \
  BENCHMARK_CAPTURE(BM_IncrSubtreeSwapLeaves, family, k##family)__VA_ARGS__; \
  BENCHMARK_CAPTURE(BM_ColdReproveLeaves, family, k##family)__VA_ARGS__

LCERT_INCR_FAMILY(CompleteBinary, ->Arg(1024)->Arg(4096)->Arg(16384));
LCERT_INCR_FAMILY(RandomTree, ->Arg(1024)->Arg(4096)->Arg(16384));
// Perfect matching runs on the matched family only (random/complete-binary
// trees are almost never yes-instances; complete binary trees have odd n and
// never are).
BENCHMARK(BM_IncrSubtreeSwapMatched)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_ColdReproveMatched)->Arg(1024)->Arg(4096)->Arg(16384);

// One instrumented run per configuration for the structured record: the
// google-benchmark numbers above stay authoritative for throughput, these
// rows carry the per-edit counters (dirty path, reuse ratio, re-proved /
// re-verified vertices) that the benchmark JSON cannot.
void record_period2(obs::Report& report, const MsoTreeScheme& scheme,
                    const char* family_name, const Graph& g, const SwapPlan& plan_in) {
  const SwapPlan* plan = &plan_in;
  RunOptions options;
  options.num_threads = 1;
  incr::CertifiedInstance live(scheme, options);

  const obs::StopwatchMs init_timer;
  if (!live.init(g).has_value()) throw std::logic_error("bench: init refused");
  const double init_ms = init_timer.elapsed();

  const std::size_t rounds = 64;
  std::size_t sum_dirty = 0, sum_reproved = 0, sum_reverified = 0;
  double sum_reuse = 0;
  const obs::StopwatchMs timer;
  for (std::size_t i = 0; i < rounds; ++i) {
    const bool forward = i % 2 == 0;
    const IncrementalStats st = live.apply(
        forward ? swap_edit(plan->moved, plan->parent_a, plan->parent_b)
                : swap_edit(plan->moved, plan->parent_b, plan->parent_a));
    if (!st.certified) throw std::logic_error("bench: swap left the property");
    sum_dirty += st.dirty_path_len;
    sum_reproved += st.reproved_vertices;
    sum_reverified += st.reverified_vertices;
    sum_reuse += st.reuse_ratio;
  }
  const double edit_ms = timer.elapsed() / rounds;
  report.add()
      .set("scheme", scheme.name())
      .set("family", family_name)
      .set("n", g.vertex_count())
      .set("edits", rounds)
      .set("cold_prove_ms", init_ms)
      .set("edit_ms", edit_ms)
      .set("speedup", edit_ms > 0 ? init_ms / edit_ms : 0.0)
      .set("mean_dirty_path", static_cast<double>(sum_dirty) / rounds)
      .set("mean_reproved", static_cast<double>(sum_reproved) / rounds)
      .set("mean_reverified", static_cast<double>(sum_reverified) / rounds)
      .set("mean_reuse", sum_reuse / rounds);
}

void add_incr_record(obs::Report& report, const Family& fam, std::size_t automaton,
                     std::size_t n) {
  const MsoTreeScheme scheme(standard_tree_automata()[automaton]);
  const Graph g = prepare_instance(fam, n);
  const auto plan = find_period2_swap(scheme, g);
  if (!plan.has_value()) return;
  record_period2(report, scheme, fam.name, g, *plan);
}

void add_matched_record(obs::Report& report, std::size_t n) {
  const MsoTreeScheme scheme(standard_tree_automata()[kPerfectMatching]);
  const MatchedInstance inst = prepare_matched_instance(n);
  record_period2(report, scheme, "matched-random-tree", inst.graph, inst.plan);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --metrics-out / LCERT_METRICS before google-benchmark sees argv.
  auto report = obs::Report::from_cli("E16-incremental", argc, argv);

  // Our own flag, stripped before google-benchmark parses argv:
  //   --record-n <n>    instance size of the structured record rows
  std::size_t record_n = 16384;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--record-n" && i + 1 < argc) {
        record_n = std::stoul(argv[++i]);
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const Family& fam : {kCompleteBinary, kRandomTree})
    add_incr_record(report, fam, kLeaves4, record_n);
  add_matched_record(report, record_n);
  report.note("");
  report.note("micro numbers above are google-benchmark's; the table rows re-measure a");
  report.note("64-edit period-2 rehang with per-edit dirty-path and reuse counters for");
  report.note("the structured artifact.");
  return report.finish();
}
