#!/usr/bin/env bash
# Runs the prover-pipeline benchmarks and records the headline numbers in
# BENCH_prove.json at the repo root.
#
# The headline metric is the speedup of the batch prover (level-synchronized,
# memoized, arena-backed) over the seed serial assign() path on the most
# memo-friendly family (complete binary trees, max-degree<=3 automaton) at
# n=4096. Usage:
#
#   bench/run_prove_bench.sh [build-dir]          # default build dir: build/
#   bench/run_prove_bench.sh [build-dir] --smoke  # n=1024 rows only (CI)
#
# The artifact carries the same "provenance" block as BENCH_verify.json
# (compiler, flags, CPU count, git SHA, run date) so a stored BENCH_prove.json
# can always be traced back to the toolchain and commit that produced it.
# Override the timestamp with LCERT_BENCH_DATE for reproducible artifacts.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
BIN="$BUILD_DIR/bench/bench_prove_throughput"
OUT="$REPO_ROOT/BENCH_prove.json"
RAW="$(mktemp)"
METRICS="$(mktemp)"
trap 'rm -f "$RAW" "$METRICS"' EXIT

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — build first: cmake --build '$BUILD_DIR' --target bench_prove_throughput" >&2
  exit 1
fi

cache_var() {  # cache_var <name> — value of a CMakeCache entry, empty if absent
  sed -n "s/^$1:[^=]*=//p" "$BUILD_DIR/CMakeCache.txt" 2>/dev/null | head -n1
}

GIT_SHA="$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=0
if [[ "$GIT_SHA" != unknown ]] && \
   [[ -n "$(git -C "$REPO_ROOT" status --porcelain 2>/dev/null)" ]]; then
  GIT_DIRTY=1
fi
# Provenance guard: a tracked artifact must stay traceable to a commit. When
# the SHA is unknown (no git, shallow mishap, ...) refuse to clobber the
# committed file rather than produce an orphaned artifact.
if [[ "$GIT_SHA" == unknown && -z "${LCERT_BENCH_FORCE:-}" ]] && \
   git -C "$REPO_ROOT" ls-files --error-unmatch "$(basename "$OUT")" >/dev/null 2>&1; then
  echo "error: git SHA is unknown but $OUT is committed — refusing to overwrite" >&2
  echo "       (set LCERT_BENCH_FORCE=1 to override)" >&2
  exit 1
fi
# Dirty-tree guard: a committed artifact must be reproducible from the SHA in
# its provenance block. A run from a dirty tree would stamp dirty=true over a
# clean artifact, so refuse outright instead of warning.
if [[ "$GIT_DIRTY" == 1 && -z "${LCERT_BENCH_FORCE:-}" ]] && \
   git -C "$REPO_ROOT" ls-files --error-unmatch "$(basename "$OUT")" >/dev/null 2>&1; then
  echo "error: working tree is dirty but $OUT is committed — refusing to overwrite" >&2
  echo "       (commit or stash first, or set LCERT_BENCH_FORCE=1 to override)" >&2
  exit 1
fi
RUN_DATE="${LCERT_BENCH_DATE:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"

# Artifact schema guard (companion to the provenance guard above): refuse to
# overwrite an artifact written under a different schema version — a silent
# cross-schema overwrite corrupts the bench trajectory that EXPERIMENTS.md
# tables and tools/bench_compare.py read. LCERT_BENCH_FORCE=1 overrides.
SCHEMA_VERSION=2
if [[ -f "$OUT" && -z "${LCERT_BENCH_FORCE:-}" ]]; then
  EXISTING_SCHEMA="$(python3 -c \
      'import json,sys; print(json.load(open(sys.argv[1])).get("schema", 1))' \
      "$OUT" 2>/dev/null || echo unreadable)"
  if [[ "$EXISTING_SCHEMA" != "$SCHEMA_VERSION" ]]; then
    echo "error: $OUT carries schema $EXISTING_SCHEMA but this script writes schema $SCHEMA_VERSION — refusing to overwrite" >&2
    echo "       (set LCERT_BENCH_FORCE=1 to override)" >&2
    exit 1
  fi
fi
NUM_CPUS="$(nproc 2>/dev/null || echo 1)"
BUILD_TYPE="$(cache_var CMAKE_BUILD_TYPE)"
CXX_COMPILER="$(cache_var CMAKE_CXX_COMPILER)"
CXX_FLAGS="$(cache_var CMAKE_CXX_FLAGS)"
TYPE_UPPER="$(echo "${BUILD_TYPE:-}" | tr '[:lower:]' '[:upper:]')"
CXX_FLAGS_TYPE="$([[ -n "$TYPE_UPPER" ]] && cache_var "CMAKE_CXX_FLAGS_${TYPE_UPPER}" || true)"
COMPILER_VERSION="$("${CXX_COMPILER:-c++}" --version 2>/dev/null | head -n1 || echo unknown)"

# Smoke mode keeps only the n=1024 rows (and the cheap non-MSO provers): the
# CI job wants the artifact shape and a sanity signal, not the full sweep.
FILTER='BM_Prove'
HEADLINE_N=4096
if [[ "$SMOKE" == 1 ]]; then
  FILTER='BM_Prove.*/1024$'
  HEADLINE_N=1024
fi

# The obs table goes to stdout for the human; the google-benchmark JSON goes
# straight to a file so the table cannot corrupt it. The structured record
# rows (memo + feasibility-tier counters) follow the headline size, so smoke
# runs record n=1024 instead of the full-sweep 4096.
"$BIN" --benchmark_filter="$FILTER" \
       --benchmark_min_time=0.2 \
       --benchmark_out="$RAW" --benchmark_out_format=json \
       --record-n "$HEADLINE_N" \
       --metrics-out "$METRICS" \
       ${LCERT_TRACE_OUT:+--trace-out "$LCERT_TRACE_OUT"}

env RAW="$RAW" METRICS="$METRICS" OUT="$OUT" SCHEMA_VERSION="$SCHEMA_VERSION" GIT_SHA="$GIT_SHA" GIT_DIRTY="$GIT_DIRTY" \
    RUN_DATE="$RUN_DATE" \
    NUM_CPUS="$NUM_CPUS" BUILD_TYPE="$BUILD_TYPE" CXX_COMPILER="$CXX_COMPILER" \
    CXX_FLAGS="$CXX_FLAGS" CXX_FLAGS_TYPE="$CXX_FLAGS_TYPE" \
    COMPILER_VERSION="$COMPILER_VERSION" SMOKE="$SMOKE" HEADLINE_N="$HEADLINE_N" \
    python3 - <<'EOF'
import json
import os

with open(os.environ["RAW"]) as f:
    raw = json.load(f)
try:
    with open(os.environ["METRICS"]) as f:
        obs = json.load(f)
except (OSError, json.JSONDecodeError):
    obs = {}

rates = {}  # benchmark name -> items (vertices proven) per second
for b in raw.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips is not None:
        rates[b["name"]] = ips

headline_n = int(os.environ["HEADLINE_N"])
smoke = os.environ["SMOKE"] == "1"

def rate(mode, family, n=headline_n):
    return rates.get(f"BM_Prove{mode}/{family}/{n}")

# Per-family speedups of the best batch configuration over the seed serial
# assign() path. Memo-friendly families are where the cache should shine;
# path is the adversarial case (all subtree shapes distinct) and is reported
# honestly rather than dropped.
families = ["Path", "Caterpillar", "CompleteBinary", "RandomTree"]
speedups = {}
for fam in families:
    seed = rate("SeedSerial", fam)
    batch = [rate("BatchSerial", fam), rate("BatchParallel", fam)]
    batch = [v for v in batch if v is not None]
    if seed and batch:
        speedups[fam] = max(batch) / seed

best_memo_family = None
best_memo_speedup = None
for fam in ("CompleteBinary", "RandomTree"):
    s = speedups.get(fam)
    if s is not None and (best_memo_speedup is None or s > best_memo_speedup):
        best_memo_family, best_memo_speedup = fam, s

result = {
    "schema": int(os.environ["SCHEMA_VERSION"]),
    "written_at": os.environ["RUN_DATE"],
    "benchmark": "prover_pipeline_throughput",
    "scheme": "mso-tree (standard automata) + treedepth + spanning-tree",
    "n": headline_n,
    "smoke": smoke,
    "provenance": {
        "git_sha": os.environ["GIT_SHA"],
        "dirty": os.environ["GIT_DIRTY"] == "1",
        "date": os.environ["RUN_DATE"],
        # Same probe as context.num_cpus: google-benchmark's own host
        # detection at run time, so the provenance block can never disagree
        # with the context block it sits next to (the nproc value is only the
        # fallback when the benchmark JSON carries no context).
        "num_cpus": int(raw.get("context", {}).get("num_cpus")
                        or os.environ["NUM_CPUS"]),
        "compiler": os.environ["CXX_COMPILER"],
        "compiler_version": os.environ["COMPILER_VERSION"],
        "build_type": os.environ["BUILD_TYPE"],
        "cxx_flags": " ".join(
            s for s in (os.environ["CXX_FLAGS"], os.environ["CXX_FLAGS_TYPE"]) if s
        ),
    },
    "context": raw.get("context", {}),
    "items_per_second": rates,
    "obs_records": obs.get("records", []),
    "speedup_vs_seed_by_family": speedups,
    # The ROADMAP's irregular-shape gap: memoized serial batch throughput on
    # random trees versus complete binary trees (target: within 50x).
    "randomtree_cliff": {
        "complete_binary_items_per_second": rate("BatchSerial", "CompleteBinary"),
        "random_tree_items_per_second": rate("BatchSerial", "RandomTree"),
        "ratio": (
            rate("BatchSerial", "CompleteBinary") / rate("BatchSerial", "RandomTree")
            if rate("BatchSerial", "CompleteBinary") and rate("BatchSerial", "RandomTree")
            else None
        ),
        "target_ratio": 50.0,
    },
    "headline": {
        "memo_friendly_family": best_memo_family,
        "speedup_vs_seed_serial": best_memo_speedup,
        "target_speedup": 4.0,
        "meets_target": best_memo_speedup is not None and best_memo_speedup >= 4.0,
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {os.environ['OUT']}")
for fam, s in sorted(speedups.items()):
    print(f"  {fam}: {s:.2f}x vs seed serial at n={headline_n}")
cliff = result["randomtree_cliff"]["ratio"]
if cliff is not None:
    print(f"randomtree cliff: CompleteBinary/RandomTree = {cliff:.1f}x "
          f"({'within' if cliff <= 50.0 else 'OUTSIDE'} the 50x target)")
if best_memo_speedup is not None:
    print(f"headline ({best_memo_family}): {best_memo_speedup:.2f}x "
          f"({'meets' if best_memo_speedup >= 4.0 else 'MISSES'} the 4x target)")
EOF
