// E7 (Lemma 2.1): the two FO fragments with compact certification on general
// graphs — existential sentences (O(k log n) bits) and quantifier depth <= 2
// (O(log n) bits).
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/logic/formulas.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/depth2_fo.hpp"
#include "src/schemes/existential_fo.hpp"
#include "src/util/bitio.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lcert;
  auto report = obs::Report::from_cli("E7-fragments", argc, argv);
  Rng rng(7);
  report.meta("seed", 7);

  std::printf("E7 / Lemma 2.1: compact fragments on general graphs\n\n");

  const std::vector<std::size_t> ns = {64, 256, 1024, 4096};
  for (std::size_t w : {2u, 3u, 4u}) {
    ExistentialFoScheme scheme(f_independent_set_of_size(w));
    for (std::size_t n : ns) {
      // A star has independent sets of any size among its leaves; witnesses
      // are found instantly.
      Graph g = make_star(n);
      assign_random_ids(g, rng);
      const obs::StopwatchMs timer;
      const std::size_t bits = certified_size_bits(scheme, g);
      report.add()
          .set("scheme", scheme.name())
          .set("w", w)
          .set("n", n)
          .set("max_bits", bits)
          .set("wall_ms", timer.elapsed());
    }
  }

  Depth2FoScheme scheme(f_has_dominating_vertex());
  for (std::size_t n : ns) {
    Graph g = make_star(n);
    assign_random_ids(g, rng);
    const obs::StopwatchMs timer;
    const std::size_t bits = certified_size_bits(scheme, g);
    report.add()
        .set("scheme", scheme.name())
        .set("n", n)
        .set("max_bits", bits)
        .set("bits/log2(n)", static_cast<double>(bits) / bits_for(n))
        .set("wall_ms", timer.elapsed());
  }
  report.note("");
  report.note("paper claim: existential rows grow ~linearly in w and ~logarithmically in n;");
  report.note("depth-2 rows grow ~logarithmically in n.");
  return report.finish();
}
