// E7 (Lemma 2.1): the two FO fragments with compact certification on general
// graphs — existential sentences (O(k log n) bits) and quantifier depth <= 2
// (O(log n) bits).
#include <cstdio>

#include "src/cert/engine.hpp"
#include "src/graph/generators.hpp"
#include "src/logic/formulas.hpp"
#include "src/schemes/depth2_fo.hpp"
#include "src/schemes/existential_fo.hpp"
#include "src/util/bitio.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace lcert;
  Rng rng(7);

  std::printf("E7 / Lemma 2.1: compact fragments on general graphs\n\n");

  std::printf("existential FO, phi = 'independent set of size w' (w witnesses):\n");
  std::printf("%4s", "w\\n");
  const std::vector<std::size_t> ns = {64, 256, 1024, 4096};
  for (std::size_t n : ns) std::printf("%10zu", n);
  std::printf("\n");
  for (std::size_t w : {2u, 3u, 4u}) {
    ExistentialFoScheme scheme(f_independent_set_of_size(w));
    std::printf("%4zu", w);
    for (std::size_t n : ns) {
      // A star has independent sets of any size among its leaves; witnesses
      // are found instantly.
      Graph g = make_star(n);
      assign_random_ids(g, rng);
      std::printf("%10zu", certified_size_bits(scheme, g));
    }
    std::printf("  bits\n");
  }

  std::printf("\nquantifier depth <= 2, phi = 'has a dominating vertex':\n");
  std::printf("%10s %14s %16s\n", "n", "max cert bits", "bits/log2(n)");
  Depth2FoScheme scheme(f_has_dominating_vertex());
  for (std::size_t n : ns) {
    Graph g = make_star(n);
    assign_random_ids(g, rng);
    const std::size_t bits = certified_size_bits(scheme, g);
    std::printf("%10zu %14zu %16.2f\n", n, bits, static_cast<double>(bits) / bits_for(n));
  }
  std::printf("\npaper claim: rows grow ~linearly in w and ~logarithmically in n.\n");
  return 0;
}
