#!/usr/bin/env bash
# Runs the incremental-recertification benchmarks and records the headline
# numbers in BENCH_incremental.json at the repo root.
#
# The headline metric is the amortized speedup of one incremental edit
# (period-2 subtree rehang through a live incr::CertifiedInstance) over a
# cold full prove_assignment of the same instance, on the matched-random-tree
# family under the perfect-matching automaton at n=16384. Target: >=100x.
# Usage:
#
#   bench/run_incremental_bench.sh [build-dir]          # default build dir: build/
#   bench/run_incremental_bench.sh [build-dir] --smoke  # n=1024 rows only (CI)
#
# The artifact carries the same provenance block as BENCH_prove.json /
# BENCH_verify.json (compiler, flags, CPU count, git SHA + dirty flag, run
# date). Override the timestamp with LCERT_BENCH_DATE for reproducible
# artifacts. A committed artifact is never overwritten from a build where the
# git SHA cannot be resolved — set LCERT_BENCH_FORCE=1 to override.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
BIN="$BUILD_DIR/bench/bench_incremental"
OUT="$REPO_ROOT/BENCH_incremental.json"
RAW="$(mktemp)"
METRICS="$(mktemp)"
trap 'rm -f "$RAW" "$METRICS"' EXIT

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — build first: cmake --build '$BUILD_DIR' --target bench_incremental" >&2
  exit 1
fi

cache_var() {  # cache_var <name> — value of a CMakeCache entry, empty if absent
  sed -n "s/^$1:[^=]*=//p" "$BUILD_DIR/CMakeCache.txt" 2>/dev/null | head -n1
}

GIT_SHA="$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=0
if [[ "$GIT_SHA" != unknown ]] && \
   [[ -n "$(git -C "$REPO_ROOT" status --porcelain 2>/dev/null)" ]]; then
  GIT_DIRTY=1
fi
# Provenance guard: a tracked artifact must stay traceable to a commit. When
# the SHA is unknown (no git, shallow mishap, …) refuse to clobber the
# committed file rather than produce an orphaned artifact.
if [[ "$GIT_SHA" == unknown && -z "${LCERT_BENCH_FORCE:-}" ]] && \
   git -C "$REPO_ROOT" ls-files --error-unmatch "$(basename "$OUT")" >/dev/null 2>&1; then
  echo "error: git SHA is unknown but $OUT is committed — refusing to overwrite" >&2
  echo "       (set LCERT_BENCH_FORCE=1 to override)" >&2
  exit 1
fi
# Dirty-tree guard: a committed artifact must be reproducible from the SHA in
# its provenance block. A run from a dirty tree would stamp dirty=true over a
# clean artifact, so refuse outright instead of warning.
if [[ "$GIT_DIRTY" == 1 && -z "${LCERT_BENCH_FORCE:-}" ]] && \
   git -C "$REPO_ROOT" ls-files --error-unmatch "$(basename "$OUT")" >/dev/null 2>&1; then
  echo "error: working tree is dirty but $OUT is committed — refusing to overwrite" >&2
  echo "       (commit or stash first, or set LCERT_BENCH_FORCE=1 to override)" >&2
  exit 1
fi
RUN_DATE="${LCERT_BENCH_DATE:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"

# Artifact schema guard (companion to the provenance guard above): refuse to
# overwrite an artifact written under a different schema version — a silent
# cross-schema overwrite corrupts the bench trajectory that EXPERIMENTS.md
# tables and tools/bench_compare.py read. LCERT_BENCH_FORCE=1 overrides.
SCHEMA_VERSION=2
if [[ -f "$OUT" && -z "${LCERT_BENCH_FORCE:-}" ]]; then
  EXISTING_SCHEMA="$(python3 -c \
      'import json,sys; print(json.load(open(sys.argv[1])).get("schema", 1))' \
      "$OUT" 2>/dev/null || echo unreadable)"
  if [[ "$EXISTING_SCHEMA" != "$SCHEMA_VERSION" ]]; then
    echo "error: $OUT carries schema $EXISTING_SCHEMA but this script writes schema $SCHEMA_VERSION — refusing to overwrite" >&2
    echo "       (set LCERT_BENCH_FORCE=1 to override)" >&2
    exit 1
  fi
fi
NUM_CPUS="$(nproc 2>/dev/null || echo 1)"
BUILD_TYPE="$(cache_var CMAKE_BUILD_TYPE)"
CXX_COMPILER="$(cache_var CMAKE_CXX_COMPILER)"
CXX_FLAGS="$(cache_var CMAKE_CXX_FLAGS)"
TYPE_UPPER="$(echo "${BUILD_TYPE:-}" | tr '[:lower:]' '[:upper:]')"
CXX_FLAGS_TYPE="$([[ -n "$TYPE_UPPER" ]] && cache_var "CMAKE_CXX_FLAGS_${TYPE_UPPER}" || true)"
COMPILER_VERSION="$("${CXX_COMPILER:-c++}" --version 2>/dev/null | head -n1 || echo unknown)"

# Smoke mode keeps only the n=1024 rows: the CI job wants the artifact shape
# and a sanity signal, not the full sweep.
FILTER='BM_(Incr|Cold)'
HEADLINE_N=16384
if [[ "$SMOKE" == 1 ]]; then
  FILTER='BM_(Incr|Cold).*/1024$'
  HEADLINE_N=1024
fi

# The obs table goes to stdout for the human; the google-benchmark JSON goes
# straight to a file so the table cannot corrupt it. The structured record
# rows (dirty-path, reuse, re-proved/re-verified counters) follow the
# headline size.
"$BIN" --benchmark_filter="$FILTER" \
       --benchmark_min_time=0.2 \
       --benchmark_out="$RAW" --benchmark_out_format=json \
       --record-n "$HEADLINE_N" \
       --metrics-out "$METRICS" \
       ${LCERT_TRACE_OUT:+--trace-out "$LCERT_TRACE_OUT"}

env RAW="$RAW" METRICS="$METRICS" OUT="$OUT" SCHEMA_VERSION="$SCHEMA_VERSION" GIT_SHA="$GIT_SHA" GIT_DIRTY="$GIT_DIRTY" \
    RUN_DATE="$RUN_DATE" NUM_CPUS="$NUM_CPUS" BUILD_TYPE="$BUILD_TYPE" \
    CXX_COMPILER="$CXX_COMPILER" CXX_FLAGS="$CXX_FLAGS" CXX_FLAGS_TYPE="$CXX_FLAGS_TYPE" \
    COMPILER_VERSION="$COMPILER_VERSION" SMOKE="$SMOKE" HEADLINE_N="$HEADLINE_N" \
    python3 - <<'EOF'
import json
import os

with open(os.environ["RAW"]) as f:
    raw = json.load(f)
try:
    with open(os.environ["METRICS"]) as f:
        obs = json.load(f)
except (OSError, json.JSONDecodeError):
    obs = {}

rates = {}  # benchmark name -> items (edits applied / full proves) per second
for b in raw.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips is not None:
        rates[b["name"]] = ips

headline_n = int(os.environ["HEADLINE_N"])
smoke = os.environ["SMOKE"] == "1"

def speedup(incr_name, cold_name):
    incr, cold = rates.get(incr_name), rates.get(cold_name)
    return incr / cold if incr and cold else None

# One speedup row per workload: amortized incremental edits/s over cold full
# re-proves/s of the same instance. The matched-random-tree row under
# perfect-matching is the headline; the leaves>=4 rows are breadth. (The
# leaves>=4 verifier constant — formerly ~29k raw DNF boxes in one state —
# is gone since canonicalization + the per-state BoxIndex, so its rows now
# track the same prover-side costs as the others.)
speedups = {}
for n in sorted({int(name.rsplit("/", 1)[-1]) for name in rates}):
    s = speedup(f"BM_IncrSubtreeSwapMatched/{n}", f"BM_ColdReproveMatched/{n}")
    if s is not None:
        speedups[f"matched-random-tree/perfect-matching/{n}"] = s
    for fam in ("CompleteBinary", "RandomTree"):
        s = speedup(f"BM_IncrSubtreeSwapLeaves/{fam}/{n}",
                    f"BM_ColdReproveLeaves/{fam}/{n}")
        if s is not None:
            speedups[f"{fam}/leaves>=4/{n}"] = s

headline_key = f"matched-random-tree/perfect-matching/{headline_n}"
headline_speedup = speedups.get(headline_key)

result = {
    "schema": int(os.environ["SCHEMA_VERSION"]),
    "written_at": os.environ["RUN_DATE"],
    "benchmark": "incremental_recertification",
    "scheme": "mso-tree (perfect-matching headline, leaves>=4 breadth)",
    "n": headline_n,
    "smoke": smoke,
    "provenance": {
        "git_sha": os.environ["GIT_SHA"],
        "dirty": os.environ["GIT_DIRTY"] == "1",
        "date": os.environ["RUN_DATE"],
        "num_cpus": int(raw.get("context", {}).get("num_cpus")
                        or os.environ["NUM_CPUS"]),
        "compiler": os.environ["CXX_COMPILER"],
        "compiler_version": os.environ["COMPILER_VERSION"],
        "build_type": os.environ["BUILD_TYPE"],
        "cxx_flags": " ".join(
            s for s in (os.environ["CXX_FLAGS"], os.environ["CXX_FLAGS_TYPE"]) if s
        ),
    },
    "context": raw.get("context", {}),
    "items_per_second": rates,
    "obs_records": obs.get("records", []),
    "speedup_vs_cold_reprove": speedups,
    "headline": {
        "workload": "1-edit subtree rehang, matched-random-tree, perfect-matching",
        "speedup_vs_cold_reprove": headline_speedup,
        "target_speedup": 100.0,
        "meets_target": headline_speedup is not None and headline_speedup >= 100.0,
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {os.environ['OUT']}")
for key, s in sorted(speedups.items()):
    print(f"  {key}: {s:.1f}x vs cold full re-prove")
if headline_speedup is not None:
    print(f"headline (matched-random-tree @ n={headline_n}): {headline_speedup:.1f}x "
          f"({'meets' if headline_speedup >= 100.0 else 'MISSES'} the 100x target)")
EOF
