// Prover-pipeline throughput: seed serial assign() versus the batch prover
// (level-synchronized, arena-backed) with and without the hash-consed subtree
// certificate cache. Backs BENCH_prove.json (bench/run_prove_bench.sh).
//
// The seed baseline is the untouched find_accepting_run/assign() path; the
// batch rows go through prove_assignment, whose output is pinned bit-identical
// to the baseline by tests/test_prover_pipeline.cpp — so every speedup here is
// pure work saved, not work changed.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/cert/engine.hpp"
#include "src/cert/prove.hpp"
#include "src/graph/generators.hpp"
#include "src/obs/report.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/spanning_tree.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/solve/solver.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace lcert;

// One MSO-on-trees bench family: which automaton to run and how to build a
// yes-instance of ~n vertices. The four families span the memo spectrum:
// path (all subtrees distinct — worst case for the cache), caterpillar
// (legs collapse, spine does not), complete-binary (everything collapses:
// ~log n distinct shapes), random-tree (the paper's generic instance).
struct Family {
  const char* name;
  std::size_t automaton;  ///< index into standard_tree_automata()
  Graph (*make)(std::size_t n, Rng& rng);
};

Graph make_path_family(std::size_t n, Rng&) { return make_path(n); }
Graph make_caterpillar_family(std::size_t n, Rng&) {
  return make_caterpillar(std::max<std::size_t>(n / 2, 1), 1);
}
Graph make_complete_binary_family(std::size_t n, Rng&) {
  std::size_t levels = 1;
  while (((std::size_t{1} << (levels + 1)) - 1) <= n) ++levels;
  return make_complete_binary_tree(levels);  // largest 2^L - 1 <= n
}
Graph make_random_tree_family(std::size_t n, Rng& rng) { return make_random_tree(n, rng); }

// standard_tree_automata(): 0=path, 2=caterpillar, 3=max-degree<=3, 7=leaves>=4.
constexpr Family kPath{"path", 0, &make_path_family};
constexpr Family kCaterpillar{"caterpillar", 2, &make_caterpillar_family};
constexpr Family kCompleteBinary{"complete-binary", 3, &make_complete_binary_family};
constexpr Family kRandomTree{"random-tree", 7, &make_random_tree_family};

Graph prepare_instance(const Family& fam, std::size_t n) {
  Rng rng(11);
  Graph g = fam.make(n, rng);
  assign_random_ids(g, rng);
  return g;
}

void set_items(benchmark::State& state, std::size_t n) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// Seed path: one serial assign() — find_accepting_run plus per-vertex heap
// BitWriters — per round.
void BM_ProveSeedSerial(benchmark::State& state, Family fam) {
  const MsoTreeScheme scheme(standard_tree_automata()[fam.automaton]);
  const Graph g = prepare_instance(fam, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto certs = scheme.assign(g);
    benchmark::DoNotOptimize(certs);
  }
  set_items(state, g.vertex_count());
}

void run_batch(benchmark::State& state, const Family& fam, std::size_t threads,
               bool memoize) {
  const MsoTreeScheme scheme(standard_tree_automata()[fam.automaton]);
  const Graph g = prepare_instance(fam, static_cast<std::size_t>(state.range(0)));
  RunOptions options;
  options.num_threads = threads;
  options.memoize = memoize;
  for (auto _ : state) {
    auto result = prove_assignment(scheme, g, options);
    benchmark::DoNotOptimize(result.certificates);
  }
  set_items(state, g.vertex_count());
}

void BM_ProveBatchSerialNoMemo(benchmark::State& state, Family fam) {
  run_batch(state, fam, 1, false);
}
void BM_ProveBatchSerial(benchmark::State& state, Family fam) {
  run_batch(state, fam, 1, true);
}
void BM_ProveBatchParallel(benchmark::State& state, Family fam) {
  run_batch(state, fam, 0, true);  // 0 = auto worker count, memo on
}

// E18: per-backend decision latency on the cliff shape (random-tree is where
// feasibility queries dominate, so backend differences show up undiluted).
// Serial, memo off — every vertex pays its own decisions.
void run_batch_solver(benchmark::State& state, const Family& fam, solve::Backend solver) {
  const MsoTreeScheme scheme(standard_tree_automata()[fam.automaton]);
  const Graph g = prepare_instance(fam, static_cast<std::size_t>(state.range(0)));
  RunOptions options;
  options.num_threads = 1;
  options.memoize = false;
  options.solver = solver;
  for (auto _ : state) {
    auto result = prove_assignment(scheme, g, options);
    benchmark::DoNotOptimize(result.certificates);
  }
  set_items(state, g.vertex_count());
}

void BM_ProveSolverGreedy(benchmark::State& state) {
  run_batch_solver(state, kRandomTree, solve::Backend::kGreedy);
}
void BM_ProveSolverWarmFlow(benchmark::State& state) {
  run_batch_solver(state, kRandomTree, solve::Backend::kWarmFlow);
}
void BM_ProveSolverColdFlow(benchmark::State& state) {
  run_batch_solver(state, kRandomTree, solve::Backend::kColdFlow);
}
void BM_ProveSolverSat(benchmark::State& state) {
  run_batch_solver(state, kRandomTree, solve::Backend::kSat);
}
BENCHMARK(BM_ProveSolverGreedy)->Arg(1024)->Arg(4096);
BENCHMARK(BM_ProveSolverWarmFlow)->Arg(1024)->Arg(4096);
BENCHMARK(BM_ProveSolverColdFlow)->Arg(1024)->Arg(4096);
BENCHMARK(BM_ProveSolverSat)->Arg(1024)->Arg(4096);

#define LCERT_PROVE_FAMILY(family, ...)                                    \
  BENCHMARK_CAPTURE(BM_ProveSeedSerial, family, k##family)__VA_ARGS__;     \
  BENCHMARK_CAPTURE(BM_ProveBatchSerialNoMemo, family, k##family)          \
  __VA_ARGS__;                                                             \
  BENCHMARK_CAPTURE(BM_ProveBatchSerial, family, k##family)__VA_ARGS__;    \
  BENCHMARK_CAPTURE(BM_ProveBatchParallel, family, k##family)__VA_ARGS__

LCERT_PROVE_FAMILY(Path, ->Arg(1024)->Arg(4096)->Arg(16384));
LCERT_PROVE_FAMILY(Caterpillar, ->Arg(1024)->Arg(4096)->Arg(16384));
LCERT_PROVE_FAMILY(CompleteBinary, ->Arg(1024)->Arg(4096)->Arg(16384));
LCERT_PROVE_FAMILY(RandomTree, ->Arg(1024)->Arg(4096)->Arg(16384));

// ---------------------------------------------------------------------------
// Non-MSO hot provers: treedepth cores (batch fragment construction + arena
// encode) and the spanning-tree parity certificates (arena encode only).
// ---------------------------------------------------------------------------

void run_treedepth(benchmark::State& state, bool batch) {
  Rng rng(12);
  auto inst =
      make_bounded_treedepth_graph(static_cast<std::size_t>(state.range(0)), 5, 0.3, rng);
  RootedTree witness = inst.elimination_tree;
  const TreedepthScheme scheme(5, [witness](const Graph&) { return witness; });
  RunOptions options;
  options.num_threads = batch ? 0 : 1;
  for (auto _ : state) {
    if (batch) {
      auto result = prove_assignment(scheme, inst.graph, options);
      benchmark::DoNotOptimize(result.certificates);
    } else {
      auto certs = scheme.assign(inst.graph);
      benchmark::DoNotOptimize(certs);
    }
  }
  set_items(state, inst.graph.vertex_count());
}

void BM_ProveTreedepthSeed(benchmark::State& state) { run_treedepth(state, false); }
BENCHMARK(BM_ProveTreedepthSeed)->Arg(1024)->Arg(4096);
void BM_ProveTreedepthBatch(benchmark::State& state) { run_treedepth(state, true); }
BENCHMARK(BM_ProveTreedepthBatch)->Arg(1024)->Arg(4096);

void run_spanning(benchmark::State& state, bool batch) {
  Rng rng(13);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  if (n % 2 != 0) ++n;  // parity scheme needs a yes-instance
  Graph g = make_random_tree(n, rng);
  assign_random_ids(g, rng);
  const VertexParityScheme scheme;
  RunOptions options;
  options.num_threads = batch ? 0 : 1;
  for (auto _ : state) {
    if (batch) {
      auto result = prove_assignment(scheme, g, options);
      benchmark::DoNotOptimize(result.certificates);
    } else {
      auto certs = scheme.assign(g);
      benchmark::DoNotOptimize(certs);
    }
  }
  set_items(state, g.vertex_count());
}

void BM_ProveSpanningSeed(benchmark::State& state) { run_spanning(state, false); }
BENCHMARK(BM_ProveSpanningSeed)->Arg(1024)->Arg(4096)->Arg(16384);
void BM_ProveSpanningBatch(benchmark::State& state) { run_spanning(state, true); }
BENCHMARK(BM_ProveSpanningBatch)->Arg(1024)->Arg(4096)->Arg(16384);

// One timed prove_assignment per configuration for the structured record
// (the google-benchmark numbers above stay authoritative; these rows feed
// the shared obs::Report artifact, including the memo counters that the
// JSON bench output cannot carry).
void add_prove_record(obs::Report& report, const Family& fam, std::size_t n,
                      std::size_t threads, bool memoize, const char* mode,
                      solve::Backend solver = solve::kDefaultBackend) {
  const MsoTreeScheme scheme(standard_tree_automata()[fam.automaton]);
  const Graph g = prepare_instance(fam, n);
  RunOptions options;
  options.num_threads = threads;
  options.memoize = memoize;
  options.solver = solver;
  const std::size_t rounds = 5;
  std::size_t hits = 0;
  std::size_t misses = 0;
  solve::DecisionCounts feas;
  const obs::StopwatchMs timer;
  for (std::size_t i = 0; i < rounds; ++i) {
    const ProveResult result = prove_assignment(scheme, g, options);
    if (!result.certificates.has_value()) throw std::logic_error("bench: prover refused");
    hits = result.memo_hits;
    misses = result.memo_misses;
    feas = result.feas;
  }
  const double wall_ms = timer.elapsed();
  report.add()
      .set("scheme", scheme.name())
      .set("family", fam.name)
      .set("mode", mode)
      .set("solver", solve::backend_name(solver))
      .set("n", g.vertex_count())
      .set("wall_ms_per_round", wall_ms / rounds)
      .set("memo_hits", hits)
      .set("memo_misses", misses)
      .set("feas_pruned", feas.pruned)
      .set("feas_greedy", feas.greedy)
      .set("feas_warm", feas.warm)
      .set("feas_flow", feas.flow)
      .set("feas_sat", feas.sat);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --metrics-out / LCERT_METRICS before google-benchmark sees argv.
  auto report = obs::Report::from_cli("E14-prove-throughput", argc, argv);

  // Our own flags, stripped before google-benchmark parses argv:
  //   --family <name>   restrict the structured record rows to one family
  //   --record-n <n>    instance size of the record rows (default 4096)
  // Unknown family names exit 2 with the listing, matching lcert_cli.
  std::vector<Family> record_families = {kCompleteBinary, kRandomTree};
  std::size_t record_n = 4096;
  {
    const Family kAll[] = {kPath, kCaterpillar, kCompleteBinary, kRandomTree};
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--family" && i + 1 < argc) {
        const std::string name = argv[++i];
        record_families.clear();
        for (const Family& f : kAll)
          if (name == f.name) record_families.push_back(f);
        if (record_families.empty()) {
          std::fprintf(stderr, "error: unknown family '%s'; valid families:\n",
                       name.c_str());
          for (const Family& f : kAll) std::fprintf(stderr, "  %s\n", f.name);
          return 2;
        }
      } else if (flag == "--record-n" && i + 1 < argc) {
        record_n = std::stoul(argv[++i]);
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const Family& fam : record_families) {
    add_prove_record(report, fam, record_n, 1, false, "serial-no-memo");
    add_prove_record(report, fam, record_n, 1, true, "serial-memo");
    add_prove_record(report, fam, record_n, 0, true, "parallel-memo");
    // E18 rows: one serial memo-off round per backend, same instance, so the
    // wall_ms_per_round column is a direct decision-latency comparison.
    for (const auto& info : solve::SolverFactory::registry())
      add_prove_record(report, fam, record_n, 1, false, "solver-compare", info.backend);
  }
  report.note("");
  report.note("micro numbers above are google-benchmark's; the table rows re-measure one");
  report.note("prove_assignment round (5x) with memo + solver decision counters for");
  report.note("the structured artifact; mode=solver-compare rows are the E18 recipe.");
  return report.finish();
}
