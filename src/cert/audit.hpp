// Adversarial auditing of schemes.
//
// Completeness is checked by running the prover; soundness cannot be proved
// by testing, but it can be *attacked*: the auditor plays a malicious prover
// running a fixed plan of attack strategies (standard_attack_plan) — random
// certificates, the empty assignment, replays of certificates harvested from
// yes-instances (verbatim and shuffled), single bit-flips of the template,
// and the SAT-guided run search, which asks the sat solver backend for an
// accepting automaton run on the no-instance directly instead of mutating
// bits. A sound scheme must reject every attempt; any accepted forgery is a
// bug and is returned for the test to display, tagged with the strategy that
// found it. On tiny instances exhaustive_soundness_attack enumerates all
// short certificate assignments outright.
//
// Performance: all strategies share one ViewCache of the instance (same
// graph, hundreds of mutated assignments), and the independent
// random/mutation trials run on a worker pool. Each trial draws its
// randomness from its own seed (pre-drawn serially from the caller's Rng),
// and a forgery is reported from the lowest-numbered successful trial — so
// for a fixed Rng seed the result is identical for every num_threads value.
// The plan order is part of the replay contract: strategies that consume the
// shared Rng keep their historical draw order, and the sat-run strategy
// (which draws nothing) runs last.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/cert/engine.hpp"
#include "src/cert/options.hpp"
#include "src/cert/scheme.hpp"
#include "src/util/rng.hpp"

namespace lcert {

struct ForgedAssignment {
  std::vector<Certificate> certificates;
  std::string attack;  ///< which attack strategy produced it
};

/// Everything a strategy sees about the instance under attack. The cache is
/// shared across the whole plan (one topology walk per audit).
struct AttackContext {
  const Scheme& scheme;
  const Graph& no_instance;
  const ViewCache& cache;
  const std::vector<Certificate>* yes_template;  ///< may be null
  const RunOptions& options;
};

/// What one strategy did: executed trial count (<= its declared budget),
/// whether it applied at all (replay families need a template, sat-run needs
/// a RunForgerySurface and a tree instance), and a human-readable note — in
/// particular the sat-run strategy reports either which rooting forged or
/// that it exhausted every rooting, which upgrades "found nothing" to a
/// completeness statement for that attack family.
struct AttackOutcome {
  std::string strategy;
  std::size_t budget = 0;  ///< declared trial ceiling
  std::size_t trials = 0;  ///< trials actually executed
  bool applicable = true;
  bool forged = false;
  std::string detail;
};

/// One attack family: a name, the trial budget it declared for this run, and
/// the attack body. `run` fills `outcome` (trials, applicability, detail) and
/// returns the forged certificates on success.
struct AttackStrategy {
  std::string name;
  std::size_t budget = 1;
  std::function<std::optional<std::vector<Certificate>>(
      const AttackContext&, Rng&, AttackOutcome&)>
      run;
};

/// The default plan, budgets resolved from `options`:
///   random          options.random_trials uniformly random assignments;
///   empty           one probe of the all-empty assignment;
///   replay          one probe of the yes-template verbatim;
///   replay-shuffled one probe of the yes-template permuted across vertices;
///   bit-flip        options.mutation_trials single bit-flips of the template;
///   sat-run         SAT search for an accepting automaton run, trying up to
///                   options.random_trials rootings (complete over this
///                   family when every rooting is exhausted).
std::vector<AttackStrategy> standard_attack_plan(const RunOptions& options);

/// Full per-strategy audit record. `forgery` is set iff some outcome forged.
struct SoundnessAuditReport {
  std::optional<ForgedAssignment> forgery;
  std::vector<AttackOutcome> outcomes;  ///< one per strategy, plan order
};

/// Runs the attack plan (default: standard_attack_plan(options)) against the
/// scheme's soundness on `no_instance` (must violate holds()). Stops at the
/// first forgery; strategies after it are reported as unexecuted outcomes.
SoundnessAuditReport run_soundness_audit(const Scheme& scheme, const Graph& no_instance,
                                         const std::vector<Certificate>* yes_template,
                                         Rng& rng, const RunOptions& options = {},
                                         const std::vector<AttackStrategy>* plan = nullptr);

/// Compatibility wrapper over run_soundness_audit: returns just the forgery.
/// `yes_template`: optional honest certificates from a similar yes-instance,
/// used for mutation/replay attacks. Consumes the RunOptions budget fields
/// (random_trials, mutation_trials, max_random_bits, try_replay) and
/// num_threads.
std::optional<ForgedAssignment> attack_soundness(
    const Scheme& scheme, const Graph& no_instance,
    const std::vector<Certificate>* yes_template, Rng& rng,
    const RunOptions& options = {});

/// Exhaustively enumerates *all* assignments with certificates of at most
/// `max_bits` bits per vertex (count = (2^{max_bits+1}-1)^n, so keep both
/// tiny). Returns a forgery if any assignment is accepted everywhere.
std::optional<ForgedAssignment> exhaustive_soundness_attack(const Scheme& scheme,
                                                            const Graph& no_instance,
                                                            std::size_t max_bits);

/// Convenience: checks completeness on a yes-instance (prover succeeds and
/// every vertex accepts); throws std::logic_error with diagnostics otherwise.
void require_complete(const Scheme& scheme, const Graph& yes_instance);

}  // namespace lcert
