// Adversarial auditing of schemes.
//
// Completeness is checked by running the prover; soundness cannot be proved
// by testing, but it can be *attacked*: the auditor plays a malicious prover
// that tries random certificates, bit-flips of honest certificates, replays
// of certificates harvested from yes-instances, and (on tiny instances) the
// full enumeration of all short certificate assignments. A sound scheme must
// reject every attempt on a no-instance; any accepted forgery is a bug and is
// returned for the test to display.
//
// Performance: all attacks share one ViewCache of the instance (same graph,
// hundreds of mutated assignments), and the independent random/mutation
// trials run on a worker pool. Each trial draws its randomness from its own
// seed (pre-drawn serially from the caller's Rng), and a forgery is reported
// from the lowest-numbered successful trial — so for a fixed Rng seed the
// result is identical for every num_threads value.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/cert/engine.hpp"
#include "src/cert/options.hpp"
#include "src/cert/scheme.hpp"
#include "src/util/rng.hpp"

namespace lcert {

struct ForgedAssignment {
  std::vector<Certificate> certificates;
  std::string attack;  ///< which attack produced it
};

/// Attacks the scheme's soundness on `no_instance` (must violate holds()).
/// `yes_template`: optional honest certificates from a similar yes-instance,
/// used for mutation/replay attacks. Returns a forgery if one is found.
/// Consumes the RunOptions budget fields (random_trials, mutation_trials,
/// max_random_bits, try_replay) and num_threads.
std::optional<ForgedAssignment> attack_soundness(
    const Scheme& scheme, const Graph& no_instance,
    const std::vector<Certificate>* yes_template, Rng& rng,
    const RunOptions& options = {});

/// Exhaustively enumerates *all* assignments with certificates of at most
/// `max_bits` bits per vertex (count = (2^{max_bits+1}-1)^n, so keep both
/// tiny). Returns a forgery if any assignment is accepted everywhere.
std::optional<ForgedAssignment> exhaustive_soundness_attack(const Scheme& scheme,
                                                            const Graph& no_instance,
                                                            std::size_t max_bits);

/// Convenience: checks completeness on a yes-instance (prover succeeds and
/// every vertex accepts); throws std::logic_error with diagnostics otherwise.
void require_complete(const Scheme& scheme, const Graph& yes_instance);

}  // namespace lcert
