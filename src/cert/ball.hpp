// Radius-d views (Appendix A.1).
//
// The paper fixes the verification radius to 1 and discusses why: with
// radius-d views some properties need no certificates at all — e.g.
// "diameter <= 2" is free at radius 3 but costs Omega~(n) at radius 1. This
// module provides the locally-checkable-proofs-style view (the full induced
// ball around a vertex, with IDs and certificates) and the paper's example
// verifier, so the model gap is executable.
#pragma once

#include <cstddef>
#include <vector>

#include "src/cert/scheme.hpp"
#include "src/graph/graph.hpp"

namespace lcert {

/// The radius-d ball around a vertex: the induced subgraph on all vertices at
/// distance <= d, their IDs, distances and certificates. Vertex 0 of `ball`
/// is the center.
struct BallView {
  Graph ball;                              ///< induced; IDs preserved
  std::vector<std::size_t> distance;       ///< from the center, per ball vertex
  std::vector<Certificate> certificates;   ///< per ball vertex
  std::size_t radius = 0;
};

/// Builds vertex v's radius-d ball view.
BallView make_ball_view(const Graph& g, const std::vector<Certificate>& certificates,
                        Vertex v, std::size_t radius);

/// Appendix A.1's example: with radius-3 views, "diameter <= 2" is decided
/// with NO certificates — a vertex rejects iff its ball contains a vertex at
/// distance exactly 3. Returns the verdict of the center.
bool check_diameter_le_2_at_radius_3(const BallView& view);

/// Convenience: runs the radius-3 verifier at every vertex (no certificates).
bool decide_diameter_le_2_radius_3(const Graph& g);

}  // namespace lcert
