// The local certification model (Section 3.3).
//
// A scheme is a pair (prover, verifier). The prover sees the whole graph and
// assigns one certificate per vertex; the verifier is strictly local with
// radius exactly 1 (Appendix A.1): a vertex sees its own ID and certificate
// plus the IDs and certificates of its neighbors — crucially NOT the edges
// among the neighbors, and not n. Completeness and soundness are the paper's:
// yes-instances have an accepting assignment, no-instances have none.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/util/bitio.hpp"

namespace lcert {

/// A certificate is an exact-length bit string.
struct Certificate {
  std::vector<std::uint8_t> bytes;
  std::size_t bit_size = 0;

  static Certificate from_writer(const BitWriter& w) { return {w.bytes(), w.bit_size()}; }
  BitReader reader() const { return BitReader(bytes, bit_size); }
  bool operator==(const Certificate&) const = default;
};

/// What a vertex sees about one neighbor.
struct NeighborView {
  VertexId id;
  Certificate certificate;
};

/// The entire radius-1 view of a vertex.
struct View {
  VertexId id;
  Certificate certificate;
  std::vector<NeighborView> neighbors;

  std::size_t degree() const noexcept { return neighbors.size(); }
  bool has_neighbor_id(VertexId nid) const {
    for (const auto& nb : neighbors)
      if (nb.id == nid) return true;
    return false;
  }
  const Certificate* neighbor_certificate(VertexId nid) const {
    for (const auto& nb : neighbors)
      if (nb.id == nid) return &nb.certificate;
    return nullptr;
  }
};

/// A local certification scheme for one graph property.
class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  /// The certified property (ground truth used by the audit harness; it is
  /// *not* available to the verifier).
  virtual bool holds(const Graph& g) const = 0;

  /// Prover: certificates for a yes-instance; std::nullopt when it cannot
  /// certify (in particular on no-instances).
  virtual std::optional<std::vector<Certificate>> assign(const Graph& g) const = 0;

  /// Radius-1 local verifier.
  virtual bool verify(const View& view) const = 0;
};

/// Builds vertex v's radius-1 view under a certificate assignment.
View make_view(const Graph& g, const std::vector<Certificate>& certificates, Vertex v);

}  // namespace lcert
