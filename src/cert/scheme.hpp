// The local certification model (Section 3.3).
//
// A scheme is a pair (prover, verifier). The prover sees the whole graph and
// assigns one certificate per vertex; the verifier is strictly local with
// radius exactly 1 (Appendix A.1): a vertex sees its own ID and certificate
// plus the IDs and certificates of its neighbors — crucially NOT the edges
// among the neighbors, and not n. Completeness and soundness are the paper's:
// yes-instances have an accepting assignment, no-instances have none.
//
// Verifiers consume a non-owning ViewRef: certificates are borrowed from the
// assignment (or from a ViewCache binding), never copied per vertex. The
// owning View remains as a thin adapter for tests and for verifiers that
// synthesize sub-views from decoded material.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/cert/options.hpp"
#include "src/graph/edit.hpp"
#include "src/graph/graph.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/bitio.hpp"

namespace lcert {

class ProverContext;   // src/cert/prove.hpp
struct UOPAutomaton;   // src/automata/uop_automaton.hpp

/// A certificate is an exact-length bit string.
struct Certificate {
  std::vector<std::uint8_t> bytes;
  std::size_t bit_size = 0;

  /// Copies the writer's bytes. Prefer the rvalue overload at prover call
  /// sites — a finished writer has no further use for its buffer.
  static Certificate from_writer(const BitWriter& w) {
    const auto b = w.bytes();
    return {std::vector<std::uint8_t>(b.begin(), b.end()), w.bit_size()};
  }
  /// Steals the writer's byte buffer (no copy for heap-backed writers; an
  /// arena-backed writer still copies, since arena memory cannot change
  /// owners). The writer is left empty.
  static Certificate from_writer(BitWriter&& w) {
    const std::size_t bits = w.bit_size();
    return {std::move(w).take_bytes(), bits};
  }
  BitReader reader() const { return BitReader(bytes, bit_size); }
  bool operator==(const Certificate&) const = default;
};

/// What a vertex sees about one neighbor: the ID and a *borrowed* certificate.
struct NeighborRef {
  VertexId id;
  const Certificate* certificate;
};

/// The radius-1 view of a vertex, zero-copy: certificates stay owned by the
/// assignment vector (or by the View adapter) that the pointers borrow from,
/// which must outlive the verifier call.
struct ViewRef {
  VertexId id = 0;
  const Certificate* certificate = nullptr;
  const NeighborRef* neighbor_data = nullptr;
  std::size_t neighbor_count = 0;

  std::size_t degree() const noexcept { return neighbor_count; }
  std::span<const NeighborRef> neighbors() const noexcept {
    return {neighbor_data, neighbor_count};
  }
  bool has_neighbor_id(VertexId nid) const {
    for (const auto& nb : neighbors())
      if (nb.id == nid) return true;
    return false;
  }
  const Certificate* neighbor_certificate(VertexId nid) const {
    for (const auto& nb : neighbors())
      if (nb.id == nid) return nb.certificate;
    return nullptr;
  }
};

/// Owning neighbor entry of the View adapter.
struct NeighborView {
  VertexId id;
  Certificate certificate;
};

/// Owning radius-1 view. Adapter over ViewRef: tests build these directly,
/// and verifiers that reconstruct per-block sub-views (CtMinorFreeScheme)
/// need somewhere for the decoded certificates to live. Borrow one with
/// as_ref(): the View must outlive the borrow and `neighbors` must not be
/// mutated while it is alive.
struct View {
  VertexId id = 0;
  Certificate certificate;
  std::vector<NeighborView> neighbors;

  std::size_t degree() const noexcept { return neighbors.size(); }
  bool has_neighbor_id(VertexId nid) const {
    for (const auto& nb : neighbors)
      if (nb.id == nid) return true;
    return false;
  }
  const Certificate* neighbor_certificate(VertexId nid) const {
    for (const auto& nb : neighbors)
      if (nb.id == nid) return &nb.certificate;
    return nullptr;
  }

  /// Explicit borrow: (re)builds the entry table and returns a ViewRef
  /// pointing into this View. Deliberately non-const — the old implicit
  /// conversion hid a mutable cache that made concurrent conversions of one
  /// View a silent data race; the signature now makes the mutation visible,
  /// and concurrent as_ref() calls on a shared View are a type error.
  ViewRef as_ref() {
    ref_entries_.clear();
    ref_entries_.reserve(neighbors.size());
    for (const auto& nb : neighbors) ref_entries_.push_back({nb.id, &nb.certificate});
    return ViewRef{id, &certificate, ref_entries_.data(), ref_entries_.size()};
  }

 private:
  std::vector<NeighborRef> ref_entries_;
};

/// Per-edit accounting returned by IncrementalProver::apply (DESIGN.md §13).
/// Counters are exact, not sampled; the incr layer forwards them to obs.
struct IncrementalStats {
  /// Whether the mutated instance is certified (certificates() non-null).
  bool certified = false;
  /// True when the edit fell off the incremental fast path and the prover ran
  /// a full warm re-prove (root changed, instance flipped from uncertified,
  /// or the edit kind has no tree-local image).
  bool full_reprove = false;
  /// Length of the dirty root-to-leaf slice seeded by the edit (vertices
  /// whose child multiset changed, before repair propagation).
  std::size_t dirty_path_len = 0;
  /// Vertices whose feasibility mask or run state was recomputed.
  std::size_t reproved_vertices = 0;
  /// Vertices re-checked by the radius-1 verifier (changed certs + their
  /// neighborhood).
  std::size_t reverified_vertices = 0;
  /// Certificates that differ from before the edit.
  std::size_t changed_certificates = 0;
  /// Memo traffic attributable to this edit.
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
  /// Fraction of the instance whose certificates survived untouched:
  /// 1 - changed_certificates/n (0 when uncertified).
  double reuse_ratio = 0.0;
  /// Result of the internal radius-1 re-verification of the changed slice
  /// (true when nothing changed or the instance is uncertified).
  bool reverify_clean = true;
};

/// A live certified instance under streaming edits. Obtained from
/// Scheme::make_incremental_prover; drives the lcert::incr layer.
///
/// Contract (pinned by the kIncrementalDivergence fuzz oracle and
/// tests/test_incremental.cpp): after every apply(), certificates() is
/// bit-identical to a cold prove_assignment over the accumulated graph —
/// the incremental path is a pure speedup, never a semantic fork.
class IncrementalProver {
 public:
  virtual ~IncrementalProver() = default;

  /// Certifies the initial instance from cold; returns the certificates (or
  /// nullopt when the instance is not certifiable). Must be called before
  /// apply().
  virtual const std::optional<std::vector<Certificate>>& init(const Graph& g) = 0;

  /// Applies one edit, repairing certificates along the dirty slice only.
  /// Throws std::invalid_argument when the edit is illegal against the
  /// current graph (same validation as apply_edit) or when the edit kind is
  /// outside the scheme's family (e.g. raw edge edits against a tree scheme).
  virtual IncrementalStats apply(const GraphEdit& edit) = 0;

  /// Certificates for the current (post-edit) instance; nullopt when it is
  /// not certifiable.
  virtual const std::optional<std::vector<Certificate>>& certificates() const = 0;

  /// Vertices (post-edit indexing) whose certificates changed in the last
  /// apply(). Meaningless when changed_all() is true.
  virtual const std::vector<std::size_t>& changed_vertices() const = 0;

  /// True when the last apply() invalidated every certificate (full
  /// re-prove or certified-status flip). A renumbering prune does NOT set
  /// this: changed_vertices() tracks vertex identity through the renumber,
  /// so an unchanged certificate at a shifted index is still "unchanged".
  virtual bool changed_all() const = 0;

  /// The accumulated graph (materialized on demand).
  virtual Graph graph() const = 0;
};

/// What the SAT-guided forgery search (src/cert/audit.hpp, strategy
/// "sat-run") needs to attack a run-encoding scheme semantically instead of
/// syntactically: the automaton whose accepting runs enumerate exactly the
/// certificate assignments the verifier could accept, plus the scheme's
/// encoding of one run entry into a per-vertex certificate. A scheme that
/// exposes this surface asserts that every assignment accepted at all
/// vertices decodes to (an orientation of) an accepting run — so a solver
/// that finds an accepting run on a no-instance has found a forgery, and one
/// that exhausts every rooting has proven this attack family empty.
struct RunForgerySurface {
  const UOPAutomaton* automaton = nullptr;
  /// Encodes one vertex of a run: the vertex's depth below the chosen root
  /// (mod 3, the orientation gadget) and its automaton state.
  std::function<Certificate(std::size_t depth_mod3, std::size_t state)> encode;
};

/// A local certification scheme for one graph property.
class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  /// The certified property (ground truth used by the audit harness; it is
  /// *not* available to the verifier).
  virtual bool holds(const Graph& g) const = 0;

  /// Prover: certificates for a yes-instance; std::nullopt when it cannot
  /// certify (in particular on no-instances).
  virtual std::optional<std::vector<Certificate>> assign(const Graph& g) const = 0;

  /// Batched prover used by prove_assignment (src/cert/prove.hpp). The
  /// context carries the run options plus per-worker arenas/writers and the
  /// memo counters; the default ignores it and delegates to assign(). An
  /// override must return exactly the certificates assign(g) would — for
  /// every thread count and with memoization on or off — so the batch path
  /// is a pure speedup, never a semantic fork (pinned by the round-trip
  /// determinism tests).
  virtual std::optional<std::vector<Certificate>> prove_batch(const Graph& g,
                                                              ProverContext& ctx) const {
    (void)ctx;
    return assign(g);
  }

  /// Radius-1 local verifier. Must be safe to call concurrently from several
  /// threads (the engine fans verification out across vertices).
  virtual bool verify(const ViewRef& view) const = 0;

  /// Batched fast path used by the engine: fills accept[i] = 1 iff views[i]
  /// accepts, treating a CertificateTruncated thrown while checking one view
  /// as a rejection of that view only (counted in engine/truncated_rejects).
  /// Any other exception is a scheme bug and propagates. The default
  /// delegates to verify(); schemes whose per-vertex check is dominated by
  /// call overhead can override it to hoist loop-invariant state out of the
  /// vertex loop (see MsoTreeScheme). An override must decide each views[i]
  /// exactly as verify(views[i]) would. The spans must have equal size.
  virtual void verify_batch(std::span<const ViewRef> views,
                            std::span<std::uint8_t> accept) const {
    assert(views.size() == accept.size());
    for (std::size_t i = 0; i < views.size(); ++i) {
      try {
        accept[i] = verify(views[i]) ? 1 : 0;
      } catch (const CertificateTruncated&) {
        accept[i] = 0;
        static const obs::Counter truncated =
            obs::registry().counter("engine/truncated_rejects");
        truncated.add();
      }
    }
  }

  /// Structured latency attribution for a verify batch the obs outlier
  /// sampler admitted as a top-K slowest unit (DESIGN.md §14). Called off the
  /// hot path — only for batches already measured as outliers — so it may
  /// decode certificates. Returns "" when the scheme has nothing to add;
  /// MsoTreeScheme reports the automaton state with the largest interval-box
  /// fan-out in the batch ("state=<name> boxes=<count>"), which is what makes
  /// the leaves>=4 DNF cliff attributable from a metrics artifact.
  virtual std::string slow_batch_attribution(std::span<const ViewRef> views) const {
    (void)views;
    return {};
  }

  /// Factory for the scheme's incremental prover (DESIGN.md §13), or nullptr
  /// when the scheme has no incremental path — callers fall back to cold
  /// re-proves per edit. The default is nullptr; MsoTreeScheme overrides it.
  virtual std::unique_ptr<IncrementalProver> make_incremental_prover(
      const RunOptions& options) const {
    (void)options;
    return nullptr;
  }

  /// Semantic attack surface for the SAT-guided forgery search, or nullopt
  /// when the scheme's certificates are not run encodings (the default; the
  /// audit then skips the "sat-run" strategy for this scheme).
  virtual std::optional<RunForgerySurface> run_forgery_surface() const {
    return std::nullopt;
  }
};

}  // namespace lcert
