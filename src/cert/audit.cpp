#include "src/cert/audit.hpp"

#include <sstream>
#include <stdexcept>

namespace lcert {

namespace {

Certificate random_certificate(Rng& rng, std::size_t max_bits) {
  const std::size_t bits = rng.index(max_bits + 1);
  BitWriter w;
  for (std::size_t i = 0; i < bits; ++i) w.write_bit(rng.coin());
  return Certificate::from_writer(w);
}

Certificate flip_bit(const Certificate& c, std::size_t bit) {
  Certificate out = c;
  out.bytes[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
  return out;
}

bool accepted_everywhere(const Scheme& scheme, const Graph& g,
                         const std::vector<Certificate>& certs) {
  return verify_assignment(scheme, g, certs).all_accept;
}

}  // namespace

std::optional<ForgedAssignment> attack_soundness(const Scheme& scheme,
                                                 const Graph& no_instance,
                                                 const std::vector<Certificate>* yes_template,
                                                 Rng& rng, const AuditOptions& options) {
  if (scheme.holds(no_instance))
    throw std::invalid_argument("attack_soundness: instance satisfies the property");
  const std::size_t n = no_instance.vertex_count();

  // Attack 1: uniformly random certificates.
  for (std::size_t trial = 0; trial < options.random_trials; ++trial) {
    std::vector<Certificate> certs(n);
    for (auto& c : certs) c = random_certificate(rng, options.max_random_bits);
    if (accepted_everywhere(scheme, no_instance, certs))
      return ForgedAssignment{std::move(certs), "random"};
  }

  // Attack 2: the empty assignment (schemes must not accept by default).
  {
    std::vector<Certificate> certs(n);
    if (accepted_everywhere(scheme, no_instance, certs))
      return ForgedAssignment{std::move(certs), "empty"};
  }

  if (yes_template != nullptr && yes_template->size() == n) {
    // Attack 3: replay the honest certificates of a yes-instance.
    if (options.try_replay && accepted_everywhere(scheme, no_instance, *yes_template))
      return ForgedAssignment{*yes_template, "replay"};

    // Attack 4: replay with certificates permuted between vertices.
    if (options.try_replay) {
      std::vector<Certificate> shuffled = *yes_template;
      rng.shuffle(shuffled);
      if (accepted_everywhere(scheme, no_instance, shuffled))
        return ForgedAssignment{std::move(shuffled), "replay-shuffled"};
    }

    // Attack 5: single bit flips of the replayed template.
    for (std::size_t trial = 0; trial < options.mutation_trials; ++trial) {
      std::vector<Certificate> certs = *yes_template;
      const Vertex v = static_cast<Vertex>(rng.index(n));
      if (certs[v].bit_size == 0) continue;
      certs[v] = flip_bit(certs[v], rng.index(certs[v].bit_size));
      if (accepted_everywhere(scheme, no_instance, certs))
        return ForgedAssignment{std::move(certs), "bit-flip"};
    }
  }

  return std::nullopt;
}

namespace {

// Enumerates all bit strings with 0..max_bits bits in a canonical order.
std::vector<Certificate> all_certificates(std::size_t max_bits) {
  std::vector<Certificate> out;
  for (std::size_t bits = 0; bits <= max_bits; ++bits) {
    const std::uint64_t limit = std::uint64_t{1} << bits;
    for (std::uint64_t value = 0; value < limit; ++value) {
      BitWriter w;
      w.write(value, static_cast<unsigned>(bits));
      out.push_back(Certificate::from_writer(w));
    }
  }
  return out;
}

}  // namespace

std::optional<ForgedAssignment> exhaustive_soundness_attack(const Scheme& scheme,
                                                            const Graph& no_instance,
                                                            std::size_t max_bits) {
  if (scheme.holds(no_instance))
    throw std::invalid_argument("exhaustive_soundness_attack: instance satisfies the property");
  const std::size_t n = no_instance.vertex_count();
  const auto alphabet = all_certificates(max_bits);
  double combos = 1;
  for (std::size_t i = 0; i < n; ++i) combos *= static_cast<double>(alphabet.size());
  if (combos > 2e7)
    throw std::invalid_argument("exhaustive_soundness_attack: search space too large");

  std::vector<std::size_t> pick(n, 0);
  std::vector<Certificate> certs(n, alphabet[0]);
  while (true) {
    if (accepted_everywhere(scheme, no_instance, certs))
      return ForgedAssignment{certs, "exhaustive"};
    // Odometer increment.
    std::size_t i = 0;
    while (i < n) {
      if (++pick[i] < alphabet.size()) {
        certs[i] = alphabet[pick[i]];
        break;
      }
      pick[i] = 0;
      certs[i] = alphabet[0];
      ++i;
    }
    if (i == n) break;
  }
  return std::nullopt;
}

void require_complete(const Scheme& scheme, const Graph& yes_instance) {
  if (!scheme.holds(yes_instance))
    throw std::invalid_argument("require_complete: instance does not satisfy the property");
  const auto outcome = run_scheme(scheme, yes_instance);
  if (!outcome.prover_succeeded)
    throw std::logic_error(scheme.name() + ": prover failed on yes-instance");
  if (!outcome.verification.all_accept) {
    std::ostringstream os;
    os << scheme.name() << ": verifier rejected honest certificates at vertices:";
    for (Vertex v : outcome.verification.rejecting) os << ' ' << v;
    throw std::logic_error(os.str());
  }
}

}  // namespace lcert
