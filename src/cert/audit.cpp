#include "src/cert/audit.hpp"

#include <atomic>
#include <functional>
#include <limits>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"
#include "src/util/parallel.hpp"

namespace lcert {

namespace {

// Trials per attack family, plus the forgery tally the issue tracker of a
// scheme actually cares about. Replay/empty probes are single verifications;
// random/mutation/exhaustive count every executed trial (skipped trials —
// e.g. numbered above an already-found forgery — are not counted).
struct AuditMetrics {
  obs::Counter random_trials = obs::registry().counter("audit/trials/random");
  obs::Counter mutation_trials = obs::registry().counter("audit/trials/bit_flip");
  obs::Counter replay_trials = obs::registry().counter("audit/trials/replay");
  obs::Counter empty_trials = obs::registry().counter("audit/trials/empty");
  obs::Counter exhaustive_trials = obs::registry().counter("audit/trials/exhaustive");
  obs::Counter attacks = obs::registry().counter("audit/attacks");
  obs::Counter forgeries = obs::registry().counter("audit/forgeries");
  obs::Counter completeness_checks = obs::registry().counter("audit/completeness_checks");
};

const AuditMetrics& audit_metrics() {
  static const AuditMetrics metrics;
  return metrics;
}

Certificate random_certificate(Rng& rng, std::size_t max_bits) {
  const std::size_t bits = rng.index(max_bits + 1);
  BitWriter w;
  for (std::size_t i = 0; i < bits; ++i) w.write_bit(rng.coin());
  return Certificate::from_writer(std::move(w));
}

Certificate flip_bit(const Certificate& c, std::size_t bit) {
  Certificate out = c;
  out.bytes[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
  return out;
}

// Attack trials only need accept/reject: early-exit, and stay single-threaded
// per verification — the parallelism lives at the trial level.
constexpr RunOptions kTrialVerify{/*num_threads=*/1, /*stop_at_first_reject=*/true};

bool accepted_everywhere(const Scheme& scheme, const ViewCache& cache,
                         const std::vector<Certificate>& certs) {
  return verify_assignment(scheme, cache, certs, kTrialVerify).all_accept;
}

// Runs `trials` independent attack trials on the worker pool. make_certs(rng)
// builds one candidate assignment from the trial's private Rng; the forgery
// reported is the one from the lowest-numbered successful trial, making the
// outcome independent of the thread count. Trials numbered above an already
// recorded success are skipped — their results could never win.
std::optional<std::vector<Certificate>> run_trials(
    const Scheme& scheme, const ViewCache& cache, std::size_t trials, Rng& rng,
    std::size_t num_threads, obs::Counter trial_counter,
    const std::function<std::vector<Certificate>(Rng&)>& make_certs) {
  // Per-trial seeds drawn serially up front: each trial's randomness depends
  // only on its index, never on execution order.
  std::vector<std::uint64_t> seeds(trials);
  for (auto& s : seeds) s = rng.uniform(0, std::numeric_limits<std::uint64_t>::max());

  std::atomic<std::size_t> best{SIZE_MAX};
  std::vector<Certificate> forged;
  std::mutex forged_mutex;
  parallel_for(trials, num_threads, [&](std::size_t trial) {
    if (trial > best.load(std::memory_order_relaxed)) return;
    trial_counter.add();
    Rng trial_rng(seeds[trial]);
    std::vector<Certificate> certs = make_certs(trial_rng);
    if (certs.empty()) return;  // trial not applicable (e.g. zero-bit flip target)
    if (!accepted_everywhere(scheme, cache, certs)) return;
    std::lock_guard<std::mutex> lock(forged_mutex);
    if (trial < best.load(std::memory_order_relaxed)) {
      best.store(trial, std::memory_order_relaxed);
      forged = std::move(certs);
    }
  });
  if (best.load() == SIZE_MAX) return std::nullopt;
  return forged;
}

}  // namespace

std::optional<ForgedAssignment> attack_soundness(const Scheme& scheme,
                                                 const Graph& no_instance,
                                                 const std::vector<Certificate>* yes_template,
                                                 Rng& rng, const RunOptions& options) {
  if (scheme.holds(no_instance))
    throw std::invalid_argument("attack_soundness: instance satisfies the property");
  LCERT_SPAN("audit/attack_soundness");
  const AuditMetrics& metrics = audit_metrics();
  metrics.attacks.add();
  const std::size_t n = no_instance.vertex_count();
  const ViewCache cache(no_instance);  // one topology walk for every attack below

  const auto report_forgery = [&metrics](std::vector<Certificate> certs,
                                         const char* attack) {
    metrics.forgeries.add();
    return ForgedAssignment{std::move(certs), attack};
  };

  // Attack 1: uniformly random certificates.
  {
    const std::size_t max_bits = options.max_random_bits;
    auto forged = run_trials(scheme, cache, options.random_trials, rng, options.num_threads,
                             metrics.random_trials,
                             [n, max_bits](Rng& trial_rng) {
                               std::vector<Certificate> certs(n);
                               for (auto& c : certs) c = random_certificate(trial_rng, max_bits);
                               return certs;
                             });
    if (forged.has_value()) return report_forgery(std::move(*forged), "random");
  }

  // Attack 2: the empty assignment (schemes must not accept by default).
  {
    std::vector<Certificate> certs(n);
    metrics.empty_trials.add();
    if (accepted_everywhere(scheme, cache, certs))
      return report_forgery(std::move(certs), "empty");
  }

  if (yes_template != nullptr && yes_template->size() == n) {
    // Attack 3: replay the honest certificates of a yes-instance.
    if (options.try_replay) {
      metrics.replay_trials.add();
      if (accepted_everywhere(scheme, cache, *yes_template))
        return report_forgery(*yes_template, "replay");
    }

    // Attack 4: replay with certificates permuted between vertices.
    if (options.try_replay) {
      std::vector<Certificate> shuffled = *yes_template;
      rng.shuffle(shuffled);
      metrics.replay_trials.add();
      if (accepted_everywhere(scheme, cache, shuffled))
        return report_forgery(std::move(shuffled), "replay-shuffled");
    }

    // Attack 5: single bit flips of the replayed template.
    const std::vector<Certificate>& tmpl = *yes_template;
    auto forged = run_trials(scheme, cache, options.mutation_trials, rng, options.num_threads,
                             metrics.mutation_trials,
                             [n, &tmpl](Rng& trial_rng) {
                               std::vector<Certificate> certs = tmpl;
                               const Vertex v = static_cast<Vertex>(trial_rng.index(n));
                               if (certs[v].bit_size == 0) return std::vector<Certificate>{};
                               certs[v] = flip_bit(certs[v], trial_rng.index(certs[v].bit_size));
                               return certs;
                             });
    if (forged.has_value()) return report_forgery(std::move(*forged), "bit-flip");
  }

  return std::nullopt;
}

namespace {

// Enumerates all bit strings with 0..max_bits bits in a canonical order.
std::vector<Certificate> all_certificates(std::size_t max_bits) {
  std::vector<Certificate> out;
  for (std::size_t bits = 0; bits <= max_bits; ++bits) {
    const std::uint64_t limit = std::uint64_t{1} << bits;
    for (std::uint64_t value = 0; value < limit; ++value) {
      BitWriter w;
      w.write(value, static_cast<unsigned>(bits));
      out.push_back(Certificate::from_writer(std::move(w)));
    }
  }
  return out;
}

}  // namespace

std::optional<ForgedAssignment> exhaustive_soundness_attack(const Scheme& scheme,
                                                            const Graph& no_instance,
                                                            std::size_t max_bits) {
  if (scheme.holds(no_instance))
    throw std::invalid_argument("exhaustive_soundness_attack: instance satisfies the property");
  const std::size_t n = no_instance.vertex_count();
  const auto alphabet = all_certificates(max_bits);
  double combos = 1;
  for (std::size_t i = 0; i < n; ++i) combos *= static_cast<double>(alphabet.size());
  if (combos > 2e7)
    throw std::invalid_argument("exhaustive_soundness_attack: search space too large");

  // The odometer order is part of the contract (first accepting assignment in
  // canonical order); it stays serial, but every probe reuses the cache and
  // early-exits on the first rejecting vertex.
  LCERT_SPAN("audit/exhaustive_attack");
  const AuditMetrics& metrics = audit_metrics();
  const ViewCache cache(no_instance);
  std::vector<std::size_t> pick(n, 0);
  std::vector<Certificate> certs(n, alphabet[0]);
  while (true) {
    metrics.exhaustive_trials.add();
    if (accepted_everywhere(scheme, cache, certs)) {
      metrics.forgeries.add();
      return ForgedAssignment{certs, "exhaustive"};
    }
    // Odometer increment.
    std::size_t i = 0;
    while (i < n) {
      if (++pick[i] < alphabet.size()) {
        certs[i] = alphabet[pick[i]];
        break;
      }
      pick[i] = 0;
      certs[i] = alphabet[0];
      ++i;
    }
    if (i == n) break;
  }
  return std::nullopt;
}

void require_complete(const Scheme& scheme, const Graph& yes_instance) {
  if (!scheme.holds(yes_instance))
    throw std::invalid_argument("require_complete: instance does not satisfy the property");
  LCERT_SPAN("audit/require_complete");
  audit_metrics().completeness_checks.add();
  const auto outcome = run_scheme(scheme, yes_instance);
  if (!outcome.prover_succeeded)
    throw std::logic_error(scheme.name() + ": prover failed on yes-instance");
  if (!outcome.verification.all_accept) {
    std::ostringstream os;
    os << scheme.name() << ": verifier rejected honest certificates at vertices:";
    for (Vertex v : outcome.verification.rejecting) os << ' ' << v;
    throw std::logic_error(os.str());
  }
}

}  // namespace lcert
