#include "src/cert/audit.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/automata/box_index.hpp"
#include "src/automata/uop_automaton.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"
#include "src/solve/solver.hpp"
#include "src/util/parallel.hpp"

namespace lcert {

namespace {

// Trials per attack family, plus the forgery tally the issue tracker of a
// scheme actually cares about. Replay/empty probes are single verifications;
// random/mutation/exhaustive count every executed trial (skipped trials —
// e.g. numbered above an already-found forgery — are not counted); sat_run
// counts rootings searched.
struct AuditMetrics {
  obs::Counter random_trials = obs::registry().counter("audit/trials/random");
  obs::Counter mutation_trials = obs::registry().counter("audit/trials/bit_flip");
  obs::Counter replay_trials = obs::registry().counter("audit/trials/replay");
  obs::Counter empty_trials = obs::registry().counter("audit/trials/empty");
  obs::Counter exhaustive_trials = obs::registry().counter("audit/trials/exhaustive");
  obs::Counter sat_run_trials = obs::registry().counter("audit/trials/sat_run");
  obs::Counter attacks = obs::registry().counter("audit/attacks");
  obs::Counter forgeries = obs::registry().counter("audit/forgeries");
  obs::Counter completeness_checks = obs::registry().counter("audit/completeness_checks");
};

const AuditMetrics& audit_metrics() {
  static const AuditMetrics metrics;
  return metrics;
}

Certificate random_certificate(Rng& rng, std::size_t max_bits) {
  const std::size_t bits = rng.index(max_bits + 1);
  BitWriter w;
  for (std::size_t i = 0; i < bits; ++i) w.write_bit(rng.coin());
  return Certificate::from_writer(std::move(w));
}

Certificate flip_bit(const Certificate& c, std::size_t bit) {
  Certificate out = c;
  out.bytes[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
  return out;
}

// Attack trials only need accept/reject: early-exit, and stay single-threaded
// per verification — the parallelism lives at the trial level.
constexpr RunOptions kTrialVerify{/*num_threads=*/1, /*stop_at_first_reject=*/true};

bool accepted_everywhere(const Scheme& scheme, const ViewCache& cache,
                         const std::vector<Certificate>& certs) {
  return verify_assignment(scheme, cache, certs, kTrialVerify).all_accept;
}

// Runs `trials` independent attack trials on the worker pool. make_certs(rng)
// builds one candidate assignment from the trial's private Rng; the forgery
// reported is the one from the lowest-numbered successful trial, making the
// outcome independent of the thread count. Trials numbered above an already
// recorded success are skipped — their results could never win.
std::optional<std::vector<Certificate>> run_trials(
    const Scheme& scheme, const ViewCache& cache, std::size_t trials, Rng& rng,
    std::size_t num_threads, obs::Counter trial_counter, std::size_t& executed,
    const std::function<std::vector<Certificate>(Rng&)>& make_certs) {
  // Per-trial seeds drawn serially up front: each trial's randomness depends
  // only on its index, never on execution order.
  std::vector<std::uint64_t> seeds(trials);
  for (auto& s : seeds) s = rng.uniform(0, std::numeric_limits<std::uint64_t>::max());

  std::atomic<std::size_t> best{SIZE_MAX};
  std::atomic<std::size_t> ran{0};
  std::vector<Certificate> forged;
  std::mutex forged_mutex;
  parallel_for(trials, num_threads, [&](std::size_t trial) {
    if (trial > best.load(std::memory_order_relaxed)) return;
    trial_counter.add();
    ran.fetch_add(1, std::memory_order_relaxed);
    Rng trial_rng(seeds[trial]);
    std::vector<Certificate> certs = make_certs(trial_rng);
    if (certs.empty()) return;  // trial not applicable (e.g. zero-bit flip target)
    if (!accepted_everywhere(scheme, cache, certs)) return;
    std::lock_guard<std::mutex> lock(forged_mutex);
    if (trial < best.load(std::memory_order_relaxed)) {
      best.store(trial, std::memory_order_relaxed);
      forged = std::move(certs);
    }
  });
  executed = ran.load();
  if (best.load() == SIZE_MAX) return std::nullopt;
  return forged;
}

// ---------------------------------------------------------------------------
// The sat-run strategy: instead of perturbing bit strings, search the
// semantic forgery space. For run-encoding schemes (RunForgerySurface) every
// assignment the verifier could accept decodes to an orientation of an
// accepting automaton run, so asking the SAT solver backend for an accepting
// run on the no-instance — per candidate rooting, bottom-up feasibility DP
// then top-down witness extraction — covers that entire space. Exhausting
// every rooting is therefore a completeness statement for this family, which
// no trial-count budget of the syntactic attacks can make.
// ---------------------------------------------------------------------------
std::optional<std::vector<Certificate>> sat_run_attack(const AttackContext& ctx,
                                                       AttackOutcome& out) {
  const auto surface = ctx.scheme.run_forgery_surface();
  if (!surface.has_value() || surface->automaton == nullptr || !surface->encode) {
    out.applicable = false;
    out.detail = "scheme exposes no run-forgery surface";
    return std::nullopt;
  }
  const UOPAutomaton& a = *surface->automaton;
  if (a.label_count != 1 || a.state_count > 64) {
    out.applicable = false;
    out.detail = "unsupported automaton shape (labels or >64 states)";
    return std::nullopt;
  }
  const Graph& g = ctx.no_instance;
  const std::size_t n = g.vertex_count();
  if (n == 0 || g.edge_count() != n - 1 || !g.is_connected()) {
    out.applicable = false;
    out.detail = "instance outside the tree promise";
    return std::nullopt;
  }

  const std::size_t k = a.state_count;
  std::vector<BoxIndex> boxes;
  boxes.reserve(k);
  for (std::size_t q = 0; q < k; ++q)
    boxes.emplace_back(a.transition(q, 0).to_boxes(k));

  const auto solver = solve::SolverFactory::make(solve::Backend::kSat);
  const AuditMetrics& metrics = audit_metrics();
  std::vector<std::uint64_t> feasible(n, 0);
  std::vector<std::uint64_t> child_masks;
  std::vector<std::size_t> witness;

  const std::size_t root_budget = out.budget;
  for (Vertex root = 0; root < n; ++root) {
    if (out.trials >= root_budget) {
      out.detail = "root budget exhausted after " + std::to_string(out.trials) +
                   " of " + std::to_string(n) + " rootings";
      return std::nullopt;
    }
    ++out.trials;
    metrics.sat_run_trials.add();
    const RootedTree t = RootedTree::from_graph(g, root);
    const auto order = t.preorder();

    std::fill(feasible.begin(), feasible.end(), 0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t v = *it;
      child_masks.clear();
      for (std::size_t c : t.children(v)) child_masks.push_back(feasible[c]);
      solver->begin(child_masks, k);
      for (std::size_t q = 0; q < k; ++q)
        if (solver->decide_first(boxes[q]) != BoxIndex::npos)
          feasible[v] |= std::uint64_t{1} << q;
    }

    std::size_t root_state = SIZE_MAX;
    for (std::size_t q = 0; q < k; ++q)
      if (a.accepting[q] && (feasible[t.root()] >> q & 1u)) {
        root_state = q;
        break;
      }
    if (root_state == SIZE_MAX) continue;

    // An accepting run exists under this rooting: extract one. Witness
    // validity is all that matters here (the verifier is the judge), so the
    // solver's own models are fine — no pristine-flow detour.
    std::vector<std::size_t> run(n, SIZE_MAX);
    run[t.root()] = root_state;
    for (std::size_t v : order) {
      const std::size_t q = run[v];
      const auto children_span = t.children(v);
      if (children_span.empty()) continue;
      child_masks.clear();
      for (std::size_t c : children_span) child_masks.push_back(feasible[c]);
      solver->begin(child_masks, k);
      bool placed = false;
      // Candidate iteration: the cursor drops only boxes decide_witness
      // would reject on the necessary conditions, so the witness comes from
      // the same box a full sweep would pick.
      auto cur = boxes[q].feasibility_candidates(solver->supply().data(),
                                                 child_masks.size());
      for (std::size_t bi = cur.next(); bi != BoxIndex::npos; bi = cur.next()) {
        if (!solver->decide_witness(boxes[q].box(bi), witness)) continue;
        for (std::size_t i = 0; i < children_span.size(); ++i)
          run[children_span[i]] = witness[i];
        placed = true;
        break;
      }
      if (!placed)
        throw std::logic_error("sat-run attack: extraction failed after feasibility");
    }

    std::vector<Certificate> certs(n);
    for (Vertex v = 0; v < n; ++v) certs[v] = surface->encode(t.depth(v) % 3, run[v]);
    if (accepted_everywhere(ctx.scheme, ctx.cache, certs)) {
      out.detail = "accepting run rooted at " + std::to_string(root);
      return certs;
    }
    // A run the automaton accepts but the verifier rejects contradicts the
    // surface's contract; surface it rather than silently moving on.
    out.detail = "accepting run rooted at " + std::to_string(root) +
                 " was rejected by the verifier (surface mismatch)";
  }
  if (out.detail.empty())
    out.detail =
        "no accepting run from any of " + std::to_string(n) + " rootings";
  return std::nullopt;
}

}  // namespace

std::vector<AttackStrategy> standard_attack_plan(const RunOptions& options) {
  std::vector<AttackStrategy> plan;

  plan.push_back({"random", options.random_trials,
                  [](const AttackContext& ctx, Rng& rng, AttackOutcome& out) {
                    const std::size_t n = ctx.no_instance.vertex_count();
                    const std::size_t max_bits = ctx.options.max_random_bits;
                    return run_trials(
                        ctx.scheme, ctx.cache, out.budget, rng,
                        ctx.options.num_threads, audit_metrics().random_trials,
                        out.trials, [n, max_bits](Rng& trial_rng) {
                          std::vector<Certificate> certs(n);
                          for (auto& c : certs)
                            c = random_certificate(trial_rng, max_bits);
                          return certs;
                        });
                  }});

  plan.push_back({"empty", 1,
                  [](const AttackContext& ctx, Rng&, AttackOutcome& out)
                      -> std::optional<std::vector<Certificate>> {
                    std::vector<Certificate> certs(ctx.no_instance.vertex_count());
                    out.trials = 1;
                    audit_metrics().empty_trials.add();
                    if (accepted_everywhere(ctx.scheme, ctx.cache, certs))
                      return certs;
                    return std::nullopt;
                  }});

  const auto has_template = [](const AttackContext& ctx) {
    return ctx.yes_template != nullptr &&
           ctx.yes_template->size() == ctx.no_instance.vertex_count();
  };

  plan.push_back({"replay", 1,
                  [has_template](const AttackContext& ctx, Rng&, AttackOutcome& out)
                      -> std::optional<std::vector<Certificate>> {
                    if (!has_template(ctx) || !ctx.options.try_replay) {
                      out.applicable = false;
                      out.detail = "no yes-template";
                      return std::nullopt;
                    }
                    out.trials = 1;
                    audit_metrics().replay_trials.add();
                    if (accepted_everywhere(ctx.scheme, ctx.cache, *ctx.yes_template))
                      return *ctx.yes_template;
                    return std::nullopt;
                  }});

  plan.push_back({"replay-shuffled", 1,
                  [has_template](const AttackContext& ctx, Rng& rng, AttackOutcome& out)
                      -> std::optional<std::vector<Certificate>> {
                    if (!has_template(ctx) || !ctx.options.try_replay) {
                      out.applicable = false;
                      out.detail = "no yes-template";
                      return std::nullopt;
                    }
                    std::vector<Certificate> shuffled = *ctx.yes_template;
                    rng.shuffle(shuffled);
                    out.trials = 1;
                    audit_metrics().replay_trials.add();
                    if (accepted_everywhere(ctx.scheme, ctx.cache, shuffled))
                      return shuffled;
                    return std::nullopt;
                  }});

  plan.push_back({"bit-flip", options.mutation_trials,
                  [has_template](const AttackContext& ctx, Rng& rng, AttackOutcome& out)
                      -> std::optional<std::vector<Certificate>> {
                    if (!has_template(ctx)) {
                      out.applicable = false;
                      out.detail = "no yes-template";
                      return std::nullopt;
                    }
                    const std::size_t n = ctx.no_instance.vertex_count();
                    const std::vector<Certificate>& tmpl = *ctx.yes_template;
                    return run_trials(
                        ctx.scheme, ctx.cache, out.budget, rng,
                        ctx.options.num_threads, audit_metrics().mutation_trials,
                        out.trials, [n, &tmpl](Rng& trial_rng) {
                          std::vector<Certificate> certs = tmpl;
                          const Vertex v = static_cast<Vertex>(trial_rng.index(n));
                          if (certs[v].bit_size == 0) return std::vector<Certificate>{};
                          certs[v] = flip_bit(certs[v], trial_rng.index(certs[v].bit_size));
                          return certs;
                        });
                  }});

  // Last on purpose: draws nothing from the shared Rng, so adding/removing it
  // never shifts the draw order the replay contract depends on.
  plan.push_back({"sat-run", std::max<std::size_t>(options.random_trials, 1),
                  [](const AttackContext& ctx, Rng&, AttackOutcome& out) {
                    return sat_run_attack(ctx, out);
                  }});

  return plan;
}

SoundnessAuditReport run_soundness_audit(const Scheme& scheme, const Graph& no_instance,
                                         const std::vector<Certificate>* yes_template,
                                         Rng& rng, const RunOptions& options,
                                         const std::vector<AttackStrategy>* plan) {
  if (scheme.holds(no_instance))
    throw std::invalid_argument("run_soundness_audit: instance satisfies the property");
  LCERT_SPAN("audit/attack_soundness");
  const AuditMetrics& metrics = audit_metrics();
  metrics.attacks.add();
  const ViewCache cache(no_instance);  // one topology walk for every strategy below
  const AttackContext ctx{scheme, no_instance, cache, yes_template, options};

  const std::vector<AttackStrategy> standard =
      plan == nullptr ? standard_attack_plan(options) : std::vector<AttackStrategy>{};
  const std::vector<AttackStrategy>& strategies = plan == nullptr ? standard : *plan;

  SoundnessAuditReport report;
  report.outcomes.reserve(strategies.size());
  for (const AttackStrategy& strategy : strategies) {
    AttackOutcome& out = report.outcomes.emplace_back();
    out.strategy = strategy.name;
    out.budget = strategy.budget;
    if (report.forgery.has_value()) {
      // Plan order is fixed, so later strategies are reported but unexecuted
      // once a forgery is in hand.
      out.applicable = false;
      out.detail = "skipped: forgery already found";
      continue;
    }
    auto certs = strategy.run(ctx, rng, out);
    if (certs.has_value()) {
      out.forged = true;
      metrics.forgeries.add();
      report.forgery = ForgedAssignment{std::move(*certs), strategy.name};
    }
  }
  return report;
}

std::optional<ForgedAssignment> attack_soundness(const Scheme& scheme,
                                                 const Graph& no_instance,
                                                 const std::vector<Certificate>* yes_template,
                                                 Rng& rng, const RunOptions& options) {
  return run_soundness_audit(scheme, no_instance, yes_template, rng, options).forgery;
}

namespace {

// Enumerates all bit strings with 0..max_bits bits in a canonical order.
std::vector<Certificate> all_certificates(std::size_t max_bits) {
  std::vector<Certificate> out;
  for (std::size_t bits = 0; bits <= max_bits; ++bits) {
    const std::uint64_t limit = std::uint64_t{1} << bits;
    for (std::uint64_t value = 0; value < limit; ++value) {
      BitWriter w;
      w.write(value, static_cast<unsigned>(bits));
      out.push_back(Certificate::from_writer(std::move(w)));
    }
  }
  return out;
}

}  // namespace

std::optional<ForgedAssignment> exhaustive_soundness_attack(const Scheme& scheme,
                                                            const Graph& no_instance,
                                                            std::size_t max_bits) {
  if (scheme.holds(no_instance))
    throw std::invalid_argument("exhaustive_soundness_attack: instance satisfies the property");
  const std::size_t n = no_instance.vertex_count();
  const auto alphabet = all_certificates(max_bits);
  double combos = 1;
  for (std::size_t i = 0; i < n; ++i) combos *= static_cast<double>(alphabet.size());
  if (combos > 2e7)
    throw std::invalid_argument("exhaustive_soundness_attack: search space too large");

  // The odometer order is part of the contract (first accepting assignment in
  // canonical order); it stays serial, but every probe reuses the cache and
  // early-exits on the first rejecting vertex.
  LCERT_SPAN("audit/exhaustive_attack");
  const AuditMetrics& metrics = audit_metrics();
  const ViewCache cache(no_instance);
  std::vector<std::size_t> pick(n, 0);
  std::vector<Certificate> certs(n, alphabet[0]);
  while (true) {
    metrics.exhaustive_trials.add();
    if (accepted_everywhere(scheme, cache, certs)) {
      metrics.forgeries.add();
      return ForgedAssignment{certs, "exhaustive"};
    }
    // Odometer increment.
    std::size_t i = 0;
    while (i < n) {
      if (++pick[i] < alphabet.size()) {
        certs[i] = alphabet[pick[i]];
        break;
      }
      pick[i] = 0;
      certs[i] = alphabet[0];
      ++i;
    }
    if (i == n) break;
  }
  return std::nullopt;
}

void require_complete(const Scheme& scheme, const Graph& yes_instance) {
  if (!scheme.holds(yes_instance))
    throw std::invalid_argument("require_complete: instance does not satisfy the property");
  LCERT_SPAN("audit/require_complete");
  audit_metrics().completeness_checks.add();
  const auto outcome = run_scheme(scheme, yes_instance);
  if (!outcome.prover_succeeded)
    throw std::logic_error(scheme.name() + ": prover failed on yes-instance");
  if (!outcome.verification.all_accept) {
    std::ostringstream os;
    os << scheme.name() << ": verifier rejected honest certificates at vertices:";
    for (Vertex v : outcome.verification.rejecting) os << ' ' << v;
    throw std::logic_error(os.str());
  }
}

}  // namespace lcert
