// Evaluation engine: runs a scheme's verifier at every vertex and accounts
// certificate sizes in bits (the paper's performance measure).
//
// The hot path is zero-copy and parallel. A ViewCache precomputes the
// CSR-style view topology (self IDs, neighbor IDs, neighbor vertex indices)
// once per graph; binding a certificate assignment to it is a single O(m)
// pointer fill, and each per-vertex ViewRef is then handed out without
// copying a byte of certificate data. verify_assignment fans the vertices
// out over a worker pool; results are deterministic (the rejecting set is
// produced in vertex order regardless of thread count).
#pragma once

#include <cstddef>
#include <vector>

#include "src/cert/options.hpp"
#include "src/cert/scheme.hpp"

namespace lcert {

/// Builds vertex v's radius-1 view under a certificate assignment, deep
/// copying the certificates. Adapter for tests and one-off inspection; the
/// engine itself goes through ViewCache.
View make_view(const Graph& g, const std::vector<Certificate>& certificates, Vertex v);

/// Reusable zero-copy view factory for one graph. Construction walks the
/// adjacency once; every later verification pass over the same graph (the
/// scaling experiments, the audit's hundreds of forged assignments) reuses
/// the topology and only rebinds certificate pointers.
class ViewCache {
 public:
  explicit ViewCache(const Graph& g);

  const Graph& graph() const noexcept { return *g_; }
  std::size_t vertex_count() const noexcept { return ids_.size(); }

  /// One certificate assignment bound to the cached topology. Cheap to
  /// create (one O(m) pointer fill, no certificate copies) and immutable
  /// afterwards, so a Binding may be shared by concurrent verifier calls.
  /// Borrows both the cache and the certificate vector: both must outlive
  /// the binding, and the vector must not be resized while bound.
  class Binding {
   public:
    ViewRef view(Vertex v) const noexcept {
      return ViewRef{cache_->ids_[v], &(*certificates_)[v],
                     entries_.data() + cache_->offsets_[v],
                     cache_->offsets_[v + 1] - cache_->offsets_[v]};
    }
    std::size_t vertex_count() const noexcept { return cache_->vertex_count(); }

   private:
    friend class ViewCache;
    Binding(const ViewCache& cache, const std::vector<Certificate>& certificates);

    const ViewCache* cache_;
    const std::vector<Certificate>* certificates_;
    std::vector<NeighborRef> entries_;  ///< CSR-parallel {id, cert*} pairs
  };

  /// Binds an assignment (size must equal vertex_count()).
  Binding bind(const std::vector<Certificate>& certificates) const;

 private:
  const Graph* g_;
  std::vector<VertexId> ids_;            ///< self ID per vertex
  std::vector<std::size_t> offsets_;     ///< CSR offsets, size n+1
  std::vector<Vertex> neighbor_index_;   ///< CSR neighbor vertex indices
  std::vector<VertexId> neighbor_id_;    ///< CSR neighbor IDs
};

struct VerificationOutcome {
  bool all_accept = false;
  std::vector<Vertex> rejecting;        ///< vertices whose verifier said no
  std::size_t max_certificate_bits = 0;
  std::size_t total_certificate_bits = 0;
};

/// Runs the verifier everywhere under a given assignment. In full mode the
/// outcome is bit-for-bit identical for every num_threads value.
VerificationOutcome verify_assignment(const Scheme& scheme, const Graph& g,
                                      const std::vector<Certificate>& certificates,
                                      const RunOptions& options = {});

/// Same, against a prebuilt ViewCache (the audit loops re-verify hundreds of
/// assignments on one graph; building the cache once amortizes the topology
/// walk away).
VerificationOutcome verify_assignment(const Scheme& scheme, const ViewCache& cache,
                                      const std::vector<Certificate>& certificates,
                                      const RunOptions& options = {});

struct SchemeOutcome {
  bool prover_succeeded = false;
  VerificationOutcome verification;
};

/// Prover + verifier end to end.
SchemeOutcome run_scheme(const Scheme& scheme, const Graph& g,
                         const RunOptions& options = {});

/// Certificate size (max bits) the prover uses on this yes-instance; throws
/// if the prover fails or a verifier rejects — those are library bugs.
std::size_t certified_size_bits(const Scheme& scheme, const Graph& g);

}  // namespace lcert
