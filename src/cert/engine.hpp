// Evaluation engine: runs a scheme's verifier at every vertex and accounts
// certificate sizes in bits (the paper's performance measure).
#pragma once

#include <cstddef>
#include <vector>

#include "src/cert/scheme.hpp"

namespace lcert {

struct VerificationOutcome {
  bool all_accept = false;
  std::vector<Vertex> rejecting;        ///< vertices whose verifier said no
  std::size_t max_certificate_bits = 0;
  std::size_t total_certificate_bits = 0;
};

/// Runs the verifier everywhere under a given assignment.
VerificationOutcome verify_assignment(const Scheme& scheme, const Graph& g,
                                      const std::vector<Certificate>& certificates);

struct SchemeOutcome {
  bool prover_succeeded = false;
  VerificationOutcome verification;
};

/// Prover + verifier end to end.
SchemeOutcome run_scheme(const Scheme& scheme, const Graph& g);

/// Certificate size (max bits) the prover uses on this yes-instance; throws
/// if the prover fails or a verifier rejects — those are library bugs.
std::size_t certified_size_bits(const Scheme& scheme, const Graph& g);

}  // namespace lcert
