#include "src/cert/ball.hpp"

#include <stdexcept>

namespace lcert {

BallView make_ball_view(const Graph& g, const std::vector<Certificate>& certificates,
                        Vertex v, std::size_t radius) {
  if (certificates.size() != g.vertex_count())
    throw std::invalid_argument("make_ball_view: wrong number of certificates");
  const auto dist = g.bfs_distances(v);
  std::vector<Vertex> members{v};
  for (Vertex u = 0; u < g.vertex_count(); ++u)
    if (u != v && dist[u] <= radius) members.push_back(u);

  BallView view;
  view.radius = radius;
  view.ball = g.induced(members);
  view.distance.reserve(members.size());
  view.certificates.reserve(members.size());
  for (Vertex u : members) {
    view.distance.push_back(dist[u]);
    view.certificates.push_back(certificates[u]);
  }
  return view;
}

bool check_diameter_le_2_at_radius_3(const BallView& view) {
  if (view.radius < 3)
    throw std::invalid_argument("check_diameter_le_2_at_radius_3: radius must be >= 3");
  for (std::size_t d : view.distance)
    if (d >= 3) return false;
  return true;
}

bool decide_diameter_le_2_radius_3(const Graph& g) {
  const std::vector<Certificate> empty(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (!check_diameter_le_2_at_radius_3(make_ball_view(g, empty, v, 3))) return false;
  return true;
}

}  // namespace lcert
