// Prover engine, symmetric to the verify engine (engine.hpp).
//
// The paper's constructions all build certificates bottom-up over a rooted
// tree: the MSO schemes run a tree automaton, the treedepth and kernelization
// schemes walk elimination trees. prove_assignment is the one entry point —
// it hands the scheme a ProverContext carrying the run options, per-worker
// arena/writer scratch, and the memo counters, and calls Scheme::prove_batch
// (default: plain assign()). Batch provers process RootedTree::levels()
// deepest-first, fanning each level across the worker pool; the level
// boundary is the synchronization barrier, so every child is finished before
// its parent starts.
//
// Determinism contract (pinned by tests/test_prover_pipeline.cpp): for a
// fixed graph, prove_assignment returns bit-identical certificates for every
// num_threads value and with memoization on or off — and exactly the
// certificates scheme.assign(g) returns. Parallelism and memoization are
// pure speedups, never semantic forks.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "src/cert/options.hpp"
#include "src/cert/scheme.hpp"
#include "src/solve/solver.hpp"
#include "src/util/arena.hpp"
#include "src/util/bitio.hpp"
#include "src/util/parallel.hpp"

namespace lcert {

/// Per-run state handed to Scheme::prove_batch. Owns one arena-backed
/// BitWriter per worker (worker 0 is the calling thread), so a batch prover
/// encodes certificates with zero steady-state allocations; arenas persist
/// across levels within the run and are reset between vertices only via
/// BitWriter::clear(), which retains the buffer.
class ProverContext {
 public:
  /// `universe` bounds the parallel fan-out (vertex count of the graph being
  /// proven); the worker scratch is sized for the largest fan-out any level
  /// can need under `options.num_threads`.
  ProverContext(std::size_t universe, const RunOptions& options);

  /// Grows the worker scratch to cover fan-outs up to `universe` items. A
  /// context held across streaming edits (the incremental prover keeps one
  /// alive so arenas and feasibility scratch stay warm) must call this after
  /// any edit that grows the instance, or for_each_index could hand out
  /// worker ids beyond the scratch sized at construction. No-op when already
  /// large enough; never shrinks (arenas stay warm).
  void ensure_universe(std::size_t universe);

  const RunOptions& options() const noexcept { return options_; }
  bool memoize() const noexcept { return options_.memoize; }

  /// Upper bound on worker ids ever passed to scratch accessors.
  std::size_t worker_count() const noexcept { return scratch_.size(); }

  Arena& arena(std::size_t worker) { return scratch_[worker]->arena; }

  /// The worker's arena-backed writer, cleared and ready for one certificate.
  BitWriter& writer(std::size_t worker) {
    BitWriter& w = scratch_[worker]->writer;
    w.clear();
    return w;
  }

  /// Fans fn(worker, i) for i in [0, count) over the run's worker pool.
  /// Batch provers call this once per tree level (bottom-up); fn must write
  /// only slots owned by index i so the result is thread-count independent.
  template <typename Fn>
  void for_each_index(std::size_t count, Fn&& fn) {
    parallel_for_workers(count, options_.num_threads, std::forward<Fn>(fn));
  }

  /// Memo cache accounting (obs counters prover/memo_hits, prover/memo_misses
  /// plus per-run tallies the tests and the CLI read back directly).
  void count_memo_hits(std::size_t k);
  void count_memo_misses(std::size_t k);
  std::size_t memo_hits() const noexcept { return memo_hits_; }
  std::size_t memo_misses() const noexcept { return memo_misses_; }

  /// The worker's feasibility solver backend (DESIGN.md §15), built by
  /// SolverFactory from options().solver. Persistent per-worker scratch: warm
  /// across vertices within the run, zero steady-state allocations.
  solve::FeasibilitySolver& feasibility(std::size_t worker) {
    return *scratch_[worker]->feasibility;
  }

  /// Sum of every worker's per-stage decision counts. Call after the last
  /// fan-out (prove_assignment does, to fill ProveResult and the obs
  /// counters prover/feas_pruned|greedy|warm|flow|sat).
  solve::DecisionCounts feas_counts() const;

 private:
  struct WorkerScratch {
    Arena arena;
    BitWriter writer;
    std::unique_ptr<solve::FeasibilitySolver> feasibility;
    explicit WorkerScratch(solve::Backend backend)
        : writer(arena), feasibility(solve::SolverFactory::make(backend)) {}
  };

  RunOptions options_;
  std::vector<std::unique_ptr<WorkerScratch>> scratch_;
  std::size_t memo_hits_ = 0;
  std::size_t memo_misses_ = 0;
};

struct ProveResult {
  std::optional<std::vector<Certificate>> certificates;
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
  /// Per-stage decision counts of the feasibility solver (zero for schemes
  /// that never query it). Totals are thread-count invariant.
  solve::DecisionCounts feas;
};

/// Prover entry point: runs scheme.prove_batch under a fresh ProverContext.
/// Same certificates as scheme.assign(g), for every thread count, memoized
/// or not.
ProveResult prove_assignment(const Scheme& scheme, const Graph& g,
                             const RunOptions& options = {});

}  // namespace lcert
