#include "src/cert/prove.hpp"

#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"
#include "src/obs/trace.hpp"

namespace lcert {

namespace {

struct ProverMetrics {
  obs::Counter prove_calls = obs::registry().counter("prover/prove_calls");
  obs::Counter memo_hits = obs::registry().counter("prover/memo_hits");
  obs::Counter memo_misses = obs::registry().counter("prover/memo_misses");
  obs::Counter feas_pruned = obs::registry().counter("prover/feas_pruned");
  obs::Counter feas_greedy = obs::registry().counter("prover/feas_greedy");
  obs::Counter feas_warm = obs::registry().counter("prover/feas_warm");
  obs::Counter feas_flow = obs::registry().counter("prover/feas_flow");
  obs::Counter feas_sat = obs::registry().counter("prover/feas_sat");
  obs::Quantile prove_ns = obs::registry().quantile("prover/prove_ns");
  std::uint32_t trace_memo_hits = obs::trace_sink().name_id("prover/memo_hits");
  std::uint32_t trace_memo_misses = obs::trace_sink().name_id("prover/memo_misses");
};

const ProverMetrics& prover_metrics() {
  static const ProverMetrics metrics;
  return metrics;
}

}  // namespace

ProverContext::ProverContext(std::size_t universe, const RunOptions& options)
    : options_(options) {
  // resolve_thread_count is monotone in the item count, so sizing for the
  // whole universe covers every per-level fan-out the run can make.
  const std::size_t workers =
      resolve_thread_count(options.num_threads, universe == 0 ? 1 : universe);
  scratch_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    scratch_.push_back(std::make_unique<WorkerScratch>(options.solver));
}

void ProverContext::ensure_universe(std::size_t universe) {
  const std::size_t workers =
      resolve_thread_count(options_.num_threads, universe == 0 ? 1 : universe);
  while (scratch_.size() < workers)
    scratch_.push_back(std::make_unique<WorkerScratch>(options_.solver));
}

solve::DecisionCounts ProverContext::feas_counts() const {
  solve::DecisionCounts total;
  for (const auto& s : scratch_) total += s->feasibility->counts();
  return total;
}

void ProverContext::count_memo_hits(std::size_t k) {
  if (k == 0) return;
  memo_hits_ += k;
  prover_metrics().memo_hits.add(k);
}

void ProverContext::count_memo_misses(std::size_t k) {
  if (k == 0) return;
  memo_misses_ += k;
  prover_metrics().memo_misses.add(k);
}

ProveResult prove_assignment(const Scheme& scheme, const Graph& g,
                             const RunOptions& options) {
  LCERT_SPAN("prover/prove_assignment");
  const ProverMetrics& metrics = prover_metrics();
  metrics.prove_calls.add();
  const bool tracing = obs::trace_enabled();
  const std::uint64_t t0 = tracing ? obs::trace_now_ns() : 0;
  ProverContext ctx(g.vertex_count(), options);
  ProveResult out;
  out.certificates = scheme.prove_batch(g, ctx);
  out.memo_hits = ctx.memo_hits();
  out.memo_misses = ctx.memo_misses();
  out.feas = ctx.feas_counts();
  metrics.feas_pruned.add(out.feas.pruned);
  metrics.feas_greedy.add(out.feas.greedy);
  metrics.feas_warm.add(out.feas.warm);
  metrics.feas_flow.add(out.feas.flow);
  metrics.feas_sat.add(out.feas.sat);
  if (tracing) {
    const std::uint64_t ns = obs::trace_now_ns() - t0;
    metrics.prove_ns.record(ns);
    // Counter samples: memo traffic is thread-count-invariant (collected
    // serially), so these land identically in every logical stream.
    obs::trace_sink().emit(metrics.trace_memo_hits, obs::TraceEventKind::kCounter, 0,
                           static_cast<std::int64_t>(out.memo_hits));
    obs::trace_sink().emit(metrics.trace_memo_misses, obs::TraceEventKind::kCounter, 0,
                           static_cast<std::int64_t>(out.memo_misses));
    if (obs::outliers().would_admit(ns)) {
      obs::OutlierRecord rec;
      rec.ns = ns;
      rec.site = "prove";
      rec.scheme = scheme.name();
      rec.unit = g.vertex_count();
      rec.detail = "memo_hits=" + std::to_string(out.memo_hits) +
                   " memo_misses=" + std::to_string(out.memo_misses);
      obs::outliers().record(std::move(rec));
    }
  }
  return out;
}

}  // namespace lcert
