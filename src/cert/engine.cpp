#include "src/cert/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "src/cert/prove.hpp"
#include "src/obs/instrumented_scheme.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"
#include "src/obs/trace.hpp"
#include "src/util/parallel.hpp"

namespace lcert {

namespace {

// Handles resolved once; every add behind them is a relaxed-atomic bump in a
// thread-local shard (or a single branch when metrics are disabled).
struct EngineMetrics {
  obs::Counter bindings = obs::registry().counter("engine/bindings");
  obs::Counter views_bound = obs::registry().counter("engine/views_bound");
  obs::Counter vertices_verified = obs::registry().counter("engine/vertices_verified");
  obs::Counter batches = obs::registry().counter("engine/batches");
  obs::Counter rejections = obs::registry().counter("engine/rejections");
  obs::Counter busy_ns = obs::registry().counter("engine/worker_busy_ns");
  obs::Counter verify_calls = obs::registry().counter("engine/verify_calls");
  obs::Histogram batch_size = obs::registry().histogram("engine/batch_size");
  // Tracing-gated latency attribution (DESIGN.md §14): exact quantiles per
  // batch and per vertex, plus one instant event per batch keyed by the
  // deterministic block index. All behind trace_enabled() so the disabled
  // path keeps its once-per-worker clock discipline (<1% budget).
  obs::Quantile batch_ns = obs::registry().quantile("engine/verify_batch_ns");
  obs::Quantile vertex_ns = obs::registry().quantile("engine/verify_vertex_ns");
  std::uint32_t trace_batch = obs::trace_sink().name_id("engine/verify_batch");
};

const EngineMetrics& engine_metrics() {
  static const EngineMetrics metrics;
  return metrics;
}

}  // namespace

View make_view(const Graph& g, const std::vector<Certificate>& certificates, Vertex v) {
  if (certificates.size() != g.vertex_count())
    throw std::invalid_argument("make_view: wrong number of certificates");
  View view;
  view.id = g.id(v);
  view.certificate = certificates[v];
  view.neighbors.reserve(g.degree(v));
  for (Vertex w : g.neighbors(v)) view.neighbors.push_back({g.id(w), certificates[w]});
  return view;
}

ViewCache::ViewCache(const Graph& g) : g_(&g) {
  const std::size_t n = g.vertex_count();
  ids_.resize(n);
  offsets_.resize(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    ids_[v] = g.id(v);
    offsets_[v + 1] = offsets_[v] + g.degree(v);
  }
  neighbor_index_.reserve(offsets_[n]);
  neighbor_id_.reserve(offsets_[n]);
  for (Vertex v = 0; v < n; ++v)
    for (Vertex w : g.neighbors(v)) {
      neighbor_index_.push_back(w);
      neighbor_id_.push_back(g.id(w));
    }
}

ViewCache::Binding::Binding(const ViewCache& cache, const std::vector<Certificate>& certificates)
    : cache_(&cache), certificates_(&certificates) {
  if (certificates.size() != cache.vertex_count())
    throw std::invalid_argument("ViewCache::bind: wrong number of certificates");
  const std::size_t m = cache.neighbor_index_.size();
  entries_.resize(m);
  for (std::size_t k = 0; k < m; ++k)
    entries_[k] = {cache.neighbor_id_[k], &certificates[cache.neighbor_index_[k]]};
}

ViewCache::Binding ViewCache::bind(const std::vector<Certificate>& certificates) const {
  return Binding(*this, certificates);
}

VerificationOutcome verify_assignment(const Scheme& scheme, const ViewCache& cache,
                                      const std::vector<Certificate>& certificates,
                                      const RunOptions& options) {
  VerificationOutcome out;
  for (const Certificate& c : certificates) {
    out.max_certificate_bits = std::max(out.max_certificate_bits, c.bit_size);
    out.total_certificate_bits += c.bit_size;
    // Accounting guard (satellite of the obs layer): the bit-level encoder's
    // byte buffer must match the bit_size the reporter aggregates.
    assert(c.bytes.size() == (c.bit_size + 7) / 8);
  }

  const ViewCache::Binding binding = cache.bind(certificates);
  const std::size_t n = cache.vertex_count();
  const bool metrics_on = obs::registry().enabled();
  const bool tracing = obs::trace_enabled();
  const EngineMetrics& metrics = engine_metrics();
  if (metrics_on) {
    metrics.verify_calls.add();
    metrics.bindings.add();
    metrics.views_bound.add(n);
  }
  // Vertices are verified in contiguous batches through Scheme::verify_batch
  // (exception policy — CertificateTruncated rejects, anything else is a
  // scheme bug and propagates — lives there). Disjoint result slots keep the
  // outcome deterministic regardless of which worker runs which batch.
  constexpr std::size_t kBatch = 128;
  const std::size_t blocks = (n + kBatch - 1) / kBatch;
  // Thread count is a per-vertex decision (the auto cutoff is in vertices),
  // then passed explicitly so parallel_for's own resolution doesn't re-apply
  // the cutoff to the much smaller block count.
  const std::size_t workers = resolve_thread_count(options.num_threads, n);
  std::vector<std::uint8_t> rejected(n, 0);
  std::atomic<bool> stop{false};
  // Metric cost on this path (ISSUE budget: <5% at n=4096, measured <1% by
  // BM_EngineZeroCopySerial vs ...NoMetrics): counter bumps are per 128-vertex
  // block (~2ns each, thread-local shard), and the clock is read once per
  // worker — not per block — for engine/worker_busy_ns.
  parallel_for(
      blocks, workers,
      [&](std::size_t block) {
        if (options.stop_at_first_reject && stop.load(std::memory_order_relaxed)) return;
        const std::size_t begin = block * kBatch;
        const std::size_t count = std::min(kBatch, n - begin);
        ViewRef views[kBatch];
        std::uint8_t accept[kBatch];
        for (std::size_t i = 0; i < count; ++i)
          views[i] = binding.view(static_cast<Vertex>(begin + i));
        const std::uint64_t batch_t0 = tracing ? obs::trace_now_ns() : 0;
        scheme.verify_batch(std::span<const ViewRef>(views, count),
                            std::span<std::uint8_t>(accept, count));
        if (tracing) {
          const std::uint64_t batch_ns = obs::trace_now_ns() - batch_t0;
          metrics.batch_ns.record(batch_ns);
          metrics.vertex_ns.record(batch_ns / count);
          obs::trace_sink().emit(metrics.trace_batch, obs::TraceEventKind::kInstant,
                                 block, static_cast<std::int64_t>(count));
          if (obs::outliers().would_admit(batch_ns)) {
            obs::OutlierRecord rec;
            rec.ns = batch_ns;
            rec.site = "verify-batch";
            rec.scheme = scheme.name();
            rec.unit = begin;
            rec.detail =
                scheme.slow_batch_attribution(std::span<const ViewRef>(views, count));
            obs::outliers().record(std::move(rec));
          }
        }
        std::size_t block_rejections = 0;
        for (std::size_t i = 0; i < count; ++i)
          if (!accept[i]) {
            rejected[begin + i] = 1;
            ++block_rejections;
            if (options.stop_at_first_reject) stop.store(true, std::memory_order_relaxed);
          }
        if (metrics_on) {
          metrics.batches.add();
          metrics.vertices_verified.add(count);
          metrics.batch_size.record(count);
          if (block_rejections != 0) metrics.rejections.add(block_rejections);
        }
      },
      [&](auto&& run) {
        if (!metrics_on) {
          run();
          return;
        }
        using Clock = std::chrono::steady_clock;
        const Clock::time_point start = Clock::now();
        run();
        metrics.busy_ns.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
                .count()));
      });
  for (Vertex v = 0; v < n; ++v)
    if (rejected[v]) out.rejecting.push_back(v);
  out.all_accept = out.rejecting.empty();
  return out;
}

VerificationOutcome verify_assignment(const Scheme& scheme, const Graph& g,
                                      const std::vector<Certificate>& certificates,
                                      const RunOptions& options) {
  return verify_assignment(scheme, ViewCache(g), certificates, options);
}

SchemeOutcome run_scheme(const Scheme& scheme, const Graph& g, const RunOptions& options) {
  SchemeOutcome out;
#ifndef NDEBUG
  // Cross-check the prover-side histogram against the engine's own bit
  // accounting below: if the scheme is instrumented, the sizes it recorded
  // during this assign() must be exactly what verify_assignment sums over
  // the certificate vector — divergence means the reporter and the
  // bit-level accounting no longer agree.
  const std::string hist_name = obs::InstrumentedScheme::size_histogram_name(scheme);
  const obs::HistogramSnapshot before = obs::registry().histogram_snapshot(hist_name);
#endif
  const auto certificates = prove_assignment(scheme, g, options).certificates;
  out.prover_succeeded = certificates.has_value();
  if (out.prover_succeeded) {
    LCERT_SPAN("engine/verify_assignment");
    out.verification = verify_assignment(scheme, g, *certificates, options);
#ifndef NDEBUG
    const obs::HistogramSnapshot after = obs::registry().histogram_snapshot(hist_name);
    if (after.count - before.count == certificates->size() && !certificates->empty()) {
      assert(after.sum - before.sum == out.verification.total_certificate_bits);
      assert(after.max >= out.verification.max_certificate_bits);
    }
#endif
  }
  return out;
}

std::size_t certified_size_bits(const Scheme& scheme, const Graph& g) {
  const auto outcome = run_scheme(scheme, g);
  if (!outcome.prover_succeeded)
    throw std::logic_error(scheme.name() + ": prover failed on a yes-instance");
  if (!outcome.verification.all_accept)
    throw std::logic_error(scheme.name() + ": verifier rejected the prover's assignment");
  return outcome.verification.max_certificate_bits;
}

}  // namespace lcert
