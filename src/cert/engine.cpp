#include "src/cert/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcert {

View make_view(const Graph& g, const std::vector<Certificate>& certificates, Vertex v) {
  if (certificates.size() != g.vertex_count())
    throw std::invalid_argument("make_view: wrong number of certificates");
  View view;
  view.id = g.id(v);
  view.certificate = certificates[v];
  view.neighbors.reserve(g.degree(v));
  for (Vertex w : g.neighbors(v)) view.neighbors.push_back({g.id(w), certificates[w]});
  return view;
}

VerificationOutcome verify_assignment(const Scheme& scheme, const Graph& g,
                                      const std::vector<Certificate>& certificates) {
  VerificationOutcome out;
  for (const Certificate& c : certificates) {
    out.max_certificate_bits = std::max(out.max_certificate_bits, c.bit_size);
    out.total_certificate_bits += c.bit_size;
  }
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    bool ok;
    try {
      ok = scheme.verify(make_view(g, certificates, v));
    } catch (const std::out_of_range&) {
      // Truncated/garbage certificate: the verifier rejects.
      ok = false;
    }
    if (!ok) out.rejecting.push_back(v);
  }
  out.all_accept = out.rejecting.empty();
  return out;
}

SchemeOutcome run_scheme(const Scheme& scheme, const Graph& g) {
  SchemeOutcome out;
  const auto certificates = scheme.assign(g);
  out.prover_succeeded = certificates.has_value();
  if (out.prover_succeeded) out.verification = verify_assignment(scheme, g, *certificates);
  return out;
}

std::size_t certified_size_bits(const Scheme& scheme, const Graph& g) {
  const auto outcome = run_scheme(scheme, g);
  if (!outcome.prover_succeeded)
    throw std::logic_error(scheme.name() + ": prover failed on a yes-instance");
  if (!outcome.verification.all_accept)
    throw std::logic_error(scheme.name() + ": verifier rejected the prover's assignment");
  return outcome.verification.max_certificate_bits;
}

}  // namespace lcert
