// The one options struct shared by every engine, audit and fuzz entry point.
//
// The engine's verification fan-out, the audit's adversarial trial fan-out
// and the fuzz campaign's trial fan-out all need the same knobs: a worker
// count, a deterministic seed, and budgets. They used to carry them in
// separate structs (VerifyOptions / AuditOptions) whose fields drifted; every
// entry point now takes a RunOptions and reads the fields it cares about.
//
// Determinism contract: for a fixed seed and fixed budgets, every consumer
// produces bit-identical results for every num_threads value (the engine's
// rejecting set, the audit's forgery, the fuzz campaign's findings).
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/solve/backend.hpp"

namespace lcert {

struct RunOptions {
  // --- worker pool (engine: per-vertex fan-out; audit/fuzz: per-trial) ---
  /// 0 = auto (serial below kParallelAutoCutoff items, hardware concurrency
  /// above).
  std::size_t num_threads = 0;

  // --- verification ---
  /// Early-exit mode for callers where only accept/reject matters: stop
  /// handing out vertices once one rejects. `all_accept` and the bit
  /// accounting stay exact; the rejecting set holds at least one witness on
  /// rejection but is not exhaustive (and may vary run-to-run under threads).
  bool stop_at_first_reject = false;

  // --- seeded randomness ---
  /// Campaign/battery seed. The audit also accepts an explicit Rng (tests
  /// thread one through several calls); the fuzz engine derives per-trial
  /// seeds from this field so any trial replays from (seed, trial index).
  std::uint64_t seed = 42;

  // --- adversarial budgets (audit attack families; fuzz per-trial attacks) ---
  std::size_t random_trials = 200;    ///< uniformly random certificates
  std::size_t mutation_trials = 200;  ///< bit-flips of a template assignment
  std::size_t max_random_bits = 64;   ///< length of random certificates
  bool try_replay = true;             ///< replay template certificates shuffled

  // --- campaign budget ---
  /// Wall-clock budget in seconds; 0 = trial-count driven. Only the fuzz
  /// campaign consumes this (trial counts stay exact and deterministic,
  /// time budgets by nature are not).
  double time_budget_s = 0;

  // --- proving (last fields: existing aggregate initializers stay valid) ---
  /// Enable the hash-consed subtree certificate cache in batch provers.
  /// Off is strictly a debugging/benchmarking mode: output is bit-identical
  /// either way (pinned by tests), only the work done changes.
  bool memoize = true;

  /// Which FeasibilitySolver backend (src/solve/) decides the per-vertex UOP
  /// assignment problem: warm-flow (default), greedy, cold-flow (the pristine
  /// reference) or sat. Like `memoize`, a debugging/benchmarking/differential
  /// knob: output is bit-identical under every backend (pinned by tests and
  /// the solver-divergence fuzz oracle).
  solve::Backend solver = solve::kDefaultBackend;
};

}  // namespace lcert
