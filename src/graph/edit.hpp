// First-class graph edit descriptors.
//
// The fuzz mutators (DESIGN.md §10) used to be closures from Graph to Graph:
// draw random parameters, rebuild, return. The incremental recertification
// layer (DESIGN.md §13) needs the parameters themselves — a live
// CertifiedInstance patches its rooted tree and its certificate slice from
// the edit description without ever materializing the mutated Graph on the
// hot path. So the mutation step is split in two: fuzz::draw_edit picks the
// parameters (same RNG stream as the old closures, so every recorded
// (seed, trial) replay still reproduces), and apply_edit here materializes
// the mutated Graph from a descriptor. A descriptor is plain data: it can be
// logged, shrunk, shipped to a CLI, or replayed against either representation.
//
// Index semantics follow the mutators exactly:
//   kLeafGraft   adds vertex n (= old vertex_count) as a leaf under `a`,
//                carrying `fresh_id`.
//   kLeafPrune   removes vertex `a` (degree 1); survivors are renumbered by
//                Graph::induced — v maps to v-1 for every v > a.
//   kSubtreeSwap deletes edge {a, c} and inserts edge {a, b} (a = moved
//                subtree root, c = its old parent, b = its new parent, all
//                under the drawing rooting; any rooting sees the same edge
//                replacement).
//   kEdgeAdd / kEdgeDelete insert/remove the undirected edge {a, b}.
//   kIdPermute   replaces the whole ID assignment with `ids`.
#pragma once

#include <string>
#include <vector>

#include "src/graph/graph.hpp"

namespace lcert {

enum class EditKind {
  kEdgeAdd,      ///< insert the non-edge {a, b} (keeps simplicity)
  kEdgeDelete,   ///< delete the non-bridge edge {a, b} (keeps connectivity)
  kLeafGraft,    ///< attach fresh leaf (new vertex n, id fresh_id) under a
  kLeafPrune,    ///< remove degree-1 vertex a (indices above shift down)
  kSubtreeSwap,  ///< re-hang: delete edge {a, c}, insert edge {a, b}
  kIdPermute,    ///< replace the ID assignment with `ids`
};

/// Display name, stable across versions (appears in shrunk repro files and
/// in `lcert_cli apply-edit` / `watch` output).
std::string edit_name(EditKind kind);

/// One concrete edit. Field use per kind (unused fields are zero/empty):
///   kEdgeAdd, kEdgeDelete: a, b  — the edge endpoints
///   kLeafGraft:            a     — the anchor; fresh_id — the new leaf's ID
///   kLeafPrune:            a     — the pruned vertex
///   kSubtreeSwap:          a     — moved subtree root; b — new parent;
///                          c     — old parent
///   kIdPermute:            ids   — the full replacement ID assignment
struct GraphEdit {
  EditKind kind = EditKind::kEdgeAdd;
  Vertex a = 0;
  Vertex b = 0;
  Vertex c = 0;
  VertexId fresh_id = 0;
  std::vector<VertexId> ids;
};

/// Human-readable one-liner ("leaf-graft anchor=3 id=17"), for stats lines
/// and repro logs.
std::string to_string(const GraphEdit& edit);

/// Materializes the edit. Throws std::invalid_argument when the descriptor
/// does not apply to `g` (endpoint out of range, pruning a non-leaf, swapping
/// a non-existent edge). The result preserves IDs of surviving vertices,
/// exactly as the fuzz mutators always did.
Graph apply_edit(const Graph& g, const GraphEdit& edit);

}  // namespace lcert
