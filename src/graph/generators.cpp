#include "src/graph/generators.hpp"

#include <numeric>
#include <stdexcept>

namespace lcert {

Graph make_path(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_path: n == 0");
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph(n, edges);
}

Graph make_cycle(std::size_t n) {
  if (n < 3) throw std::invalid_argument("make_cycle: n < 3");
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  edges.emplace_back(n - 1, 0);
  return Graph(n, edges);
}

Graph make_star(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_star: n == 0");
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t i = 1; i < n; ++i) edges.emplace_back(0, i);
  return Graph(n, edges);
}

Graph make_complete(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_complete: n == 0");
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return Graph(n, edges);
}

Graph make_complete_bipartite(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0) throw std::invalid_argument("make_complete_bipartite: empty side");
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t i = 0; i < a; ++i)
    for (std::size_t j = 0; j < b; ++j) edges.emplace_back(i, a + j);
  return Graph(a + b, edges);
}

Graph make_caterpillar(std::size_t spine, std::size_t legs) {
  if (spine == 0) throw std::invalid_argument("make_caterpillar: empty spine");
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t i = 0; i + 1 < spine; ++i) edges.emplace_back(i, i + 1);
  std::size_t next = spine;
  for (std::size_t i = 0; i < spine; ++i)
    for (std::size_t l = 0; l < legs; ++l) edges.emplace_back(i, next++);
  return Graph(next, edges);
}

Graph make_spider(std::size_t legs, std::size_t leg_length) {
  if (leg_length == 0) return Graph(1, {});
  std::vector<std::pair<Vertex, Vertex>> edges;
  std::size_t next = 1;
  for (std::size_t l = 0; l < legs; ++l) {
    Vertex prev = 0;
    for (std::size_t i = 0; i < leg_length; ++i) {
      edges.emplace_back(prev, next);
      prev = static_cast<Vertex>(next++);
    }
  }
  return Graph(next, edges);
}

Graph make_complete_binary_tree(std::size_t levels) {
  if (levels == 0) throw std::invalid_argument("make_complete_binary_tree: levels == 0");
  const std::size_t n = (std::size_t{1} << levels) - 1;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t v = 1; v < n; ++v) edges.emplace_back(v, (v - 1) / 2);
  return Graph(n, edges);
}

Graph make_random_tree(std::size_t n, Rng& rng) {
  if (n == 0) throw std::invalid_argument("make_random_tree: n == 0");
  if (n == 1) return Graph(1, {});
  if (n == 2) return Graph(2, {{0, 1}});
  // Prüfer decoding.
  std::vector<std::size_t> prufer(n - 2);
  for (auto& x : prufer) x = rng.index(n);
  std::vector<std::size_t> degree(n, 1);
  for (std::size_t x : prufer) ++degree[x];
  std::vector<std::pair<Vertex, Vertex>> edges;
  // Min-heap over leaves.
  std::vector<bool> used(n, false);
  for (std::size_t code : prufer) {
    std::size_t leaf = SIZE_MAX;
    for (std::size_t v = 0; v < n; ++v)
      if (degree[v] == 1 && !used[v]) {
        leaf = v;
        break;
      }
    edges.emplace_back(leaf, code);
    used[leaf] = true;
    --degree[code];
  }
  std::vector<std::size_t> last;
  for (std::size_t v = 0; v < n; ++v)
    if (degree[v] == 1 && !used[v]) last.push_back(v);
  edges.emplace_back(last.at(0), last.at(1));
  return Graph(n, edges);
}

RootedTree make_random_rooted_tree(std::size_t n, std::size_t max_depth, Rng& rng) {
  if (n == 0) throw std::invalid_argument("make_random_rooted_tree: n == 0");
  std::vector<std::size_t> parent(n, RootedTree::kNoParent);
  std::vector<std::size_t> depth(n, 0);
  std::vector<std::size_t> eligible{0};  // vertices with depth < max_depth
  for (std::size_t v = 1; v < n; ++v) {
    if (eligible.empty())
      throw std::invalid_argument("make_random_rooted_tree: depth budget too small");
    const std::size_t p = eligible[rng.index(eligible.size())];
    parent[v] = p;
    depth[v] = depth[p] + 1;
    if (depth[v] < max_depth) eligible.push_back(v);
  }
  return RootedTree(std::move(parent));
}

Graph make_random_connected(std::size_t n, double p, Rng& rng) {
  Graph tree = make_random_tree(n, rng);
  auto edges = tree.edges();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (!tree.has_edge(i, j) && rng.coin(p)) edges.emplace_back(i, j);
  return Graph(n, edges);
}

BoundedTreedepthInstance make_bounded_treedepth_graph(std::size_t n,
                                                      std::size_t depth_budget,
                                                      double extra_edge_p,
                                                      Rng& rng) {
  if (depth_budget == 0)
    throw std::invalid_argument("make_bounded_treedepth_graph: depth budget 0");
  RootedTree t = make_random_rooted_tree(n, depth_budget - 1, rng);
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t p = t.parent(v);
    if (p == RootedTree::kNoParent) continue;
    edges.emplace_back(v, p);
    // Extra edges to strict ancestors above the parent.
    for (std::size_t a = t.parent(p); a != RootedTree::kNoParent; a = t.parent(a))
      if (rng.coin(extra_edge_p)) edges.emplace_back(v, a);
  }
  return {Graph(n, edges), std::move(t)};
}

Graph glue_at_apex(const std::vector<Graph>& parts) {
  if (parts.empty()) throw std::invalid_argument("glue_at_apex: no parts");
  std::vector<std::pair<Vertex, Vertex>> edges;
  std::size_t offset = 1;  // vertex 0 is the apex
  for (const Graph& part : parts) {
    for (auto [u, v] : part.edges()) edges.emplace_back(u + offset, v + offset);
    edges.emplace_back(0, offset);  // apex to part's vertex 0
    offset += part.vertex_count();
  }
  return Graph(offset, edges);
}

}  // namespace lcert
