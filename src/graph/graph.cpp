#include "src/graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "src/util/rng.hpp"

namespace lcert {

Graph::Graph(std::size_t n, const std::vector<std::pair<Vertex, Vertex>>& edges)
    : adjacency_(n), ids_(n) {
  for (std::size_t v = 0; v < n; ++v) ids_[v] = static_cast<VertexId>(v + 1);
  std::set<std::pair<Vertex, Vertex>> seen;
  for (auto [u, v] : edges) {
    if (u >= n || v >= n) throw std::out_of_range("Graph: edge endpoint out of range");
    if (u == v) throw std::invalid_argument("Graph: loops are not allowed");
    auto key = std::minmax(u, v);
    if (!seen.insert({key.first, key.second}).second)
      throw std::invalid_argument("Graph: duplicate edge");
    adjacency_[u].push_back(v);
    adjacency_[v].push_back(u);
    ++edge_count_;
  }
  for (auto& nbrs : adjacency_) std::sort(nbrs.begin(), nbrs.end());
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  const auto& nbrs = adjacency_.at(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void Graph::set_ids(std::vector<VertexId> ids) {
  if (ids.size() != adjacency_.size())
    throw std::invalid_argument("Graph::set_ids: wrong length");
  std::unordered_set<VertexId> distinct;
  for (VertexId id : ids) {
    if (id == 0) throw std::invalid_argument("Graph::set_ids: IDs must be >= 1");
    if (!distinct.insert(id).second)
      throw std::invalid_argument("Graph::set_ids: duplicate ID");
  }
  ids_ = std::move(ids);
}

Vertex Graph::vertex_with_id(VertexId id) const {
  for (Vertex v = 0; v < ids_.size(); ++v)
    if (ids_[v] == id) return v;
  throw std::out_of_range("Graph::vertex_with_id: no such ID");
}

std::vector<std::pair<Vertex, Vertex>> Graph::edges() const {
  std::vector<std::pair<Vertex, Vertex>> out;
  out.reserve(edge_count_);
  for (Vertex u = 0; u < adjacency_.size(); ++u)
    for (Vertex v : adjacency_[u])
      if (u < v) out.emplace_back(u, v);
  return out;
}

bool Graph::is_connected() const {
  if (vertex_count() == 0) return false;
  const auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::size_t d) { return d == SIZE_MAX; });
}

Graph Graph::induced(const std::vector<Vertex>& keep) const {
  std::unordered_map<Vertex, Vertex> index_of;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] >= vertex_count()) throw std::out_of_range("Graph::induced: bad vertex");
    if (!index_of.emplace(keep[i], i).second)
      throw std::invalid_argument("Graph::induced: duplicate vertex");
  }
  std::vector<std::pair<Vertex, Vertex>> new_edges;
  for (std::size_t i = 0; i < keep.size(); ++i)
    for (Vertex w : adjacency_[keep[i]]) {
      auto it = index_of.find(w);
      if (it != index_of.end() && i < it->second) new_edges.emplace_back(i, it->second);
    }
  Graph out(keep.size(), new_edges);
  std::vector<VertexId> ids(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) ids[i] = ids_[keep[i]];
  out.set_ids(std::move(ids));
  return out;
}

std::vector<std::size_t> Graph::bfs_distances(Vertex source) const {
  std::vector<std::size_t> dist(vertex_count(), SIZE_MAX);
  std::queue<Vertex> q;
  dist.at(source) = 0;
  q.push(source);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    for (Vertex w : adjacency_[v]) {
      if (dist[w] == SIZE_MAX) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "Graph(n=" << vertex_count() << ", m=" << edge_count() << ")\n";
  for (Vertex v = 0; v < vertex_count(); ++v) {
    os << "  " << v << " (id=" << ids_[v] << "):";
    for (Vertex w : adjacency_[v]) os << ' ' << w;
    os << '\n';
  }
  return os.str();
}

void assign_random_ids(Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  const std::uint64_t range = static_cast<std::uint64_t>(n) * n + 1;
  std::unordered_set<VertexId> chosen;
  std::vector<VertexId> ids;
  ids.reserve(n);
  while (ids.size() < n) {
    const VertexId candidate = rng.uniform(1, range);
    if (chosen.insert(candidate).second) ids.push_back(candidate);
  }
  g.set_ids(std::move(ids));
}

}  // namespace lcert
