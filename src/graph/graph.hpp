// Core graph representation.
//
// Vertices are dense indices 0..n-1; every vertex additionally carries a
// unique *identifier* from a polynomial range [1, n^c], as the certification
// model requires (Section 3.3 of the paper). Algorithms work on indices;
// certificates and verifiers only ever see identifiers, which is what keeps
// the radius-1 model honest.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace lcert {

using Vertex = std::size_t;
using VertexId = std::uint64_t;

/// Immutable simple graph with adjacency lists and external vertex IDs.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph on `n` vertices with the given undirected edge list.
  /// IDs default to 1..n. Duplicate edges and loops are rejected.
  Graph(std::size_t n, const std::vector<std::pair<Vertex, Vertex>>& edges);

  std::size_t vertex_count() const noexcept { return adjacency_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  std::span<const Vertex> neighbors(Vertex v) const { return adjacency_.at(v); }
  std::size_t degree(Vertex v) const { return adjacency_.at(v).size(); }

  /// O(log deg) membership test (adjacency lists are kept sorted).
  bool has_edge(Vertex u, Vertex v) const;

  VertexId id(Vertex v) const { return ids_.at(v); }

  /// Replaces the ID assignment; IDs must be distinct and >= 1.
  void set_ids(std::vector<VertexId> ids);

  /// Index of the vertex carrying `id`; throws if absent.
  Vertex vertex_with_id(VertexId id) const;

  /// All undirected edges, each once, with u < v.
  std::vector<std::pair<Vertex, Vertex>> edges() const;

  bool is_connected() const;

  /// Subgraph induced by `keep` (order of `keep` defines new indices).
  /// IDs are inherited from the original vertices.
  Graph induced(const std::vector<Vertex>& keep) const;

  /// BFS distances from `source`; unreachable = SIZE_MAX.
  std::vector<std::size_t> bfs_distances(Vertex source) const;

  /// Human-readable dump (small graphs, debugging and examples).
  std::string to_string() const;

 private:
  std::vector<std::vector<Vertex>> adjacency_;
  std::vector<VertexId> ids_;
  std::size_t edge_count_ = 0;
};

/// Assigns random distinct IDs from [1, n^2] (the model's polynomial range).
void assign_random_ids(Graph& g, class Rng& rng);

}  // namespace lcert
