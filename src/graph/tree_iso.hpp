// Tree canonical forms, isomorphism, and fixed-point-free automorphisms.
//
// Theorem 2.3 certifies (and lower-bounds) the property "the tree has an
// automorphism without fixed points". For trees this has a clean structural
// characterization used by both the upper-bound scheme and the lower-bound
// gadget: every tree automorphism stabilizes the center, so a fixed-point-free
// automorphism exists iff the center is an *edge* whose two halves are
// isomorphic rooted trees. Canonical forms are AHU encodings.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"

namespace lcert {

/// Hash-cons table mapping integer tuples to dense ids (0, 1, 2, ... in order
/// of first appearance). The batch prover's memo keys are built from it two
/// ways: interning the *sorted* tuple of child codes yields the canonical
/// code of a rooted subtree (two subtrees share a code iff they are
/// isomorphic — the integer form of the AHU encoding), while interning an
/// *ordered* tuple distinguishes child arrangements, which matters when the
/// cached value (a flow assignment) depends on child order. Ids are
/// deterministic given the sequence of intern() calls; not thread-safe —
/// interning is a serial per-level step in the prover.
class SubtreeCodeInterner {
 public:
  /// Dense id for `tuple`; equal tuples always get equal ids.
  std::size_t intern(const std::vector<std::size_t>& tuple);

  /// Number of distinct tuples seen (== the next fresh id).
  std::size_t size() const noexcept { return table_.size(); }

 private:
  struct TupleHash {
    std::size_t operator()(const std::vector<std::size_t>& v) const noexcept;
  };
  std::unordered_map<std::vector<std::size_t>, std::size_t, TupleHash> table_;
};

/// Canonical code of the subtree rooted at every vertex: codes[v] ==
/// codes[w] iff the rooted subtrees at v and w are isomorphic. Codes come
/// from `interner`, so passing the same interner across several trees makes
/// codes comparable (and memo entries reusable) across them. Runs one
/// children-before-parents sweep; O(n log n) overall from sorting child
/// tuples.
std::vector<std::size_t> canonical_subtree_codes(const RootedTree& t,
                                                 SubtreeCodeInterner& interner);

/// AHU canonical encoding of the subtree rooted at `v` ("(" + sorted child
/// encodings + ")"). Two rooted trees are isomorphic iff their root encodings
/// are equal.
std::string ahu_encoding(const RootedTree& t, std::size_t v);

/// Canonical encoding of the whole rooted tree.
inline std::string ahu_encoding(const RootedTree& t) { return ahu_encoding(t, t.root()); }

/// Rebuilds a rooted tree from an AHU encoding (inverse of ahu_encoding up to
/// isomorphism). Throws on malformed input.
RootedTree tree_from_ahu(const std::string& encoding);

bool rooted_trees_isomorphic(const RootedTree& a, const RootedTree& b);

/// Center of an unrooted tree: one vertex, or two adjacent vertices.
std::vector<Vertex> tree_centers(const Graph& tree);

/// Canonical encoding of an unrooted tree (root at center; for an edge center,
/// the lexicographically smaller combination).
std::string canonical_tree_encoding(const Graph& tree);

bool unrooted_trees_isomorphic(const Graph& a, const Graph& b);

/// True iff the tree admits an automorphism with no fixed point.
bool has_fixed_point_free_automorphism(const Graph& tree);

/// Explicit witness: an automorphism (as a vertex permutation) with no fixed
/// point, when one exists. Used by the upper-bound certification scheme.
/// Returns an empty vector when none exists.
std::vector<Vertex> fixed_point_free_automorphism(const Graph& tree);

}  // namespace lcert
