// Tree canonical forms, isomorphism, and fixed-point-free automorphisms.
//
// Theorem 2.3 certifies (and lower-bounds) the property "the tree has an
// automorphism without fixed points". For trees this has a clean structural
// characterization used by both the upper-bound scheme and the lower-bound
// gadget: every tree automorphism stabilizes the center, so a fixed-point-free
// automorphism exists iff the center is an *edge* whose two halves are
// isomorphic rooted trees. Canonical forms are AHU encodings.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"

namespace lcert {

/// AHU canonical encoding of the subtree rooted at `v` ("(" + sorted child
/// encodings + ")"). Two rooted trees are isomorphic iff their root encodings
/// are equal.
std::string ahu_encoding(const RootedTree& t, std::size_t v);

/// Canonical encoding of the whole rooted tree.
inline std::string ahu_encoding(const RootedTree& t) { return ahu_encoding(t, t.root()); }

/// Rebuilds a rooted tree from an AHU encoding (inverse of ahu_encoding up to
/// isomorphism). Throws on malformed input.
RootedTree tree_from_ahu(const std::string& encoding);

bool rooted_trees_isomorphic(const RootedTree& a, const RootedTree& b);

/// Center of an unrooted tree: one vertex, or two adjacent vertices.
std::vector<Vertex> tree_centers(const Graph& tree);

/// Canonical encoding of an unrooted tree (root at center; for an edge center,
/// the lexicographically smaller combination).
std::string canonical_tree_encoding(const Graph& tree);

bool unrooted_trees_isomorphic(const Graph& a, const Graph& b);

/// True iff the tree admits an automorphism with no fixed point.
bool has_fixed_point_free_automorphism(const Graph& tree);

/// Explicit witness: an automorphism (as a vertex permutation) with no fixed
/// point, when one exists. Used by the upper-bound certification scheme.
/// Returns an empty vector when none exists.
std::vector<Vertex> fixed_point_free_automorphism(const Graph& tree);

}  // namespace lcert
