#include "src/graph/connectivity.hpp"

#include <algorithm>
#include <stack>
#include <stdexcept>

namespace lcert {

std::vector<std::size_t> connected_components(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::size_t> comp(n, SIZE_MAX);
  std::size_t next = 0;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[s] != SIZE_MAX) continue;
    comp[s] = next;
    std::vector<Vertex> stack{s};
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (Vertex w : g.neighbors(v))
        if (comp[w] == SIZE_MAX) {
          comp[w] = next;
          stack.push_back(w);
        }
    }
    ++next;
  }
  return comp;
}

namespace {

// Iterative Tarjan lowpoint computation shared by cut_vertices and blocks.
struct LowpointState {
  std::vector<std::size_t> disc, low, parent;
  std::vector<bool> is_cut;
  std::vector<std::vector<Vertex>> blocks;

  explicit LowpointState(std::size_t n)
      : disc(n, SIZE_MAX), low(n, SIZE_MAX), parent(n, SIZE_MAX), is_cut(n, false) {}
};

void run_tarjan(const Graph& g, LowpointState& st, bool collect_blocks) {
  const std::size_t n = g.vertex_count();
  std::size_t timer = 0;
  std::vector<std::pair<Vertex, Vertex>> edge_stack;

  for (Vertex start = 0; start < n; ++start) {
    if (st.disc[start] != SIZE_MAX) continue;
    // Explicit DFS stack of (vertex, next-neighbor-offset).
    std::vector<std::pair<Vertex, std::size_t>> dfs;
    dfs.emplace_back(start, 0);
    st.disc[start] = st.low[start] = timer++;
    std::size_t root_children = 0;

    while (!dfs.empty()) {
      auto& [v, offset] = dfs.back();
      const auto nbrs = g.neighbors(v);
      if (offset < nbrs.size()) {
        const Vertex w = nbrs[offset++];
        if (st.disc[w] == SIZE_MAX) {
          st.parent[w] = v;
          if (v == start) ++root_children;
          if (collect_blocks) edge_stack.emplace_back(v, w);
          st.disc[w] = st.low[w] = timer++;
          dfs.emplace_back(w, 0);
        } else if (w != st.parent[v] && st.disc[w] < st.disc[v]) {
          if (collect_blocks) edge_stack.emplace_back(v, w);
          st.low[v] = std::min(st.low[v], st.disc[w]);
        }
      } else {
        dfs.pop_back();
        if (!dfs.empty()) {
          const Vertex p = dfs.back().first;
          st.low[p] = std::min(st.low[p], st.low[v]);
          if (st.low[v] >= st.disc[p]) {
            // p separates v's subtree; the root case is handled after the loop.
            if (p != start) st.is_cut[p] = true;
            if (collect_blocks) {
              // Pop the block's edges.
              std::vector<Vertex> members;
              auto add = [&members](Vertex x) {
                if (std::find(members.begin(), members.end(), x) == members.end())
                  members.push_back(x);
              };
              while (!edge_stack.empty()) {
                auto [a, b] = edge_stack.back();
                edge_stack.pop_back();
                add(a);
                add(b);
                if (a == p && b == v) break;
              }
              st.blocks.push_back(std::move(members));
            }
          }
        }
      }
    }
    if (root_children >= 2) st.is_cut[start] = true;
  }
}

}  // namespace

std::vector<bool> cut_vertices(const Graph& g) {
  if (!g.is_connected()) throw std::invalid_argument("cut_vertices: graph must be connected");
  LowpointState st(g.vertex_count());
  run_tarjan(g, st, /*collect_blocks=*/false);
  return st.is_cut;
}

BlockCutDecomposition block_cut_decomposition(const Graph& g) {
  if (!g.is_connected())
    throw std::invalid_argument("block_cut_decomposition: graph must be connected");
  LowpointState st(g.vertex_count());
  run_tarjan(g, st, /*collect_blocks=*/true);

  BlockCutDecomposition out;
  out.blocks = std::move(st.blocks);
  out.is_cut_vertex = std::move(st.is_cut);
  if (g.vertex_count() == 1 && out.blocks.empty()) out.blocks.push_back({0});
  out.blocks_of.assign(g.vertex_count(), {});
  for (std::size_t b = 0; b < out.blocks.size(); ++b)
    for (Vertex v : out.blocks[b]) out.blocks_of[v].push_back(b);
  return out;
}

}  // namespace lcert
