#include "src/graph/minors.hpp"

#include "src/graph/connectivity.hpp"

#include <algorithm>
#include <vector>

namespace lcert {

namespace {

// Depth-first extension of a simple path from `v`.
struct PathSearch {
  const Graph& g;
  std::vector<bool> on_path;
  std::size_t best = 0;
  std::size_t stop_at;  // 0 = exhaustive

  PathSearch(const Graph& graph, std::size_t stop)
      : g(graph), on_path(graph.vertex_count(), false), stop_at(stop) {}

  bool done() const { return stop_at != 0 && best >= stop_at; }

  void extend(Vertex v, std::size_t length) {
    on_path[v] = true;
    best = std::max(best, length);
    if (!done()) {
      for (Vertex w : g.neighbors(v)) {
        if (on_path[w]) continue;
        extend(w, length + 1);
        if (done()) break;
      }
    }
    on_path[v] = false;
  }
};

bool is_tree(const Graph& g) {
  return g.edge_count() == g.vertex_count() - 1 && g.is_connected();
}

std::size_t tree_diameter_order(const Graph& g) {
  // Double BFS: farthest vertex from an arbitrary start, then farthest from it.
  const auto d0 = g.bfs_distances(0);
  Vertex far = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (d0[v] != SIZE_MAX && d0[v] > d0[far]) far = v;
  const auto d1 = g.bfs_distances(far);
  std::size_t diameter = 0;
  for (std::size_t d : d1)
    if (d != SIZE_MAX) diameter = std::max(diameter, d);
  return diameter + 1;  // vertices on the path
}

}  // namespace

std::size_t longest_path_order(const Graph& g, std::size_t stop_at) {
  if (g.vertex_count() == 0) return 0;
  if (is_tree(g)) return tree_diameter_order(g);
  PathSearch search(g, stop_at);
  for (Vertex v = 0; v < g.vertex_count() && !search.done(); ++v)
    search.extend(v, 1);
  return search.best;
}

bool has_path_minor(const Graph& g, std::size_t t) {
  if (t == 0) return true;
  return longest_path_order(g, t) >= t;
}

namespace {

struct CycleSearch {
  const Graph& g;
  std::vector<bool> on_path;
  Vertex start = 0;
  std::size_t best = 0;
  std::size_t stop_at;

  CycleSearch(const Graph& graph, std::size_t stop)
      : g(graph), on_path(graph.vertex_count(), false), stop_at(stop) {}

  bool done() const { return stop_at != 0 && best >= stop_at; }

  void extend(Vertex v, std::size_t length) {
    on_path[v] = true;
    for (Vertex w : g.neighbors(v)) {
      if (done()) break;
      if (w == start && length >= 3) best = std::max(best, length);
      // Only extend to vertices larger than start: each cycle is found from
      // its minimum vertex, cutting the search space.
      if (!on_path[w] && w > start) extend(w, length + 1);
    }
    on_path[v] = false;
  }
};

}  // namespace

namespace {

std::size_t longest_cycle_in(const Graph& g, std::size_t stop_at) {
  CycleSearch search(g, stop_at);
  for (Vertex v = 0; v < g.vertex_count() && !search.done(); ++v) {
    search.start = v;
    search.extend(v, 1);
  }
  return search.best;
}

}  // namespace

std::size_t longest_cycle_order(const Graph& g, std::size_t stop_at) {
  // Every cycle lies inside one 2-connected block; searching per block keeps
  // block-chain graphs (cacti and friends) from blowing up the backtracking.
  const std::size_t n = g.vertex_count();
  if (n < 3) return 0;
  if (!g.is_connected()) {
    // Components one by one (kernels and gadgets are connected, but stay safe).
    const auto comp = connected_components(g);
    std::size_t comp_count = 0;
    for (std::size_t c : comp) comp_count = std::max(comp_count, c + 1);
    std::size_t best = 0;
    for (std::size_t c = 0; c < comp_count; ++c) {
      std::vector<Vertex> members;
      for (Vertex v = 0; v < n; ++v)
        if (comp[v] == c) members.push_back(v);
      if (members.size() < 3) continue;
      best = std::max(best, longest_cycle_order(g.induced(members), stop_at));
      if (stop_at != 0 && best >= stop_at) return best;
    }
    return best;
  }
  const auto bc = block_cut_decomposition(g);
  std::size_t best = 0;
  for (const auto& block : bc.blocks) {
    if (block.size() < 3) continue;
    best = std::max(best, longest_cycle_in(g.induced(block), stop_at));
    if (stop_at != 0 && best >= stop_at) return best;
  }
  return best;
}

bool has_cycle_minor(const Graph& g, std::size_t t) {
  if (t < 3) return longest_cycle_order(g, 3) >= 3;
  return longest_cycle_order(g, t) >= t;
}

}  // namespace lcert
