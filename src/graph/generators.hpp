// Graph and tree families used throughout the tests, examples and benches.
//
// Everything is deterministic given the Rng, and every generator documents
// which paper construction or experiment it feeds.
#pragma once

#include <cstddef>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/util/rng.hpp"

namespace lcert {

/// Path on n vertices (treedepth = floor(log2 n) + 1, Figure 1's example).
Graph make_path(std::size_t n);

/// Cycle on n >= 3 vertices.
Graph make_cycle(std::size_t n);

/// Star with one center and n-1 leaves.
Graph make_star(std::size_t n);

/// Complete graph K_n.
Graph make_complete(std::size_t n);

/// Complete bipartite K_{a,b}.
Graph make_complete_bipartite(std::size_t a, std::size_t b);

/// Caterpillar: a spine path of `spine` vertices with `legs` leaves per spine vertex.
Graph make_caterpillar(std::size_t spine, std::size_t legs);

/// Spider: a center with `legs` paths of `leg_length` vertices each.
Graph make_spider(std::size_t legs, std::size_t leg_length);

/// Complete binary tree with `levels` levels (2^levels - 1 vertices).
Graph make_complete_binary_tree(std::size_t levels);

/// Uniform random labeled tree on n vertices via a Prüfer sequence.
Graph make_random_tree(std::size_t n, Rng& rng);

/// Random rooted tree with exactly n vertices and height <= max_depth, built
/// by attaching each new vertex to a uniformly random vertex of depth < max_depth.
RootedTree make_random_rooted_tree(std::size_t n, std::size_t max_depth, Rng& rng);

/// Random connected graph: G(n, p) conditioned on connectivity by adding a
/// random spanning tree first.
Graph make_random_connected(std::size_t n, double p, Rng& rng);

/// Random graph of treedepth <= depth_budget: draws a random rooted tree of
/// height <= depth_budget - 1, includes every parent edge (guaranteeing a
/// connected, coherent witness), and adds each other ancestor-descendant edge
/// with probability `extra_edge_p`. Returns both the graph and the witness
/// elimination tree.
struct BoundedTreedepthInstance {
  Graph graph;
  RootedTree elimination_tree;  ///< Valid coherent model of `graph`.
};
BoundedTreedepthInstance make_bounded_treedepth_graph(std::size_t n,
                                                      std::size_t depth_budget,
                                                      double extra_edge_p,
                                                      Rng& rng);

/// Disjoint union with connecting edges removed is not allowed (graphs are
/// connected); this instead glues `parts` at a fresh apex vertex adjacent to
/// one vertex of each part. Used to assemble lower-bound gadgets.
Graph glue_at_apex(const std::vector<Graph>& parts);

}  // namespace lcert
