// P_t / C_t minor tests.
//
// Corollary 2.7 certifies P_t-minor-free and C_t-minor-free graphs. For paths
// and cycles, minor containment collapses to subgraph containment: G has a
// P_t minor iff G contains a path on t vertices, and a C_t minor iff G has a
// cycle of length >= t. Both tests are exact backtracking searches with early
// exit; trees get a linear-time diameter shortcut. These are ground-truth
// oracles for the schemes, used on moderate instance sizes.
#pragma once

#include <cstddef>

#include "src/graph/graph.hpp"

namespace lcert {

/// Number of vertices on a longest simple path (exact; exponential worst case,
/// linear on trees). `stop_at`: return early once a path with that many
/// vertices is found (0 = no early exit).
std::size_t longest_path_order(const Graph& g, std::size_t stop_at = 0);

/// True iff G contains P_t (path on t vertices) as a minor == subgraph.
bool has_path_minor(const Graph& g, std::size_t t);

/// Length (vertex count) of a longest cycle; 0 if acyclic. `stop_at` as above.
std::size_t longest_cycle_order(const Graph& g, std::size_t stop_at = 0);

/// True iff G contains C_t as a minor, i.e. has a cycle of length >= t.
bool has_cycle_minor(const Graph& g, std::size_t t);

}  // namespace lcert
