#include "src/graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lcert {

Graph parse_edge_list(std::istream& in) {
  std::size_t n = 0;
  bool have_n = false;
  std::vector<std::pair<Vertex, Vertex>> edges;
  std::vector<std::pair<Vertex, VertexId>> ids;

  std::string line;
  std::size_t line_number = 0;
  auto fail = [&line_number](const std::string& message) -> void {
    throw std::invalid_argument("parse_edge_list: " + message + " at line " +
                                std::to_string(line_number));
  };
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op) || op[0] == '#') continue;
    if (op == "n") {
      if (have_n) fail("duplicate 'n' line");
      if (!(ls >> n) || n == 0) fail("bad vertex count");
      have_n = true;
    } else if (op == "e") {
      std::size_t u = 0, v = 0;
      if (!(ls >> u >> v)) fail("bad edge line");
      edges.emplace_back(u, v);
    } else if (op == "id") {
      std::size_t v = 0;
      VertexId id = 0;
      if (!(ls >> v >> id)) fail("bad id line");
      ids.emplace_back(v, id);
    } else {
      fail("unknown directive '" + op + "'");
    }
  }
  if (!have_n) {
    line_number = 0;
    fail("missing 'n' line");
  }
  Graph g(n, edges);
  if (!ids.empty()) {
    std::vector<VertexId> table(n);
    for (Vertex v = 0; v < n; ++v) table[v] = v + 1;
    for (auto [v, id] : ids) {
      if (v >= n) throw std::invalid_argument("parse_edge_list: id line out of range");
      table[v] = id;
    }
    g.set_ids(std::move(table));
  }
  return g;
}

Graph parse_edge_list(const std::string& text) {
  std::istringstream in(text);
  return parse_edge_list(in);
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << "n " << g.vertex_count() << "\n";
  bool default_ids = true;
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (g.id(v) != v + 1) default_ids = false;
  if (!default_ids)
    for (Vertex v = 0; v < g.vertex_count(); ++v) os << "id " << v << ' ' << g.id(v) << "\n";
  for (auto [u, v] : g.edges()) os << "e " << u << ' ' << v << "\n";
  return os.str();
}

void save_graph(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_graph: cannot open " + path);
  out << to_edge_list(g);
  if (!out.flush()) throw std::runtime_error("save_graph: write failed for " + path);
}

Graph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_graph: cannot open " + path);
  return parse_edge_list(in);
}

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "graph lcert {\n";
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    os << "  v" << v << " [label=\"" << g.id(v) << "\"];\n";
  for (auto [u, v] : g.edges()) os << "  v" << u << " -- v" << v << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace lcert
