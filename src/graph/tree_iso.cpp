#include "src/graph/tree_iso.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>

namespace lcert {

std::size_t SubtreeCodeInterner::TupleHash::operator()(
    const std::vector<std::size_t>& v) const noexcept {
  // splitmix64-style mixing per element; good enough for dense small ids.
  std::uint64_t h = 0x9E3779B97F4A7C15ull * (v.size() + 1);
  for (std::size_t x : v) {
    std::uint64_t z = h + 0x9E3779B97F4A7C15ull + x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    h = z ^ (z >> 31);
  }
  return static_cast<std::size_t>(h);
}

std::size_t SubtreeCodeInterner::intern(const std::vector<std::size_t>& tuple) {
  const auto [it, inserted] = table_.try_emplace(tuple, table_.size());
  return it->second;
}

std::vector<std::size_t> canonical_subtree_codes(const RootedTree& t,
                                                 SubtreeCodeInterner& interner) {
  const std::vector<std::size_t> order = t.preorder();
  std::vector<std::size_t> codes(t.size());
  std::vector<std::size_t> scratch;
  // Reverse preorder puts every child before its parent.
  for (std::size_t i = order.size(); i-- > 0;) {
    const std::size_t v = order[i];
    scratch.clear();
    for (std::size_t c : t.children(v)) scratch.push_back(codes[c]);
    std::sort(scratch.begin(), scratch.end());
    codes[v] = interner.intern(scratch);
  }
  return codes;
}

std::string ahu_encoding(const RootedTree& t, std::size_t v) {
  std::vector<std::string> parts;
  parts.reserve(t.children(v).size());
  for (std::size_t c : t.children(v)) parts.push_back(ahu_encoding(t, c));
  std::sort(parts.begin(), parts.end());
  std::string out = "(";
  for (const std::string& p : parts) out += p;
  out += ")";
  return out;
}

namespace {

// Parses one "(...)" group starting at `pos`; creates vertices in `parent`.
std::size_t parse_ahu(const std::string& s, std::size_t& pos,
                      std::vector<std::size_t>& parent, std::size_t my_parent) {
  if (pos >= s.size() || s[pos] != '(')
    throw std::invalid_argument("tree_from_ahu: expected '('");
  ++pos;
  const std::size_t me = parent.size();
  parent.push_back(my_parent);
  while (pos < s.size() && s[pos] == '(') parse_ahu(s, pos, parent, me);
  if (pos >= s.size() || s[pos] != ')')
    throw std::invalid_argument("tree_from_ahu: expected ')'");
  ++pos;
  return me;
}

}  // namespace

RootedTree tree_from_ahu(const std::string& encoding) {
  std::vector<std::size_t> parent;
  std::size_t pos = 0;
  parse_ahu(encoding, pos, parent, RootedTree::kNoParent);
  if (pos != encoding.size())
    throw std::invalid_argument("tree_from_ahu: trailing characters");
  return RootedTree(std::move(parent));
}

bool rooted_trees_isomorphic(const RootedTree& a, const RootedTree& b) {
  return a.size() == b.size() && ahu_encoding(a) == ahu_encoding(b);
}

std::vector<Vertex> tree_centers(const Graph& tree) {
  const std::size_t n = tree.vertex_count();
  if (tree.edge_count() != n - 1 || !tree.is_connected())
    throw std::invalid_argument("tree_centers: not a tree");
  if (n == 1) return {0};
  // Iteratively strip leaves.
  std::vector<std::size_t> degree(n);
  std::vector<Vertex> layer;
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = tree.degree(v);
    if (degree[v] == 1) layer.push_back(v);
  }
  std::size_t remaining = n;
  std::vector<bool> removed(n, false);
  while (remaining > 2) {
    std::vector<Vertex> next;
    for (Vertex v : layer) {
      removed[v] = true;
      --remaining;
      for (Vertex w : tree.neighbors(v)) {
        if (removed[w]) continue;
        if (--degree[w] == 1) next.push_back(w);
      }
    }
    layer = std::move(next);
  }
  std::vector<Vertex> centers;
  for (Vertex v = 0; v < n; ++v)
    if (!removed[v]) centers.push_back(v);
  return centers;
}

namespace {

// BFS restricted to one side of the removed center edge, returning a rooted
// tree over original vertex labels via explicit maps.
struct Half {
  std::vector<Vertex> order;                 // new index -> original vertex
  std::vector<std::size_t> parent;           // in new indices
  RootedTree tree() const { return RootedTree(parent); }
};

Half extract_half(const Graph& tree, Vertex keep, Vertex drop) {
  Half h;
  std::vector<bool> seen(tree.vertex_count(), false);
  std::vector<std::size_t> parent_orig(tree.vertex_count(), RootedTree::kNoParent);
  seen[keep] = true;
  seen[drop] = true;
  h.order.push_back(keep);
  for (std::size_t i = 0; i < h.order.size(); ++i) {
    const Vertex v = h.order[i];
    for (Vertex w : tree.neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        parent_orig[w] = v;
        h.order.push_back(w);
      }
    }
  }
  std::vector<std::size_t> new_index(tree.vertex_count(), SIZE_MAX);
  for (std::size_t i = 0; i < h.order.size(); ++i) new_index[h.order[i]] = i;
  h.parent.assign(h.order.size(), RootedTree::kNoParent);
  for (std::size_t i = 1; i < h.order.size(); ++i)
    h.parent[i] = new_index[parent_orig[h.order[i]]];
  return h;
}

// Recursively builds an isomorphism between two isomorphic rooted trees by
// pairing children with equal AHU encodings. `map_out[a_vertex] = b_vertex`
// in the halves' local indices.
void match_subtrees(const RootedTree& ta, std::size_t va, const RootedTree& tb,
                    std::size_t vb, std::vector<std::size_t>& map_out) {
  map_out[va] = vb;
  std::multimap<std::string, std::size_t> b_children;
  for (std::size_t c : tb.children(vb)) b_children.emplace(ahu_encoding(tb, c), c);
  for (std::size_t c : ta.children(va)) {
    auto it = b_children.find(ahu_encoding(ta, c));
    if (it == b_children.end())
      throw std::logic_error("match_subtrees: trees are not isomorphic");
    const std::size_t cb = it->second;
    b_children.erase(it);
    match_subtrees(ta, c, tb, cb, map_out);
  }
}

}  // namespace

std::string canonical_tree_encoding(const Graph& tree) {
  const auto centers = tree_centers(tree);
  if (centers.size() == 1)
    return "V" + ahu_encoding(RootedTree::from_graph(tree, centers[0]));
  // Edge center: the sorted pair of half encodings is a canonical form, and
  // the halves are exactly what the automorphism test needs.
  std::string ea = ahu_encoding(extract_half(tree, centers[0], centers[1]).tree());
  std::string eb = ahu_encoding(extract_half(tree, centers[1], centers[0]).tree());
  if (eb < ea) std::swap(ea, eb);
  return "E" + ea + "|" + eb;
}

bool unrooted_trees_isomorphic(const Graph& a, const Graph& b) {
  return a.vertex_count() == b.vertex_count() &&
         canonical_tree_encoding(a) == canonical_tree_encoding(b);
}

bool has_fixed_point_free_automorphism(const Graph& tree) {
  const auto centers = tree_centers(tree);
  if (centers.size() != 2) return false;
  const Half a = extract_half(tree, centers[0], centers[1]);
  const Half b = extract_half(tree, centers[1], centers[0]);
  return ahu_encoding(a.tree()) == ahu_encoding(b.tree());
}

std::vector<Vertex> fixed_point_free_automorphism(const Graph& tree) {
  const auto centers = tree_centers(tree);
  if (centers.size() != 2) return {};
  const Half a = extract_half(tree, centers[0], centers[1]);
  const Half b = extract_half(tree, centers[1], centers[0]);
  const RootedTree ta = a.tree();
  const RootedTree tb = b.tree();
  if (ahu_encoding(ta) != ahu_encoding(tb)) return {};
  std::vector<std::size_t> local_map(ta.size(), SIZE_MAX);
  match_subtrees(ta, ta.root(), tb, tb.root(), local_map);
  std::vector<Vertex> sigma(tree.vertex_count(), SIZE_MAX);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    const Vertex va = a.order[i];
    const Vertex vb = b.order[local_map[i]];
    sigma[va] = vb;
    sigma[vb] = va;
  }
  return sigma;
}

}  // namespace lcert
