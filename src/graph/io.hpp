// Graph serialization: a small text format for instances and DOT export for
// inspection. Used by the CLI example and handy for bug reports.
//
// Text format ("lcert edge list"):
//   n <vertex_count>
//   [id <v> <identifier>]*     optional explicit IDs (default 1..n)
//   e <u> <v>                  one line per edge, 0-based endpoints
//   # comment lines and blank lines are ignored
#pragma once

#include <iosfwd>
#include <string>

#include "src/graph/graph.hpp"

namespace lcert {

/// Parses the edge-list format; throws std::invalid_argument with a line
/// number on malformed input.
Graph parse_edge_list(std::istream& in);
Graph parse_edge_list(const std::string& text);

/// Writes the same format (IDs included when not the default 1..n).
std::string to_edge_list(const Graph& g);

/// Graphviz DOT (undirected), with vertex IDs as labels.
std::string to_dot(const Graph& g);

/// File round-trip for `.lcg` repro files (the edge-list format above). The
/// fuzz campaign writes shrunk counterexamples with save_graph; load_graph
/// feeds them back into tests. Throws std::runtime_error on I/O failure and
/// std::invalid_argument on malformed content.
void save_graph(const Graph& g, const std::string& path);
Graph load_graph(const std::string& path);

}  // namespace lcert
