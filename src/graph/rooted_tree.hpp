// Rooted trees as a first-class structure.
//
// Several subsystems (tree automata runs, the kernelization's elimination
// trees, the lower bound's depth-k tree unranking) manipulate rooted trees
// directly; converting through Graph every time would lose the root and the
// parent orientation. A RootedTree stores a parent array with children lists
// derived on construction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"

namespace lcert {

/// Rooted tree on vertices 0..n-1. parent[root] == NO_PARENT.
class RootedTree {
 public:
  static constexpr std::size_t kNoParent = SIZE_MAX;

  RootedTree() = default;

  /// Builds from a parent array; validates that it encodes a single tree.
  explicit RootedTree(std::vector<std::size_t> parent);

  std::size_t size() const noexcept { return parent_.size(); }
  std::size_t root() const noexcept { return root_; }
  std::size_t parent(std::size_t v) const { return parent_.at(v); }
  std::span<const std::size_t> children(std::size_t v) const { return children_.at(v); }
  bool is_leaf(std::size_t v) const { return children_.at(v).empty(); }

  /// Depth of v (root has depth 0).
  std::size_t depth(std::size_t v) const { return depth_.at(v); }

  /// Height of the tree = max depth. A single vertex has height 0.
  std::size_t height() const;

  /// True iff `a` is an ancestor of `d` (a vertex is its own ancestor).
  bool is_ancestor(std::size_t a, std::size_t d) const;

  /// Ancestors of v from v itself up to the root (inclusive).
  std::vector<std::size_t> ancestors(std::size_t v) const;

  /// Vertices of the subtree rooted at v (preorder).
  std::vector<std::size_t> subtree(std::size_t v) const;

  /// Vertices in an order where every parent precedes its children.
  std::vector<std::size_t> preorder() const { return subtree(root_); }

  /// Vertices grouped by depth: levels()[d] holds every vertex at depth d, in
  /// ascending vertex order. The batch prover sweeps these deepest-first
  /// (children are complete before their parent is touched) and fans each
  /// level out across workers — the level boundary is the synchronization
  /// barrier.
  std::vector<std::vector<std::size_t>> levels() const;

  /// The underlying undirected tree as a Graph (IDs default 1..n).
  Graph to_graph() const;

  /// Roots an undirected tree (must be connected and acyclic) at `root`.
  static RootedTree from_graph(const Graph& g, Vertex root);

  // --- Incremental patch API (DESIGN.md §13) -------------------------------
  //
  // Each operation edits the tree in place and leaves it in exactly the state
  // a fresh construction over the mutated graph would produce: parent array,
  // depths, and children lists (ascending vertex order — the invariant the
  // batch prover's deterministic extraction relies on) all match
  // from_graph(mutated, mapped root) bit for bit. Pinned by
  // tests/test_incremental.cpp over randomized edit sequences.

  /// Appends vertex size() as a new leaf under `parent`; returns its index.
  /// O(1): the new index exceeds every existing one, so the children list
  /// stays sorted by construction.
  std::size_t graft_leaf(std::size_t parent);

  /// Removes the childless non-root vertex `leaf`. Surviving indices are
  /// renumbered exactly like Graph::induced's compaction: v maps to v-1 for
  /// every v > leaf. O(n) for the renumber; children stay sorted because the
  /// shift is order-preserving.
  void prune_leaf(std::size_t leaf);

  /// Detaches the subtree rooted at `c` (must not be the root), re-roots the
  /// detached piece at `a` (must lie inside it — parent pointers along the
  /// a-to-c path reverse), and hangs `a` under `p` (must lie outside the
  /// detached piece). This is the tree-side image of the subtree-swap edit:
  /// delete edge {c, parent(c)}, insert edge {a, p}. Depths of the moved
  /// subtree are recomputed. Returns the a-to-c path (a first) — exactly the
  /// vertices whose children sets changed inside the moved piece, which is
  /// what the incremental prover seeds its dirty set with.
  /// O(|moved subtree| + sum of path degrees).
  std::vector<std::size_t> reattach(std::size_t c, std::size_t a, std::size_t p);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::size_t> depth_;
  std::size_t root_ = 0;
};

}  // namespace lcert
