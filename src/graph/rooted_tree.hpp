// Rooted trees as a first-class structure.
//
// Several subsystems (tree automata runs, the kernelization's elimination
// trees, the lower bound's depth-k tree unranking) manipulate rooted trees
// directly; converting through Graph every time would lose the root and the
// parent orientation. A RootedTree stores a parent array with children lists
// derived on construction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"

namespace lcert {

/// Rooted tree on vertices 0..n-1. parent[root] == NO_PARENT.
class RootedTree {
 public:
  static constexpr std::size_t kNoParent = SIZE_MAX;

  RootedTree() = default;

  /// Builds from a parent array; validates that it encodes a single tree.
  explicit RootedTree(std::vector<std::size_t> parent);

  std::size_t size() const noexcept { return parent_.size(); }
  std::size_t root() const noexcept { return root_; }
  std::size_t parent(std::size_t v) const { return parent_.at(v); }
  std::span<const std::size_t> children(std::size_t v) const { return children_.at(v); }
  bool is_leaf(std::size_t v) const { return children_.at(v).empty(); }

  /// Depth of v (root has depth 0).
  std::size_t depth(std::size_t v) const { return depth_.at(v); }

  /// Height of the tree = max depth. A single vertex has height 0.
  std::size_t height() const;

  /// True iff `a` is an ancestor of `d` (a vertex is its own ancestor).
  bool is_ancestor(std::size_t a, std::size_t d) const;

  /// Ancestors of v from v itself up to the root (inclusive).
  std::vector<std::size_t> ancestors(std::size_t v) const;

  /// Vertices of the subtree rooted at v (preorder).
  std::vector<std::size_t> subtree(std::size_t v) const;

  /// Vertices in an order where every parent precedes its children.
  std::vector<std::size_t> preorder() const { return subtree(root_); }

  /// Vertices grouped by depth: levels()[d] holds every vertex at depth d, in
  /// ascending vertex order. The batch prover sweeps these deepest-first
  /// (children are complete before their parent is touched) and fans each
  /// level out across workers — the level boundary is the synchronization
  /// barrier.
  std::vector<std::vector<std::size_t>> levels() const;

  /// The underlying undirected tree as a Graph (IDs default 1..n).
  Graph to_graph() const;

  /// Roots an undirected tree (must be connected and acyclic) at `root`.
  static RootedTree from_graph(const Graph& g, Vertex root);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::size_t> depth_;
  std::size_t root_ = 0;
};

}  // namespace lcert
