#include "src/graph/edit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace lcert {

namespace {

std::vector<VertexId> ids_of(const Graph& g) {
  std::vector<VertexId> ids(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) ids[v] = g.id(v);
  return ids;
}

Graph rebuild(std::size_t n, std::vector<std::pair<Vertex, Vertex>> edges,
              std::vector<VertexId> ids) {
  Graph out(n, edges);
  out.set_ids(std::move(ids));
  return out;
}

[[noreturn]] void bad(const GraphEdit& edit, const std::string& why) {
  throw std::invalid_argument("apply_edit: " + to_string(edit) + ": " + why);
}

}  // namespace

std::string edit_name(EditKind kind) {
  switch (kind) {
    case EditKind::kEdgeAdd: return "edge-add";
    case EditKind::kEdgeDelete: return "edge-delete";
    case EditKind::kLeafGraft: return "leaf-graft";
    case EditKind::kLeafPrune: return "leaf-prune";
    case EditKind::kSubtreeSwap: return "subtree-swap";
    case EditKind::kIdPermute: return "id-permute";
  }
  throw std::invalid_argument("edit_name: unknown kind");
}

std::string to_string(const GraphEdit& edit) {
  std::ostringstream os;
  os << edit_name(edit.kind);
  switch (edit.kind) {
    case EditKind::kEdgeAdd:
    case EditKind::kEdgeDelete: os << " {" << edit.a << "," << edit.b << "}"; break;
    case EditKind::kLeafGraft: os << " anchor=" << edit.a << " id=" << edit.fresh_id; break;
    case EditKind::kLeafPrune: os << " v=" << edit.a; break;
    case EditKind::kSubtreeSwap:
      os << " moved=" << edit.a << " old-parent=" << edit.c << " new-parent=" << edit.b;
      break;
    case EditKind::kIdPermute: os << " (" << edit.ids.size() << " ids)"; break;
  }
  return os.str();
}

Graph apply_edit(const Graph& g, const GraphEdit& edit) {
  const std::size_t n = g.vertex_count();
  switch (edit.kind) {
    case EditKind::kEdgeAdd: {
      if (edit.a >= n || edit.b >= n) bad(edit, "endpoint out of range");
      if (edit.a == edit.b) bad(edit, "loop");
      if (g.has_edge(edit.a, edit.b)) bad(edit, "edge already present");
      auto edges = g.edges();
      edges.emplace_back(std::min(edit.a, edit.b), std::max(edit.a, edit.b));
      return rebuild(n, std::move(edges), ids_of(g));
    }
    case EditKind::kEdgeDelete: {
      if (edit.a >= n || edit.b >= n) bad(edit, "endpoint out of range");
      if (!g.has_edge(edit.a, edit.b)) bad(edit, "edge not present");
      std::vector<std::pair<Vertex, Vertex>> rest;
      rest.reserve(g.edge_count() - 1);
      for (auto [u, v] : g.edges())
        if (!((u == edit.a && v == edit.b) || (u == edit.b && v == edit.a)))
          rest.emplace_back(u, v);
      return rebuild(n, std::move(rest), ids_of(g));
    }
    case EditKind::kLeafGraft: {
      if (edit.a >= n) bad(edit, "anchor out of range");
      auto edges = g.edges();
      edges.emplace_back(edit.a, n);
      auto ids = ids_of(g);
      ids.push_back(edit.fresh_id);
      return rebuild(n + 1, std::move(edges), std::move(ids));
    }
    case EditKind::kLeafPrune: {
      if (edit.a >= n) bad(edit, "vertex out of range");
      if (g.degree(edit.a) != 1) bad(edit, "not a degree-1 vertex");
      std::vector<Vertex> keep;
      keep.reserve(n - 1);
      for (Vertex v = 0; v < n; ++v)
        if (v != edit.a) keep.push_back(v);
      return g.induced(keep);  // inherits IDs
    }
    case EditKind::kSubtreeSwap: {
      if (edit.a >= n || edit.b >= n || edit.c >= n) bad(edit, "endpoint out of range");
      if (!g.has_edge(edit.a, edit.c)) bad(edit, "old-parent edge not present");
      if (edit.a == edit.b) bad(edit, "loop");
      if (g.has_edge(edit.a, edit.b)) bad(edit, "new-parent edge already present");
      std::vector<std::pair<Vertex, Vertex>> edges;
      edges.reserve(g.edge_count());
      for (auto [u, v] : g.edges())
        if (!((u == edit.a && v == edit.c) || (u == edit.c && v == edit.a)))
          edges.emplace_back(u, v);
      edges.emplace_back(std::min(edit.a, edit.b), std::max(edit.a, edit.b));
      return rebuild(n, std::move(edges), ids_of(g));
    }
    case EditKind::kIdPermute: {
      if (edit.ids.size() != n) bad(edit, "id vector size mismatch");
      Graph out = g;
      out.set_ids(edit.ids);
      return out;
    }
  }
  throw std::invalid_argument("apply_edit: unknown kind");
}

}  // namespace lcert
