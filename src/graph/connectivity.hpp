// Connectivity and 2-connectivity decomposition.
//
// Corollary 2.7's certification of C_t-minor-free graphs decomposes the graph
// into 2-connected components (blocks) and certifies P_{t^2}-minor-freeness
// inside each block; this module provides the block–cut structure.
#pragma once

#include <cstddef>
#include <vector>

#include "src/graph/graph.hpp"

namespace lcert {

/// Component index per vertex (0-based); count = 1 + max entry.
std::vector<std::size_t> connected_components(const Graph& g);

/// Cut vertices (articulation points) of a connected graph.
std::vector<bool> cut_vertices(const Graph& g);

/// Block–cut decomposition of a connected graph.
struct BlockCutDecomposition {
  /// Each block is a set of vertices inducing a maximal 2-connected subgraph
  /// (or a bridge edge / isolated vertex).
  std::vector<std::vector<Vertex>> blocks;
  /// blocks_of[v] = indices of the blocks containing v (>= 2 iff cut vertex).
  std::vector<std::vector<std::size_t>> blocks_of;
  std::vector<bool> is_cut_vertex;
};

BlockCutDecomposition block_cut_decomposition(const Graph& g);

}  // namespace lcert
