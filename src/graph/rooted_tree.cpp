#include "src/graph/rooted_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcert {

RootedTree::RootedTree(std::vector<std::size_t> parent)
    : parent_(std::move(parent)), children_(parent_.size()), depth_(parent_.size(), SIZE_MAX) {
  const std::size_t n = parent_.size();
  if (n == 0) throw std::invalid_argument("RootedTree: empty");
  std::size_t roots = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (parent_[v] == kNoParent) {
      root_ = v;
      ++roots;
    } else if (parent_[v] >= n) {
      throw std::out_of_range("RootedTree: parent out of range");
    } else {
      children_[parent_[v]].push_back(v);
    }
  }
  if (roots != 1) throw std::invalid_argument("RootedTree: must have exactly one root");
  // Compute depths iteratively (also detects cycles: unreachable vertices).
  depth_[root_] = 0;
  std::vector<std::size_t> stack{root_};
  std::size_t visited = 0;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    ++visited;
    for (std::size_t c : children_[v]) {
      depth_[c] = depth_[v] + 1;
      stack.push_back(c);
    }
  }
  if (visited != n) throw std::invalid_argument("RootedTree: parent array contains a cycle");
}

std::size_t RootedTree::height() const {
  return *std::max_element(depth_.begin(), depth_.end());
}

bool RootedTree::is_ancestor(std::size_t a, std::size_t d) const {
  std::size_t v = d;
  while (v != kNoParent) {
    if (v == a) return true;
    v = parent_.at(v);
  }
  return false;
}

std::vector<std::size_t> RootedTree::ancestors(std::size_t v) const {
  std::vector<std::size_t> out;
  std::size_t cur = v;
  while (cur != kNoParent) {
    out.push_back(cur);
    cur = parent_.at(cur);
  }
  return out;
}

std::vector<std::size_t> RootedTree::subtree(std::size_t v) const {
  std::vector<std::size_t> out;
  std::vector<std::size_t> stack{v};
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    out.push_back(u);
    for (std::size_t c : children_[u]) stack.push_back(c);
  }
  return out;
}

std::vector<std::vector<std::size_t>> RootedTree::levels() const {
  std::vector<std::vector<std::size_t>> out(height() + 1);
  // Ascending vertex order within each level, by construction.
  for (std::size_t v = 0; v < size(); ++v) out[depth_[v]].push_back(v);
  return out;
}

Graph RootedTree::to_graph() const {
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(size() - 1);
  for (std::size_t v = 0; v < size(); ++v)
    if (parent_[v] != kNoParent) edges.emplace_back(v, parent_[v]);
  return Graph(size(), edges);
}

std::size_t RootedTree::graft_leaf(std::size_t parent) {
  if (parent >= size()) throw std::out_of_range("graft_leaf: parent out of range");
  const std::size_t v = size();
  parent_.push_back(parent);
  children_.emplace_back();
  depth_.push_back(depth_[parent] + 1);
  children_[parent].push_back(v);  // v > every existing index: stays sorted
  return v;
}

void RootedTree::prune_leaf(std::size_t leaf) {
  if (leaf >= size()) throw std::out_of_range("prune_leaf: leaf out of range");
  if (!children_[leaf].empty())
    throw std::invalid_argument("prune_leaf: vertex has children");
  if (leaf == root_) throw std::invalid_argument("prune_leaf: cannot prune the root");
  auto& siblings = children_[parent_[leaf]];
  siblings.erase(std::find(siblings.begin(), siblings.end(), leaf));
  parent_.erase(parent_.begin() + static_cast<std::ptrdiff_t>(leaf));
  depth_.erase(depth_.begin() + static_cast<std::ptrdiff_t>(leaf));
  children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(leaf));
  // Renumber: every index above the hole shifts down by one. Decrementing a
  // suffix of values keeps each (sorted) children list sorted.
  for (std::size_t& p : parent_)
    if (p != kNoParent && p > leaf) --p;
  for (auto& kids : children_)
    for (std::size_t& k : kids)
      if (k > leaf) --k;
  if (root_ > leaf) --root_;
}

std::vector<std::size_t> RootedTree::reattach(std::size_t c, std::size_t a,
                                              std::size_t p) {
  if (c >= size() || a >= size() || p >= size())
    throw std::out_of_range("reattach: vertex out of range");
  if (c == root_) throw std::invalid_argument("reattach: cannot detach the root");
  if (!is_ancestor(c, a))
    throw std::invalid_argument("reattach: new subtree root outside the detached subtree");
  if (is_ancestor(c, p))
    throw std::invalid_argument("reattach: new parent inside the detached subtree");

  // The a-to-c path, a first; these are the vertices whose children change.
  std::vector<std::size_t> path;
  for (std::size_t x = a;; x = parent_[x]) {
    path.push_back(x);
    if (x == c) break;
  }

  const auto remove_child = [&](std::size_t par, std::size_t child) {
    auto& kids = children_[par];
    kids.erase(std::find(kids.begin(), kids.end(), child));
  };
  const auto insert_child = [&](std::size_t par, std::size_t child) {
    auto& kids = children_[par];
    kids.insert(std::upper_bound(kids.begin(), kids.end(), child), child);
  };

  remove_child(parent_[c], c);
  // Re-root the detached piece at `a`: parent pointers along the path flip.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const std::size_t child = path[i];
    const std::size_t par = path[i + 1];
    remove_child(par, child);
    insert_child(child, par);
    parent_[par] = child;
  }
  parent_[a] = p;
  insert_child(p, a);

  // Depths of the moved piece (now the subtree of `a`) from its new anchor.
  depth_[a] = depth_[p] + 1;
  std::vector<std::size_t> stack{a};
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t k : children_[v]) {
      depth_[k] = depth_[v] + 1;
      stack.push_back(k);
    }
  }
  return path;
}

RootedTree RootedTree::from_graph(const Graph& g, Vertex root) {
  const std::size_t n = g.vertex_count();
  if (g.edge_count() != n - 1 || !g.is_connected())
    throw std::invalid_argument("RootedTree::from_graph: not a tree");
  std::vector<std::size_t> parent(n, kNoParent);
  std::vector<bool> seen(n, false);
  std::vector<Vertex> stack{root};
  seen.at(root) = true;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    for (Vertex w : g.neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        parent[w] = v;
        stack.push_back(w);
      }
    }
  }
  return RootedTree(std::move(parent));
}

}  // namespace lcert
