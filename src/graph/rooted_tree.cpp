#include "src/graph/rooted_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcert {

RootedTree::RootedTree(std::vector<std::size_t> parent)
    : parent_(std::move(parent)), children_(parent_.size()), depth_(parent_.size(), SIZE_MAX) {
  const std::size_t n = parent_.size();
  if (n == 0) throw std::invalid_argument("RootedTree: empty");
  std::size_t roots = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (parent_[v] == kNoParent) {
      root_ = v;
      ++roots;
    } else if (parent_[v] >= n) {
      throw std::out_of_range("RootedTree: parent out of range");
    } else {
      children_[parent_[v]].push_back(v);
    }
  }
  if (roots != 1) throw std::invalid_argument("RootedTree: must have exactly one root");
  // Compute depths iteratively (also detects cycles: unreachable vertices).
  depth_[root_] = 0;
  std::vector<std::size_t> stack{root_};
  std::size_t visited = 0;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    ++visited;
    for (std::size_t c : children_[v]) {
      depth_[c] = depth_[v] + 1;
      stack.push_back(c);
    }
  }
  if (visited != n) throw std::invalid_argument("RootedTree: parent array contains a cycle");
}

std::size_t RootedTree::height() const {
  return *std::max_element(depth_.begin(), depth_.end());
}

bool RootedTree::is_ancestor(std::size_t a, std::size_t d) const {
  std::size_t v = d;
  while (v != kNoParent) {
    if (v == a) return true;
    v = parent_.at(v);
  }
  return false;
}

std::vector<std::size_t> RootedTree::ancestors(std::size_t v) const {
  std::vector<std::size_t> out;
  std::size_t cur = v;
  while (cur != kNoParent) {
    out.push_back(cur);
    cur = parent_.at(cur);
  }
  return out;
}

std::vector<std::size_t> RootedTree::subtree(std::size_t v) const {
  std::vector<std::size_t> out;
  std::vector<std::size_t> stack{v};
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    out.push_back(u);
    for (std::size_t c : children_[u]) stack.push_back(c);
  }
  return out;
}

std::vector<std::vector<std::size_t>> RootedTree::levels() const {
  std::vector<std::vector<std::size_t>> out(height() + 1);
  // Ascending vertex order within each level, by construction.
  for (std::size_t v = 0; v < size(); ++v) out[depth_[v]].push_back(v);
  return out;
}

Graph RootedTree::to_graph() const {
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(size() - 1);
  for (std::size_t v = 0; v < size(); ++v)
    if (parent_[v] != kNoParent) edges.emplace_back(v, parent_[v]);
  return Graph(size(), edges);
}

RootedTree RootedTree::from_graph(const Graph& g, Vertex root) {
  const std::size_t n = g.vertex_count();
  if (g.edge_count() != n - 1 || !g.is_connected())
    throw std::invalid_argument("RootedTree::from_graph: not a tree");
  std::vector<std::size_t> parent(n, kNoParent);
  std::vector<bool> seen(n, false);
  std::vector<Vertex> stack{root};
  seen.at(root) = true;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    for (Vertex w : g.neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        parent[w] = v;
        stack.push_back(w);
      }
    }
  }
  return RootedTree(std::move(parent));
}

}  // namespace lcert
