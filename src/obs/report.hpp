// Structured experiment reporting shared by every bench binary and the CLI.
//
// A Report is a list of flat records ({scheme, n, max_bits, wall_ms, ...}),
// free-form metadata, and optional notes. finish() prints one aligned human
// table (replacing the per-bench printf tables) and, when an output path was
// given — `--metrics-out <file>` on the command line or the LCERT_METRICS
// environment variable — writes a machine-readable artifact that also embeds
// the full metrics snapshot and the span trace. `.csv` paths get the records
// as CSV; everything else gets the JSON document:
//
//   { "experiment": ..., "meta": {...}, "records": [...],
//     "metrics": {"counters": ..., "gauges": ..., "histograms": ...},
//     "trace": [...] }
//
// EXPERIMENTS.md tables are regenerated from these artifacts, so record keys
// are a stable schema: renaming one is a breaking change to the bench
// trajectory.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

namespace lcert::obs {

using Value = std::variant<std::int64_t, double, std::string>;

/// One table row / JSON object. Keys keep insertion order (they become the
/// table's columns, first-seen first).
class Record {
 public:
  Record& set(std::string key, double v) { return put(std::move(key), Value(v)); }
  Record& set(std::string key, std::string v) { return put(std::move(key), Value(std::move(v))); }
  Record& set(std::string key, const char* v) { return put(std::move(key), Value(std::string(v))); }
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  Record& set(std::string key, T v) {
    return put(std::move(key), Value(static_cast<std::int64_t>(v)));
  }

  const Value* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Value>>& fields() const noexcept { return fields_; }

 private:
  Record& put(std::string key, Value v);
  std::vector<std::pair<std::string, Value>> fields_;
};

class Report {
 public:
  explicit Report(std::string experiment) : experiment_(std::move(experiment)) {}

  /// Builds a report from a main()'s argument list: consumes (removes from
  /// argv) `--metrics-out <file>` / `--metrics-out=<file>` and
  /// `--trace-out <file>` / `--trace-out=<file>`, falls back to the
  /// LCERT_METRICS / LCERT_TRACE environment variables, and enables the
  /// metrics registry so the instrumented pipelines actually count. A trace
  /// output also enables the trace sink (timeline recording is otherwise
  /// off — its per-batch clocks are not free).
  static Report from_cli(std::string experiment, int& argc, char** argv);

  void set_output(std::string path) { out_path_ = std::move(path); }
  const std::string& output_path() const noexcept { return out_path_; }
  void set_trace_output(std::string path) { trace_path_ = std::move(path); }
  const std::string& trace_output_path() const noexcept { return trace_path_; }

  template <typename T>
  void meta(std::string key, T v) {
    Record r;
    r.set(std::move(key), std::move(v));
    meta_.push_back(r.fields().front());
  }

  /// Appends a record; the reference stays valid until the next append.
  Record& add();
  /// Free-form line printed after the table (paper-claim commentary).
  void note(std::string line) { notes_.push_back(std::move(line)); }

  std::size_t record_count() const noexcept { return records_.size(); }

  /// Aligned human table of all records (columns = union of keys).
  void print_table(std::FILE* out = stdout) const;
  /// Human summary of the current metrics snapshot (counters + histograms).
  void print_metrics(std::FILE* out = stdout) const;

  /// Serializers. json() embeds a fresh metrics snapshot and drains the
  /// span trace; csv() is records-only.
  std::string json() const;
  std::string csv() const;

  /// Writes by extension (.csv => CSV, else JSON). Returns false on I/O error.
  bool write(const std::string& path) const;

  /// Probes that every configured output path (metrics and trace) is
  /// writable, before the run burns any time. On failure, fills *error with
  /// a user-facing message and returns false. Probing opens in append mode,
  /// so an existing artifact is not clobbered by the check.
  bool outputs_writable(std::string* error = nullptr) const;

  /// Writes the metrics artifact and the Chrome trace (whichever paths are
  /// set), draining the trace sink. Returns 0, or 2 on any write failure
  /// (with a message on stderr) — never silently drops a report.
  int write_artifacts() const;

  /// Prints the table, the notes and (when tracing ran) the per-phase
  /// rollup, then writes the artifacts. Returns a main()-ready exit code
  /// (2 on write failure).
  int finish(std::FILE* out = stdout);

 private:
  std::string experiment_;
  std::string out_path_;
  std::string trace_path_;
  std::vector<std::pair<std::string, Value>> meta_;
  std::vector<Record> records_;
  std::vector<std::string> notes_;
};

/// Milliseconds-resolution stopwatch for the wall_ms record field.
class StopwatchMs {
 public:
  StopwatchMs();
  double elapsed() const;

 private:
  std::uint64_t start_ns_;
};

}  // namespace lcert::obs
