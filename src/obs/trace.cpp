#include "src/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>

namespace lcert::obs {

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One thread's event buffer. Only the owning thread writes; take() reads
// concurrently-published prefixes: events[i] for i < size are ordered before
// the release store of size, so an acquire load of size makes them visible.
struct TraceSink::Buffer {
  Buffer(std::size_t cap, std::uint32_t tid_) : events(cap), tid(tid_) {}
  std::vector<TraceEvent> events;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t tid;
};

// Registers the calling thread's buffer on first emit and retires its events
// into the sink when the thread exits (worker-pool threads join per call, so
// retirement is the common path — mirrors MetricsRegistry::ShardOwner).
struct TraceSink::BufferOwner {
  explicit BufferOwner(TraceSink& sink_) : sink(&sink_) {
    std::lock_guard<std::mutex> lock(sink->mutex_);
    buffer = std::make_unique<Buffer>(sink->capacity_, sink->next_tid_++);
    sink->buffers_.push_back(buffer.get());
  }
  ~BufferOwner() { sink->retire_buffer(buffer.get()); }

  TraceSink* sink;
  std::unique_ptr<Buffer> buffer;
};

TraceSink& TraceSink::instance() {
  // Function-local static: constructed before any BufferOwner (buffers are
  // created through instance()), hence destroyed after every thread-local
  // buffer has retired.
  static TraceSink sink;
  return sink;
}

void TraceSink::set_capacity(std::size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = events_per_thread;
}

std::size_t TraceSink::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::uint32_t TraceSink::name_id(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

TraceSink::Buffer& TraceSink::local_buffer() {
  thread_local BufferOwner owner(*this);
  return *owner.buffer;
}

void TraceSink::retire_buffer(Buffer* buffer) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = buffer->size.load(std::memory_order_acquire);
  retired_events_.insert(retired_events_.end(), buffer->events.begin(),
                         buffer->events.begin() + static_cast<std::ptrdiff_t>(n));
  retired_dropped_ += buffer->dropped.load(std::memory_order_relaxed);
  buffers_.erase(std::remove(buffers_.begin(), buffers_.end(), buffer), buffers_.end());
}

void TraceSink::emit(std::uint32_t name_id, TraceEventKind kind, std::uint64_t logical,
                     std::int64_t arg) noexcept {
  if (!enabled()) return;
  Buffer& buf = local_buffer();
  const std::size_t idx = buf.size.load(std::memory_order_relaxed);
  if (idx >= buf.events.size()) {
    // Full: stop recording, never overwrite — the loss is visible in dropped().
    buf.dropped.store(buf.dropped.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    return;
  }
  TraceEvent& e = buf.events[idx];
  e.ts_ns = trace_now_ns();
  e.logical = logical;
  e.arg = arg;
  e.name_id = name_id;
  e.tid = buf.tid;
  e.kind = kind;
  buf.size.store(idx + 1, std::memory_order_release);
}

TraceSnapshot TraceSink::take() {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceSnapshot snap;
  snap.names = names_;
  snap.events = std::move(retired_events_);
  retired_events_.clear();
  snap.dropped = retired_dropped_;
  retired_dropped_ = 0;
  for (Buffer* buf : buffers_) {
    const std::size_t n = buf->size.load(std::memory_order_acquire);
    snap.events.insert(snap.events.end(), buf->events.begin(),
                       buf->events.begin() + static_cast<std::ptrdiff_t>(n));
    snap.dropped += buf->dropped.load(std::memory_order_relaxed);
    buf->size.store(0, std::memory_order_relaxed);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
  return snap;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = retired_dropped_;
  for (const Buffer* buf : buffers_)
    total += buf->dropped.load(std::memory_order_relaxed);
  return total;
}

void TraceSink::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_events_.clear();
  retired_dropped_ = 0;
  for (Buffer* buf : buffers_) {
    buf->size.store(0, std::memory_order_relaxed);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
}

namespace {

std::string trace_json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* kind_tag(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSpanBegin: return "B";
    case TraceEventKind::kSpanEnd: return "E";
    case TraceEventKind::kInstant: return "i";
    case TraceEventKind::kCounter: return "C";
  }
  return "?";
}

}  // namespace

std::vector<TraceRollupRow> trace_rollup(const TraceSnapshot& snap) {
  struct Frame {
    std::uint32_t name_id;
    std::uint64_t ts_ns;
    std::uint64_t child_ns;
  };
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t max_ns = 0;
  };
  // Events of one tid are contiguous and in emission order (snapshot
  // contract), so a single pass with per-tid stacks pairs begins with ends.
  std::map<std::uint32_t, std::vector<Frame>> stacks;
  std::map<std::uint32_t, Agg> aggs;  // by name_id
  for (const TraceEvent& e : snap.events) {
    if (e.kind == TraceEventKind::kSpanBegin) {
      stacks[e.tid].push_back({e.name_id, e.ts_ns, 0});
    } else if (e.kind == TraceEventKind::kSpanEnd) {
      auto& stack = stacks[e.tid];
      if (stack.empty() || stack.back().name_id != e.name_id) continue;  // unmatched
      const Frame frame = stack.back();
      stack.pop_back();
      const std::uint64_t dur = e.ts_ns >= frame.ts_ns ? e.ts_ns - frame.ts_ns : 0;
      Agg& agg = aggs[e.name_id];
      ++agg.count;
      agg.total_ns += dur;
      agg.self_ns += dur >= frame.child_ns ? dur - frame.child_ns : 0;
      agg.max_ns = std::max(agg.max_ns, dur);
      if (!stack.empty()) stack.back().child_ns += dur;
    }
  }
  std::vector<TraceRollupRow> rows;
  rows.reserve(aggs.size());
  for (const auto& [name_id, agg] : aggs) {
    TraceRollupRow row;
    row.name = name_id < snap.names.size() ? snap.names[name_id] : "?";
    row.count = agg.count;
    row.total_ms = static_cast<double>(agg.total_ns) / 1e6;
    row.self_ms = static_cast<double>(agg.self_ns) / 1e6;
    row.max_ms = static_cast<double>(agg.max_ns) / 1e6;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const TraceRollupRow& a, const TraceRollupRow& b) {
              return a.total_ms != b.total_ms ? a.total_ms > b.total_ms : a.name < b.name;
            });
  return rows;
}

std::string chrome_trace_json(const TraceSnapshot& snap) {
  // Rebase timestamps so the viewer opens at t=0 instead of steady-clock
  // epoch; sort by time (Perfetto tolerates disorder, chrome://tracing is
  // happier sorted). Kind breaks ts ties so an E never precedes its B.
  std::vector<const TraceEvent*> order;
  order.reserve(snap.events.size());
  std::uint64_t t0 = UINT64_MAX;
  for (const TraceEvent& e : snap.events) {
    order.push_back(&e);
    t0 = std::min(t0, e.ts_ns);
  }
  if (order.empty()) t0 = 0;
  std::stable_sort(order.begin(), order.end(), [](const TraceEvent* a, const TraceEvent* b) {
    return a->ts_ns != b->ts_ns ? a->ts_ns < b->ts_ns
                                : static_cast<int>(a->kind) < static_cast<int>(b->kind);
  });

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char ts_buf[32];
  for (const TraceEvent* e : order) {
    if (!first) os << ',';
    first = false;
    const std::string& name =
        e->name_id < snap.names.size() ? snap.names[e->name_id] : "?";
    std::snprintf(ts_buf, sizeof ts_buf, "%.3f",
                  static_cast<double>(e->ts_ns - t0) / 1e3);
    os << "{\"name\":\"" << trace_json_escape(name) << "\",\"cat\":\"lcert\",\"ph\":\""
       << kind_tag(e->kind) << "\",\"ts\":" << ts_buf << ",\"pid\":0,\"tid\":" << e->tid;
    if (e->kind == TraceEventKind::kInstant) os << ",\"s\":\"t\"";
    if (e->kind == TraceEventKind::kCounter)
      os << ",\"args\":{\"value\":" << e->arg << '}';
    else
      os << ",\"args\":{\"logical\":" << e->logical << ",\"arg\":" << e->arg << '}';
    os << '}';
  }
  os << "],\"rollup\":[";
  const std::vector<TraceRollupRow> rollup = trace_rollup(snap);
  for (std::size_t i = 0; i < rollup.size(); ++i) {
    if (i) os << ',';
    char num[32];
    os << "{\"name\":\"" << trace_json_escape(rollup[i].name)
       << "\",\"count\":" << rollup[i].count;
    std::snprintf(num, sizeof num, "%.6f", rollup[i].total_ms);
    os << ",\"total_ms\":" << num;
    std::snprintf(num, sizeof num, "%.6f", rollup[i].self_ms);
    os << ",\"self_ms\":" << num;
    std::snprintf(num, sizeof num, "%.6f", rollup[i].max_ms);
    os << ",\"max_ms\":" << num << '}';
  }
  os << "],\"dropped\":" << snap.dropped << '}';
  return os.str();
}

std::string logical_stream(const TraceSnapshot& snap) {
  std::vector<std::string> lines;
  lines.reserve(snap.events.size());
  for (const TraceEvent& e : snap.events) {
    const std::string& name =
        e.name_id < snap.names.size() ? snap.names[e.name_id] : "?";
    std::string line;
    line.reserve(name.size() + 48);
    line += name;
    line += ' ';
    line += kind_tag(e.kind);
    line += ' ';
    line += std::to_string(e.logical);
    line += ' ';
    line += std::to_string(e.arg);
    line += '\n';
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) out += line;
  return out;
}

OutlierSampler& OutlierSampler::instance() {
  static OutlierSampler sampler;
  return sampler;
}

namespace {
inline bool slower(const OutlierRecord& a, const OutlierRecord& b) { return a.ns > b.ns; }
}  // namespace

void OutlierSampler::set_capacity(std::size_t k) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = k;
  while (heap_.size() > capacity_) {
    std::pop_heap(heap_.begin(), heap_.end(), slower);  // min-heap: pop smallest
    heap_.pop_back();
  }
  floor_ns_.store(heap_.size() >= capacity_ && !heap_.empty() ? heap_.front().ns : 0,
                  std::memory_order_relaxed);
}

void OutlierSampler::record(OutlierRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(rec));
    std::push_heap(heap_.begin(), heap_.end(), slower);
  } else {
    if (rec.ns <= heap_.front().ns) return;  // floor moved since would_admit
    std::pop_heap(heap_.begin(), heap_.end(), slower);
    heap_.back() = std::move(rec);
    std::push_heap(heap_.begin(), heap_.end(), slower);
  }
  floor_ns_.store(heap_.size() >= capacity_ ? heap_.front().ns : 0,
                  std::memory_order_relaxed);
}

std::vector<OutlierRecord> OutlierSampler::top() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<OutlierRecord> out = heap_;
  std::sort(out.begin(), out.end(),
            [](const OutlierRecord& a, const OutlierRecord& b) { return a.ns > b.ns; });
  return out;
}

void OutlierSampler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  heap_.clear();
  floor_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace lcert::obs
