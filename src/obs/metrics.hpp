// Process-wide metrics for the certification pipelines.
//
// The registry holds three metric kinds, all keyed by `subsystem/name`
// strings (DESIGN.md §9): monotonic counters, last-write-wins gauges, and
// log2-bucketed histograms (bucket b >= 1 covers values in [2^(b-1), 2^b),
// bucket 0 holds exact zeros — certificate sizes in bits land in the bucket
// of their bit-width).
//
// Hot-path contract: updates go to a thread-local shard, so concurrent
// workers from the engine's pool never contend on a lock or share a cache
// line; the cells are relaxed atomics only so that snapshot() may read them
// while workers run (each cell has a single writer — its owning thread).
// When the registry is disabled (the default), an update is one relaxed
// load and a branch. Because counters and histogram cells are merged by
// addition, totals are bit-identical for every thread count — the same
// determinism contract the engine itself gives.
//
// Snapshots merge live shards with the totals retired by exited threads
// (the worker pool creates and joins threads per call, so retirement is the
// common path) and return plain name-keyed maps for the exporters.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lcert::obs {

/// Log2 bucket count: bucket 0 (zeros) + bit-widths 1..64.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index of a recorded value: 0 for 0, otherwise its bit width
/// (floor(log2 v) + 1), so bucket b covers [2^(b-1), 2^b).
std::size_t histogram_bucket(std::uint64_t value) noexcept;

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Exact order statistics over recorded samples (DESIGN.md §14). count, sum,
/// min and max are exact for every recorded value; the percentiles are
/// nearest-rank over the retained samples — exact until a per-thread sample
/// buffer or the retired pool overflows, after which the overflow is counted
/// in `dropped` (aggregates stay exact; percentiles become a sample).
struct QuantileSnapshot {
  std::uint64_t count = 0;
  std::uint64_t dropped = 0;  ///< samples not retained for percentile math
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;

  double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, QuantileSnapshot> quantiles;

  std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  HistogramSnapshot histogram(const std::string& name) const {
    const auto it = histograms.find(name);
    return it == histograms.end() ? HistogramSnapshot{} : it->second;
  }
  QuantileSnapshot quantile(const std::string& name) const {
    const auto it = quantiles.find(name);
    return it == quantiles.end() ? QuantileSnapshot{} : it->second;
  }
};

class MetricsRegistry;

/// Cheap copyable handle to one counter. A default-constructed handle is
/// inert; handles from MetricsRegistry::counter stay valid forever (metric
/// ids are never reused).
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t delta = 1) const noexcept;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

class Gauge {
 public:
  Gauge() = default;
  inline void set(std::int64_t value) const noexcept;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  inline void record(std::uint64_t value) const noexcept;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Handle to one quantile metric (latency distributions: per-batch and
/// per-vertex verify times, per-edit incr times). Recording appends the raw
/// sample to a lazily-allocated per-thread buffer — heavier than a histogram
/// bump, so call sites gate on trace_enabled() or keep to phase granularity.
class Quantile {
 public:
  Quantile() = default;
  inline void record(std::uint64_t value) const noexcept;

 private:
  friend class MetricsRegistry;
  Quantile(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

class MetricsRegistry {
 public:
  /// The process-wide registry (benches, the CLI and the library share it).
  static MetricsRegistry& instance();

  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  /// Finds or registers a metric. Registration takes a lock; call sites on
  /// hot paths resolve their handles once (function-local static).
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);
  Quantile quantile(std::string_view name);

  /// Merged view of every shard (live and retired). Safe to call while
  /// workers are updating; in-flight updates may or may not be included.
  MetricsSnapshot snapshot() const;
  /// Counters only — the span tracer diffs these around each span.
  std::map<std::string, std::uint64_t> counters_snapshot() const;
  /// Convenience lookups (zero / empty when the metric is unknown).
  std::uint64_t counter_value(std::string_view name) const;
  HistogramSnapshot histogram_snapshot(std::string_view name) const;
  QuantileSnapshot quantile_snapshot(std::string_view name) const;

  /// Unconditional gauge write, bypassing the enabled() gate: registration-
  /// time facts (e.g. verify/<scheme>/boxes_per_state) should appear in
  /// every snapshot whether or not a run enabled metrics.
  void gauge_set_always(const Gauge& g, std::int64_t value) noexcept {
    gauge_set(g.id_, value);
  }

  /// Zeroes every cell, keeping registrations and handles valid. Test-only:
  /// callers must ensure no worker is updating concurrently.
  void reset() noexcept;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  friend class Quantile;

  struct HistCell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{0};  ///< valid iff count > 0
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };

  /// Sample buffer of one quantile metric on one thread, allocated lazily on
  /// first record (most threads touch no quantile). Single writer; snapshot
  /// readers synchronize on the release store of `size` — events below a
  /// loaded size are fully written. Past the fixed capacity, samples are
  /// dropped (counted); aggregates keep updating.
  struct QuantCell {
    std::atomic<std::uint64_t*> samples{nullptr};
    std::atomic<std::size_t> size{0};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{0};  ///< valid iff count > 0
    std::atomic<std::uint64_t> max{0};
  };

  /// One thread's private cells. Only the owning thread writes (relaxed
  /// load-then-store, no RMW needed); snapshot() reads concurrently.
  struct Shard {
    std::vector<std::atomic<std::uint64_t>> counters;
    std::vector<HistCell> histograms;
    std::vector<QuantCell> quantiles;
    ~Shard();  ///< frees the lazily-allocated sample buffers
  };

  /// Merged, capped sample pool of one retired quantile metric.
  struct RetiredQuant {
    std::uint64_t count = 0;
    std::uint64_t dropped = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::vector<std::uint64_t> samples;
  };

  /// Plain (single-threaded) totals retired from exited threads.
  struct Retired {
    std::vector<std::uint64_t> counters;
    std::vector<HistogramSnapshot> histograms;
    std::vector<RetiredQuant> quantiles;
  };

  MetricsRegistry();
  Shard& local_shard();
  void retire_shard(Shard* shard) noexcept;
  void counter_add(std::uint32_t id, std::uint64_t delta) noexcept;
  void gauge_set(std::uint32_t id, std::int64_t value) noexcept;
  void histogram_record(std::uint32_t id, std::uint64_t value) noexcept;
  void quantile_record(std::uint32_t id, std::uint64_t value);
  QuantileSnapshot merge_quantile_locked(std::size_t i) const;
  std::uint32_t intern(std::vector<std::string>& names,
                       std::map<std::string, std::uint32_t, std::less<>>& index,
                       std::string_view name, std::size_t capacity);

  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;  ///< guards names, shard list, retired totals
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::string> quantile_names_;
  std::map<std::string, std::uint32_t, std::less<>> counter_index_;
  std::map<std::string, std::uint32_t, std::less<>> gauge_index_;
  std::map<std::string, std::uint32_t, std::less<>> histogram_index_;
  std::map<std::string, std::uint32_t, std::less<>> quantile_index_;
  std::vector<std::atomic<std::int64_t>> gauges_;  ///< fixed capacity, see .cpp
  std::vector<Shard*> shards_;
  Retired retired_;

  struct ShardOwner;  ///< thread_local registrar; retires on thread exit
};

/// The process-wide registry.
inline MetricsRegistry& registry() { return MetricsRegistry::instance(); }

inline void Counter::add(std::uint64_t delta) const noexcept {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->counter_add(id_, delta);
}

inline void Gauge::set(std::int64_t value) const noexcept {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->gauge_set(id_, value);
}

inline void Histogram::record(std::uint64_t value) const noexcept {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->histogram_record(id_, value);
}

inline void Quantile::record(std::uint64_t value) const noexcept {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->quantile_record(id_, value);
}

}  // namespace lcert::obs
