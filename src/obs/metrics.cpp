#include "src/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace lcert::obs {

namespace {

// Fixed shard capacities: shards never reallocate after construction, so a
// worker indexing its own cells can never race a thread registering a new
// metric. Generous for this library (a few dozen counters, one histogram per
// scheme); intern() fails loudly if a future caller blows past them.
constexpr std::size_t kMaxCounters = 512;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 128;
constexpr std::size_t kMaxQuantiles = 32;

// Per-thread sample buffer size for one quantile metric (64 KiB of u64) and
// the cap on the merged retired pool (1 MiB) — past either, samples drop
// into QuantileSnapshot::dropped instead of growing without bound.
constexpr std::size_t kQuantileShardSamples = 8192;
constexpr std::size_t kQuantileRetiredSamples = 131072;

// Single-writer cells: plain load-then-store beats an RMW (no lock prefix);
// snapshot readers only need atomicity, not ordering.
inline void cell_add(std::atomic<std::uint64_t>& cell, std::uint64_t delta) noexcept {
  cell.store(cell.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

}  // namespace

std::size_t histogram_bucket(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

// Registers the calling thread's shard on first touch and retires its totals
// into the registry when the thread exits (the worker pool joins its threads
// per call, so this runs constantly, not just at process exit).
struct MetricsRegistry::ShardOwner {
  explicit ShardOwner(MetricsRegistry& reg) : registry(&reg), shard(new Shard) {
    shard->counters = std::vector<std::atomic<std::uint64_t>>(kMaxCounters);
    shard->histograms = std::vector<HistCell>(kMaxHistograms);
    shard->quantiles = std::vector<QuantCell>(kMaxQuantiles);
    std::lock_guard<std::mutex> lock(reg.mutex_);
    reg.shards_.push_back(shard.get());
  }
  ~ShardOwner() { registry->retire_shard(shard.get()); }

  MetricsRegistry* registry;
  std::unique_ptr<Shard> shard;
};

MetricsRegistry::Shard::~Shard() {
  for (QuantCell& cell : quantiles) delete[] cell.samples.load(std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry() : gauges_(kMaxGauges) {
  retired_.counters.assign(kMaxCounters, 0);
  retired_.histograms.assign(kMaxHistograms, HistogramSnapshot{});
  retired_.quantiles.assign(kMaxQuantiles, RetiredQuant{});
}

MetricsRegistry& MetricsRegistry::instance() {
  // Function-local static: constructed before any ShardOwner (shards are
  // created through instance()), hence destroyed after every thread-local
  // shard has retired.
  static MetricsRegistry reg;
  return reg;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  thread_local ShardOwner owner(*this);
  return *owner.shard;
}

void MetricsRegistry::retire_shard(Shard* shard) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < kMaxCounters; ++i)
    retired_.counters[i] += shard->counters[i].load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    const HistCell& cell = shard->histograms[i];
    const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    HistogramSnapshot& into = retired_.histograms[i];
    const std::uint64_t min = cell.min.load(std::memory_order_relaxed);
    const std::uint64_t max = cell.max.load(std::memory_order_relaxed);
    if (into.count == 0 || min < into.min) into.min = min;
    if (max > into.max) into.max = max;
    into.count += count;
    into.sum += cell.sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      into.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxQuantiles; ++i) {
    QuantCell& cell = shard->quantiles[i];
    const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    RetiredQuant& into = retired_.quantiles[i];
    const std::uint64_t min = cell.min.load(std::memory_order_relaxed);
    const std::uint64_t max = cell.max.load(std::memory_order_relaxed);
    if (into.count == 0 || min < into.min) into.min = min;
    if (max > into.max) into.max = max;
    into.count += count;
    into.sum += cell.sum.load(std::memory_order_relaxed);
    into.dropped += cell.dropped.load(std::memory_order_relaxed);
    const std::uint64_t* samples = cell.samples.load(std::memory_order_acquire);
    const std::size_t size = cell.size.load(std::memory_order_acquire);
    const std::size_t room = into.samples.size() < kQuantileRetiredSamples
                                 ? kQuantileRetiredSamples - into.samples.size()
                                 : 0;
    const std::size_t keep = std::min(size, room);
    if (samples != nullptr && keep > 0)
      into.samples.insert(into.samples.end(), samples, samples + keep);
    into.dropped += size - keep;
  }
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard), shards_.end());
}

std::uint32_t MetricsRegistry::intern(std::vector<std::string>& names,
                                      std::map<std::string, std::uint32_t, std::less<>>& index,
                                      std::string_view name, std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index.find(name);
  if (it != index.end()) return it->second;
  if (names.size() >= capacity)
    throw std::length_error("MetricsRegistry: metric capacity exhausted for '" +
                            std::string(name) + "'");
  const auto id = static_cast<std::uint32_t>(names.size());
  names.emplace_back(name);
  index.emplace(names.back(), id);
  return id;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(this, intern(counter_names_, counter_index_, name, kMaxCounters));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(this, intern(gauge_names_, gauge_index_, name, kMaxGauges));
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  return Histogram(this, intern(histogram_names_, histogram_index_, name, kMaxHistograms));
}

Quantile MetricsRegistry::quantile(std::string_view name) {
  return Quantile(this, intern(quantile_names_, quantile_index_, name, kMaxQuantiles));
}

void MetricsRegistry::counter_add(std::uint32_t id, std::uint64_t delta) noexcept {
  cell_add(local_shard().counters[id], delta);
}

void MetricsRegistry::gauge_set(std::uint32_t id, std::int64_t value) noexcept {
  gauges_[id].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::histogram_record(std::uint32_t id, std::uint64_t value) noexcept {
  HistCell& cell = local_shard().histograms[id];
  const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
  if (count == 0 || value < cell.min.load(std::memory_order_relaxed))
    cell.min.store(value, std::memory_order_relaxed);
  if (count == 0 || value > cell.max.load(std::memory_order_relaxed))
    cell.max.store(value, std::memory_order_relaxed);
  cell.count.store(count + 1, std::memory_order_relaxed);
  cell_add(cell.sum, value);
  cell_add(cell.buckets[histogram_bucket(value)], 1);
}

void MetricsRegistry::quantile_record(std::uint32_t id, std::uint64_t value) {
  QuantCell& cell = local_shard().quantiles[id];
  const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
  if (count == 0 || value < cell.min.load(std::memory_order_relaxed))
    cell.min.store(value, std::memory_order_relaxed);
  if (count == 0 || value > cell.max.load(std::memory_order_relaxed))
    cell.max.store(value, std::memory_order_relaxed);
  cell.count.store(count + 1, std::memory_order_relaxed);
  cell_add(cell.sum, value);
  std::uint64_t* samples = cell.samples.load(std::memory_order_relaxed);
  if (samples == nullptr) {
    // Single writer: no CAS needed, just publish the buffer before any size.
    samples = new std::uint64_t[kQuantileShardSamples];
    cell.samples.store(samples, std::memory_order_release);
  }
  const std::size_t size = cell.size.load(std::memory_order_relaxed);
  if (size >= kQuantileShardSamples) {
    cell_add(cell.dropped, 1);
    return;
  }
  samples[size] = value;
  cell.size.store(size + 1, std::memory_order_release);
}

namespace {

// Nearest-rank percentile over pre-gathered samples; sorts in place.
void fill_percentiles(std::vector<std::uint64_t>& samples, QuantileSnapshot& snap) {
  if (samples.empty()) return;
  std::sort(samples.begin(), samples.end());
  const auto rank = [&](std::uint64_t pct) {
    const std::size_t m = samples.size();
    const std::size_t idx = (m * pct + 99) / 100;  // ceil(m*pct/100)
    return samples[idx == 0 ? 0 : std::min(m, idx) - 1];
  };
  snap.p50 = rank(50);
  snap.p90 = rank(90);
  snap.p99 = rank(99);
}

}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t total = retired_.counters[i];
    for (const Shard* shard : shards_)
      total += shard->counters[i].load(std::memory_order_relaxed);
    out.counters.emplace(counter_names_[i], total);
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i)
    out.gauges.emplace(gauge_names_[i], gauges_[i].load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramSnapshot merged = retired_.histograms[i];
    for (const Shard* shard : shards_) {
      const HistCell& cell = shard->histograms[i];
      const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      const std::uint64_t min = cell.min.load(std::memory_order_relaxed);
      const std::uint64_t max = cell.max.load(std::memory_order_relaxed);
      if (merged.count == 0 || min < merged.min) merged.min = min;
      if (max > merged.max) merged.max = max;
      merged.count += count;
      merged.sum += cell.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        merged.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
    out.histograms.emplace(histogram_names_[i], merged);
  }
  for (std::size_t i = 0; i < quantile_names_.size(); ++i)
    out.quantiles.emplace(quantile_names_[i], merge_quantile_locked(i));
  return out;
}

// Caller holds mutex_. Gathers aggregates and retained samples of metric i
// across the retired pool and every live shard, then computes nearest-rank
// percentiles.
QuantileSnapshot MetricsRegistry::merge_quantile_locked(std::size_t i) const {
  QuantileSnapshot merged;
  const RetiredQuant& retired = retired_.quantiles[i];
  merged.count = retired.count;
  merged.dropped = retired.dropped;
  merged.sum = retired.sum;
  merged.min = retired.min;
  merged.max = retired.max;
  std::vector<std::uint64_t> samples = retired.samples;
  for (const Shard* shard : shards_) {
    const QuantCell& cell = shard->quantiles[i];
    const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    const std::uint64_t min = cell.min.load(std::memory_order_relaxed);
    const std::uint64_t max = cell.max.load(std::memory_order_relaxed);
    if (merged.count == 0 || min < merged.min) merged.min = min;
    if (max > merged.max) merged.max = max;
    merged.count += count;
    merged.sum += cell.sum.load(std::memory_order_relaxed);
    merged.dropped += cell.dropped.load(std::memory_order_relaxed);
    const std::uint64_t* cell_samples = cell.samples.load(std::memory_order_acquire);
    const std::size_t size = cell.size.load(std::memory_order_acquire);
    if (cell_samples != nullptr && size > 0)
      samples.insert(samples.end(), cell_samples, cell_samples + size);
  }
  fill_percentiles(samples, merged);
  return merged;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters_snapshot() const {
  std::map<std::string, std::uint64_t> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t total = retired_.counters[i];
    for (const Shard* shard : shards_)
      total += shard->counters[i].load(std::memory_order_relaxed);
    out.emplace(counter_names_[i], total);
  }
  return out;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counter_index_.find(name);
  if (it == counter_index_.end()) return 0;
  std::uint64_t total = retired_.counters[it->second];
  for (const Shard* shard : shards_)
    total += shard->counters[it->second].load(std::memory_order_relaxed);
  return total;
}

HistogramSnapshot MetricsRegistry::histogram_snapshot(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histogram_index_.find(name);
  if (it == histogram_index_.end()) return HistogramSnapshot{};
  HistogramSnapshot merged = retired_.histograms[it->second];
  for (const Shard* shard : shards_) {
    const HistCell& cell = shard->histograms[it->second];
    const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    const std::uint64_t min = cell.min.load(std::memory_order_relaxed);
    const std::uint64_t max = cell.max.load(std::memory_order_relaxed);
    if (merged.count == 0 || min < merged.min) merged.min = min;
    if (max > merged.max) merged.max = max;
    merged.count += count;
    merged.sum += cell.sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      merged.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
  }
  return merged;
}

QuantileSnapshot MetricsRegistry::quantile_snapshot(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = quantile_index_.find(name);
  if (it == quantile_index_.end()) return QuantileSnapshot{};
  return merge_quantile_locked(it->second);
}

void MetricsRegistry::reset() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_.counters.assign(kMaxCounters, 0);
  retired_.histograms.assign(kMaxHistograms, HistogramSnapshot{});
  retired_.quantiles.assign(kMaxQuantiles, RetiredQuant{});
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  for (Shard* shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (HistCell& cell : shard->histograms) {
      cell.count.store(0, std::memory_order_relaxed);
      cell.sum.store(0, std::memory_order_relaxed);
      cell.min.store(0, std::memory_order_relaxed);
      cell.max.store(0, std::memory_order_relaxed);
      for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
    }
    for (QuantCell& cell : shard->quantiles) {
      cell.size.store(0, std::memory_order_relaxed);
      cell.count.store(0, std::memory_order_relaxed);
      cell.dropped.store(0, std::memory_order_relaxed);
      cell.sum.store(0, std::memory_order_relaxed);
      cell.min.store(0, std::memory_order_relaxed);
      cell.max.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace lcert::obs
