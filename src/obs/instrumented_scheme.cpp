#include "src/obs/instrumented_scheme.hpp"

#include <cassert>

#include "src/obs/span.hpp"

namespace lcert::obs {

std::string InstrumentedScheme::size_histogram_name(const Scheme& scheme) {
  return "prover/" + scheme.name() + "/cert_bits";
}

InstrumentedScheme::InstrumentedScheme(std::unique_ptr<Scheme> inner)
    : inner_(std::move(inner)),
      cert_bits_(registry().histogram(size_histogram_name(*inner_))),
      assign_calls_(registry().counter("prover/assign_calls")),
      assign_refusals_(registry().counter("prover/assign_refusals")) {}

std::optional<std::vector<Certificate>> InstrumentedScheme::assign(const Graph& g) const {
  LCERT_SPAN("prover/assign");
  assign_calls_.add();
  auto certificates = inner_->assign(g);
  if (!certificates.has_value()) {
    assign_refusals_.add();
    return certificates;
  }
  for (const Certificate& c : *certificates) {
    // The histogram records bit_size; the byte buffer must agree with it, or
    // the bits encoder and the reporter have drifted apart.
    assert(c.bytes.size() == (c.bit_size + 7) / 8);
    cert_bits_.record(c.bit_size);
  }
  return certificates;
}

std::optional<std::vector<Certificate>> InstrumentedScheme::prove_batch(
    const Graph& g, ProverContext& ctx) const {
  LCERT_SPAN("prover/prove_batch");
  assign_calls_.add();
  auto certificates = inner_->prove_batch(g, ctx);
  if (!certificates.has_value()) {
    assign_refusals_.add();
    return certificates;
  }
  for (const Certificate& c : *certificates) {
    assert(c.bytes.size() == (c.bit_size + 7) / 8);
    cert_bits_.record(c.bit_size);
  }
  return certificates;
}

}  // namespace lcert::obs
