// Prover-side size accounting as a decorator.
//
// Wrapping a Scheme records every certificate the prover emits into the
// per-scheme histogram `prover/<scheme-name>/cert_bits` (the paper's
// performance measure, so max/mean certificate size per scheme falls out of
// the metrics snapshot), plus assignment counters and a "prover/assign"
// span. The scheme registry wraps every entry it hands out, so the CLI,
// the benches and the audit sweep all get prover accounting for free;
// verification forwards straight to the inner scheme — verify_batch keeps
// its hot-path override.
#pragma once

#include <memory>

#include "src/cert/scheme.hpp"
#include "src/obs/metrics.hpp"

namespace lcert::obs {

class InstrumentedScheme final : public Scheme {
 public:
  explicit InstrumentedScheme(std::unique_ptr<Scheme> inner);

  /// Metric name the wrapper records certificate sizes into; also what
  /// engine::run_scheme's debug cross-check looks up.
  static std::string size_histogram_name(const Scheme& scheme);

  std::string name() const override { return inner_->name(); }
  bool holds(const Graph& g) const override { return inner_->holds(g); }
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  /// Forwards to the inner scheme's batch prover (so wrapped schemes keep
  /// their memoized/parallel path) and records sizes like assign() does.
  std::optional<std::vector<Certificate>> prove_batch(const Graph& g,
                                                      ProverContext& ctx) const override;
  bool verify(const ViewRef& view) const override { return inner_->verify(view); }
  void verify_batch(std::span<const ViewRef> views,
                    std::span<std::uint8_t> accept) const override {
    inner_->verify_batch(views, accept);
  }
  std::string slow_batch_attribution(std::span<const ViewRef> views) const override {
    return inner_->slow_batch_attribution(views);
  }
  /// Forwards so registry schemes keep their incremental path (the lcert::incr
  /// layer records its own counters; per-edit cert sizes are constant for
  /// every scheme with an incremental prover, so no size accounting is lost).
  std::unique_ptr<IncrementalProver> make_incremental_prover(
      const RunOptions& options) const override {
    return inner_->make_incremental_prover(options);
  }
  /// Forwards so the audit's SAT-guided forgery search sees through the
  /// wrapper (registry schemes are always wrapped).
  std::optional<RunForgerySurface> run_forgery_surface() const override {
    return inner_->run_forgery_surface();
  }

 private:
  std::unique_ptr<Scheme> inner_;
  Histogram cert_bits_;
  Counter assign_calls_;
  Counter assign_refusals_;
};

}  // namespace lcert::obs
