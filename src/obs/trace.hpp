// Timeline tracing and latency attribution (DESIGN.md §14).
//
// A trace is a flat stream of fixed-size events — span begin/end, instants,
// counter samples — appended to per-thread buffers with no locks and no
// allocation on the hot path. Every event carries two orderings:
//
//   * ts_ns  — steady-clock nanoseconds, for the timeline exporters;
//   * logical — a caller-supplied sequence number derived from the *work
//     identity* (batch index, level index, edit index), never from arrival
//     order, so the multiset of (name, kind, logical, arg) tuples is
//     bit-identical for every thread count (pinned by tests/test_obs.cpp).
//
// Ring-buffer contract: each thread owns one fixed-capacity buffer created
// on its first emit; when the buffer is full, recording STOPS for that
// thread and every further event is counted in dropped() — events are never
// overwritten and never silently lost. Buffers retire into the sink when
// their thread exits (the worker pool joins threads per call, mirroring the
// MetricsRegistry shard lifecycle); take() drains retired and live buffers.
//
// When tracing is disabled (the default), an emit is one relaxed load and a
// branch — cheap enough to leave in per-batch loops (the <1% overhead
// budget on the n=4096 prove bench is asserted in tests).
//
// Exporters: chrome_trace_json() emits the Chrome trace-event format
// (load via chrome://tracing or https://ui.perfetto.dev), with a per-phase
// rollup table embedded in the same document; logical_stream() is the
// canonical wall-clock-masked form the determinism tests compare.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lcert::obs {

enum class TraceEventKind : std::uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kInstant = 2,
  kCounter = 3,
};

/// One recorded event. ts_ns and tid are wall-clock/scheduling facts (masked
/// by logical_stream); name_id, kind, logical and arg are deterministic.
struct TraceEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t logical = 0;
  std::int64_t arg = 0;
  std::uint32_t name_id = 0;
  std::uint32_t tid = 0;
  TraceEventKind kind = TraceEventKind::kInstant;
};

/// Drained trace: events of one thread are contiguous and in emission order
/// (buffers are concatenated whole, retired first), names indexed by name_id.
struct TraceSnapshot {
  std::vector<std::string> names;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;

  const std::string& name(const TraceEvent& e) const { return names[e.name_id]; }
};

class TraceSink {
 public:
  /// The process-wide sink (the CLI, benches and the library share it).
  static TraceSink& instance();

  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  /// Per-thread buffer capacity in events. Applies to buffers created after
  /// the call; existing buffers keep their size. Test/config knob.
  void set_capacity(std::size_t events_per_thread);
  std::size_t capacity() const;

  /// Finds or registers an event name. Takes a lock; hot call sites resolve
  /// their id once (function-local static), like MetricsRegistry handles.
  std::uint32_t name_id(std::string_view name);

  /// Appends one event to the calling thread's buffer (lock-free; drops and
  /// counts when the buffer is full). No-op when tracing is disabled.
  void emit(std::uint32_t name_id, TraceEventKind kind, std::uint64_t logical,
            std::int64_t arg) noexcept;

  /// Drains every retired and live buffer into one snapshot and resets the
  /// drop counts. Callers must be quiescent (no thread emitting) — the same
  /// contract as MetricsRegistry::reset.
  TraceSnapshot take();

  /// Events dropped since the last take()/reset() across all buffers.
  std::uint64_t dropped() const;

  /// Clears events and drop counts, keeping name registrations. Test-only;
  /// same quiescence contract as take().
  void reset();

 private:
  struct Buffer;
  struct BufferOwner;  ///< thread_local registrar; retires on thread exit

  TraceSink() = default;
  Buffer& local_buffer();
  void retire_buffer(Buffer* buffer) noexcept;

  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;  ///< guards names, buffer list, retired events
  std::vector<std::string> names_;
  std::vector<Buffer*> buffers_;
  std::vector<TraceEvent> retired_events_;
  std::uint64_t retired_dropped_ = 0;
  std::size_t capacity_ = std::size_t{1} << 16;
  std::uint32_t next_tid_ = 0;
};

/// The process-wide sink.
inline TraceSink& trace_sink() { return TraceSink::instance(); }
/// One relaxed load; the gate every hot-path emit hides behind.
inline bool trace_enabled() noexcept { return TraceSink::instance().enabled(); }

/// Steady-clock nanoseconds (the trace timebase).
std::uint64_t trace_now_ns() noexcept;

/// RAII begin/end pair around a scope. The id comes from
/// TraceSink::name_id, resolved once at the call site.
class TraceSpan {
 public:
  explicit TraceSpan(std::uint32_t name_id, std::uint64_t logical = 0,
                     std::int64_t arg = 0) noexcept {
    if (!trace_enabled()) return;
    active_ = true;
    name_id_ = name_id;
    logical_ = logical;
    trace_sink().emit(name_id, TraceEventKind::kSpanBegin, logical, arg);
  }
  ~TraceSpan() {
    if (active_) trace_sink().emit(name_id_, TraceEventKind::kSpanEnd, logical_, 0);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_ = false;
  std::uint32_t name_id_ = 0;
  std::uint64_t logical_ = 0;
};

/// Per-phase rollup computed from matched begin/end pairs: total wall time,
/// self time (total minus enclosed child spans on the same thread), and the
/// slowest single span. Reconciles with the metrics counters — e.g. the
/// number of "prover/prove_assignment" rows equals prover/prove_calls.
struct TraceRollupRow {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  double max_ms = 0.0;
};

std::vector<TraceRollupRow> trace_rollup(const TraceSnapshot& snap);

/// Chrome trace-event JSON ({"traceEvents":[...]}) with the rollup and drop
/// count embedded under "rollup"/"dropped". Timestamps are microseconds
/// rebased to the earliest event.
std::string chrome_trace_json(const TraceSnapshot& snap);

/// Canonical wall-clock-masked form: one line per event, "name kind logical
/// arg", sorted — bit-identical across thread counts for deterministic
/// logical numbering (the determinism tests diff this string).
std::string logical_stream(const TraceSnapshot& snap);

// ---------------------------------------------------------------------------
// Outlier sampler: global top-K slowest units (verify batches, prove calls,
// incremental edits) with structured attribution, so e.g. the leaves>=4 DNF
// cliff shows up as "state=K4 boxes=29k" instead of folklore. Admission is a
// relaxed atomic floor check; the mutex and the attribution string are paid
// only by units slower than the current K-th — rejection costs one load.

struct OutlierRecord {
  std::uint64_t ns = 0;
  std::string site;    ///< "verify-batch", "prove", "incr-edit"
  std::string scheme;  ///< scheme name, empty when not applicable
  std::uint64_t unit = 0;  ///< first vertex of the batch / instance size / edit index
  std::string detail;  ///< scheme-provided attribution (automaton state, box count)
};

class OutlierSampler {
 public:
  static OutlierSampler& instance();

  void set_capacity(std::size_t k);  ///< default 16; 0 disables admission
  /// Cheap pre-check: true when ns would enter the current top-K.
  bool would_admit(std::uint64_t ns) const noexcept {
    return ns > floor_ns_.load(std::memory_order_relaxed);
  }
  /// Admits rec if still above the floor (re-checked under the lock).
  void record(OutlierRecord rec);
  /// Current top-K, slowest first.
  std::vector<OutlierRecord> top() const;
  void reset();

 private:
  OutlierSampler() = default;
  mutable std::mutex mutex_;
  std::vector<OutlierRecord> heap_;  ///< min-heap by ns
  std::size_t capacity_ = 16;
  std::atomic<std::uint64_t> floor_ns_{0};  ///< K-th slowest once full, else 0
};

inline OutlierSampler& outliers() { return OutlierSampler::instance(); }

}  // namespace lcert::obs
