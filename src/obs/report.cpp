#include "src/obs/report.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"
#include "src/obs/trace.hpp"

namespace lcert::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_value(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", *d);
    return buf;
  }
  return '"' + json_escape(std::get<std::string>(v)) + '"';
}

/// Table / CSV rendering: doubles get two decimals in the table (matching
/// the ratio columns the benches used to print) but full precision in CSV.
std::string display_value(const Value& v, bool full_precision) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, full_precision ? "%.10g" : "%.2f", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

std::vector<std::string> column_order(const std::vector<Record>& records) {
  std::vector<std::string> columns;
  for (const Record& r : records)
    for (const auto& [key, value] : r.fields())
      if (std::find(columns.begin(), columns.end(), key) == columns.end())
        columns.push_back(key);
  return columns;
}

void append_histogram_json(std::ostringstream& os, const HistogramSnapshot& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << h.sum << ",\"min\":" << h.min
     << ",\"max\":" << h.max << ",\"mean\":" << json_value(Value(h.mean()))
     << ",\"buckets\":[";
  bool first = true;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    if (!first) os << ',';
    first = false;
    const std::uint64_t lo = b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
    const std::uint64_t hi = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
    os << "{\"lo\":" << lo << ",\"hi\":" << hi << ",\"count\":" << h.buckets[b] << '}';
  }
  os << "]}";
}

void append_span_json(std::ostringstream& os, const SpanNode& node) {
  os << "{\"name\":\"" << json_escape(node.name) << "\",\"wall_ms\":"
     << json_value(Value(node.wall_ms)) << ",\"counters\":{";
  for (std::size_t i = 0; i < node.counter_deltas.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(node.counter_deltas[i].first)
       << "\":" << node.counter_deltas[i].second;
  }
  os << "},\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i) os << ',';
    append_span_json(os, node.children[i]);
  }
  os << "]}";
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

const Value* Record::find(std::string_view key) const {
  for (const auto& [k, v] : fields_)
    if (k == key) return &v;
  return nullptr;
}

Record& Record::put(std::string key, Value v) {
  for (auto& [k, existing] : fields_)
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  fields_.emplace_back(std::move(key), std::move(v));
  return *this;
}

Report Report::from_cli(std::string experiment, int& argc, char** argv) {
  Report report(std::move(experiment));
  int write_at = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      report.set_output(argv[++i]);
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      report.set_output(std::string(arg.substr(std::strlen("--metrics-out="))));
      continue;
    }
    if (arg == "--trace-out" && i + 1 < argc) {
      report.set_trace_output(argv[++i]);
      continue;
    }
    if (arg.rfind("--trace-out=", 0) == 0) {
      report.set_trace_output(std::string(arg.substr(std::strlen("--trace-out="))));
      continue;
    }
    argv[write_at++] = argv[i];
  }
  argc = write_at;
  argv[argc] = nullptr;
  if (report.out_path_.empty())
    if (const char* env = std::getenv("LCERT_METRICS"); env != nullptr && *env != '\0')
      report.set_output(env);
  if (report.trace_path_.empty())
    if (const char* env = std::getenv("LCERT_TRACE"); env != nullptr && *env != '\0')
      report.set_trace_output(env);
  registry().set_enabled(true);
  if (!report.trace_path_.empty()) trace_sink().set_enabled(true);
  return report;
}

Record& Report::add() {
  records_.emplace_back();
  return records_.back();
}

void Report::print_table(std::FILE* out) const {
  if (records_.empty()) return;
  const std::vector<std::string> columns = column_order(records_);
  std::vector<std::size_t> widths;
  std::vector<bool> numeric(columns.size(), true);
  widths.reserve(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::size_t w = columns[c].size();
    for (const Record& r : records_) {
      const Value* v = r.find(columns[c]);
      if (v == nullptr) continue;
      if (std::holds_alternative<std::string>(*v)) numeric[c] = false;
      w = std::max(w, display_value(*v, false).size());
    }
    widths.push_back(w);
  }
  for (std::size_t c = 0; c < columns.size(); ++c)
    std::fprintf(out, "%s%-*s", c ? "  " : "", static_cast<int>(widths[c]),
                 columns[c].c_str());
  std::fprintf(out, "\n");
  for (const Record& r : records_) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const Value* v = r.find(columns[c]);
      const std::string cell = v == nullptr ? "-" : display_value(*v, false);
      // Numbers right-aligned, labels left-aligned.
      std::fprintf(out, "%s%*s", c ? "  " : "",
                   numeric[c] ? static_cast<int>(widths[c]) : -static_cast<int>(widths[c]),
                   cell.c_str());
    }
    std::fprintf(out, "\n");
  }
}

void Report::print_metrics(std::FILE* out) const {
  const MetricsSnapshot snap = registry().snapshot();
  if (!snap.counters.empty()) {
    std::fprintf(out, "counters:\n");
    for (const auto& [name, value] : snap.counters)
      if (value != 0) std::fprintf(out, "  %-40s %12llu\n", name.c_str(),
                                   static_cast<unsigned long long>(value));
  }
  {
    bool header = false;
    for (const auto& [name, q] : snap.quantiles) {
      if (q.count == 0) continue;
      if (!header) {
        std::fprintf(out, "quantiles:%43s %10s %10s %10s %10s\n", "count", "p50", "p90",
                     "p99", "max");
        header = true;
      }
      std::fprintf(out, "  %-40s %10llu %10llu %10llu %10llu %10llu\n", name.c_str(),
                   static_cast<unsigned long long>(q.count),
                   static_cast<unsigned long long>(q.p50),
                   static_cast<unsigned long long>(q.p90),
                   static_cast<unsigned long long>(q.p99),
                   static_cast<unsigned long long>(q.max));
    }
  }
  if (!snap.histograms.empty()) {
    bool header = false;
    for (const auto& [name, h] : snap.histograms) {
      if (h.count == 0) continue;
      if (!header) {
        std::fprintf(out, "histograms:%42s %10s %10s %10s\n", "count", "mean", "min", "max");
        header = true;
      }
      std::fprintf(out, "  %-40s %10llu %10.1f %10llu %10llu\n", name.c_str(),
                   static_cast<unsigned long long>(h.count), h.mean(),
                   static_cast<unsigned long long>(h.min),
                   static_cast<unsigned long long>(h.max));
    }
  }
}

std::string Report::json() const {
  std::ostringstream os;
  os << "{\"experiment\":\"" << json_escape(experiment_) << "\",\"meta\":{";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(meta_[i].first) << "\":" << json_value(meta_[i].second);
  }
  os << "},\"records\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (i) os << ',';
    os << '{';
    const auto& fields = records_[i].fields();
    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (f) os << ',';
      os << '"' << json_escape(fields[f].first) << "\":" << json_value(fields[f].second);
    }
    os << '}';
  }
  os << "],\"notes\":[";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(notes_[i]) << '"';
  }
  os << ']';

  const MetricsSnapshot snap = registry().snapshot();
  os << ",\"metrics\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":";
    append_histogram_json(os, h);
  }
  os << "},\"quantiles\":{";
  first = true;
  for (const auto& [name, q] : snap.quantiles) {
    if (q.count == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"count\":" << q.count
       << ",\"dropped\":" << q.dropped << ",\"sum\":" << q.sum << ",\"min\":" << q.min
       << ",\"p50\":" << q.p50 << ",\"p90\":" << q.p90 << ",\"p99\":" << q.p99
       << ",\"max\":" << q.max << '}';
  }
  os << "}}";

  os << ",\"outliers\":[";
  const std::vector<OutlierRecord> outlier_top = outliers().top();
  for (std::size_t i = 0; i < outlier_top.size(); ++i) {
    if (i) os << ',';
    const OutlierRecord& rec = outlier_top[i];
    os << "{\"ns\":" << rec.ns << ",\"site\":\"" << json_escape(rec.site)
       << "\",\"scheme\":\"" << json_escape(rec.scheme) << "\",\"unit\":" << rec.unit
       << ",\"detail\":\"" << json_escape(rec.detail) << "\"}";
  }
  os << ']';

  os << ",\"trace_dropped\":" << trace_dropped() << ",\"trace\":[";
  const std::vector<SpanNode> trace = take_trace();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i) os << ',';
    append_span_json(os, trace[i]);
  }
  os << "]}";
  return os.str();
}

std::string Report::csv() const {
  std::ostringstream os;
  const std::vector<std::string> columns = column_order(records_);
  for (std::size_t c = 0; c < columns.size(); ++c)
    os << (c ? "," : "") << csv_escape(columns[c]);
  os << '\n';
  for (const Record& r : records_) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const Value* v = r.find(columns[c]);
      os << (c ? "," : "") << (v == nullptr ? "" : csv_escape(display_value(*v, true)));
    }
    os << '\n';
  }
  return os.str();
}

bool Report::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  const bool as_csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  out << (as_csv ? csv() : json());
  if (!as_csv) out << '\n';
  return static_cast<bool>(out);
}

bool Report::outputs_writable(std::string* error) const {
  for (const std::string* path : {&out_path_, &trace_path_}) {
    if (path->empty()) continue;
    // Append mode: creates a missing file but never truncates an artifact
    // that a failed run would then have destroyed.
    std::ofstream probe(*path, std::ios::app);
    if (!probe) {
      if (error != nullptr) *error = "cannot open " + *path + " for writing";
      return false;
    }
  }
  return true;
}

int Report::write_artifacts() const {
  if (!out_path_.empty()) {
    if (!write(out_path_)) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n", out_path_.c_str());
      return 2;
    }
    std::fprintf(stderr, "metrics written to %s\n", out_path_.c_str());
  }
  if (!trace_path_.empty()) {
    const TraceSnapshot snap = trace_sink().take();
    // The rollup is both embedded in the artifact and printed here — the
    // human-readable flame summary of where the run's wall time went.
    const std::vector<TraceRollupRow> rollup = trace_rollup(snap);
    if (!rollup.empty()) {
      std::fprintf(stdout, "trace rollup:%33s %12s %12s %12s\n", "count", "total_ms",
                   "self_ms", "max_ms");
      for (const TraceRollupRow& row : rollup)
        std::fprintf(stdout, "  %-40s %4llu %12.3f %12.3f %12.3f\n", row.name.c_str(),
                     static_cast<unsigned long long>(row.count), row.total_ms,
                     row.self_ms, row.max_ms);
    }
    std::ofstream trace_file(trace_path_);
    bool ok = static_cast<bool>(trace_file);
    if (ok) {
      trace_file << chrome_trace_json(snap) << '\n';
      ok = static_cast<bool>(trace_file);
    }
    if (!ok) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", trace_path_.c_str());
      return 2;
    }
    std::fprintf(stderr, "trace written to %s (%zu events, %llu dropped)\n",
                 trace_path_.c_str(), snap.events.size(),
                 static_cast<unsigned long long>(snap.dropped));
  }
  return 0;
}

int Report::finish(std::FILE* out) {
  print_table(out);
  for (const std::string& line : notes_) std::fprintf(out, "%s\n", line.c_str());
  return write_artifacts();
}

StopwatchMs::StopwatchMs()
    : start_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

double StopwatchMs::elapsed() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return static_cast<double>(now - start_ns_) / 1e6;
}

}  // namespace lcert::obs
