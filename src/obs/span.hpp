// RAII phase spans: LCERT_SPAN("prover/assign") opens a named span that
// closes at scope exit, recording wall time and the deltas of every counter
// that moved while it was open. Spans nest per thread (a span opened inside
// another becomes its child); completed roots accumulate in a process-wide
// trace that obs::Report serializes next to the metrics snapshot.
//
// Spans are for phases, not hot loops: closing one takes a counters
// snapshot (a mutex and a pass over the registered counters), which is noise
// at the granularity of "the prover ran" and poison inside a per-vertex
// loop. When the registry is disabled a span is two relaxed loads.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lcert::obs {

/// One completed span. counter_deltas holds only counters that changed.
struct SpanNode {
  std::string name;
  double wall_ms = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  std::vector<SpanNode> children;
};

class Span {
 public:
  explicit Span(std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  bool traced_ = false;        ///< begin/end also emitted to the trace sink
  std::uint32_t trace_name_id_ = 0;
};

/// Completed root spans of every thread, in completion order; clears the
/// trace. Roots beyond an internal cap are dropped (counted, not stored) so
/// a bench loop cannot grow the trace without bound.
std::vector<SpanNode> take_trace();

/// Number of root spans dropped since the last take_trace().
std::uint64_t trace_dropped();

#define LCERT_OBS_CAT2(a, b) a##b
#define LCERT_OBS_CAT(a, b) LCERT_OBS_CAT2(a, b)
/// Opens a span for the rest of the enclosing scope.
#define LCERT_SPAN(name) ::lcert::obs::Span LCERT_OBS_CAT(lcert_obs_span_, __LINE__)(name)

}  // namespace lcert::obs
