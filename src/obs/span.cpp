#include "src/obs/span.hpp"

#include <chrono>
#include <map>
#include <mutex>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace lcert::obs {

namespace {

using Clock = std::chrono::steady_clock;

// Bench loops open thousands of spans; past this many roots the trace stops
// growing and only counts what it dropped.
constexpr std::size_t kMaxTraceRoots = 4096;

struct PendingSpan {
  SpanNode node;
  Clock::time_point start;
  std::map<std::string, std::uint64_t> counters_before;
};

// Per-thread stack of open spans. Worker threads get their own stacks, so a
// span opened inside a parallel_for callback nests under nothing and becomes
// its own root — by design: the trace reflects who did the work.
thread_local std::vector<PendingSpan> t_open_spans;

std::mutex g_trace_mutex;
std::vector<SpanNode> g_trace;
std::uint64_t g_trace_dropped = 0;

}  // namespace

Span::Span(std::string name) {
  // The timeline sees every span whether or not metrics are on: the trace
  // sink has its own enable gate and its own (lock-free) buffers.
  if (trace_enabled()) {
    traced_ = true;
    trace_name_id_ = trace_sink().name_id(name);
    trace_sink().emit(trace_name_id_, TraceEventKind::kSpanBegin, 0, 0);
  }
  if (!registry().enabled()) return;
  active_ = true;
  PendingSpan pending;
  pending.node.name = std::move(name);
  pending.counters_before = registry().counters_snapshot();
  pending.start = Clock::now();  // last: exclude the snapshot from the timing
  t_open_spans.push_back(std::move(pending));
}

Span::~Span() {
  if (traced_) trace_sink().emit(trace_name_id_, TraceEventKind::kSpanEnd, 0, 0);
  if (!active_ || t_open_spans.empty()) return;
  PendingSpan pending = std::move(t_open_spans.back());
  t_open_spans.pop_back();
  pending.node.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - pending.start).count();
  for (const auto& [name, after] : registry().counters_snapshot()) {
    const auto it = pending.counters_before.find(name);
    const std::uint64_t before = it == pending.counters_before.end() ? 0 : it->second;
    if (after != before) pending.node.counter_deltas.emplace_back(name, after - before);
  }
  if (!t_open_spans.empty()) {
    t_open_spans.back().node.children.push_back(std::move(pending.node));
    return;
  }
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  if (g_trace.size() < kMaxTraceRoots)
    g_trace.push_back(std::move(pending.node));
  else
    ++g_trace_dropped;
}

std::vector<SpanNode> take_trace() {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  std::vector<SpanNode> out = std::move(g_trace);
  g_trace.clear();
  g_trace_dropped = 0;
  return out;
}

std::uint64_t trace_dropped() {
  std::lock_guard<std::mutex> lock(g_trace_mutex);
  return g_trace_dropped;
}

}  // namespace lcert::obs
