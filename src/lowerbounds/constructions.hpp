// The two instance families used by the paper's lower bounds.
//
// FpfAutomorphismFamily (Appendix E.2, Theorem 2.3): V_alpha = {alpha},
// V_beta = {beta}, E_P the path a - alpha - beta - b, and injections from
// strings to rooted trees of height <= 3 hung at a and b, padded so both
// sides always have the same vertex count. G(s_A, s_B) has a fixed-point-free
// automorphism iff the two trees are isomorphic iff s_A == s_B: with equal
// side sizes the only balanced edge is (alpha, beta), every automorphism
// stabilizes the center, and a fixed-point-free one must swap the halves.
//
// TreedepthFamily (Section 7.3, Theorem 2.5): two layers of n disjoint paths
// (V_A^j[i], V_alpha^j[i], V_beta^j[i], V_B^j[i]), an apex u complete to
// V_alpha, and private matchings f(s_A) between V_A^1, V_A^2 and f(s_B)
// between V_B^1, V_B^2, where f unranks a permutation (ell = floor(log2 n!)).
// Lemma 7.3: treedepth 5 when the matchings are equal, >= 6 otherwise.
#pragma once

#include <cstddef>
#include <optional>

#include "src/graph/rooted_tree.hpp"
#include "src/lowerbounds/framework.hpp"

namespace lcert {

class FpfAutomorphismFamily final : public CcFamily {
 public:
  explicit FpfAutomorphismFamily(std::size_t ell);

  std::string name() const override { return "fpf-automorphism-family"; }
  std::size_t string_length() const override { return ell_; }
  std::size_t boundary_size() const override { return 2; }
  CcInstance build(const std::vector<bool>& s_a, const std::vector<bool>& s_b) const override;

  /// Vertices per instance (fixed thanks to padding).
  std::size_t instance_size() const;

 private:
  std::size_t ell_;
};

class TreedepthFamily final : public CcFamily {
 public:
  /// `n`: matching size (>= 2). ell = floor(log2(n!)).
  /// `subdivisions`: the paper's extension to thresholds k > 5 — each corner
  /// edge (V_A^j[i], V_alpha^j[i]) and (V_beta^j[i], V_B^j[i]) is subdivided
  /// `subdivisions` times, lengthening the cycles from 8 to 8+4*subdivisions,
  /// which raises the yes/no treedepth threshold without touching the rest of
  /// the argument (Section 7.3, final paragraph).
  explicit TreedepthFamily(std::size_t n, std::size_t subdivisions = 0);

  std::string name() const override { return "treedepth-family"; }
  std::size_t string_length() const override { return ell_; }
  /// V_alpha + V_beta + the apex u.
  std::size_t boundary_size() const override { return 4 * n_ + 1; }
  CcInstance build(const std::vector<bool>& s_a, const std::vector<bool>& s_b) const override;

  std::size_t matching_size() const noexcept { return n_; }
  /// 8n + 1 vertices plus 4n per subdivision round.
  std::size_t instance_size() const noexcept {
    return 8 * n_ + 1 + 4 * n_ * subdivisions_;
  }

  /// Treedepth of yes-instances: 1 (apex) + td(C_{8 + 4*subdivisions}).
  std::size_t yes_treedepth() const noexcept;

  /// The witness elimination tree for a yes-instance (u as the root, an
  /// optimal model per cycle below); nullopt on no-instances.
  std::optional<RootedTree> witness_model(const Graph& g) const;

 private:
  std::size_t n_;
  std::size_t subdivisions_;
  std::size_t ell_;
};

}  // namespace lcert
