// The two-party nondeterministic communication framework of Section 7.1.
//
// A family maps string pairs (s_A, s_B) to graphs G(s_A, s_B) whose vertex
// set splits into V_A | V_alpha | V_beta | V_B such that Alice's private
// edges touch only V_A and Bob's only V_B, and whose fixed part E_P uses only
// the five allowed slabs. V_alpha + V_beta (the *boundary*) carry IDs 1..r.
//
// Proposition 7.2: if P holds on G(s_A, s_B) iff s_A == s_B, then any scheme
// for P needs Omega(ell / r) bits, by turning the scheme into an EQUALITY
// protocol whose certificate is the boundary's certificates.
//
// The executable counterpart of that proof is the *cut-and-plug auditor*:
// honest certificates for G(s,s) and G(s',s') whose boundary restrictions
// collide splice into a full accepting assignment for the no-instance
// G(s, s'), because Alice-side views are independent of Bob's string. When
// certificates are shorter than log2(#strings)/r, the pigeonhole guarantees a
// collision — the auditor finds it and returns the forged assignment.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/cert/scheme.hpp"
#include "src/graph/graph.hpp"

namespace lcert {

enum class CcSide : std::uint8_t { kAlice, kAlphaBoundary, kBetaBoundary, kBob };

struct CcInstance {
  Graph graph;
  std::vector<CcSide> side;  ///< per vertex

  std::vector<Vertex> boundary() const;
  /// Vertices Alice simulates: V_A + V_alpha.
  std::vector<Vertex> alice_vertices() const;
  std::vector<Vertex> bob_vertices() const;
};

/// A reduction family in the sense of Section 7.1.
class CcFamily {
 public:
  virtual ~CcFamily() = default;
  virtual std::string name() const = 0;
  virtual std::size_t string_length() const = 0;  ///< ell
  virtual std::size_t boundary_size() const = 0;  ///< r
  virtual CcInstance build(const std::vector<bool>& s_a, const std::vector<bool>& s_b) const = 0;
};

/// Checks the structural promise of the framework on an instance: no
/// Alice-side vertex is adjacent to V_B, no Bob-side vertex to V_A, boundary
/// IDs are 1..r.
bool check_family_structure(const CcFamily& family, const CcInstance& instance);

/// The heart of Proposition 7.2, as a testable invariant: the radius-1 view
/// of every Alice-side vertex in G(s_a, x) is the same graph-view for every
/// x (degrees and neighbor IDs), and symmetrically for Bob.
bool alice_views_independent_of_bob(const CcFamily& family, const std::vector<bool>& s_a,
                                    const std::vector<bool>& x1, const std::vector<bool>& x2);

struct CutAndPlugResult {
  std::vector<bool> s_a, s_b;                ///< the colliding strings
  std::vector<Certificate> forged;           ///< accepting certs on G(s_a, s_b)
};

/// Runs the pigeonhole attack over `strings` (pairwise distinct): collects
/// honest boundary certificates of the diagonal instances G(s, s) and, upon a
/// boundary collision, splices and returns the forged assignment for the
/// off-diagonal no-instance (verified accepted before returning). Returns
/// nullopt if all sampled boundaries are distinct (the scheme's certificates
/// are too long for the pigeonhole at this sample size).
std::optional<CutAndPlugResult> cut_and_plug_attack(const Scheme& scheme,
                                                    const CcFamily& family,
                                                    const std::vector<std::vector<bool>>& strings);

/// Max boundary certificate bits over the diagonal instances of `strings` —
/// the quantity Proposition 7.2 lower-bounds by log2(#strings)/r.
std::size_t max_boundary_bits(const Scheme& scheme, const CcFamily& family,
                              const std::vector<std::vector<bool>>& strings);

}  // namespace lcert
