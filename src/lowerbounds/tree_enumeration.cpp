#include "src/lowerbounds/tree_enumeration.hpp"

#include <cmath>
#include <stdexcept>

namespace lcert {

namespace {

// T[h][n] = # rooted trees, n vertices, height <= h. T[h] is obtained from
// T[h-1] by an Euler transform (a tree of height <= h is a root plus a
// multiset of height <= h-1 subtrees):
//   M(0) = 1;  m * M(m) = sum_{i=1..m} c(i) * M(m - i),  c(i) = sum_{d|i} d*T[h-1][d]
//   T[h][n] = M(n - 1).
std::vector<BigNat> euler_multiset_counts(const std::vector<BigNat>& family,
                                          std::size_t max_total) {
  // c(i) = sum over divisors d of i of d * family[d].
  std::vector<BigNat> c(max_total + 1, BigNat(0));
  for (std::size_t d = 1; d <= max_total && d < family.size(); ++d) {
    if (family[d].is_zero()) continue;
    const BigNat weighted = BigNat(d) * family[d];
    for (std::size_t i = d; i <= max_total; i += d) c[i] += weighted;
  }
  std::vector<BigNat> m(max_total + 1, BigNat(0));
  m[0] = BigNat(1);
  for (std::size_t total = 1; total <= max_total; ++total) {
    BigNat acc(0);
    for (std::size_t i = 1; i <= total; ++i) acc += c[i] * m[total - i];
    BigNat q, rem;
    BigNat::div_mod(acc, BigNat(total), q, rem);
    if (!rem.is_zero()) throw std::logic_error("euler_multiset_counts: non-integral count");
    m[total] = std::move(q);
  }
  return m;
}

}  // namespace

BigNat count_rooted_trees(std::size_t n, std::size_t height) {
  if (n == 0) return BigNat(0);
  std::vector<BigNat> current(n + 1, BigNat(0));
  current[1] = BigNat(1);  // height 0: single vertex
  for (std::size_t h = 1; h <= height; ++h) {
    const auto multisets = euler_multiset_counts(current, n - 1);
    std::vector<BigNat> next(n + 1, BigNat(0));
    for (std::size_t size = 1; size <= n; ++size) next[size] = multisets[size - 1];
    current = std::move(next);
  }
  return current[n];
}

double log2_tree_count(std::size_t n, std::size_t height) {
  const BigNat count = count_rooted_trees(n, height);
  if (count.is_zero()) return -std::numeric_limits<double>::infinity();
  // log2 via bit length and the top 62 bits.
  const std::size_t bits = count.bit_length();
  if (bits <= 62) return std::log2(static_cast<double>(count.to_u64()));
  std::size_t shift = bits - 62;
  BigNat shifted = count;
  std::uint32_t dummy = 0;
  while (shift > 0) {
    const std::size_t step = std::min<std::size_t>(shift, 31);
    shifted = shifted.div_u32(std::uint32_t{1} << step, dummy);
    shift -= step;
  }
  return std::log2(static_cast<double>(shifted.to_u64())) + static_cast<double>(bits - 62);
}

RootedTree tree_from_string(const std::vector<bool>& s) {
  // Root with one "broom" child per position i (0-based): a hub attached to
  // the root carrying i+1 pendant leaves, plus, when s[i] is set, one pendant
  // path of length 2 (giving height 3). Brooms for distinct (i, s_i) are
  // pairwise non-isomorphic: the leaf count identifies i, the path marks s_i.
  std::vector<std::size_t> parent{RootedTree::kNoParent};
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::size_t hub = parent.size();
    parent.push_back(0);
    for (std::size_t l = 0; l <= i; ++l) parent.push_back(hub);
    if (s[i]) {
      const std::size_t mid = parent.size();
      parent.push_back(hub);
      parent.push_back(mid);
    }
  }
  return RootedTree(std::move(parent));
}

std::size_t tree_from_string_size(std::size_t ell) {
  // 1 (root) + per position: hub + (i+1) leaves + up to 2 path vertices.
  std::size_t n = 1;
  for (std::size_t i = 0; i < ell; ++i) n += 2 + i + 2;  // worst case s_i = 1
  return n;
}

std::vector<std::size_t> unrank_permutation(const BigNat& rank, std::size_t n) {
  if (n == 0) throw std::invalid_argument("unrank_permutation: n == 0");
  // Factorial number system: digit[j] in [0, n-1-j]; digit[n-1] == 0.
  BigNat rest = rank;
  std::vector<std::size_t> digit(n, 0);
  for (std::size_t radix = 2; radix <= n; ++radix) {
    BigNat q, r;
    BigNat::div_mod(rest, BigNat(static_cast<std::uint64_t>(radix)), q, r);
    digit[n - radix] = static_cast<std::size_t>(r.to_u64());
    rest = std::move(q);
  }
  if (!rest.is_zero()) throw std::invalid_argument("unrank_permutation: rank >= n!");

  // Pick the digit-th unused element per position.
  std::vector<std::size_t> unused(n);
  for (std::size_t i = 0; i < n; ++i) unused[i] = i;
  std::vector<std::size_t> perm(n);
  for (std::size_t j = 0; j < n; ++j) {
    perm[j] = unused[digit[j]];
    unused.erase(unused.begin() + static_cast<std::ptrdiff_t>(digit[j]));
  }
  return perm;
}

BigNat bignat_from_bits(const std::vector<bool>& bits) {
  BigNat out(0);
  for (bool b : bits) {
    out *= BigNat(2);
    if (b) out += BigNat(1);
  }
  return out;
}

}  // namespace lcert
