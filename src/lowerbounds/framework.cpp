#include "src/lowerbounds/framework.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "src/cert/engine.hpp"

namespace lcert {

std::vector<Vertex> CcInstance::boundary() const {
  std::vector<Vertex> out;
  for (Vertex v = 0; v < side.size(); ++v)
    if (side[v] == CcSide::kAlphaBoundary || side[v] == CcSide::kBetaBoundary)
      out.push_back(v);
  return out;
}

std::vector<Vertex> CcInstance::alice_vertices() const {
  std::vector<Vertex> out;
  for (Vertex v = 0; v < side.size(); ++v)
    if (side[v] == CcSide::kAlice || side[v] == CcSide::kAlphaBoundary) out.push_back(v);
  return out;
}

std::vector<Vertex> CcInstance::bob_vertices() const {
  std::vector<Vertex> out;
  for (Vertex v = 0; v < side.size(); ++v)
    if (side[v] == CcSide::kBob || side[v] == CcSide::kBetaBoundary) out.push_back(v);
  return out;
}

bool check_family_structure(const CcFamily& family, const CcInstance& instance) {
  const Graph& g = instance.graph;
  if (instance.side.size() != g.vertex_count()) return false;
  // Forbidden adjacencies: V_A—V_B, V_A—V_beta, V_alpha—V_B.
  for (auto [u, v] : g.edges()) {
    const CcSide a = instance.side[u];
    const CcSide b = instance.side[v];
    auto bad = [](CcSide x, CcSide y) {
      return (x == CcSide::kAlice && (y == CcSide::kBob || y == CcSide::kBetaBoundary)) ||
             (x == CcSide::kAlphaBoundary && y == CcSide::kBob);
    };
    if (bad(a, b) || bad(b, a)) return false;
  }
  // Boundary IDs are 1..r.
  const auto boundary = instance.boundary();
  if (boundary.size() != family.boundary_size()) return false;
  std::vector<VertexId> ids;
  for (Vertex v : boundary) ids.push_back(g.id(v));
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i)
    if (ids[i] != i + 1) return false;
  return true;
}

namespace {

// Degree + sorted neighbor-ID profile of a vertex, keyed by its own ID.
std::map<VertexId, std::vector<VertexId>> view_profiles(const Graph& g,
                                                        const std::vector<Vertex>& vertices) {
  std::map<VertexId, std::vector<VertexId>> out;
  for (Vertex v : vertices) {
    std::vector<VertexId> nbrs;
    for (Vertex w : g.neighbors(v)) nbrs.push_back(g.id(w));
    std::sort(nbrs.begin(), nbrs.end());
    out[g.id(v)] = std::move(nbrs);
  }
  return out;
}

}  // namespace

bool alice_views_independent_of_bob(const CcFamily& family, const std::vector<bool>& s_a,
                                    const std::vector<bool>& x1, const std::vector<bool>& x2) {
  const CcInstance g1 = family.build(s_a, x1);
  const CcInstance g2 = family.build(s_a, x2);
  return view_profiles(g1.graph, g1.alice_vertices()) ==
         view_profiles(g2.graph, g2.alice_vertices());
}

std::optional<CutAndPlugResult> cut_and_plug_attack(
    const Scheme& scheme, const CcFamily& family,
    const std::vector<std::vector<bool>>& strings) {
  struct Diagonal {
    std::vector<Certificate> certs;
    std::vector<std::pair<VertexId, Certificate>> boundary;  // sorted by ID
  };
  std::vector<Diagonal> diagonals(strings.size());

  for (std::size_t i = 0; i < strings.size(); ++i) {
    const CcInstance inst = family.build(strings[i], strings[i]);
    const auto certs = scheme.assign(inst.graph);
    if (!certs.has_value())
      throw std::logic_error("cut_and_plug_attack: prover failed on a diagonal instance");
    diagonals[i].certs = *certs;
    for (Vertex v : inst.boundary())
      diagonals[i].boundary.emplace_back(inst.graph.id(v), (*certs)[v]);
    std::sort(diagonals[i].boundary.begin(), diagonals[i].boundary.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  for (std::size_t i = 0; i < strings.size(); ++i) {
    for (std::size_t j = i + 1; j < strings.size(); ++j) {
      if (diagonals[i].boundary != diagonals[j].boundary) continue;
      // Boundary collision: splice certificates on the no-instance
      // G(strings[i], strings[j]). Certificates are carried over by vertex
      // ID: Alice-side from diagonal i, Bob-side (and boundary) from j —
      // boundary certs agree anyway.
      const CcInstance cross = family.build(strings[i], strings[j]);
      const CcInstance diag_i = family.build(strings[i], strings[i]);
      const CcInstance diag_j = family.build(strings[j], strings[j]);

      auto certs_by_id = [](const CcInstance& inst, const std::vector<Certificate>& certs) {
        std::map<VertexId, Certificate> out;
        for (Vertex v = 0; v < inst.graph.vertex_count(); ++v)
          out[inst.graph.id(v)] = certs[v];
        return out;
      };
      const auto from_i = certs_by_id(diag_i, diagonals[i].certs);
      const auto from_j = certs_by_id(diag_j, diagonals[j].certs);

      std::vector<Certificate> forged(cross.graph.vertex_count());
      for (Vertex v = 0; v < cross.graph.vertex_count(); ++v) {
        const VertexId id = cross.graph.id(v);
        const CcSide side = cross.side[v];
        const bool alice_side =
            side == CcSide::kAlice || side == CcSide::kAlphaBoundary;
        const auto& table = alice_side ? from_i : from_j;
        const auto it = table.find(id);
        if (it == table.end())
          throw std::logic_error("cut_and_plug_attack: ID mismatch across instances");
        forged[v] = it->second;
      }
      // Only accept/reject matters here: early-exit on the first rejecting
      // vertex instead of sweeping the whole splice.
      if (verify_assignment(scheme, cross.graph, forged,
                            RunOptions{/*num_threads=*/0, /*stop_at_first_reject=*/true})
              .all_accept)
        return CutAndPlugResult{strings[i], strings[j], std::move(forged)};
      // A collision that fails to splice would contradict Proposition 7.2's
      // view-independence; surface it loudly.
      throw std::logic_error("cut_and_plug_attack: boundary collision did not splice");
    }
  }
  return std::nullopt;
}

std::size_t max_boundary_bits(const Scheme& scheme, const CcFamily& family,
                              const std::vector<std::vector<bool>>& strings) {
  std::size_t out = 0;
  for (const auto& s : strings) {
    const CcInstance inst = family.build(s, s);
    const auto certs = scheme.assign(inst.graph);
    if (!certs.has_value())
      throw std::logic_error("max_boundary_bits: prover failed on a diagonal instance");
    for (Vertex v : inst.boundary()) out = std::max(out, (*certs)[v].bit_size);
  }
  return out;
}

}  // namespace lcert
