// Counting and encoding machinery behind Theorem 2.3.
//
// The lower bound needs (a) the *count* of non-isomorphic rooted trees of
// height <= k on n vertices — [42] shows its logarithm is ~ (pi^2/6) n /
// log^(k-2) n, which gives the Omega~(n) bound through Proposition 7.2 — and
// (b) an *injection* from bit strings to such trees to build gadget
// instances. The count is computed exactly with BigNat via height-stratified
// Euler transforms; the executable injection is a simpler Theta(sqrt(n))-rate
// encoding (index-marked brooms), which suffices for the gadget: the bound
// curve in the bench uses the exact count, the instances only need
// injectivity (see DESIGN.md §5).
#pragma once

#include <cstddef>
#include <vector>

#include "src/graph/rooted_tree.hpp"
#include "src/util/bignum.hpp"

namespace lcert {

/// Number of non-isomorphic rooted trees with exactly `n` vertices and height
/// (edge count on a root-leaf path) at most `height`.
BigNat count_rooted_trees(std::size_t n, std::size_t height);

/// log2(count) as a double (for bound curves).
double log2_tree_count(std::size_t n, std::size_t height);

/// Injective map from bit strings to rooted trees of height <= 3. Trees for
/// distinct strings are non-isomorphic. Vertex count is 1 + sum_i (2 + i + s_i).
RootedTree tree_from_string(const std::vector<bool>& s);

/// Number of vertices tree_from_string produces for strings of length ell.
std::size_t tree_from_string_size(std::size_t ell);

/// Unranks a permutation of {0..n-1} in the factorial number system;
/// rank must be < n!. Injective: distinct ranks give distinct permutations.
/// Used by the Theorem 2.5 gadget (strings -> matchings).
std::vector<std::size_t> unrank_permutation(const BigNat& rank, std::size_t n);

/// Packs a bit string into a BigNat (MSB first).
BigNat bignat_from_bits(const std::vector<bool>& bits);

}  // namespace lcert
