#include "src/lowerbounds/constructions.hpp"

#include <stdexcept>

#include "src/lowerbounds/tree_enumeration.hpp"
#include "src/treedepth/exact.hpp"
#include "src/util/bignum.hpp"

namespace lcert {

// ---------------------------------------------------------------------------
// FpfAutomorphismFamily.
// ---------------------------------------------------------------------------

FpfAutomorphismFamily::FpfAutomorphismFamily(std::size_t ell) : ell_(ell) {
  if (ell == 0) throw std::invalid_argument("FpfAutomorphismFamily: ell must be >= 1");
}

namespace {

// Padded encoding tree: tree_from_string plus plain leaf children of the root
// so that every string of length ell yields the same vertex count.
RootedTree padded_string_tree(const std::vector<bool>& s) {
  const RootedTree base = tree_from_string(s);
  std::size_t pad = 0;
  for (bool b : s)
    if (!b) pad += 2;  // each unset bit saved two path vertices
  std::vector<std::size_t> parent(base.size() + pad);
  for (std::size_t v = 0; v < base.size(); ++v) parent[v] = base.parent(v);
  for (std::size_t i = 0; i < pad; ++i) parent[base.size() + i] = base.root();
  return RootedTree(std::move(parent));
}

}  // namespace

std::size_t FpfAutomorphismFamily::instance_size() const {
  return 2 * (tree_from_string_size(ell_) + 1);
}

CcInstance FpfAutomorphismFamily::build(const std::vector<bool>& s_a,
                                        const std::vector<bool>& s_b) const {
  if (s_a.size() != ell_ || s_b.size() != ell_)
    throw std::invalid_argument("FpfAutomorphismFamily::build: wrong string length");
  const RootedTree ta = padded_string_tree(s_a);
  const RootedTree tb = padded_string_tree(s_b);
  const std::size_t m = ta.size();  // == tb.size() by padding

  // Layout: 0 = alpha, 1 = beta, [2, 2+m) = Alice tree, [2+m, 2+2m) = Bob tree.
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.emplace_back(0, 1);
  edges.emplace_back(0, 2 + ta.root());
  edges.emplace_back(1, 2 + m + tb.root());
  for (std::size_t v = 0; v < m; ++v) {
    if (ta.parent(v) != RootedTree::kNoParent) edges.emplace_back(2 + v, 2 + ta.parent(v));
    if (tb.parent(v) != RootedTree::kNoParent)
      edges.emplace_back(2 + m + v, 2 + m + tb.parent(v));
  }
  Graph g(2 + 2 * m, edges);

  // IDs: boundary gets 1..2, the sides get fixed consecutive IDs.
  std::vector<VertexId> ids(g.vertex_count());
  ids[0] = 1;
  ids[1] = 2;
  for (std::size_t v = 2; v < g.vertex_count(); ++v) ids[v] = static_cast<VertexId>(v + 1);
  g.set_ids(std::move(ids));

  CcInstance out;
  out.graph = std::move(g);
  out.side.assign(out.graph.vertex_count(), CcSide::kAlice);
  out.side[0] = CcSide::kAlphaBoundary;
  out.side[1] = CcSide::kBetaBoundary;
  for (std::size_t v = 2 + m; v < out.graph.vertex_count(); ++v) out.side[v] = CcSide::kBob;
  return out;
}

// ---------------------------------------------------------------------------
// TreedepthFamily.
// ---------------------------------------------------------------------------

TreedepthFamily::TreedepthFamily(std::size_t n, std::size_t subdivisions)
    : n_(n), subdivisions_(subdivisions) {
  if (n < 2) throw std::invalid_argument("TreedepthFamily: n must be >= 2");
  ell_ = static_cast<std::size_t>(BigNat::factorial(n).bit_length() - 1);  // floor(log2 n!)
}

std::size_t TreedepthFamily::yes_treedepth() const noexcept {
  return 1 + treedepth_of_cycle(8 + 4 * subdivisions_);
}

namespace {

// Vertex layout for TreedepthFamily on matching size n:
//   0:            the apex u
//   1..4n:        V_alpha^1[i], V_alpha^2[i], V_beta^1[i], V_beta^2[i]
//   4n+1..6n:     V_A^1[i], V_A^2[i]
//   6n+1..8n:     V_B^1[i], V_B^2[i]
struct Layout {
  std::size_t n;
  Vertex u() const { return 0; }
  Vertex alpha(std::size_t layer, std::size_t i) const { return 1 + (layer - 1) * n + i; }
  Vertex beta(std::size_t layer, std::size_t i) const { return 1 + 2 * n + (layer - 1) * n + i; }
  Vertex a(std::size_t layer, std::size_t i) const { return 1 + 4 * n + (layer - 1) * n + i; }
  Vertex b(std::size_t layer, std::size_t i) const { return 1 + 6 * n + (layer - 1) * n + i; }
};

}  // namespace

CcInstance TreedepthFamily::build(const std::vector<bool>& s_a,
                                  const std::vector<bool>& s_b) const {
  if (s_a.size() != ell_ || s_b.size() != ell_)
    throw std::invalid_argument("TreedepthFamily::build: wrong string length");
  const Layout L{n_};
  std::vector<std::pair<Vertex, Vertex>> edges;

  // Fixed part E_P: the 2n disjoint paths (with the corner edges subdivided
  // `subdivisions_` times to raise the threshold, per the k > 5 remark) and
  // the apex.
  std::size_t next_fresh = 8 * n_ + 1;
  auto subdivided_edge = [&](Vertex from, Vertex to) {
    Vertex cur = from;
    for (std::size_t step = 0; step < subdivisions_; ++step) {
      edges.emplace_back(cur, next_fresh);
      cur = static_cast<Vertex>(next_fresh++);
    }
    edges.emplace_back(cur, to);
  };
  for (std::size_t layer = 1; layer <= 2; ++layer) {
    for (std::size_t i = 0; i < n_; ++i) {
      subdivided_edge(L.a(layer, i), L.alpha(layer, i));
      edges.emplace_back(L.alpha(layer, i), L.beta(layer, i));
      subdivided_edge(L.beta(layer, i), L.b(layer, i));
      edges.emplace_back(L.u(), L.alpha(layer, i));
    }
  }

  // Private matchings.
  const auto pa = unrank_permutation(bignat_from_bits(s_a), n_);
  const auto pb = unrank_permutation(bignat_from_bits(s_b), n_);
  for (std::size_t i = 0; i < n_; ++i) {
    edges.emplace_back(L.a(1, i), L.a(2, pa[i]));
    edges.emplace_back(L.b(1, i), L.b(2, pb[i]));
  }

  Graph g(instance_size(), edges);
  // IDs: boundary (u, alphas, betas) = 1..4n+1 in layout order; sides follow.
  std::vector<VertexId> ids(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) ids[v] = static_cast<VertexId>(v + 1);
  g.set_ids(std::move(ids));

  CcInstance out;
  out.graph = std::move(g);
  out.side.assign(out.graph.vertex_count(), CcSide::kBob);
  out.side[L.u()] = CcSide::kAlphaBoundary;  // u behaves like V_alpha (Alice simulates it)
  for (std::size_t layer = 1; layer <= 2; ++layer)
    for (std::size_t i = 0; i < n_; ++i) {
      out.side[L.alpha(layer, i)] = CcSide::kAlphaBoundary;
      out.side[L.beta(layer, i)] = CcSide::kBetaBoundary;
      out.side[L.a(layer, i)] = CcSide::kAlice;
      out.side[L.b(layer, i)] = CcSide::kBob;
    }
  // Subdivision vertices: the first `subdivisions_` fresh vertices of each
  // corner belong to the side of that corner (A corners to Alice, B corners
  // to Bob), in the creation order of build().
  std::size_t fresh = 8 * n_ + 1;
  for (std::size_t layer = 1; layer <= 2; ++layer)
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t step = 0; step < subdivisions_; ++step)
        out.side[fresh++] = CcSide::kAlice;  // A-corner chain
      for (std::size_t step = 0; step < subdivisions_; ++step)
        out.side[fresh++] = CcSide::kBob;  // B-corner chain
    }
  return out;
}

std::optional<RootedTree> TreedepthFamily::witness_model(const Graph& g) const {
  // Components after removing the apex must be 8-cycles (equal matchings);
  // root u and hang an optimal model per component.
  const Layout L{n_};
  const std::size_t n = g.vertex_count();
  if (n != instance_size()) return std::nullopt;
  std::vector<std::size_t> parent(n, RootedTree::kNoParent);
  std::vector<bool> seen(n, false);
  seen[L.u()] = true;
  for (Vertex s = 1; s < n; ++s) {
    if (seen[s]) continue;
    std::vector<Vertex> comp{s};
    seen[s] = true;
    for (std::size_t i = 0; i < comp.size(); ++i)
      for (Vertex w : g.neighbors(comp[i]))
        if (!seen[w] && w != L.u()) {
          seen[w] = true;
          comp.push_back(w);
        }
    const std::size_t cycle_len = 8 + 4 * subdivisions_;
    if (comp.size() != cycle_len) return std::nullopt;  // not a union of cycles
    const Graph sub = g.induced(comp);
    if (sub.edge_count() != cycle_len) return std::nullopt;
    if (sub.vertex_count() > 20) return std::nullopt;  // exact solver guard
    const auto model = exact_treedepth_with_model(sub);
    if (model.treedepth > treedepth_of_cycle(cycle_len)) return std::nullopt;
    for (std::size_t i = 0; i < comp.size(); ++i) {
      const std::size_t p = model.model.parent(i);
      parent[comp[i]] = (p == RootedTree::kNoParent) ? L.u() : comp[p];
    }
  }
  return RootedTree(std::move(parent));
}

}  // namespace lcert
