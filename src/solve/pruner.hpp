// Shared pruning pass of the feasibility backends (DESIGN.md §15).
//
// Every backend except the cold-flow reference answers the per-vertex
// assignment question in two stages: first this pruner — cheap, conclusive-
// only checks lifted out of the old UopFeasibility tier 1 — then the
// backend's own decision procedure on whatever the pruner could not settle.
// The pruner's contract is exactness: kFeasible/kInfeasible must equal the
// boolean uop_assign_children_masked would return; kInconclusive says
// nothing. That is what lets four very different backends share it and still
// agree bit-for-bit (pinned by the brute-force cross-check tests and the
// solver-divergence fuzz oracle).
//
// prune() covers: unit (unconstrained) boxes, infeasible intervals, stuck
// children (no usable state), per-state supply vs lower-bound demand, and a
// Hall cut on the finitely-capped side. combinatorial() adds the exact
// subset-Hall zeta-transform (when no cap binds and at most 8 states carry
// demand) and a most-constrained-first greedy witness — the rest of the old
// greedy tier, used by the greedy and warm-flow backends but deliberately
// NOT by the SAT backend, so SAT genuinely decides the pruner's residue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/automata/presburger.hpp"

namespace lcert::solve {

enum class Verdict { kFeasible, kInfeasible, kInconclusive };

class BoxPruner {
 public:
  /// Starts a new vertex. `child_masks` must already be truncated to
  /// state_count bits (FeasibilitySolver::begin does this) and must outlive
  /// every prune()/combinatorial() call of the vertex, as must `raw_supply`
  /// (per state: children whose mask allows it, state_count entries —
  /// FeasibilitySolver computes it once per begin()).
  void begin(std::span<const std::uint64_t> child_masks, std::size_t state_count,
             std::span<const std::size_t> raw_supply);

  /// Stage 1: conclusive-only pre-checks. After kInconclusive the residual
  /// accessors below describe the prepared problem.
  Verdict prune(const IntervalBox& box);

  /// Stage 2: subset-Hall + greedy witness. Only valid immediately after
  /// prune() returned kInconclusive for the same box; mutates the residual
  /// scratch (caps/effective masks double as working state), so read the
  /// residual accessors before calling this.
  Verdict combinatorial(const IntervalBox& box);

  // --- residual problem, valid after prune() == kInconclusive (and before
  // --- combinatorial(), which consumes the scratch) -----------------------
  std::size_t child_count() const noexcept { return masks_.size(); }
  std::size_t state_count() const noexcept { return state_count_; }
  /// Per-child effective mask: feasibility mask restricted to usable states
  /// (cap > 0). Never zero after an inconclusive prune.
  std::span<const std::uint64_t> effective_masks() const noexcept { return eff_; }
  /// Per-state ceiling the flow network would use (min(hi, m); m when
  /// unbounded).
  std::span<const std::int64_t> caps() const noexcept { return cap_; }
  /// Per-state count of children able to take the state.
  std::span<const std::size_t> supply() const noexcept { return supply_; }

 private:
  std::span<const std::uint64_t> masks_;
  std::span<const std::size_t> raw_supply_;
  std::size_t state_count_ = 0;

  std::vector<std::int64_t> cap_;          ///< per state: min(hi, m), m for unbounded
  std::vector<std::uint64_t> eff_;         ///< per child: mask & usable states
  std::vector<std::size_t> supply_;        ///< per state: children able to take it
  std::vector<std::size_t> order_;         ///< children, most-constrained first
  std::vector<std::size_t> greedy_count_;  ///< per demand-subset: sum of lower bounds
  std::vector<std::size_t> hall_count_;    ///< per demand-subset histogram / zeta
  std::uint64_t slack_ = 0;                ///< states whose cap never binds
  std::uint64_t union_eff_ = 0;
  std::size_t lo_sum_ = 0;
  std::size_t confined_ = 0;  ///< children whose every usable state has cap < m
};

}  // namespace lcert::solve
