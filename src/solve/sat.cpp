#include "src/solve/sat.hpp"

namespace lcert::solve {

namespace {

constexpr std::int8_t kUnassigned = -1;

}  // namespace

void MiniCdcl::reset() {
  assign_.clear();
  clauses_.clear();
  cards_.clear();
  var_clauses_.clear();
  var_cards_.clear();
  trail_.clear();
  qhead_ = 0;
  dstack_.clear();
  trivially_unsat_ = false;
  decisions_ = 0;
}

std::size_t MiniCdcl::new_var() {
  assign_.push_back(kUnassigned);
  var_clauses_.emplace_back();
  var_cards_.emplace_back();
  return assign_.size() - 1;
}

void MiniCdcl::add_clause(std::vector<std::size_t> lits) {
  if (lits.empty()) {
    trivially_unsat_ = true;
    return;
  }
  const std::size_t index = clauses_.size();
  for (std::size_t lit : lits) var_clauses_[lit / 2].push_back(index);
  clauses_.push_back({std::move(lits), 0});
}

void MiniCdcl::add_cardinality(std::vector<std::size_t> vars, std::size_t lo,
                               std::size_t hi) {
  if (lo > vars.size()) {
    trivially_unsat_ = true;
    return;
  }
  if (lo == 0 && hi >= vars.size()) return;  // vacuous
  const std::size_t index = cards_.size();
  for (std::size_t v : vars) var_cards_[v].push_back(index);
  const std::size_t n = vars.size();
  cards_.push_back({std::move(vars), lo, hi > n ? n : hi, 0, n});
}

bool MiniCdcl::enqueue(std::size_t var, bool value) {
  if (assign_[var] != kUnassigned) return assign_[var] == (value ? 1 : 0);
  assign_[var] = value ? 1 : 0;
  trail_.push_back(var);
  return true;
}

bool MiniCdcl::propagate() {
  while (qhead_ < trail_.size()) {
    const std::size_t var = trail_[qhead_++];
    const bool value = assign_[var] == 1;

    // Counter pass first, unconditionally: unassign_from() undoes every
    // counter of a var below the frontier, so a conflict must never abort
    // with this var's constraints half-counted.
    for (std::size_t ci : var_clauses_[var]) {
      Clause& c = clauses_[ci];
      // A clause may mention the variable with both polarities.
      for (std::size_t lit : c.lits)
        if (lit / 2 == var && (lit % 2 == 0) != value) ++c.n_false;
    }
    for (std::size_t gi : var_cards_[var]) {
      Card& c = cards_[gi];
      --c.n_unassigned;
      if (value) ++c.n_true;
    }

    // Check/propagate pass. enqueue() touches no counters, so an early
    // return here leaves everything consistent.
    for (std::size_t ci : var_clauses_[var]) {
      const Clause& c = clauses_[ci];
      if (c.n_false == c.lits.size()) return false;
      if (c.n_false + 1 == c.lits.size()) {
        // Unit or already satisfied: find the one non-false literal.
        for (std::size_t lit : c.lits) {
          const std::int8_t a = assign_[lit / 2];
          const bool is_pos = lit % 2 == 0;
          const bool falsified = a != kUnassigned && (a == 1) != is_pos;
          if (falsified) continue;
          if (a == kUnassigned && !enqueue(lit / 2, is_pos)) return false;
          break;
        }
      }
    }
    for (std::size_t gi : var_cards_[var]) {
      const Card& c = cards_[gi];
      if (c.n_true > c.hi) return false;
      if (c.n_true + c.n_unassigned < c.lo) return false;
      if (c.n_unassigned > 0 && c.n_true == c.hi) {
        for (std::size_t v : c.vars)
          if (assign_[v] == kUnassigned && !enqueue(v, false)) return false;
      } else if (c.n_unassigned > 0 && c.n_true + c.n_unassigned == c.lo) {
        for (std::size_t v : c.vars)
          if (assign_[v] == kUnassigned && !enqueue(v, true)) return false;
      }
    }
  }
  return true;
}

void MiniCdcl::unassign_from(std::size_t trail_pos) {
  // Everything below trail_pos was fully propagated before the decision at
  // trail_pos was made, so the frontier rewinds exactly there. Constraint
  // counters are undone symmetrically to propagate(); entries past the old
  // qhead_ never touched them.
  for (std::size_t p = trail_.size(); p > trail_pos; --p) {
    const std::size_t var = trail_[p - 1];
    if (p - 1 < qhead_) {
      const bool value = assign_[var] == 1;
      for (std::size_t ci : var_clauses_[var]) {
        Clause& c = clauses_[ci];
        for (std::size_t lit : c.lits)
          if (lit / 2 == var && (lit % 2 == 0) != value) --c.n_false;
      }
      for (std::size_t gi : var_cards_[var]) {
        Card& c = cards_[gi];
        ++c.n_unassigned;
        if (value) --c.n_true;
      }
    }
    assign_[var] = kUnassigned;
  }
  trail_.resize(trail_pos);
  qhead_ = trail_pos;
}

bool MiniCdcl::solve() {
  if (trivially_unsat_) return false;
  decisions_ = 0;

  // Root-level forcings from the constraint structure itself: unit clauses,
  // lo == size / hi == 0 cardinalities.
  for (const Clause& c : clauses_)
    if (c.lits.size() == 1 && !enqueue(c.lits[0] / 2, c.lits[0] % 2 == 0))
      return false;
  for (const Card& c : cards_) {
    if (c.lo == c.vars.size())
      for (std::size_t v : c.vars)
        if (!enqueue(v, true)) return false;
    if (c.hi == 0)
      for (std::size_t v : c.vars)
        if (!enqueue(v, false)) return false;
  }
  if (!propagate()) return false;

  while (true) {
    // Deterministic branching: lowest-indexed unassigned variable, true
    // first. Encoders order variables most-constrained-first so this is a
    // real heuristic, not just a tie-break.
    std::size_t var = SIZE_MAX;
    for (std::size_t v = 0; v < assign_.size(); ++v)
      if (assign_[v] == kUnassigned) {
        var = v;
        break;
      }
    if (var == SIZE_MAX) return true;  // full model

    ++decisions_;
    dstack_.push_back({trail_.size(), var, false});
    enqueue(var, true);

    while (!propagate()) {
      // Chronological backtracking: pop to the deepest untried polarity.
      bool recovered = false;
      while (!dstack_.empty()) {
        const Decision d = dstack_.back();
        dstack_.pop_back();
        unassign_from(d.trail_pos);
        if (d.flipped) continue;  // both polarities failed, keep popping
        dstack_.push_back({trail_.size(), d.var, true});
        enqueue(d.var, false);
        recovered = true;
        break;
      }
      if (!recovered) return false;  // search space exhausted
    }
  }
}

}  // namespace lcert::solve
