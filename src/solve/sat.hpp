// MiniCdcl: a self-contained propositional solver for cardinality problems
// (DESIGN.md §15). No external dependencies by design — the container rule
// is "no new packages", and the problems are tiny (<= 64 children x 64
// states), so a chronological DPLL with counting propagation over native
// cardinality constraints beats dragging in a real CDCL solver.
//
// Constraint forms:
//   clause      OR of literals (var or negation);
//   cardinality lo <= (number of true vars among a set) <= hi, propagated by
//               counters (true/unassigned per constraint): hi reached =>
//               remaining vars forced false, lo only reachable by taking
//               every unassigned var => remaining forced true.
//
// Search: deterministic — branch on the lowest-indexed unassigned variable,
// true first; conflicts backtrack chronologically to the deepest decision
// with an untried polarity. No clause learning, no restarts, no heuristics
// that could make two runs differ: for a fixed problem the trail, the model
// and the answer are always the same (a determinism-contract requirement,
// not just a simplification).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lcert::solve {

class MiniCdcl {
 public:
  /// Clears every variable and constraint; keeps buffer capacity.
  void reset();

  /// Adds a variable (initially unassigned); returns its index.
  std::size_t new_var();

  /// Literal encoding for clauses: 2*var for the positive literal,
  /// 2*var + 1 for the negation.
  static std::size_t pos(std::size_t var) { return 2 * var; }
  static std::size_t neg(std::size_t var) { return 2 * var + 1; }

  /// Adds a disjunction of literals. An empty clause makes the instance
  /// trivially unsatisfiable.
  void add_clause(std::vector<std::size_t> lits);

  /// Adds lo <= #{v in vars : v true} <= hi over distinct variables.
  /// hi >= vars.size() means "no upper bound".
  void add_cardinality(std::vector<std::size_t> vars, std::size_t lo, std::size_t hi);

  /// Decides satisfiability; deterministic. May be called once per
  /// reset()+encode cycle.
  bool solve();

  /// Model access after solve() returned true.
  bool value(std::size_t var) const { return assign_[var] == 1; }

  /// Branch decisions made by the last solve() (the forgery search's budget
  /// currency — propagation is linear, decisions are where time goes).
  std::size_t decisions() const noexcept { return decisions_; }

 private:
  struct Clause {
    std::vector<std::size_t> lits;
    std::size_t n_false = 0;
  };
  struct Card {
    std::vector<std::size_t> vars;
    std::size_t lo = 0, hi = 0;
    std::size_t n_true = 0, n_unassigned = 0;
  };

  bool enqueue(std::size_t var, bool value);
  bool propagate();  ///< advances qhead_ through the trail; false on conflict
  void unassign_from(std::size_t trail_pos);

  /// A decision point: where on the trail it sits, which variable, and
  /// whether the false branch has been tried (chronological backtracking
  /// pops the deepest entry with an untried polarity).
  struct Decision {
    std::size_t trail_pos;
    std::size_t var;
    bool flipped;
  };

  // assign_[v]: -1 unassigned, 0 false, 1 true.
  std::vector<std::int8_t> assign_;
  std::vector<Clause> clauses_;
  std::vector<Card> cards_;
  // Per variable: constraints watching it (indices into clauses_/cards_).
  std::vector<std::vector<std::size_t>> var_clauses_;
  std::vector<std::vector<std::size_t>> var_cards_;
  std::vector<std::size_t> trail_;  ///< assigned vars, assignment order
  std::size_t qhead_ = 0;           ///< propagation frontier into trail_
  std::vector<Decision> dstack_;
  bool trivially_unsat_ = false;
  std::size_t decisions_ = 0;
};

}  // namespace lcert::solve
