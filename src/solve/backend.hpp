// Named feasibility-solver backends (DESIGN.md §15).
//
// The per-vertex UOP assignment question ("can the children pick states from
// their feasibility masks so the counts land in an interval box?") is
// answered by a pluggable backend selected by name. This header is
// deliberately tiny — RunOptions embeds a Backend, and options.hpp is
// included by every engine entry point, so the enum and its string mapping
// must not drag the solver machinery (flow scratch, SAT core) along.
//
// The numeric values of the first three backends equal the old
// RunOptions::feas_tier_max tiers they replaced; backend_from_tier() is the
// deprecated-alias mapping the CLI leans on.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace lcert::solve {

enum class Backend : int {
  kColdFlow = 0,  ///< pristine bounded-flow build per query (reference)
  kGreedy = 1,    ///< pruner + combinatorial decisions, cold-flow fallback
  kWarmFlow = 2,  ///< pruner + combinatorial, warm Dinic fallback (default)
  kSat = 3,       ///< pruner + DPLL on the cardinality encoding
};

inline constexpr Backend kDefaultBackend = Backend::kWarmFlow;
inline constexpr int kBackendCount = 4;

/// Stable display name ("greedy", "warm-flow", "cold-flow", "sat").
const char* backend_name(Backend backend);

/// Inverse of backend_name; nullopt for unknown names.
std::optional<Backend> parse_backend(std::string_view name);

/// "greedy|warm-flow|cold-flow|sat" — the listing CLI errors print, in the
/// same spirit as try_find_scheme's valid-keys listing.
std::string backend_listing();

/// Deprecated --feas-tier-max alias: tier 0 -> cold-flow, 1 -> greedy,
/// 2 -> warm-flow. nullopt for every other value (the old engine silently
/// clamped; the CLI now exits 2 with backend_listing()).
std::optional<Backend> backend_from_tier(int tier);

}  // namespace lcert::solve
