#include "src/solve/solver.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/automata/uop_automaton.hpp"
#include "src/solve/sat.hpp"
#include "src/util/flow.hpp"

namespace lcert::solve {

void FeasibilitySolver::begin(std::span<const std::uint64_t> child_masks,
                              std::size_t state_count) {
  if (state_count > 64)
    throw std::invalid_argument("FeasibilitySolver::begin: state_count > 64");
  state_count_ = state_count;
  // Only bits q < state_count are meaningful; truncating here keeps every
  // popcount / union in the pruner and the backends exact.
  const std::uint64_t keep =
      state_count == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << state_count) - 1);
  masks_.assign(child_masks.begin(), child_masks.end());
  for (std::uint64_t& mask : masks_) mask &= keep;
  supply_.assign(state_count, 0);
  for (const std::uint64_t mask : masks_)
    for (std::uint64_t rest = mask; rest != 0; rest &= rest - 1)
      ++supply_[static_cast<std::size_t>(std::countr_zero(rest))];
  on_begin();
}

std::size_t FeasibilitySolver::decide_first(const BoxIndex& index) {
  if (index.size() == 0) return BoxIndex::npos;
  if (index.arity() != state_count_)
    throw std::invalid_argument("FeasibilitySolver::decide_first: wrong arity");
  BoxIndex::Cursor cur = index.feasibility_candidates(supply_.data(), masks_.size());
  for (std::size_t i = cur.next(); i != BoxIndex::npos; i = cur.next())
    if (decide(index.box(i))) return i;
  return BoxIndex::npos;
}

bool FeasibilitySolver::decide_witness(const IntervalBox& box,
                                       std::vector<std::size_t>& witness) {
  if (!decide(box)) return false;
  if (!uop_assign_children_masked(masks_, box, state_count_, witness))
    throw std::logic_error("FeasibilitySolver: decision disagrees with the pristine flow");
  return true;
}

namespace {

// ---------------------------------------------------------------------------
// cold-flow: the pristine reference. One BoundedFlowProblem build per query,
// no pruner — exactly the pre-seam path, kept as the differential baseline
// every other backend is cross-checked against.
// ---------------------------------------------------------------------------
class ColdFlowBackend final : public FeasibilitySolver {
 public:
  Backend backend() const noexcept override { return Backend::kColdFlow; }

  bool decide(const IntervalBox& box) override {
    ++counts_.flow;
    return uop_assign_children_masked(masks(), box, state_count(), assignment_);
  }

  bool decide_witness(const IntervalBox& box,
                      std::vector<std::size_t>& witness) override {
    ++counts_.flow;
    return uop_assign_children_masked(masks(), box, state_count(), witness);
  }

 private:
  std::vector<std::size_t> assignment_;  ///< scratch, reused across calls
};

// ---------------------------------------------------------------------------
// greedy: shared pruner + combinatorial stage; whatever stays inconclusive
// falls back to a cold pristine build per query.
// ---------------------------------------------------------------------------
class GreedyBackend : public FeasibilitySolver {
 public:
  Backend backend() const noexcept override { return Backend::kGreedy; }

  bool decide(const IntervalBox& box) override {
    switch (pruner_.prune(box)) {
      case Verdict::kFeasible: ++counts_.pruned; return true;
      case Verdict::kInfeasible: ++counts_.pruned; return false;
      case Verdict::kInconclusive: break;
    }
    switch (pruner_.combinatorial(box)) {
      case Verdict::kFeasible: ++counts_.greedy; return true;
      case Verdict::kInfeasible: ++counts_.greedy; return false;
      case Verdict::kInconclusive: break;
    }
    return residual_decide(box);
  }

 protected:
  void on_begin() override { pruner_.begin(masks(), state_count(), supply()); }

  /// Exact decision for the residue both stages left inconclusive.
  virtual bool residual_decide(const IntervalBox& box) {
    ++counts_.flow;
    return uop_assign_children_masked(masks(), box, state_count(), assignment_);
  }

  BoxPruner pruner_;

 private:
  std::vector<std::size_t> assignment_;
};

// ---------------------------------------------------------------------------
// warm-flow (default): greedy's stages, but the residue goes to a warm Dinic
// circulation whose structure (child -> state edges) is built on the first
// residual query of a vertex and re-bounded in place for every later one.
// ---------------------------------------------------------------------------
class WarmFlowBackend final : public GreedyBackend {
 public:
  Backend backend() const noexcept override { return Backend::kWarmFlow; }

 protected:
  void on_begin() override {
    GreedyBackend::on_begin();
    net_built_ = false;
  }

  bool residual_decide(const IntervalBox& box) override {
    // Reached only when prune() was inconclusive, so the pristine pre-checks
    // already passed: m > 0, lo <= hi, lo_sum <= m, cap >= lo.
    const bool rebuilt = !net_built_;
    if (!net_built_) build_structure();
    const std::size_t m = masks().size();
    const std::size_t k = state_count();
    std::int64_t lo_sum = 0;
    for (std::size_t q = 0; q < k; ++q) {
      const auto lo = static_cast<std::int64_t>(box.lo[q]);
      const std::int64_t cap =
          box.hi[q] == IntervalBox::kUnbounded
              ? static_cast<std::int64_t>(m)
              : static_cast<std::int64_t>(std::min(box.hi[q], m));
      net_.set_capacity(state_sink_edge_[q], cap - lo);
      net_.set_capacity(state_super_edge_[q], lo);
      lo_sum += lo;
    }
    net_.set_capacity(super_child_sink_edge_, lo_sum);
    net_.reset_flows();
    const std::int64_t achieved = net_.run(m + k + 2, m + k + 3);
    if (rebuilt)
      ++counts_.flow;
    else
      ++counts_.warm;
    return achieved == static_cast<std::int64_t>(m) + lo_sum;
  }

 private:
  void build_structure() {
    // Circulation-with-lower-bounds over the bipartite assignment network,
    // pre-reduced so only capacities change between boxes. Original problem:
    // S -> child [1,1], child -> state [0,1], state_q -> T [lo_q, cap_q], plus
    // the T -> S return edge. The standard reduction moves every lower bound
    // onto super-source/super-sink edges:
    //   SS -> child (1)        from the child's saturated S -> child edge
    //   S  -> TT (m)           the m units S owes its children
    //   state_q -> T (cap-lo)  the residual choice above the lower bound
    //   state_q -> TT (lo_q)   the lower bound itself
    //   SS -> T (lo_sum)       T's matching surplus
    // Feasible iff maxflow(SS, TT) == m + lo_sum. Only the three
    // starred-by-box capacities move per query; adjacency is built once per
    // vertex.
    const std::size_t m = masks().size();
    const std::size_t k = state_count();
    const std::size_t s_node = m + k;
    const std::size_t t_node = m + k + 1;
    const std::size_t super_source = m + k + 2;
    const std::size_t super_sink = m + k + 3;
    net_.reset(m + k + 4);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::uint64_t rest = masks()[i]; rest != 0; rest &= rest - 1)
        net_.add_edge(i, m + static_cast<std::size_t>(std::countr_zero(rest)), 1);
      net_.add_edge(super_source, i, 1);
    }
    state_sink_edge_.assign(k, 0);
    state_super_edge_.assign(k, 0);
    for (std::size_t q = 0; q < k; ++q) {
      state_sink_edge_[q] = net_.add_edge(m + q, t_node, 0);
      state_super_edge_[q] = net_.add_edge(m + q, super_sink, 0);
    }
    net_.add_edge(t_node, s_node, std::numeric_limits<std::int64_t>::max() / 4);
    net_.add_edge(s_node, super_sink, static_cast<std::int64_t>(m));
    super_child_sink_edge_ = net_.add_edge(super_source, t_node, 0);
    net_built_ = true;
  }

  DinicScratch net_;
  bool net_built_ = false;
  std::vector<std::size_t> state_sink_edge_;   ///< per state: state->sink slot
  std::vector<std::size_t> state_super_edge_;  ///< per state: state->super-sink slot
  std::size_t super_child_sink_edge_ = 0;      ///< super-source->sink slot
};

// ---------------------------------------------------------------------------
// sat: shared pruner, then MiniCdcl on the cardinality encoding. The
// combinatorial stage is skipped on purpose — the point of this backend is
// differential coverage, so the SAT core should decide everything the cheap
// pruner cannot, not inherit the greedy heuristics' answers.
//
// Encoding: one variable per (child, usable state in the child's effective
// mask); exactly-one cardinality per child; per state q a cardinality
// lo_q <= #true <= cap_q over the child variables that can take q. Variables
// are allocated most-constrained child first, so MiniCdcl's lowest-index
// branching rule turns into a real ordering heuristic.
// ---------------------------------------------------------------------------
class SatBackend final : public FeasibilitySolver {
 public:
  Backend backend() const noexcept override { return Backend::kSat; }

  bool decide(const IntervalBox& box) override {
    model_valid_ = false;
    switch (pruner_.prune(box)) {
      case Verdict::kFeasible: ++counts_.pruned; return true;
      case Verdict::kInfeasible: ++counts_.pruned; return false;
      case Verdict::kInconclusive: break;
    }
    return sat_decide(box);
  }

  bool decide_witness(const IntervalBox& box,
                      std::vector<std::size_t>& witness) override {
    if (!decide(box)) return false;
    if (model_valid_) {
      // Read the model: exactly-one per child guarantees full coverage.
      witness.assign(masks().size(), SIZE_MAX);
      for (std::size_t v = 0; v < var_child_.size(); ++v)
        if (sat_.value(v)) witness[var_child_[v]] = var_state_[v];
      for (std::size_t state : witness)
        if (state == SIZE_MAX)
          throw std::logic_error("SatBackend: model left a child unassigned");
      return true;
    }
    // The pruner settled it without a model; extract via the pristine flow.
    if (!uop_assign_children_masked(masks(), box, state_count(), witness))
      throw std::logic_error("SatBackend: pruner disagrees with the pristine flow");
    return true;
  }

 protected:
  void on_begin() override { pruner_.begin(masks(), state_count(), supply()); }

 private:
  bool sat_decide(const IntervalBox& box) {
    ++counts_.sat;
    const auto eff = pruner_.effective_masks();
    const auto caps = pruner_.caps();
    const std::size_t m = pruner_.child_count();
    const std::size_t k = pruner_.state_count();

    sat_.reset();
    var_child_.clear();
    var_state_.clear();
    state_vars_.assign(k, {});
    child_order_.resize(m);
    std::iota(child_order_.begin(), child_order_.end(), std::size_t{0});
    std::sort(child_order_.begin(), child_order_.end(),
              [&eff](std::size_t x, std::size_t y) {
                const int px = std::popcount(eff[x]);
                const int py = std::popcount(eff[y]);
                return px != py ? px < py : x < y;
              });

    for (std::size_t i : child_order_) {
      child_vars_.clear();
      for (std::uint64_t rest = eff[i]; rest != 0; rest &= rest - 1) {
        const std::size_t q = static_cast<std::size_t>(std::countr_zero(rest));
        const std::size_t var = sat_.new_var();
        var_child_.push_back(i);
        var_state_.push_back(q);
        child_vars_.push_back(var);
        state_vars_[q].push_back(var);
      }
      sat_.add_cardinality(child_vars_, 1, 1);
    }
    for (std::size_t q = 0; q < k; ++q) {
      if (state_vars_[q].empty()) continue;  // lo_q == 0 here (supply check)
      sat_.add_cardinality(state_vars_[q], box.lo[q],
                           static_cast<std::size_t>(caps[q]));
    }

    model_valid_ = sat_.solve();
    return model_valid_;
  }

  BoxPruner pruner_;
  MiniCdcl sat_;
  bool model_valid_ = false;
  // Variable index -> (child, state), plus encode scratch reused per query.
  std::vector<std::size_t> var_child_;
  std::vector<std::size_t> var_state_;
  std::vector<std::vector<std::size_t>> state_vars_;
  std::vector<std::size_t> child_vars_;
  std::vector<std::size_t> child_order_;
};

constexpr SolverFactory::BackendInfo kRegistry[] = {
    {Backend::kGreedy, "greedy",
     "shared pruner + combinatorial decisions, cold pristine-flow fallback"},
    {Backend::kWarmFlow, "warm-flow",
     "shared pruner + combinatorial decisions, warm Dinic circulation fallback (default)"},
    {Backend::kColdFlow, "cold-flow",
     "pristine bounded-flow build per query (the differential reference)"},
    {Backend::kSat, "sat",
     "shared pruner + DPLL on the box-interval cardinality encoding"},
};

}  // namespace

std::unique_ptr<FeasibilitySolver> SolverFactory::make(Backend backend) {
  switch (backend) {
    case Backend::kColdFlow: return std::make_unique<ColdFlowBackend>();
    case Backend::kGreedy: return std::make_unique<GreedyBackend>();
    case Backend::kWarmFlow: return std::make_unique<WarmFlowBackend>();
    case Backend::kSat: return std::make_unique<SatBackend>();
  }
  throw std::invalid_argument("SolverFactory::make: unknown backend");
}

std::span<const SolverFactory::BackendInfo> SolverFactory::registry() {
  return kRegistry;
}

}  // namespace lcert::solve
