#include "src/solve/backend.hpp"

namespace lcert::solve {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kColdFlow: return "cold-flow";
    case Backend::kGreedy: return "greedy";
    case Backend::kWarmFlow: return "warm-flow";
    case Backend::kSat: return "sat";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "cold-flow") return Backend::kColdFlow;
  if (name == "greedy") return Backend::kGreedy;
  if (name == "warm-flow") return Backend::kWarmFlow;
  if (name == "sat") return Backend::kSat;
  return std::nullopt;
}

std::string backend_listing() { return "greedy|warm-flow|cold-flow|sat"; }

std::optional<Backend> backend_from_tier(int tier) {
  switch (tier) {
    case 0: return Backend::kColdFlow;
    case 1: return Backend::kGreedy;
    case 2: return Backend::kWarmFlow;
    default: return std::nullopt;
  }
}

}  // namespace lcert::solve
