#include "src/solve/pruner.hpp"

#include <algorithm>
#include <bit>

namespace lcert::solve {

void BoxPruner::begin(std::span<const std::uint64_t> child_masks,
                      std::size_t state_count,
                      std::span<const std::size_t> raw_supply) {
  masks_ = child_masks;
  raw_supply_ = raw_supply;
  state_count_ = state_count;
}

Verdict BoxPruner::prune(const IntervalBox& box) {
  const std::size_t m = masks_.size();
  const std::size_t k = state_count_;

  // Pristine pre-checks first, so their rejections resolve here. The raw-
  // supply reject is exact (raw supply >= effective supply, so it is a
  // subset of the effective-supply rejections below) but needs no per-box
  // mask scan — the BoxIndex feasibility filter shares the same condition.
  lo_sum_ = 0;
  for (std::size_t q = 0; q < k; ++q) {
    if (box.hi[q] != IntervalBox::kUnbounded && box.lo[q] > box.hi[q])
      return Verdict::kInfeasible;
    if (box.lo[q] > raw_supply_[q]) return Verdict::kInfeasible;
    lo_sum_ += box.lo[q];
  }
  if (lo_sum_ > m) return Verdict::kInfeasible;
  if (m == 0) return Verdict::kFeasible;  // lo_sum == 0 and nothing to place

  // cap_[q]: the ceiling the flow network would use (m when unbounded). After
  // the pre-checks, cap_[q] >= lo[q] always: a finite hi >= lo caps at
  // min(hi, m) with lo <= lo_sum <= m.
  cap_.assign(k, 0);
  std::uint64_t usable = 0;  // states some child could take (cap > 0)
  slack_ = 0;                // states whose cap never binds (cap == m)
  for (std::size_t q = 0; q < k; ++q) {
    cap_[q] = box.hi[q] == IntervalBox::kUnbounded
                  ? static_cast<std::int64_t>(m)
                  : static_cast<std::int64_t>(std::min(box.hi[q], m));
    if (cap_[q] > 0) usable |= std::uint64_t{1} << q;
    if (cap_[q] >= static_cast<std::int64_t>(m)) slack_ |= std::uint64_t{1} << q;
  }

  // Effective per-child masks; a child with no usable state sinks the box.
  supply_.assign(k, 0);
  eff_.resize(m);
  union_eff_ = 0;
  confined_ = 0;  // children whose every usable state has cap < m
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t e = masks_[i] & usable;
    if (e == 0) return Verdict::kInfeasible;
    eff_[i] = e;
    union_eff_ |= e;
    if ((e & slack_) == 0) ++confined_;
    for (std::uint64_t rest = e; rest != 0; rest &= rest - 1)
      ++supply_[static_cast<std::size_t>(std::countr_zero(rest))];
  }

  // Per-state demand needs that many distinct children able to supply it.
  for (std::size_t q = 0; q < k; ++q)
    if (supply_[q] < box.lo[q]) return Verdict::kInfeasible;

  // Hall cut on the capped side: every confined child consumes one unit of
  // finitely-capped capacity.
  if (confined_ > 0) {
    std::int64_t cap_finite = 0;
    for (std::uint64_t rest = union_eff_ & ~slack_; rest != 0; rest &= rest - 1)
      cap_finite += cap_[static_cast<std::size_t>(std::countr_zero(rest))];
    if (static_cast<std::int64_t>(confined_) > cap_finite) return Verdict::kInfeasible;
  }

  // No lower bounds and every child can park on a never-binding state.
  if (lo_sum_ == 0 && confined_ == 0) return Verdict::kFeasible;

  return Verdict::kInconclusive;
}

Verdict BoxPruner::combinatorial(const IntervalBox& box) {
  const std::size_t m = masks_.size();
  const std::size_t k = state_count_;

  // Exact subset-Hall when no cap binds (every reachable state takes all m
  // children): feasibility reduces to Hall's condition over the demanded
  // states D = {q : lo[q] > 0}. Expand lo[q] into lo[q] demand slots; a
  // saturating matching exists iff for every T subseteq D,
  //   lo(T) <= #{children i : eff_i meets T} = m - #{i : eff_i cap T empty}.
  // Surplus children always place (eff nonempty, caps never bind), so the
  // condition is necessary AND sufficient — both answers are conclusive.
  std::size_t demand_states[64];
  std::size_t dk = 0;
  for (std::size_t q = 0; q < k; ++q)
    if (box.lo[q] > 0) demand_states[dk++] = q;
  if ((union_eff_ & ~slack_) == 0 && dk <= 8) {
    const std::size_t subsets = std::size_t{1} << dk;
    hall_count_.assign(subsets, 0);
    for (std::size_t i = 0; i < m; ++i) {
      std::size_t pattern = 0;
      for (std::size_t j = 0; j < dk; ++j)
        pattern |= ((eff_[i] >> demand_states[j]) & 1u) << j;
      ++hall_count_[pattern];
    }
    // Zeta transform: hall_count_[S] = #children whose demand-pattern is in S.
    for (std::size_t j = 0; j < dk; ++j)
      for (std::size_t s = 0; s < subsets; ++s)
        if (s >> j & 1u) hall_count_[s] += hall_count_[s ^ (std::size_t{1} << j)];
    // greedy_count_[T] = sum of lower bounds over the states in T.
    greedy_count_.assign(subsets, 0);
    for (std::size_t s = 1; s < subsets; ++s) {
      const std::size_t j = static_cast<std::size_t>(std::countr_zero(s));
      greedy_count_[s] =
          greedy_count_[s ^ (std::size_t{1} << j)] + box.lo[demand_states[j]];
    }
    for (std::size_t s = 0; s < subsets; ++s)
      if (greedy_count_[s] + hall_count_[(subsets - 1) ^ s] > m)
        return Verdict::kInfeasible;
    return Verdict::kFeasible;
  }

  // Mixed case (binding caps and lower bounds): build a witness greedily,
  // most-constrained children first. Only a completed witness is conclusive —
  // greedy failure says nothing, so the caller falls through to its exact
  // decision procedure.
  order_.resize(m);
  for (std::size_t i = 0; i < m; ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [this](std::size_t x, std::size_t y) {
    const int px = std::popcount(eff_[x]);
    const int py = std::popcount(eff_[y]);
    return px != py ? px < py : x < y;
  });
  // Satisfy lower bounds first, tightest supply slack first. cap_ doubles as
  // remaining capacity from here on; eff_[i] == 0 marks an assigned child.
  std::pair<std::size_t, std::size_t> demand_order[64];  // (slack, state)
  for (std::size_t j = 0; j < dk; ++j)
    demand_order[j] = {supply_[demand_states[j]] - box.lo[demand_states[j]],
                       demand_states[j]};
  std::sort(demand_order, demand_order + dk);
  for (std::size_t j = 0; j < dk; ++j) {
    const std::size_t q = demand_order[j].second;
    std::size_t need = box.lo[q];
    for (std::size_t idx = 0; idx < m && need > 0; ++idx) {
      const std::size_t i = order_[idx];
      if ((eff_[i] >> q & 1u) == 0 || eff_[i] == 0) continue;
      eff_[i] = 0;
      --cap_[q];
      --need;
    }
    if (need > 0) return Verdict::kInconclusive;
  }
  // Park the rest on whichever usable state has the most room left.
  for (std::size_t idx = 0; idx < m; ++idx) {
    const std::size_t i = order_[idx];
    if (eff_[i] == 0) continue;
    std::size_t best = SIZE_MAX;
    std::int64_t best_room = 0;
    for (std::uint64_t rest = eff_[i]; rest != 0; rest &= rest - 1) {
      const std::size_t q = static_cast<std::size_t>(std::countr_zero(rest));
      if (cap_[q] > best_room) {
        best = q;
        best_room = cap_[q];
      }
    }
    if (best == SIZE_MAX) return Verdict::kInconclusive;
    eff_[i] = 0;
    --cap_[best];
  }
  return Verdict::kFeasible;
}

}  // namespace lcert::solve
