// The pluggable FeasibilitySolver seam (DESIGN.md §15).
//
// Every MSO scheme reduces to one per-vertex question — can the children
// pick states from their feasibility masks so the per-state counts land in
// an interval box? — and this interface is where that question is answered.
// The prover, find_accepting_run and the incremental repair path all hold a
// FeasibilitySolver and never know which backend is behind it.
//
// Exactness contract (the load-bearing invariant): decide(box) returns the
// exact boolean of uop_assign_children_masked for the masks passed to
// begin(). Decisions may be produced by any procedure; *assignments* in the
// prover always come from the pristine flow build, so certificates are
// bit-identical across every backend, thread count and memo setting. The
// contract is pinned three ways: the brute-force cross-check tests, the
// registry-wide backend sweep, and the solver-divergence fuzz oracle in
// every trial.
//
// Backends (SolverFactory::make):
//   cold-flow  the pristine reference: one BoundedFlowProblem per query,
//              no pruner — this IS the pre-seam path, kept as the
//              differential baseline;
//   greedy     shared pruner + combinatorial stage, cold-flow fallback for
//              the inconclusive residue;
//   warm-flow  shared pruner + combinatorial stage, warm Dinic circulation
//              fallback (structure built once per vertex) — the default;
//   sat        shared pruner + DPLL on the cardinality encoding (sat.hpp);
//              the combinatorial stage is skipped on purpose so the SAT
//              core, not the greedy heuristics, decides the residue.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/automata/box_index.hpp"
#include "src/automata/presburger.hpp"
#include "src/solve/backend.hpp"
#include "src/solve/pruner.hpp"

namespace lcert::solve {

/// How the queries resolved, by deciding stage (not by backend): `pruned`
/// counts the shared pruner's conclusive answers, `greedy` the combinatorial
/// stage's, `warm`/`flow` the warm-vs-rebuilt Dinic split, `sat` the DPLL
/// decisions. Classification depends only on the per-vertex query sequence,
/// so totals are thread-count invariant when that sequence is.
struct DecisionCounts {
  std::uint64_t pruned = 0;
  std::uint64_t greedy = 0;
  std::uint64_t warm = 0;
  std::uint64_t flow = 0;
  std::uint64_t sat = 0;

  std::uint64_t total() const noexcept { return pruned + greedy + warm + flow + sat; }

  DecisionCounts& operator+=(const DecisionCounts& o) {
    pruned += o.pruned;
    greedy += o.greedy;
    warm += o.warm;
    flow += o.flow;
    sat += o.sat;
    return *this;
  }
};

/// One instance is per-worker scratch: warm across vertices within a run,
/// zero steady-state allocations once warm, not thread-safe.
class FeasibilitySolver {
 public:
  virtual ~FeasibilitySolver() = default;

  virtual Backend backend() const noexcept = 0;

  /// Starts a new vertex: the child feasibility masks every following
  /// decide() call is judged against. Copies the masks (truncated to
  /// state_count bits, which must be <= 64).
  void begin(std::span<const std::uint64_t> child_masks, std::size_t state_count);

  /// Decision for one interval box at the current vertex. Exact: same
  /// boolean as uop_assign_children_masked(child_masks, box, ...).
  virtual bool decide(const IntervalBox& box) = 0;

  /// First feasible box of an indexed DNF at the current vertex, or
  /// BoxIndex::npos. Iterates the index's feasibility candidates (boxes the
  /// necessary conditions lo[q] <= supply[q], sum(lo) <= child_count cannot
  /// reject) in DNF order, so the answer equals a full decide() sweep —
  /// skipped boxes are provably infeasible. Shared by every backend; this is
  /// how all four iterate candidates instead of the full DNF.
  std::size_t decide_first(const BoxIndex& index);

  /// decide() plus a witness (one valid state per child) when feasible. The
  /// witness is any valid assignment, NOT necessarily the pristine flow's
  /// choice — provers that need bit-identical certificates must extract via
  /// uop_assign_children_masked instead; this entry point serves the
  /// forgery search, which only needs validity. The default runs decide()
  /// and then the pristine extraction; the SAT backend reads its model.
  virtual bool decide_witness(const IntervalBox& box, std::vector<std::size_t>& witness);

  const DecisionCounts& counts() const noexcept { return counts_; }

 protected:
  /// Hook after begin() stored the masks (rebuild per-vertex structures).
  virtual void on_begin() {}

  std::span<const std::uint64_t> masks() const noexcept { return masks_; }
  std::size_t state_count() const noexcept { return state_count_; }

 public:
  /// Per-state raw supply for the current vertex: supply()[q] = number of
  /// children whose (truncated) mask allows state q. Computed once in
  /// begin(); feeds decide_first and the pruner's raw-supply early reject.
  std::span<const std::size_t> supply() const noexcept { return supply_; }

 protected:
  DecisionCounts counts_;

 private:
  std::vector<std::uint64_t> masks_;  ///< truncated to state_count bits
  std::vector<std::size_t> supply_;   ///< per state: children able to take it
  std::size_t state_count_ = 0;
};

/// The backend registry. Fixed table today (the enum is closed), but every
/// consumer goes through make()/info(), so a new decision procedure lands by
/// adding one entry — the prover, the fuzz oracle, the CLI and the audit
/// pick it up without edits.
class SolverFactory {
 public:
  struct BackendInfo {
    Backend backend;
    const char* name;
    const char* description;
  };

  static std::unique_ptr<FeasibilitySolver> make(Backend backend);
  static std::span<const BackendInfo> registry();
};

}  // namespace lcert::solve
