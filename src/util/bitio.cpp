#include "src/util/bitio.hpp"

namespace lcert {

void BitWriter::write(std::uint64_t value, unsigned width) {
  if (width > 64) throw std::invalid_argument("BitWriter::write: width > 64");
  if (width < 64 && (value >> width) != 0)
    throw std::invalid_argument("BitWriter::write: value does not fit width");
  for (unsigned i = width; i-- > 0;) {
    const bool bit = (value >> i) & 1u;
    const std::size_t byte_index = bit_size_ / 8;
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte_index] |= static_cast<std::uint8_t>(0x80u >> (bit_size_ % 8));
    ++bit_size_;
  }
}

void BitWriter::write_varnat(std::uint64_t value) {
  // Groups of 4 bits, low group first, each preceded by a continuation bit.
  do {
    const std::uint64_t group = value & 0xF;
    value >>= 4;
    write_bit(value != 0);
    write(group, 4);
  } while (value != 0);
}

void BitWriter::append(const BitWriter& other) {
  BitReader r(other);
  std::size_t left = other.bit_size();
  while (left >= 64) {
    write(r.read(64), 64);
    left -= 64;
  }
  if (left > 0) write(r.read(static_cast<unsigned>(left)), static_cast<unsigned>(left));
}

std::uint64_t BitReader::read_varnat() {
  std::uint64_t out = 0;
  unsigned shift = 0;
  bool more = true;
  while (more) {
    more = read_bit();
    const std::uint64_t group = read(4);
    if (shift >= 64) throw CertificateTruncated("BitReader::read_varnat: overflow");
    out |= group << shift;
    shift += 4;
  }
  return out;
}

unsigned bits_for(std::uint64_t n) noexcept {
  unsigned b = 0;
  while (n > 0) {
    ++b;
    n >>= 1;
  }
  return b;
}

}  // namespace lcert
