#include "src/util/bitio.hpp"

#include <cstring>

#include "src/util/arena.hpp"

namespace lcert {

void BitWriter::write(std::uint64_t value, unsigned width) {
  if (width > 64) throw std::invalid_argument("BitWriter::write: width > 64");
  if (width < 64 && (value >> width) != 0)
    throw std::invalid_argument("BitWriter::write: value does not fit width");
  if (width == 0) return;
  const std::size_t old_bytes = (bit_size_ + 7) / 8;
  const std::size_t need_bytes = (bit_size_ + width + 7) / 8;
  if (need_bytes > capacity_) grow(need_bytes);
  // Zero bytes touched for the first time: clear() and arena reuse leave
  // stale data in the buffer, and everything below ORs bits in.
  if (need_bytes > old_bytes)
    std::memset(data_ + old_bytes, 0, need_bytes - old_bytes);
  std::size_t pos = bit_size_;
  unsigned left = width;
  while (left > 0) {
    const unsigned avail = 8 - static_cast<unsigned>(pos & 7);
    const unsigned take = left < avail ? left : avail;
    const std::uint8_t chunk =
        static_cast<std::uint8_t>(value >> (left - take)) &
        static_cast<std::uint8_t>((1u << take) - 1);
    data_[pos >> 3] |= static_cast<std::uint8_t>(chunk << (avail - take));
    pos += take;
    left -= take;
  }
  bit_size_ += width;
}

void BitWriter::grow(std::size_t need_bytes) {
  std::size_t new_cap = capacity_ == 0 ? 64 : capacity_ * 2;
  while (new_cap < need_bytes) new_cap *= 2;
  if (arena_ != nullptr) {
    auto* fresh = arena_->allocate_array<std::uint8_t>(new_cap);
    if (bit_size_ > 0) std::memcpy(fresh, data_, (bit_size_ + 7) / 8);
    data_ = fresh;
  } else {
    heap_.resize(new_cap);
    data_ = heap_.data();
  }
  capacity_ = new_cap;
}

std::vector<std::uint8_t> BitWriter::take_bytes() && {
  const std::size_t n = (bit_size_ + 7) / 8;
  std::vector<std::uint8_t> out;
  if (arena_ != nullptr) {
    // Arena memory cannot change owners; copy out and keep the buffer.
    if (n > 0) out.assign(data_, data_ + n);
  } else {
    heap_.resize(n);
    out = std::move(heap_);
    heap_.clear();
    data_ = nullptr;
    capacity_ = 0;
  }
  bit_size_ = 0;
  return out;
}

void BitWriter::write_varnat(std::uint64_t value) {
  // Groups of 4 bits, low group first, each preceded by a continuation bit.
  do {
    const std::uint64_t group = value & 0xF;
    value >>= 4;
    write_bit(value != 0);
    write(group, 4);
  } while (value != 0);
}

void BitWriter::append(const BitWriter& other) {
  BitReader r(other);
  std::size_t left = other.bit_size();
  while (left >= 64) {
    write(r.read(64), 64);
    left -= 64;
  }
  if (left > 0) write(r.read(static_cast<unsigned>(left)), static_cast<unsigned>(left));
}

std::uint64_t BitReader::read_varnat() {
  std::uint64_t out = 0;
  unsigned shift = 0;
  bool more = true;
  while (more) {
    more = read_bit();
    const std::uint64_t group = read(4);
    if (shift >= 64) throw CertificateTruncated("BitReader::read_varnat: overflow");
    out |= group << shift;
    shift += 4;
  }
  return out;
}

unsigned bits_for(std::uint64_t n) noexcept {
  unsigned b = 0;
  while (n > 0) {
    ++b;
    n >>= 1;
  }
  return b;
}

}  // namespace lcert
