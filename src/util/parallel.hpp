// Minimal worker pool for the verification engine and the soundness auditor.
//
// The paper's model makes per-vertex verification depend only on the degree
// and the certificate size, so running the verifier at every vertex (and
// running independent audit trials) is embarrassingly parallel. parallel_for
// hands out contiguous index chunks through a single atomic counter — no
// external dependencies, no persistent threads, no shared mutable state
// beyond what the caller's callback touches.
//
// Determinism contract: parallel_for only decides *who* runs each index, not
// what the index means. Callers that want bit-identical results across thread
// counts must make fn(i) depend on i alone (per-index RNG seeds, disjoint
// output slots) — the engine and auditor both follow this rule.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lcert {

/// Below this many items, auto mode (num_threads == 0) stays serial: spawning
/// threads costs more than the work saved.
inline constexpr std::size_t kParallelAutoCutoff = 512;

/// Number of worker threads to use for `count` items. `requested == 0` means
/// auto: hardware concurrency, but serial under the cutoff. An explicit
/// request is honored (clamped to count) so tests can force real parallelism
/// on small inputs.
inline std::size_t resolve_thread_count(std::size_t requested, std::size_t count) {
  if (count <= 1) return 1;
  if (requested == 0) {
    if (count < kParallelAutoCutoff) return 1;
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max<std::size_t>(1, std::min<std::size_t>(hw == 0 ? 1 : hw, count / 64));
  }
  return std::min(requested, count);
}

/// Runs fn(i) for every i in [0, count), on `num_threads` workers (0 = auto).
/// Every index is executed exactly once. The first exception thrown by fn is
/// rethrown on the calling thread after all workers stop; remaining chunks
/// are abandoned once a failure is recorded.
///
/// `worker_scope(run)` wraps each worker's whole drain loop (including the
/// calling thread's): it must invoke run() exactly once and may do cheap
/// bookkeeping around it — the engine times per-thread busy-ness here at
/// once-per-worker cost instead of once-per-index. Exceptions from fn are
/// captured inside run(); worker_scope itself must not throw.
template <typename Fn, typename WorkerScope>
void parallel_for(std::size_t count, std::size_t num_threads, Fn&& fn,
                  WorkerScope&& worker_scope) {
  const std::size_t workers = resolve_thread_count(num_threads, count);
  if (workers <= 1) {
    worker_scope([&]() {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    });
    return;
  }

  const std::size_t chunk = std::max<std::size_t>(1, count / (workers * 8));
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto drain = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  auto worker = [&]() { worker_scope(drain); };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

template <typename Fn>
void parallel_for(std::size_t count, std::size_t num_threads, Fn&& fn) {
  parallel_for(count, num_threads, std::forward<Fn>(fn), [](auto&& run) { run(); });
}

/// parallel_for variant that passes a dense worker id to the callback:
/// fn(worker, i) with worker in [0, resolve_thread_count(...)), and worker 0
/// always the calling thread. Callers index per-worker scratch (arenas,
/// writers) by it without thread-local storage. The determinism contract is
/// the caller's, same as parallel_for: which worker runs an index is
/// scheduling-dependent, so fn's *result* for index i must not depend on
/// `worker` — scratch indexed by worker id is fine precisely because it is
/// scratch.
template <typename Fn>
void parallel_for_workers(std::size_t count, std::size_t num_threads, Fn&& fn) {
  const std::size_t workers = resolve_thread_count(num_threads, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(std::size_t{0}, i);
    return;
  }

  const std::size_t chunk = std::max<std::size_t>(1, count / (workers * 8));
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto drain = [&](std::size_t worker) {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(worker, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t)
    pool.emplace_back([&drain, t]() { drain(t + 1); });
  drain(0);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace lcert
