// Arbitrary-precision naturals.
//
// Theorem 2.3's lower bound rests on the count of non-isomorphic rooted trees
// of bounded depth ([42]); the counts overflow 64 bits long before the
// injection from strings to trees becomes interesting, so the tree-unranking
// machinery in src/lowerbounds/ needs exact big-integer arithmetic. Only the
// operations that machinery uses are provided.
#pragma once

#include <cstdint>
#include <string>
#include <vector>
#include <compare>

namespace lcert {

/// Unsigned arbitrary-precision integer, little-endian base-2^32 limbs.
class BigNat {
 public:
  BigNat() = default;
  BigNat(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  static BigNat from_decimal(const std::string& s);

  bool is_zero() const noexcept { return limbs_.empty(); }

  BigNat& operator+=(const BigNat& rhs);
  BigNat& operator-=(const BigNat& rhs);  ///< Requires *this >= rhs.
  BigNat& operator*=(const BigNat& rhs);

  friend BigNat operator+(BigNat a, const BigNat& b) { return a += b; }
  friend BigNat operator-(BigNat a, const BigNat& b) { return a -= b; }
  friend BigNat operator*(BigNat a, const BigNat& b) { return a *= b; }

  /// Division by a machine word; returns quotient, sets `remainder`.
  BigNat div_u32(std::uint32_t divisor, std::uint32_t& remainder) const;

  /// Floor division and modulo by another BigNat (schoolbook; fine for our sizes).
  static void div_mod(const BigNat& a, const BigNat& b, BigNat& quotient, BigNat& remainder);

  std::strong_ordering operator<=>(const BigNat& rhs) const noexcept;
  bool operator==(const BigNat& rhs) const noexcept = default;

  /// floor(log2(x)) + 1, i.e. the bit length; 0 for zero.
  std::size_t bit_length() const noexcept;

  /// Lossy conversion for reporting; saturates at max double.
  double to_double() const noexcept;

  /// Exact conversion; throws std::overflow_error if it does not fit.
  std::uint64_t to_u64() const;

  std::string to_decimal() const;

  static BigNat pow(const BigNat& base, std::uint64_t exponent);
  static BigNat factorial(std::uint64_t n);
  /// Binomial coefficient C(n, k).
  static BigNat binomial(std::uint64_t n, std::uint64_t k);

 private:
  void trim();
  std::vector<std::uint32_t> limbs_;  // little-endian, no leading zero limb
};

}  // namespace lcert
