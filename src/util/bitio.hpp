// Bit-exact serialization used for certificates.
//
// The paper measures certification quality in *bits per vertex*, so schemes
// must not pay struct padding or byte alignment: every field is written with
// exactly the number of bits it needs. BitWriter appends fields MSB-first into
// a byte buffer and tracks the exact bit count; BitReader consumes the same
// stream and fails loudly (CertificateTruncated) on truncated input, which the
// verification engine treats as a rejection.
//
// A BitWriter is either heap-backed (default) or arena-backed
// (BitWriter(Arena&)): the batch prover keeps one arena-backed writer per
// worker and clear()s it between vertices, so steady-state encoding does no
// allocations at all. The bit stream produced is byte-identical in both
// modes.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace lcert {

class Arena;

/// Thrown by BitReader when a certificate stream runs out (or a varnat never
/// terminates) before the requested field is complete. The verification
/// engine treats exactly this error as "malformed certificate -> reject";
/// any other exception escaping a verifier is a library bug and propagates.
/// Derives from std::out_of_range for compatibility with older catch sites.
class CertificateTruncated : public std::out_of_range {
 public:
  explicit CertificateTruncated(const std::string& what) : std::out_of_range(what) {}
};

/// Append-only bit stream. Fields are written MSB-first.
class BitWriter {
 public:
  /// Heap-backed: the byte buffer is an owned vector, which
  /// Certificate::from_writer(BitWriter&&) can steal without a copy.
  BitWriter() = default;

  /// Arena-backed: bytes live in `arena` (which must outlive the writer and
  /// any view of bytes()). Growth bump-allocates; clear() rewinds the bit
  /// cursor while keeping the high-water buffer, so re-encoding vertex after
  /// vertex does zero steady-state allocations.
  explicit BitWriter(Arena& arena) : arena_(&arena) {}

  /// Appends the low `width` bits of `value` (MSB of the field first).
  /// Requires width <= 64 and value < 2^width.
  void write(std::uint64_t value, unsigned width);

  /// Appends a single bit.
  void write_bit(bool bit) { write(bit ? 1 : 0, 1); }

  /// LEB128-style variable-length natural: 4 data bits + 1 continuation bit
  /// per group. Small values (the common case in certificates) cost 5 bits.
  void write_varnat(std::uint64_t value);

  /// Appends every bit of another stream (used to concatenate sub-certificates).
  void append(const BitWriter& other);

  /// Rewinds to an empty stream, retaining the buffer (both modes).
  void clear() noexcept { bit_size_ = 0; }

  /// Number of bits written so far.
  std::size_t bit_size() const noexcept { return bit_size_; }

  /// Bytes written so far; the final partial byte is zero-padded. The view
  /// is invalidated by the next write or clear.
  std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, (bit_size_ + 7) / 8};
  }

  /// Surrenders the byte buffer, sized exactly ceil(bit_size/8), leaving the
  /// writer empty. Heap mode moves the owned vector out (no copy); arena
  /// mode must copy, since arena memory cannot change owners.
  std::vector<std::uint8_t> take_bytes() &&;

 private:
  void grow(std::size_t need_bytes);

  Arena* arena_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t capacity_ = 0;
  std::vector<std::uint8_t> heap_;  ///< heap-mode backing store for data_
  std::size_t bit_size_ = 0;
};

/// Sequential reader over a BitWriter's output.
class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& bytes, std::size_t bit_size)
      : data_(bytes.data()), bit_size_(bit_size) {}

  BitReader(std::span<const std::uint8_t> bytes, std::size_t bit_size)
      : data_(bytes.data()), bit_size_(bit_size) {}

  explicit BitReader(const BitWriter& w) : BitReader(w.bytes(), w.bit_size()) {}

  /// Reads `width` bits; throws CertificateTruncated past the end. Inline:
  /// verifiers decode several certificates per vertex per round, and the
  /// call overhead dominates the few-bit reads they make.
  std::uint64_t read(unsigned width) {
    if (width > 64) throw std::invalid_argument("BitReader::read: width > 64");
    if (pos_ + width > bit_size_)
      throw CertificateTruncated("BitReader::read: truncated stream");
    // Consume up to a byte per step (the stream is MSB-first within each byte).
    std::uint64_t out = 0;
    unsigned left = width;
    while (left > 0) {
      const unsigned avail = 8 - static_cast<unsigned>(pos_ & 7);
      const unsigned take = left < avail ? left : avail;
      const std::uint8_t chunk =
          static_cast<std::uint8_t>(data_[pos_ >> 3] >> (avail - take)) &
          static_cast<std::uint8_t>((1u << take) - 1);
      out = (out << take) | chunk;
      pos_ += take;
      left -= take;
    }
    return out;
  }

  bool read_bit() { return read(1) != 0; }

  std::uint64_t read_varnat();

  /// Bits not yet consumed.
  std::size_t remaining() const noexcept { return bit_size_ - pos_; }

  bool exhausted() const noexcept { return pos_ == bit_size_; }

 private:
  const std::uint8_t* data_;
  std::size_t bit_size_;
  std::size_t pos_ = 0;
};

/// Number of bits needed to store values in [0, n]; bits_for(0) == 0.
unsigned bits_for(std::uint64_t n) noexcept;

}  // namespace lcert
