// Bit-exact serialization used for certificates.
//
// The paper measures certification quality in *bits per vertex*, so schemes
// must not pay struct padding or byte alignment: every field is written with
// exactly the number of bits it needs. BitWriter appends fields MSB-first into
// a byte buffer and tracks the exact bit count; BitReader consumes the same
// stream and fails loudly (std::out_of_range) on truncated input, which the
// verification engine treats as a rejection.
#pragma once

#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace lcert {

/// Append-only bit stream. Fields are written MSB-first.
class BitWriter {
 public:
  /// Appends the low `width` bits of `value` (MSB of the field first).
  /// Requires width <= 64 and value < 2^width.
  void write(std::uint64_t value, unsigned width);

  /// Appends a single bit.
  void write_bit(bool bit) { write(bit ? 1 : 0, 1); }

  /// LEB128-style variable-length natural: 4 data bits + 1 continuation bit
  /// per group. Small values (the common case in certificates) cost 5 bits.
  void write_varnat(std::uint64_t value);

  /// Appends every bit of another stream (used to concatenate sub-certificates).
  void append(const BitWriter& other);

  /// Number of bits written so far.
  std::size_t bit_size() const noexcept { return bit_size_; }

  /// Underlying bytes; the final partial byte is zero-padded.
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_size_ = 0;
};

/// Sequential reader over a BitWriter's output.
class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& bytes, std::size_t bit_size)
      : bytes_(&bytes), bit_size_(bit_size) {}

  explicit BitReader(const BitWriter& w) : BitReader(w.bytes(), w.bit_size()) {}

  /// Reads `width` bits; throws std::out_of_range past the end.
  std::uint64_t read(unsigned width);

  bool read_bit() { return read(1) != 0; }

  std::uint64_t read_varnat();

  /// Bits not yet consumed.
  std::size_t remaining() const noexcept { return bit_size_ - pos_; }

  bool exhausted() const noexcept { return pos_ == bit_size_; }

 private:
  const std::vector<std::uint8_t>* bytes_;
  std::size_t bit_size_;
  std::size_t pos_ = 0;
};

/// Number of bits needed to store values in [0, n]; bits_for(0) == 0.
unsigned bits_for(std::uint64_t n) noexcept;

}  // namespace lcert
