// Bit-exact serialization used for certificates.
//
// The paper measures certification quality in *bits per vertex*, so schemes
// must not pay struct padding or byte alignment: every field is written with
// exactly the number of bits it needs. BitWriter appends fields MSB-first into
// a byte buffer and tracks the exact bit count; BitReader consumes the same
// stream and fails loudly (CertificateTruncated) on truncated input, which the
// verification engine treats as a rejection.
#pragma once

#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace lcert {

/// Thrown by BitReader when a certificate stream runs out (or a varnat never
/// terminates) before the requested field is complete. The verification
/// engine treats exactly this error as "malformed certificate -> reject";
/// any other exception escaping a verifier is a library bug and propagates.
/// Derives from std::out_of_range for compatibility with older catch sites.
class CertificateTruncated : public std::out_of_range {
 public:
  explicit CertificateTruncated(const std::string& what) : std::out_of_range(what) {}
};

/// Append-only bit stream. Fields are written MSB-first.
class BitWriter {
 public:
  /// Appends the low `width` bits of `value` (MSB of the field first).
  /// Requires width <= 64 and value < 2^width.
  void write(std::uint64_t value, unsigned width);

  /// Appends a single bit.
  void write_bit(bool bit) { write(bit ? 1 : 0, 1); }

  /// LEB128-style variable-length natural: 4 data bits + 1 continuation bit
  /// per group. Small values (the common case in certificates) cost 5 bits.
  void write_varnat(std::uint64_t value);

  /// Appends every bit of another stream (used to concatenate sub-certificates).
  void append(const BitWriter& other);

  /// Number of bits written so far.
  std::size_t bit_size() const noexcept { return bit_size_; }

  /// Underlying bytes; the final partial byte is zero-padded.
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_size_ = 0;
};

/// Sequential reader over a BitWriter's output.
class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& bytes, std::size_t bit_size)
      : bytes_(&bytes), bit_size_(bit_size) {}

  explicit BitReader(const BitWriter& w) : BitReader(w.bytes(), w.bit_size()) {}

  /// Reads `width` bits; throws CertificateTruncated past the end. Inline:
  /// verifiers decode several certificates per vertex per round, and the
  /// call overhead dominates the few-bit reads they make.
  std::uint64_t read(unsigned width) {
    if (width > 64) throw std::invalid_argument("BitReader::read: width > 64");
    if (pos_ + width > bit_size_)
      throw CertificateTruncated("BitReader::read: truncated stream");
    // Consume up to a byte per step (the stream is MSB-first within each byte).
    std::uint64_t out = 0;
    unsigned left = width;
    const std::uint8_t* data = bytes_->data();
    while (left > 0) {
      const unsigned avail = 8 - static_cast<unsigned>(pos_ & 7);
      const unsigned take = left < avail ? left : avail;
      const std::uint8_t chunk =
          static_cast<std::uint8_t>(data[pos_ >> 3] >> (avail - take)) &
          static_cast<std::uint8_t>((1u << take) - 1);
      out = (out << take) | chunk;
      pos_ += take;
      left -= take;
    }
    return out;
  }

  bool read_bit() { return read(1) != 0; }

  std::uint64_t read_varnat();

  /// Bits not yet consumed.
  std::size_t remaining() const noexcept { return bit_size_ - pos_; }

  bool exhausted() const noexcept { return pos_ == bit_size_; }

 private:
  const std::vector<std::uint8_t>* bytes_;
  std::size_t bit_size_;
  std::size_t pos_ = 0;
};

/// Number of bits needed to store values in [0, n]; bits_for(0) == 0.
unsigned bits_for(std::uint64_t n) noexcept;

}  // namespace lcert
