// Deterministic, seedable randomness for generators and fuzzing auditors.
//
// Every randomized component in the library takes an explicit Rng so that
// tests and benchmarks are reproducible run-to-run; nothing reads the global
// random device.
#pragma once

#include <cstdint>
#include <random>
#include <vector>
#include <algorithm>
#include <stdexcept>

namespace lcert {

/// Thin wrapper over mt19937_64 with the helpers the library actually needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform: empty range");
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  bool coin(double p = 0.5) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

  /// Random bit string of the given length.
  std::vector<bool> bits(std::size_t length, double p = 0.5) {
    std::vector<bool> out(length);
    for (std::size_t i = 0; i < length; ++i) out[i] = coin(p);
    return out;
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lcert
