#include "src/util/flow.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace lcert {

MaxFlow::MaxFlow(std::size_t node_count) : graph_(node_count) {}

std::size_t MaxFlow::add_edge(std::size_t from, std::size_t to, std::int64_t capacity) {
  if (from >= graph_.size() || to >= graph_.size())
    throw std::out_of_range("MaxFlow::add_edge: node out of range");
  if (capacity < 0) throw std::invalid_argument("MaxFlow::add_edge: negative capacity");
  graph_[from].push_back({to, capacity, graph_[to].size()});
  graph_[to].push_back({from, 0, graph_[from].size() - 1});
  edge_refs_.emplace_back(from, graph_[from].size() - 1);
  original_capacity_.push_back(capacity);
  return edge_refs_.size() - 1;
}

bool MaxFlow::bfs(std::size_t source, std::size_t sink) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> q;
  level_[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop();
    for (const Edge& e : graph_[v]) {
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

std::int64_t MaxFlow::dfs(std::size_t v, std::size_t sink, std::int64_t pushed) {
  if (v == sink) return pushed;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.capacity > 0 && level_[v] < level_[e.to]) {
      const std::int64_t d = dfs(e.to, sink, std::min(pushed, e.capacity));
      if (d > 0) {
        e.capacity -= d;
        graph_[e.to][e.reverse].capacity += d;
        return d;
      }
    }
  }
  return 0;
}

std::int64_t MaxFlow::run(std::size_t source, std::size_t sink) {
  if (source == sink) return 0;
  std::int64_t flow = 0;
  while (bfs(source, sink)) {
    iter_.assign(graph_.size(), 0);
    while (true) {
      const std::int64_t pushed = dfs(source, sink, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::int64_t MaxFlow::flow_on(std::size_t edge_index) const {
  const auto [node, offset] = edge_refs_.at(edge_index);
  return original_capacity_.at(edge_index) - graph_[node][offset].capacity;
}

bool BoundedFlowProblem::feasible(std::vector<std::int64_t>& flow_out) const {
  // Standard reduction: send each edge's lower bound unconditionally and route
  // the imbalance through a super source/sink; add an uncapacitated back edge
  // sink -> source so the flow value itself is unconstrained.
  const std::size_t super_source = node_count;
  const std::size_t super_sink = node_count + 1;
  MaxFlow mf(node_count + 2);

  std::vector<std::int64_t> excess(node_count, 0);
  std::vector<std::size_t> edge_ids(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.lower < 0 || e.upper < e.lower)
      throw std::invalid_argument("BoundedFlowProblem: bad bounds");
    excess[e.to] += e.lower;
    excess[e.from] -= e.lower;
    edge_ids[i] = mf.add_edge(e.from, e.to, e.upper - e.lower);
  }
  // Unbounded return edge to make it a circulation problem.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  mf.add_edge(sink, source, kInf);

  std::int64_t required = 0;
  for (std::size_t v = 0; v < node_count; ++v) {
    if (excess[v] > 0) {
      mf.add_edge(super_source, v, excess[v]);
      required += excess[v];
    } else if (excess[v] < 0) {
      mf.add_edge(v, super_sink, -excess[v]);
    }
  }

  const std::int64_t achieved = mf.run(super_source, super_sink);
  if (achieved != required) return false;

  flow_out.assign(edges.size(), 0);
  for (std::size_t i = 0; i < edges.size(); ++i)
    flow_out[i] = edges[i].lower + mf.flow_on(edge_ids[i]);
  return true;
}

}  // namespace lcert
