#include "src/util/flow.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace lcert {

MaxFlow::MaxFlow(std::size_t node_count) : graph_(node_count) {}

std::size_t MaxFlow::add_edge(std::size_t from, std::size_t to, std::int64_t capacity) {
  if (from >= graph_.size() || to >= graph_.size())
    throw std::out_of_range("MaxFlow::add_edge: node out of range");
  if (capacity < 0) throw std::invalid_argument("MaxFlow::add_edge: negative capacity");
  graph_[from].push_back({to, capacity, graph_[to].size()});
  graph_[to].push_back({from, 0, graph_[from].size() - 1});
  edge_refs_.emplace_back(from, graph_[from].size() - 1);
  original_capacity_.push_back(capacity);
  return edge_refs_.size() - 1;
}

bool MaxFlow::bfs(std::size_t source, std::size_t sink) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> q;
  level_[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop();
    for (const Edge& e : graph_[v]) {
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

std::int64_t MaxFlow::dfs(std::size_t v, std::size_t sink, std::int64_t pushed) {
  if (v == sink) return pushed;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.capacity > 0 && level_[v] < level_[e.to]) {
      const std::int64_t d = dfs(e.to, sink, std::min(pushed, e.capacity));
      if (d > 0) {
        e.capacity -= d;
        graph_[e.to][e.reverse].capacity += d;
        return d;
      }
    }
  }
  return 0;
}

std::int64_t MaxFlow::run(std::size_t source, std::size_t sink) {
  if (source == sink) return 0;
  std::int64_t flow = 0;
  while (bfs(source, sink)) {
    iter_.assign(graph_.size(), 0);
    while (true) {
      const std::int64_t pushed = dfs(source, sink, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::int64_t MaxFlow::flow_on(std::size_t edge_index) const {
  const auto [node, offset] = edge_refs_.at(edge_index);
  return original_capacity_.at(edge_index) - graph_[node][offset].capacity;
}

void DinicScratch::reset(std::size_t node_count) {
  slot_to_.clear();
  slot_capacity_.clear();
  slot_next_.clear();
  base_capacity_.clear();
  head_.assign(node_count, SIZE_MAX);
}

std::size_t DinicScratch::add_edge(std::size_t from, std::size_t to,
                                   std::int64_t capacity) {
  if (from >= head_.size() || to >= head_.size())
    throw std::out_of_range("DinicScratch::add_edge: node out of range");
  if (capacity < 0) throw std::invalid_argument("DinicScratch::add_edge: negative capacity");
  const std::size_t fwd = slot_to_.size();
  slot_to_.push_back(to);
  slot_capacity_.push_back(capacity);
  slot_next_.push_back(head_[from]);
  head_[from] = fwd;
  slot_to_.push_back(from);
  slot_capacity_.push_back(0);
  slot_next_.push_back(head_[to]);
  head_[to] = fwd + 1;
  base_capacity_.push_back(capacity);
  return base_capacity_.size() - 1;
}

void DinicScratch::set_capacity(std::size_t edge, std::int64_t capacity) {
  if (capacity < 0)
    throw std::invalid_argument("DinicScratch::set_capacity: negative capacity");
  base_capacity_.at(edge) = capacity;
}

void DinicScratch::reset_flows() {
  for (std::size_t e = 0; e < base_capacity_.size(); ++e) {
    slot_capacity_[2 * e] = base_capacity_[e];
    slot_capacity_[2 * e + 1] = 0;
  }
}

bool DinicScratch::bfs(std::size_t source, std::size_t sink) {
  level_.assign(head_.size(), -1);
  queue_.clear();
  level_[source] = 0;
  queue_.push_back(source);
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const std::size_t v = queue_[qi];
    for (std::size_t s = head_[v]; s != SIZE_MAX; s = slot_next_[s]) {
      if (slot_capacity_[s] > 0 && level_[slot_to_[s]] < 0) {
        level_[slot_to_[s]] = level_[v] + 1;
        queue_.push_back(slot_to_[s]);
      }
    }
  }
  return level_[sink] >= 0;
}

std::int64_t DinicScratch::dfs(std::size_t v, std::size_t sink, std::int64_t pushed) {
  if (v == sink) return pushed;
  for (std::size_t& s = iter_[v]; s != SIZE_MAX; s = slot_next_[s]) {
    if (slot_capacity_[s] > 0 && level_[v] < level_[slot_to_[s]]) {
      const std::int64_t d = dfs(slot_to_[s], sink, std::min(pushed, slot_capacity_[s]));
      if (d > 0) {
        slot_capacity_[s] -= d;
        slot_capacity_[s ^ 1] += d;
        return d;
      }
    }
  }
  return 0;
}

std::int64_t DinicScratch::run(std::size_t source, std::size_t sink) {
  if (source == sink) return 0;
  std::int64_t flow = 0;
  while (bfs(source, sink)) {
    iter_ = head_;
    while (true) {
      const std::int64_t pushed = dfs(source, sink, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::int64_t DinicScratch::flow_on(std::size_t edge) const {
  return base_capacity_.at(edge) - slot_capacity_[2 * edge];
}

bool BoundedFlowProblem::feasible(std::vector<std::int64_t>& flow_out) const {
  // Standard reduction: send each edge's lower bound unconditionally and route
  // the imbalance through a super source/sink; add an uncapacitated back edge
  // sink -> source so the flow value itself is unconstrained.
  const std::size_t super_source = node_count;
  const std::size_t super_sink = node_count + 1;
  MaxFlow mf(node_count + 2);

  std::vector<std::int64_t> excess(node_count, 0);
  std::vector<std::size_t> edge_ids(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.lower < 0 || e.upper < e.lower)
      throw std::invalid_argument("BoundedFlowProblem: bad bounds");
    excess[e.to] += e.lower;
    excess[e.from] -= e.lower;
    edge_ids[i] = mf.add_edge(e.from, e.to, e.upper - e.lower);
  }
  // Unbounded return edge to make it a circulation problem.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  mf.add_edge(sink, source, kInf);

  std::int64_t required = 0;
  for (std::size_t v = 0; v < node_count; ++v) {
    if (excess[v] > 0) {
      mf.add_edge(super_source, v, excess[v]);
      required += excess[v];
    } else if (excess[v] < 0) {
      mf.add_edge(v, super_sink, -excess[v]);
    }
  }

  const std::int64_t achieved = mf.run(super_source, super_sink);
  if (achieved != required) return false;

  flow_out.assign(edges.size(), 0);
  for (std::size_t i = 0; i < edges.size(); ++i)
    flow_out[i] = edges[i].lower + mf.flow_on(edge_ids[i]);
  return true;
}

}  // namespace lcert
