#include "src/util/bignum.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lcert {

BigNat::BigNat(std::uint64_t v) {
  while (v != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
    v >>= 32;
  }
}

BigNat BigNat::from_decimal(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("BigNat::from_decimal: empty string");
  BigNat out;
  for (char c : s) {
    if (c < '0' || c > '9') throw std::invalid_argument("BigNat::from_decimal: bad digit");
    out *= BigNat(10);
    out += BigNat(static_cast<std::uint64_t>(c - '0'));
  }
  return out;
}

void BigNat::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNat& BigNat::operator+=(const BigNat& rhs) {
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry + limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<std::uint32_t>(carry));
  return *this;
}

BigNat& BigNat::operator-=(const BigNat& rhs) {
  if (*this < rhs) throw std::underflow_error("BigNat::operator-=: negative result");
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow -
                        (i < rhs.limbs_.size() ? static_cast<std::int64_t>(rhs.limbs_[i]) : 0);
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  trim();
  return *this;
}

BigNat& BigNat::operator*=(const BigNat& rhs) {
  if (is_zero() || rhs.is_zero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint32_t> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(limbs_[i]) * rhs.limbs_[j] +
                          out[i + j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
      ++k;
    }
  }
  limbs_ = std::move(out);
  trim();
  return *this;
}

BigNat BigNat::div_u32(std::uint32_t divisor, std::uint32_t& remainder) const {
  if (divisor == 0) throw std::domain_error("BigNat::div_u32: division by zero");
  BigNat q;
  q.limbs_.assign(limbs_.size(), 0);
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    std::uint64_t cur = (rem << 32) | limbs_[i];
    q.limbs_[i] = static_cast<std::uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  q.trim();
  remainder = static_cast<std::uint32_t>(rem);
  return q;
}

void BigNat::div_mod(const BigNat& a, const BigNat& b, BigNat& quotient, BigNat& remainder) {
  if (b.is_zero()) throw std::domain_error("BigNat::div_mod: division by zero");
  // Bitwise long division: adequate for the sizes the library manipulates
  // (tree counts with a few thousand bits).
  quotient = BigNat();
  remainder = BigNat();
  const std::size_t bits = a.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    // remainder = remainder * 2 + bit_i(a)
    remainder *= BigNat(2);
    const std::uint32_t limb = a.limbs_[i / 32];
    if ((limb >> (i % 32)) & 1u) remainder += BigNat(1);
    // quotient bit
    if (remainder >= b) {
      remainder -= b;
      // set bit i of quotient
      const std::size_t limb_index = i / 32;
      if (quotient.limbs_.size() <= limb_index) quotient.limbs_.resize(limb_index + 1, 0);
      quotient.limbs_[limb_index] |= (std::uint32_t{1} << (i % 32));
    }
  }
  quotient.trim();
}

std::strong_ordering BigNat::operator<=>(const BigNat& rhs) const noexcept {
  if (limbs_.size() != rhs.limbs_.size())
    return limbs_.size() <=> rhs.limbs_.size();
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

std::size_t BigNat::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

double BigNat::to_double() const noexcept {
  double out = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
    if (out > std::numeric_limits<double>::max() / 4294967296.0 && i > 0)
      return std::numeric_limits<double>::max();
  }
  return out;
}

std::uint64_t BigNat::to_u64() const {
  if (limbs_.size() > 2) throw std::overflow_error("BigNat::to_u64: too large");
  std::uint64_t out = 0;
  if (limbs_.size() >= 2) out = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (limbs_.size() >= 1) out |= limbs_[0];
  return out;
}

std::string BigNat::to_decimal() const {
  if (is_zero()) return "0";
  std::string out;
  BigNat cur = *this;
  while (!cur.is_zero()) {
    std::uint32_t rem = 0;
    cur = cur.div_u32(10, rem);
    out.push_back(static_cast<char>('0' + rem));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

BigNat BigNat::pow(const BigNat& base, std::uint64_t exponent) {
  BigNat result(1);
  BigNat b = base;
  while (exponent != 0) {
    if (exponent & 1) result *= b;
    exponent >>= 1;
    if (exponent != 0) b *= b;
  }
  return result;
}

BigNat BigNat::factorial(std::uint64_t n) {
  BigNat result(1);
  for (std::uint64_t i = 2; i <= n; ++i) result *= BigNat(i);
  return result;
}

BigNat BigNat::binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return BigNat(0);
  k = std::min(k, n - k);
  BigNat num(1);
  for (std::uint64_t i = 0; i < k; ++i) num *= BigNat(n - i);
  BigNat den = factorial(k);
  BigNat q, r;
  div_mod(num, den, q, r);
  return q;
}

}  // namespace lcert
