#include "src/util/arena.hpp"

#include <type_traits>

namespace lcert {

void* Arena::allocate(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  // Try the active chunk and any later chunk retained by a reset().
  while (active_ < chunks_.size()) {
    Chunk& c = chunks_[active_];
    const std::size_t base = reinterpret_cast<std::uintptr_t>(c.data.get() + c.used);
    const std::size_t pad = (align - (base & (align - 1))) & (align - 1);
    if (c.used + pad + size <= c.size) {
      void* out = c.data.get() + c.used + pad;
      c.used += pad + size;
      return out;
    }
    ++active_;
  }
  // Need a fresh chunk: doubled, and always large enough for the request
  // (plus worst-case alignment padding).
  std::size_t want = next_chunk_bytes_;
  while (want < size + align) want *= 2;
  next_chunk_bytes_ = want * 2;
  chunks_.push_back(Chunk{std::make_unique<std::uint8_t[]>(want), want, 0});
  active_ = chunks_.size() - 1;
  Chunk& c = chunks_.back();
  const std::size_t base = reinterpret_cast<std::uintptr_t>(c.data.get());
  const std::size_t pad = (align - (base & (align - 1))) & (align - 1);
  void* out = c.data.get() + pad;
  c.used = pad + size;
  return out;
}

}  // namespace lcert
