// Maximum flow (Dinic) plus feasibility of flows with lower bounds.
//
// The nondeterministic run-finder for UOP tree automata reduces "can the
// children be assigned states so that the per-state counts land in the
// required intervals?" to a bipartite b-matching with lower bounds
// (children on one side, states on the other). That feasibility question is
// solved here by the classic circulation-with-lower-bounds transformation.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace lcert {

/// Dinic max-flow on a directed graph with integer capacities.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t node_count);

  /// Adds a directed edge and returns its index (for flow_on / set residual).
  std::size_t add_edge(std::size_t from, std::size_t to, std::int64_t capacity);

  /// Computes the maximum s-t flow. May be called once per instance.
  std::int64_t run(std::size_t source, std::size_t sink);

  /// Flow routed through the edge returned by add_edge.
  std::int64_t flow_on(std::size_t edge_index) const;

  std::size_t node_count() const noexcept { return graph_.size(); }

 private:
  struct Edge {
    std::size_t to;
    std::int64_t capacity;  // residual capacity
    std::size_t reverse;    // index of reverse edge in graph_[to]
  };

  bool bfs(std::size_t source, std::size_t sink);
  std::int64_t dfs(std::size_t v, std::size_t sink, std::int64_t pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_refs_;  // (node, offset)
  std::vector<std::int64_t> original_capacity_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

/// Feasibility of a flow where every edge carries between `lower` and `upper`
/// units. Returns the per-edge flow if feasible, std::nullopt otherwise
/// (reported via the bool in the pair to avoid an <optional> of vector copy).
struct BoundedFlowProblem {
  struct Edge {
    std::size_t from;
    std::size_t to;
    std::int64_t lower;
    std::int64_t upper;
  };

  std::size_t node_count = 0;
  std::vector<Edge> edges;
  std::size_t source = 0;
  std::size_t sink = 0;

  std::size_t add_node() { return node_count++; }
  std::size_t add_edge(std::size_t from, std::size_t to, std::int64_t lower, std::int64_t upper) {
    edges.push_back({from, to, lower, upper});
    return edges.size() - 1;
  }

  /// Checks whether some s-t flow satisfies every edge's [lower, upper] bound,
  /// with *any* flow value. On success fills `flow_out[edge] = units carried`.
  bool feasible(std::vector<std::int64_t>& flow_out) const;
};

}  // namespace lcert
