// Maximum flow (Dinic) plus feasibility of flows with lower bounds.
//
// The nondeterministic run-finder for UOP tree automata reduces "can the
// children be assigned states so that the per-state counts land in the
// required intervals?" to a bipartite b-matching with lower bounds
// (children on one side, states on the other). That feasibility question is
// solved here by the classic circulation-with-lower-bounds transformation.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace lcert {

/// Dinic max-flow on a directed graph with integer capacities.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t node_count);

  /// Adds a directed edge and returns its index (for flow_on / set residual).
  std::size_t add_edge(std::size_t from, std::size_t to, std::int64_t capacity);

  /// Computes the maximum s-t flow. May be called once per instance.
  std::int64_t run(std::size_t source, std::size_t sink);

  /// Flow routed through the edge returned by add_edge.
  std::int64_t flow_on(std::size_t edge_index) const;

  std::size_t node_count() const noexcept { return graph_.size(); }

 private:
  struct Edge {
    std::size_t to;
    std::int64_t capacity;  // residual capacity
    std::size_t reverse;    // index of reverse edge in graph_[to]
  };

  bool bfs(std::size_t source, std::size_t sink);
  std::int64_t dfs(std::size_t v, std::size_t sink, std::int64_t pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_refs_;  // (node, offset)
  std::vector<std::int64_t> original_capacity_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

/// Reusable Dinic max-flow over a mutable-capacity edge structure.
///
/// MaxFlow above is build-once/run-once: every solve pays a fresh
/// vector<vector<Edge>> graph plus BFS/DFS scratch allocations, which is the
/// dominant cost when the flow itself is tiny (the UOP feasibility queries
/// solve thousands of ~10-node problems per tree). DinicScratch keeps one set
/// of flat arrays alive across solves:
///
///   - reset(n) clears the structure but retains every buffer's capacity;
///   - add_edge builds the structure once per *shape* of problem;
///   - set_capacity / reset_flows re-bound the same structure for the next
///     query (capacities change, adjacency does not);
///   - run() may be called after every reset_flows(), any number of times.
///
/// Edge slots are paired: directed edge e occupies slot 2e (forward) and
/// 2e+1 (residual), so the reverse of slot s is s^1. Adjacency is an
/// intrusive linked list (head_/next_) — insertion order is preserved
/// LIFO per node, which is fine because callers only consume the max-flow
/// *value* or per-edge flows, never traversal order.
class DinicScratch {
 public:
  /// Starts a new structure with `node_count` nodes; keeps allocations.
  void reset(std::size_t node_count);

  /// Adds a directed edge; returns its index for set_capacity/flow_on.
  std::size_t add_edge(std::size_t from, std::size_t to, std::int64_t capacity);

  /// Re-bounds an existing edge. Only meaningful before run() / after
  /// reset_flows(); capacities of in-flight residuals are not adjusted.
  void set_capacity(std::size_t edge, std::int64_t capacity);

  /// Restores every edge to its last set capacity (zero flow everywhere).
  void reset_flows();

  std::int64_t run(std::size_t source, std::size_t sink);

  /// Flow routed through `edge` by the last run().
  std::int64_t flow_on(std::size_t edge) const;

  std::size_t node_count() const noexcept { return head_.size(); }
  std::size_t edge_count() const noexcept { return base_capacity_.size(); }

 private:
  bool bfs(std::size_t source, std::size_t sink);
  std::int64_t dfs(std::size_t v, std::size_t sink, std::int64_t pushed);

  // Per-slot (2 slots per edge): target node, residual capacity, next slot in
  // the source node's adjacency list (SIZE_MAX terminates).
  std::vector<std::size_t> slot_to_;
  std::vector<std::int64_t> slot_capacity_;
  std::vector<std::size_t> slot_next_;
  std::vector<std::int64_t> base_capacity_;  ///< per edge, for reset_flows
  std::vector<std::size_t> head_;            ///< per node, first slot
  // BFS/DFS scratch, sized to node_count.
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::size_t> queue_;
};

/// Feasibility of a flow where every edge carries between `lower` and `upper`
/// units. Returns the per-edge flow if feasible, std::nullopt otherwise
/// (reported via the bool in the pair to avoid an <optional> of vector copy).
struct BoundedFlowProblem {
  struct Edge {
    std::size_t from;
    std::size_t to;
    std::int64_t lower;
    std::int64_t upper;
  };

  std::size_t node_count = 0;
  std::vector<Edge> edges;
  std::size_t source = 0;
  std::size_t sink = 0;

  std::size_t add_node() { return node_count++; }
  std::size_t add_edge(std::size_t from, std::size_t to, std::int64_t lower, std::int64_t upper) {
    edges.push_back({from, to, lower, upper});
    return edges.size() - 1;
  }

  /// Checks whether some s-t flow satisfies every edge's [lower, upper] bound,
  /// with *any* flow value. On success fills `flow_out[edge] = units carried`.
  bool feasible(std::vector<std::int64_t>& flow_out) const;
};

}  // namespace lcert
