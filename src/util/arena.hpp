// Bump allocator backing the prover's per-worker encoding scratch.
//
// The batch prover encodes one certificate per vertex; with a heap-backed
// BitWriter every vertex pays at least one allocation for the byte buffer
// (plus growth reallocations), and under the worker pool those allocations
// contend on the global allocator. An Arena hands out memory by bumping a
// pointer inside pre-allocated chunks: the first few vertices grow the arena
// to the high-water mark, after which encoding runs with zero steady-state
// allocations (chunks_allocated() stops moving — the property the tests pin
// down). reset() rewinds every chunk without releasing memory.
//
// Arenas are single-owner scratch: one arena per worker thread, never shared
// (ProverContext enforces this by construction). Nothing is destructed —
// only trivially-destructible buffers (certificate bytes, index arrays) may
// live in one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace lcert {

class Arena {
 public:
  /// First chunk size; later chunks double (and always fit the request).
  explicit Arena(std::size_t first_chunk_bytes = 1 << 12)
      : next_chunk_bytes_(first_chunk_bytes < 64 ? 64 : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Bump-allocates `size` bytes at `align`. Never returns nullptr; grows by
  /// whole chunks when the active chunk is exhausted.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t));

  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds every chunk; capacity is retained for reuse.
  void reset() noexcept {
    for (Chunk& c : chunks_) c.used = 0;
    active_ = 0;
  }

  /// Total bytes held across chunks (the high-water mark of demand).
  std::size_t capacity_bytes() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

  /// Monotonic count of chunk allocations ever made: once warm, a prover
  /// pass must not move this (the zero-steady-state-allocation contract).
  std::size_t chunks_allocated() const noexcept { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< index of the chunk currently bumping
  std::size_t next_chunk_bytes_;
};

}  // namespace lcert
