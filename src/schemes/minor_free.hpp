// Corollary 2.7: P_t-minor-free and C_t-minor-free graphs have O(log n)-bit
// certifications.
//
// P_t: on connected graphs, a P_t minor is exactly a P_t subgraph, and
// P_t-minor-free graphs have treedepth at most t [41]; the scheme is
// therefore Theorem 2.6's kernel machinery with the combinatorial kernel
// predicate "no path on t vertices" (an existential-FO-depth-t property, so
// reduction threshold t suffices).
//
// C_t: the corollary's route — a decomposition into 2-connected blocks, each
// block certified C_t-minor-free. Per vertex, the certificate carries, for
// every block containing it:
//   - the block's per-block kernel-core sub-certificate (blocks of a
//     C_t-minor-free graph are P_{t^2}-minor-free, hence treedepth <= t^2;
//     the sub-predicate is "circumference < t" on the block's kernel);
//   - the block-cut-tree fields: the block's depth in the BC tree and its
//     anchor (the cut vertex toward the BC root), with the invariant that
//     the anchor IS the root of the block's elimination tree, which the
//     Theorem 2.4 layer proves to be a real member of the block.
// Local rules (each vertex): every incident edge lies in exactly one common
// claimed block; among the vertex's blocks exactly one has minimal BC-depth
// and all others have depth min+1 and are anchored at the vertex itself;
// a non-root block's anchor is never the vertex's min block's anchor rule
// violation... — together these force the claimed blocks to tile the graph
// as a forest of blocks, so every cycle of G lies inside a single certified
// block.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "src/cert/scheme.hpp"
#include "src/schemes/kernel_scheme.hpp"

namespace lcert {

/// P_t-minor-free certification (t >= 2).
class PtMinorFreeScheme final : public Scheme {
 public:
  explicit PtMinorFreeScheme(std::size_t t,
                             KernelMsoScheme::WitnessProvider witness = {});

  std::string name() const override { return "Pt-minor-free[t=" + std::to_string(t_) + "]"; }
  bool holds(const Graph& g) const override;
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  bool verify(const ViewRef& view) const override;

 private:
  std::size_t t_;
  std::unique_ptr<KernelMsoScheme> inner_;
};

/// C_t-minor-free certification (t >= 3) via certified block decomposition.
class CtMinorFreeScheme final : public Scheme {
 public:
  /// `reduction_k`: per-block kernel threshold (must preserve "circumference
  /// < t"; the default 2t is validated empirically by the tests).
  explicit CtMinorFreeScheme(std::size_t t, std::size_t reduction_k = 0);

  std::string name() const override { return "Ct-minor-free[t=" + std::to_string(t_) + "]"; }
  bool holds(const Graph& g) const override;
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  bool verify(const ViewRef& view) const override;

  /// Treedepth budget used for block models: t^2 + 1 (the +1 pays for rooting
  /// the model at the anchor cut vertex).
  std::size_t block_depth_bound() const noexcept { return t_ * t_ + 1; }

 private:
  std::size_t t_;
  std::size_t k_;
};

}  // namespace lcert
