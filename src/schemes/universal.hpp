// The folklore universal certification (Section 1.2): give every vertex the
// full description of the graph — adjacency matrix plus the ID table — and
// let each vertex check (a) the description is identical to its neighbors',
// (b) its own row matches its actual neighborhood, and (c) the described
// graph satisfies the property. Works for ANY decidable property at O(n^2)
// bits per vertex; it is the baseline every compact scheme is measured
// against in the benches.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "src/cert/scheme.hpp"

namespace lcert {

class UniversalScheme final : public Scheme {
 public:
  using Predicate = std::function<bool(const Graph&)>;

  UniversalScheme(std::string property_name, Predicate predicate)
      : property_name_(std::move(property_name)), predicate_(std::move(predicate)) {}

  std::string name() const override { return "universal[" + property_name_ + "]"; }
  bool holds(const Graph& g) const override { return predicate_(g); }
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  bool verify(const ViewRef& view) const override;

 private:
  std::string property_name_;
  Predicate predicate_;
};

}  // namespace lcert
