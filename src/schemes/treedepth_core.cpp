#include "src/schemes/treedepth_core.hpp"

#include <memory>
#include <queue>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "src/cert/prove.hpp"
#include "src/treedepth/elimination.hpp"

namespace lcert {

void TdCore::encode(BitWriter& w) const {
  w.write_varnat(list.size() - 1);
  for (VertexId id : list) w.write_varnat(id);
  for (const TdFragment& f : frags) {
    w.write_varnat(f.exit_root_id);
    w.write_varnat(f.parent_id);
    w.write_varnat(f.dist);
  }
}

std::optional<TdCore> TdCore::decode(BitReader& r) {
  TdCore c;
  const std::uint64_t d = r.read_varnat();
  if (d > 4096) return std::nullopt;  // adversarial input guard
  c.list.resize(d + 1);
  for (auto& id : c.list) id = r.read_varnat();
  c.frags.resize(d);
  for (auto& f : c.frags) {
    f.exit_root_id = r.read_varnat();
    f.parent_id = r.read_varnat();
    f.dist = r.read_varnat();
  }
  return c;
}

bool td_suffix_comparable(const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
  const auto& shorter = a.size() <= b.size() ? a : b;
  const auto& longer = a.size() <= b.size() ? b : a;
  const std::size_t offset = longer.size() - shorter.size();
  for (std::size_t i = 0; i < shorter.size(); ++i)
    if (shorter[i] != longer[offset + i]) return false;
  return true;
}

namespace {

std::vector<VertexId> suffix_of(const std::vector<VertexId>& list, std::size_t len) {
  return {list.end() - static_cast<std::ptrdiff_t>(len), list.end()};
}

}  // namespace

std::vector<TdCore> build_td_cores(const Graph& g, const RootedTree& t) {
  if (!is_coherent_model(g, t))
    throw std::invalid_argument("build_td_cores: model must be coherent");
  const std::size_t n = g.vertex_count();
  std::vector<TdCore> certs(n);
  for (Vertex u = 0; u < n; ++u) {
    for (std::size_t a : t.ancestors(u)) certs[u].list.push_back(g.id(a));
    certs[u].frags.resize(t.depth(u));
  }

  // One spanning tree per non-root vertex v: BFS over G_v from the exit vertex.
  for (Vertex v = 0; v < n; ++v) {
    if (t.parent(v) == RootedTree::kNoParent) continue;
    const std::size_t k = t.depth(v);
    const Vertex exit = exit_vertex(g, t, v);
    const auto members = t.subtree(v);
    std::unordered_map<Vertex, bool> in_subtree;
    for (Vertex m : members) in_subtree[m] = true;
    std::unordered_map<Vertex, Vertex> parent;
    std::unordered_map<Vertex, std::uint64_t> dist;
    std::queue<Vertex> q;
    dist[exit] = 0;
    q.push(exit);
    while (!q.empty()) {
      const Vertex x = q.front();
      q.pop();
      for (Vertex y : g.neighbors(x)) {
        if (!in_subtree.count(y) || dist.count(y)) continue;
        dist[y] = dist[x] + 1;
        parent[y] = x;
        q.push(y);
      }
    }
    if (dist.size() != members.size())
      throw std::logic_error("build_td_cores: G_v not connected (model not coherent?)");
    for (Vertex u : members) {
      TdFragment& f = certs[u].frags.at(k - 1);
      f.exit_root_id = g.id(exit);
      f.parent_id = (u == exit) ? g.id(u) : g.id(parent.at(u));
      f.dist = dist.at(u);
    }
  }
  return certs;
}

std::vector<TdCore> build_td_cores_batch(const Graph& g, const RootedTree& t,
                                         ProverContext& ctx) {
  if (!is_coherent_model(g, t))
    throw std::invalid_argument("build_td_cores: model must be coherent");
  const std::size_t n = g.vertex_count();
  std::vector<TdCore> certs(n);
  ctx.for_each_index(n, [&](std::size_t, std::size_t u) {
    for (std::size_t a : t.ancestors(u)) certs[u].list.push_back(g.id(a));
    certs[u].frags.resize(t.depth(u));
  });

  // Subtree membership as preorder intervals: a subtree is the contiguous
  // run of t.preorder() starting at its root, in the same sequence as
  // RootedTree::subtree (same DFS expansion rule) — which matters because
  // the exit vertex is the *first* subtree vertex adjacent to the parent.
  const std::vector<std::size_t> order = t.preorder();
  std::vector<std::size_t> pos(n), sub_size(n, 1);
  for (std::size_t i = 0; i < n; ++i) pos[order[i]] = i;
  for (std::size_t i = n; i-- > 0;) {
    const std::size_t v = order[i];
    if (t.parent(v) != RootedTree::kNoParent) sub_size[t.parent(v)] += sub_size[v];
  }

  // One BFS over G_v per non-root v, from v's exit vertex: same neighbor
  // order and FIFO discipline as build_td_cores, over epoch-stamped arrays
  // instead of hash maps (no per-subtree allocations once a worker is warm).
  struct Scratch {
    std::vector<std::uint32_t> member_epoch, seen_epoch;
    std::vector<Vertex> bfs, parent;
    std::vector<std::uint64_t> dist;
    std::uint32_t epoch = 0;
    explicit Scratch(std::size_t count)
        : member_epoch(count, 0), seen_epoch(count, 0), parent(count, 0), dist(count, 0) {
      bfs.reserve(count);
    }
  };
  std::vector<std::unique_ptr<Scratch>> scratch(ctx.worker_count());

  ctx.for_each_index(n, [&](std::size_t worker, std::size_t v) {
    if (t.parent(v) == RootedTree::kNoParent) return;
    if (!scratch[worker]) scratch[worker] = std::make_unique<Scratch>(n);
    Scratch& s = *scratch[worker];
    ++s.epoch;
    const std::size_t k = t.depth(v);
    const Vertex p = t.parent(v);
    const std::span<const std::size_t> members =
        std::span<const std::size_t>(order).subspan(pos[v], sub_size[v]);
    for (std::size_t m : members) s.member_epoch[m] = s.epoch;
    Vertex exit = 0;
    bool exit_found = false;
    for (std::size_t x : members)
      if (g.has_edge(x, p)) {
        exit = x;
        exit_found = true;
        break;
      }
    if (!exit_found)
      throw std::invalid_argument("exit_vertex: model is not coherent at this vertex");
    s.bfs.clear();
    s.bfs.push_back(exit);
    s.seen_epoch[exit] = s.epoch;
    s.dist[exit] = 0;
    for (std::size_t head = 0; head < s.bfs.size(); ++head) {
      const Vertex x = s.bfs[head];
      for (Vertex y : g.neighbors(x)) {
        if (s.member_epoch[y] != s.epoch || s.seen_epoch[y] == s.epoch) continue;
        s.seen_epoch[y] = s.epoch;
        s.dist[y] = s.dist[x] + 1;
        s.parent[y] = x;
        s.bfs.push_back(y);
      }
    }
    if (s.bfs.size() != members.size())
      throw std::logic_error("build_td_cores: G_v not connected (model not coherent?)");
    for (std::size_t u : members) {
      TdFragment& f = certs[u].frags[k - 1];
      f.exit_root_id = g.id(exit);
      f.parent_id = (u == exit) ? g.id(u) : g.id(s.parent[u]);
      f.dist = s.dist[u];
    }
  });
  return certs;
}

bool verify_td_core(const ViewRef& view, const TdCore& mine, const std::vector<TdCore>& nbs,
                    std::size_t t) {
  const std::size_t d = mine.depth();

  // Step 1: depth bound, own ID first, root agreement.
  if (d + 1 > t) return false;
  if (mine.list.front() != view.id) return false;
  for (std::size_t i = 0; i < nbs.size(); ++i) {
    if (nbs[i].list.front() != view.neighbors()[i].id) return false;
    if (nbs[i].list.back() != mine.list.back()) return false;
    // Step 2: ancestor-descendant comparability. (Equal-length lists cannot
    // match: they start with distinct IDs.)
    if (!td_suffix_comparable(mine.list, nbs[i].list)) return false;
  }

  // Step 3 is structural: decode() forces exactly d fragments.

  // Step 4: per-ancestor spanning tree checks.
  for (std::size_t k = 1; k <= d; ++k) {
    const TdFragment& f = mine.frags[k - 1];
    const auto my_suffix = suffix_of(mine.list, k + 1);

    // Neighbors inside G_v (same (k+1)-suffix).
    std::vector<std::size_t> inside;
    for (std::size_t i = 0; i < nbs.size(); ++i) {
      if (nbs[i].list.size() < k + 1) continue;
      if (suffix_of(nbs[i].list, k + 1) == my_suffix) inside.push_back(i);
    }
    for (std::size_t i : inside)
      if (nbs[i].frags[k - 1].exit_root_id != f.exit_root_id) return false;

    const bool i_am_exit = (f.exit_root_id == view.id);
    if (i_am_exit != (f.dist == 0)) return false;
    if (i_am_exit) {
      if (f.parent_id != view.id) return false;
      // The exit vertex must touch v's parent: a neighbor whose *full* list
      // is our k-suffix (Claim 1's witness).
      const auto parent_list = suffix_of(mine.list, k);
      bool found = false;
      for (const auto& nb : nbs)
        if (nb.list == parent_list) {
          found = true;
          break;
        }
      if (!found) return false;
    } else {
      bool found = false;
      for (std::size_t i : inside) {
        if (view.neighbors()[i].id == f.parent_id && nbs[i].frags[k - 1].dist + 1 == f.dist) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace lcert
