// Lemma A.3: FO sentences of quantifier depth <= 2 have O(log n)-bit
// certifications.
//
// The proof shows any such sentence is, over connected graphs, semantically a
// boolean combination of three base predicates:
//   P1 "the graph has at most one vertex",
//   P2 "the graph is a clique",
//   P3 "the graph has a dominating vertex".
// Only four predicate valuations are realizable by connected graphs —
// (1,1,1), (0,1,1), (0,0,1), (0,0,0) — so the combination is pinned down by
// evaluating phi on one representative per class (K_1, K_3, K_{1,3}, P_4);
// the EF-equivalence behind this collapse is what the tests audit.
//
// Certification: the certified vertex count (Prop 3.4) plus the claimed
// predicate bits; positive/negative evidence per bit is degree-based (P2:
// every degree == n-1; ~P2: a certified spanning tree rooted at a deficient
// vertex; P3: a tree rooted at a dominating vertex; ~P3: every degree < n-1).
#pragma once

#include <array>
#include <optional>
#include <string>

#include "src/cert/scheme.hpp"
#include "src/logic/ast.hpp"

namespace lcert {

class Depth2FoScheme final : public Scheme {
 public:
  /// `phi` must be an FO sentence of quantifier depth <= 2.
  explicit Depth2FoScheme(Formula phi);

  std::string name() const override { return "depth2-fo"; }
  bool holds(const Graph& g) const override;
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  bool verify(const ViewRef& view) const override;

  /// The truth table of phi over the four realizable predicate classes, in
  /// the order (1,1,1), (0,1,1), (0,0,1), (0,0,0). Exposed for tests.
  const std::array<bool, 4>& truth_table() const noexcept { return table_; }

 private:
  static std::size_t class_index(bool p1, bool p2, bool p3);

  Formula phi_;
  std::array<bool, 4> table_;
};

}  // namespace lcert
