// Theorem 2.4: "treedepth <= t" is certifiable with O(t log n) bits.
//
// Section 5's construction, implemented faithfully. On a yes-instance the
// prover fixes a coherent elimination tree T of depth <= t and labels each
// vertex u (at depth d, root at depth 0) with:
//   - the list of IDs of u's ancestors, from u itself up to the root
//     (d + 1 IDs);
//   - for every ancestor v of u at depth k = 1..d (including u itself), u's
//     fragment of a spanning tree of G_v rooted at the *exit vertex* of v
//     (a vertex of G_v adjacent to v's parent, which exists by coherence):
//     the exit vertex's ID, u's parent ID in that spanning tree, and u's
//     distance to the exit vertex.
//
// The verifier implements the paper's four steps:
//  (1) d + 1 <= t, the list starts with the vertex's own ID, and all
//      neighbors agree on the root (last) ID;
//  (2) every graph neighbor's list is suffix-comparable with ours (edges may
//      only join ancestor-descendant pairs);
//  (3) there are exactly d spanning-tree fragments;
//  (4) for each k: the fragment is locally a correct spanning tree among the
//      vertices sharing our (k+1)-suffix (i.e. the vertices of G_v), and if
//      we are the fragment's root (the exit vertex) we have a graph neighbor
//      whose full list is our k-suffix — that neighbor is v's parent, and its
//      existence is what stitches the ancestor lists into a real elimination
//      tree (Claim 1 of the paper).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "src/cert/scheme.hpp"
#include "src/graph/rooted_tree.hpp"

namespace lcert {

class TreedepthScheme final : public Scheme {
 public:
  /// Supplies a witness elimination tree for assign(); the default tries the
  /// exact solver (n <= 20) then the heuristic. Generated benchmark instances
  /// install the generator's own witness to stay honest at scale.
  using WitnessProvider = std::function<std::optional<RootedTree>(const Graph&)>;

  explicit TreedepthScheme(std::size_t t, WitnessProvider witness = {});

  std::string name() const override { return "treedepth<=" + std::to_string(t_); }

  /// Ground truth. Uses the exact solver; requires n <= 20 unless the witness
  /// provider already certifies the yes side.
  bool holds(const Graph& g) const override;

  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  /// Batch path: same witness/model selection as assign(), cores built by
  /// build_td_cores_batch (bit-identical), certificates encoded in parallel
  /// with per-worker arena writers.
  std::optional<std::vector<Certificate>> prove_batch(const Graph& g,
                                                      ProverContext& ctx) const override;
  bool verify(const ViewRef& view) const override;

 private:
  std::optional<RootedTree> find_model(const Graph& g) const;

  std::size_t t_;
  WitnessProvider witness_;
};

}  // namespace lcert
