#include "src/schemes/universal.hpp"

#include <algorithm>

namespace lcert {

namespace {

struct Description {
  std::vector<VertexId> ids;
  std::vector<bool> adjacency;  // upper triangle, row-major

  static std::size_t tri_index(std::size_t i, std::size_t j, std::size_t n) {
    if (i > j) std::swap(i, j);
    return i * n - i * (i + 1) / 2 + (j - i - 1);
  }

  bool edge(std::size_t i, std::size_t j, std::size_t n) const {
    return adjacency[tri_index(i, j, n)];
  }

  void encode(BitWriter& w) const {
    w.write_varnat(ids.size());
    for (VertexId id : ids) w.write_varnat(id);
    for (bool b : adjacency) w.write_bit(b);
  }

  static std::optional<Description> decode(BitReader& r) {
    Description d;
    const std::uint64_t n = r.read_varnat();
    if (n == 0 || n > 100000) return std::nullopt;
    d.ids.resize(n);
    for (auto& id : d.ids) id = r.read_varnat();
    d.adjacency.resize(n * (n - 1) / 2);
    for (std::size_t i = 0; i < d.adjacency.size(); ++i) d.adjacency[i] = r.read_bit();
    return d;
  }

  Graph materialize() const {
    const std::size_t n = ids.size();
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (edge(i, j, n)) edges.emplace_back(i, j);
    Graph g(n, edges);
    g.set_ids(ids);
    return g;
  }
};

}  // namespace

std::optional<std::vector<Certificate>> UniversalScheme::assign(const Graph& g) const {
  if (!predicate_(g)) return std::nullopt;
  Description d;
  const std::size_t n = g.vertex_count();
  d.ids.resize(n);
  for (Vertex v = 0; v < n; ++v) d.ids[v] = g.id(v);
  d.adjacency.assign(n * (n - 1) / 2, false);
  for (auto [u, v] : g.edges()) d.adjacency[Description::tri_index(u, v, n)] = true;
  BitWriter w;
  d.encode(w);
  const Certificate cert = Certificate::from_writer(std::move(w));
  return std::vector<Certificate>(n, cert);
}

bool UniversalScheme::verify(const ViewRef& view) const {
  // Identical description everywhere (bitwise suffices: encoding is canonical).
  for (const auto& nb : view.neighbors())
    if (!(*nb.certificate == *view.certificate)) return false;

  BitReader r = view.certificate->reader();
  const auto d = Description::decode(r);
  if (!d.has_value()) return false;
  const std::size_t n = d->ids.size();

  // Distinct IDs, and locate ourselves.
  std::size_t me = SIZE_MAX;
  for (std::size_t i = 0; i < n; ++i) {
    if (d->ids[i] == view.id) me = i;
    for (std::size_t j = i + 1; j < n; ++j)
      if (d->ids[i] == d->ids[j]) return false;
  }
  if (me == SIZE_MAX) return false;

  // Our described row must equal our actual neighborhood (as ID sets).
  std::vector<VertexId> described;
  for (std::size_t j = 0; j < n; ++j)
    if (j != me && d->edge(me, j, n)) described.push_back(d->ids[j]);
  std::vector<VertexId> actual;
  for (const auto& nb : view.neighbors()) actual.push_back(nb.id);
  std::sort(described.begin(), described.end());
  std::sort(actual.begin(), actual.end());
  if (described != actual) return false;

  // The described graph must be connected (rules out padded phantom
  // components) and must satisfy the property.
  Graph described_graph = d->materialize();
  if (!described_graph.is_connected()) return false;
  return predicate_(described_graph);
}

}  // namespace lcert
