// Section 2.3's warm-up: certifying "diameter <= D" is hard in general (the
// paper's Omega~(n) example) but easy on trees. The paper sketches an
// O(log n) scheme (distance to a central root + depth of the subtree); this
// implementation sharpens it to O(log D): a mod-3 counter orients the tree
// toward a prover-chosen root (the same trick as Theorem 2.2), and each
// vertex carries the height of its subtree. Heights are forced exact
// bottom-up, and every vertex v checks that the longest path whose topmost
// vertex is v — 2 plus the two largest child heights — fits in D; the maximum
// of those local values over all v is exactly the diameter, for any rooting.
//
// Promise model: instances are trees.
#pragma once

#include <optional>
#include <string>

#include "src/cert/scheme.hpp"

namespace lcert {

class TreeDiameterScheme final : public Scheme {
 public:
  explicit TreeDiameterScheme(std::size_t diameter_bound);

  std::string name() const override { return "tree-diameter<=" + std::to_string(d_); }
  bool holds(const Graph& g) const override;
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  bool verify(const ViewRef& view) const override;

  /// 2 (mod-3 counter) + ceil(log2(D+1)) bits — independent of n.
  std::size_t certificate_bits() const noexcept;

 private:
  std::size_t d_;
};

}  // namespace lcert
