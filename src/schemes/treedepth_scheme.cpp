#include "src/schemes/treedepth_scheme.hpp"

#include <stdexcept>

#include "src/cert/prove.hpp"
#include "src/schemes/treedepth_core.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/treedepth/exact.hpp"
#include "src/treedepth/heuristic.hpp"

namespace lcert {

namespace {

std::optional<RootedTree> default_witness(const Graph& g, std::size_t t) {
  if (g.vertex_count() <= 20) {
    const auto result = exact_treedepth_with_model(g);
    if (result.treedepth > t) return std::nullopt;
    return result.model;
  }
  RootedTree h = heuristic_elimination_tree(g);
  if (model_depth(h) > t) return std::nullopt;
  return h;
}

}  // namespace

TreedepthScheme::TreedepthScheme(std::size_t t, WitnessProvider witness)
    : t_(t), witness_(std::move(witness)) {
  if (t == 0) throw std::invalid_argument("TreedepthScheme: t must be >= 1");
}

bool TreedepthScheme::holds(const Graph& g) const {
  if (witness_) {
    const auto w = witness_(g);
    if (w.has_value() && is_valid_model(g, *w) && model_depth(*w) <= t_) return true;
    // A failed custom witness is inconclusive; fall through to the solver.
  }
  if (g.vertex_count() <= 20) return exact_treedepth(g) <= t_;
  if (model_depth(heuristic_elimination_tree(g)) <= t_) return true;
  throw std::invalid_argument(
      "TreedepthScheme::holds: no witness and the instance is too large for the exact solver");
}

std::optional<RootedTree> TreedepthScheme::find_model(const Graph& g) const {
  std::optional<RootedTree> model;
  if (witness_) {
    auto w = witness_(g);
    if (w.has_value() && is_valid_model(g, *w) && model_depth(*w) <= t_)
      model = make_coherent(g, *w);
  }
  if (!model.has_value()) {
    auto w = default_witness(g, t_);
    if (!w.has_value()) return std::nullopt;
    model = make_coherent(g, *w);
  }
  return model;
}

std::optional<std::vector<Certificate>> TreedepthScheme::assign(const Graph& g) const {
  const auto model = find_model(g);
  if (!model.has_value()) return std::nullopt;

  const auto cores = build_td_cores(g, *model);
  std::vector<Certificate> out(g.vertex_count());
  for (Vertex u = 0; u < g.vertex_count(); ++u) {
    BitWriter w;
    cores[u].encode(w);
    out[u] = Certificate::from_writer(std::move(w));
  }
  return out;
}

std::optional<std::vector<Certificate>> TreedepthScheme::prove_batch(
    const Graph& g, ProverContext& ctx) const {
  const auto model = find_model(g);
  if (!model.has_value()) return std::nullopt;

  const auto cores = build_td_cores_batch(g, *model, ctx);
  std::vector<Certificate> out(g.vertex_count());
  ctx.for_each_index(g.vertex_count(), [&](std::size_t worker, std::size_t u) {
    BitWriter& w = ctx.writer(worker);
    cores[u].encode(w);
    out[u] = Certificate::from_writer(std::move(w));
  });
  return out;
}

bool TreedepthScheme::verify(const ViewRef& view) const {
  BitReader r = view.certificate->reader();
  const auto mine = TdCore::decode(r);
  if (!mine.has_value()) return false;
  std::vector<TdCore> nbs;
  nbs.reserve(view.neighbors().size());
  for (const auto& nb : view.neighbors()) {
    BitReader nr = nb.certificate->reader();
    auto c = TdCore::decode(nr);
    if (!c.has_value()) return false;
    nbs.push_back(std::move(*c));
  }
  return verify_td_core(view, *mine, nbs, t_);
}

}  // namespace lcert
