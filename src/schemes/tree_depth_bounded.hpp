// The O(log k) contrast noted after Theorem 2.5: on *trees*, "the tree has a
// root making its height <= k-1" (i.e. it can be arranged as a depth-k rooted
// tree) is certifiable with O(log k) bits — each vertex just stores its
// distance to the prover-chosen root, which is at most k-1. The point of the
// contrast: certifying treedepth <= k on general graphs costs Theta(log n)
// (Theorems 2.4/2.5) while the tree analogue is independent of n.
//
// Promise model: instances are trees.
#pragma once

#include <optional>
#include <string>

#include "src/cert/scheme.hpp"

namespace lcert {

class TreeDepthBoundedScheme final : public Scheme {
 public:
  explicit TreeDepthBoundedScheme(std::size_t k);

  std::string name() const override { return "tree-height<" + std::to_string(k_); }
  /// holds(g): g (a tree) has radius <= k-1, i.e. some root gives depth <= k levels.
  bool holds(const Graph& g) const override;
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  bool verify(const ViewRef& view) const override;

  std::size_t certificate_bits() const noexcept;

 private:
  std::size_t k_;
};

}  // namespace lcert
