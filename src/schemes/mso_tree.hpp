// Theorem 2.2: any MSO property of trees has an O(1)-bit certification.
//
// Certificates carry (distance to a prover-chosen root, mod 3) and the
// vertex's state in an accepting run of a UOP tree automaton recognizing the
// property — 2 + ceil(log2 |Q|) bits, independent of n. The verifier
// re-derives the orientation from the mod-3 counters (a classic argument
// forces exactly one root on a tree), counts the states of its children, and
// evaluates the automaton's Presburger transition; the root also checks
// acceptance.
//
// The paper's certificate also embeds the (constant-size) description of the
// automaton, which each vertex compares against the formula; here the
// automaton is a parameter of the verifier — an equivalent constant-size
// factoring, since prover and verifier share the property being certified.
//
// Promise model: instances are trees (the network itself). Acyclicity is not
// re-certified — it cannot be with O(1) bits (Göös–Suomela) — so behaviour on
// non-tree inputs is unspecified, exactly as in the paper.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/automata/box_index.hpp"
#include "src/automata/library.hpp"
#include "src/cert/scheme.hpp"
#include "src/obs/metrics.hpp"

namespace lcert {

namespace mso_detail {
struct SolveCore;  // src/schemes/mso_tree_detail.hpp
}

class MsoTreeScheme final : public Scheme {
 public:
  explicit MsoTreeScheme(NamedAutomaton automaton);

  std::string name() const override { return "mso-tree[" + automaton_.name + "]"; }
  bool holds(const Graph& g) const override;
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  /// Level-synchronized memoized batch prover. Bit-identical to assign() for
  /// every thread count and with memoization on or off: the feasibility
  /// masks it computes equal find_accepting_run's per-vertex boolean rows,
  /// and the extraction solver is the same flow construction in the same
  /// edge order. Memo keys: canonical subtree code for feasibility (order-
  /// invariant), (ordered child-code tuple, parent state) for extraction
  /// (the flow's choice depends on child order). Falls back to assign() when
  /// state_count > 64 (masks are single words).
  std::optional<std::vector<Certificate>> prove_batch(const Graph& g,
                                                      ProverContext& ctx) const override;
  bool verify(const ViewRef& view) const override;
  /// Hot-loop override: hoists the automaton parameters (state count, field
  /// widths, compiled transition boxes) out of the per-vertex loop; decides
  /// each view exactly as verify() does.
  void verify_batch(std::span<const ViewRef> views,
                    std::span<std::uint8_t> accept) const override;
  /// Names the automaton state with the widest DNF fan-out among the batch's
  /// vertices ("state=<name> boxes=<canonical> raw_boxes=<raw>
  /// vertices=<k> probes/vertex=<avg>") — the outlier sampler's attribution
  /// for slow batches. probes/vertex is measured by replaying a sample of
  /// the worst state's views through the indexed check.
  std::string slow_batch_attribution(std::span<const ViewRef> views) const override;

  /// Max canonical interval boxes in any single automaton state — the DNF
  /// fan-out after canonicalization (the raw fan-out, ~29k for leaves>=4,
  /// is exposed by the boxes_per_state_raw gauge).
  std::size_t max_boxes_per_state() const noexcept;

  /// Incremental recertification prover (DESIGN.md §13): maintains a live
  /// rooted tree + feasibility masks + run states across streaming edits and
  /// repairs only the dirty slice per edit. Returns nullptr when the
  /// automaton has more than 64 states (masks are single words). The prover
  /// copies this scheme, so it is self-contained.
  std::unique_ptr<IncrementalProver> make_incremental_prover(
      const RunOptions& options) const override;

  /// Exact certificate width in bits (constant across n).
  std::size_t certificate_bits() const noexcept { return 2 + state_bits_; }

  /// Semantic attack surface for the SAT-guided forgery search: certificates
  /// here ARE run encodings (depth mod 3, then the state), so the audit can
  /// search the space of accepting runs directly instead of flipping bits.
  std::optional<RunForgerySurface> run_forgery_surface() const override;

 private:
  friend class MsoTreeIncrementalProver;  // src/schemes/mso_tree_incr.cpp

  /// Solver core view over this scheme's automaton (borrowing pointers; the
  /// scheme must outlive the core).
  mso_detail::SolveCore solve_core() const;

  NamedAutomaton automaton_;
  unsigned state_bits_;
  /// transition(q) compiled to the canonical DNF and indexed once at
  /// construction: the verifier runs per vertex per round, and the indexed
  /// first-match probe replaces both the constraint-AST walk and the linear
  /// box sweep (the leaves>=4 cliff) while answering with the identical box.
  std::vector<BoxIndex> transition_index_;
  /// Raw (pre-canonicalization) DNF size per state, kept for the
  /// boxes_per_state_raw gauge and slow-batch attribution.
  std::vector<std::size_t> raw_boxes_per_state_;
  obs::Counter box_probes_;  ///< verify/box_probes: boxes fully tested
};

}  // namespace lcert
