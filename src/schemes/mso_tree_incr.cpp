// Incremental recertification prover for MSO tree schemes (DESIGN.md §13).
//
// Maintains a live certified instance — rooted tree, per-vertex feasibility
// masks, run states, certificates — across streaming GraphEdits, repairing
// only the dirty slice per edit:
//
//   bottom-up   recompute feasibility masks of exactly the vertices whose
//               child-mask multiset changed (structural seeds + upward
//               propagation, stopping as soon as a recomputed mask matches);
//   top-down    re-extract child runs of exactly the vertices whose ordered
//               child-mask tuple or own run state changed (downward
//               propagation, stopping where the chosen child runs match);
//   re-patch    swap in the precomputed 3*k payload for vertices whose run
//               or depth-mod-3 changed.
//
// Both passes run through the same mso_detail::SolveCore the cold prover
// uses, against a memo that persists across edits (values are pure functions
// of their keys, so persistence is bit-identity-safe). The fast path is
// gated on root stability: the certification root must still be the first
// good root of the mutated tree — cold proving picks the first good root
// whose run accepts, and in this library every good root accepts on
// yes-instances (pinned by the automaton test battery), so first-good-root
// equality is exactly what bit-identity with a cold re-prove requires. Any
// gate failure falls back to a full re-prove that still reuses the warm memo
// and prover context.
//
// Contract (enforced by the kIncrementalDivergence fuzz oracle and
// tests/test_incremental.cpp): after every apply(), certificates() is
// bit-identical to prove_assignment over the accumulated graph.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/cert/prove.hpp"
#include "src/graph/edit.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/mso_tree_detail.hpp"

namespace lcert {

namespace {

template <typename T>
void erase_index(std::vector<T>& v, std::size_t i) {
  v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
}

}  // namespace

class MsoTreeIncrementalProver final : public IncrementalProver {
 public:
  MsoTreeIncrementalProver(const MsoTreeScheme& scheme, const RunOptions& options)
      : scheme_(scheme), options_(options), ctx_(1, options) {
    core_ = scheme_.solve_core();  // borrows from scheme_, a stable member
    table_ = core_.payload_table(ctx_);
  }

  const std::optional<std::vector<Certificate>>& init(const Graph& g) override {
    rebuild_from(g);
    changed_.clear();
    changed_all_ = true;
    return certs_;
  }

  IncrementalStats apply(const GraphEdit& edit) override {
    IncrementalStats st;
    const std::size_t hits0 = ctx_.memo_hits();
    const std::size_t miss0 = ctx_.memo_misses();
    changed_.clear();
    changed_all_ = false;
    apply_impl(edit, st);
    st.certified = certs_.has_value();
    st.memo_hits = ctx_.memo_hits() - hits0;
    st.memo_misses = ctx_.memo_misses() - miss0;
    const std::size_t n = tree_.size();
    if (st.certified && n > 0) {
      st.changed_certificates = changed_all_ ? n : changed_.size();
      st.reuse_ratio =
          1.0 - static_cast<double>(st.changed_certificates) / static_cast<double>(n);
    }
    st.reverify_clean = reverify(st);
    memo_.maybe_trim();  // bounds growth under unbounded edit streams
    return st;
  }

  const std::optional<std::vector<Certificate>>& certificates() const override {
    return certs_;
  }
  const std::vector<std::size_t>& changed_vertices() const override { return changed_; }
  bool changed_all() const override { return changed_all_; }
  Graph graph() const override { return materialize(); }

 private:
  mso_detail::MsoMemo* memo_ptr() { return options_.memoize ? &memo_ : nullptr; }

  [[noreturn]] void reject(const GraphEdit& edit, const std::string& why) const {
    throw std::invalid_argument(scheme_.name() + ": " + to_string(edit) + ": " + why);
  }

  /// The accumulated graph, rebuilt from the tree + IDs on demand. Equal as
  /// a value to the apply_edit-accumulated graph: the tree patches replicate
  /// apply_edit's index semantics, and Graph normalizes adjacency order.
  Graph materialize() const {
    if (!graph_cache_.has_value()) {
      std::vector<std::pair<Vertex, Vertex>> edges;
      edges.reserve(tree_.size() == 0 ? 0 : tree_.size() - 1);
      for (std::size_t v = 0; v < tree_.size(); ++v)
        if (tree_.parent(v) != RootedTree::kNoParent)
          edges.emplace_back(static_cast<Vertex>(v),
                             static_cast<Vertex>(tree_.parent(v)));
      Graph g(tree_.size(), edges);
      g.set_ids(ids_);
      graph_cache_ = std::move(g);
    }
    return *graph_cache_;
  }

  /// First good root of the current tree — what a cold re-prove would pick.
  /// Cheap under the kAllVertices/kInternalVertices policies; kGeneric
  /// materializes the graph and asks good_roots itself.
  std::size_t first_good_root() const {
    switch (scheme_.automaton_.root_policy) {
      case RootPolicy::kAllVertices:
        return 0;
      case RootPolicy::kInternalVertices: {
        const std::size_t n = tree_.size();
        if (n <= 2) return 0;  // roots_internal falls back to all vertices
        for (std::size_t v = 0; v < n; ++v) {
          const std::size_t deg =
              tree_.children(v).size() + (v == tree_.root() ? 0 : 1);
          if (deg >= 2) return v;
        }
        return 0;  // unreachable: an n>=3 tree has an internal vertex
      }
      case RootPolicy::kGeneric: {
        const Graph g = materialize();
        const auto roots = scheme_.automaton_.good_roots(g);
        return roots.empty() ? 0 : static_cast<std::size_t>(roots[0]);
      }
    }
    return 0;
  }

  /// Cold (but memo- and context-warm) full re-certification; mirrors
  /// prove_batch's root loop exactly, additionally retaining the tree, mask
  /// and run state of the successful root for later incremental repair.
  void rebuild_from(const Graph& g) {
    const std::size_t n = g.vertex_count();
    ctx_.ensure_universe(n);
    ids_.resize(n);
    for (Vertex v = 0; v < n; ++v) ids_[v] = g.id(v);
    graph_cache_.reset();
    mso_detail::MsoMemo* memo = memo_ptr();
    const bool yes = scheme_.holds(g);  // throws off the tree promise
    const auto roots = scheme_.automaton_.good_roots(g);
    if (yes) {
      for (Vertex root : roots) {
        RootedTree t = RootedTree::from_graph(g, root);
        const auto levels = t.levels();
        std::vector<std::uint64_t> mask(n, 0);
        core_.bottom_up(t, levels, ctx_, memo, mask);
        const std::size_t root_state = core_.accepting_state(mask[t.root()]);
        if (root_state == SIZE_MAX) continue;
        std::vector<std::size_t> run(n, SIZE_MAX);
        run[t.root()] = root_state;
        core_.top_down(t, levels, ctx_, memo, mask, run);
        std::vector<Certificate> certs(n);
        for (std::size_t v = 0; v < n; ++v)
          certs[v] = table_[(t.depth(v) % 3) * core_.k + run[v]];
        tree_ = std::move(t);
        mask_ = std::move(mask);
        run_ = std::move(run);
        certs_ = std::move(certs);
        return;
      }
    }
    // Uncertified (or, defensively, a yes-instance no good root accepted,
    // which cold also answers with nullopt): keep the first good root's
    // masks warm so a later edit can revalidate incrementally.
    const Vertex root = roots.empty() ? 0 : roots[0];
    RootedTree t = RootedTree::from_graph(g, root);
    const auto levels = t.levels();
    std::vector<std::uint64_t> mask(n, 0);
    core_.bottom_up(t, levels, ctx_, memo, mask);
    tree_ = std::move(t);
    mask_ = std::move(mask);
    run_.assign(n, SIZE_MAX);
    certs_.reset();
  }

  void full_rebuild(const Graph& g, IncrementalStats& st) {
    st.full_reprove = true;
    changed_all_ = true;
    rebuild_from(g);
    st.reproved_vertices += tree_.size();
  }

  void apply_impl(const GraphEdit& edit, IncrementalStats& st) {
    const std::size_t n = tree_.size();
    switch (edit.kind) {
      case EditKind::kEdgeAdd:
      case EditKind::kEdgeDelete:
        reject(edit, "raw edge edits leave the tree family");
      case EditKind::kIdPermute: {
        if (edit.ids.size() != n) reject(edit, "id vector size mismatch");
        ids_ = edit.ids;
        graph_cache_.reset();
        // Certificates encode (depth mod 3, run state) only — relabeling
        // changes nothing. Zero-dirty edit.
        return;
      }
      case EditKind::kLeafGraft: {
        if (edit.a >= n) reject(edit, "anchor out of range");
        const std::size_t leaf = tree_.graft_leaf(edit.a);
        ids_.push_back(edit.fresh_id);
        mask_.push_back(0);
        run_.push_back(SIZE_MAX);
        if (certs_.has_value()) certs_->emplace_back();
        graph_cache_.reset();
        ctx_.ensure_universe(tree_.size());
        mask_[leaf] = core_.memo_mask(tree_, mask_, leaf, ctx_, memo_ptr());
        ++st.reproved_vertices;
        finish_structural({edit.a}, {}, {leaf}, st);
        return;
      }
      case EditKind::kLeafPrune: {
        if (edit.a >= n) reject(edit, "vertex out of range");
        const bool is_tree_leaf = tree_.is_leaf(edit.a) && edit.a != tree_.root();
        const bool is_degree1_root =
            edit.a == tree_.root() && tree_.children(edit.a).size() == 1;
        if (!is_tree_leaf && !is_degree1_root) reject(edit, "not a degree-1 vertex");
        if (is_degree1_root) {
          // Pruning the certification root: no incremental image — the root
          // moves by definition. Warm full re-prove of the mutated graph.
          full_rebuild(apply_edit(materialize(), edit), st);
          return;
        }
        const std::size_t p = tree_.parent(edit.a);
        tree_.prune_leaf(edit.a);
        erase_index(ids_, edit.a);
        erase_index(mask_, edit.a);
        erase_index(run_, edit.a);
        if (certs_.has_value()) erase_index(*certs_, edit.a);
        graph_cache_.reset();
        finish_structural({p > edit.a ? p - 1 : p}, {}, {}, st);
        return;
      }
      case EditKind::kSubtreeSwap: {
        if (edit.a >= n || edit.b >= n || edit.c >= n)
          reject(edit, "endpoint out of range");
        const std::size_t m = edit.a, np = edit.b, op = edit.c;
        // Child endpoint of the deleted edge {m, op} under *our* rooting.
        std::size_t c0;
        if (tree_.parent(m) == op) c0 = m;
        else if (tree_.parent(op) == m) c0 = op;
        else reject(edit, "old-parent edge not present");
        if (m == np) reject(edit, "loop");
        if (tree_.parent(m) == np || tree_.parent(np) == m)
          reject(edit, "new-parent edge already present");
        // Attachment endpoint of the added edge {m, np}: the one inside the
        // detached subtree; the other becomes its new parent. reattach
        // validates both sides (a cycle-creating swap throws there).
        const std::size_t a_end = tree_.is_ancestor(c0, np) ? np : m;
        const std::size_t p_end = a_end == np ? m : np;
        const std::vector<std::size_t> moved = tree_.subtree(c0);
        std::vector<std::size_t> old_mod(moved.size());
        for (std::size_t i = 0; i < moved.size(); ++i)
          old_mod[i] = tree_.depth(moved[i]) % 3;
        const std::size_t pc0 = tree_.parent(c0);
        std::vector<std::size_t> seeds = tree_.reattach(c0, a_end, p_end);
        graph_cache_.reset();
        seeds.push_back(pc0);
        seeds.push_back(p_end);
        // Depth-mod-3 changes are confined to the moved piece.
        std::vector<std::size_t> mod3_changed;
        for (std::size_t i = 0; i < moved.size(); ++i)
          if (tree_.depth(moved[i]) % 3 != old_mod[i]) mod3_changed.push_back(moved[i]);
        finish_structural(std::move(seeds), std::move(mod3_changed), {}, st);
        return;
      }
    }
    reject(edit, "unknown edit kind");
  }

  /// Shared tail of every structural edit: root-stability gate, bottom-up
  /// mask repair from `seeds`, certification-status transitions, top-down
  /// run repair, certificate re-patch of `run changes + mod3_changed +
  /// fresh`. The tree is already patched when this runs.
  void finish_structural(std::vector<std::size_t> seeds,
                         std::vector<std::size_t> mod3_changed,
                         std::vector<std::size_t> fresh, IncrementalStats& st) {
    const std::size_t n = tree_.size();
    ctx_.ensure_universe(n);

    std::size_t max_depth = 0;
    for (std::size_t s : seeds) max_depth = std::max(max_depth, tree_.depth(s));
    st.dirty_path_len = seeds.empty() ? 0 : max_depth + 1;

    if (first_good_root() != tree_.root()) {
      full_rebuild(materialize(), st);
      return;
    }

    mso_detail::MsoMemo* memo = memo_ptr();

    // Bottom-up repair, deepest bucket first: recompute the mask of every
    // vertex whose child-mask multiset changed; a changed result marks the
    // parent dirty, an unchanged one stops the upward propagation.
    std::vector<char> in_dirty(n, 0);
    std::vector<std::vector<std::size_t>> buckets(max_depth + 1);
    std::vector<std::size_t> dirty_all;
    for (std::size_t s : seeds)
      if (!in_dirty[s]) {
        in_dirty[s] = 1;
        buckets[tree_.depth(s)].push_back(s);
      }
    for (std::size_t d = buckets.size(); d-- > 0;) {
      for (std::size_t i = 0; i < buckets[d].size(); ++i) {
        const std::size_t v = buckets[d][i];
        dirty_all.push_back(v);
        const std::uint64_t old = mask_[v];
        const std::uint64_t neu = core_.memo_mask(tree_, mask_, v, ctx_, memo);
        ++st.reproved_vertices;
        if (neu == old) continue;
        mask_[v] = neu;
        if (v == tree_.root()) continue;
        const std::size_t p = tree_.parent(v);
        if (!in_dirty[p]) {
          in_dirty[p] = 1;
          buckets[tree_.depth(p)].push_back(p);
        }
      }
    }

    const std::size_t root_state = core_.accepting_state(mask_[tree_.root()]);
    const bool was_certified = certs_.has_value();

    if (root_state == SIZE_MAX) {
      // The root mask rejects. If the property nevertheless holds this is a
      // library bug (every good root accepts on yes-instances); cold would
      // fall through to the next good root — mirror it with a warm full
      // rebuild. Otherwise the instance flipped to uncertified: cold answers
      // nullopt after its holds() guard, and the repaired masks stay warm.
      const Graph g = materialize();
      if (scheme_.holds(g)) {
        full_rebuild(g, st);
        return;
      }
      certs_.reset();
      run_.assign(n, SIZE_MAX);
      if (was_certified) changed_all_ = true;
      return;
    }

    // The root mask accepts: by automaton soundness (no rooted tree lacking
    // the property accepts) the property holds, so the holds() oracle is
    // skipped on this hot path — that equivalence is pinned by the automaton
    // test battery (DESIGN.md §13).
    if (!was_certified) {
      // Revalidation: the run is stale everywhere, so extraction is a full
      // top-down (the repaired masks were kept warm for exactly this).
      run_.assign(n, SIZE_MAX);
      run_[tree_.root()] = root_state;
      const auto levels = tree_.levels();
      core_.top_down(tree_, levels, ctx_, memo, mask_, run_);
      std::vector<Certificate> certs(n);
      for (std::size_t v = 0; v < n; ++v)
        certs[v] = table_[(tree_.depth(v) % 3) * core_.k + run_[v]];
      certs_ = std::move(certs);
      changed_all_ = true;
      st.reproved_vertices += n;
      return;
    }

    // Top-down repair, ascending depth: re-extract every vertex whose tuple
    // changed (dirty_all) or whose run state changed (propagated); children
    // whose chosen run matches the old one stop the downward propagation.
    std::vector<char> done(n, 0);
    std::vector<std::size_t> order = dirty_all;
    std::vector<std::size_t> run_changed;
    if (run_[tree_.root()] != root_state) {
      run_[tree_.root()] = root_state;
      run_changed.push_back(tree_.root());
      if (!in_dirty[tree_.root()]) order.push_back(tree_.root());
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return tree_.depth(a) < tree_.depth(b); });
    std::vector<std::size_t> stack;
    std::vector<std::size_t> scratch;
    const auto process = [&](std::size_t start) {
      stack.push_back(start);
      while (!stack.empty()) {
        const std::size_t v = stack.back();
        stack.pop_back();
        if (done[v]) continue;
        done[v] = 1;
        const auto kids = tree_.children(v);
        if (kids.empty()) continue;
        const std::vector<std::size_t>& chosen =
            core_.memo_extract(tree_, mask_, v, run_[v], ctx_, memo, scratch);
        ++st.reproved_vertices;
        for (std::size_t j = 0; j < kids.size(); ++j) {
          const std::size_t c = kids[j];
          if (run_[c] == chosen[j]) continue;
          run_[c] = chosen[j];
          run_changed.push_back(c);
          stack.push_back(c);
        }
      }
    };
    for (std::size_t v : order)
      if (!done[v]) process(v);

    // Certificate re-patch: a cert changes iff its run or depth-mod-3 did.
    std::vector<char> cand(n, 0);
    const auto consider = [&](std::size_t v) {
      if (cand[v]) return;
      cand[v] = 1;
      const Certificate& want = table_[(tree_.depth(v) % 3) * core_.k + run_[v]];
      if ((*certs_)[v] != want) {
        (*certs_)[v] = want;
        changed_.push_back(v);
      }
    };
    for (std::size_t v : run_changed) consider(v);
    for (std::size_t v : mod3_changed) consider(v);
    for (std::size_t v : fresh) consider(v);
  }

  /// Radius-1 re-verification of the changed slice: every changed vertex
  /// plus its tree neighborhood, through the scheme's own verify_batch.
  bool reverify(IncrementalStats& st) {
    if (!certs_.has_value()) return true;
    const std::size_t n = tree_.size();
    std::vector<std::size_t> targets;
    if (changed_all_) {
      targets.resize(n);
      std::iota(targets.begin(), targets.end(), std::size_t{0});
    } else {
      if (changed_.empty()) return true;
      std::vector<char> mark(n, 0);
      const auto add = [&](std::size_t v) {
        if (!mark[v]) {
          mark[v] = 1;
          targets.push_back(v);
        }
      };
      for (std::size_t v : changed_) {
        add(v);
        if (tree_.parent(v) != RootedTree::kNoParent) add(tree_.parent(v));
        for (std::size_t c : tree_.children(v)) add(c);
      }
    }
    st.reverified_vertices = targets.size();

    std::size_t total = 0;
    for (std::size_t v : targets)
      total += tree_.children(v).size() + (v == tree_.root() ? 0 : 1);
    std::vector<NeighborRef> flat;
    flat.reserve(total);
    std::vector<std::size_t> offs;
    offs.reserve(targets.size() + 1);
    offs.push_back(0);
    const auto& certs = *certs_;
    for (std::size_t v : targets) {
      if (tree_.parent(v) != RootedTree::kNoParent) {
        const std::size_t p = tree_.parent(v);
        flat.push_back({ids_[p], &certs[p]});
      }
      for (std::size_t c : tree_.children(v)) flat.push_back({ids_[c], &certs[c]});
      offs.push_back(flat.size());
    }
    std::vector<ViewRef> views(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const std::size_t v = targets[i];
      views[i] = ViewRef{ids_[v], &certs[v], flat.data() + offs[i],
                         offs[i + 1] - offs[i]};
    }
    std::vector<std::uint8_t> accept(targets.size(), 0);
    scheme_.verify_batch(views, accept);
    return std::all_of(accept.begin(), accept.end(),
                       [](std::uint8_t a) { return a == 1; });
  }

  MsoTreeScheme scheme_;  ///< own copy: the prover is self-contained
  RunOptions options_;
  ProverContext ctx_;  ///< persistent: arenas + feasibility scratch stay warm
  mso_detail::SolveCore core_;
  mso_detail::MsoMemo memo_;  ///< persists across edits (pure values)
  std::vector<Certificate> table_;  ///< 3*k payloads, built once

  RootedTree tree_;
  std::vector<VertexId> ids_;
  std::vector<std::uint64_t> mask_;
  std::vector<std::size_t> run_;
  std::optional<std::vector<Certificate>> certs_;
  std::vector<std::size_t> changed_;
  bool changed_all_ = false;
  mutable std::optional<Graph> graph_cache_;
};

std::unique_ptr<IncrementalProver> MsoTreeScheme::make_incremental_prover(
    const RunOptions& options) const {
  if (automaton_.automaton.state_count > 64) return nullptr;  // masks are words
  return std::make_unique<MsoTreeIncrementalProver>(*this, options);
}

}  // namespace lcert
