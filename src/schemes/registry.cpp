#include "src/schemes/registry.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/graph/generators.hpp"
#include "src/obs/instrumented_scheme.hpp"
#include "src/logic/eval.hpp"
#include "src/logic/formulas.hpp"
#include "src/schemes/automorphism_scheme.hpp"
#include "src/schemes/depth2_fo.hpp"
#include "src/schemes/existential_fo.hpp"
#include "src/schemes/kernel_scheme.hpp"
#include "src/schemes/minor_free.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/spanning_tree.hpp"
#include "src/schemes/tree_depth_bounded.hpp"
#include "src/schemes/tree_diameter.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/schemes/universal.hpp"
#include "src/treedepth/cops_robber.hpp"

namespace lcert {

namespace {

Graph with_ids(Graph g, Rng& rng) {
  assign_random_ids(g, rng);
  return g;
}

Graph doubled_tree(std::size_t half, Rng& rng) {
  const Graph base = make_random_tree(std::max<std::size_t>(half, 2), rng);
  std::vector<std::pair<Vertex, Vertex>> edges;
  const std::size_t m = base.vertex_count();
  for (auto [u, v] : base.edges()) {
    edges.emplace_back(u, v);
    edges.emplace_back(u + m, v + m);
  }
  edges.emplace_back(0, m);
  return Graph(2 * m, edges);
}

// Every vertex gets a pendant twin leaf: the twin-matching is perfect.
Graph twinned_tree(std::size_t half, Rng& rng) {
  const Graph base = make_random_tree(std::max<std::size_t>(half, 2), rng);
  const std::size_t m = base.vertex_count();
  std::vector<std::pair<Vertex, Vertex>> edges = base.edges();
  for (Vertex v = 0; v < m; ++v) edges.emplace_back(v, v + m);
  return Graph(2 * m, edges);
}

Graph triangle_chain(std::size_t triangles) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t i = 0; i < triangles; ++i) {
    const Vertex base = static_cast<Vertex>(2 * i);
    edges.emplace_back(base, base + 1);
    edges.emplace_back(base, base + 2);
    edges.emplace_back(base + 1, base + 2);
  }
  return Graph(2 * triangles + 1, edges);
}

// ---------------------------------------------------------------------------
// Reference oracles: second, independent implementations of each property for
// the fuzz campaign's differential check against Scheme::holds(). Brute force
// combinatorics on purpose — sharing code with the scheme under test would
// make the cross-check vacuous.
// ---------------------------------------------------------------------------

bool oracle_is_tree(const Graph& g) {
  return g.vertex_count() > 0 && g.edge_count() == g.vertex_count() - 1 &&
         g.is_connected();
}

// Perfect matching on a tree: repeatedly match a leaf to its support. Exact
// on trees (a leaf's only hope is its unique neighbor).
bool oracle_tree_perfect_matching(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n % 2 != 0) return false;
  std::vector<char> alive(n, 1);
  std::vector<std::size_t> deg(n);
  for (Vertex v = 0; v < n; ++v) deg[v] = g.degree(v);
  std::size_t matched = 0;
  std::vector<Vertex> queue;
  for (Vertex v = 0; v < n; ++v)
    if (deg[v] == 1) queue.push_back(v);
  while (!queue.empty()) {
    const Vertex leaf = queue.back();
    queue.pop_back();
    if (!alive[leaf] || deg[leaf] != 1) continue;
    Vertex support = leaf;
    for (Vertex w : g.neighbors(leaf))
      if (alive[w]) support = w;
    if (support == leaf) return false;  // isolated leaf: unmatched
    alive[leaf] = alive[support] = 0;
    matched += 2;
    for (Vertex w : g.neighbors(support))
      if (alive[w] && --deg[w] == 1) queue.push_back(w);
  }
  return matched == n;
}

// Caterpillar: removing all leaves leaves a (possibly empty) path.
bool oracle_is_caterpillar(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<Vertex> spine;
  for (Vertex v = 0; v < n; ++v)
    if (g.degree(v) >= 2) spine.push_back(v);
  if (spine.size() <= 1) return true;  // stars and tiny trees
  const Graph core = g.induced(spine);
  if (!core.is_connected()) return false;
  for (Vertex v = 0; v < core.vertex_count(); ++v)
    if (core.degree(v) > 2) return false;
  return core.edge_count() == core.vertex_count() - 1;
}

bool oracle_triangle_free(const Graph& g) {
  for (auto [u, v] : g.edges())
    for (Vertex w : g.neighbors(u))
      if (w != v && g.has_edge(v, w)) return false;
  return true;
}

bool oracle_independent_set3(const Graph& g) {
  const std::size_t n = g.vertex_count();
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b) {
      if (g.has_edge(a, b)) continue;
      for (Vertex c = b + 1; c < n; ++c)
        if (!g.has_edge(a, c) && !g.has_edge(b, c)) return true;
    }
  return false;
}

bool oracle_dominating_vertex(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return false;
  for (Vertex v = 0; v < n; ++v)
    if (g.degree(v) == n - 1) return true;
  return false;
}

// Longest simple path reaches `k` vertices? Depth-capped DFS: the recursion
// never goes deeper than k, so this stays cheap even on dense graphs. A path
// on k vertices is exactly a P_k subgraph, which is equivalent to a P_k
// minor.
bool path_dfs(const Graph& g, Vertex v, std::size_t len, std::size_t k,
              std::vector<char>& on_path) {
  if (len == k) return true;
  on_path[v] = 1;
  for (Vertex w : g.neighbors(v))
    if (!on_path[w] && path_dfs(g, w, len + 1, k, on_path)) {
      on_path[v] = 0;
      return true;
    }
  on_path[v] = 0;
  return false;
}

bool oracle_has_path_on(const Graph& g, std::size_t k) {
  std::vector<char> on_path(g.vertex_count(), 0);
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (path_dfs(g, v, 1, k, on_path)) return true;
  return false;
}

// A graph has a cycle on >= 4 vertices (a C_4 minor) iff some biconnected
// block has >= 4 vertices: any 2-connected graph on >= 4 vertices contains a
// cycle through >= 4 of them, and a cycle never crosses a cut vertex.
// Standard Hopcroft–Tarjan block decomposition, iterative-free (instances
// are tiny, recursion depth is fine).
struct BlockFinder {
  const Graph& g;
  std::vector<std::size_t> disc, low;
  std::vector<std::pair<Vertex, Vertex>> edge_stack;
  std::size_t timer = 0;
  std::size_t max_block = 0;

  explicit BlockFinder(const Graph& graph)
      : g(graph), disc(graph.vertex_count(), 0), low(graph.vertex_count(), 0) {}

  void pop_block(const std::pair<Vertex, Vertex>& until) {
    std::vector<Vertex> verts;
    while (true) {
      const auto e = edge_stack.back();
      edge_stack.pop_back();
      verts.push_back(e.first);
      verts.push_back(e.second);
      if (e == until) break;
    }
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
    max_block = std::max(max_block, verts.size());
  }

  void dfs(Vertex v, Vertex parent) {
    disc[v] = low[v] = ++timer;
    for (Vertex w : g.neighbors(v)) {
      if (disc[w] == 0) {
        edge_stack.push_back({v, w});
        dfs(w, v);
        low[v] = std::min(low[v], low[w]);
        if (low[w] >= disc[v]) pop_block({v, w});
      } else if (w != parent && disc[w] < disc[v]) {
        edge_stack.push_back({v, w});
        low[v] = std::min(low[v], disc[w]);
      }
    }
  }
};

bool oracle_c4_minor_free(const Graph& g) {
  BlockFinder finder(g);
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (finder.disc[v] == 0) finder.dfs(v, v);
  return finder.max_block <= 3;
}

// Fixed-point-free automorphism of a tree by brute force over all vertex
// permutations; only feasible for tiny n (the family caps it at 8).
bool oracle_tree_has_fpf_automorphism(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<Vertex> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    bool ok = true;
    for (Vertex v = 0; v < n && ok; ++v) {
      if (perm[v] == v) ok = false;
      for (Vertex w : g.neighbors(v))
        if (!g.has_edge(perm[v], perm[w])) {
          ok = false;
          break;
        }
    }
    if (ok) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

bool oracle_tree_radius_at_most(const Graph& g, std::size_t r) {
  if (!oracle_is_tree(g)) return false;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    std::size_t ecc = 0;
    for (std::size_t d : g.bfs_distances(v)) ecc = std::max(ecc, d);
    if (ecc <= r) return true;
  }
  return false;
}

bool oracle_tree_diameter_at_most(const Graph& g, std::size_t d) {
  if (!oracle_is_tree(g)) return false;
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    for (std::size_t dist : g.bfs_distances(v))
      if (dist > d) return false;
  return true;
}

InstanceFamily any_graph_family(std::function<Graph(std::size_t, Rng&)> yes,
                                std::function<Graph(std::size_t, Rng&)> no) {
  InstanceFamily f;
  f.yes_instance = std::move(yes);
  f.no_instance = std::move(no);
  f.supports_any_graph = true;
  f.mutators = fuzz::all_mutators();
  return f;
}

InstanceFamily tree_family(std::function<Graph(std::size_t, Rng&)> yes,
                           std::function<Graph(std::size_t, Rng&)> no) {
  InstanceFamily f;
  f.yes_instance = std::move(yes);
  f.no_instance = std::move(no);
  f.supports_any_graph = false;  // holds() throws outside the tree promise
  f.mutators = fuzz::tree_preserving_mutators();
  return f;
}

InstanceFamily with_oracle(InstanceFamily f, std::function<bool(const Graph&)> oracle,
                           std::size_t max_n) {
  f.has_reference_oracle = true;
  f.reference_oracle = std::move(oracle);
  f.reference_oracle_max_n = max_n;
  return f;
}

}  // namespace

std::vector<RegisteredScheme> scheme_registry() {
  std::vector<RegisteredScheme> out;

  out.push_back({"vertex-parity", "Prop 3.4: |V| is even, via certified spanning tree",
                 [] { return std::make_unique<VertexParityScheme>(); },
                 with_oracle(
                     any_graph_family(
                         [](std::size_t n, Rng& rng) {
                           return with_ids(make_random_tree(n + n % 2, rng), rng);
                         },
                         [](std::size_t n, Rng& rng) {
                           return with_ids(make_random_tree(n | 1, rng), rng);
                         }),
                     [](const Graph& g) { return g.vertex_count() % 2 == 0; }, 4096)});

  out.push_back(
      {"mso-perfect-matching", "Thm 2.2: MSO 'has perfect matching' on trees, O(1) bits",
       [] { return std::make_unique<MsoTreeScheme>(standard_tree_automata()[4]); },
       with_oracle(
           tree_family(
               [](std::size_t n, Rng& rng) { return with_ids(twinned_tree(n / 2, rng), rng); },
               [](std::size_t n, Rng& rng) {
                 return with_ids(make_star((n | 1) < 3 ? 3 : (n | 1)), rng);
               }),
           oracle_tree_perfect_matching, 4096)});

  out.push_back(
      {"mso-caterpillar", "Thm 2.2: MSO 'is a caterpillar' on trees, O(1) bits",
       [] { return std::make_unique<MsoTreeScheme>(standard_tree_automata()[2]); },
       with_oracle(
           tree_family(
               [](std::size_t n, Rng& rng) {
                 return with_ids(make_caterpillar(std::max<std::size_t>(n / 2, 1), 1), rng);
               },
               [](std::size_t, Rng& rng) {
                 // A spider with three legs of length 2 is not a caterpillar.
                 return with_ids(
                     Graph(7, {{0, 1}, {1, 2}, {0, 3}, {3, 4}, {0, 5}, {5, 6}}), rng);
               }),
           oracle_is_caterpillar, 4096)});

  out.push_back({"treedepth-4", "Thm 2.4: treedepth <= 4, O(t log n) bits",
                 [] { return std::make_unique<TreedepthScheme>(4); },
                 with_oracle(
                     any_graph_family(
                         [](std::size_t n, Rng& rng) {
                           auto inst = make_bounded_treedepth_graph(
                               std::min<std::size_t>(n, 18), 4, 0.3, rng);
                           return with_ids(std::move(inst.graph), rng);
                         },
                         [](std::size_t, Rng& rng) { return with_ids(make_path(16), rng); }),
                     // Cops-and-robber game number == treedepth; entirely
                     // separate search from the scheme's elimination solver.
                     [](const Graph& g) { return cops_and_robber_number(g) <= 4; }, 14)});

  out.push_back(
      {"kernel-triangle-free", "Thm 2.6: FO 'triangle-free' on treedepth <= 3 graphs",
       [] { return std::make_unique<KernelMsoScheme>(f_triangle_free(), 3, 3); },
       with_oracle(
           any_graph_family(
               [](std::size_t n, Rng& rng) {
                 auto inst =
                     make_bounded_treedepth_graph(std::min<std::size_t>(n, 18), 3, 0.0, rng);
                 return with_ids(std::move(inst.graph), rng);
               },
               [](std::size_t, Rng& rng) {
                 return with_ids(Graph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}), rng);
               }),
           // The scheme decides via kernelization (Prop 6.2/6.3); the oracle
           // re-decides with the game-theoretic treedepth and the brute-force
           // model checker on the *full* graph.
           [](const Graph& g) {
             return cops_and_robber_number(g) <= 3 && evaluate(g, f_triangle_free());
           },
           14)});

  out.push_back(
      {"exists-is3", "Lemma A.2: existential FO, independent set of size 3",
       [] { return std::make_unique<ExistentialFoScheme>(f_independent_set_of_size(3)); },
       with_oracle(any_graph_family(
                       [](std::size_t n, Rng& rng) {
                         return with_ids(make_star(std::max<std::size_t>(n, 4)), rng);
                       },
                       [](std::size_t, Rng& rng) { return with_ids(make_complete(5), rng); }),
                   oracle_independent_set3, 256)});

  out.push_back(
      {"depth2-dominating", "Lemma A.3: depth-2 FO, has a dominating vertex",
       [] { return std::make_unique<Depth2FoScheme>(f_has_dominating_vertex()); },
       with_oracle(any_graph_family(
                       [](std::size_t n, Rng& rng) {
                         return with_ids(make_star(std::max<std::size_t>(n, 2)), rng);
                       },
                       [](std::size_t, Rng& rng) { return with_ids(make_path(5), rng); }),
                   oracle_dominating_vertex, 4096)});

  out.push_back(
      {"p5-minor-free", "Cor 2.7: P_5-minor-free, O(log n) bits",
       [] { return std::make_unique<PtMinorFreeScheme>(5); },
       with_oracle(any_graph_family(
                       [](std::size_t n, Rng& rng) {
                         return with_ids(make_star(std::max<std::size_t>(n, 3)), rng);
                       },
                       [](std::size_t, Rng& rng) { return with_ids(make_path(8), rng); }),
                   [](const Graph& g) { return !oracle_has_path_on(g, 5); }, 256)});

  out.push_back(
      {"c4-minor-free", "Cor 2.7: C_4-minor-free via block decomposition",
       [] { return std::make_unique<CtMinorFreeScheme>(4); },
       with_oracle(any_graph_family(
                       [](std::size_t n, Rng& rng) {
                         return with_ids(triangle_chain(std::max<std::size_t>(n / 2, 1)), rng);
                       },
                       [](std::size_t, Rng& rng) { return with_ids(make_cycle(6), rng); }),
                   oracle_c4_minor_free, 1024)});

  out.push_back(
      {"fpf-automorphism",
       "Thm 2.3's matching upper bound: fixed-point-free automorphism of a tree",
       [] { return std::make_unique<FpfAutomorphismScheme>(); },
       with_oracle(
           tree_family(
               [](std::size_t n, Rng& rng) { return with_ids(doubled_tree(n / 2, rng), rng); },
               [](std::size_t n, Rng& rng) {
                 return with_ids(make_star(std::max<std::size_t>(n, 4)), rng);
               }),
           oracle_tree_has_fpf_automorphism, 8)});

  out.push_back(
      {"tree-height-4", "post-Thm 2.5 contrast: trees of radius <= 3, O(log k) bits",
       [] { return std::make_unique<TreeDepthBoundedScheme>(4); },
       with_oracle(
           tree_family(
               [](std::size_t n, Rng& rng) {
                 return with_ids(make_random_rooted_tree(n, 3, rng).to_graph(), rng);
               },
               [](std::size_t, Rng& rng) { return with_ids(make_path(12), rng); }),
           [](const Graph& g) { return oracle_tree_radius_at_most(g, 3); }, 1024)});

  out.push_back(
      {"tree-diameter-4", "Sec 2.3: trees of diameter <= 4, O(log D) bits",
       [] { return std::make_unique<TreeDiameterScheme>(4); },
       with_oracle(
           tree_family(
               [](std::size_t n, Rng& rng) {
                 return with_ids(make_random_rooted_tree(n, 2, rng).to_graph(), rng);
               },
               [](std::size_t, Rng& rng) { return with_ids(make_path(9), rng); }),
           [](const Graph& g) { return oracle_tree_diameter_at_most(g, 4); }, 1024)});

  out.push_back(
      {"mso-leaves4", "Thm 2.2: MSO 'has >= 4 leaves' on trees, O(1) bits",
       [] { return std::make_unique<MsoTreeScheme>(standard_tree_automata()[7]); },
       with_oracle(
           tree_family(
               [](std::size_t n, Rng& rng) {
                 // Random tree plus four pendant leaves on vertex 0: irregular
                 // shape (this scheme is the RandomTree prover-cliff witness)
                 // with the leaf count guaranteed.
                 const std::size_t base = n < 5 ? 1 : n - 4;
                 Graph t = make_random_tree(base, rng);
                 auto edges = t.edges();
                 for (std::size_t j = 0; j < 4; ++j) edges.push_back({0, base + j});
                 return with_ids(Graph(base + 4, edges), rng);
               },
               [](std::size_t n, Rng& rng) {
                 return with_ids(make_path(std::max<std::size_t>(n, 2)), rng);
               }),
           [](const Graph& g) {
             std::size_t leaves = 0;
             for (Vertex v = 0; v < g.vertex_count(); ++v) leaves += g.degree(v) == 1;
             return leaves >= 4;
           },
           4096)});

  out.push_back(
      {"universal-triangle-free", "folklore O(n^2) baseline, any property",
       [] {
         return std::make_unique<UniversalScheme>(
             std::string("triangle-free"),
             UniversalScheme::Predicate(
                 [](const Graph& g) { return evaluate(g, f_triangle_free()); }));
       },
       with_oracle(
           any_graph_family(
               [](std::size_t n, Rng& rng) {
                 return with_ids(make_random_tree(std::max<std::size_t>(n, 2), rng), rng);
               },
               [](std::size_t, Rng& rng) { return with_ids(make_complete(4), rng); }),
           oracle_triangle_free, 256)});

  // Prover-side observability hook: every scheme the registry hands out is
  // wrapped so its certificate sizes land in `prover/<name>/cert_bits`. The
  // wrapper forwards verify/verify_batch, so the verification hot path and
  // the audit battery behave exactly as with the bare scheme.
  for (auto& entry : out) {
    auto bare = std::move(entry.make);
    entry.make = [bare = std::move(bare)] {
      return std::make_unique<obs::InstrumentedScheme>(bare());
    };
  }

  return out;
}

const RegisteredScheme* try_find_scheme(const std::string& key) {
  static const std::vector<RegisteredScheme> registry = scheme_registry();
  for (const auto& entry : registry)
    if (entry.key == key) return &entry;
  return nullptr;
}

const RegisteredScheme& find_scheme(const std::string& key) {
  if (const RegisteredScheme* entry = try_find_scheme(key)) return *entry;
  std::ostringstream os;
  os << "unknown scheme '" << key << "'; available:";
  for (const auto& entry : scheme_registry()) os << ' ' << entry.key;
  throw std::out_of_range(os.str());
}

}  // namespace lcert
