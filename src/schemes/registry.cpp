#include "src/schemes/registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/graph/generators.hpp"
#include "src/obs/instrumented_scheme.hpp"
#include "src/logic/eval.hpp"
#include "src/logic/formulas.hpp"
#include "src/schemes/automorphism_scheme.hpp"
#include "src/schemes/depth2_fo.hpp"
#include "src/schemes/existential_fo.hpp"
#include "src/schemes/kernel_scheme.hpp"
#include "src/schemes/minor_free.hpp"
#include "src/schemes/mso_tree.hpp"
#include "src/schemes/spanning_tree.hpp"
#include "src/schemes/tree_depth_bounded.hpp"
#include "src/schemes/tree_diameter.hpp"
#include "src/schemes/treedepth_scheme.hpp"
#include "src/schemes/universal.hpp"

namespace lcert {

namespace {

Graph with_ids(Graph g, Rng& rng) {
  assign_random_ids(g, rng);
  return g;
}

Graph doubled_tree(std::size_t half, Rng& rng) {
  const Graph base = make_random_tree(std::max<std::size_t>(half, 2), rng);
  std::vector<std::pair<Vertex, Vertex>> edges;
  const std::size_t m = base.vertex_count();
  for (auto [u, v] : base.edges()) {
    edges.emplace_back(u, v);
    edges.emplace_back(u + m, v + m);
  }
  edges.emplace_back(0, m);
  return Graph(2 * m, edges);
}

// Every vertex gets a pendant twin leaf: the twin-matching is perfect.
Graph twinned_tree(std::size_t half, Rng& rng) {
  const Graph base = make_random_tree(std::max<std::size_t>(half, 2), rng);
  const std::size_t m = base.vertex_count();
  std::vector<std::pair<Vertex, Vertex>> edges = base.edges();
  for (Vertex v = 0; v < m; ++v) edges.emplace_back(v, v + m);
  return Graph(2 * m, edges);
}

Graph triangle_chain(std::size_t triangles) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t i = 0; i < triangles; ++i) {
    const Vertex base = static_cast<Vertex>(2 * i);
    edges.emplace_back(base, base + 1);
    edges.emplace_back(base, base + 2);
    edges.emplace_back(base + 1, base + 2);
  }
  return Graph(2 * triangles + 1, edges);
}

}  // namespace

std::vector<RegisteredScheme> scheme_registry() {
  std::vector<RegisteredScheme> out;

  out.push_back({"vertex-parity", "Prop 3.4: |V| is even, via certified spanning tree",
                 [] { return std::make_unique<VertexParityScheme>(); },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_random_tree(n + n % 2, rng), rng);
                 },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_random_tree(n | 1, rng), rng);
                 }});

  out.push_back({"mso-perfect-matching",
                 "Thm 2.2: MSO 'has perfect matching' on trees, O(1) bits",
                 [] {
                   return std::make_unique<MsoTreeScheme>(standard_tree_automata()[4]);
                 },
                 [](std::size_t n, Rng& rng) { return with_ids(twinned_tree(n / 2, rng), rng); },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_star((n | 1) < 3 ? 3 : (n | 1)), rng);
                 }});

  out.push_back({"mso-caterpillar", "Thm 2.2: MSO 'is a caterpillar' on trees, O(1) bits",
                 [] {
                   return std::make_unique<MsoTreeScheme>(standard_tree_automata()[2]);
                 },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_caterpillar(std::max<std::size_t>(n / 2, 1), 1), rng);
                 },
                 [](std::size_t, Rng& rng) {
                   // A spider with three legs of length 2 is not a caterpillar.
                   return with_ids(
                       Graph(7, {{0, 1}, {1, 2}, {0, 3}, {3, 4}, {0, 5}, {5, 6}}), rng);
                 }});

  out.push_back({"treedepth-4", "Thm 2.4: treedepth <= 4, O(t log n) bits",
                 [] { return std::make_unique<TreedepthScheme>(4); },
                 [](std::size_t n, Rng& rng) {
                   auto inst = make_bounded_treedepth_graph(std::min<std::size_t>(n, 18), 4,
                                                            0.3, rng);
                   return with_ids(std::move(inst.graph), rng);
                 },
                 [](std::size_t, Rng& rng) { return with_ids(make_path(16), rng); }});

  out.push_back(
      {"kernel-triangle-free", "Thm 2.6: FO 'triangle-free' on treedepth <= 3 graphs",
       [] { return std::make_unique<KernelMsoScheme>(f_triangle_free(), 3, 3); },
       [](std::size_t n, Rng& rng) {
         auto inst = make_bounded_treedepth_graph(std::min<std::size_t>(n, 18), 3, 0.0, rng);
         return with_ids(std::move(inst.graph), rng);
       },
       [](std::size_t, Rng& rng) {
         return with_ids(Graph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}), rng);
       }});

  out.push_back({"exists-is3", "Lemma A.2: existential FO, independent set of size 3",
                 [] { return std::make_unique<ExistentialFoScheme>(f_independent_set_of_size(3)); },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_star(std::max<std::size_t>(n, 4)), rng);
                 },
                 [](std::size_t, Rng& rng) { return with_ids(make_complete(5), rng); }});

  out.push_back({"depth2-dominating", "Lemma A.3: depth-2 FO, has a dominating vertex",
                 [] { return std::make_unique<Depth2FoScheme>(f_has_dominating_vertex()); },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_star(std::max<std::size_t>(n, 2)), rng);
                 },
                 [](std::size_t, Rng& rng) { return with_ids(make_path(5), rng); }});

  out.push_back({"p5-minor-free", "Cor 2.7: P_5-minor-free, O(log n) bits",
                 [] { return std::make_unique<PtMinorFreeScheme>(5); },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_star(std::max<std::size_t>(n, 3)), rng);
                 },
                 [](std::size_t, Rng& rng) { return with_ids(make_path(8), rng); }});

  out.push_back({"c4-minor-free", "Cor 2.7: C_4-minor-free via block decomposition",
                 [] { return std::make_unique<CtMinorFreeScheme>(4); },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(triangle_chain(std::max<std::size_t>(n / 2, 1)), rng);
                 },
                 [](std::size_t, Rng& rng) { return with_ids(make_cycle(6), rng); }});

  out.push_back({"fpf-automorphism",
                 "Thm 2.3's matching upper bound: fixed-point-free automorphism of a tree",
                 [] { return std::make_unique<FpfAutomorphismScheme>(); },
                 [](std::size_t n, Rng& rng) { return with_ids(doubled_tree(n / 2, rng), rng); },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_star(std::max<std::size_t>(n, 4)), rng);
                 }});

  out.push_back({"tree-height-4", "post-Thm 2.5 contrast: trees of radius <= 3, O(log k) bits",
                 [] { return std::make_unique<TreeDepthBoundedScheme>(4); },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_random_rooted_tree(n, 3, rng).to_graph(), rng);
                 },
                 [](std::size_t, Rng& rng) { return with_ids(make_path(12), rng); }});

  out.push_back({"tree-diameter-4", "Sec 2.3: trees of diameter <= 4, O(log D) bits",
                 [] { return std::make_unique<TreeDiameterScheme>(4); },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_random_rooted_tree(n, 2, rng).to_graph(), rng);
                 },
                 [](std::size_t, Rng& rng) { return with_ids(make_path(9), rng); }});

  out.push_back({"universal-triangle-free", "folklore O(n^2) baseline, any property",
                 [] {
                   return std::make_unique<UniversalScheme>(
                       std::string("triangle-free"),
                       UniversalScheme::Predicate(
                           [](const Graph& g) { return evaluate(g, f_triangle_free()); }));
                 },
                 [](std::size_t n, Rng& rng) {
                   return with_ids(make_random_tree(std::max<std::size_t>(n, 2), rng), rng);
                 },
                 [](std::size_t, Rng& rng) { return with_ids(make_complete(4), rng); }});

  // Prover-side observability hook: every scheme the registry hands out is
  // wrapped so its certificate sizes land in `prover/<name>/cert_bits`. The
  // wrapper forwards verify/verify_batch, so the verification hot path and
  // the audit battery behave exactly as with the bare scheme.
  for (auto& entry : out) {
    auto bare = std::move(entry.make);
    entry.make = [bare = std::move(bare)] {
      return std::make_unique<obs::InstrumentedScheme>(bare());
    };
  }

  return out;
}

const RegisteredScheme& find_scheme(const std::string& key) {
  static const std::vector<RegisteredScheme> registry = scheme_registry();
  for (const auto& entry : registry)
    if (entry.key == key) return entry;
  std::ostringstream os;
  os << "unknown scheme '" << key << "'; available:";
  for (const auto& entry : registry) os << ' ' << entry.key;
  throw std::out_of_range(os.str());
}

}  // namespace lcert
