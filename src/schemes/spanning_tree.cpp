#include "src/schemes/spanning_tree.hpp"

#include <queue>
#include <stdexcept>

#include "src/cert/prove.hpp"

namespace lcert {

void SpanningTreeCert::encode(BitWriter& w) const {
  w.write_varnat(root_id);
  w.write_varnat(parent_id);
  w.write_varnat(distance);
  w.write_varnat(subtree_count);
  w.write_varnat(claimed_total);
}

SpanningTreeCert SpanningTreeCert::decode(BitReader& r) {
  SpanningTreeCert c;
  c.root_id = r.read_varnat();
  c.parent_id = r.read_varnat();
  c.distance = r.read_varnat();
  c.subtree_count = r.read_varnat();
  c.claimed_total = r.read_varnat();
  return c;
}

std::vector<SpanningTreeCert> build_spanning_tree_cert(const Graph& g, Vertex root) {
  const std::size_t n = g.vertex_count();
  if (!g.is_connected())
    throw std::invalid_argument("build_spanning_tree_cert: graph must be connected");
  std::vector<SpanningTreeCert> out(n);
  std::vector<std::size_t> parent(n, SIZE_MAX);
  std::vector<std::size_t> dist(n, SIZE_MAX);
  std::vector<Vertex> order;
  order.reserve(n);
  std::queue<Vertex> q;
  dist[root] = 0;
  q.push(root);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    order.push_back(v);
    for (Vertex w : g.neighbors(v))
      if (dist[w] == SIZE_MAX) {
        dist[w] = dist[v] + 1;
        parent[w] = v;
        q.push(w);
      }
  }
  // Subtree counts bottom-up (reverse BFS order).
  std::vector<std::uint64_t> count(n, 1);
  for (std::size_t i = order.size(); i-- > 1;) count[parent[order[i]]] += count[order[i]];
  for (Vertex v = 0; v < n; ++v) {
    out[v].root_id = g.id(root);
    out[v].parent_id = parent[v] == SIZE_MAX ? g.id(v) : g.id(parent[v]);
    out[v].distance = dist[v];
    out[v].subtree_count = count[v];
    out[v].claimed_total = n;
  }
  return out;
}

bool check_spanning_tree_fields(const ViewRef& view, const SpanningTreeCert& mine,
                                const std::vector<SpanningTreeCert>& neighbor_fields,
                                bool check_total) {
  // Agreement on the root and (optionally) the total.
  for (const auto& nb : neighbor_fields) {
    if (nb.root_id != mine.root_id) return false;
    if (check_total && nb.claimed_total != mine.claimed_total) return false;
  }
  const bool is_root = (mine.root_id == view.id);
  if (is_root) {
    if (mine.distance != 0 || mine.parent_id != view.id) return false;
  } else {
    if (mine.distance == 0) return false;
    // The parent must be a neighbor, one step closer.
    bool found = false;
    for (std::size_t i = 0; i < view.neighbors().size(); ++i) {
      if (view.neighbors()[i].id == mine.parent_id &&
          neighbor_fields[i].distance + 1 == mine.distance) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // Subtree count: 1 + counts of the neighbors that name me as their parent.
  std::uint64_t children_sum = 0;
  for (std::size_t i = 0; i < view.neighbors().size(); ++i) {
    if (neighbor_fields[i].parent_id == view.id) {
      if (neighbor_fields[i].distance != mine.distance + 1) return false;
      children_sum += neighbor_fields[i].subtree_count;
    }
  }
  if (mine.subtree_count != 1 + children_sum) return false;
  if (check_total && is_root && mine.subtree_count != mine.claimed_total) return false;
  return true;
}

namespace {

std::vector<Certificate> encode_all(const std::vector<SpanningTreeCert>& fields) {
  std::vector<Certificate> out;
  out.reserve(fields.size());
  for (const auto& f : fields) {
    BitWriter w;
    f.encode(w);
    out.push_back(Certificate::from_writer(std::move(w)));
  }
  return out;
}

std::vector<Certificate> encode_all_batch(const std::vector<SpanningTreeCert>& fields,
                                          ProverContext& ctx) {
  std::vector<Certificate> out(fields.size());
  ctx.for_each_index(fields.size(), [&](std::size_t worker, std::size_t i) {
    BitWriter& w = ctx.writer(worker);
    fields[i].encode(w);
    out[i] = Certificate::from_writer(std::move(w));
  });
  return out;
}

struct DecodedNeighborhood {
  SpanningTreeCert mine;
  std::vector<SpanningTreeCert> neighbors;
};

DecodedNeighborhood decode_all(const ViewRef& view) {
  DecodedNeighborhood d;
  BitReader r = view.certificate->reader();
  d.mine = SpanningTreeCert::decode(r);
  d.neighbors.reserve(view.neighbors().size());
  for (const auto& nb : view.neighbors()) {
    BitReader nr = nb.certificate->reader();
    d.neighbors.push_back(SpanningTreeCert::decode(nr));
  }
  return d;
}

}  // namespace

std::optional<std::vector<Certificate>> VertexParityScheme::assign(const Graph& g) const {
  if (!holds(g)) return std::nullopt;
  return encode_all(build_spanning_tree_cert(g, 0));
}

std::optional<std::vector<Certificate>> VertexParityScheme::prove_batch(
    const Graph& g, ProverContext& ctx) const {
  if (!holds(g)) return std::nullopt;
  return encode_all_batch(build_spanning_tree_cert(g, 0), ctx);
}

bool VertexParityScheme::verify(const ViewRef& view) const {
  const auto d = decode_all(view);
  if (!check_spanning_tree_fields(view, d.mine, d.neighbors, /*check_total=*/true))
    return false;
  // Everyone knows the certified total; the parity predicate is checked by
  // every vertex (the root pinned the total to the true count).
  return d.mine.claimed_total % 2 == 0;
}

std::optional<std::vector<Certificate>> VertexCountScheme::assign(const Graph& g) const {
  if (!holds(g)) return std::nullopt;
  return encode_all(build_spanning_tree_cert(g, 0));
}

std::optional<std::vector<Certificate>> VertexCountScheme::prove_batch(
    const Graph& g, ProverContext& ctx) const {
  if (!holds(g)) return std::nullopt;
  return encode_all_batch(build_spanning_tree_cert(g, 0), ctx);
}

bool VertexCountScheme::verify(const ViewRef& view) const {
  const auto d = decode_all(view);
  if (!check_spanning_tree_fields(view, d.mine, d.neighbors, /*check_total=*/true))
    return false;
  return d.mine.claimed_total == target_;
}

}  // namespace lcert
