// Spanning tree and vertex-count certification (Proposition 3.4).
//
// The classic O(log n)-bit toolbox: each vertex carries the root's ID, its
// distance to the root, its parent's ID, and its subtree size. Locally, a
// vertex checks that its parent is a neighbor one step closer to the root,
// that everyone agrees on the root, and that its subtree count is 1 + the sum
// of the counts of the neighbors that name it as parent. These primitives are
// exposed both as reusable building blocks (the treedepth scheme embeds one
// fragment per ancestor) and as standalone Schemes.
#pragma once

#include <cstdint>
#include <optional>

#include "src/cert/scheme.hpp"
#include "src/graph/graph.hpp"

namespace lcert {

/// Per-vertex spanning-tree fields.
struct SpanningTreeCert {
  VertexId root_id = 0;
  VertexId parent_id = 0;  ///< own id at the root
  std::uint64_t distance = 0;
  std::uint64_t subtree_count = 1;
  std::uint64_t claimed_total = 0;  ///< graph size claimed by the prover

  void encode(BitWriter& w) const;
  static SpanningTreeCert decode(BitReader& r);
};

/// Builds the BFS spanning tree of `g` rooted at `root` and fills all fields.
std::vector<SpanningTreeCert> build_spanning_tree_cert(const Graph& g, Vertex root);

/// Local check of the spanning-tree fields: parent pointer, distances,
/// root agreement, and subtree counts; if `check_total`, the root also
/// verifies subtree_count == claimed_total and everyone checks agreement on
/// claimed_total.
bool check_spanning_tree_fields(const ViewRef& view, const SpanningTreeCert& mine,
                                const std::vector<SpanningTreeCert>& neighbor_fields,
                                bool check_total);

/// Scheme for a property of the vertex count: holds(g) == predicate(n).
/// Demonstrates Proposition 3.4; "n is even" famously needs Theta(log n).
class VertexParityScheme final : public Scheme {
 public:
  std::string name() const override { return "vertex-count-parity"; }
  bool holds(const Graph& g) const override { return g.vertex_count() % 2 == 0; }
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  /// Batch path: serial BFS (inherently sequential, and cheap), parallel
  /// arena-backed encoding. Bit-identical to assign().
  std::optional<std::vector<Certificate>> prove_batch(const Graph& g,
                                                      ProverContext& ctx) const override;
  bool verify(const ViewRef& view) const override;
};

/// Scheme certifying the exact vertex count announced to every vertex.
class VertexCountScheme final : public Scheme {
 public:
  explicit VertexCountScheme(std::uint64_t target) : target_(target) {}
  std::string name() const override { return "vertex-count"; }
  bool holds(const Graph& g) const override { return g.vertex_count() == target_; }
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  std::optional<std::vector<Certificate>> prove_batch(const Graph& g,
                                                      ProverContext& ctx) const override;
  bool verify(const ViewRef& view) const override;

 private:
  std::uint64_t target_;
};

}  // namespace lcert
