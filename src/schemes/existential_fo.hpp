// Lemma A.2: existential FO sentences with k quantifiers have O(k log n)-bit
// certifications.
//
// The prover exhibits witnesses v_1..v_k: every vertex receives the witness
// ID list, the k x k adjacency matrix of the witnesses, and k spanning-tree
// certifications, the i-th rooted at v_i. Verification: neighbors agree on
// the list and matrix; the spanning trees prove each witness exists; each
// witness v_i checks row i of the matrix against its actual neighborhood;
// every vertex evaluates the quantifier-free matrix formula on (IDs, matrix).
#pragma once

#include <optional>
#include <string>

#include "src/cert/scheme.hpp"
#include "src/logic/ast.hpp"
#include "src/logic/metrics.hpp"

namespace lcert {

class ExistentialFoScheme final : public Scheme {
 public:
  /// `phi` must be an existential FO sentence (checked at construction).
  explicit ExistentialFoScheme(Formula phi);

  std::string name() const override { return "existential-fo"; }
  bool holds(const Graph& g) const override;
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  bool verify(const ViewRef& view) const override;

  std::size_t witness_count() const noexcept { return prenex_.variables.size(); }

 private:
  /// Evaluates the quantifier-free matrix under a witness assignment given by
  /// IDs and the adjacency matrix (no graph access).
  bool eval_matrix(const std::vector<VertexId>& witness_ids,
                   const std::vector<bool>& adjacency) const;

  Formula phi_;
  PrenexExistential prenex_;
};

}  // namespace lcert
