#include "src/schemes/kernel_core.hpp"

#include <map>

#include "src/cert/prove.hpp"
#include "src/kernel/types.hpp"
#include "src/schemes/treedepth_core.hpp"

namespace lcert {

namespace {

struct KernelCert {
  TdCore core;
  std::vector<bool> pruned;   ///< index-parallel to core.list
  std::vector<TypeId> types;  ///< ids in a verification-local interner

  std::size_t depth() const { return core.depth(); }
  std::size_t index_of_depth(std::size_t q) const { return depth() - q; }
};

std::optional<KernelCert> decode_kernel_cert(BitReader& r, TypeInterner& interner) {
  KernelCert c;
  auto core = TdCore::decode(r);
  if (!core.has_value()) return std::nullopt;
  c.core = std::move(*core);
  const std::size_t len = c.core.list.size();
  c.pruned.resize(len);
  for (std::size_t i = 0; i < len; ++i) c.pruned[i] = r.read_bit();
  c.types.resize(len);
  for (std::size_t i = 0; i < len; ++i) {
    const auto id = interner.deserialize(r);
    if (!id.has_value()) return std::nullopt;
    c.types[i] = *id;
  }
  return c;
}

}  // namespace

std::vector<Certificate> build_kernel_core_certs(const Graph& g, const RootedTree& model,
                                                 const Kernelization& kz) {
  const auto cores = build_td_cores(g, model);
  std::vector<Certificate> out(g.vertex_count());
  for (Vertex u = 0; u < g.vertex_count(); ++u) {
    BitWriter w;
    cores[u].encode(w);
    for (std::size_t a : model.ancestors(u)) w.write_bit(kz.pruned[a]);
    for (std::size_t a : model.ancestors(u)) kz.interner.serialize(kz.end_type[a], w);
    out[u] = Certificate::from_writer(std::move(w));
  }
  return out;
}

std::vector<Certificate> build_kernel_core_certs(const Graph& g, const RootedTree& model,
                                                 const Kernelization& kz,
                                                 ProverContext& ctx) {
  const auto cores = build_td_cores_batch(g, model, ctx);
  std::vector<Certificate> out(g.vertex_count());
  ctx.for_each_index(g.vertex_count(), [&](std::size_t worker, std::size_t u) {
    BitWriter& w = ctx.writer(worker);
    cores[u].encode(w);
    for (std::size_t a : model.ancestors(u)) w.write_bit(kz.pruned[a]);
    for (std::size_t a : model.ancestors(u)) kz.interner.serialize(kz.end_type[a], w);
    out[u] = Certificate::from_writer(std::move(w));
  });
  return out;
}

bool verify_kernel_core(const ViewRef& view, std::size_t t, std::size_t k,
                        const KernelPredicateFn& predicate) {
  TypeInterner interner;  // verification-local; TypeIds comparable within it

  BitReader r = view.certificate->reader();
  const auto mine_opt = decode_kernel_cert(r, interner);
  if (!mine_opt.has_value()) return false;
  const KernelCert& mine = *mine_opt;
  const std::size_t d = mine.depth();

  std::vector<KernelCert> nbs;
  std::vector<TdCore> nb_cores;
  nbs.reserve(view.neighbors().size());
  for (const auto& nb : view.neighbors()) {
    BitReader nr = nb.certificate->reader();
    auto c = decode_kernel_cert(nr, interner);
    if (!c.has_value()) return false;
    nb_cores.push_back(c->core);
    nbs.push_back(std::move(*c));
  }

  // The Theorem 2.4 layer: lists and fragments describe a real coherent model.
  if (!verify_td_core(view, mine.core, nb_cores, t)) return false;

  // Cross-check flags and end types on shared ancestors.
  for (const auto& nb : nbs) {
    const std::size_t shared = std::min(d, nb.depth());
    for (std::size_t q = 0; q <= shared; ++q) {
      if (nb.pruned[nb.index_of_depth(q)] != mine.pruned[mine.index_of_depth(q)]) return false;
      if (nb.types[nb.index_of_depth(q)] != mine.types[mine.index_of_depth(q)]) return false;
    }
  }

  // Own end type: ancestor vector must match the actual adjacency pattern.
  const TypeDef& my_def = interner.def(mine.types[0]);
  if (my_def.ancestor_vector.size() != d) return false;
  for (std::size_t q = 0; q < d; ++q) {
    const VertexId ancestor_id = mine.core.list[mine.index_of_depth(q)];
    if (my_def.ancestor_vector[q] != view.has_neighbor_id(ancestor_id)) return false;
  }

  // Children census: coherence (certified above) guarantees every child
  // subtree exposes a neighbor, so grouping deeper neighbors by the ancestor
  // at depth d+1 enumerates our children exactly.
  std::map<VertexId, std::pair<TypeId, bool>> children;
  for (const auto& nb : nbs) {
    if (nb.depth() <= d) continue;
    const std::size_t idx = nb.index_of_depth(d + 1);
    const VertexId child_id = nb.core.list[idx];
    const auto claim = std::pair{nb.types[idx], static_cast<bool>(nb.pruned[idx])};
    auto [it, inserted] = children.emplace(child_id, claim);
    if (!inserted && it->second != claim) return false;
  }

  std::map<TypeId, std::size_t> kept_counts;
  std::map<TypeId, bool> pruned_types;
  for (const auto& [id, claim] : children) {
    if (claim.second)
      pruned_types[claim.first] = true;
    else
      ++kept_counts[claim.first];
  }
  for (const auto& [type, count] : kept_counts)
    if (count > k) return false;  // a pruning was missed
  for (const auto& [type, flag] : pruned_types) {
    (void)flag;
    auto it = kept_counts.find(type);
    if (it == kept_counts.end() || it->second != k) return false;  // Lemma 6.1
  }
  std::map<TypeId, std::size_t> claimed;
  for (const auto& [child, mult] : my_def.children) claimed[child] = mult;
  if (claimed != kept_counts) return false;

  // Root duties: never pruned; the kernel (== root's end type) satisfies the
  // property.
  if (d == 0) {
    if (mine.pruned[0]) return false;
    Graph kernel;
    try {
      kernel = realize_type(interner, mine.types[0]);
    } catch (const std::exception&) {
      return false;
    }
    if (!predicate(kernel)) return false;
  }
  return true;
}

}  // namespace lcert
