#include "src/schemes/minor_free.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "src/graph/connectivity.hpp"
#include "src/graph/minors.hpp"
#include "src/kernel/reduce.hpp"
#include "src/schemes/kernel_core.hpp"
#include "src/schemes/treedepth_core.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/treedepth/exact.hpp"
#include "src/treedepth/heuristic.hpp"

namespace lcert {

// ---------------------------------------------------------------------------
// P_t-minor-free.
// ---------------------------------------------------------------------------

PtMinorFreeScheme::PtMinorFreeScheme(std::size_t t, KernelMsoScheme::WitnessProvider witness)
    : t_(t) {
  if (t < 2) throw std::invalid_argument("PtMinorFreeScheme: t must be >= 2");
  // P_t-minor-free graphs have treedepth <= t [41]; "no P_t subgraph" is an
  // existential-FO property of quantifier depth t, so threshold t suffices.
  inner_ = std::make_unique<KernelMsoScheme>(
      "no-P" + std::to_string(t),
      [t](const Graph& kernel) { return !has_path_minor(kernel, t); }, t, t,
      std::move(witness));
}

bool PtMinorFreeScheme::holds(const Graph& g) const { return !has_path_minor(g, t_); }

std::optional<std::vector<Certificate>> PtMinorFreeScheme::assign(const Graph& g) const {
  if (!holds(g)) return std::nullopt;
  return inner_->assign(g);
}

bool PtMinorFreeScheme::verify(const ViewRef& view) const { return inner_->verify(view); }

// ---------------------------------------------------------------------------
// C_t-minor-free.
// ---------------------------------------------------------------------------

namespace {

struct BlockEntry {
  VertexId block_id_lo = 0;
  VertexId block_id_hi = 0;
  std::uint64_t bc_depth = 0;
  VertexId anchor_id = 0;  ///< 0 for the BC-root block
  Certificate blob;        ///< kernel-core sub-certificate for this block

  std::pair<VertexId, VertexId> key() const { return {block_id_lo, block_id_hi}; }
};

struct CtCert {
  std::vector<BlockEntry> entries;

  void encode(BitWriter& w) const {
    w.write_varnat(entries.size());
    for (const auto& e : entries) {
      w.write_varnat(e.block_id_lo);
      w.write_varnat(e.block_id_hi);
      w.write_varnat(e.bc_depth);
      w.write_varnat(e.anchor_id);
      w.write_varnat(e.blob.bit_size);
      BitReader br = e.blob.reader();
      std::size_t left = e.blob.bit_size;
      while (left >= 64) {
        w.write(br.read(64), 64);
        left -= 64;
      }
      if (left > 0) w.write(br.read(static_cast<unsigned>(left)), static_cast<unsigned>(left));
    }
  }

  static std::optional<CtCert> decode(BitReader& r) {
    CtCert c;
    const std::uint64_t m = r.read_varnat();
    if (m > 4096) return std::nullopt;
    c.entries.resize(m);
    for (auto& e : c.entries) {
      e.block_id_lo = r.read_varnat();
      e.block_id_hi = r.read_varnat();
      e.bc_depth = r.read_varnat();
      e.anchor_id = r.read_varnat();
      const std::uint64_t bits = r.read_varnat();
      if (bits > (1u << 22)) return std::nullopt;
      BitWriter w;
      std::size_t left = bits;
      while (left >= 64) {
        w.write(r.read(64), 64);
        left -= 64;
      }
      if (left > 0) w.write(r.read(static_cast<unsigned>(left)), static_cast<unsigned>(left));
      e.blob = Certificate::from_writer(std::move(w));
    }
    return c;
  }
};

// Coherent model of `block` rooted at local vertex `anchor` (kNoParent-style
// free root when anchor == SIZE_MAX).
RootedTree block_model(const Graph& block, std::size_t anchor_local) {
  if (anchor_local == SIZE_MAX) {
    if (block.vertex_count() <= 18) return exact_treedepth_with_model(block).model;
    return heuristic_elimination_tree(block);
  }
  const std::size_t n = block.vertex_count();
  std::vector<std::size_t> parent(n, RootedTree::kNoParent);
  // Components of block - anchor, each modeled independently below the anchor.
  std::vector<bool> seen(n, false);
  seen[anchor_local] = true;
  for (Vertex s = 0; s < n; ++s) {
    if (seen[s]) continue;
    std::vector<Vertex> comp{s};
    seen[s] = true;
    for (std::size_t i = 0; i < comp.size(); ++i)
      for (Vertex w : block.neighbors(comp[i]))
        if (!seen[w]) {
          seen[w] = true;
          comp.push_back(w);
        }
    const Graph sub = block.induced(comp);
    const RootedTree sub_model = sub.vertex_count() <= 18
                                     ? exact_treedepth_with_model(sub).model
                                     : heuristic_elimination_tree(sub);
    for (std::size_t i = 0; i < comp.size(); ++i) {
      const std::size_t p = sub_model.parent(i);
      parent[comp[i]] = (p == RootedTree::kNoParent) ? anchor_local : comp[p];
    }
  }
  RootedTree model(parent);
  return make_coherent(block, model);
}

}  // namespace

CtMinorFreeScheme::CtMinorFreeScheme(std::size_t t, std::size_t reduction_k)
    : t_(t), k_(reduction_k == 0 ? 2 * t : reduction_k) {
  if (t < 3) throw std::invalid_argument("CtMinorFreeScheme: t must be >= 3");
}

bool CtMinorFreeScheme::holds(const Graph& g) const { return !has_cycle_minor(g, t_); }

std::optional<std::vector<Certificate>> CtMinorFreeScheme::assign(const Graph& g) const {
  if (!holds(g)) return std::nullopt;
  const std::size_t n = g.vertex_count();
  if (n == 1) return std::vector<Certificate>(1);  // no blocks, empty certificate

  const auto bc = block_cut_decomposition(g);
  const std::size_t block_count = bc.blocks.size();

  // BC tree: BFS from the block containing vertex 0.
  std::vector<std::uint64_t> depth(block_count, 0);
  std::vector<std::size_t> anchor(block_count, SIZE_MAX);  // local anchor vertex
  std::vector<bool> visited(block_count, false);
  std::vector<std::size_t> queue{bc.blocks_of[0][0]};
  visited[queue[0]] = true;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const std::size_t b = queue[i];
    for (Vertex v : bc.blocks[b]) {
      if (!bc.is_cut_vertex[v]) continue;
      for (std::size_t child : bc.blocks_of[v]) {
        if (visited[child]) continue;
        visited[child] = true;
        depth[child] = depth[b] + 1;
        anchor[child] = v;
        queue.push_back(child);
      }
    }
  }

  // Per block: induced subgraph, model rooted at the anchor, kernel, certs.
  std::vector<CtCert> certs(n);
  for (std::size_t b = 0; b < block_count; ++b) {
    // Sort members so the block id (two smallest IDs) is well defined.
    std::vector<Vertex> members = bc.blocks[b];
    const Graph sub = g.induced(members);
    std::size_t anchor_local = SIZE_MAX;
    if (anchor[b] != SIZE_MAX) {
      for (std::size_t i = 0; i < members.size(); ++i)
        if (members[i] == anchor[b]) anchor_local = i;
    }
    RootedTree model = block_model(sub, anchor_local);
    if (model_depth(model) > block_depth_bound()) return std::nullopt;
    const Kernelization kz = k_reduce(sub, model, k_);
    if (has_cycle_minor(kz.kernel, t_)) return std::nullopt;  // threshold too low
    const auto blobs = build_kernel_core_certs(sub, model, kz);

    std::vector<VertexId> ids;
    for (Vertex m : members) ids.push_back(g.id(m));
    std::sort(ids.begin(), ids.end());

    for (std::size_t i = 0; i < members.size(); ++i) {
      BlockEntry e;
      e.block_id_lo = ids[0];
      e.block_id_hi = ids[1];
      e.bc_depth = depth[b];
      e.anchor_id = anchor[b] == SIZE_MAX ? 0 : g.id(anchor[b]);
      e.blob = blobs[i];
      certs[members[i]].entries.push_back(e);
    }
  }

  std::vector<Certificate> out(n);
  for (Vertex v = 0; v < n; ++v) {
    BitWriter w;
    certs[v].encode(w);
    out[v] = Certificate::from_writer(std::move(w));
  }
  return out;
}

bool CtMinorFreeScheme::verify(const ViewRef& view) const {
  BitReader r = view.certificate->reader();
  const auto mine_opt = CtCert::decode(r);
  if (!mine_opt.has_value()) return false;
  const CtCert& mine = *mine_opt;

  if (view.degree() == 0) return mine.entries.empty();  // n == 1 (connected promise)
  if (mine.entries.empty()) return false;

  std::vector<CtCert> nbs;
  for (const auto& nb : view.neighbors()) {
    BitReader nr = nb.certificate->reader();
    auto c = CtCert::decode(nr);
    if (!c.has_value()) return false;
    nbs.push_back(std::move(*c));
  }

  // Distinct block ids among my entries.
  std::set<std::pair<VertexId, VertexId>> my_ids;
  for (const auto& e : mine.entries)
    if (!my_ids.insert(e.key()).second) return false;

  // Every incident edge lies in exactly one common claimed block.
  for (const auto& nb : nbs) {
    std::size_t common = 0;
    for (const auto& e : nb.entries) common += my_ids.count(e.key());
    if (common != 1) return false;
  }

  // BC-tree rules at this vertex: unique minimum depth; all other entries one
  // deeper and anchored here.
  std::size_t min_index = 0;
  for (std::size_t i = 1; i < mine.entries.size(); ++i)
    if (mine.entries[i].bc_depth < mine.entries[min_index].bc_depth) min_index = i;
  const std::uint64_t min_depth = mine.entries[min_index].bc_depth;
  for (std::size_t i = 0; i < mine.entries.size(); ++i) {
    const auto& e = mine.entries[i];
    if (i == min_index) {
      if (e.bc_depth == 0) {
        if (e.anchor_id != 0) return false;
      } else {
        if (e.anchor_id == 0 || e.anchor_id == view.id) return false;
      }
    } else {
      if (e.bc_depth != min_depth + 1) return false;
      if (e.anchor_id != view.id) return false;
    }
  }

  // Per-block checks.
  const std::size_t t = t_;
  const auto predicate = [t](const Graph& kernel) { return !has_cycle_minor(kernel, t); };
  for (const auto& e : mine.entries) {
    // Members among neighbors, with agreement on the BC fields. The decoded
    // blobs live in `mine`/`nbs` for the rest of this call, so the sub-view
    // borrows them instead of re-copying each one.
    std::vector<NeighborRef> sub_neighbors;
    for (std::size_t i = 0; i < nbs.size(); ++i) {
      for (const auto& ne : nbs[i].entries) {
        if (ne.key() != e.key()) continue;
        if (ne.bc_depth != e.bc_depth || ne.anchor_id != e.anchor_id) return false;
        sub_neighbors.push_back({view.neighbors()[i].id, &ne.blob});
      }
    }
    const ViewRef sub_view{view.id, &e.blob, sub_neighbors.data(), sub_neighbors.size()};
    // The sub-certificate: Theorem 2.6 battery within the block, with the
    // circumference predicate at the block's model root.
    if (!verify_kernel_core(sub_view, block_depth_bound(), k_, predicate)) return false;
    // A non-root block's anchor must be the block's model root (a certified
    // real member of the block), grounding the BC recursion.
    if (e.bc_depth > 0) {
      BitReader br = e.blob.reader();
      const auto core = TdCore::decode(br);
      if (!core.has_value()) return false;
      if (core->list.back() != e.anchor_id) return false;
    }
  }
  return true;
}

}  // namespace lcert
