// Theorem 2.6: every FO (hence MSO) sentence has an O(t log n + f(t, phi))-bit
// certification on graphs of treedepth <= t, via a locally certified kernel.
//
// Certificates = the full Theorem 2.4 core (ancestor lists + spanning-tree
// fragments for a coherent t-model T of G) + per-ancestor *pruned* flags +
// per-ancestor *end types*, serialized self-describingly (Section 6.4).
//
// The verifier:
//  - replays the Theorem 2.4 verification (so the lists/fragments describe a
//    real coherent model, and in particular every child subtree of v exposes
//    its exit vertex as a neighbor of v — v genuinely sees all its children);
//  - cross-checks flags and types with every neighbor on shared ancestors;
//  - checks its own end type's ancestor vector against its actual adjacency
//    to its ancestors;
//  - recomputes its end type's children multiset from the neighbors' claims:
//    kept (un-pruned) children types must match the multiset exactly, no type
//    may exceed multiplicity k, and each pruned child's type must retain
//    exactly k kept copies (Lemma 6.1) — this forces the types to be the true
//    k-reduction bottom-up;
//  - at the root: the root's end type *is* the kernel; the root materializes
//    it (realize_type) and model-checks phi on it with the brute-force
//    evaluator. G satisfies phi iff the kernel does (Proposition 6.3 for FO
//    quantifier depth <= k; for genuinely MSO sentences pass a larger
//    reduction threshold — see DESIGN.md §5 — which the tests audit via EF
//    games and direct evaluation).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "src/cert/scheme.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/logic/ast.hpp"

namespace lcert {

class KernelMsoScheme final : public Scheme {
 public:
  using WitnessProvider = std::function<std::optional<RootedTree>(const Graph&)>;
  /// Decides the property on the (bounded-size) kernel. For an FO sentence
  /// this is the brute-force evaluator; combinatorial predicates (e.g.
  /// "circumference < t" for Corollary 2.7) are also accepted — the predicate
  /// must be preserved by k-reduction at the chosen threshold.
  using KernelPredicate = std::function<bool(const Graph&)>;

  /// Certifies "g has treedepth <= t AND g satisfies phi". `reduction_k` is
  /// the pruning threshold (>= quantifier depth of phi for FO; pass more for
  /// MSO). The witness provider supplies the t-model at assign() time.
  KernelMsoScheme(Formula phi, std::size_t t, std::size_t reduction_k,
                  WitnessProvider witness = {});

  /// Predicate form: certifies "treedepth <= t AND predicate(kernel)".
  KernelMsoScheme(std::string property_name, KernelPredicate predicate, std::size_t t,
                  std::size_t reduction_k, WitnessProvider witness = {});

  std::string name() const override;
  bool holds(const Graph& g) const override;
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  /// Batch path: same model/kernelization as assign(), certificate streams
  /// built by the batch kernel-core builder (bit-identical).
  std::optional<std::vector<Certificate>> prove_batch(const Graph& g,
                                                      ProverContext& ctx) const override;
  bool verify(const ViewRef& view) const override;

 private:
  std::optional<RootedTree> find_model(const Graph& g) const;

  std::string property_name_;
  KernelPredicate predicate_;
  std::size_t t_;
  std::size_t k_;
  WitnessProvider witness_;
};

}  // namespace lcert
