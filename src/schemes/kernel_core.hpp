// Reusable core of the Theorem 2.6 certificate, shared by KernelMsoScheme and
// the per-block layer of the C_t-minor-free scheme (Corollary 2.7).
//
// One "kernel core" certificate = Theorem 2.4 core (ancestor list + fragments)
// + per-ancestor pruned flags + per-ancestor self-describing end types. The
// verifier checks the whole Section 6.4 battery against a View; the caller
// decides which vertices participate (the whole graph, or one block).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "src/cert/scheme.hpp"
#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/kernel/reduce.hpp"

namespace lcert {

using KernelPredicateFn = std::function<bool(const Graph&)>;

/// Prover side: per-vertex certificates for graph g with coherent model and a
/// k-reduction of it.
std::vector<Certificate> build_kernel_core_certs(const Graph& g, const RootedTree& model,
                                                 const Kernelization& kz);

/// Batch twin: cores via build_td_cores_batch, per-vertex streams encoded in
/// parallel with the context's arena writers (TypeInterner::serialize is
/// const, so concurrent serialization of the shared interner is safe).
/// Bit-identical to the serial builder.
std::vector<Certificate> build_kernel_core_certs(const Graph& g, const RootedTree& model,
                                                 const Kernelization& kz, ProverContext& ctx);

/// Verifier side: the full Section 6.4 check at one vertex. `t` bounds the
/// model depth, `k` is the reduction threshold; at the model root, `predicate`
/// is evaluated on the realized kernel. The view's certificates must be
/// kernel-core certificates (possibly extracted from a larger stream).
bool verify_kernel_core(const ViewRef& view, std::size_t t, std::size_t k,
                        const KernelPredicateFn& predicate);

}  // namespace lcert
