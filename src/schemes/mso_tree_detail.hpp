// Shared solver core of the MSO-on-trees prover (DESIGN.md §12–§13).
//
// prove_batch (cold, per-root) and the incremental recertification prover
// (streaming edits against a live instance) are the same computation — a
// bottom-up feasibility-mask pass and a top-down run extraction over a
// RootedTree, memoized on child-mask profiles — differing only in *which
// vertices* they touch. This header factors that computation out of
// MsoTreeScheme so both paths call literally the same code: bit-identity
// between them is then a statement about vertex selection, not about two
// implementations staying in sync.
//
// MsoMemo is the memo store. It used to be function-local in prove_batch;
// the incremental prover keeps one alive across edits (values are pure
// functions of their keys — a sorted child-mask multiset for feasibility, an
// ordered child-mask tuple plus parent state for extraction — so persistence
// can never change a result, only hit rates). maybe_trim() bounds growth
// under unbounded edit streams.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/automata/box_index.hpp"
#include "src/automata/uop_automaton.hpp"
#include "src/cert/prove.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/graph/tree_iso.hpp"

namespace lcert::mso_detail {

/// Memo store of the MSO tree prover. Keys are child-mask profiles, not
/// subtree iso codes (DESIGN.md §12): feasibility is order-invariant
/// (sorted multiset), extraction follows edge insertion order (ordered
/// tuple × parent state).
struct MsoMemo {
  SubtreeCodeInterner mask_multisets;  ///< sorted child-mask multisets
  SubtreeCodeInterner mask_tuples;     ///< ordered child-mask tuples
  std::vector<std::uint64_t> feas_memo;   ///< multiset id -> mask
  std::vector<std::uint8_t> feas_known;   ///< multiset id -> filled?
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> extract_memo;

  void clear() {
    mask_multisets = SubtreeCodeInterner();
    mask_tuples = SubtreeCodeInterner();
    feas_memo.clear();
    feas_known.clear();
    extract_memo.clear();
  }

  /// Entry count across both memo families (the trim heuristic's measure).
  std::size_t entry_count() const {
    return mask_multisets.size() + extract_memo.size();
  }

  /// Clears everything when the store has grown past `limit` entries.
  /// All-or-nothing: the two interners and the value tables reference each
  /// other's ids, so partial eviction would dangle. Returns true if cleared.
  bool maybe_trim(std::size_t limit = std::size_t{1} << 20) {
    if (entry_count() <= limit) return false;
    clear();
    return true;
  }
};

/// The solver: automaton parameters hoisted once, methods for each pass.
/// Pointers borrow from the owning MsoTreeScheme and must outlive the core.
struct SolveCore {
  const UOPAutomaton* automaton = nullptr;
  const BoxIndex* boxes = nullptr;  ///< per-state canonical DNF, indexed
  std::size_t k = 0;                                ///< state count (<= 64)
  unsigned width = 1;                               ///< state field bit width
  std::string scheme_name;                          ///< for error messages

  /// Feasibility mask of a vertex from its children's masks: bit q set iff
  /// some box of delta(q) admits a child assignment — exactly the predicate
  /// find_accepting_run evaluates, resolved through the worker's tiered
  /// engine (exact booleans, no assignment materialized).
  std::uint64_t mask_from_children(const std::vector<std::uint64_t>& child_masks,
                                   ProverContext& ctx, std::size_t worker) const;

  /// States for a vertex's children given run state q: first feasible box
  /// wins, same box order and same flow construction as find_accepting_run.
  std::vector<std::size_t> extract_from_children(
      const std::vector<std::uint64_t>& child_masks, std::size_t q,
      ProverContext& ctx, std::size_t worker) const;

  /// Bottom-up feasibility over every vertex, deepest level first; fills
  /// `mask` (must be sized t.size()). `memo` may be null (memoization off).
  void bottom_up(const RootedTree& t,
                 const std::vector<std::vector<std::size_t>>& levels,
                 ProverContext& ctx, MsoMemo* memo,
                 std::vector<std::uint64_t>& mask) const;

  /// Smallest accepting state set in `root_mask` — find_accepting_run's
  /// choice; SIZE_MAX when none.
  std::size_t accepting_state(std::uint64_t root_mask) const;

  /// Top-down run extraction over every vertex, root level first. `run`
  /// must be sized t.size() with run[t.root()] already set.
  void top_down(const RootedTree& t,
                const std::vector<std::vector<std::size_t>>& levels,
                ProverContext& ctx, MsoMemo* memo,
                const std::vector<std::uint64_t>& mask,
                std::vector<std::size_t>& run) const;

  /// The 3*k certificate payload table: the run state is shape-determined,
  /// the mod-3 depth counter is the one position-dependent field — patching
  /// a certificate is selecting one of three precomputed variants per state.
  std::vector<Certificate> payload_table(ProverContext& ctx) const;

  // --- Single-vertex memoized accessors (incremental repair path) ---------

  /// mask_from_children for one vertex through the memo (counts one hit or
  /// miss in ctx); straight computation when memo is null.
  std::uint64_t memo_mask(const RootedTree& t,
                          const std::vector<std::uint64_t>& mask, std::size_t v,
                          ProverContext& ctx, MsoMemo* memo) const;

  /// extract_from_children for one vertex through the memo. The returned
  /// reference points into the memo (stable: node-based map), or into
  /// `scratch` when memo is null.
  const std::vector<std::size_t>& memo_extract(
      const RootedTree& t, const std::vector<std::uint64_t>& mask,
      std::size_t v, std::size_t q, ProverContext& ctx, MsoMemo* memo,
      std::vector<std::size_t>& scratch) const;
};

}  // namespace lcert::mso_detail
