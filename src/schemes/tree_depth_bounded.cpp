#include "src/schemes/tree_depth_bounded.hpp"

#include <stdexcept>

#include "src/graph/rooted_tree.hpp"
#include "src/graph/tree_iso.hpp"
#include "src/util/bitio.hpp"

namespace lcert {

TreeDepthBoundedScheme::TreeDepthBoundedScheme(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("TreeDepthBoundedScheme: k must be >= 1");
}

std::size_t TreeDepthBoundedScheme::certificate_bits() const noexcept {
  return bits_for(k_ - 1) == 0 ? 1 : bits_for(k_ - 1);
}

bool TreeDepthBoundedScheme::holds(const Graph& g) const {
  if (g.edge_count() != g.vertex_count() - 1 || !g.is_connected())
    throw std::invalid_argument(name() + ": instance outside the tree promise");
  // Radius <= k-1: check from a center.
  const auto centers = tree_centers(g);
  const auto dist = g.bfs_distances(centers[0]);
  for (std::size_t d : dist)
    if (d >= k_) return false;
  return true;
}

std::optional<std::vector<Certificate>> TreeDepthBoundedScheme::assign(const Graph& g) const {
  if (!holds(g)) return std::nullopt;
  const auto centers = tree_centers(g);
  const auto dist = g.bfs_distances(centers[0]);
  std::vector<Certificate> out(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    BitWriter w;
    w.write(dist[v], static_cast<unsigned>(certificate_bits()));
    out[v] = Certificate::from_writer(std::move(w));
  }
  return out;
}

bool TreeDepthBoundedScheme::verify(const ViewRef& view) const {
  BitReader r = view.certificate->reader();
  const std::uint64_t my_dist = r.read(static_cast<unsigned>(certificate_bits()));
  if (my_dist >= k_) return false;
  // On a tree, exact distances to a common root are locally enforceable:
  // every non-root vertex needs exactly one neighbor one step closer, and no
  // neighbor may differ by more than 1 (in a tree the unique parent carries
  // dist-1 and all other neighbors dist+1).
  std::size_t parents = 0;
  for (const auto& nb : view.neighbors()) {
    BitReader nr = nb.certificate->reader();
    const std::uint64_t nb_dist = nr.read(static_cast<unsigned>(certificate_bits()));
    if (nb_dist + 1 == my_dist) {
      ++parents;
    } else if (nb_dist != my_dist + 1) {
      return false;
    }
  }
  if (my_dist == 0) return parents == 0;
  return parents == 1;
}

}  // namespace lcert
