#include "src/schemes/mso_tree_detail.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcert::mso_detail {

std::uint64_t SolveCore::mask_from_children(
    const std::vector<std::uint64_t>& child_masks, ProverContext& ctx,
    std::size_t worker) const {
  solve::FeasibilitySolver& feas = ctx.feasibility(worker);
  feas.begin(child_masks, k);
  std::uint64_t m = 0;
  for (std::size_t q = 0; q < k; ++q)
    if (feas.decide_first(boxes[q]) != BoxIndex::npos) m |= std::uint64_t{1} << q;
  return m;
}

std::vector<std::size_t> SolveCore::extract_from_children(
    const std::vector<std::uint64_t>& child_masks, std::size_t q,
    ProverContext& ctx, std::size_t worker) const {
  solve::FeasibilitySolver& feas = ctx.feasibility(worker);
  feas.begin(child_masks, k);
  std::vector<std::size_t> assignment;
  // The solver backend only pre-filters boxes (exact, so decide_first lands
  // on precisely the first box the pristine sweep would accept); the
  // assignment itself always comes from uop_assign_children_masked, keeping
  // certificates bit-identical under every backend.
  const std::size_t bi = feas.decide_first(boxes[q]);
  if (bi == BoxIndex::npos)
    throw std::logic_error(scheme_name + ": extraction failed after feasibility");
  if (!uop_assign_children_masked(child_masks, boxes[q].box(bi), k, assignment))
    throw std::logic_error(scheme_name + ": solver disagrees with the pristine flow");
  return assignment;
}

namespace {

std::vector<std::uint64_t> child_masks_of(const RootedTree& t,
                                          const std::vector<std::uint64_t>& mask,
                                          std::size_t v) {
  std::vector<std::uint64_t> out;
  out.reserve(t.children(v).size());
  for (std::size_t c : t.children(v)) out.push_back(mask[c]);
  return out;
}

}  // namespace

void SolveCore::bottom_up(const RootedTree& t,
                          const std::vector<std::vector<std::size_t>>& levels,
                          ProverContext& ctx, MsoMemo* memo,
                          std::vector<std::uint64_t>& mask) const {
  // Deepest level first: every child's mask is final before its parent's
  // level starts. Memo key: the vertex's sorted child-mask multiset, interned
  // once the children's masks are final — serial intern pass (the interner
  // may rehash), parallel fill of the fresh entries, serial apply.
  std::vector<std::size_t> vertex_code;
  std::vector<std::size_t> key_scratch;
  for (auto lev = levels.rbegin(); lev != levels.rend(); ++lev) {
    const std::vector<std::size_t>& level = *lev;
    if (memo == nullptr) {
      ctx.for_each_index(level.size(), [&](std::size_t w, std::size_t i) {
        mask[level[i]] = mask_from_children(child_masks_of(t, mask, level[i]), ctx, w);
      });
      continue;
    }
    vertex_code.resize(level.size());
    std::vector<std::size_t> reps;  // first vertex per not-yet-cached code
    for (std::size_t i = 0; i < level.size(); ++i) {
      const std::size_t v = level[i];
      key_scratch.clear();
      for (std::size_t c : t.children(v))
        key_scratch.push_back(static_cast<std::size_t>(mask[c]));
      std::sort(key_scratch.begin(), key_scratch.end());
      const std::size_t code = memo->mask_multisets.intern(key_scratch);
      vertex_code[i] = code;
      if (code < memo->feas_known.size() && memo->feas_known[code]) continue;
      memo->feas_known.resize(memo->mask_multisets.size(), 0);
      memo->feas_memo.resize(memo->mask_multisets.size(), 0);
      memo->feas_known[code] = 1;
      reps.push_back(v);
    }
    ctx.count_memo_misses(reps.size());
    ctx.count_memo_hits(level.size() - reps.size());
    std::vector<std::uint64_t> rep_mask(reps.size());
    ctx.for_each_index(reps.size(), [&](std::size_t w, std::size_t i) {
      rep_mask[i] = mask_from_children(child_masks_of(t, mask, reps[i]), ctx, w);
    });
    for (std::size_t i = 0, r = 0; i < level.size(); ++i) {
      if (r < reps.size() && level[i] == reps[r])
        memo->feas_memo[vertex_code[i]] = rep_mask[r++];
      mask[level[i]] = memo->feas_memo[vertex_code[i]];
    }
  }
}

std::size_t SolveCore::accepting_state(std::uint64_t root_mask) const {
  for (std::size_t q = 0; q < k; ++q)
    if (automaton->accepting[q] && ((root_mask >> q) & 1u)) return q;
  return SIZE_MAX;
}

void SolveCore::top_down(const RootedTree& t,
                         const std::vector<std::vector<std::size_t>>& levels,
                         ProverContext& ctx, MsoMemo* memo,
                         const std::vector<std::uint64_t>& mask,
                         std::vector<std::size_t>& run) const {
  std::vector<std::size_t> tuple_id;
  if (memo != nullptr) {
    tuple_id.assign(t.size(), SIZE_MAX);
    std::vector<std::size_t> scratch;
    for (std::size_t v = 0; v < t.size(); ++v) {
      const auto kids = t.children(v);
      if (kids.empty()) continue;
      scratch.clear();
      for (std::size_t c : kids) scratch.push_back(static_cast<std::size_t>(mask[c]));
      tuple_id[v] = memo->mask_tuples.intern(scratch);
    }
  }

  // Root level first: run[v] is final before v's level chooses its
  // children's states.
  for (const std::vector<std::size_t>& level : levels) {
    if (memo == nullptr) {
      ctx.for_each_index(level.size(), [&](std::size_t w, std::size_t i) {
        const std::size_t v = level[i];
        const auto kids = t.children(v);
        if (kids.empty()) return;
        const auto chosen =
            extract_from_children(child_masks_of(t, mask, v), run[v], ctx, w);
        for (std::size_t j = 0; j < kids.size(); ++j) run[kids[j]] = chosen[j];
      });
      continue;
    }
    // Serial insert pass (the map may rehash), parallel fill of the fresh
    // slots, then the apply pass reads a stable map.
    std::vector<std::size_t> reps;
    std::vector<std::vector<std::size_t>*> slots;
    std::size_t hits = 0;
    for (std::size_t v : level) {
      if (t.children(v).empty()) continue;
      const std::uint64_t key =
          static_cast<std::uint64_t>(tuple_id[v]) * 64 + run[v];
      const auto [it, inserted] = memo->extract_memo.try_emplace(key);
      if (!inserted) {
        ++hits;
        continue;
      }
      reps.push_back(v);
      slots.push_back(&it->second);
    }
    ctx.count_memo_misses(reps.size());
    ctx.count_memo_hits(hits);
    ctx.for_each_index(reps.size(), [&](std::size_t w, std::size_t i) {
      *slots[i] = extract_from_children(child_masks_of(t, mask, reps[i]),
                                        run[reps[i]], ctx, w);
    });
    for (std::size_t v : level) {
      const auto kids = t.children(v);
      if (kids.empty()) continue;
      const std::uint64_t key =
          static_cast<std::uint64_t>(tuple_id[v]) * 64 + run[v];
      const std::vector<std::size_t>& chosen = memo->extract_memo[key];
      for (std::size_t j = 0; j < kids.size(); ++j) run[kids[j]] = chosen[j];
    }
  }
}

std::vector<Certificate> SolveCore::payload_table(ProverContext& ctx) const {
  std::vector<Certificate> table(3 * k);
  for (std::size_t d = 0; d < 3; ++d)
    for (std::size_t q = 0; q < k; ++q) {
      BitWriter& w = ctx.writer(0);
      w.write(d, 2);
      w.write(q, width);
      table[d * k + q] = Certificate::from_writer(std::move(w));
    }
  return table;
}

std::uint64_t SolveCore::memo_mask(const RootedTree& t,
                                   const std::vector<std::uint64_t>& mask,
                                   std::size_t v, ProverContext& ctx,
                                   MsoMemo* memo) const {
  if (memo == nullptr) return mask_from_children(child_masks_of(t, mask, v), ctx, 0);
  std::vector<std::size_t> key;
  key.reserve(t.children(v).size());
  for (std::size_t c : t.children(v))
    key.push_back(static_cast<std::size_t>(mask[c]));
  std::sort(key.begin(), key.end());
  const std::size_t code = memo->mask_multisets.intern(key);
  if (code < memo->feas_known.size() && memo->feas_known[code]) {
    ctx.count_memo_hits(1);
    return memo->feas_memo[code];
  }
  memo->feas_known.resize(memo->mask_multisets.size(), 0);
  memo->feas_memo.resize(memo->mask_multisets.size(), 0);
  ctx.count_memo_misses(1);
  const std::uint64_t m = mask_from_children(child_masks_of(t, mask, v), ctx, 0);
  memo->feas_known[code] = 1;
  memo->feas_memo[code] = m;
  return m;
}

const std::vector<std::size_t>& SolveCore::memo_extract(
    const RootedTree& t, const std::vector<std::uint64_t>& mask, std::size_t v,
    std::size_t q, ProverContext& ctx, MsoMemo* memo,
    std::vector<std::size_t>& scratch) const {
  if (memo == nullptr) {
    scratch = extract_from_children(child_masks_of(t, mask, v), q, ctx, 0);
    return scratch;
  }
  std::vector<std::size_t> key;
  key.reserve(t.children(v).size());
  for (std::size_t c : t.children(v))
    key.push_back(static_cast<std::size_t>(mask[c]));
  const std::uint64_t mkey =
      static_cast<std::uint64_t>(memo->mask_tuples.intern(key)) * 64 + q;
  const auto [it, inserted] = memo->extract_memo.try_emplace(mkey);
  if (!inserted) {
    ctx.count_memo_hits(1);
    return it->second;
  }
  ctx.count_memo_misses(1);
  it->second = extract_from_children(child_masks_of(t, mask, v), q, ctx, 0);
  return it->second;
}

}  // namespace lcert::mso_detail
