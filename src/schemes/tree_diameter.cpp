#include "src/schemes/tree_diameter.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/graph/rooted_tree.hpp"
#include "src/util/bitio.hpp"

namespace lcert {

TreeDiameterScheme::TreeDiameterScheme(std::size_t diameter_bound) : d_(diameter_bound) {}

std::size_t TreeDiameterScheme::certificate_bits() const noexcept {
  const unsigned height_bits = bits_for(d_);
  return 2 + (height_bits == 0 ? 1 : height_bits);
}

bool TreeDiameterScheme::holds(const Graph& g) const {
  if (g.edge_count() != g.vertex_count() - 1 || !g.is_connected())
    throw std::invalid_argument(name() + ": instance outside the tree promise");
  // Diameter via double BFS.
  const auto d0 = g.bfs_distances(0);
  Vertex far = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (d0[v] > d0[far]) far = v;
  const auto d1 = g.bfs_distances(far);
  std::size_t diameter = 0;
  for (std::size_t d : d1) diameter = std::max(diameter, d);
  return diameter <= d_;
}

std::optional<std::vector<Certificate>> TreeDiameterScheme::assign(const Graph& g) const {
  if (!holds(g)) return std::nullopt;
  const RootedTree t = RootedTree::from_graph(g, 0);
  // Heights bottom-up.
  std::vector<std::size_t> height(g.vertex_count(), 0);
  const auto order = t.preorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = *it;
    for (std::size_t c : t.children(v)) height[v] = std::max(height[v], height[c] + 1);
  }
  const unsigned height_bits = static_cast<unsigned>(certificate_bits() - 2);
  std::vector<Certificate> out(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    BitWriter w;
    w.write(t.depth(v) % 3, 2);
    w.write(height[v], height_bits);
    out[v] = Certificate::from_writer(std::move(w));
  }
  return out;
}

bool TreeDiameterScheme::verify(const ViewRef& view) const {
  const unsigned height_bits = static_cast<unsigned>(certificate_bits() - 2);
  BitReader r = view.certificate->reader();
  const std::uint64_t my_mod = r.read(2);
  const std::uint64_t my_height = r.read(height_bits);
  if (my_mod > 2 || my_height > d_) return false;

  std::size_t parents = 0;
  std::vector<std::uint64_t> child_heights;
  for (const auto& nb : view.neighbors()) {
    BitReader nr = nb.certificate->reader();
    const std::uint64_t nb_mod = nr.read(2);
    const std::uint64_t nb_height = nr.read(height_bits);
    if (nb_mod > 2) return false;
    if (nb_mod == (my_mod + 2) % 3) {
      ++parents;
    } else if (nb_mod == (my_mod + 1) % 3) {
      child_heights.push_back(nb_height);
    } else {
      return false;
    }
  }
  if (parents > 1) return false;
  if (parents == 0 && my_mod != 0) return false;  // root must carry counter 0

  // Exact height: 0 for leaves, 1 + max child height otherwise.
  std::uint64_t expected = 0;
  for (std::uint64_t h : child_heights) expected = std::max(expected, h + 1);
  if (my_height != expected) return false;

  // Longest path topped at this vertex: two deepest children branches.
  std::sort(child_heights.rbegin(), child_heights.rend());
  std::uint64_t local_diameter = 0;
  if (child_heights.size() >= 2) {
    local_diameter = child_heights[0] + child_heights[1] + 2;
  } else if (child_heights.size() == 1) {
    local_diameter = child_heights[0] + 1;
  }
  return local_diameter <= d_;
}

}  // namespace lcert
