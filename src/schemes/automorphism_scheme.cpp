#include "src/schemes/automorphism_scheme.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/graph/tree_iso.hpp"

namespace lcert {

namespace {

// Shared certificate: the tree's full edge list (IDs) and sigma as a pair
// table. Trees make the description Theta(n log n) bits instead of n^2.
struct FpfCert {
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::vector<std::pair<VertexId, VertexId>> sigma;

  void encode(BitWriter& w) const {
    w.write_varnat(edges.size());
    for (auto [a, b] : edges) {
      w.write_varnat(a);
      w.write_varnat(b);
    }
    w.write_varnat(sigma.size());
    for (auto [a, b] : sigma) {
      w.write_varnat(a);
      w.write_varnat(b);
    }
  }

  static std::optional<FpfCert> decode(BitReader& r) {
    FpfCert c;
    const std::uint64_t m = r.read_varnat();
    if (m > 1000000) return std::nullopt;
    c.edges.resize(m);
    for (auto& [a, b] : c.edges) {
      a = r.read_varnat();
      b = r.read_varnat();
    }
    const std::uint64_t n = r.read_varnat();
    if (n > 1000000) return std::nullopt;
    c.sigma.resize(n);
    for (auto& [a, b] : c.sigma) {
      a = r.read_varnat();
      b = r.read_varnat();
    }
    return c;
  }
};

bool is_tree_promise(const Graph& g) {
  return g.vertex_count() >= 1 && g.edge_count() == g.vertex_count() - 1 && g.is_connected();
}

}  // namespace

bool FpfAutomorphismScheme::holds(const Graph& g) const {
  if (!is_tree_promise(g))
    throw std::invalid_argument(name() + ": instance outside the tree promise");
  return has_fixed_point_free_automorphism(g);
}

std::optional<std::vector<Certificate>> FpfAutomorphismScheme::assign(const Graph& g) const {
  if (!holds(g)) return std::nullopt;
  const auto sigma = fixed_point_free_automorphism(g);
  FpfCert cert;
  for (auto [u, v] : g.edges()) cert.edges.emplace_back(g.id(u), g.id(v));
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    cert.sigma.emplace_back(g.id(v), g.id(sigma[v]));
  BitWriter w;
  cert.encode(w);
  const Certificate shared = Certificate::from_writer(std::move(w));
  return std::vector<Certificate>(g.vertex_count(), shared);
}

bool FpfAutomorphismScheme::verify(const ViewRef& view) const {
  for (const auto& nb : view.neighbors())
    if (!(*nb.certificate == *view.certificate)) return false;

  BitReader r = view.certificate->reader();
  const auto c = FpfCert::decode(r);
  if (!c.has_value()) return false;
  const std::size_t n = c->sigma.size();
  if (c->edges.size() + 1 != n) return false;  // a tree on n vertices

  // sigma: a fixed-point-free involution-free... just a permutation with no
  // fixed points over exactly the described vertex set.
  std::unordered_map<VertexId, VertexId> sigma;
  std::unordered_set<VertexId> domain, range;
  for (auto [a, b] : c->sigma) {
    if (a == b) return false;                          // fixed point
    if (!sigma.emplace(a, b).second) return false;     // duplicate domain entry
    domain.insert(a);
    if (!range.insert(b).second) return false;         // not injective
  }
  if (domain != range) return false;                   // not a permutation of the set

  // Described edges live on the described vertex set; collect adjacency.
  std::unordered_map<VertexId, std::vector<VertexId>> adj;
  std::unordered_set<std::uint64_t> edge_keys;
  std::unordered_map<VertexId, std::size_t> index;
  {
    std::size_t next = 0;
    for (VertexId id : domain) index[id] = next++;
  }
  for (auto [a, b] : c->edges) {
    if (a == b || !domain.count(a) || !domain.count(b)) return false;
    std::uint64_t key = std::min(index[a], index[b]) * n + std::max(index[a], index[b]);
    if (!edge_keys.insert(key).second) return false;  // duplicate edge
    adj[a].push_back(b);
    adj[b].push_back(a);
  }

  // Our own described row must equal our actual neighborhood.
  if (!domain.count(view.id)) return false;
  std::vector<VertexId> described = adj[view.id];
  std::vector<VertexId> actual;
  for (const auto& nb : view.neighbors()) actual.push_back(nb.id);
  std::sort(described.begin(), described.end());
  std::sort(actual.begin(), actual.end());
  if (described != actual) return false;

  // Described tree must be connected (n vertices, n-1 edges, connected =>
  // tree; connectivity also rules out phantom components).
  {
    std::unordered_set<VertexId> seen;
    std::vector<VertexId> stack{view.id};
    seen.insert(view.id);
    while (!stack.empty()) {
      const VertexId x = stack.back();
      stack.pop_back();
      for (VertexId y : adj[x])
        if (seen.insert(y).second) stack.push_back(y);
    }
    if (seen.size() != n) return false;
  }

  // sigma preserves described edges.
  for (auto [a, b] : c->edges) {
    const VertexId sa = sigma[a];
    const VertexId sb = sigma[b];
    const auto& row = adj[sa];
    if (std::find(row.begin(), row.end(), sb) == row.end()) return false;
  }
  return true;
}

}  // namespace lcert
