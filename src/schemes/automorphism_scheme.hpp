// Upper bound matching Theorem 2.3: certifying that a tree has a
// fixed-point-free automorphism with O(n log n)-bit certificates.
//
// Theorem 2.3 proves an Omega~(n) lower bound; this scheme shows the
// essentially matching upper bound, so the bench can display the sandwich.
// Every tree automorphism stabilizes the center, so a fixed-point-free one
// exists iff the center is an edge whose halves are isomorphic; the prover
// publishes the automorphism sigma as an ID-pair table (the full description,
// Theta(n log n) bits), every vertex checks the table is everywhere
// fixed-point-free and an involution-consistent permutation of the IDs it can
// see, and checks edge preservation for its own edges: sigma(v)'s neighbors
// must match sigma applied to v's neighbors. The latter needs sigma(v)'s
// neighborhood, which is included per-vertex (its *image row*).
//
// Promise model: instances are trees, as in Theorem 2.3.
#pragma once

#include <optional>
#include <string>

#include "src/cert/scheme.hpp"

namespace lcert {

class FpfAutomorphismScheme final : public Scheme {
 public:
  std::string name() const override { return "fpf-automorphism"; }
  bool holds(const Graph& g) const override;
  std::optional<std::vector<Certificate>> assign(const Graph& g) const override;
  bool verify(const ViewRef& view) const override;
};

}  // namespace lcert
