#include "src/schemes/depth2_fo.hpp"

#include <array>
#include <stdexcept>

#include "src/graph/generators.hpp"
#include "src/logic/eval.hpp"
#include "src/logic/metrics.hpp"
#include "src/schemes/spanning_tree.hpp"

namespace lcert {

namespace {

// Claimed predicate bits plus the evidence backing them:
//  - the count tree certifies n, which decides P1 outright;
//  - P2 (clique) claimed true is checked by everyone (degree == n-1);
//    claimed false is backed by a tree rooted at a *deficient* vertex;
//  - P3 (dominating vertex) claimed true is backed by a tree rooted at a
//    dominator; claimed false is checked by everyone (degree < n-1).
struct Depth2Cert {
  bool p2 = false, p3 = false;
  SpanningTreeCert count_tree;
  SpanningTreeCert deficient_tree;  // present iff !p2
  SpanningTreeCert dominator_tree;  // present iff p3

  void encode(BitWriter& w) const {
    w.write_bit(p2);
    w.write_bit(p3);
    count_tree.encode(w);
    if (!p2) deficient_tree.encode(w);
    if (p3) dominator_tree.encode(w);
  }

  static Depth2Cert decode(BitReader& r) {
    Depth2Cert c;
    c.p2 = r.read_bit();
    c.p3 = r.read_bit();
    c.count_tree = SpanningTreeCert::decode(r);
    if (!c.p2) c.deficient_tree = SpanningTreeCert::decode(r);
    if (c.p3) c.dominator_tree = SpanningTreeCert::decode(r);
    return c;
  }
};

bool is_clique(const Graph& g) {
  const std::size_t n = g.vertex_count();
  return g.edge_count() == n * (n - 1) / 2;
}

bool has_dominator(const Graph& g) {
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (g.degree(v) == g.vertex_count() - 1) return true;
  return false;
}

}  // namespace

std::size_t Depth2FoScheme::class_index(bool p1, bool p2, bool p3) {
  if (p1) return 0;  // (1,1,1): K_1
  if (p2) return 1;  // (0,1,1): clique with n >= 2
  if (p3) return 2;  // (0,0,1): dominated non-clique
  return 3;          // (0,0,0)
}

Depth2FoScheme::Depth2FoScheme(Formula phi) : phi_(std::move(phi)) {
  if (!is_sentence(phi_) || uses_set_quantifiers(phi_))
    throw std::invalid_argument("Depth2FoScheme: expected an FO sentence");
  if (quantifier_depth(phi_) > 2)
    throw std::invalid_argument("Depth2FoScheme: quantifier depth must be <= 2");
  // Pin down the truth table on one representative per realizable class;
  // Lemma A.3 guarantees depth-2 sentences cannot distinguish within a class
  // (audited against random graphs by the tests).
  table_[0] = evaluate(Graph(1, {}), phi_);      // K_1
  table_[1] = evaluate(make_complete(3), phi_);  // clique
  table_[2] = evaluate(make_star(4), phi_);      // dominated non-clique
  table_[3] = evaluate(make_path(4), phi_);      // neither
}

bool Depth2FoScheme::holds(const Graph& g) const {
  const bool p1 = g.vertex_count() <= 1;
  return table_[class_index(p1, is_clique(g), has_dominator(g))];
}

std::optional<std::vector<Certificate>> Depth2FoScheme::assign(const Graph& g) const {
  if (!holds(g)) return std::nullopt;
  const std::size_t n = g.vertex_count();
  Depth2Cert base;
  base.p2 = is_clique(g);
  base.p3 = has_dominator(g);

  const auto count_fields = build_spanning_tree_cert(g, 0);
  std::vector<SpanningTreeCert> deficient_fields, dominator_fields;
  if (!base.p2) {
    for (Vertex v = 0; v < n; ++v)
      if (g.degree(v) != n - 1) {
        deficient_fields = build_spanning_tree_cert(g, v);
        break;
      }
  }
  if (base.p3) {
    for (Vertex v = 0; v < n; ++v)
      if (g.degree(v) == n - 1) {
        dominator_fields = build_spanning_tree_cert(g, v);
        break;
      }
  }

  std::vector<Certificate> out(n);
  for (Vertex v = 0; v < n; ++v) {
    Depth2Cert mine = base;
    mine.count_tree = count_fields[v];
    if (!base.p2) mine.deficient_tree = deficient_fields[v];
    if (base.p3) mine.dominator_tree = dominator_fields[v];
    BitWriter w;
    mine.encode(w);
    out[v] = Certificate::from_writer(std::move(w));
  }
  return out;
}

bool Depth2FoScheme::verify(const ViewRef& view) const {
  BitReader r = view.certificate->reader();
  const Depth2Cert mine = Depth2Cert::decode(r);
  std::vector<Depth2Cert> nbs;
  for (const auto& nb : view.neighbors()) {
    BitReader nr = nb.certificate->reader();
    Depth2Cert c = Depth2Cert::decode(nr);
    if (c.p2 != mine.p2 || c.p3 != mine.p3) return false;
    nbs.push_back(c);
  }

  // Certified count (decides P1).
  std::vector<SpanningTreeCert> count_fields;
  for (const auto& nb : nbs) count_fields.push_back(nb.count_tree);
  if (!check_spanning_tree_fields(view, mine.count_tree, count_fields, /*check_total=*/true))
    return false;
  const std::uint64_t n = mine.count_tree.claimed_total;
  const bool p1 = (n <= 1);

  // Class consistency over connected graphs: P1 -> P2,P3; (P2 & n>=2) -> P3.
  if (p1 && (!mine.p2 || !mine.p3)) return false;
  if (mine.p2 && n >= 2 && !mine.p3) return false;

  // P2 claimed true: everyone is adjacent to everyone.
  if (mine.p2 && view.degree() != n - 1) return false;
  // P2 claimed false: certified tree rooted at a vertex that checks its own
  // deficiency.
  if (!mine.p2) {
    std::vector<SpanningTreeCert> fields;
    for (const auto& nb : nbs) fields.push_back(nb.deficient_tree);
    if (!check_spanning_tree_fields(view, mine.deficient_tree, fields, false)) return false;
    if (mine.deficient_tree.root_id == view.id && view.degree() == n - 1) return false;
  }
  // P3 claimed true: tree rooted at a vertex that checks it dominates.
  if (mine.p3) {
    std::vector<SpanningTreeCert> fields;
    for (const auto& nb : nbs) fields.push_back(nb.dominator_tree);
    if (!check_spanning_tree_fields(view, mine.dominator_tree, fields, false)) return false;
    if (mine.dominator_tree.root_id == view.id && view.degree() != n - 1) return false;
  }
  // P3 claimed false: nobody dominates.
  if (!mine.p3 && view.degree() == n - 1 && n >= 2) return false;

  return table_[class_index(p1, mine.p2, mine.p3)];
}

}  // namespace lcert
