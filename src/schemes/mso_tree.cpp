#include "src/schemes/mso_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "src/cert/prove.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/schemes/mso_tree_detail.hpp"
#include "src/util/bitio.hpp"

namespace lcert {

MsoTreeScheme::MsoTreeScheme(NamedAutomaton automaton)
    : automaton_(std::move(automaton)),
      state_bits_(bits_for(automaton_.automaton.state_count - 1)),
      box_probes_(obs::registry().counter("verify/box_probes")) {
  automaton_.automaton.validate();
  const std::size_t k = automaton_.automaton.state_count;
  transition_index_.reserve(k);
  raw_boxes_per_state_.reserve(k);
  std::size_t raw_max = 0;
  for (std::size_t q = 0; q < k; ++q) {
    // Expand the raw DNF once (for the gauge/attribution), canonicalize,
    // index. The leaves>=4 cliff — ~29k raw boxes in one state — pays its
    // expansion cost here, once per scheme, and collapses to a handful of
    // canonical boxes every consumer then shares.
    std::vector<IntervalBox> raw = automaton_.automaton.transition(q).to_boxes_raw(k);
    raw_boxes_per_state_.push_back(raw.size());
    raw_max = std::max(raw_max, raw.size());
    transition_index_.emplace_back(canonicalize_boxes(std::move(raw)));
  }
  // Registration-time gauges (unconditional: visible in every snapshot, not
  // just enabled runs) exposing the DNF cliff and its fix — raw ~29k for
  // leaves>=4 against 1-3 everywhere else, canonical a handful.
  obs::registry().gauge_set_always(
      obs::registry().gauge("verify/" + name() + "/boxes_per_state_raw"),
      static_cast<std::int64_t>(raw_max));
  obs::registry().gauge_set_always(
      obs::registry().gauge("verify/" + name() + "/boxes_per_state_canonical"),
      static_cast<std::int64_t>(max_boxes_per_state()));
}

std::size_t MsoTreeScheme::max_boxes_per_state() const noexcept {
  std::size_t max_boxes = 0;
  for (const auto& index : transition_index_)
    max_boxes = std::max(max_boxes, index.size());
  return max_boxes;
}

bool MsoTreeScheme::holds(const Graph& g) const {
  if (g.edge_count() != g.vertex_count() - 1 || !g.is_connected())
    throw std::invalid_argument(name() + ": instance outside the tree promise");
  return automaton_.oracle(g);
}

std::optional<std::vector<Certificate>> MsoTreeScheme::assign(const Graph& g) const {
  if (!holds(g)) return std::nullopt;
  for (Vertex root : automaton_.good_roots(g)) {
    const RootedTree t = RootedTree::from_graph(g, root);
    const auto run = find_accepting_run(automaton_.automaton, t);
    if (!run.has_value()) continue;
    std::vector<Certificate> certs(g.vertex_count());
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      BitWriter w;
      w.write(t.depth(v) % 3, 2);
      w.write((*run)[v], state_bits_ == 0 ? 1 : state_bits_);
      certs[v] = Certificate::from_writer(std::move(w));
    }
    return certs;
  }
  return std::nullopt;  // no good root admitted a run: library bug, caught by tests
}

std::optional<RunForgerySurface> MsoTreeScheme::run_forgery_surface() const {
  RunForgerySurface surface;
  surface.automaton = &automaton_.automaton;
  // Mirrors assign()'s encoding exactly: 2 bits of depth mod 3, then the
  // state in state_bits_ (floor of 1) bits.
  const unsigned width = state_bits_ == 0 ? 1 : state_bits_;
  surface.encode = [width](std::size_t depth_mod3, std::size_t state) {
    BitWriter w;
    w.write(depth_mod3, 2);
    w.write(state, width);
    return Certificate::from_writer(std::move(w));
  };
  return surface;
}

mso_detail::SolveCore MsoTreeScheme::solve_core() const {
  return {&automaton_.automaton, transition_index_.data(),
          automaton_.automaton.state_count, state_bits_ == 0 ? 1 : state_bits_,
          name()};
}

std::optional<std::vector<Certificate>> MsoTreeScheme::prove_batch(
    const Graph& g, ProverContext& ctx) const {
  const std::size_t k = automaton_.automaton.state_count;
  if (k > 64) return assign(g);
  if (!holds(g)) return std::nullopt;

  const mso_detail::SolveCore core = solve_core();

  // Memo state shared across candidate roots, keyed on child feasibility
  // masks instead of exact subtree iso codes (DESIGN.md §12): feasibility is
  // a pure function of the *multiset* of child masks (flow feasibility is
  // child-order invariant), extraction of the *ordered tuple* of child masks
  // plus the parent state (the flow's choice follows edge insertion order).
  // Distinct subtree shapes with the same child-mask profile share one entry
  // — on irregular trees this is the difference between a memo that
  // collapses and one that converges to O(distinct profiles). The passes
  // themselves live in mso_detail::SolveCore, shared verbatim with the
  // incremental recertification prover (DESIGN.md §13).
  mso_detail::MsoMemo memo_store;
  mso_detail::MsoMemo* memo = ctx.memoize() ? &memo_store : nullptr;

  for (Vertex root : automaton_.good_roots(g)) {
    const RootedTree t = RootedTree::from_graph(g, root);
    const auto levels = t.levels();

    std::vector<std::uint64_t> mask(t.size(), 0);
    core.bottom_up(t, levels, ctx, memo, mask);

    const std::size_t root_state = core.accepting_state(mask[t.root()]);
    if (root_state == SIZE_MAX) continue;

    std::vector<std::size_t> run(t.size(), SIZE_MAX);
    run[t.root()] = root_state;
    core.top_down(t, levels, ctx, memo, mask, run);

    const std::vector<Certificate> table = core.payload_table(ctx);
    std::vector<Certificate> certs(g.vertex_count());
    ctx.for_each_index(g.vertex_count(), [&](std::size_t, std::size_t v) {
      certs[v] = table[(t.depth(v) % 3) * k + run[v]];
    });
    return certs;
  }
  return std::nullopt;
}

namespace {

/// One vertex's check with every automaton parameter passed in, so that both
/// callers — verify() for one view, verify_batch() in a loop — compile it
/// with the parameters hoisted into registers.
inline bool verify_view(const ViewRef& view, std::size_t k, unsigned state_width,
                        const BoxIndex* transition_index,
                        const std::vector<bool>& accepting, std::size_t& probes) {
  BitReader r = view.certificate->reader();
  const std::uint64_t my_mod = r.read(2);
  const std::uint64_t my_state = r.read(state_width);
  if (my_mod > 2 || my_state >= k) return false;

  // Child-state counts live on the stack for the library's automata (all
  // small); the heap fallback keeps arbitrary state counts correct.
  constexpr std::size_t kStackStates = 32;
  std::size_t stack_counts[kStackStates];
  std::vector<std::size_t> heap_counts;
  std::size_t* child_state_counts = stack_counts;
  if (k > kStackStates) {
    heap_counts.resize(k);
    child_state_counts = heap_counts.data();
  }
  for (std::size_t q = 0; q < k; ++q) child_state_counts[q] = 0;

  // Classify each neighbor against the mod-3 counter: (nb_mod - my_mod) mod 3
  // is 2 for a parent, 1 for a child; equal counters on an edge are an
  // inconsistent orientation. Conditional increments, not branches — the
  // parent/child pattern is data-dependent and mispredicts.
  std::size_t parents = 0;
  for (const auto& nb : view.neighbors()) {
    BitReader nr = nb.certificate->reader();
    const std::uint64_t nb_mod = nr.read(2);
    const std::uint64_t nb_state = nr.read(state_width);
    if (nb_mod > 2 || nb_state >= k) return false;
    const std::uint64_t diff = (nb_mod + 3 - my_mod) % 3;
    if (diff == 0) return false;
    parents += diff == 2;
    child_state_counts[nb_state] += diff == 1;
  }
  const bool is_root = (parents == 0);
  if (parents > 1) return false;
  if (is_root && my_mod != 0) return false;

  // Automaton transition (and acceptance at the root), via the indexed
  // canonical DNF — first_containing answers with the identical first box
  // a linear sweep of the canonical list would find.
  const BoxIndex::Hit hit =
      transition_index[my_state].first_containing(child_state_counts, k);
  probes += hit.probes;
  if (hit.index == BoxIndex::npos) return false;
  if (is_root && !accepting[my_state]) return false;
  return true;
}

}  // namespace

bool MsoTreeScheme::verify(const ViewRef& view) const {
  std::size_t probes = 0;
  const bool ok = verify_view(view, automaton_.automaton.state_count,
                              state_bits_ == 0 ? 1 : state_bits_,
                              transition_index_.data(),
                              automaton_.automaton.accepting, probes);
  box_probes_.add(probes);
  return ok;
}

void MsoTreeScheme::verify_batch(std::span<const ViewRef> views,
                                 std::span<std::uint8_t> accept) const {
  assert(views.size() == accept.size());
  const std::size_t count = views.size();
  const std::size_t k = automaton_.automaton.state_count;
  const unsigned state_width = state_bits_ == 0 ? 1 : state_bits_;
  const BoxIndex* index = transition_index_.data();
  const std::vector<bool>& accepting = automaton_.automaton.accepting;
  std::uint64_t batch_probes = 0;

  // Fast path when the whole certificate — mod-3 counter plus state — fits in
  // the first byte (every library automaton does): decode by shift/mask
  // straight off the byte, no BitReader and no exception paths. A too-short
  // certificate rejects, exactly as the CertificateTruncated throw would.
  if (2 + state_width <= 8 && k <= 8) {
    const unsigned total_bits = 2 + state_width;
    const std::uint8_t state_mask = static_cast<std::uint8_t>((1u << state_width) - 1);
    const unsigned state_shift = 6 - state_width;
    for (std::size_t i = 0; i < count; ++i) {
      const ViewRef& view = views[i];
      accept[i] = [&]() -> bool {
        const Certificate& mine = *view.certificate;
        if (mine.bit_size < total_bits) return false;
        const std::uint8_t b0 = mine.bytes[0];
        const std::uint64_t my_mod = b0 >> 6;
        const std::uint64_t my_state = (b0 >> state_shift) & state_mask;
        if (my_mod > 2 || my_state >= k) return false;
        // 64-byte fixed-size zeroing: small enough that the compiler emits
        // plain vector stores (a variable-count loop, and even a 256-byte
        // clear, compile to `rep stos`, whose startup cost dominates here).
        std::size_t counts[8] = {};
        // my_mod is fixed for the whole neighbor sweep: classify by equality
        // against the precomputed parent/child counters instead of re-doing
        // mod-3 arithmetic (a multiply chain) per neighbor.
        const std::uint64_t parent_mod = my_mod == 0 ? 2 : my_mod - 1;
        const std::uint64_t child_mod = my_mod == 2 ? 0 : my_mod + 1;
        std::size_t parents = 0;
        for (const auto& nb : view.neighbors()) {
          const Certificate& c = *nb.certificate;
          if (c.bit_size < total_bits) return false;
          const std::uint8_t nb0 = c.bytes[0];
          const std::uint64_t nb_mod = nb0 >> 6;
          const std::uint64_t nb_state = (nb0 >> state_shift) & state_mask;
          if (nb_mod > 2 || nb_state >= k) return false;
          if (nb_mod == my_mod) return false;  // equal counters: bad orientation
          parents += nb_mod == parent_mod;
          counts[nb_state] += nb_mod == child_mod;
        }
        if (parents > 1) return false;
        const bool is_root = (parents == 0);
        if (is_root && my_mod != 0) return false;
        const BoxIndex::Hit hit = index[my_state].first_containing(counts, k);
        batch_probes += hit.probes;
        if (hit.index == BoxIndex::npos) return false;
        return !is_root || accepting[my_state];
      }()
                      ? 1
                      : 0;
    }
    box_probes_.add(batch_probes);
    return;
  }

  for (std::size_t i = 0; i < count; ++i) {
    try {
      std::size_t probes = 0;
      accept[i] = verify_view(views[i], k, state_width, index, accepting, probes) ? 1 : 0;
      batch_probes += probes;
    } catch (const CertificateTruncated&) {
      accept[i] = 0;
      static const obs::Counter truncated =
          obs::registry().counter("engine/truncated_rejects");
      truncated.add();
    }
  }
  box_probes_.add(batch_probes);
}

std::string MsoTreeScheme::slow_batch_attribution(std::span<const ViewRef> views) const {
  const std::size_t k = automaton_.automaton.state_count;
  const unsigned state_width = state_bits_ == 0 ? 1 : state_bits_;
  std::size_t worst_state = SIZE_MAX, worst_boxes = 0, worst_hits = 0;
  for (const ViewRef& view : views) {
    if (view.certificate == nullptr ||
        view.certificate->bit_size < 2 + state_width)
      continue;
    BitReader r = view.certificate->reader();
    r.read(2);  // mod-3 counter
    const std::uint64_t state = r.read(state_width);
    if (state >= k) continue;
    const std::size_t boxes = raw_boxes_per_state_[state];
    if (boxes > worst_boxes) {
      worst_state = state;
      worst_boxes = boxes;
      worst_hits = 1;
    } else if (state == worst_state) {
      ++worst_hits;
    }
  }
  if (worst_state == SIZE_MAX) return {};

  // Measured probe cost: replay a sample of the worst state's views through
  // the indexed check. Pre-fix this was the full raw fan-out per vertex
  // (~29k for leaves>=4); post-fix it should sit at a handful.
  constexpr std::size_t kSampleCap = 256;
  std::size_t sampled = 0, probe_total = 0;
  for (const ViewRef& view : views) {
    if (sampled >= kSampleCap) break;
    if (view.certificate == nullptr ||
        view.certificate->bit_size < 2 + state_width)
      continue;
    BitReader r = view.certificate->reader();
    r.read(2);
    if (r.read(state_width) != worst_state) continue;
    std::size_t probes = 0;
    try {
      verify_view(view, k, state_width, transition_index_.data(),
                  automaton_.automaton.accepting, probes);
    } catch (const CertificateTruncated&) {
      continue;
    }
    probe_total += probes;
    ++sampled;
  }

  const auto& names = automaton_.automaton.state_names;
  const std::string state_name = worst_state < names.size() &&
                                         !names[worst_state].empty()
                                     ? names[worst_state]
                                     : "q" + std::to_string(worst_state);
  char probe_buf[32];
  std::snprintf(probe_buf, sizeof probe_buf, "%.1f",
                sampled == 0 ? 0.0
                             : static_cast<double>(probe_total) /
                                   static_cast<double>(sampled));
  return "state=" + state_name +
         " boxes=" + std::to_string(transition_index_[worst_state].size()) +
         " raw_boxes=" + std::to_string(worst_boxes) +
         " vertices=" + std::to_string(worst_hits) +
         " probes/vertex=" + probe_buf;
}

}  // namespace lcert
