#include "src/schemes/mso_tree.hpp"

#include <stdexcept>

#include "src/graph/rooted_tree.hpp"
#include "src/util/bitio.hpp"

namespace lcert {

MsoTreeScheme::MsoTreeScheme(NamedAutomaton automaton)
    : automaton_(std::move(automaton)),
      state_bits_(bits_for(automaton_.automaton.state_count - 1)) {
  automaton_.automaton.validate();
}

bool MsoTreeScheme::holds(const Graph& g) const {
  if (g.edge_count() != g.vertex_count() - 1 || !g.is_connected())
    throw std::invalid_argument(name() + ": instance outside the tree promise");
  return automaton_.oracle(g);
}

std::optional<std::vector<Certificate>> MsoTreeScheme::assign(const Graph& g) const {
  if (!holds(g)) return std::nullopt;
  for (Vertex root : automaton_.good_roots(g)) {
    const RootedTree t = RootedTree::from_graph(g, root);
    const auto run = find_accepting_run(automaton_.automaton, t);
    if (!run.has_value()) continue;
    std::vector<Certificate> certs(g.vertex_count());
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      BitWriter w;
      w.write(t.depth(v) % 3, 2);
      w.write((*run)[v], state_bits_ == 0 ? 1 : state_bits_);
      certs[v] = Certificate::from_writer(w);
    }
    return certs;
  }
  return std::nullopt;  // no good root admitted a run: library bug, caught by tests
}

bool MsoTreeScheme::verify(const View& view) const {
  BitReader r = view.certificate.reader();
  const std::uint64_t my_mod = r.read(2);
  const std::uint64_t my_state = r.read(state_bits_ == 0 ? 1 : state_bits_);
  if (my_mod > 2 || my_state >= automaton_.automaton.state_count) return false;

  // Decode neighbors and classify against the mod-3 counter.
  std::size_t parents = 0;
  std::vector<std::size_t> child_state_counts(automaton_.automaton.state_count, 0);
  for (const auto& nb : view.neighbors) {
    BitReader nr = nb.certificate.reader();
    const std::uint64_t nb_mod = nr.read(2);
    const std::uint64_t nb_state = nr.read(state_bits_ == 0 ? 1 : state_bits_);
    if (nb_mod > 2 || nb_state >= automaton_.automaton.state_count) return false;
    if (nb_mod == (my_mod + 2) % 3) {
      ++parents;
    } else if (nb_mod == (my_mod + 1) % 3) {
      ++child_state_counts[nb_state];
    } else {
      return false;  // equal counters on an edge: inconsistent orientation
    }
  }
  const bool is_root = (parents == 0);
  if (parents > 1) return false;
  if (is_root && my_mod != 0) return false;

  // Automaton transition (and acceptance at the root).
  if (!automaton_.automaton.transition(my_state).eval(child_state_counts)) return false;
  if (is_root && !automaton_.automaton.accepting[my_state]) return false;
  return true;
}

}  // namespace lcert
