#include "src/schemes/kernel_scheme.hpp"

#include <stdexcept>

#include "src/kernel/reduce.hpp"
#include "src/logic/eval.hpp"
#include "src/schemes/kernel_core.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/treedepth/exact.hpp"
#include "src/treedepth/heuristic.hpp"

namespace lcert {

KernelMsoScheme::KernelMsoScheme(Formula phi, std::size_t t, std::size_t reduction_k,
                                 WitnessProvider witness)
    : property_name_(phi.valid() ? phi.to_string() : ""),
      t_(t),
      k_(reduction_k),
      witness_(std::move(witness)) {
  if (!phi.valid()) throw std::invalid_argument("KernelMsoScheme: empty formula");
  if (t == 0 || reduction_k == 0)
    throw std::invalid_argument("KernelMsoScheme: t and k must be >= 1");
  predicate_ = [phi](const Graph& kernel) { return evaluate(kernel, phi); };
}

KernelMsoScheme::KernelMsoScheme(std::string property_name, KernelPredicate predicate,
                                 std::size_t t, std::size_t reduction_k,
                                 WitnessProvider witness)
    : property_name_(std::move(property_name)),
      predicate_(std::move(predicate)),
      t_(t),
      k_(reduction_k),
      witness_(std::move(witness)) {
  if (!predicate_) throw std::invalid_argument("KernelMsoScheme: empty predicate");
  if (t == 0 || reduction_k == 0)
    throw std::invalid_argument("KernelMsoScheme: t and k must be >= 1");
}

std::string KernelMsoScheme::name() const {
  return "kernel-mso[t=" + std::to_string(t_) + ",k=" + std::to_string(k_) + "]";
}

std::optional<RootedTree> KernelMsoScheme::find_model(const Graph& g) const {
  if (witness_) {
    auto w = witness_(g);
    if (w.has_value() && is_valid_model(g, *w) && model_depth(*w) <= t_)
      return make_coherent(g, *w);
  }
  if (g.vertex_count() <= 20) {
    const auto result = exact_treedepth_with_model(g);
    if (result.treedepth <= t_) return result.model;
    return std::nullopt;
  }
  RootedTree h = heuristic_elimination_tree(g);
  if (model_depth(h) <= t_) return make_coherent(g, h);
  return std::nullopt;
}

bool KernelMsoScheme::holds(const Graph& g) const {
  const auto model = find_model(g);
  if (!model.has_value()) return false;  // treedepth bound fails (or undecided)
  // Evaluate on the kernel: bounded size regardless of n (Proposition 6.2),
  // and equivalent to G for the relevant quantifier depth (Proposition 6.3).
  const Kernelization kz = k_reduce(g, *model, k_);
  return predicate_(kz.kernel);
}

std::optional<std::vector<Certificate>> KernelMsoScheme::assign(const Graph& g) const {
  const auto model = find_model(g);
  if (!model.has_value()) return std::nullopt;
  const Kernelization kz = k_reduce(g, *model, k_);
  if (!predicate_(kz.kernel)) return std::nullopt;
  return build_kernel_core_certs(g, *model, kz);
}

std::optional<std::vector<Certificate>> KernelMsoScheme::prove_batch(
    const Graph& g, ProverContext& ctx) const {
  const auto model = find_model(g);
  if (!model.has_value()) return std::nullopt;
  const Kernelization kz = k_reduce(g, *model, k_);
  if (!predicate_(kz.kernel)) return std::nullopt;
  return build_kernel_core_certs(g, *model, kz, ctx);
}

bool KernelMsoScheme::verify(const ViewRef& view) const {
  return verify_kernel_core(view, t_, k_, predicate_);
}

}  // namespace lcert
