#include "src/schemes/existential_fo.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "src/logic/eval.hpp"
#include "src/schemes/spanning_tree.hpp"

namespace lcert {

namespace {

std::size_t tri_index(std::size_t i, std::size_t j, std::size_t k) {
  if (i > j) std::swap(i, j);
  return i * k - i * (i + 1) / 2 + (j - i - 1);
}

struct ExistentialCert {
  std::vector<VertexId> witness_ids;
  std::vector<bool> matrix;                 // upper triangle over witnesses
  std::vector<SpanningTreeCert> trees;      // one per witness

  void encode(BitWriter& w) const {
    w.write_varnat(witness_ids.size());
    for (VertexId id : witness_ids) w.write_varnat(id);
    for (bool b : matrix) w.write_bit(b);
    for (const auto& t : trees) t.encode(w);
  }

  static std::optional<ExistentialCert> decode(BitReader& r) {
    ExistentialCert c;
    const std::uint64_t k = r.read_varnat();
    if (k == 0 || k > 64) return std::nullopt;
    c.witness_ids.resize(k);
    for (auto& id : c.witness_ids) id = r.read_varnat();
    c.matrix.resize(k * (k - 1) / 2);
    for (std::size_t i = 0; i < c.matrix.size(); ++i) c.matrix[i] = r.read_bit();
    c.trees.resize(k);
    for (auto& t : c.trees) t = SpanningTreeCert::decode(r);
    return c;
  }
};

}  // namespace

ExistentialFoScheme::ExistentialFoScheme(Formula phi)
    : phi_(std::move(phi)), prenex_(prenex_existential(phi_)) {
  if (prenex_.variables.empty())
    throw std::invalid_argument("ExistentialFoScheme: sentence has no quantifier");
}

bool ExistentialFoScheme::holds(const Graph& g) const { return evaluate(g, phi_); }

bool ExistentialFoScheme::eval_matrix(const std::vector<VertexId>& witness_ids,
                                      const std::vector<bool>& adjacency) const {
  const std::size_t k = witness_ids.size();
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < k; ++i) index[prenex_.variables[i]] = i;

  struct MatrixEval {
    const std::vector<VertexId>& ids;
    const std::vector<bool>& adj;
    const std::unordered_map<std::string, std::size_t>& index;

    std::size_t var(const std::string& name) const {
      auto it = index.find(name);
      if (it == index.end())
        throw std::logic_error("ExistentialFoScheme: unbound matrix variable " + name);
      return it->second;
    }

    bool run(const FormulaNode& n) const {
      switch (n.kind) {
        case FormulaKind::kEqual:
          return ids[var(n.var_a)] == ids[var(n.var_b)];
        case FormulaKind::kAdjacent: {
          const std::size_t i = var(n.var_a);
          const std::size_t j = var(n.var_b);
          if (ids[i] == ids[j]) return false;  // same vertex, no loops
          return adj[tri_index(i, j, ids.size())];
        }
        case FormulaKind::kNot:
          return !run(*n.child_a);
        case FormulaKind::kAnd:
          return run(*n.child_a) && run(*n.child_b);
        case FormulaKind::kOr:
          return run(*n.child_a) || run(*n.child_b);
        default:
          throw std::logic_error("ExistentialFoScheme: quantifier in matrix");
      }
    }
  };
  return MatrixEval{witness_ids, adjacency, index}.run(prenex_.matrix.node());
}

std::optional<std::vector<Certificate>> ExistentialFoScheme::assign(const Graph& g) const {
  const std::size_t k = prenex_.variables.size();
  const std::size_t n = g.vertex_count();

  // Backtracking witness search with three-valued pruning: a partial tuple
  // whose matrix already evaluates to false (under "unknown" for unbound
  // variables) is abandoned — without this, sentences with k >= 3 witnesses
  // degenerate to blind n^k descent.
  enum class Tri { kFalse, kTrue, kUnknown };
  std::vector<Vertex> witnesses(k, 0);
  Environment env;
  auto partial = [&](auto&& self, const FormulaNode& node) -> Tri {
    auto lookup = [&](const std::string& name) -> std::optional<Vertex> {
      auto it = env.vertex_vars.find(name);
      if (it == env.vertex_vars.end()) return std::nullopt;
      return it->second;
    };
    switch (node.kind) {
      case FormulaKind::kEqual: {
        const auto a = lookup(node.var_a), b = lookup(node.var_b);
        if (!a || !b) return Tri::kUnknown;
        return *a == *b ? Tri::kTrue : Tri::kFalse;
      }
      case FormulaKind::kAdjacent: {
        const auto a = lookup(node.var_a), b = lookup(node.var_b);
        if (!a || !b) return Tri::kUnknown;
        return g.has_edge(*a, *b) ? Tri::kTrue : Tri::kFalse;
      }
      case FormulaKind::kNot: {
        const Tri inner = self(self, *node.child_a);
        if (inner == Tri::kUnknown) return Tri::kUnknown;
        return inner == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
      }
      case FormulaKind::kAnd: {
        const Tri a = self(self, *node.child_a);
        if (a == Tri::kFalse) return Tri::kFalse;
        const Tri b = self(self, *node.child_b);
        if (b == Tri::kFalse) return Tri::kFalse;
        return (a == Tri::kTrue && b == Tri::kTrue) ? Tri::kTrue : Tri::kUnknown;
      }
      case FormulaKind::kOr: {
        const Tri a = self(self, *node.child_a);
        if (a == Tri::kTrue) return Tri::kTrue;
        const Tri b = self(self, *node.child_b);
        if (b == Tri::kTrue) return Tri::kTrue;
        return (a == Tri::kFalse && b == Tri::kFalse) ? Tri::kFalse : Tri::kUnknown;
      }
      default:
        throw std::logic_error("ExistentialFoScheme: quantifier in matrix");
    }
  };
  auto search = [&](auto&& self, std::size_t level) -> bool {
    if (partial(partial, prenex_.matrix.node()) == Tri::kFalse) return false;
    if (level == k) return evaluate(g, prenex_.matrix, env);
    for (Vertex v = 0; v < n; ++v) {
      witnesses[level] = v;
      env.vertex_vars[prenex_.variables[level]] = v;
      if (self(self, level + 1)) return true;
      env.vertex_vars.erase(prenex_.variables[level]);
    }
    return false;
  };
  if (!search(search, 0)) return std::nullopt;

  ExistentialCert cert;
  cert.witness_ids.resize(k);
  for (std::size_t i = 0; i < k; ++i) cert.witness_ids[i] = g.id(witnesses[i]);
  cert.matrix.assign(k * (k - 1) / 2, false);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i + 1; j < k; ++j)
      if (witnesses[i] != witnesses[j] && g.has_edge(witnesses[i], witnesses[j]))
        cert.matrix[tri_index(i, j, k)] = true;

  std::vector<std::vector<SpanningTreeCert>> trees(k);
  for (std::size_t i = 0; i < k; ++i) {
    trees[i] = build_spanning_tree_cert(g, witnesses[i]);
    // The total field is unused here; pin it so that no certificate bit is
    // unchecked by the verifier.
    for (auto& f : trees[i]) f.claimed_total = 0;
  }

  std::vector<Certificate> out(n);
  for (Vertex v = 0; v < n; ++v) {
    ExistentialCert mine = cert;
    mine.trees.resize(k);
    for (std::size_t i = 0; i < k; ++i) mine.trees[i] = trees[i][v];
    BitWriter w;
    mine.encode(w);
    out[v] = Certificate::from_writer(std::move(w));
  }
  return out;
}

bool ExistentialFoScheme::verify(const ViewRef& view) const {
  BitReader r = view.certificate->reader();
  const auto mine = ExistentialCert::decode(r);
  if (!mine.has_value()) return false;
  const std::size_t k = prenex_.variables.size();
  if (mine->witness_ids.size() != k) return false;

  std::vector<ExistentialCert> nbs;
  for (const auto& nb : view.neighbors()) {
    BitReader nr = nb.certificate->reader();
    auto c = ExistentialCert::decode(nr);
    if (!c.has_value()) return false;
    // Agreement on witnesses and matrix.
    if (c->witness_ids != mine->witness_ids || c->matrix != mine->matrix) return false;
    nbs.push_back(std::move(*c));
  }

  // Spanning tree i proves witness i exists.
  for (std::size_t i = 0; i < k; ++i) {
    if (mine->trees[i].root_id != mine->witness_ids[i]) return false;
    if (mine->trees[i].claimed_total != 0) return false;
    std::vector<SpanningTreeCert> neighbor_fields;
    neighbor_fields.reserve(nbs.size());
    for (const auto& nb : nbs) neighbor_fields.push_back(nb.trees[i]);
    if (!check_spanning_tree_fields(view, mine->trees[i], neighbor_fields,
                                    /*check_total=*/false))
      return false;
  }

  // If we are a witness, audit our matrix row.
  for (std::size_t i = 0; i < k; ++i) {
    if (mine->witness_ids[i] != view.id) continue;
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      const bool claimed = mine->witness_ids[j] != view.id &&
                           mine->matrix[tri_index(i, j, k)];
      const bool actual = view.has_neighbor_id(mine->witness_ids[j]);
      if (mine->witness_ids[j] == view.id) {
        if (mine->matrix[tri_index(i, j, k)]) return false;  // self-loop claim
      } else if (claimed != actual) {
        return false;
      }
    }
  }

  // The quantifier-free matrix must hold under the claimed witnesses.
  return eval_matrix(mine->witness_ids, mine->matrix);
}

}  // namespace lcert
