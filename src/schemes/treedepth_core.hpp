// Shared core of the Theorem 2.4 certification, reused by Theorem 2.6.
//
// The kernel scheme (Section 6) embeds the full treedepth certificate — the
// ancestor ID lists and the per-ancestor spanning-tree fragments — and adds
// its own fields on top. This header exposes the certificate structure, the
// prover-side construction from a coherent model, and the radius-1
// verification of the Section 5 steps, so both schemes share one audited
// implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/cert/scheme.hpp"
#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"

namespace lcert {

/// One spanning-tree fragment: this vertex's slice of the spanning tree of
/// G_v for one ancestor v, rooted at v's exit vertex.
struct TdFragment {
  VertexId exit_root_id = 0;
  VertexId parent_id = 0;
  std::uint64_t dist = 0;
};

/// The Theorem 2.4 certificate of one vertex.
struct TdCore {
  std::vector<VertexId> list;     ///< ancestor IDs, own first, root last
  std::vector<TdFragment> frags;  ///< frags[k-1] certifies G_{ancestor at depth k}

  std::size_t depth() const { return list.size() - 1; }

  void encode(BitWriter& w) const;
  /// Decoding of adversarial input; nullopt on malformed structure.
  static std::optional<TdCore> decode(BitReader& r);
};

/// Prover side: the per-vertex cores for a *coherent* model of g.
std::vector<TdCore> build_td_cores(const Graph& g, const RootedTree& coherent_model);

/// Batch twin of build_td_cores: identical cores (same exit vertices, same
/// BFS spanning trees, same distances — pinned by the round-trip tests), but
/// the per-subtree BFS runs over epoch-stamped flat scratch instead of hash
/// maps and the subtrees are fanned out across the run's workers. For a
/// fixed vertex u, distinct ancestors sit at distinct depths and fill
/// distinct fragment slots, so all parallel writes are disjoint.
std::vector<TdCore> build_td_cores_batch(const Graph& g, const RootedTree& coherent_model,
                                         ProverContext& ctx);

/// Verifier side: Section 5's steps 1-4 at one vertex. `t` is the depth bound
/// (levels). `mine`/`nbs` must be pre-decoded; `nbs` is index-parallel to
/// `view.neighbors`. Returns false on any violation.
bool verify_td_core(const ViewRef& view, const TdCore& mine, const std::vector<TdCore>& nbs,
                    std::size_t t);

/// True iff one ancestor list is a suffix of the other.
bool td_suffix_comparable(const std::vector<VertexId>& a, const std::vector<VertexId>& b);

}  // namespace lcert
