// A registry of ready-made schemes, keyed by name.
//
// Drives the CLI example and the uniform audit sweep in the tests: every
// registered scheme is subjected to the same completeness/soundness battery
// on its own instance family, so adding a scheme here buys it the full
// harness for free.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cert/scheme.hpp"
#include "src/util/rng.hpp"

namespace lcert {

struct RegisteredScheme {
  std::string key;          ///< CLI name
  std::string description;  ///< one line, with the paper pointer
  std::function<std::unique_ptr<Scheme>()> make;
  /// Generates a yes-instance of roughly the requested size (IDs assigned).
  std::function<Graph(std::size_t n, Rng&)> yes_instance;
  /// Generates a no-instance (IDs assigned); may return graphs of any size.
  std::function<Graph(std::size_t n, Rng&)> no_instance;
};

/// All registered schemes.
std::vector<RegisteredScheme> scheme_registry();

/// Lookup by key; throws std::out_of_range listing valid keys.
const RegisteredScheme& find_scheme(const std::string& key);

}  // namespace lcert
