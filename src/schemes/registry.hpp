// A registry of ready-made schemes, keyed by name.
//
// Drives the CLI example, the uniform audit sweep in the tests, and the fuzz
// campaign: every registered scheme is subjected to the same completeness/
// soundness battery on its own instance family, so adding a scheme here buys
// it the full harness for free.
//
// The instance family is structured (not just a pair of generator closures):
// it declares which mutators preserve the scheme's input promise, whether
// holds() is total on connected graphs, and — when one exists — an
// *independent* reference oracle for the property, so the fuzz campaign can
// differentially test holds() itself, not just the prover/verifier pair
// against holds().
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cert/scheme.hpp"
#include "src/fuzz/mutators.hpp"
#include "src/util/rng.hpp"

namespace lcert {

/// The instance universe a scheme is tested on.
struct InstanceFamily {
  /// Generates a yes-instance of roughly the requested size (IDs assigned).
  std::function<Graph(std::size_t n, Rng&)> yes_instance;
  /// Generates a no-instance (IDs assigned); may return graphs of any size.
  std::function<Graph(std::size_t n, Rng&)> no_instance;

  /// True when holds() is total on every simple connected graph. Schemes
  /// with an input promise (e.g. the MsoTree family throws off trees) get
  /// false, and the fuzzer restricts itself to promise-preserving mutators.
  bool supports_any_graph = false;

  /// Mutators that keep instances inside the scheme's promise (and keep them
  /// connected and simple). The fuzz campaign draws exclusively from these.
  std::vector<fuzz::MutatorKind> mutators;

  /// Optional ground truth implemented independently of Scheme::holds()
  /// (different algorithm, ideally different subsystem). Empty when the
  /// property has no practical second implementation.
  bool has_reference_oracle = false;
  std::function<bool(const Graph&)> reference_oracle;
  /// Largest n the oracle is feasible for (brute-force oracles explode).
  std::size_t reference_oracle_max_n = 0;
};

struct RegisteredScheme {
  std::string key;          ///< CLI name
  std::string description;  ///< one line, with the paper pointer
  std::function<std::unique_ptr<Scheme>()> make;
  InstanceFamily family;
};

/// All registered schemes.
std::vector<RegisteredScheme> scheme_registry();

/// Lookup by key; throws std::out_of_range listing valid keys.
const RegisteredScheme& find_scheme(const std::string& key);

/// Non-throwing lookup: nullptr when the key is unknown. The CLI uses this
/// to print the valid-key list to stderr and exit with a status instead of
/// an uncaught exception.
const RegisteredScheme* try_find_scheme(const std::string& key);

}  // namespace lcert
