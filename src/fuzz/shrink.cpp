#include "src/fuzz/shrink.hpp"

#include <utility>
#include <vector>

namespace lcert::fuzz {

namespace {

/// Does the same oracle still fire on `candidate`? Fixed seed: the re-check
/// is a pure function of the candidate.
bool still_fails(const Scheme& scheme, const InstanceFamily& family, const Graph& candidate,
                 Oracle oracle, std::uint64_t seed, const RunOptions& attack_budget) {
  Rng rng(seed);
  const CheckOutcome outcome = check_instance(scheme, family, candidate, rng, attack_budget);
  return outcome.violation.has_value() && outcome.violation->oracle == oracle;
}

/// Candidate graphs one vertex smaller. For promise families only leaf
/// removals are offered (they keep a tree a tree); for any-graph families
/// every removal that keeps the graph connected is fair game.
std::vector<Graph> vertex_removals(const Graph& g, bool any_graph) {
  std::vector<Graph> out;
  const std::size_t n = g.vertex_count();
  if (n <= 2) return out;
  for (Vertex drop = 0; drop < n; ++drop) {
    if (!any_graph && g.degree(drop) != 1) continue;
    std::vector<Vertex> keep;
    keep.reserve(n - 1);
    for (Vertex v = 0; v < n; ++v)
      if (v != drop) keep.push_back(v);
    Graph candidate = g.induced(keep);
    if (candidate.is_connected()) out.push_back(std::move(candidate));
  }
  return out;
}

/// Candidate graphs one edge smaller (connectivity-preserving); never offered
/// for promise families, where removing an edge would break the tree.
std::vector<Graph> edge_removals(const Graph& g) {
  std::vector<Graph> out;
  const auto edges = g.edges();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    std::vector<std::pair<Vertex, Vertex>> rest;
    rest.reserve(edges.size() - 1);
    for (std::size_t j = 0; j < edges.size(); ++j)
      if (j != k) rest.push_back(edges[j]);
    Graph candidate(g.vertex_count(), rest);
    if (!candidate.is_connected()) continue;
    std::vector<VertexId> ids(g.vertex_count());
    for (Vertex v = 0; v < g.vertex_count(); ++v) ids[v] = g.id(v);
    candidate.set_ids(std::move(ids));
    out.push_back(std::move(candidate));
  }
  return out;
}

}  // namespace

ShrinkResult shrink_counterexample(const Scheme& scheme, const InstanceFamily& family,
                                   Graph failing, Oracle oracle, std::uint64_t seed,
                                   const RunOptions& attack_budget,
                                   std::size_t max_rechecks) {
  ShrinkResult result{std::move(failing), 0, 0};
  bool progressed = true;
  while (progressed && result.rechecks < max_rechecks) {
    progressed = false;
    std::vector<Graph> candidates = vertex_removals(result.graph, family.supports_any_graph);
    if (family.supports_any_graph) {
      std::vector<Graph> fewer_edges = edge_removals(result.graph);
      for (auto& c : fewer_edges) candidates.push_back(std::move(c));
    }
    for (Graph& candidate : candidates) {
      if (result.rechecks >= max_rechecks) break;
      ++result.rechecks;
      if (still_fails(scheme, family, candidate, oracle, seed, attack_budget)) {
        result.graph = std::move(candidate);
        ++result.steps;
        progressed = true;
        break;  // restart the scan from the smaller instance
      }
    }
  }
  return result;
}

}  // namespace lcert::fuzz
