// The differential oracle battery (DESIGN.md §10).
//
// One fuzz trial = one instance, classified by the scheme's own holds()
// (ground truth), then pushed through every cross-check that can catch a bug
// without a second ground truth — plus the reference-oracle check when the
// family ships an independent implementation of the property. Every oracle
// is a *difference* between two things that must agree; a hit is a library
// bug by construction, never a flaky heuristic.
//
// Oracle table:
//   reference-disagreement    holds(g) != family.reference_oracle(g)
//   prover-refused-yes        holds(g) but assign(g) returned nullopt
//   verifier-rejected-honest  honest certificates rejected at some vertex
//   prover-certified-no       assign(g) produced certificates although
//                             !holds(g) (contract: nullopt on no-instances)
//   batch-divergence          verify_batch decided some vertex differently
//                             from per-vertex verify
//   round-trip-mismatch       a certificate did not survive a bit-exact
//                             BitReader -> BitWriter round trip
//   soundness-forgery         attack_soundness forged an accepting
//                             assignment on a no-instance
//   solver-divergence         prove_assignment under some FeasibilitySolver
//                             backend (greedy / warm-flow / cold-flow / sat)
//                             did not reproduce assign()'s certificates
//                             bit-for-bit
//   incremental-divergence    a CertifiedInstance driven by streaming edits
//                             diverged from a cold full re-prove of the
//                             accumulated graph (certificates must stay
//                             bit-identical after every edit), or its
//                             radius-1 re-verification of the changed slice
//                             rejected
//   box-index-divergence      the per-state BoxIndex answered differently
//                             from the reference linear sweep: first match
//                             on a probe, canonical-DNF membership vs the
//                             constraint's eval(), or decide_first vs a
//                             full per-box decide sweep
#pragma once

#include <optional>
#include <string>

#include "src/cert/options.hpp"
#include "src/cert/scheme.hpp"
#include "src/schemes/registry.hpp"
#include "src/util/rng.hpp"

namespace lcert::fuzz {

enum class Oracle {
  kReferenceDisagreement,
  kProverRefusedYesInstance,
  kVerifierRejectedHonest,
  kProverCertifiedNoInstance,
  kBatchDivergence,
  kRoundTripMismatch,
  kSoundnessForgery,
  kSolverDivergence,
  kIncrementalDivergence,
  kBoxIndexDivergence,
};

/// Stable display name (appears in reports and repro files).
std::string oracle_name(Oracle oracle);

struct Violation {
  Oracle oracle;
  std::string detail;  ///< human-readable specifics (vertex, attack name, ...)
};

struct CheckOutcome {
  /// True when the instance fell outside the scheme's promise or feasibility
  /// envelope (holds() threw std::invalid_argument) — not a bug, the trial
  /// just doesn't apply.
  bool skipped = false;
  bool ground_truth = false;  ///< holds(g), valid when !skipped
  std::optional<Violation> violation;
};

/// Runs the full battery on one instance. `rng` drives the soundness attack
/// (pass a trial-seeded Rng for replayability); `attack_budget` bounds it
/// (random_trials / mutation_trials / max_random_bits / try_replay;
/// num_threads should be 1 — campaign parallelism lives at the trial level).
CheckOutcome check_instance(const Scheme& scheme, const InstanceFamily& family,
                            const Graph& g, Rng& rng,
                            const RunOptions& attack_budget);

}  // namespace lcert::fuzz
