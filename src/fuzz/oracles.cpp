#include "src/fuzz/oracles.hpp"

#include <sstream>
#include <stdexcept>

#include "src/automata/box_index.hpp"
#include "src/automata/uop_automaton.hpp"
#include "src/cert/audit.hpp"
#include "src/cert/engine.hpp"
#include "src/cert/prove.hpp"
#include "src/fuzz/mutators.hpp"
#include "src/incr/incremental.hpp"
#include "src/obs/metrics.hpp"
#include "src/solve/solver.hpp"

namespace lcert::fuzz {

namespace {

// One hit counter per oracle, resolved once.
struct OracleMetrics {
  obs::Counter reference = obs::registry().counter("fuzz/oracle/reference-disagreement");
  obs::Counter prover_refused = obs::registry().counter("fuzz/oracle/prover-refused-yes");
  obs::Counter verifier_rejected =
      obs::registry().counter("fuzz/oracle/verifier-rejected-honest");
  obs::Counter prover_certified = obs::registry().counter("fuzz/oracle/prover-certified-no");
  obs::Counter batch = obs::registry().counter("fuzz/oracle/batch-divergence");
  obs::Counter round_trip = obs::registry().counter("fuzz/oracle/round-trip-mismatch");
  obs::Counter forgery = obs::registry().counter("fuzz/oracle/soundness-forgery");
  obs::Counter solver = obs::registry().counter("fuzz/oracle/solver-divergence");
  obs::Counter incremental =
      obs::registry().counter("fuzz/oracle/incremental-divergence");
  obs::Counter box_index =
      obs::registry().counter("fuzz/oracle/box-index-divergence");
};

const OracleMetrics& oracle_metrics() {
  static const OracleMetrics metrics;
  return metrics;
}

void count_hit(Oracle oracle) {
  const OracleMetrics& m = oracle_metrics();
  switch (oracle) {
    case Oracle::kReferenceDisagreement: m.reference.add(); break;
    case Oracle::kProverRefusedYesInstance: m.prover_refused.add(); break;
    case Oracle::kVerifierRejectedHonest: m.verifier_rejected.add(); break;
    case Oracle::kProverCertifiedNoInstance: m.prover_certified.add(); break;
    case Oracle::kBatchDivergence: m.batch.add(); break;
    case Oracle::kRoundTripMismatch: m.round_trip.add(); break;
    case Oracle::kSoundnessForgery: m.forgery.add(); break;
    case Oracle::kSolverDivergence: m.solver.add(); break;
    case Oracle::kIncrementalDivergence: m.incremental.add(); break;
    case Oracle::kBoxIndexDivergence: m.box_index.add(); break;
  }
}

CheckOutcome violation(Oracle oracle, std::string detail) {
  count_hit(oracle);
  CheckOutcome out;
  out.violation = Violation{oracle, std::move(detail)};
  return out;
}

/// Bit-exact round trip: read every bit back and re-encode. Any divergence
/// means BitReader and BitWriter disagree about the stream layout.
bool round_trips(const Certificate& c) {
  BitReader r = c.reader();
  BitWriter w;
  for (std::size_t i = 0; i < c.bit_size; ++i) w.write_bit(r.read(1) != 0);
  const Certificate back = Certificate::from_writer(std::move(w));
  return back == c;
}

/// Per-vertex verify with the engine's exception policy (CertificateTruncated
/// rejects), for comparison against the batched path.
bool verify_single(const Scheme& scheme, const ViewRef& view) {
  try {
    return scheme.verify(view);
  } catch (const CertificateTruncated&) {
    return false;
  }
}

bool same_assignment(const std::optional<std::vector<Certificate>>& a,
                     const std::optional<std::vector<Certificate>>& b) {
  if (a.has_value() != b.has_value()) return false;
  return !a.has_value() || *a == *b;
}

/// Oracle 9: the incremental recertification path is a pure speedup. Drives
/// a CertifiedInstance through a short random walk of family edits and
/// demands, after init and after every edit, bit-identical certificates to a
/// cold full re-prove of the accumulated graph — plus a clean radius-1
/// re-verification of the changed slice. Runs after the older oracles so its
/// rng draws never shift their streams (replay coordinates of recorded repro
/// files stay valid); box-index-divergence runs after it for the same
/// reason.
std::optional<CheckOutcome> incremental_divergence(const Scheme& scheme,
                                                   const InstanceFamily& family,
                                                   const Graph& g, Rng& rng,
                                                   solve::Backend solver) {
  RunOptions opts;
  opts.num_threads = 1;
  opts.solver = solver;  // the campaign's --solver choice drives the re-proves
  incr::CertifiedInstance live(scheme, opts);
  if (!live.incremental()) return std::nullopt;

  Graph cur = g;
  live.init(cur);
  if (!same_assignment(live.certificates(),
                       prove_assignment(scheme, cur, opts).certificates))
    return violation(Oracle::kIncrementalDivergence,
                     "init diverged from a cold prove_assignment");

  if (family.mutators.empty()) return std::nullopt;
  constexpr std::size_t kWalkLength = 4;
  for (std::size_t step = 0; step < kWalkLength; ++step) {
    const MutatorKind kind = family.mutators[rng.index(family.mutators.size())];
    const auto edit = draw_edit(cur, kind, rng);
    if (!edit.has_value()) continue;
    const IncrementalStats st = live.apply(*edit);
    cur = apply_edit(cur, *edit);
    if (!same_assignment(live.certificates(),
                         prove_assignment(scheme, cur, opts).certificates)) {
      std::ostringstream os;
      os << "edit " << step << " (" << to_string(*edit)
         << ") diverged from a cold prove_assignment"
         << (st.full_reprove ? " [full-reprove path]" : " [incremental path]");
      return violation(Oracle::kIncrementalDivergence, os.str());
    }
    if (!st.reverify_clean) {
      std::ostringstream os;
      os << "edit " << step << " (" << to_string(*edit)
         << "): re-verification of the changed slice rejected";
      return violation(Oracle::kIncrementalDivergence, os.str());
    }
  }
  return std::nullopt;
}

/// Oracle 10: the BoxIndex must be invisible. For every state of the
/// scheme's automaton it rebuilds the canonical index and demands, on random
/// probes, (a) indexed first_containing == the reference linear sweep's
/// first match, (b) canonical-DNF membership == the constraint AST's eval()
/// (exactness of canonicalize_boxes end to end), and (c) decide_first
/// through the feasibility-candidate cursor == a full per-box decide sweep
/// on the cold-flow reference backend. Runs last in the battery so its rng
/// draws never shift the streams of the older oracles.
std::optional<CheckOutcome> box_index_divergence(const Scheme& scheme, Rng& rng) {
  const auto surface = scheme.run_forgery_surface();
  if (!surface.has_value() || surface->automaton == nullptr) return std::nullopt;
  const UOPAutomaton& a = *surface->automaton;
  if (a.label_count != 1) return std::nullopt;
  const std::size_t k = a.state_count;

  std::vector<std::size_t> counts(k);
  std::vector<std::uint64_t> child_masks;
  for (std::size_t q = 0; q < k; ++q) {
    const UnaryConstraint& delta = a.transition(q, 0);
    const BoxIndex idx(delta.to_boxes(k));

    // Probe bound: beyond every finite endpoint the membership landscape is
    // constant, so counts in [0, bound + 2] reach every cell of the DNF.
    std::size_t bound = 2;
    for (const IntervalBox& b : idx.boxes())
      for (std::size_t c = 0; c < k; ++c) {
        bound = std::max(bound, b.lo[c]);
        if (b.hi[c] != IntervalBox::kUnbounded) bound = std::max(bound, b.hi[c]);
      }

    for (int trial = 0; trial < 8; ++trial) {
      for (std::size_t c = 0; c < k; ++c) counts[c] = rng.index(bound + 3);
      const BoxIndex::Hit lin = idx.first_containing_linear(counts.data(), k);
      const BoxIndex::Hit fast = idx.first_containing(counts.data(), k);
      if (lin.index != fast.index) {
        std::ostringstream os;
        os << "state " << q << ": indexed first_containing=" << fast.index
           << " but the linear sweep says " << lin.index;
        return violation(Oracle::kBoxIndexDivergence, os.str());
      }
      if ((fast.index != BoxIndex::npos) != delta.eval(counts)) {
        std::ostringstream os;
        os << "state " << q << ": canonical DNF membership "
           << (fast.index != BoxIndex::npos) << " disagrees with eval()";
        return violation(Oracle::kBoxIndexDivergence, os.str());
      }
    }

    if (k > 64) continue;
    // Candidate path: decide_first's feasibility cursor against a full
    // decide sweep, both on the cold-flow reference backend.
    const std::uint64_t keep =
        k == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << k) - 1);
    for (int trial = 0; trial < 4; ++trial) {
      child_masks.resize(rng.index(5));
      for (std::uint64_t& mask : child_masks) mask = rng.uniform(0, keep);
      const auto feas = solve::SolverFactory::make(solve::Backend::kColdFlow);
      feas->begin(child_masks, k);
      std::size_t sweep_first = BoxIndex::npos;
      for (std::size_t i = 0; i < idx.size(); ++i)
        if (feas->decide(idx.box(i))) {
          sweep_first = i;
          break;
        }
      const std::size_t fast_first = feas->decide_first(idx);
      if (sweep_first != fast_first) {
        std::ostringstream os;
        os << "state " << q << " (m=" << child_masks.size()
           << "): decide_first=" << fast_first << " but the decide sweep says "
           << sweep_first;
        return violation(Oracle::kBoxIndexDivergence, os.str());
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::string oracle_name(Oracle oracle) {
  switch (oracle) {
    case Oracle::kReferenceDisagreement: return "reference-disagreement";
    case Oracle::kProverRefusedYesInstance: return "prover-refused-yes";
    case Oracle::kVerifierRejectedHonest: return "verifier-rejected-honest";
    case Oracle::kProverCertifiedNoInstance: return "prover-certified-no";
    case Oracle::kBatchDivergence: return "batch-divergence";
    case Oracle::kRoundTripMismatch: return "round-trip-mismatch";
    case Oracle::kSoundnessForgery: return "soundness-forgery";
    case Oracle::kSolverDivergence: return "solver-divergence";
    case Oracle::kIncrementalDivergence: return "incremental-divergence";
    case Oracle::kBoxIndexDivergence: return "box-index-divergence";
  }
  throw std::invalid_argument("oracle_name: unknown oracle");
}

CheckOutcome check_instance(const Scheme& scheme, const InstanceFamily& family,
                            const Graph& g, Rng& rng,
                            const RunOptions& attack_budget) {
  CheckOutcome out;

  // Ground truth. A promise violation (or a feasibility limit like the exact
  // treedepth solver's n cap) skips the trial; any other exception from
  // holds() is a bug in the scheme and propagates to the campaign.
  bool truth = false;
  try {
    truth = scheme.holds(g);
  } catch (const std::invalid_argument&) {
    out.skipped = true;
    return out;
  }
  out.ground_truth = truth;

  // Oracle 1: holds() against the family's independent implementation.
  if (family.has_reference_oracle && g.vertex_count() <= family.reference_oracle_max_n &&
      family.reference_oracle(g) != truth) {
    std::ostringstream os;
    os << "holds()=" << truth << " but the reference oracle says " << !truth << " (n="
       << g.vertex_count() << ")";
    return violation(Oracle::kReferenceDisagreement, os.str());
  }

  const auto certificates = scheme.assign(g);

  if (!truth) {
    if (certificates.has_value())
      return violation(Oracle::kProverCertifiedNoInstance,
                       "assign() returned certificates although holds() is false");
    // Oracle 7: adversarial soundness. The attack gets a yes-template of the
    // same size when the family can produce one (replay/bit-flip attacks need
    // honest material to mutate).
    std::optional<std::vector<Certificate>> yes_template;
    try {
      const Graph yes = family.yes_instance(g.vertex_count(), rng);
      yes_template = scheme.assign(yes);
    } catch (const std::exception&) {
      // Template generation is best-effort; the random/empty attacks run
      // regardless.
    }
    const auto forged = attack_soundness(
        scheme, g, yes_template.has_value() ? &*yes_template : nullptr, rng, attack_budget);
    if (forged.has_value())
      return violation(Oracle::kSoundnessForgery,
                       "attack '" + forged->attack + "' forged an accepting assignment");
    if (const auto hit =
            incremental_divergence(scheme, family, g, rng, attack_budget.solver))
      return *hit;
    // Oracle 10, after incremental-divergence for the same stream-stability
    // reason: recorded repro coordinates predate this oracle.
    if (const auto hit = box_index_divergence(scheme, rng)) return *hit;
    return out;
  }

  // Yes-instance: completeness plus the mechanical cross-checks on honest
  // certificates.
  if (!certificates.has_value())
    return violation(Oracle::kProverRefusedYesInstance,
                     "assign() returned nullopt although holds() is true");

  // Oracle 6: every honest certificate must survive a bit round trip.
  for (std::size_t v = 0; v < certificates->size(); ++v)
    if (!round_trips((*certificates)[v])) {
      std::ostringstream os;
      os << "certificate of vertex " << v << " changed under a bit-exact round trip";
      return violation(Oracle::kRoundTripMismatch, os.str());
    }

  // Oracle 8: every FeasibilitySolver backend is a pure speedup — the batch
  // prover must reproduce assign()'s certificates bit-for-bit under each of
  // them, from the cold pristine reference to the SAT core.
  {
    const auto mismatch = [&](const ProveResult& r) -> std::optional<std::string> {
      if (!r.certificates.has_value()) return "prove_assignment refused the yes-instance";
      for (std::size_t v = 0; v < certificates->size(); ++v)
        if (!((*r.certificates)[v] == (*certificates)[v]))
          return "vertex " + std::to_string(v) + " diverged from assign()";
      return std::nullopt;
    };
    for (const auto& info : solve::SolverFactory::registry()) {
      RunOptions opts;
      opts.num_threads = 1;
      opts.solver = info.backend;
      if (const auto why = mismatch(prove_assignment(scheme, g, opts)))
        return violation(Oracle::kSolverDivergence,
                         std::string(info.name) + ": " + *why);
    }
  }

  // Oracle 3 + 5: honest verification, and the batched path must agree with
  // the per-vertex path on every vertex.
  const ViewCache cache(g);
  const auto binding = cache.bind(*certificates);
  const std::size_t n = cache.vertex_count();
  std::vector<ViewRef> views(n);
  for (Vertex v = 0; v < n; ++v) views[v] = binding.view(v);
  std::vector<std::uint8_t> batch(n, 0);
  scheme.verify_batch(views, batch);
  for (Vertex v = 0; v < n; ++v) {
    const bool single = verify_single(scheme, views[v]);
    if (single != (batch[v] != 0)) {
      std::ostringstream os;
      os << "vertex " << v << ": verify()=" << single << " but verify_batch()="
         << (batch[v] != 0);
      return violation(Oracle::kBatchDivergence, os.str());
    }
    if (!single) {
      std::ostringstream os;
      os << "vertex " << v << " rejected the prover's own certificates";
      return violation(Oracle::kVerifierRejectedHonest, os.str());
    }
  }

  // Oracles 9 and 10, last (and in enum order) so their rng draws don't
  // shift the older oracles' streams.
  if (const auto hit = incremental_divergence(scheme, family, g, rng, attack_budget.solver))
    return *hit;
  if (const auto hit = box_index_divergence(scheme, rng)) return *hit;

  return out;
}

}  // namespace lcert::fuzz
