#include "src/fuzz/mutators.hpp"

#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace lcert::fuzz {

namespace {

std::vector<VertexId> ids_of(const Graph& g) {
  std::vector<VertexId> ids(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) ids[v] = g.id(v);
  return ids;
}

/// A fresh ID distinct from every existing one, drawn from the model's
/// polynomial range for the grown vertex count.
VertexId fresh_id(const std::vector<VertexId>& existing, std::size_t n, Rng& rng) {
  const std::unordered_set<VertexId> used(existing.begin(), existing.end());
  const VertexId hi = static_cast<VertexId>(n) * static_cast<VertexId>(n) + 1;
  while (true) {
    const VertexId candidate = rng.uniform(1, hi);
    if (!used.contains(candidate)) return candidate;
  }
}

std::optional<GraphEdit> draw_edge_add(const Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  std::vector<std::pair<Vertex, Vertex>> non_edges;
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v)
      if (!g.has_edge(u, v)) non_edges.emplace_back(u, v);
  if (non_edges.empty()) return std::nullopt;
  const auto [u, v] = non_edges[rng.index(non_edges.size())];
  return GraphEdit{EditKind::kEdgeAdd, u, v};
}

std::optional<GraphEdit> draw_edge_delete(const Graph& g, Rng& rng) {
  const auto edges = g.edges();
  // Non-bridge edges only (instances are tiny, so probe by rebuild).
  std::vector<std::size_t> deletable;
  for (std::size_t k = 0; k < edges.size(); ++k) {
    std::vector<std::pair<Vertex, Vertex>> rest;
    rest.reserve(edges.size() - 1);
    for (std::size_t j = 0; j < edges.size(); ++j)
      if (j != k) rest.push_back(edges[j]);
    if (Graph(g.vertex_count(), rest).is_connected()) deletable.push_back(k);
  }
  if (deletable.empty()) return std::nullopt;
  const auto [u, v] = edges[deletable[rng.index(deletable.size())]];
  return GraphEdit{EditKind::kEdgeDelete, u, v};
}

std::optional<GraphEdit> draw_leaf_graft(const Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return std::nullopt;
  const Vertex anchor = static_cast<Vertex>(rng.index(n));
  GraphEdit edit{EditKind::kLeafGraft, anchor};
  edit.fresh_id = fresh_id(ids_of(g), n + 1, rng);
  return edit;
}

std::optional<GraphEdit> draw_leaf_prune(const Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  if (n <= 2) return std::nullopt;  // keep instances nontrivial
  std::vector<Vertex> leaves;
  for (Vertex v = 0; v < n; ++v)
    if (g.degree(v) == 1) leaves.push_back(v);
  if (leaves.empty()) return std::nullopt;
  return GraphEdit{EditKind::kLeafPrune, leaves[rng.index(leaves.size())]};
}

std::optional<GraphEdit> draw_subtree_swap(const Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  if (n < 3 || g.edge_count() != n - 1 || !g.is_connected()) return std::nullopt;
  // Root anywhere, detach a random non-root subtree and re-hang it under a
  // vertex outside that subtree (excluding the old parent, which would be a
  // no-op). The result is again a spanning tree of n vertices.
  const Vertex root = static_cast<Vertex>(rng.index(n));
  std::vector<Vertex> parent(n, static_cast<Vertex>(n));
  std::vector<Vertex> order;
  order.reserve(n);
  order.push_back(root);
  parent[root] = root;
  for (std::size_t head = 0; head < order.size(); ++head)
    for (Vertex w : g.neighbors(order[head]))
      if (parent[w] == n) {
        parent[w] = order[head];
        order.push_back(w);
      }
  const Vertex moved = order[1 + rng.index(n - 1)];  // any non-root vertex
  // Mark the subtree of `moved` (children appear after parents in `order`).
  std::vector<char> in_subtree(n, 0);
  in_subtree[moved] = 1;
  for (Vertex v : order)
    if (v != moved && v != root && in_subtree[parent[v]]) in_subtree[v] = 1;
  std::vector<Vertex> candidates;
  for (Vertex v = 0; v < n; ++v)
    if (!in_subtree[v] && v != parent[moved]) candidates.push_back(v);
  if (candidates.empty()) return std::nullopt;
  const Vertex new_parent = candidates[rng.index(candidates.size())];
  return GraphEdit{EditKind::kSubtreeSwap, moved, new_parent, parent[moved]};
}

std::optional<GraphEdit> draw_id_permute(const Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  if (n < 2) return std::nullopt;
  GraphEdit edit{EditKind::kIdPermute};
  edit.ids = ids_of(g);
  rng.shuffle(edit.ids);
  return edit;
}

}  // namespace

std::string mutator_name(MutatorKind kind) { return edit_name(kind); }

std::vector<MutatorKind> tree_preserving_mutators() {
  return {MutatorKind::kLeafGraft, MutatorKind::kLeafPrune,
          MutatorKind::kSubtreeSwap, MutatorKind::kIdPermute};
}

std::vector<MutatorKind> all_mutators() {
  return {MutatorKind::kEdgeAdd,   MutatorKind::kEdgeDelete,
          MutatorKind::kLeafGraft, MutatorKind::kLeafPrune,
          MutatorKind::kSubtreeSwap, MutatorKind::kIdPermute};
}

std::optional<GraphEdit> draw_edit(const Graph& g, MutatorKind kind, Rng& rng) {
  switch (kind) {
    case EditKind::kEdgeAdd: return draw_edge_add(g, rng);
    case EditKind::kEdgeDelete: return draw_edge_delete(g, rng);
    case EditKind::kLeafGraft: return draw_leaf_graft(g, rng);
    case EditKind::kLeafPrune: return draw_leaf_prune(g, rng);
    case EditKind::kSubtreeSwap: return draw_subtree_swap(g, rng);
    case EditKind::kIdPermute: return draw_id_permute(g, rng);
  }
  throw std::invalid_argument("draw_edit: unknown kind");
}

std::optional<Graph> apply_mutator(const Graph& g, MutatorKind kind, Rng& rng) {
  const auto edit = draw_edit(g, kind, rng);
  if (!edit.has_value()) return std::nullopt;
  return apply_edit(g, *edit);
}

}  // namespace lcert::fuzz
