#include "src/fuzz/mutators.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace lcert::fuzz {

namespace {

Graph rebuild(std::size_t n, std::vector<std::pair<Vertex, Vertex>> edges,
              std::vector<VertexId> ids) {
  Graph out(n, edges);
  out.set_ids(std::move(ids));
  return out;
}

std::vector<VertexId> ids_of(const Graph& g) {
  std::vector<VertexId> ids(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) ids[v] = g.id(v);
  return ids;
}

/// A fresh ID distinct from every existing one, drawn from the model's
/// polynomial range for the grown vertex count.
VertexId fresh_id(const std::vector<VertexId>& existing, std::size_t n, Rng& rng) {
  const std::unordered_set<VertexId> used(existing.begin(), existing.end());
  const VertexId hi = static_cast<VertexId>(n) * static_cast<VertexId>(n) + 1;
  while (true) {
    const VertexId candidate = rng.uniform(1, hi);
    if (!used.contains(candidate)) return candidate;
  }
}

std::optional<Graph> edge_add(const Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  std::vector<std::pair<Vertex, Vertex>> non_edges;
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v)
      if (!g.has_edge(u, v)) non_edges.emplace_back(u, v);
  if (non_edges.empty()) return std::nullopt;
  auto edges = g.edges();
  edges.push_back(non_edges[rng.index(non_edges.size())]);
  return rebuild(n, std::move(edges), ids_of(g));
}

std::optional<Graph> edge_delete(const Graph& g, Rng& rng) {
  const auto edges = g.edges();
  // Non-bridge edges only (instances are tiny, so probe by rebuild).
  std::vector<std::size_t> deletable;
  for (std::size_t k = 0; k < edges.size(); ++k) {
    std::vector<std::pair<Vertex, Vertex>> rest;
    rest.reserve(edges.size() - 1);
    for (std::size_t j = 0; j < edges.size(); ++j)
      if (j != k) rest.push_back(edges[j]);
    if (Graph(g.vertex_count(), rest).is_connected()) deletable.push_back(k);
  }
  if (deletable.empty()) return std::nullopt;
  const std::size_t k = deletable[rng.index(deletable.size())];
  std::vector<std::pair<Vertex, Vertex>> rest;
  for (std::size_t j = 0; j < edges.size(); ++j)
    if (j != k) rest.push_back(edges[j]);
  return rebuild(g.vertex_count(), std::move(rest), ids_of(g));
}

std::optional<Graph> leaf_graft(const Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return std::nullopt;
  auto edges = g.edges();
  edges.emplace_back(rng.index(n), n);
  auto ids = ids_of(g);
  ids.push_back(fresh_id(ids, n + 1, rng));
  return rebuild(n + 1, std::move(edges), std::move(ids));
}

std::optional<Graph> leaf_prune(const Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  if (n <= 2) return std::nullopt;  // keep instances nontrivial
  std::vector<Vertex> leaves;
  for (Vertex v = 0; v < n; ++v)
    if (g.degree(v) == 1) leaves.push_back(v);
  if (leaves.empty()) return std::nullopt;
  const Vertex drop = leaves[rng.index(leaves.size())];
  std::vector<Vertex> keep;
  keep.reserve(n - 1);
  for (Vertex v = 0; v < n; ++v)
    if (v != drop) keep.push_back(v);
  return g.induced(keep);  // inherits IDs
}

std::optional<Graph> subtree_swap(const Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  if (n < 3 || g.edge_count() != n - 1 || !g.is_connected()) return std::nullopt;
  // Root anywhere, detach a random non-root subtree and re-hang it under a
  // vertex outside that subtree (excluding the old parent, which would be a
  // no-op). The result is again a spanning tree of n vertices.
  const Vertex root = static_cast<Vertex>(rng.index(n));
  std::vector<Vertex> parent(n, static_cast<Vertex>(n));
  std::vector<Vertex> order;
  order.reserve(n);
  order.push_back(root);
  parent[root] = root;
  for (std::size_t head = 0; head < order.size(); ++head)
    for (Vertex w : g.neighbors(order[head]))
      if (parent[w] == n) {
        parent[w] = order[head];
        order.push_back(w);
      }
  const Vertex moved = order[1 + rng.index(n - 1)];  // any non-root vertex
  // Mark the subtree of `moved` (children appear after parents in `order`).
  std::vector<char> in_subtree(n, 0);
  in_subtree[moved] = 1;
  for (Vertex v : order)
    if (v != moved && v != root && in_subtree[parent[v]]) in_subtree[v] = 1;
  std::vector<Vertex> candidates;
  for (Vertex v = 0; v < n; ++v)
    if (!in_subtree[v] && v != parent[moved]) candidates.push_back(v);
  if (candidates.empty()) return std::nullopt;
  const Vertex new_parent = candidates[rng.index(candidates.size())];
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(n - 1);
  for (auto [u, v] : g.edges()) {
    const bool is_old_link = (u == moved && v == parent[moved]) ||
                             (v == moved && u == parent[moved]);
    if (!is_old_link) edges.emplace_back(u, v);
  }
  edges.emplace_back(std::min(moved, new_parent), std::max(moved, new_parent));
  return rebuild(n, std::move(edges), ids_of(g));
}

std::optional<Graph> id_permute(const Graph& g, Rng& rng) {
  const std::size_t n = g.vertex_count();
  if (n < 2) return std::nullopt;
  auto ids = ids_of(g);
  rng.shuffle(ids);
  Graph out = g;
  out.set_ids(std::move(ids));
  return out;
}

}  // namespace

std::string mutator_name(MutatorKind kind) {
  switch (kind) {
    case MutatorKind::kEdgeAdd: return "edge-add";
    case MutatorKind::kEdgeDelete: return "edge-delete";
    case MutatorKind::kLeafGraft: return "leaf-graft";
    case MutatorKind::kLeafPrune: return "leaf-prune";
    case MutatorKind::kSubtreeSwap: return "subtree-swap";
    case MutatorKind::kIdPermute: return "id-permute";
  }
  throw std::invalid_argument("mutator_name: unknown kind");
}

std::vector<MutatorKind> tree_preserving_mutators() {
  return {MutatorKind::kLeafGraft, MutatorKind::kLeafPrune,
          MutatorKind::kSubtreeSwap, MutatorKind::kIdPermute};
}

std::vector<MutatorKind> all_mutators() {
  return {MutatorKind::kEdgeAdd,   MutatorKind::kEdgeDelete,
          MutatorKind::kLeafGraft, MutatorKind::kLeafPrune,
          MutatorKind::kSubtreeSwap, MutatorKind::kIdPermute};
}

std::optional<Graph> apply_mutator(const Graph& g, MutatorKind kind, Rng& rng) {
  switch (kind) {
    case MutatorKind::kEdgeAdd: return edge_add(g, rng);
    case MutatorKind::kEdgeDelete: return edge_delete(g, rng);
    case MutatorKind::kLeafGraft: return leaf_graft(g, rng);
    case MutatorKind::kLeafPrune: return leaf_prune(g, rng);
    case MutatorKind::kSubtreeSwap: return subtree_swap(g, rng);
    case MutatorKind::kIdPermute: return id_permute(g, rng);
  }
  throw std::invalid_argument("apply_mutator: unknown kind");
}

}  // namespace lcert::fuzz
