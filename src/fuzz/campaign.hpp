// The fuzzing campaign engine (DESIGN.md §10).
//
// A campaign runs N independent trials against one scheme. Each trial:
//   1. derives its own seed from (campaign seed, trial index) — splitmix64,
//      so replay needs no per-trial state, only the pair;
//   2. generates a base instance from the scheme's family (yes- or
//      no-leaning, by coin), then walks it toward the yes/no boundary with
//      up to max_mutations family-preserving mutators;
//   3. classifies the result with holds() and runs the full differential
//      oracle battery (src/fuzz/oracles.hpp);
//   4. on a hit, shrinks the counterexample to a minimal repro.
//
// Determinism contract (trial-count mode): for fixed (seed, trials,
// max_findings) the findings are bit-identical for every num_threads value.
// Trials are skipped only when their index exceeds the current
// max_findings-th smallest hit index — a threshold that only decreases — so
// the surviving findings are always exactly the max_findings lowest-indexed
// hits, independent of scheduling. Time-budget mode trades that guarantee
// for wall-clock control (each finding still replays exactly from its own
// (seed, trial) pair).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/cert/options.hpp"
#include "src/fuzz/oracles.hpp"
#include "src/schemes/registry.hpp"

namespace lcert::fuzz {

/// Derives trial `index`'s private seed from the campaign seed. Stateless
/// (splitmix64 over seed ^ f(index)), so time-budget campaigns can keep
/// drawing fresh trials without pre-committing a count.
std::uint64_t trial_seed(std::uint64_t campaign_seed, std::uint64_t index);

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::size_t trials = 1000;      ///< trial-count mode (deterministic)
  double time_budget_s = 0;       ///< when > 0: run until the clock, not the count
  std::size_t num_threads = 0;    ///< 0 = auto
  std::size_t base_n = 12;        ///< requested size of base instances
  std::size_t max_mutations = 3;  ///< mutation walk length per trial
  std::size_t max_findings = 8;   ///< stop collecting beyond this many hits
  bool shrink = true;             ///< delta-debug each finding
  /// Budget for the per-trial soundness attack (num_threads is forced to 1;
  /// campaign parallelism lives at the trial level).
  RunOptions attack{.num_threads = 1,
                    .stop_at_first_reject = true,
                    .seed = 42,
                    .random_trials = 32,
                    .mutation_trials = 32,
                    .max_random_bits = 48};
};

struct Finding {
  std::size_t trial = 0;          ///< replay coordinate, with the campaign seed
  std::uint64_t seed = 0;         ///< trial_seed(campaign_seed, trial)
  Oracle oracle;
  std::string detail;
  Graph graph;                    ///< minimal repro (== original when !shrink)
  Graph original;                 ///< the instance as the trial produced it
  std::vector<std::string> mutation_trace;  ///< mutator names applied
  std::size_t shrink_steps = 0;
};

struct CampaignStats {
  std::size_t trials_run = 0;     ///< trials that executed the battery
  std::size_t trials_skipped = 0; ///< instances outside the scheme's promise
  std::size_t yes_instances = 0;
  std::size_t no_instances = 0;
  double seconds = 0;
};

struct CampaignResult {
  std::vector<Finding> findings;  ///< sorted by trial index, <= max_findings
  CampaignStats stats;
};

/// Runs a campaign against one scheme/family pair.
CampaignResult run_campaign(const Scheme& scheme, const InstanceFamily& family,
                            const CampaignOptions& options);

/// Re-executes exactly one trial (generation, mutation walk, oracle battery)
/// and returns its finding, if the trial hits. This is the replay path: a
/// report's (campaign seed, trial) pair feeds straight back in.
CampaignResult replay_trial(const Scheme& scheme, const InstanceFamily& family,
                            const CampaignOptions& options, std::size_t trial);

/// Ready-to-paste GoogleTest snippet reproducing a finding from its shrunk
/// instance (embedded as an edge list, no file dependency).
std::string repro_snippet(const Finding& finding, const std::string& scheme_key);

}  // namespace lcert::fuzz
