// Graph mutators for the fuzzing campaign (DESIGN.md §10).
//
// Each mutator perturbs an instance a small step toward the yes/no boundary
// of a property; the campaign classifies the result with the scheme's own
// holds() (ground truth) and runs the differential oracles on both sides of
// the boundary. Mutators are *family-aware*: schemes with a tree promise
// (MsoTree, FpfAutomorphism, TreeDepthBounded, TreeDiameter — their holds()
// throws off the promise) only receive tree-preserving mutators, while
// any-graph schemes also get raw edge edits.
//
// Since the incremental recertification layer (DESIGN.md §13) the mutation
// step is split in two: draw_edit picks the random parameters and returns a
// first-class GraphEdit descriptor (src/graph/edit.hpp), apply_edit
// materializes it. apply_mutator composes the two, preserving the historical
// behavior bit-for-bit — the RNG call sequence inside draw_edit is exactly
// the one the old closed-form mutators made, so every recorded (seed, trial)
// replay coordinate still reproduces its instance.
//
// Every mutator is total and deterministic in (graph, Rng state): it either
// returns the edit/mutated graph or std::nullopt when no legal application
// exists (e.g. EdgeDelete on a tree would disconnect, EdgeAdd on a clique).
// All mutators preserve connectivity and simplicity — those are
// prerequisites of every scheme in the registry, and violating them would
// only test the generators' input validation, not the schemes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/graph/edit.hpp"
#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace lcert::fuzz {

/// The mutator catalogue IS the edit catalogue: campaign configuration and
/// the incremental layer speak the same enum.
using MutatorKind = EditKind;

/// Display name, stable across versions (appears in shrunk repro files).
std::string mutator_name(MutatorKind kind);

/// The mutators that keep a tree a tree (plus the ID permutation, which is
/// structure-free). Safe for schemes whose holds() has a tree promise.
std::vector<MutatorKind> tree_preserving_mutators();

/// The full catalogue, for schemes whose property is total on connected
/// graphs.
std::vector<MutatorKind> all_mutators();

/// Draws one random legal application of `kind` against `g` and returns its
/// descriptor; std::nullopt when the mutator has no legal application on `g`
/// (never throws for that case). Consumes exactly the random draws the
/// historical closed-form mutator consumed.
std::optional<GraphEdit> draw_edit(const Graph& g, MutatorKind kind, Rng& rng);

/// Applies one mutator: draw_edit + apply_edit. Returns std::nullopt when
/// the mutator has no legal application on `g`. The result is connected,
/// simple, and carries fresh distinct IDs where the mutation created vertices
/// (existing IDs are preserved where the vertices survive).
std::optional<Graph> apply_mutator(const Graph& g, MutatorKind kind, Rng& rng);

}  // namespace lcert::fuzz
