// Graph mutators for the fuzzing campaign (DESIGN.md §10).
//
// Each mutator perturbs an instance a small step toward the yes/no boundary
// of a property; the campaign classifies the result with the scheme's own
// holds() (ground truth) and runs the differential oracles on both sides of
// the boundary. Mutators are *family-aware*: schemes with a tree promise
// (MsoTree, FpfAutomorphism, TreeDepthBounded, TreeDiameter — their holds()
// throws off the promise) only receive tree-preserving mutators, while
// any-graph schemes also get raw edge edits.
//
// Every mutator is total and deterministic in (graph, Rng state): it either
// returns the mutated graph or std::nullopt when no legal application exists
// (e.g. EdgeDelete on a tree would disconnect, EdgeAdd on a clique). All
// mutators preserve connectivity and simplicity — those are prerequisites of
// every scheme in the registry, and violating them would only test the
// generators' input validation, not the schemes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace lcert::fuzz {

enum class MutatorKind {
  kEdgeAdd,      ///< insert a uniformly random non-edge (keeps simplicity)
  kEdgeDelete,   ///< delete a random non-bridge edge (keeps connectivity)
  kLeafGraft,    ///< attach a fresh leaf to a random vertex (tree-preserving)
  kLeafPrune,    ///< remove a random degree-1 vertex (tree-preserving)
  kSubtreeSwap,  ///< re-hang a random subtree under a new parent (trees only)
  kIdPermute,    ///< permute the ID assignment (property must be ID-invariant)
};

/// Display name, stable across versions (appears in shrunk repro files).
std::string mutator_name(MutatorKind kind);

/// The mutators that keep a tree a tree (plus the ID permutation, which is
/// structure-free). Safe for schemes whose holds() has a tree promise.
std::vector<MutatorKind> tree_preserving_mutators();

/// The full catalogue, for schemes whose property is total on connected
/// graphs.
std::vector<MutatorKind> all_mutators();

/// Applies one mutator. Returns std::nullopt when the mutator has no legal
/// application on `g` (never throws for that case). The result is connected,
/// simple, and carries fresh distinct IDs where the mutation created vertices
/// (existing IDs are preserved where the vertices survive).
std::optional<Graph> apply_mutator(const Graph& g, MutatorKind kind, Rng& rng);

}  // namespace lcert::fuzz
