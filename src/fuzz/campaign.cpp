#include "src/fuzz/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <utility>

#include "src/fuzz/mutators.hpp"
#include "src/fuzz/shrink.hpp"
#include "src/graph/io.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"
#include "src/obs/trace.hpp"
#include "src/util/parallel.hpp"

namespace lcert::fuzz {

namespace {

struct FuzzMetrics {
  obs::Counter trials = obs::registry().counter("fuzz/trials");
  obs::Counter skips = obs::registry().counter("fuzz/skips");
  obs::Counter yes_instances = obs::registry().counter("fuzz/yes_instances");
  obs::Counter no_instances = obs::registry().counter("fuzz/no_instances");
  obs::Counter findings = obs::registry().counter("fuzz/findings");
  obs::Counter shrink_steps = obs::registry().counter("fuzz/shrink_steps");
  obs::Histogram instance_n = obs::registry().histogram("fuzz/instance_n");
};

const FuzzMetrics& fuzz_metrics() {
  static const FuzzMetrics metrics;
  return metrics;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct TrialOutcome {
  bool skipped = false;
  bool yes = false;
  std::optional<Finding> finding;
};

/// One complete trial: generate, mutate, check. Everything downstream of the
/// trial seed; no shared state, so trials parallelize freely.
TrialOutcome run_one_trial(const Scheme& scheme, const InstanceFamily& family,
                           const CampaignOptions& options, std::size_t trial) {
  const std::uint64_t seed = trial_seed(options.seed, trial);
  Rng rng(seed);
  const FuzzMetrics& metrics = fuzz_metrics();

  TrialOutcome out;
  Graph g;
  std::vector<std::string> trace;
  try {
    // Bias toward yes-instances: mutations drift across the boundary anyway,
    // and completeness bugs need yes-side starts.
    const bool from_yes = rng.coin(0.6);
    g = from_yes ? family.yes_instance(options.base_n, rng)
                 : family.no_instance(options.base_n, rng);
    if (!family.mutators.empty() && options.max_mutations > 0) {
      const std::size_t steps = rng.index(options.max_mutations + 1);
      for (std::size_t i = 0; i < steps; ++i) {
        const MutatorKind kind = family.mutators[rng.index(family.mutators.size())];
        if (auto mutated = apply_mutator(g, kind, rng)) {
          g = std::move(*mutated);
          trace.push_back(mutator_name(kind));
        }
      }
    }
  } catch (const std::invalid_argument&) {
    // Generator/mutator produced something outside its own contract for this
    // n; treat like a promise skip rather than crashing the campaign.
    metrics.skips.add();
    out.skipped = true;
    return out;
  }

  metrics.instance_n.record(g.vertex_count());
  const CheckOutcome checked = check_instance(scheme, family, g, rng, options.attack);
  if (checked.skipped) {
    metrics.skips.add();
    out.skipped = true;
    return out;
  }
  metrics.trials.add();
  out.yes = checked.ground_truth;
  (out.yes ? metrics.yes_instances : metrics.no_instances).add();
  // Timeline marker per completed trial: logical = trial index (seed-derived
  // work identity, scheduling-independent), arg = yes/no ground truth.
  static const std::uint32_t trace_trial = obs::trace_sink().name_id("fuzz/trial");
  obs::trace_sink().emit(trace_trial, obs::TraceEventKind::kInstant, trial,
                         out.yes ? 1 : 0);
  if (checked.violation.has_value()) {
    metrics.findings.add();
    Finding f;
    f.trial = trial;
    f.seed = seed;
    f.oracle = checked.violation->oracle;
    f.detail = checked.violation->detail;
    f.graph = g;
    f.original = std::move(g);
    f.mutation_trace = std::move(trace);
    out.finding = std::move(f);
  }
  return out;
}

void shrink_finding(const Scheme& scheme, const InstanceFamily& family,
                    const CampaignOptions& options, Finding& finding) {
  ShrinkResult shrunk = shrink_counterexample(scheme, family, finding.original,
                                              finding.oracle, finding.seed, options.attack);
  fuzz_metrics().shrink_steps.add(shrunk.steps);
  finding.graph = std::move(shrunk.graph);
  finding.shrink_steps = shrunk.steps;
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t campaign_seed, std::uint64_t index) {
  return splitmix64(campaign_seed ^ splitmix64(index + 0x5DEECE66Dull));
}

CampaignResult run_campaign(const Scheme& scheme, const InstanceFamily& family,
                            const CampaignOptions& options) {
  LCERT_SPAN("fuzz/campaign");
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const std::size_t max_findings = std::max<std::size_t>(options.max_findings, 1);

  CampaignResult result;
  std::mutex findings_mutex;
  std::vector<Finding> findings;
  // Trials indexed above the max_findings-th smallest hit can never place;
  // the threshold only decreases, so skipping them is scheduling-independent
  // (same argument as the audit's lowest-trial-wins forgery).
  std::atomic<std::size_t> threshold{SIZE_MAX};
  std::atomic<std::size_t> trials_run{0}, skipped{0}, yes_count{0}, no_count{0};

  const auto trial_body = [&](std::size_t trial) {
    if (trial > threshold.load(std::memory_order_relaxed)) return;
    TrialOutcome outcome = run_one_trial(scheme, family, options, trial);
    if (outcome.skipped) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    trials_run.fetch_add(1, std::memory_order_relaxed);
    (outcome.yes ? yes_count : no_count).fetch_add(1, std::memory_order_relaxed);
    if (!outcome.finding.has_value()) return;
    std::lock_guard<std::mutex> lock(findings_mutex);
    const auto pos = std::lower_bound(
        findings.begin(), findings.end(), outcome.finding->trial,
        [](const Finding& f, std::size_t t) { return f.trial < t; });
    findings.insert(pos, std::move(*outcome.finding));
    if (findings.size() >= max_findings)
      threshold.store(findings[max_findings - 1].trial, std::memory_order_relaxed);
  };

  if (options.time_budget_s > 0) {
    // Wall-clock mode: draw trials in chunks until the budget runs out. Each
    // finding still replays exactly from (seed, trial); only the set of
    // executed trials is timing-dependent.
    constexpr std::size_t kChunk = 64;
    std::size_t next = 0;
    while (std::chrono::duration<double>(Clock::now() - start).count() <
               options.time_budget_s &&
           threshold.load(std::memory_order_relaxed) == SIZE_MAX) {
      parallel_for(kChunk, options.num_threads,
                   [&](std::size_t i) { trial_body(next + i); });
      next += kChunk;
    }
  } else {
    parallel_for(options.trials, options.num_threads, trial_body);
  }

  if (findings.size() > max_findings) findings.resize(max_findings);
  if (options.shrink)
    for (Finding& f : findings) shrink_finding(scheme, family, options, f);
  result.findings = std::move(findings);
  result.stats.trials_run = trials_run.load();
  result.stats.trials_skipped = skipped.load();
  result.stats.yes_instances = yes_count.load();
  result.stats.no_instances = no_count.load();
  result.stats.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

CampaignResult replay_trial(const Scheme& scheme, const InstanceFamily& family,
                            const CampaignOptions& options, std::size_t trial) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  CampaignResult result;
  TrialOutcome outcome = run_one_trial(scheme, family, options, trial);
  result.stats.trials_run = outcome.skipped ? 0 : 1;
  result.stats.trials_skipped = outcome.skipped ? 1 : 0;
  if (!outcome.skipped) (outcome.yes ? result.stats.yes_instances
                                     : result.stats.no_instances) = 1;
  if (outcome.finding.has_value()) {
    if (options.shrink) shrink_finding(scheme, family, options, *outcome.finding);
    result.findings.push_back(std::move(*outcome.finding));
  }
  result.stats.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

std::string repro_snippet(const Finding& finding, const std::string& scheme_key) {
  std::ostringstream os;
  os << "// Fuzz repro: " << oracle_name(finding.oracle) << " on '" << scheme_key << "'\n"
     << "// " << finding.detail << "\n"
     << "// replay: trial " << finding.trial << ", trial seed " << finding.seed;
  if (!finding.mutation_trace.empty()) {
    os << ", mutations:";
    for (const auto& m : finding.mutation_trace) os << ' ' << m;
  }
  os << "\nTEST(FuzzRepro, " << "Trial" << finding.trial << ") {\n"
     << "  const lcert::Graph g = lcert::parse_edge_list(R\"(\n"
     << to_edge_list(finding.graph) << ")\");\n"
     << "  const auto& entry = lcert::find_scheme(\"" << scheme_key << "\");\n"
     << "  const auto scheme = entry.make();\n"
     << "  lcert::Rng rng(" << finding.seed << "ull);\n"
     << "  const auto outcome = lcert::fuzz::check_instance(\n"
     << "      *scheme, entry.family, g, rng, lcert::RunOptions{1, true});\n"
     << "  ASSERT_FALSE(outcome.violation.has_value())\n"
     << "      << lcert::fuzz::oracle_name(outcome.violation->oracle) << \": \"\n"
     << "      << outcome.violation->detail;\n"
     << "}\n";
  return os.str();
}

}  // namespace lcert::fuzz
