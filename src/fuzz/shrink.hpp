// Counterexample shrinking: greedy delta-debugging toward a minimal repro.
//
// A raw fuzz finding often carries mutation debris that has nothing to do
// with the bug. The shrinker repeatedly tries structure-reducing edits —
// vertex removals (leaves only for promise families, so the instance stays a
// tree), then edge removals for any-graph families — and keeps an edit
// whenever the *same oracle* still fires on the smaller instance. The
// re-check runs with a fixed seed, so shrinking is deterministic and the
// shrunk instance provably still fails.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/cert/options.hpp"
#include "src/fuzz/oracles.hpp"
#include "src/schemes/registry.hpp"

namespace lcert::fuzz {

struct ShrinkResult {
  Graph graph;              ///< the minimized failing instance
  std::size_t steps = 0;    ///< accepted edits
  std::size_t rechecks = 0; ///< oracle batteries run while shrinking
};

/// Minimizes `failing` while the violation's oracle keeps firing. `seed`
/// drives the re-check Rng (use the finding's trial seed so the repro chain
/// stays on one seed). `max_rechecks` caps the work; shrinking stops early
/// when the cap is hit and returns the best instance so far.
ShrinkResult shrink_counterexample(const Scheme& scheme, const InstanceFamily& family,
                                   Graph failing, Oracle oracle, std::uint64_t seed,
                                   const RunOptions& attack_budget,
                                   std::size_t max_rechecks = 400);

}  // namespace lcert::fuzz
