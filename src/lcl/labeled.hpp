// Certification of labeled trees (Section 4, final remark; Appendix C.2).
//
// Theorem 2.2's proof "gives for free" the extension where vertices carry
// constant-size input labels, in the spirit of locally checkable labelings:
// the property is now about the labeled tree ("exactly one vertex is marked",
// "the marked set is connected", ...), the UOP automaton's transitions depend
// on the label, and the certificate is still (mod-3 counter, state) — O(1)
// bits. Inputs differ from certificates: the verifier reads its own and its
// neighbors' labels as trusted parts of the instance, while certificates are
// adversarial.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/cert/scheme.hpp"
#include "src/graph/graph.hpp"

namespace lcert {

/// A tree network whose vertices carry input labels in [0, label_count).
struct LabeledTreeInstance {
  Graph tree;
  std::vector<std::size_t> labels;
};

/// Radius-1 view over a labeled instance.
struct LabeledView {
  VertexId id;
  std::size_t label;
  Certificate certificate;
  struct Neighbor {
    VertexId id;
    std::size_t label;
    Certificate certificate;
  };
  std::vector<Neighbor> neighbors;
};

LabeledView make_labeled_view(const LabeledTreeInstance& instance,
                              const std::vector<Certificate>& certificates, Vertex v);

/// A certification scheme for properties of labeled trees.
class LabeledScheme {
 public:
  virtual ~LabeledScheme() = default;
  virtual std::string name() const = 0;
  virtual bool holds(const LabeledTreeInstance& instance) const = 0;
  virtual std::optional<std::vector<Certificate>> assign(
      const LabeledTreeInstance& instance) const = 0;
  virtual bool verify(const LabeledView& view) const = 0;
};

struct LabeledOutcome {
  bool all_accept = false;
  std::vector<Vertex> rejecting;
  std::size_t max_certificate_bits = 0;
};

LabeledOutcome verify_labeled_assignment(const LabeledScheme& scheme,
                                         const LabeledTreeInstance& instance,
                                         const std::vector<Certificate>& certificates);

}  // namespace lcert
