#include "src/lcl/labeled.hpp"

#include <stdexcept>

#include "src/obs/metrics.hpp"

namespace lcert {

LabeledView make_labeled_view(const LabeledTreeInstance& instance,
                              const std::vector<Certificate>& certificates, Vertex v) {
  const Graph& g = instance.tree;
  if (certificates.size() != g.vertex_count() || instance.labels.size() != g.vertex_count())
    throw std::invalid_argument("make_labeled_view: size mismatch");
  LabeledView view;
  view.id = g.id(v);
  view.label = instance.labels[v];
  view.certificate = certificates[v];
  for (Vertex w : g.neighbors(v))
    view.neighbors.push_back({g.id(w), instance.labels[w], certificates[w]});
  return view;
}

LabeledOutcome verify_labeled_assignment(const LabeledScheme& scheme,
                                         const LabeledTreeInstance& instance,
                                         const std::vector<Certificate>& certificates) {
  LabeledOutcome out;
  for (const Certificate& c : certificates)
    out.max_certificate_bits = std::max(out.max_certificate_bits, c.bit_size);
  for (Vertex v = 0; v < instance.tree.vertex_count(); ++v) {
    bool ok;
    try {
      ok = scheme.verify(make_labeled_view(instance, certificates, v));
    } catch (const CertificateTruncated&) {
      // Malformed certificate: the verifier rejects. Other exceptions are
      // scheme bugs and propagate (mirrors verify_assignment).
      ok = false;
      static const obs::Counter truncated =
          obs::registry().counter("engine/truncated_rejects");
      truncated.add();
    }
    if (!ok) out.rejecting.push_back(v);
  }
  out.all_accept = out.rejecting.empty();
  return out;
}

}  // namespace lcert
