#include "src/lcl/lcl_scheme.hpp"

#include <stdexcept>

#include "src/graph/rooted_tree.hpp"
#include "src/util/bitio.hpp"

namespace lcert {

LclTreeScheme::LclTreeScheme(NamedLabeledAutomaton automaton)
    : automaton_(std::move(automaton)),
      state_bits_(bits_for(automaton_.automaton.state_count - 1)) {
  automaton_.automaton.validate();
  if (automaton_.automaton.label_count != 2)
    throw std::invalid_argument("LclTreeScheme: expected binary labels");
}

bool LclTreeScheme::holds(const LabeledTreeInstance& instance) const {
  const Graph& g = instance.tree;
  if (g.edge_count() != g.vertex_count() - 1 || !g.is_connected())
    throw std::invalid_argument(name() + ": instance outside the tree promise");
  if (instance.labels.size() != g.vertex_count())
    throw std::invalid_argument(name() + ": label vector size mismatch");
  for (std::size_t l : instance.labels)
    if (l >= 2) throw std::invalid_argument(name() + ": labels must be binary");
  return automaton_.oracle(instance);
}

std::optional<std::vector<Certificate>> LclTreeScheme::assign(
    const LabeledTreeInstance& instance) const {
  if (!holds(instance)) return std::nullopt;
  const Graph& g = instance.tree;
  for (Vertex root = 0; root < g.vertex_count(); ++root) {
    const RootedTree t = RootedTree::from_graph(g, root);
    // Re-index the labels into the rooted tree's vertex order (identical: the
    // rooted tree keeps graph indices).
    const auto run = find_accepting_run(automaton_.automaton, t, &instance.labels);
    if (!run.has_value()) continue;
    std::vector<Certificate> certs(g.vertex_count());
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      BitWriter w;
      w.write(t.depth(v) % 3, 2);
      w.write((*run)[v], state_bits_ == 0 ? 1 : state_bits_);
      certs[v] = Certificate::from_writer(std::move(w));
    }
    return certs;
  }
  return std::nullopt;
}

bool LclTreeScheme::verify(const LabeledView& view) const {
  BitReader r = view.certificate.reader();
  const std::uint64_t my_mod = r.read(2);
  const std::uint64_t my_state = r.read(state_bits_ == 0 ? 1 : state_bits_);
  if (my_mod > 2 || my_state >= automaton_.automaton.state_count) return false;
  if (view.label >= automaton_.automaton.label_count) return false;

  std::size_t parents = 0;
  std::vector<std::size_t> child_state_counts(automaton_.automaton.state_count, 0);
  for (const auto& nb : view.neighbors) {
    BitReader nr = nb.certificate.reader();
    const std::uint64_t nb_mod = nr.read(2);
    const std::uint64_t nb_state = nr.read(state_bits_ == 0 ? 1 : state_bits_);
    if (nb_mod > 2 || nb_state >= automaton_.automaton.state_count) return false;
    if (nb_mod == (my_mod + 2) % 3) {
      ++parents;
    } else if (nb_mod == (my_mod + 1) % 3) {
      ++child_state_counts[nb_state];
    } else {
      return false;
    }
  }
  if (parents > 1) return false;
  const bool is_root = (parents == 0);
  if (is_root && my_mod != 0) return false;

  if (!automaton_.automaton.transition(my_state, view.label).eval(child_state_counts))
    return false;
  if (is_root && !automaton_.automaton.accepting[my_state]) return false;
  return true;
}

}  // namespace lcert
