#include "src/lcl/lcl_library.hpp"

#include <stdexcept>

namespace lcert {

namespace {

using UC = UnaryConstraint;

constexpr std::size_t kUnmarked = 0;
constexpr std::size_t kMarked = 1;

}  // namespace

UOPAutomaton laut_unique_leader() {
  AutomatonBuilder b(/*label_count=*/2);
  const std::size_t none = b.add_state("none", false);  // no mark in the subtree
  const std::size_t one = b.add_state("one", true);     // exactly one mark
  // Unmarked vertex: marks below = sum over children.
  b.set_transition(none, UC::exactly(one, 0), kUnmarked);
  b.set_transition(one, UC::exactly(one, 1), kUnmarked);
  // Marked vertex: contributes one mark itself; children must be clean.
  b.set_transition(one, UC::exactly(one, 0), kMarked);
  // A marked vertex with a marked subtree below has no state: > 1 leader.
  return b.build();
}

UOPAutomaton laut_marked_count_ge(std::size_t c) {
  if (c == 0) throw std::invalid_argument("laut_marked_count_ge: c must be >= 1");
  AutomatonBuilder b(/*label_count=*/2);
  // M_j = "the subtree contains exactly j marks" (j < c); M_c = ">= c marks".
  std::vector<std::size_t> M(c + 1);
  for (std::size_t j = 0; j <= c; ++j)
    M[j] = b.add_state("M" + std::to_string(j), j == c);

  // OR over compositions: children contribute j_i (capped at c), target sum s.
  auto sum_eq = [&](std::size_t s) {
    UC out = UC::always_false();
    std::vector<std::size_t> counts(c + 1, 0);
    auto emit = [&]() {
      UC box = UC::always_true();
      for (std::size_t j = 1; j <= c; ++j) box = box && UC::exactly(M[j], counts[j]);
      out = out || box;
    };
    auto rec = [&](auto&& self, std::size_t j, std::size_t left) -> void {
      if (j > c) {
        if (left == 0) emit();
        return;
      }
      for (std::size_t y = 0; y * j <= left; ++y) {
        counts[j] = y;
        self(self, j + 1, left - y * j);
      }
      counts[j] = 0;
    };
    rec(rec, 1, s);
    return out;
  };

  for (std::size_t label : {kUnmarked, kMarked}) {
    const std::size_t own = (label == kMarked) ? 1 : 0;
    for (std::size_t j = 0; j < c; ++j) {
      if (j < own) {
        b.set_transition(M[j], UC::always_false(), label);
        continue;
      }
      b.set_transition(M[j], sum_eq(j - own), label);
    }
    // M_c: children sum + own >= c, i.e. NOT (sum == 0 .. c-1-own).
    UC small = UC::always_false();
    for (std::size_t s = 0; own + s < c; ++s) small = small || sum_eq(s);
    b.set_transition(M[c], !small, label);
  }
  return b.build();
}

UOPAutomaton laut_marked_connected() {
  AutomatonBuilder b(/*label_count=*/2);
  const std::size_t empty = b.add_state("empty", false);  // no marks below
  const std::size_t top = b.add_state("top", true);       // connected, contains v
  const std::size_t done = b.add_state("done", true);     // connected, strictly below
  // Unmarked vertex: either nothing below, or exactly one child holds the
  // whole marked component (as its top or already finished).
  b.set_transition(empty, UC::exactly(top, 0) && UC::exactly(done, 0), kUnmarked);
  b.set_transition(done,
                   (UC::exactly(top, 1) && UC::exactly(done, 0)) ||
                       (UC::exactly(top, 0) && UC::exactly(done, 1)),
                   kUnmarked);
  // Marked vertex: every child's marked part must be empty or glued to the
  // child itself (state top); a finished component below would be detached.
  b.set_transition(top, UC::exactly(done, 0), kMarked);
  return b.build();
}

namespace {

std::size_t marked_count(const LabeledTreeInstance& inst) {
  std::size_t out = 0;
  for (std::size_t l : inst.labels) out += (l == kMarked) ? 1 : 0;
  return out;
}

bool oracle_unique_leader(const LabeledTreeInstance& inst) { return marked_count(inst) == 1; }

constexpr std::size_t kCountBound = 3;

bool oracle_marked_count_ge_3(const LabeledTreeInstance& inst) {
  return marked_count(inst) >= kCountBound;
}

bool oracle_marked_connected(const LabeledTreeInstance& inst) {
  const std::size_t n = inst.tree.vertex_count();
  Vertex seed = SIZE_MAX;
  std::size_t total = 0;
  for (Vertex v = 0; v < n; ++v)
    if (inst.labels[v] == kMarked) {
      seed = v;
      ++total;
    }
  if (total == 0) return false;
  // BFS within the marked set.
  std::vector<bool> seen(n, false);
  std::vector<Vertex> stack{seed};
  seen[seed] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    for (Vertex w : inst.tree.neighbors(v)) {
      if (inst.labels[w] == kMarked && !seen[w]) {
        seen[w] = true;
        ++reached;
        stack.push_back(w);
      }
    }
  }
  return reached == total;
}

}  // namespace

std::vector<NamedLabeledAutomaton> standard_labeled_automata() {
  return {
      {"unique-leader", laut_unique_leader(), &oracle_unique_leader},
      {"marked>=3", laut_marked_count_ge(kCountBound), &oracle_marked_count_ge_3},
      {"marked-connected", laut_marked_connected(), &oracle_marked_connected},
  };
}

}  // namespace lcert
