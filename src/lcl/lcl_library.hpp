// Labeled UOP automata for global properties of marked trees.
//
// Labels are binary marks (0 = unmarked, 1 = marked). The three properties
// below are the classic examples of *globally* constrained labelings that a
// radius-1 verifier cannot check without certificates (unlike proper coloring
// or maximal independence, which are plain LCLs):
//   - unique-leader: exactly one vertex is marked;
//   - marked-count >= c: at least c vertices are marked;
//   - marked-connected: the marked vertices form a non-empty connected set.
// Each is recognized by a labeled UOP tree automaton with O(1) states, so
// Theorem 2.2's scheme certifies it with O(1)-bit certificates.
#pragma once

#include <string>
#include <vector>

#include "src/automata/uop_automaton.hpp"
#include "src/lcl/labeled.hpp"

namespace lcert {

/// "Exactly one vertex is marked."
UOPAutomaton laut_unique_leader();

/// "At least c vertices are marked" (c >= 1).
UOPAutomaton laut_marked_count_ge(std::size_t c);

/// "The marked set is non-empty and connected."
UOPAutomaton laut_marked_connected();

struct NamedLabeledAutomaton {
  std::string name;
  UOPAutomaton automaton;  ///< label_count == 2
  bool (*oracle)(const LabeledTreeInstance&);
};

std::vector<NamedLabeledAutomaton> standard_labeled_automata();

}  // namespace lcert
