// Theorem 2.2 for labeled trees: O(1)-bit certification of labeled-UOP
// automaton languages. Same mod-3 orientation + state certificate as
// MsoTreeScheme; the transition is looked up under the vertex's *input label*
// which the radius-1 verifier reads directly from the instance.
#pragma once

#include <optional>
#include <string>

#include "src/lcl/labeled.hpp"
#include "src/lcl/lcl_library.hpp"

namespace lcert {

class LclTreeScheme final : public LabeledScheme {
 public:
  explicit LclTreeScheme(NamedLabeledAutomaton automaton);

  std::string name() const override { return "lcl-tree[" + automaton_.name + "]"; }
  bool holds(const LabeledTreeInstance& instance) const override;
  std::optional<std::vector<Certificate>> assign(
      const LabeledTreeInstance& instance) const override;
  bool verify(const LabeledView& view) const override;

  std::size_t certificate_bits() const noexcept { return 2 + state_bits_; }

 private:
  NamedLabeledAutomaton automaton_;
  unsigned state_bits_;
};

}  // namespace lcert
