// Brute-force FO/MSO model checking — the library's ground truth.
//
// Vertex quantifiers enumerate all n vertices; set quantifiers enumerate all
// 2^n subsets (as 64-bit masks), so this is only usable on small graphs —
// which is exactly its role: every scheme, automaton, and kernel in the
// library is property-tested against this evaluator on small instances.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/graph/graph.hpp"
#include "src/logic/ast.hpp"

namespace lcert {

/// Environment binding free variables (used to evaluate open formulas).
struct Environment {
  std::unordered_map<std::string, Vertex> vertex_vars;
  std::unordered_map<std::string, std::uint64_t> set_vars;  // bitmask over vertices
};

/// Evaluates `f` on `g` under `env`. Throws std::invalid_argument on an
/// unbound variable, and if a set quantifier is used with n > 24 (the subset
/// enumeration would not terminate in reasonable time).
bool evaluate(const Graph& g, const Formula& f, const Environment& env = {});

}  // namespace lcert
