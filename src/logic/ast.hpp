// FO / MSO formula AST (Section 3.2 of the paper).
//
// Grammar:  x = y | x - y (adjacency) | x in X | ~F | F & F | F | F
//           | forall x. F | exists x. F | forall X. F | exists X. F
// Vertex variables are lowercase-first names, set variables uppercase-first.
// Formulas are immutable trees shared by shared_ptr; builders below give a
// readable embedded DSL used by the formula library and the tests:
//
//   auto f = forall("x", exists("y", adj("x", "y") && !eq("x", "y")));
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace lcert {

enum class FormulaKind {
  kEqual,         ///< x = y
  kAdjacent,      ///< x - y
  kMember,        ///< x in X
  kNot,
  kAnd,
  kOr,
  kForallVertex,
  kExistsVertex,
  kForallSet,
  kExistsSet,
};

struct FormulaNode;
using FormulaPtr = std::shared_ptr<const FormulaNode>;

/// One AST node. Atoms use var_a/var_b; quantifiers use var_a as the bound
/// variable and child_a as the body; boolean nodes use child_a/child_b.
struct FormulaNode {
  FormulaKind kind;
  std::string var_a;
  std::string var_b;
  FormulaPtr child_a;
  FormulaPtr child_b;
};

/// Value-semantics wrapper so formulas compose with &&, ||, !.
class Formula {
 public:
  Formula() = default;
  explicit Formula(FormulaPtr node) : node_(std::move(node)) {}

  const FormulaNode& node() const { return *node_; }
  FormulaPtr ptr() const { return node_; }
  bool valid() const noexcept { return node_ != nullptr; }

  /// Readable rendering (round-trips through the parser).
  std::string to_string() const;

 private:
  FormulaPtr node_;
};

// ---- Builders ------------------------------------------------------------

Formula eq(const std::string& x, const std::string& y);
Formula adj(const std::string& x, const std::string& y);
Formula mem(const std::string& x, const std::string& X);
Formula operator!(const Formula& f);
Formula operator&&(const Formula& a, const Formula& b);
Formula operator||(const Formula& a, const Formula& b);
Formula implies(const Formula& a, const Formula& b);
Formula iff(const Formula& a, const Formula& b);
/// Quantifiers dispatch on capitalization: uppercase-first = set variable.
Formula forall(const std::string& var, const Formula& body);
Formula exists(const std::string& var, const Formula& body);

/// Conjunction / disjunction over a vector (true/false for empty input).
Formula conjunction(const std::vector<Formula>& fs);
Formula disjunction(const std::vector<Formula>& fs);

/// True iff the name denotes a set variable (uppercase first letter).
bool is_set_variable(const std::string& name);

}  // namespace lcert
