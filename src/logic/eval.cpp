#include "src/logic/eval.hpp"

#include <stdexcept>

namespace lcert {

namespace {

struct Evaluator {
  const Graph& g;

  bool eval(const FormulaNode& n, Environment& env) const {
    switch (n.kind) {
      case FormulaKind::kEqual:
        return vertex(n.var_a, env) == vertex(n.var_b, env);
      case FormulaKind::kAdjacent:
        return g.has_edge(vertex(n.var_a, env), vertex(n.var_b, env));
      case FormulaKind::kMember: {
        const Vertex v = vertex(n.var_a, env);
        return (set(n.var_b, env) >> v) & 1u;
      }
      case FormulaKind::kNot:
        return !eval(*n.child_a, env);
      case FormulaKind::kAnd:
        return eval(*n.child_a, env) && eval(*n.child_b, env);
      case FormulaKind::kOr:
        return eval(*n.child_a, env) || eval(*n.child_b, env);
      case FormulaKind::kForallVertex:
        return quantify_vertex(n, env, /*is_forall=*/true);
      case FormulaKind::kExistsVertex:
        return quantify_vertex(n, env, /*is_forall=*/false);
      case FormulaKind::kForallSet:
        return quantify_set(n, env, /*is_forall=*/true);
      case FormulaKind::kExistsSet:
        return quantify_set(n, env, /*is_forall=*/false);
    }
    throw std::logic_error("Evaluator: unreachable");
  }

  bool quantify_vertex(const FormulaNode& n, Environment& env, bool is_forall) const {
    // Save and restore any shadowed binding.
    const auto old = env.vertex_vars.find(n.var_a);
    const bool had = old != env.vertex_vars.end();
    const Vertex saved = had ? old->second : 0;
    bool result = is_forall;
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      env.vertex_vars[n.var_a] = v;
      const bool sub = eval(*n.child_a, env);
      if (is_forall && !sub) {
        result = false;
        break;
      }
      if (!is_forall && sub) {
        result = true;
        break;
      }
    }
    if (had)
      env.vertex_vars[n.var_a] = saved;
    else
      env.vertex_vars.erase(n.var_a);
    return result;
  }

  bool quantify_set(const FormulaNode& n, Environment& env, bool is_forall) const {
    if (g.vertex_count() > 24)
      throw std::invalid_argument("evaluate: set quantification needs n <= 24");
    const auto old = env.set_vars.find(n.var_a);
    const bool had = old != env.set_vars.end();
    const std::uint64_t saved = had ? old->second : 0;
    bool result = is_forall;
    const std::uint64_t limit = std::uint64_t{1} << g.vertex_count();
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      env.set_vars[n.var_a] = mask;
      const bool sub = eval(*n.child_a, env);
      if (is_forall && !sub) {
        result = false;
        break;
      }
      if (!is_forall && sub) {
        result = true;
        break;
      }
    }
    if (had)
      env.set_vars[n.var_a] = saved;
    else
      env.set_vars.erase(n.var_a);
    return result;
  }

  Vertex vertex(const std::string& name, const Environment& env) const {
    auto it = env.vertex_vars.find(name);
    if (it == env.vertex_vars.end())
      throw std::invalid_argument("evaluate: unbound vertex variable '" + name + "'");
    return it->second;
  }

  std::uint64_t set(const std::string& name, const Environment& env) const {
    auto it = env.set_vars.find(name);
    if (it == env.set_vars.end())
      throw std::invalid_argument("evaluate: unbound set variable '" + name + "'");
    return it->second;
  }
};

}  // namespace

bool evaluate(const Graph& g, const Formula& f, const Environment& env) {
  if (!f.valid()) throw std::invalid_argument("evaluate: empty formula");
  Environment scratch = env;
  return Evaluator{g}.eval(f.node(), scratch);
}

}  // namespace lcert
