#include "src/logic/parser.hpp"

#include <cctype>
#include <stdexcept>

namespace lcert {

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("parse_formula: " + message + " at position " +
                                std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool try_consume(const std::string& token) {
    skip_ws();
    if (text.compare(pos, token.size(), token) == 0) {
      // Word tokens must not swallow an identifier prefix.
      if (std::isalpha(static_cast<unsigned char>(token.front()))) {
        const std::size_t end = pos + token.size();
        if (end < text.size() &&
            (std::isalnum(static_cast<unsigned char>(text[end])) || text[end] == '_'))
          return false;
      }
      pos += token.size();
      return true;
    }
    return false;
  }

  void consume(const std::string& token) {
    if (!try_consume(token)) fail("expected '" + token + "'");
  }

  std::string name() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) || text[pos] == '_'))
      ++pos;
    if (pos == start) fail("expected a variable name");
    return text.substr(start, pos - start);
  }

  Formula formula() { return iff_level(); }

  Formula iff_level() {
    Formula left = impl_level();
    while (try_consume("<->")) left = iff(left, impl_level());
    return left;
  }

  Formula impl_level() {
    Formula left = or_level();
    if (try_consume("->")) return implies(left, impl_level());
    return left;
  }

  Formula or_level() {
    Formula left = and_level();
    while (try_consume("|")) left = left || and_level();
    return left;
  }

  Formula and_level() {
    Formula left = unary();
    while (try_consume("&")) left = left && unary();
    return left;
  }

  Formula unary() {
    skip_ws();
    if (try_consume("~") || try_consume("!")) return !unary();
    if (try_consume("forall")) {
      const std::string v = name();
      consume(".");
      return forall(v, unary());
    }
    if (try_consume("exists")) {
      const std::string v = name();
      consume(".");
      return exists(v, unary());
    }
    if (try_consume("(")) {
      Formula inner = formula();
      consume(")");
      return inner;
    }
    if (try_consume("adj")) {
      consume("(");
      const std::string a = name();
      consume(",");
      const std::string b = name();
      consume(")");
      return adj(a, b);
    }
    // NAME "=" NAME | NAME "in" NAME
    const std::string a = name();
    if (try_consume("=")) return eq(a, name());
    if (try_consume("in")) return mem(a, name());
    fail("expected '=' or 'in' after variable '" + a + "'");
  }
};

}  // namespace

Formula parse_formula(const std::string& text) {
  Parser p{text};
  Formula out = p.formula();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing characters");
  return out;
}

}  // namespace lcert
