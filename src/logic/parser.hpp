// Textual syntax for FO/MSO formulas.
//
//   formula  := iff
//   iff      := impl ("<->" impl)*
//   impl     := or ("->" or)*            (right-associative)
//   or       := and ("|" and)*
//   and      := unary ("&" unary)*
//   unary    := "~" unary | quantifier | atom | "(" formula ")"
//   quant    := ("forall" | "exists") NAME "." unary
//   atom     := "adj" "(" NAME "," NAME ")" | NAME "=" NAME | NAME "in" NAME
//
// Names starting with an uppercase letter are set variables. Round-trips
// with Formula::to_string().
#pragma once

#include <string>

#include "src/logic/ast.hpp"

namespace lcert {

/// Parses a formula; throws std::invalid_argument with position info on error.
Formula parse_formula(const std::string& text);

}  // namespace lcert
