#include "src/logic/ast.hpp"

#include <cctype>
#include <stdexcept>

namespace lcert {

namespace {

Formula make(FormulaKind kind, std::string a, std::string b, FormulaPtr ca, FormulaPtr cb) {
  auto node = std::make_shared<FormulaNode>();
  node->kind = kind;
  node->var_a = std::move(a);
  node->var_b = std::move(b);
  node->child_a = std::move(ca);
  node->child_b = std::move(cb);
  return Formula(std::move(node));
}

void require_vertex_var(const std::string& v, const char* where) {
  if (v.empty() || is_set_variable(v))
    throw std::invalid_argument(std::string(where) + ": expected vertex variable, got '" + v + "'");
}

}  // namespace

bool is_set_variable(const std::string& name) {
  return !name.empty() && std::isupper(static_cast<unsigned char>(name.front())) != 0;
}

Formula eq(const std::string& x, const std::string& y) {
  require_vertex_var(x, "eq");
  require_vertex_var(y, "eq");
  return make(FormulaKind::kEqual, x, y, nullptr, nullptr);
}

Formula adj(const std::string& x, const std::string& y) {
  require_vertex_var(x, "adj");
  require_vertex_var(y, "adj");
  return make(FormulaKind::kAdjacent, x, y, nullptr, nullptr);
}

Formula mem(const std::string& x, const std::string& X) {
  require_vertex_var(x, "mem");
  if (!is_set_variable(X))
    throw std::invalid_argument("mem: expected set variable, got '" + X + "'");
  return make(FormulaKind::kMember, x, X, nullptr, nullptr);
}

Formula operator!(const Formula& f) {
  return make(FormulaKind::kNot, {}, {}, f.ptr(), nullptr);
}

Formula operator&&(const Formula& a, const Formula& b) {
  return make(FormulaKind::kAnd, {}, {}, a.ptr(), b.ptr());
}

Formula operator||(const Formula& a, const Formula& b) {
  return make(FormulaKind::kOr, {}, {}, a.ptr(), b.ptr());
}

Formula implies(const Formula& a, const Formula& b) { return !a || b; }

Formula iff(const Formula& a, const Formula& b) {
  return implies(a, b) && implies(b, a);
}

Formula forall(const std::string& var, const Formula& body) {
  const auto kind = is_set_variable(var) ? FormulaKind::kForallSet : FormulaKind::kForallVertex;
  return make(kind, var, {}, body.ptr(), nullptr);
}

Formula exists(const std::string& var, const Formula& body) {
  const auto kind = is_set_variable(var) ? FormulaKind::kExistsSet : FormulaKind::kExistsVertex;
  return make(kind, var, {}, body.ptr(), nullptr);
}

Formula conjunction(const std::vector<Formula>& fs) {
  if (fs.empty())
    // A closed tautology ("every vertex equals itself"); costs quantifier depth 1.
    return forall("taut_v", eq("taut_v", "taut_v"));
  Formula out = fs.front();
  for (std::size_t i = 1; i < fs.size(); ++i) out = out && fs[i];
  return out;
}

Formula disjunction(const std::vector<Formula>& fs) {
  if (fs.empty()) return !conjunction({});
  Formula out = fs.front();
  for (std::size_t i = 1; i < fs.size(); ++i) out = out || fs[i];
  return out;
}

namespace {

void render(const FormulaNode& n, std::string& out) {
  switch (n.kind) {
    case FormulaKind::kEqual:
      out += n.var_a + " = " + n.var_b;
      break;
    case FormulaKind::kAdjacent:
      out += "adj(" + n.var_a + ", " + n.var_b + ")";
      break;
    case FormulaKind::kMember:
      out += n.var_a + " in " + n.var_b;
      break;
    case FormulaKind::kNot:
      out += "~(";
      render(*n.child_a, out);
      out += ")";
      break;
    case FormulaKind::kAnd:
      out += "(";
      render(*n.child_a, out);
      out += " & ";
      render(*n.child_b, out);
      out += ")";
      break;
    case FormulaKind::kOr:
      out += "(";
      render(*n.child_a, out);
      out += " | ";
      render(*n.child_b, out);
      out += ")";
      break;
    case FormulaKind::kForallVertex:
    case FormulaKind::kForallSet:
      out += "forall " + n.var_a + ". (";
      render(*n.child_a, out);
      out += ")";
      break;
    case FormulaKind::kExistsVertex:
    case FormulaKind::kExistsSet:
      out += "exists " + n.var_a + ". (";
      render(*n.child_a, out);
      out += ")";
      break;
  }
}

}  // namespace

std::string Formula::to_string() const {
  if (!node_) return "<empty>";
  std::string out;
  render(*node_, out);
  return out;
}

}  // namespace lcert
