#include "src/logic/ef_game.hpp"

#include <vector>

namespace lcert {

namespace {

struct GameState {
  const Graph& g;
  const Graph& h;
  std::vector<Vertex> gs;  // positions played in g
  std::vector<Vertex> hs;  // positions played in h

  // Checks that appending (u, v) keeps the partial map an isomorphism of the
  // induced substructures: equality pattern and adjacency must agree.
  bool extension_ok(Vertex u, Vertex v) const {
    for (std::size_t i = 0; i < gs.size(); ++i) {
      if ((gs[i] == u) != (hs[i] == v)) return false;
      if (g.has_edge(gs[i], u) != h.has_edge(hs[i], v)) return false;
    }
    return true;
  }

  bool duplicator_wins(std::size_t rounds) {
    if (rounds == 0) return true;
    // Spoiler tries both boards and every vertex; Duplicator needs a reply
    // for each of Spoiler's options.
    for (Vertex u = 0; u < g.vertex_count(); ++u) {
      if (!duplicator_has_reply(u, /*spoiler_on_g=*/true, rounds)) return false;
    }
    for (Vertex v = 0; v < h.vertex_count(); ++v) {
      if (!duplicator_has_reply(v, /*spoiler_on_g=*/false, rounds)) return false;
    }
    return true;
  }

  bool duplicator_has_reply(Vertex spoiler_move, bool spoiler_on_g, std::size_t rounds) {
    const Graph& reply_board = spoiler_on_g ? h : g;
    for (Vertex reply = 0; reply < reply_board.vertex_count(); ++reply) {
      const Vertex u = spoiler_on_g ? spoiler_move : reply;
      const Vertex v = spoiler_on_g ? reply : spoiler_move;
      if (!extension_ok(u, v)) continue;
      gs.push_back(u);
      hs.push_back(v);
      const bool wins = duplicator_wins(rounds - 1);
      gs.pop_back();
      hs.pop_back();
      if (wins) return true;
    }
    return false;
  }
};

}  // namespace

bool ef_equivalent(const Graph& g, const Graph& h, std::size_t rounds) {
  GameState state{g, h, {}, {}};
  return state.duplicator_wins(rounds);
}

std::size_t distinguishing_depth(const Graph& g, const Graph& h, std::size_t max_rounds) {
  for (std::size_t r = 1; r <= max_rounds; ++r)
    if (!ef_equivalent(g, h, r)) return r;
  return 0;
}

}  // namespace lcert
