#include "src/logic/modelcheck.hpp"

#include <stdexcept>

#include "src/kernel/reduce.hpp"
#include "src/logic/eval.hpp"
#include "src/logic/metrics.hpp"
#include "src/treedepth/elimination.hpp"
#include "src/treedepth/exact.hpp"
#include "src/treedepth/heuristic.hpp"

namespace lcert {

bool modelcheck_bounded_treedepth(const Graph& g, const Formula& phi,
                                  std::optional<RootedTree> model,
                                  std::size_t threshold_override, ModelCheckStats* stats) {
  if (!is_sentence(phi))
    throw std::invalid_argument("modelcheck_bounded_treedepth: formula has free variables");
  if (uses_set_quantifiers(phi) && threshold_override == 0)
    throw std::invalid_argument(
        "modelcheck_bounded_treedepth: MSO sentence needs an explicit threshold "
        "(FO-depth thresholds are only proven for FO; see DESIGN.md)");

  RootedTree coherent = [&] {
    if (model.has_value()) {
      if (!is_valid_model(g, *model))
        throw std::invalid_argument("modelcheck_bounded_treedepth: invalid model");
      return make_coherent(g, *model);
    }
    if (g.vertex_count() <= 20) return exact_treedepth_with_model(g).model;
    return heuristic_elimination_tree(g);
  }();

  const std::size_t k =
      threshold_override != 0 ? threshold_override : quantifier_depth(phi);
  if (k == 0) {
    // Quantifier-free sentences have no variables at all; evaluate directly.
    return evaluate(g, phi);
  }

  const Kernelization kz = k_reduce(g, coherent, k);
  if (stats != nullptr) {
    stats->kernel_size = kz.kernel.vertex_count();
    stats->reduction_threshold = k;
    stats->model_depth = model_depth(coherent);
  }
  return evaluate(kz.kernel, phi);
}

}  // namespace lcert
