#include "src/logic/metrics.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace lcert {

namespace {

bool is_existential_kind(FormulaKind k) {
  return k == FormulaKind::kExistsVertex || k == FormulaKind::kExistsSet;
}

std::size_t depth_of(const FormulaNode& n) {
  switch (n.kind) {
    case FormulaKind::kEqual:
    case FormulaKind::kAdjacent:
    case FormulaKind::kMember:
      return 0;
    case FormulaKind::kNot:
      return depth_of(*n.child_a);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      return std::max(depth_of(*n.child_a), depth_of(*n.child_b));
    default:
      return 1 + depth_of(*n.child_a);
  }
}

}  // namespace

std::size_t quantifier_depth(const Formula& f) {
  if (!f.valid()) throw std::invalid_argument("quantifier_depth: empty formula");
  return depth_of(f.node());
}

namespace {

// 0 = no block seen yet, 1 = existential, 2 = universal.
std::size_t alternations_of(const FormulaNode& n, int current_block) {
  switch (n.kind) {
    case FormulaKind::kEqual:
    case FormulaKind::kAdjacent:
    case FormulaKind::kMember:
      return 0;
    case FormulaKind::kNot:
      return alternations_of(*n.child_a, current_block);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      return std::max(alternations_of(*n.child_a, current_block),
                      alternations_of(*n.child_b, current_block));
    default: {
      const int block = is_existential_kind(n.kind) ? 1 : 2;
      const std::size_t extra = (current_block != 0 && current_block != block) ? 1 : 0;
      return extra + alternations_of(*n.child_a, block);
    }
  }
}

}  // namespace

std::size_t quantifier_alternations(const Formula& f) {
  if (!f.valid()) throw std::invalid_argument("quantifier_alternations: empty formula");
  return alternations_of(to_nnf(f).node(), 0);
}

namespace {

bool uses_sets(const FormulaNode& n) {
  switch (n.kind) {
    case FormulaKind::kEqual:
    case FormulaKind::kAdjacent:
      return false;
    case FormulaKind::kMember:
    case FormulaKind::kForallSet:
    case FormulaKind::kExistsSet:
      return true;
    case FormulaKind::kNot:
      return uses_sets(*n.child_a);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      return uses_sets(*n.child_a) || uses_sets(*n.child_b);
    default:
      return uses_sets(*n.child_a);
  }
}

Formula nnf(const FormulaNode& n, bool negated);

Formula nnf_child(const FormulaPtr& p, bool negated) { return nnf(*p, negated); }

Formula nnf(const FormulaNode& n, bool negated) {
  switch (n.kind) {
    case FormulaKind::kEqual: {
      Formula atom = eq(n.var_a, n.var_b);
      return negated ? !atom : atom;
    }
    case FormulaKind::kAdjacent: {
      Formula atom = adj(n.var_a, n.var_b);
      return negated ? !atom : atom;
    }
    case FormulaKind::kMember: {
      Formula atom = mem(n.var_a, n.var_b);
      return negated ? !atom : atom;
    }
    case FormulaKind::kNot:
      return nnf_child(n.child_a, !negated);
    case FormulaKind::kAnd: {
      Formula a = nnf_child(n.child_a, negated);
      Formula b = nnf_child(n.child_b, negated);
      return negated ? (a || b) : (a && b);
    }
    case FormulaKind::kOr: {
      Formula a = nnf_child(n.child_a, negated);
      Formula b = nnf_child(n.child_b, negated);
      return negated ? (a && b) : (a || b);
    }
    case FormulaKind::kForallVertex:
    case FormulaKind::kForallSet: {
      Formula body = nnf_child(n.child_a, negated);
      return negated ? exists(n.var_a, body) : forall(n.var_a, body);
    }
    case FormulaKind::kExistsVertex:
    case FormulaKind::kExistsSet: {
      Formula body = nnf_child(n.child_a, negated);
      return negated ? forall(n.var_a, body) : exists(n.var_a, body);
    }
  }
  throw std::logic_error("nnf: unreachable");
}

bool only_existential(const FormulaNode& n) {
  switch (n.kind) {
    case FormulaKind::kEqual:
    case FormulaKind::kAdjacent:
    case FormulaKind::kMember:
      return true;
    case FormulaKind::kNot:
      // NNF: negation only wraps atoms.
      return only_existential(*n.child_a);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      return only_existential(*n.child_a) && only_existential(*n.child_b);
    case FormulaKind::kExistsVertex:
    case FormulaKind::kExistsSet:
      return only_existential(*n.child_a);
    case FormulaKind::kForallVertex:
    case FormulaKind::kForallSet:
      return false;
  }
  throw std::logic_error("only_existential: unreachable");
}

void collect_free(const FormulaNode& n, std::set<std::string> bound,
                  std::vector<std::string>& out, std::set<std::string>& seen) {
  auto visit_var = [&](const std::string& v) {
    if (!bound.count(v) && !seen.count(v)) {
      seen.insert(v);
      out.push_back(v);
    }
  };
  switch (n.kind) {
    case FormulaKind::kEqual:
    case FormulaKind::kAdjacent:
    case FormulaKind::kMember:
      visit_var(n.var_a);
      visit_var(n.var_b);
      return;
    case FormulaKind::kNot:
      collect_free(*n.child_a, bound, out, seen);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      collect_free(*n.child_a, bound, out, seen);
      collect_free(*n.child_b, bound, out, seen);
      return;
    default:
      bound.insert(n.var_a);
      collect_free(*n.child_a, bound, out, seen);
      return;
  }
}

}  // namespace

bool uses_set_quantifiers(const Formula& f) {
  if (!f.valid()) throw std::invalid_argument("uses_set_quantifiers: empty formula");
  return uses_sets(f.node());
}

Formula to_nnf(const Formula& f) {
  if (!f.valid()) throw std::invalid_argument("to_nnf: empty formula");
  return nnf(f.node(), false);
}

bool is_existential(const Formula& f) {
  return only_existential(to_nnf(f).node());
}

std::vector<std::string> free_variables(const Formula& f) {
  if (!f.valid()) throw std::invalid_argument("free_variables: empty formula");
  std::vector<std::string> out;
  std::set<std::string> seen;
  collect_free(f.node(), {}, out, seen);
  return out;
}

bool is_sentence(const Formula& f) { return free_variables(f).empty(); }

namespace {

// Renames every occurrence (bound and free) of variable `from` to `to`.
Formula rename(const FormulaNode& n, const std::string& from, const std::string& to) {
  auto fix = [&](const std::string& v) { return v == from ? to : v; };
  switch (n.kind) {
    case FormulaKind::kEqual:
      return eq(fix(n.var_a), fix(n.var_b));
    case FormulaKind::kAdjacent:
      return adj(fix(n.var_a), fix(n.var_b));
    case FormulaKind::kMember:
      return mem(fix(n.var_a), fix(n.var_b));
    case FormulaKind::kNot:
      return !rename(*n.child_a, from, to);
    case FormulaKind::kAnd:
      return rename(*n.child_a, from, to) && rename(*n.child_b, from, to);
    case FormulaKind::kOr:
      return rename(*n.child_a, from, to) || rename(*n.child_b, from, to);
    case FormulaKind::kForallVertex:
    case FormulaKind::kForallSet:
      return forall(fix(n.var_a), rename(*n.child_a, from, to));
    case FormulaKind::kExistsVertex:
    case FormulaKind::kExistsSet:
      return exists(fix(n.var_a), rename(*n.child_a, from, to));
  }
  throw std::logic_error("rename: unreachable");
}

}  // namespace

PrenexExistential prenex_existential(const Formula& f) {
  if (!is_sentence(f)) throw std::invalid_argument("prenex_existential: not a sentence");
  if (uses_set_quantifiers(f))
    throw std::invalid_argument("prenex_existential: MSO sentence, expected FO");
  Formula g = to_nnf(f);
  if (!only_existential(g.node()))
    throw std::invalid_argument("prenex_existential: sentence is not existential");

  // Recursive hoisting with renaming apart.
  std::size_t counter = 0;
  std::vector<std::string> vars;
  struct Hoister {
    std::size_t& counter;
    std::vector<std::string>& vars;
    Formula run(const FormulaNode& n) {
      switch (n.kind) {
        case FormulaKind::kEqual:
          return eq(n.var_a, n.var_b);
        case FormulaKind::kAdjacent:
          return adj(n.var_a, n.var_b);
        case FormulaKind::kMember:
          return mem(n.var_a, n.var_b);
        case FormulaKind::kNot:
          return !run(*n.child_a);
        case FormulaKind::kAnd:
          return run(*n.child_a) && run(*n.child_b);
        case FormulaKind::kOr:
          return run(*n.child_a) || run(*n.child_b);
        case FormulaKind::kExistsVertex: {
          const std::string fresh = "pw" + std::to_string(counter++);
          vars.push_back(fresh);
          Formula renamed = rename(n, n.var_a, fresh);
          // renamed is exists fresh. body'; recurse into its body.
          return run(*renamed.ptr()->child_a);
        }
        default:
          throw std::logic_error("prenex_existential: unexpected node");
      }
    }
  };
  Formula matrix = Hoister{counter, vars}.run(g.node());
  return {std::move(vars), std::move(matrix)};
}

}  // namespace lcert
