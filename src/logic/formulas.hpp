// Library of named FO/MSO sentences used across examples, tests and benches.
//
// Each sentence comes with the exact fragment the paper cares about:
// quantifier depth (Lemma 2.1, Theorem 2.6's parameter k), whether it is
// existential, and whether it is properly MSO. Ground-truth combinatorial
// checkers for the same properties live next to the formulas so automata and
// schemes can be validated three ways (formula eval, automaton run, direct
// algorithm).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/logic/ast.hpp"

namespace lcert {

/// "Diameter at most 2": forall x forall y (x=y | x-y | exists z (x-z & z-y)).
/// Section 2.2's example of a simple FO sentence with no compact certification.
Formula f_diameter_le_2();

/// "Triangle-free": forall x,y,z ~(x-y & y-z & x-z). Section 2.2's second example.
Formula f_triangle_free();

/// "The graph is a clique": forall x forall y (x=y | x-y). (Lemma A.3's list.)
Formula f_clique();

/// "There is a dominating vertex": exists x forall y (x=y | x-y). (Lemma A.3.)
Formula f_has_dominating_vertex();

/// "At most one vertex": forall x forall y (x=y). (Lemma A.3.)
Formula f_at_most_one_vertex();

/// "At least k vertices" — existential FO with k quantifiers (Lemma A.2).
Formula f_at_least_k_vertices(std::size_t k);

/// "Contains an independent set of size k" — existential FO (Lemma A.2).
Formula f_independent_set_of_size(std::size_t k);

/// "Contains a path on t vertices as a subgraph" — existential FO; on
/// connected graphs this is exactly "has a P_t minor" (Corollary 2.7).
Formula f_has_path_subgraph(std::size_t t);

/// "Max degree <= d": forall x ~ exists y_0..y_d (distinct neighbors).
Formula f_max_degree_le(std::size_t d);

/// "Properly 2-colorable" — MSO with one set quantifier.
Formula f_two_colorable();

/// "Properly 3-colorable" — MSO with two set quantifiers (classes X, Y\X, rest).
Formula f_three_colorable();

/// "Has an independent dominating set" — MSO.
Formula f_independent_dominating_set();

/// "Every vertex is a leaf or adjacent to a leaf" (interesting on trees) — FO
/// where "leaf" = degree exactly 1.
Formula f_leaf_dominated();

/// Named bundle: formula + metadata + a trusted direct checker, used to sweep
/// tables in tests and benches.
struct NamedProperty {
  std::string name;
  Formula formula;
  bool (*direct_check)(const Graph&);  ///< independent combinatorial oracle
};

/// Properties with small quantifier depth for which we have independent
/// checkers; every entry is safe to evaluate on graphs with <= 24 vertices.
std::vector<NamedProperty> standard_properties();

}  // namespace lcert
