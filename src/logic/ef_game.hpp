// Ehrenfeucht–Fraïssé games (Theorem 3.3).
//
// Duplicator has a winning strategy in the k-round EF game on (G, H) iff
// G and H satisfy the same FO sentences of quantifier depth <= k (G ≃_k H).
// The kernelization (Proposition 6.3) promises G ≃_k kernel(G); this solver
// is the independent auditor of that promise in the tests. Adversarial game
// search, exponential in k — use on small structures.
#pragma once

#include <cstddef>

#include "src/graph/graph.hpp"

namespace lcert {

/// True iff Duplicator wins the `rounds`-round EF game on (g, h),
/// i.e. g ≃_rounds h.
bool ef_equivalent(const Graph& g, const Graph& h, std::size_t rounds);

/// When g and h are NOT ≃_k-equivalent, Spoiler wins; this returns a
/// distinguishing quantifier depth: the smallest r <= max_rounds with
/// !ef_equivalent(g, h, r), or 0 if none up to max_rounds.
std::size_t distinguishing_depth(const Graph& g, const Graph& h, std::size_t max_rounds);

}  // namespace lcert
