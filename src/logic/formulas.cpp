#include "src/logic/formulas.hpp"

#include <algorithm>
#include <functional>

namespace lcert {

Formula f_diameter_le_2() {
  return forall("x", forall("y", eq("x", "y") || adj("x", "y") ||
                                     exists("z", adj("x", "z") && adj("z", "y"))));
}

Formula f_triangle_free() {
  return forall(
      "x", forall("y", forall("z", !(adj("x", "y") && adj("y", "z") && adj("x", "z")))));
}

Formula f_clique() {
  return forall("x", forall("y", eq("x", "y") || adj("x", "y")));
}

Formula f_has_dominating_vertex() {
  return exists("x", forall("y", eq("x", "y") || adj("x", "y")));
}

Formula f_at_most_one_vertex() { return forall("x", forall("y", eq("x", "y"))); }

namespace {

std::string var(const char* prefix, std::size_t i) { return prefix + std::to_string(i); }

// Pairwise distinctness of v_0..v_{k-1}.
Formula all_distinct(const char* prefix, std::size_t k) {
  std::vector<Formula> parts;
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i + 1; j < k; ++j) parts.push_back(!eq(var(prefix, i), var(prefix, j)));
  return conjunction(parts);
}

Formula exists_many(const char* prefix, std::size_t k, const Formula& body) {
  Formula out = body;
  for (std::size_t i = k; i-- > 0;) out = exists(var(prefix, i), out);
  return out;
}

}  // namespace

Formula f_at_least_k_vertices(std::size_t k) {
  if (k <= 1) return exists("v0", eq("v0", "v0"));
  return exists_many("v", k, all_distinct("v", k));
}

Formula f_independent_set_of_size(std::size_t k) {
  std::vector<Formula> parts{all_distinct("v", k)};
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i + 1; j < k; ++j) parts.push_back(!adj(var("v", i), var("v", j)));
  return exists_many("v", k, conjunction(parts));
}

Formula f_has_path_subgraph(std::size_t t) {
  if (t == 0) return f_at_least_k_vertices(1);
  std::vector<Formula> parts{all_distinct("v", t)};
  for (std::size_t i = 0; i + 1 < t; ++i) parts.push_back(adj(var("v", i), var("v", i + 1)));
  return exists_many("v", t, conjunction(parts));
}

Formula f_max_degree_le(std::size_t d) {
  // No vertex has d+1 distinct neighbors.
  std::vector<Formula> parts{all_distinct("y", d + 1)};
  for (std::size_t i = 0; i <= d; ++i) parts.push_back(adj("x", var("y", i)));
  Formula witness = conjunction(parts);
  Formula bad = witness;
  for (std::size_t i = d + 1; i-- > 0;) bad = exists(var("y", i), bad);
  return forall("x", !bad);
}

Formula f_two_colorable() {
  return exists(
      "X", forall("x", forall("y", implies(adj("x", "y"),
                                           !iff(mem("x", "X"), mem("y", "X"))))));
}

Formula f_three_colorable() {
  // Classes: X∩Y treated as invalid is unnecessary; color(v) =
  // (v in X, v in Y) with (1,1) collapsed into (1,0) — adjacent vertices must
  // differ in at least one of the two bits once (1,1) is forbidden.
  Formula no_both = forall("z", !(mem("z", "X") && mem("z", "Y")));
  Formula proper = forall(
      "x", forall("y", implies(adj("x", "y"), !(iff(mem("x", "X"), mem("y", "X")) &&
                                                iff(mem("x", "Y"), mem("y", "Y"))))));
  return exists("X", exists("Y", no_both && proper));
}

Formula f_independent_dominating_set() {
  Formula independent =
      forall("x", forall("y", implies(mem("x", "X") && mem("y", "X"), !adj("x", "y"))));
  Formula dominating = forall(
      "x", mem("x", "X") || exists("y", mem("y", "X") && adj("x", "y")));
  return exists("X", independent && dominating);
}

Formula f_leaf_dominated() {
  // leaf(v): v has exactly one neighbor = exists u adj & forall w (adj -> w=u).
  auto leaf = [](const std::string& v, const std::string& u, const std::string& w) {
    return exists(u, adj(v, u) && forall(w, implies(adj(v, w), eq(w, u))));
  };
  return forall("x", leaf("x", "u1", "w1") ||
                         exists("y", adj("x", "y") && leaf("y", "u2", "w2")));
}

namespace {

bool check_diameter_le_2(const Graph& g) {
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const auto dist = g.bfs_distances(v);
    for (std::size_t d : dist)
      if (d == SIZE_MAX || d > 2) return false;
  }
  return true;
}

bool check_triangle_free(const Graph& g) {
  for (auto [u, v] : g.edges())
    for (Vertex w : g.neighbors(u))
      if (w != v && g.has_edge(w, v)) return false;
  return true;
}

bool check_clique(const Graph& g) {
  const std::size_t n = g.vertex_count();
  return g.edge_count() == n * (n - 1) / 2;
}

bool check_dominating_vertex(const Graph& g) {
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (g.degree(v) == g.vertex_count() - 1) return true;
  return false;
}

bool check_two_colorable(const Graph& g) {
  std::vector<int> color(g.vertex_count(), -1);
  for (Vertex s = 0; s < g.vertex_count(); ++s) {
    if (color[s] != -1) continue;
    color[s] = 0;
    std::vector<Vertex> stack{s};
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (Vertex w : g.neighbors(v)) {
        if (color[w] == -1) {
          color[w] = 1 - color[v];
          stack.push_back(w);
        } else if (color[w] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

bool check_three_colorable(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<int> color(n, -1);
  std::function<bool(std::size_t)> go = [&](std::size_t v) -> bool {
    if (v == n) return true;
    for (int c = 0; c < 3; ++c) {
      bool ok = true;
      for (Vertex w : g.neighbors(v))
        if (w < v && color[w] == c) {
          ok = false;
          break;
        }
      if (!ok) continue;
      color[v] = c;
      if (go(v + 1)) return true;
      color[v] = -1;
    }
    return false;
  };
  return go(0);
}

bool check_independent_dominating_set(const Graph& g) {
  // A maximal independent set is always independent dominating; connected
  // non-empty graphs always have one.
  return g.vertex_count() > 0;
}

bool check_max_degree_le_3(const Graph& g) {
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (g.degree(v) > 3) return false;
  return true;
}

bool check_leaf_dominated(const Graph& g) {
  auto is_leaf = [&g](Vertex v) { return g.degree(v) == 1; };
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    if (is_leaf(v)) continue;
    bool ok = false;
    for (Vertex w : g.neighbors(v))
      if (is_leaf(w)) {
        ok = true;
        break;
      }
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::vector<NamedProperty> standard_properties() {
  return {
      {"diameter<=2", f_diameter_le_2(), &check_diameter_le_2},
      {"triangle-free", f_triangle_free(), &check_triangle_free},
      {"clique", f_clique(), &check_clique},
      {"dominating-vertex", f_has_dominating_vertex(), &check_dominating_vertex},
      {"2-colorable", f_two_colorable(), &check_two_colorable},
      {"3-colorable", f_three_colorable(), &check_three_colorable},
      {"independent-dominating-set", f_independent_dominating_set(),
       &check_independent_dominating_set},
      {"max-degree<=3", f_max_degree_le(3), &check_max_degree_le_3},
      {"leaf-dominated", f_leaf_dominated(), &check_leaf_dominated},
  };
}

}  // namespace lcert
