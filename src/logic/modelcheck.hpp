// Courcelle/Gajarský–Hliněný-style model checking on bounded-treedepth
// graphs, the centralized payoff of Section 6's kernelization: evaluating an
// FO sentence of quantifier depth k on G costs O(n^k) by brute force, but
// only O(n + |kernel|^k) through the k-reduction, because G ≃_k kernel(G)
// (Proposition 6.3) and the kernel's size depends on (k, t) alone
// (Proposition 6.2). This is the decision procedure the certification scheme
// of Theorem 2.6 runs at the root — exposed here as a standalone API.
#pragma once

#include <cstddef>
#include <optional>

#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/logic/ast.hpp"

namespace lcert {

struct ModelCheckStats {
  std::size_t kernel_size = 0;
  std::size_t reduction_threshold = 0;
  std::size_t model_depth = 0;
};

/// Evaluates the FO sentence `phi` on `g` via kernelization.
/// `model`: a valid elimination tree of g (made coherent internally); pass
/// nullopt to let the library find one (exact for n <= 20, heuristic beyond).
/// `threshold_override`: reduction threshold; defaults to quantifier_depth(phi),
/// which is provably sufficient for FO. For properly-MSO sentences pass an
/// explicit larger threshold (see DESIGN.md §7).
/// Throws std::invalid_argument if phi is not a sentence or no model is found.
bool modelcheck_bounded_treedepth(const Graph& g, const Formula& phi,
                                  std::optional<RootedTree> model = std::nullopt,
                                  std::size_t threshold_override = 0,
                                  ModelCheckStats* stats = nullptr);

}  // namespace lcert
