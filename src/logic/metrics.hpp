// Syntactic measures of formulas used by the meta-theorems.
//
// Lemma 2.1 is stated in terms of quantifier depth and the existential
// fragment; Theorem 2.6's kernel parameter is the quantifier depth of the
// sentence. These measures are computed on the AST; the existential test
// works on the negation normal form so that ~exists is correctly counted as
// a universal.
#pragma once

#include <string>
#include <vector>

#include "src/logic/ast.hpp"

namespace lcert {

/// Maximum number of nested quantifiers (vertex and set alike).
std::size_t quantifier_depth(const Formula& f);

/// Number of alternations between existential and universal blocks along any
/// root-to-atom path of the NNF (0 for quantifier-free or single-block).
std::size_t quantifier_alternations(const Formula& f);

/// True iff the formula uses a set quantifier or a membership atom (i.e. is
/// properly MSO rather than FO).
bool uses_set_quantifiers(const Formula& f);

/// Negation normal form: negations pushed onto atoms, quantifiers dualized.
Formula to_nnf(const Formula& f);

/// True iff the NNF contains only existential quantifiers (Lemma A.2's class).
bool is_existential(const Formula& f);

/// True iff the formula is a *sentence* (no free variables).
bool is_sentence(const Formula& f);

/// Free variables (vertex and set), in first-occurrence order.
std::vector<std::string> free_variables(const Formula& f);

/// Prenex form of an existential FO sentence: returns the quantified vertex
/// variables (renamed apart if needed) and the quantifier-free matrix.
/// Throws if the sentence is not existential FO.
struct PrenexExistential {
  std::vector<std::string> variables;
  Formula matrix;
};
PrenexExistential prenex_existential(const Formula& f);

}  // namespace lcert
