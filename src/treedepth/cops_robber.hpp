// Cops-and-robber characterization of treedepth ([33], used by Lemma 7.3).
//
// Immobile cops are placed one at a time; before each placement the position
// is announced and the robber may move anywhere reachable without crossing an
// already-placed cop. The minimum number of cops that guarantees capture is
// exactly the treedepth. This module provides (a) the optimal game value by
// adversarial search — an independent re-derivation of treedepth used to
// cross-check the subset-DP solver — and (b) a simulator that plays the cop
// strategy induced by an elimination tree against an optimal robber, the
// argument used in the proof of Lemma 7.3.
#pragma once

#include <cstddef>

#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"

namespace lcert {

/// Optimal number of cops to catch the robber (== treedepth). n <= 25.
std::size_t cops_and_robber_number(const Graph& g);

/// Number of cops consumed when cops follow the elimination-tree strategy
/// (always shoot the root of the robber's current subtree) and the robber
/// plays optimally against it. Always >= treedepth and <= model_depth(t).
std::size_t simulate_tree_strategy(const Graph& g, const RootedTree& t);

}  // namespace lcert
