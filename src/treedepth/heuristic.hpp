// Heuristic elimination trees for graphs too large for the exact solver.
//
// The certification schemes need *some* valid coherent model on yes-instances
// at benchmark scale; optimality is not required (Theorem 2.4's certificate
// size is O(depth_of_model * log n), so a good heuristic keeps sizes honest).
// Strategy: recursively split on a BFS-center-ish separator vertex; on trees
// this recovers the optimal O(log n)-depth midpoint decomposition.
#pragma once

#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"

namespace lcert {

/// A valid coherent elimination tree of g (connected). Depth is heuristic,
/// not optimal; on paths/trees it is within a constant of optimal.
RootedTree heuristic_elimination_tree(const Graph& g);

}  // namespace lcert
