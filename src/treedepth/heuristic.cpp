#include "src/treedepth/heuristic.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/treedepth/elimination.hpp"

namespace lcert {

namespace {

// Chooses a split vertex for the component `comp`: the vertex minimizing the
// eccentricity within the component (a BFS-based 2-approximation of the
// center), breaking ties by maximum degree inside the component.
Vertex choose_split(const Graph& g, const std::vector<Vertex>& comp,
                    const std::vector<bool>& alive) {
  if (comp.size() == 1) return comp[0];
  // Double-BFS from an arbitrary vertex to find a peripheral vertex, then the
  // midpoint of the longest shortest path approximates the center.
  auto bfs = [&](Vertex s) {
    std::vector<std::size_t> dist(g.vertex_count(), SIZE_MAX);
    std::vector<Vertex> order{s};
    dist[s] = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const Vertex v = order[i];
      for (Vertex w : g.neighbors(v))
        if (alive[w] && dist[w] == SIZE_MAX) {
          dist[w] = dist[v] + 1;
          order.push_back(w);
        }
    }
    return std::pair{dist, order};
  };
  auto [d0, order0] = bfs(comp[0]);
  const Vertex far = order0.back();
  auto [d1, order1] = bfs(far);
  // Walk back from the other endpoint to the midpoint of the path.
  const Vertex end = order1.back();
  const std::size_t target = d1[end] / 2;
  Vertex cur = end;
  while (d1[cur] > target) {
    for (Vertex w : g.neighbors(cur))
      if (alive[w] && d1[w] + 1 == d1[cur]) {
        cur = w;
        break;
      }
  }
  return cur;
}

void decompose(const Graph& g, std::vector<bool>& alive, const std::vector<Vertex>& comp,
               std::size_t attach, std::vector<std::size_t>& parent) {
  const Vertex v = choose_split(g, comp, alive);
  parent[v] = attach;
  alive[v] = false;
  // Components of comp - v.
  std::vector<bool> seen(g.vertex_count(), false);
  for (Vertex s : comp) {
    if (!alive[s] || seen[s]) continue;
    std::vector<Vertex> sub{s};
    seen[s] = true;
    for (std::size_t i = 0; i < sub.size(); ++i)
      for (Vertex w : g.neighbors(sub[i]))
        if (alive[w] && !seen[w]) {
          seen[w] = true;
          sub.push_back(w);
        }
    decompose(g, alive, sub, v, parent);
  }
}

}  // namespace

RootedTree heuristic_elimination_tree(const Graph& g) {
  if (!g.is_connected())
    throw std::invalid_argument("heuristic_elimination_tree: graph must be connected");
  std::vector<std::size_t> parent(g.vertex_count(), RootedTree::kNoParent);
  std::vector<bool> alive(g.vertex_count(), true);
  std::vector<Vertex> all(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) all[v] = v;
  decompose(g, alive, all, RootedTree::kNoParent, parent);
  return make_coherent(g, RootedTree(std::move(parent)));
}

}  // namespace lcert
