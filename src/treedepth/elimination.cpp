#include "src/treedepth/elimination.hpp"

#include <stdexcept>

namespace lcert {

bool is_valid_model(const Graph& g, const RootedTree& t) {
  if (g.vertex_count() != t.size()) return false;
  for (auto [u, v] : g.edges())
    if (!t.is_ancestor(u, v) && !t.is_ancestor(v, u)) return false;
  return true;
}

bool is_coherent_model(const Graph& g, const RootedTree& t) {
  if (!is_valid_model(g, t)) return false;
  for (std::size_t v = 0; v < t.size(); ++v) {
    for (std::size_t w : t.children(v)) {
      bool found = false;
      for (std::size_t x : t.subtree(w)) {
        if (g.has_edge(x, v)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

RootedTree make_coherent(const Graph& g, const RootedTree& t) {
  if (!is_valid_model(g, t))
    throw std::invalid_argument("make_coherent: not a valid model");
  std::vector<std::size_t> parent(t.size());
  for (std::size_t v = 0; v < t.size(); ++v) parent[v] = t.parent(v);

  // Re-attachment loop (Lemma B.1). Each re-attachment strictly decreases the
  // sum of depths, so this terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    RootedTree cur(parent);
    for (std::size_t v = 0; v < cur.size() && !changed; ++v) {
      for (std::size_t w : cur.children(v)) {
        const auto sub = cur.subtree(w);
        bool adjacent_to_v = false;
        for (std::size_t x : sub)
          if (g.has_edge(x, v)) {
            adjacent_to_v = true;
            break;
          }
        if (adjacent_to_v) continue;
        // Find the lowest proper ancestor of v adjacent to G_w; must exist
        // since g is connected and all edges respect ancestry.
        std::size_t attach = RootedTree::kNoParent;
        for (std::size_t a = cur.parent(v); a != RootedTree::kNoParent; a = cur.parent(a)) {
          for (std::size_t x : sub)
            if (g.has_edge(x, a)) {
              attach = a;
              break;
            }
          if (attach != RootedTree::kNoParent) break;
        }
        if (attach == RootedTree::kNoParent)
          throw std::logic_error("make_coherent: disconnected subtree (graph not connected?)");
        parent[w] = attach;
        changed = true;
        break;
      }
    }
  }
  RootedTree out(parent);
  if (!is_coherent_model(g, out)) throw std::logic_error("make_coherent: postcondition failed");
  return out;
}

Vertex exit_vertex(const Graph& g, const RootedTree& t, Vertex v) {
  const std::size_t p = t.parent(v);
  if (p == RootedTree::kNoParent) throw std::invalid_argument("exit_vertex: root has none");
  for (std::size_t x : t.subtree(v))
    if (g.has_edge(x, p)) return x;
  throw std::invalid_argument("exit_vertex: model is not coherent at this vertex");
}

}  // namespace lcert
