// Elimination trees (models) of a graph, Definition 3.1 and Remark 1.
//
// Convention: the paper alternates between counting levels and edges; we use
// the standard convention throughout the library — the *depth of a model* is
// the maximum number of vertices on a root-to-leaf path, and treedepth(G) is
// the minimum model depth. Under this convention td(P_7) = 3, td(C_8) = 4 and
// the Theorem 2.5 gadget has treedepth 5, matching Lemma 7.3 exactly.
#pragma once

#include <cstddef>

#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"

namespace lcert {

/// Depth of a model = number of levels = height in edges + 1.
inline std::size_t model_depth(const RootedTree& t) { return t.height() + 1; }

/// True iff `t` is a model of `g`: same vertex set and every edge of g joins
/// an ancestor-descendant pair of t.
bool is_valid_model(const Graph& g, const RootedTree& t);

/// True iff the model is coherent: every child subtree G_w contains a vertex
/// adjacent (in g) to the parent v (Section 3.1).
bool is_coherent_model(const Graph& g, const RootedTree& t);

/// Lemma B.1: rewires a valid model into a coherent one of no greater depth
/// by repeatedly re-attaching offending subtrees to the lowest ancestor they
/// connect to. Requires g connected and t a valid model.
RootedTree make_coherent(const Graph& g, const RootedTree& t);

/// Exit vertex of v (Section 5): a vertex of G_v adjacent to v's parent.
/// Requires a coherent model; throws for the root.
Vertex exit_vertex(const Graph& g, const RootedTree& t, Vertex v);

}  // namespace lcert
