#include "src/treedepth/cops_robber.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "src/treedepth/elimination.hpp"

namespace lcert {

namespace {

using Mask = std::uint32_t;

Mask component_of(const Graph& g, Mask free_mask, Vertex seed) {
  Mask comp = Mask{1} << seed;
  Mask frontier = comp;
  while (frontier != 0) {
    const Vertex v = static_cast<Vertex>(__builtin_ctz(frontier));
    frontier &= frontier - 1;
    for (Vertex w : g.neighbors(v)) {
      const Mask bit = Mask{1} << w;
      if ((free_mask & bit) && !(comp & bit)) {
        comp |= bit;
        frontier |= bit;
      }
    }
  }
  return comp;
}

// Game value with the robber confined to the connected free region `region`:
// cops announce a vertex v; if v is in the region, the robber relocates to
// any component of region - v; cops pay 1 per placement. Placing outside the
// robber's region is pointless, so the search restricts to v in region.
struct GameSolver {
  const Graph& g;
  std::unordered_map<Mask, std::uint8_t> memo;

  std::size_t value(Mask region) {
    if (auto it = memo.find(region); it != memo.end()) return it->second;
    if (__builtin_popcount(region) == 1) {
      memo[region] = 1;
      return 1;
    }
    std::size_t best = static_cast<std::size_t>(__builtin_popcount(region));
    for (Mask rest = region; rest != 0; rest &= rest - 1) {
      const Vertex v = static_cast<Vertex>(__builtin_ctz(rest));
      const Mask after = region & ~(Mask{1} << v);
      // Robber picks the worst component reachable from its current position;
      // since it may relocate anywhere in `region` before the cop lands, it
      // can reach every component of `after`.
      std::size_t robber_best = 0;
      Mask todo = after;
      while (todo != 0) {
        const Vertex seed = static_cast<Vertex>(__builtin_ctz(todo));
        const Mask comp = component_of(g, after, seed);
        todo &= ~comp;
        robber_best = std::max(robber_best, value(comp));
      }
      best = std::min(best, 1 + robber_best);
      if (best == 1) break;
    }
    memo[region] = static_cast<std::uint8_t>(best);
    return best;
  }
};

}  // namespace

std::size_t cops_and_robber_number(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n == 0 || n > 25) throw std::invalid_argument("cops_and_robber_number: n out of range");
  if (!g.is_connected())
    throw std::invalid_argument("cops_and_robber_number: graph must be connected");
  GameSolver solver{g, {}};
  return solver.value((Mask{1} << n) - 1);
}

std::size_t simulate_tree_strategy(const Graph& g, const RootedTree& t) {
  if (!is_valid_model(g, t))
    throw std::invalid_argument("simulate_tree_strategy: tree is not a model of g");
  const std::size_t n = g.vertex_count();
  if (n > 25) throw std::invalid_argument("simulate_tree_strategy: n out of range");

  // The cop strategy: the robber's region is always the vertex set of some
  // subtree minus already-shot ancestors; shoot the highest not-yet-shot
  // vertex of the subtree containing the robber. Because every edge respects
  // ancestry, the robber's component is contained in one child subtree after
  // each shot. The adversarial robber picks the component maximizing the
  // number of future shots, computed by recursion over subtrees.
  //
  // cost(v) = 1 + max over components of (subtree(v) - v) of cost(component
  // root's subtree) — but a component of subtree(v) - v in g may span several
  // children subtrees only if an edge joined them, impossible (edges respect
  // ancestry and children subtrees are incomparable). So components after
  // shooting v are unions of whole child subtrees? No: each component lies
  // inside exactly one child subtree (edges inside subtree(v)-v stay within a
  // child's subtree). The robber therefore picks the child subtree with the
  // deepest strategy cost.
  struct Rec {
    const RootedTree& t;
    std::size_t run(std::size_t v) const {
      std::size_t worst = 0;
      for (std::size_t c : t.children(v)) worst = std::max(worst, run(c));
      return 1 + worst;
    }
  };
  return Rec{t}.run(t.root());
}

}  // namespace lcert
