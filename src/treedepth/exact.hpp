// Exact treedepth via subset dynamic programming.
//
// Ground truth for testing the certification schemes and the lower-bound
// gadget (Lemma 7.3). td over connected S satisfies
//   td(S) = 1 + min_{v in S} max_{components C of S - v} td(C)
// memoized over vertex bitmasks; practical up to ~20 vertices, which is all
// the correctness tests need. Closed forms for paths/cycles/cliques give an
// independent cross-check at larger sizes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/graph/graph.hpp"
#include "src/graph/rooted_tree.hpp"

namespace lcert {

/// Exact treedepth (levels convention: td(K_1) = 1). Requires n <= 25.
std::size_t exact_treedepth(const Graph& g);

/// Exact treedepth together with an optimal (coherent) elimination tree.
struct TreedepthResult {
  std::size_t treedepth;
  RootedTree model;
};
TreedepthResult exact_treedepth_with_model(const Graph& g);

/// Closed forms: td(P_n) = ceil(log2(n+1)); td(C_n) = 1 + td(P_{n-1});
/// td(K_n) = n.
std::size_t treedepth_of_path(std::size_t n) noexcept;
std::size_t treedepth_of_cycle(std::size_t n) noexcept;

/// An optimal elimination tree of a path on n vertices (balanced binary
/// "midpoint" recursion, the Figure 1 construction).
RootedTree path_model(std::size_t n);

}  // namespace lcert
