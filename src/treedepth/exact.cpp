#include "src/treedepth/exact.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "src/treedepth/elimination.hpp"
#include "src/util/bitio.hpp"

namespace lcert {

namespace {

using Mask = std::uint32_t;

struct Solver {
  const Graph& g;
  std::unordered_map<Mask, std::uint8_t> memo;
  std::unordered_map<Mask, Vertex> best_root;  // optimal root per connected mask

  explicit Solver(const Graph& graph) : g(graph) {}

  // Connected components of the sub graph induced by mask.
  std::vector<Mask> components(Mask mask) const {
    std::vector<Mask> out;
    Mask todo = mask;
    while (todo != 0) {
      const Vertex seed = static_cast<Vertex>(__builtin_ctz(todo));
      Mask comp = Mask{1} << seed;
      Mask frontier = comp;
      while (frontier != 0) {
        const Vertex v = static_cast<Vertex>(__builtin_ctz(frontier));
        frontier &= frontier - 1;
        for (Vertex w : g.neighbors(v)) {
          const Mask bit = Mask{1} << w;
          if ((mask & bit) && !(comp & bit)) {
            comp |= bit;
            frontier |= bit;
          }
        }
      }
      out.push_back(comp);
      todo &= ~comp;
    }
    return out;
  }

  // Treedepth of the connected induced subgraph `mask`.
  std::size_t solve(Mask mask) {
    if (auto it = memo.find(mask); it != memo.end()) return it->second;
    const int popcount = __builtin_popcount(mask);
    if (popcount == 1) {
      memo[mask] = 1;
      best_root[mask] = static_cast<Vertex>(__builtin_ctz(mask));
      return 1;
    }
    std::size_t best = static_cast<std::size_t>(popcount);  // td <= |S|
    Vertex root = static_cast<Vertex>(__builtin_ctz(mask));
    for (Mask rest = mask; rest != 0; rest &= rest - 1) {
      const Vertex v = static_cast<Vertex>(__builtin_ctz(rest));
      std::size_t worst = 0;
      for (Mask comp : components(mask & ~(Mask{1} << v)))
        worst = std::max(worst, solve(comp));
      if (1 + worst < best) {
        best = 1 + worst;
        root = v;
      }
    }
    memo[mask] = static_cast<std::uint8_t>(best);
    best_root[mask] = root;
    return best;
  }

  // Reconstructs an optimal elimination tree for connected `mask`, writing
  // parents into `parent` with the subtree hanging below `attach`.
  void build_model(Mask mask, std::size_t attach, std::vector<std::size_t>& parent) {
    solve(mask);
    const Vertex v = best_root.at(mask);
    parent.at(v) = attach;
    for (Mask comp : components(mask & ~(Mask{1} << v))) build_model(comp, v, parent);
  }
};

}  // namespace

std::size_t exact_treedepth(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n == 0) throw std::invalid_argument("exact_treedepth: empty graph");
  if (n > 25) throw std::invalid_argument("exact_treedepth: n > 25 (use the heuristic)");
  if (!g.is_connected()) throw std::invalid_argument("exact_treedepth: graph must be connected");
  Solver solver(g);
  const Mask all = (n == 32) ? ~Mask{0} : ((Mask{1} << n) - 1);
  return solver.solve(all);
}

TreedepthResult exact_treedepth_with_model(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n == 0 || n > 25)
    throw std::invalid_argument("exact_treedepth_with_model: n out of range");
  if (!g.is_connected())
    throw std::invalid_argument("exact_treedepth_with_model: graph must be connected");
  Solver solver(g);
  const Mask all = (Mask{1} << n) - 1;
  const std::size_t td = solver.solve(all);
  std::vector<std::size_t> parent(n, RootedTree::kNoParent);
  solver.build_model(all, RootedTree::kNoParent, parent);
  RootedTree model(parent);
  return {td, make_coherent(g, model)};
}

std::size_t treedepth_of_path(std::size_t n) noexcept {
  // ceil(log2(n+1))
  return bits_for(n);
}

std::size_t treedepth_of_cycle(std::size_t n) noexcept {
  return 1 + treedepth_of_path(n - 1);
}

namespace {

void build_path_model(std::size_t lo, std::size_t hi, std::size_t attach,
                      std::vector<std::size_t>& parent) {
  if (lo > hi) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  parent[mid] = attach;
  if (mid > lo) build_path_model(lo, mid - 1, mid, parent);
  build_path_model(mid + 1, hi, mid, parent);
}

}  // namespace

RootedTree path_model(std::size_t n) {
  if (n == 0) throw std::invalid_argument("path_model: n == 0");
  std::vector<std::size_t> parent(n, RootedTree::kNoParent);
  build_path_model(0, n - 1, RootedTree::kNoParent, parent);
  return RootedTree(std::move(parent));
}

}  // namespace lcert
