// Per-state first-match index over a DNF of interval boxes (DESIGN.md §16).
//
// The verifier's transition check and the prover's feasibility sweep both ask
// the same shape of question against a state's box list: "which is the FIRST
// box (in DNF order) that ...?". Before this index the answer was a linear
// sweep — ~29k boxes for the leaves>=4 automaton's worst state, ~140µs per
// vertex. BoxIndex answers it through per-coordinate bitset filters while
// preserving the exact first-match order of the linear sweep, so certificates
// and accepting runs stay bit-identical (the determinism contract; pinned by
// the box-index-divergence fuzz oracle and the first-match identity tests).
//
// Layout (built once per (state, label) at scheme construction):
//   - struct-of-arrays lo/hi for the final exact containment test;
//   - containment filter: for the most selective discriminating coordinates,
//     a sorted endpoint sweep — breakpoints partition the value axis into
//     segments, each segment carrying a bitset of the boxes whose interval
//     covers it; a point query ANDs one bitset per indexed coordinate;
//   - feasibility filter: cumulative "lo ladders" — per indexed coordinate,
//     sorted distinct lower bounds with bitsets of the boxes whose lo is <=
//     each value (plus one ladder over per-box lo sums), queried with the
//     children's per-state supply;
//   - coordinates uniform across all boxes collapse to one scalar check.
//
// Both filters only drop boxes a full test would reject (containment filters
// are per-coordinate necessary conditions; feasibility filters are the
// necessary conditions lo[q] <= supply[q] and sum(lo) <= child_count), so
// iterating surviving candidates in index order visits the first matching /
// first feasible box exactly as the linear sweep would. A memory budget caps
// the bitset tables; whatever does not fit falls back to "all boxes pass",
// which degrades speed, never answers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/automata/presburger.hpp"

namespace lcert {

class BoxIndex {
 public:
  static constexpr std::size_t npos = SIZE_MAX;

  BoxIndex() = default;
  /// Takes the DNF list (usually canonicalize_boxes output) verbatim — the
  /// stored order IS the first-match order. All boxes must share one arity.
  explicit BoxIndex(std::vector<IntervalBox> boxes);

  std::size_t size() const noexcept { return boxes_.size(); }
  std::size_t arity() const noexcept { return arity_; }
  const IntervalBox& box(std::size_t i) const { return boxes_[i]; }
  const std::vector<IntervalBox>& boxes() const noexcept { return boxes_; }

  struct Hit {
    std::size_t index = npos;  ///< first containing box in DNF order
    std::size_t probes = 0;    ///< candidates fully tested to find it
  };

  /// First box containing `counts` — same index as a linear sweep, fed by
  /// the containment filter. Throws on arity mismatch.
  Hit first_containing(const std::size_t* counts, std::size_t count_len) const;
  Hit first_containing(const std::vector<std::size_t>& counts) const {
    return first_containing(counts.data(), counts.size());
  }

  /// Reference linear sweep over the same box list (no filter). The
  /// divergence oracle, tests and the cliff benchmark compare against this.
  Hit first_containing_linear(const std::size_t* counts, std::size_t count_len) const;

  /// Streams candidate box indices in ascending (DNF) order; next() returns
  /// npos when exhausted. Default-constructed cursors are empty.
  class Cursor {
   public:
    std::size_t next() noexcept {
      while (true) {
        if (pending_ != 0) {
          const std::size_t i = base_ + lowest_bit(pending_);
          pending_ &= pending_ - 1;
          return i;
        }
        if (word_ >= word_count_) return npos;
        std::uint64_t acc = ~std::uint64_t{0};
        for (int s = 0; s < stream_count_; ++s) acc &= streams_[s][word_];
        pending_ = acc;
        base_ = word_ * 64;
        ++word_;
      }
    }

   private:
    friend class BoxIndex;
    static std::size_t lowest_bit(std::uint64_t w) noexcept;

    static constexpr int kMaxStreams = 12;
    const std::uint64_t* streams_[kMaxStreams] = {};
    int stream_count_ = 0;
    std::size_t word_count_ = 0;  ///< 0 == exhausted/empty cursor
    std::size_t word_ = 0;
    std::size_t base_ = 0;
    std::uint64_t pending_ = 0;
  };

  /// Candidates that may contain `counts` (superset of the containing
  /// boxes; exact on indexed/uniform coordinates).
  Cursor containment_candidates(const std::size_t* counts, std::size_t count_len) const;

  /// Candidates that may be feasible for children with the given per-state
  /// `supply` (supply[q] = #children whose mask allows state q) and
  /// `child_count` children. Skips only boxes violating the necessary
  /// conditions lo[q] <= supply[q] (indexed/uniform coordinates) or
  /// sum(lo) > child_count — so the first feasible candidate equals the
  /// first feasible box of a full sweep. `supply` must have arity() entries.
  Cursor feasibility_candidates(const std::size_t* supply, std::size_t child_count) const;

 private:
  struct SegmentIndex {
    std::size_t coord = 0;
    std::vector<std::size_t> breakpoints;  ///< ascending, breakpoints[0] == 0
    std::vector<std::uint64_t> bits;       ///< breakpoints.size() x word_count
    std::vector<std::uint8_t> full;        ///< per segment: every box covers it
  };
  struct LoLadder {
    std::size_t coord = npos;        ///< npos == per-box sum of lower bounds
    std::vector<std::size_t> values; ///< ascending distinct lo (or lo-sum) values
    std::vector<std::uint64_t> bits; ///< cumulative, values.size() x word_count
  };
  struct UniformInterval {
    std::size_t coord = 0;
    std::size_t lo = 0;
    std::size_t hi = IntervalBox::kUnbounded;
  };
  struct UniformLo {
    std::size_t coord = 0;
    std::size_t lo = 0;  ///< > 0 (a zero lower bound never filters)
  };

  bool contains_soa(std::size_t i, const std::size_t* counts) const noexcept {
    const std::size_t* lo = lo_.data() + i * arity_;
    const std::size_t* hi = hi_.data() + i * arity_;
    for (std::size_t q = 0; q < arity_; ++q)
      if (counts[q] < lo[q] ||
          (hi[q] != IntervalBox::kUnbounded && counts[q] > hi[q]))
        return false;
    return true;
  }

  void build();

  std::vector<IntervalBox> boxes_;
  std::size_t arity_ = 0;
  std::size_t word_count_ = 0;
  std::vector<std::size_t> lo_;  ///< SoA, size() x arity()
  std::vector<std::size_t> hi_;
  std::vector<SegmentIndex> segments_;
  std::vector<UniformInterval> uniform_;
  std::vector<LoLadder> ladders_;
  std::vector<UniformLo> uniform_lo_;
  bool has_uniform_lo_sum_ = false;
  std::size_t uniform_lo_sum_ = 0;
  std::vector<std::uint64_t> all_;  ///< size() bits set, last word masked
};

}  // namespace lcert
