#include "src/automata/uop_automaton.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "src/util/flow.hpp"

namespace lcert {

const UnaryConstraint& UOPAutomaton::transition(std::size_t state, std::size_t label) const {
  if (state >= state_count || label >= label_count)
    throw std::out_of_range("UOPAutomaton::transition: out of range");
  return delta.at(state * label_count + label);
}

void UOPAutomaton::validate() const {
  if (state_count == 0) throw std::invalid_argument("UOPAutomaton: no states");
  if (state_names.size() != state_count || accepting.size() != state_count ||
      delta.size() != state_count * label_count)
    throw std::invalid_argument("UOPAutomaton: inconsistent sizes");
}

std::size_t AutomatonBuilder::add_state(std::string name, bool accepting) {
  names_.push_back(std::move(name));
  accepting_.push_back(accepting);
  for (std::size_t l = 0; l < label_count_; ++l) delta_.emplace_back(std::nullopt);
  return names_.size() - 1;
}

void AutomatonBuilder::set_transition(std::size_t state, UnaryConstraint c, std::size_t label) {
  delta_.at(state * label_count_ + label) = std::move(c);
}

UOPAutomaton AutomatonBuilder::build() const {
  UOPAutomaton a;
  a.state_count = names_.size();
  a.label_count = label_count_;
  a.state_names = names_;
  a.accepting = accepting_;
  a.delta.reserve(delta_.size());
  for (const auto& d : delta_)
    a.delta.push_back(d.value_or(UnaryConstraint::always_false()));
  a.validate();
  return a;
}

namespace {

std::size_t label_of(const std::vector<std::size_t>* labels, std::size_t v) {
  return labels == nullptr ? 0 : labels->at(v);
}

}  // namespace

bool is_accepting_run(const UOPAutomaton& a, const RootedTree& t, const Run& run,
                      const std::vector<std::size_t>* labels) {
  a.validate();
  if (run.size() != t.size()) return false;
  for (std::size_t v = 0; v < t.size(); ++v) {
    if (run[v] >= a.state_count) return false;
    std::vector<std::size_t> counts(a.state_count, 0);
    for (std::size_t c : t.children(v)) ++counts[run[c]];
    if (!a.transition(run[v], label_of(labels, v)).eval(counts)) return false;
  }
  return a.accepting[run[t.root()]];
}

namespace {

// Can the children (with the given feasible sets) realize counts inside
// `box`? If yes, writes the chosen state of each child into `assignment`.
bool assign_children(const std::vector<std::size_t>& children,
                     const std::vector<std::vector<bool>>& feasible,
                     const IntervalBox& box, std::size_t state_count,
                     std::vector<std::size_t>& assignment) {
  const std::size_t m = children.size();
  // Quick necessary check: sum of lower bounds must not exceed m.
  std::size_t lo_sum = 0;
  for (std::size_t q = 0; q < state_count; ++q) {
    if (box.hi[q] != IntervalBox::kUnbounded && box.lo[q] > box.hi[q]) return false;
    lo_sum += box.lo[q];
  }
  if (lo_sum > m) return false;

  BoundedFlowProblem problem;
  const std::size_t source = problem.add_node();
  const std::size_t sink = problem.add_node();
  std::vector<std::size_t> child_nodes(m);
  for (std::size_t i = 0; i < m; ++i) {
    child_nodes[i] = problem.add_node();
    problem.add_edge(source, child_nodes[i], 1, 1);
  }
  std::vector<std::size_t> state_nodes(state_count, SIZE_MAX);
  std::vector<std::pair<std::size_t, std::pair<std::size_t, std::size_t>>> choice_edges;
  for (std::size_t q = 0; q < state_count; ++q) {
    state_nodes[q] = problem.add_node();
    const std::int64_t hi =
        box.hi[q] == IntervalBox::kUnbounded ? static_cast<std::int64_t>(m)
                                             : static_cast<std::int64_t>(std::min(box.hi[q], m));
    problem.add_edge(state_nodes[q], sink, static_cast<std::int64_t>(box.lo[q]), hi);
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t q = 0; q < state_count; ++q) {
      if (!feasible[children[i]][q]) continue;
      const std::size_t e = problem.add_edge(child_nodes[i], state_nodes[q], 0, 1);
      choice_edges.push_back({e, {i, q}});
    }
  }
  problem.source = source;
  problem.sink = sink;

  std::vector<std::int64_t> flow;
  if (!problem.feasible(flow)) return false;

  assignment.assign(m, SIZE_MAX);
  for (const auto& [e, iq] : choice_edges)
    if (flow[e] == 1) assignment[iq.first] = iq.second;
  for (std::size_t i = 0; i < m; ++i)
    if (assignment[i] == SIZE_MAX)
      throw std::logic_error("assign_children: flow left a child unassigned");
  return true;
}

}  // namespace

bool uop_assign_children_masked(std::span<const std::uint64_t> child_masks,
                                const IntervalBox& box, std::size_t state_count,
                                std::vector<std::size_t>& assignment) {
  // Mirrors assign_children above line for line — same quick check, same
  // node/edge insertion order — with feasible[child][q] replaced by a mask
  // bit test. The flow solver's choice depends on that order, and the
  // memoized prover relies on both paths choosing identically.
  const std::size_t m = child_masks.size();
  std::size_t lo_sum = 0;
  for (std::size_t q = 0; q < state_count; ++q) {
    if (box.hi[q] != IntervalBox::kUnbounded && box.lo[q] > box.hi[q]) return false;
    lo_sum += box.lo[q];
  }
  if (lo_sum > m) return false;

  BoundedFlowProblem problem;
  const std::size_t source = problem.add_node();
  const std::size_t sink = problem.add_node();
  std::vector<std::size_t> child_nodes(m);
  for (std::size_t i = 0; i < m; ++i) {
    child_nodes[i] = problem.add_node();
    problem.add_edge(source, child_nodes[i], 1, 1);
  }
  std::vector<std::size_t> state_nodes(state_count, SIZE_MAX);
  std::vector<std::pair<std::size_t, std::pair<std::size_t, std::size_t>>> choice_edges;
  for (std::size_t q = 0; q < state_count; ++q) {
    state_nodes[q] = problem.add_node();
    const std::int64_t hi =
        box.hi[q] == IntervalBox::kUnbounded ? static_cast<std::int64_t>(m)
                                             : static_cast<std::int64_t>(std::min(box.hi[q], m));
    problem.add_edge(state_nodes[q], sink, static_cast<std::int64_t>(box.lo[q]), hi);
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t q = 0; q < state_count; ++q) {
      if ((child_masks[i] >> q & 1u) == 0) continue;
      const std::size_t e = problem.add_edge(child_nodes[i], state_nodes[q], 0, 1);
      choice_edges.push_back({e, {i, q}});
    }
  }
  problem.source = source;
  problem.sink = sink;

  std::vector<std::int64_t> flow;
  if (!problem.feasible(flow)) return false;

  assignment.assign(m, SIZE_MAX);
  for (const auto& [e, iq] : choice_edges)
    if (flow[e] == 1) assignment[iq.first] = iq.second;
  for (std::size_t i = 0; i < m; ++i)
    if (assignment[i] == SIZE_MAX)
      throw std::logic_error("uop_assign_children_masked: flow left a child unassigned");
  return true;
}

void UopFeasibility::begin(std::span<const std::uint64_t> child_masks,
                           std::size_t state_count) {
  if (state_count > 64)
    throw std::invalid_argument("UopFeasibility::begin: state_count > 64");
  state_count_ = state_count;
  // The pristine path only ever tests bits q < state_count; truncating here
  // keeps every popcount / union below exact.
  const std::uint64_t keep =
      state_count == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << state_count) - 1);
  masks_.assign(child_masks.begin(), child_masks.end());
  for (std::uint64_t& mask : masks_) mask &= keep;
  net_built_ = false;
}

bool UopFeasibility::feasible(const IntervalBox& box) {
  if (tier_max_ >= kFeasTierGreedy) {
    switch (greedy_decide(box)) {
      case Verdict::kFeasible:
        ++counts_.greedy;
        return true;
      case Verdict::kInfeasible:
        ++counts_.greedy;
        return false;
      case Verdict::kInconclusive:
        break;
    }
    if (tier_max_ >= kFeasTierWarm) return flow_decide(box);
  }
  // Cold fallback: the pristine reference build, one BoundedFlowProblem per
  // query. This *is* the pre-tier path, so tier_max == 0 reproduces it.
  ++counts_.flow;
  return uop_assign_children_masked(masks_, box, state_count_, cold_assignment_);
}

UopFeasibility::Verdict UopFeasibility::greedy_decide(const IntervalBox& box) {
  const std::size_t m = masks_.size();
  const std::size_t k = state_count_;

  // Pristine pre-checks first, so their rejections resolve in this tier.
  std::size_t lo_sum = 0;
  for (std::size_t q = 0; q < k; ++q) {
    if (box.hi[q] != IntervalBox::kUnbounded && box.lo[q] > box.hi[q])
      return Verdict::kInfeasible;
    lo_sum += box.lo[q];
  }
  if (lo_sum > m) return Verdict::kInfeasible;
  if (m == 0) return Verdict::kFeasible;  // lo_sum == 0 and nothing to place

  // cap_[q]: the ceiling the flow network would use (m when unbounded). After
  // the pre-checks, cap_[q] >= lo[q] always: a finite hi >= lo caps at
  // min(hi, m) with lo <= lo_sum <= m.
  cap_.assign(k, 0);
  std::uint64_t usable = 0;   // states some child could take (cap > 0)
  std::uint64_t slack = 0;    // states whose cap never binds (cap == m)
  for (std::size_t q = 0; q < k; ++q) {
    cap_[q] = box.hi[q] == IntervalBox::kUnbounded
                  ? static_cast<std::int64_t>(m)
                  : static_cast<std::int64_t>(std::min(box.hi[q], m));
    if (cap_[q] > 0) usable |= std::uint64_t{1} << q;
    if (cap_[q] >= static_cast<std::int64_t>(m)) slack |= std::uint64_t{1} << q;
  }

  // Effective per-child masks; a child with no usable state sinks the box.
  supply_.assign(k, 0);
  eff_.resize(m);
  std::uint64_t union_eff = 0;
  std::size_t confined = 0;  // children whose every usable state has cap < m
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t e = masks_[i] & usable;
    if (e == 0) return Verdict::kInfeasible;
    eff_[i] = e;
    union_eff |= e;
    if ((e & slack) == 0) ++confined;
    for (std::uint64_t rest = e; rest != 0; rest &= rest - 1)
      ++supply_[static_cast<std::size_t>(std::countr_zero(rest))];
  }

  // Per-state demand needs that many distinct children able to supply it.
  for (std::size_t q = 0; q < k; ++q)
    if (supply_[q] < box.lo[q]) return Verdict::kInfeasible;

  // Hall cut on the capped side: every confined child consumes one unit of
  // finitely-capped capacity.
  if (confined > 0) {
    std::int64_t cap_finite = 0;
    for (std::uint64_t rest = union_eff & ~slack; rest != 0; rest &= rest - 1)
      cap_finite += cap_[static_cast<std::size_t>(std::countr_zero(rest))];
    if (static_cast<std::int64_t>(confined) > cap_finite) return Verdict::kInfeasible;
  }

  // No lower bounds and every child can park on a never-binding state.
  if (lo_sum == 0 && confined == 0) return Verdict::kFeasible;

  // Exact subset-Hall when no cap binds (every reachable state takes all m
  // children): feasibility reduces to Hall's condition over the demanded
  // states D = {q : lo[q] > 0}. Expand lo[q] into lo[q] demand slots; a
  // saturating matching exists iff for every T subseteq D,
  //   lo(T) <= #{children i : eff_i meets T} = m - #{i : eff_i cap T empty}.
  // Surplus children always place (eff nonempty, caps never bind), so the
  // condition is necessary AND sufficient — both answers are conclusive.
  std::uint64_t demand = 0;
  std::size_t demand_states[64];
  std::size_t dk = 0;
  for (std::size_t q = 0; q < k; ++q)
    if (box.lo[q] > 0) {
      demand |= std::uint64_t{1} << q;
      demand_states[dk++] = q;
    }
  if ((union_eff & ~slack) == 0 && dk <= 8) {
    const std::size_t subsets = std::size_t{1} << dk;
    hall_count_.assign(subsets, 0);
    for (std::size_t i = 0; i < m; ++i) {
      std::size_t pattern = 0;
      for (std::size_t j = 0; j < dk; ++j)
        pattern |= ((eff_[i] >> demand_states[j]) & 1u) << j;
      ++hall_count_[pattern];
    }
    // Zeta transform: hall_count_[S] = #children whose demand-pattern is in S.
    for (std::size_t j = 0; j < dk; ++j)
      for (std::size_t s = 0; s < subsets; ++s)
        if (s >> j & 1u) hall_count_[s] += hall_count_[s ^ (std::size_t{1} << j)];
    // greedy_count_[T] = sum of lower bounds over the states in T.
    greedy_count_.assign(subsets, 0);
    for (std::size_t s = 1; s < subsets; ++s) {
      const std::size_t j = static_cast<std::size_t>(std::countr_zero(s));
      greedy_count_[s] =
          greedy_count_[s ^ (std::size_t{1} << j)] + box.lo[demand_states[j]];
    }
    for (std::size_t s = 0; s < subsets; ++s)
      if (greedy_count_[s] + hall_count_[(subsets - 1) ^ s] > m)
        return Verdict::kInfeasible;
    return Verdict::kFeasible;
  }

  // Mixed case (binding caps and lower bounds): build a witness greedily,
  // most-constrained children first. Only a completed witness is conclusive —
  // greedy failure says nothing, so fall through to the flow tier.
  order_.resize(m);
  for (std::size_t i = 0; i < m; ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [this](std::size_t x, std::size_t y) {
    const int px = std::popcount(eff_[x]);
    const int py = std::popcount(eff_[y]);
    return px != py ? px < py : x < y;
  });
  // Satisfy lower bounds first, tightest supply slack first. cap_ doubles as
  // remaining capacity from here on; eff_[i] == 0 marks an assigned child.
  std::pair<std::size_t, std::size_t> demand_order[64];  // (slack, state)
  for (std::size_t j = 0; j < dk; ++j)
    demand_order[j] = {supply_[demand_states[j]] - box.lo[demand_states[j]],
                       demand_states[j]};
  std::sort(demand_order, demand_order + dk);
  for (std::size_t j = 0; j < dk; ++j) {
    const std::size_t q = demand_order[j].second;
    std::size_t need = box.lo[q];
    for (std::size_t idx = 0; idx < m && need > 0; ++idx) {
      const std::size_t i = order_[idx];
      if ((eff_[i] >> q & 1u) == 0 || eff_[i] == 0) continue;
      eff_[i] = 0;
      --cap_[q];
      --need;
    }
    if (need > 0) return Verdict::kInconclusive;
  }
  // Park the rest on whichever usable state has the most room left.
  for (std::size_t idx = 0; idx < m; ++idx) {
    const std::size_t i = order_[idx];
    if (eff_[i] == 0) continue;
    std::size_t best = SIZE_MAX;
    std::int64_t best_room = 0;
    for (std::uint64_t rest = eff_[i]; rest != 0; rest &= rest - 1) {
      const std::size_t q = static_cast<std::size_t>(std::countr_zero(rest));
      if (cap_[q] > best_room) {
        best = q;
        best_room = cap_[q];
      }
    }
    if (best == SIZE_MAX) return Verdict::kInconclusive;
    eff_[i] = 0;
    --cap_[best];
  }
  return Verdict::kFeasible;
}

void UopFeasibility::build_flow_structure() {
  // Circulation-with-lower-bounds over the bipartite assignment network,
  // pre-reduced so only capacities change between boxes. Original problem:
  // S -> child [1,1], child -> state [0,1], state_q -> T [lo_q, cap_q], plus
  // the T -> S return edge. The standard reduction moves every lower bound
  // onto super-source/super-sink edges:
  //   SS -> child (1)        from the child's saturated S -> child edge
  //   S  -> TT (m)           the m units S owes its children
  //   state_q -> T (cap-lo)  the residual choice above the lower bound
  //   state_q -> TT (lo_q)   the lower bound itself
  //   SS -> T (lo_sum)       T's matching surplus
  // Feasible iff maxflow(SS, TT) == m + lo_sum. Only the three starred-by-box
  // capacities move per query; adjacency is built once per vertex.
  const std::size_t m = masks_.size();
  const std::size_t k = state_count_;
  const std::size_t s_node = m + k;
  const std::size_t t_node = m + k + 1;
  const std::size_t super_source = m + k + 2;
  const std::size_t super_sink = m + k + 3;
  net_.reset(m + k + 4);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::uint64_t rest = masks_[i]; rest != 0; rest &= rest - 1)
      net_.add_edge(i, m + static_cast<std::size_t>(std::countr_zero(rest)), 1);
    net_.add_edge(super_source, i, 1);
  }
  state_sink_edge_.assign(k, 0);
  state_super_edge_.assign(k, 0);
  for (std::size_t q = 0; q < k; ++q) {
    state_sink_edge_[q] = net_.add_edge(m + q, t_node, 0);
    state_super_edge_[q] = net_.add_edge(m + q, super_sink, 0);
  }
  net_.add_edge(t_node, s_node, std::numeric_limits<std::int64_t>::max() / 4);
  net_.add_edge(s_node, super_sink, static_cast<std::int64_t>(m));
  super_child_sink_edge_ = net_.add_edge(super_source, t_node, 0);
  net_built_ = true;
}

bool UopFeasibility::flow_decide(const IntervalBox& box) {
  // Reached only when greedy_decide was inconclusive, so the pristine
  // pre-checks already passed: m > 0, lo <= hi, lo_sum <= m, cap >= lo.
  const bool rebuilt = !net_built_;
  if (!net_built_) build_flow_structure();
  const std::size_t m = masks_.size();
  const std::size_t k = state_count_;
  std::int64_t lo_sum = 0;
  for (std::size_t q = 0; q < k; ++q) {
    const auto lo = static_cast<std::int64_t>(box.lo[q]);
    const std::int64_t cap =
        box.hi[q] == IntervalBox::kUnbounded
            ? static_cast<std::int64_t>(m)
            : static_cast<std::int64_t>(std::min(box.hi[q], m));
    net_.set_capacity(state_sink_edge_[q], cap - lo);
    net_.set_capacity(state_super_edge_[q], lo);
    lo_sum += lo;
  }
  net_.set_capacity(super_child_sink_edge_, lo_sum);
  net_.reset_flows();
  const std::int64_t achieved = net_.run(m + k + 2, m + k + 3);
  if (rebuilt)
    ++counts_.flow;
  else
    ++counts_.warm;
  return achieved == static_cast<std::int64_t>(m) + lo_sum;
}

std::optional<Run> find_accepting_run(const UOPAutomaton& a, const RootedTree& t,
                                      const std::vector<std::size_t>* labels) {
  a.validate();
  if (labels != nullptr && labels->size() != t.size())
    throw std::invalid_argument("find_accepting_run: labels size mismatch");

  // Pre-compute boxes per (state, label).
  std::vector<std::vector<IntervalBox>> boxes(a.state_count * a.label_count);
  for (std::size_t q = 0; q < a.state_count; ++q)
    for (std::size_t l = 0; l < a.label_count; ++l)
      boxes[q * a.label_count + l] = a.transition(q, l).to_boxes(a.state_count);

  const auto order = t.preorder();

  if (a.state_count <= 64) {
    // Mask fast path: feasibility decisions through the tiered engine (exact
    // booleans), assignments through the pristine masked solver — so the run
    // produced is bit-identical to the vector<bool> reference path below.
    const std::size_t k = a.state_count;
    std::vector<std::uint64_t> feasible(t.size(), 0);
    std::vector<std::uint64_t> child_masks;
    UopFeasibility feas;

    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t v = *it;
      child_masks.clear();
      for (std::size_t c : t.children(v)) child_masks.push_back(feasible[c]);
      feas.begin(child_masks, k);
      for (std::size_t q = 0; q < k; ++q)
        for (const IntervalBox& box : boxes[q * a.label_count + label_of(labels, v)])
          if (feas.feasible(box)) {
            feasible[v] |= std::uint64_t{1} << q;
            break;
          }
    }

    std::size_t root_state = SIZE_MAX;
    for (std::size_t q = 0; q < k; ++q)
      if (a.accepting[q] && (feasible[t.root()] >> q & 1u)) {
        root_state = q;
        break;
      }
    if (root_state == SIZE_MAX) return std::nullopt;

    Run run(t.size(), SIZE_MAX);
    run[t.root()] = root_state;
    std::vector<std::size_t> assignment;
    for (std::size_t v : order) {
      const std::size_t q = run[v];
      const auto children_span = t.children(v);
      if (children_span.empty()) continue;
      child_masks.clear();
      for (std::size_t c : children_span) child_masks.push_back(feasible[c]);
      feas.begin(child_masks, k);
      bool placed = false;
      for (const IntervalBox& box : boxes[q * a.label_count + label_of(labels, v)]) {
        if (!feas.feasible(box)) continue;  // exact: skips only what fails below
        if (!uop_assign_children_masked(child_masks, box, k, assignment))
          throw std::logic_error("find_accepting_run: tier/flow disagreement");
        for (std::size_t i = 0; i < children_span.size(); ++i)
          run[children_span[i]] = assignment[i];
        placed = true;
        break;
      }
      if (!placed) throw std::logic_error("find_accepting_run: extraction failed");
    }

    if (!is_accepting_run(a, t, run, labels))
      throw std::logic_error("find_accepting_run: produced a non-accepting run");
    return run;
  }

  // Reference path for automata too wide for 64-bit masks.
  std::vector<std::vector<bool>> feasible(t.size(),
                                          std::vector<bool>(a.state_count, false));
  std::vector<std::size_t> scratch_assignment;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = *it;
    const auto children_span = t.children(v);
    const std::vector<std::size_t> children(children_span.begin(), children_span.end());
    for (std::size_t q = 0; q < a.state_count; ++q) {
      for (const IntervalBox& box : boxes[q * a.label_count + label_of(labels, v)]) {
        if (assign_children(children, feasible, box, a.state_count, scratch_assignment)) {
          feasible[v][q] = true;
          break;
        }
      }
    }
  }

  // Pick an accepting feasible root state.
  std::size_t root_state = SIZE_MAX;
  for (std::size_t q = 0; q < a.state_count; ++q)
    if (a.accepting[q] && feasible[t.root()][q]) {
      root_state = q;
      break;
    }
  if (root_state == SIZE_MAX) return std::nullopt;

  // Top-down extraction.
  Run run(t.size(), SIZE_MAX);
  run[t.root()] = root_state;
  for (std::size_t v : order) {
    const std::size_t q = run[v];
    const auto children_span = t.children(v);
    if (children_span.empty()) continue;
    const std::vector<std::size_t> children(children_span.begin(), children_span.end());
    bool placed = false;
    for (const IntervalBox& box : boxes[q * a.label_count + label_of(labels, v)]) {
      std::vector<std::size_t> assignment;
      if (assign_children(children, feasible, box, a.state_count, assignment)) {
        for (std::size_t i = 0; i < children.size(); ++i) run[children[i]] = assignment[i];
        placed = true;
        break;
      }
    }
    if (!placed) throw std::logic_error("find_accepting_run: extraction failed");
  }

  if (!is_accepting_run(a, t, run, labels))
    throw std::logic_error("find_accepting_run: produced a non-accepting run");
  return run;
}

}  // namespace lcert
