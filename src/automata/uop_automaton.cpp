#include "src/automata/uop_automaton.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "src/automata/box_index.hpp"
#include "src/solve/solver.hpp"
#include "src/util/flow.hpp"

namespace lcert {

const UnaryConstraint& UOPAutomaton::transition(std::size_t state, std::size_t label) const {
  if (state >= state_count || label >= label_count)
    throw std::out_of_range("UOPAutomaton::transition: out of range");
  return delta.at(state * label_count + label);
}

void UOPAutomaton::validate() const {
  if (state_count == 0) throw std::invalid_argument("UOPAutomaton: no states");
  if (state_names.size() != state_count || accepting.size() != state_count ||
      delta.size() != state_count * label_count)
    throw std::invalid_argument("UOPAutomaton: inconsistent sizes");
}

std::size_t AutomatonBuilder::add_state(std::string name, bool accepting) {
  names_.push_back(std::move(name));
  accepting_.push_back(accepting);
  for (std::size_t l = 0; l < label_count_; ++l) delta_.emplace_back(std::nullopt);
  return names_.size() - 1;
}

void AutomatonBuilder::set_transition(std::size_t state, UnaryConstraint c, std::size_t label) {
  delta_.at(state * label_count_ + label) = std::move(c);
}

UOPAutomaton AutomatonBuilder::build() const {
  UOPAutomaton a;
  a.state_count = names_.size();
  a.label_count = label_count_;
  a.state_names = names_;
  a.accepting = accepting_;
  a.delta.reserve(delta_.size());
  for (const auto& d : delta_)
    a.delta.push_back(d.value_or(UnaryConstraint::always_false()));
  a.validate();
  return a;
}

namespace {

std::size_t label_of(const std::vector<std::size_t>* labels, std::size_t v) {
  return labels == nullptr ? 0 : labels->at(v);
}

}  // namespace

bool is_accepting_run(const UOPAutomaton& a, const RootedTree& t, const Run& run,
                      const std::vector<std::size_t>* labels) {
  a.validate();
  if (run.size() != t.size()) return false;
  for (std::size_t v = 0; v < t.size(); ++v) {
    if (run[v] >= a.state_count) return false;
    std::vector<std::size_t> counts(a.state_count, 0);
    for (std::size_t c : t.children(v)) ++counts[run[c]];
    if (!a.transition(run[v], label_of(labels, v)).eval(counts)) return false;
  }
  return a.accepting[run[t.root()]];
}

namespace {

// Can the children (with the given feasible sets) realize counts inside
// `box`? If yes, writes the chosen state of each child into `assignment`.
bool assign_children(const std::vector<std::size_t>& children,
                     const std::vector<std::vector<bool>>& feasible,
                     const IntervalBox& box, std::size_t state_count,
                     std::vector<std::size_t>& assignment) {
  const std::size_t m = children.size();
  // Quick necessary check: sum of lower bounds must not exceed m.
  std::size_t lo_sum = 0;
  for (std::size_t q = 0; q < state_count; ++q) {
    if (box.hi[q] != IntervalBox::kUnbounded && box.lo[q] > box.hi[q]) return false;
    lo_sum += box.lo[q];
  }
  if (lo_sum > m) return false;

  BoundedFlowProblem problem;
  const std::size_t source = problem.add_node();
  const std::size_t sink = problem.add_node();
  std::vector<std::size_t> child_nodes(m);
  for (std::size_t i = 0; i < m; ++i) {
    child_nodes[i] = problem.add_node();
    problem.add_edge(source, child_nodes[i], 1, 1);
  }
  std::vector<std::size_t> state_nodes(state_count, SIZE_MAX);
  std::vector<std::pair<std::size_t, std::pair<std::size_t, std::size_t>>> choice_edges;
  for (std::size_t q = 0; q < state_count; ++q) {
    state_nodes[q] = problem.add_node();
    const std::int64_t hi =
        box.hi[q] == IntervalBox::kUnbounded ? static_cast<std::int64_t>(m)
                                             : static_cast<std::int64_t>(std::min(box.hi[q], m));
    problem.add_edge(state_nodes[q], sink, static_cast<std::int64_t>(box.lo[q]), hi);
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t q = 0; q < state_count; ++q) {
      if (!feasible[children[i]][q]) continue;
      const std::size_t e = problem.add_edge(child_nodes[i], state_nodes[q], 0, 1);
      choice_edges.push_back({e, {i, q}});
    }
  }
  problem.source = source;
  problem.sink = sink;

  std::vector<std::int64_t> flow;
  if (!problem.feasible(flow)) return false;

  assignment.assign(m, SIZE_MAX);
  for (const auto& [e, iq] : choice_edges)
    if (flow[e] == 1) assignment[iq.first] = iq.second;
  for (std::size_t i = 0; i < m; ++i)
    if (assignment[i] == SIZE_MAX)
      throw std::logic_error("assign_children: flow left a child unassigned");
  return true;
}

}  // namespace

bool uop_assign_children_masked(std::span<const std::uint64_t> child_masks,
                                const IntervalBox& box, std::size_t state_count,
                                std::vector<std::size_t>& assignment) {
  // Mirrors assign_children above line for line — same quick check, same
  // node/edge insertion order — with feasible[child][q] replaced by a mask
  // bit test. The flow solver's choice depends on that order, and the
  // memoized prover relies on both paths choosing identically.
  const std::size_t m = child_masks.size();
  std::size_t lo_sum = 0;
  for (std::size_t q = 0; q < state_count; ++q) {
    if (box.hi[q] != IntervalBox::kUnbounded && box.lo[q] > box.hi[q]) return false;
    lo_sum += box.lo[q];
  }
  if (lo_sum > m) return false;

  BoundedFlowProblem problem;
  const std::size_t source = problem.add_node();
  const std::size_t sink = problem.add_node();
  std::vector<std::size_t> child_nodes(m);
  for (std::size_t i = 0; i < m; ++i) {
    child_nodes[i] = problem.add_node();
    problem.add_edge(source, child_nodes[i], 1, 1);
  }
  std::vector<std::size_t> state_nodes(state_count, SIZE_MAX);
  std::vector<std::pair<std::size_t, std::pair<std::size_t, std::size_t>>> choice_edges;
  for (std::size_t q = 0; q < state_count; ++q) {
    state_nodes[q] = problem.add_node();
    const std::int64_t hi =
        box.hi[q] == IntervalBox::kUnbounded ? static_cast<std::int64_t>(m)
                                             : static_cast<std::int64_t>(std::min(box.hi[q], m));
    problem.add_edge(state_nodes[q], sink, static_cast<std::int64_t>(box.lo[q]), hi);
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t q = 0; q < state_count; ++q) {
      if ((child_masks[i] >> q & 1u) == 0) continue;
      const std::size_t e = problem.add_edge(child_nodes[i], state_nodes[q], 0, 1);
      choice_edges.push_back({e, {i, q}});
    }
  }
  problem.source = source;
  problem.sink = sink;

  std::vector<std::int64_t> flow;
  if (!problem.feasible(flow)) return false;

  assignment.assign(m, SIZE_MAX);
  for (const auto& [e, iq] : choice_edges)
    if (flow[e] == 1) assignment[iq.first] = iq.second;
  for (std::size_t i = 0; i < m; ++i)
    if (assignment[i] == SIZE_MAX)
      throw std::logic_error("uop_assign_children_masked: flow left a child unassigned");
  return true;
}

std::optional<Run> find_accepting_run(const UOPAutomaton& a, const RootedTree& t,
                                      const std::vector<std::size_t>* labels) {
  a.validate();
  if (labels != nullptr && labels->size() != t.size())
    throw std::invalid_argument("find_accepting_run: labels size mismatch");

  // Pre-compute the indexed canonical boxes per (state, label) — the same
  // compilation MsoTreeScheme holds, so the "first feasible box" both paths
  // land on is the same box.
  std::vector<BoxIndex> boxes;
  boxes.reserve(a.state_count * a.label_count);
  for (std::size_t q = 0; q < a.state_count; ++q)
    for (std::size_t l = 0; l < a.label_count; ++l)
      boxes.emplace_back(a.transition(q, l).to_boxes(a.state_count));

  const auto order = t.preorder();

  if (a.state_count <= 64) {
    // Mask fast path: feasibility decisions through the default solver
    // backend (exact booleans), assignments through the pristine masked
    // solver — so the run produced is bit-identical to the vector<bool>
    // reference path below.
    const std::size_t k = a.state_count;
    std::vector<std::uint64_t> feasible(t.size(), 0);
    std::vector<std::uint64_t> child_masks;
    const auto feas = solve::SolverFactory::make(solve::kDefaultBackend);

    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t v = *it;
      child_masks.clear();
      for (std::size_t c : t.children(v)) child_masks.push_back(feasible[c]);
      feas->begin(child_masks, k);
      for (std::size_t q = 0; q < k; ++q)
        if (feas->decide_first(boxes[q * a.label_count + label_of(labels, v)]) !=
            BoxIndex::npos)
          feasible[v] |= std::uint64_t{1} << q;
    }

    std::size_t root_state = SIZE_MAX;
    for (std::size_t q = 0; q < k; ++q)
      if (a.accepting[q] && (feasible[t.root()] >> q & 1u)) {
        root_state = q;
        break;
      }
    if (root_state == SIZE_MAX) return std::nullopt;

    Run run(t.size(), SIZE_MAX);
    run[t.root()] = root_state;
    std::vector<std::size_t> assignment;
    for (std::size_t v : order) {
      const std::size_t q = run[v];
      const auto children_span = t.children(v);
      if (children_span.empty()) continue;
      child_masks.clear();
      for (std::size_t c : children_span) child_masks.push_back(feasible[c]);
      feas->begin(child_masks, k);
      const BoxIndex& idx = boxes[q * a.label_count + label_of(labels, v)];
      // decide_first is exact: it skips only boxes the full sweep would
      // reject, so this is the same first box as the pre-index linear scan.
      const std::size_t bi = feas->decide_first(idx);
      if (bi == BoxIndex::npos)
        throw std::logic_error("find_accepting_run: extraction failed");
      if (!uop_assign_children_masked(child_masks, idx.box(bi), k, assignment))
        throw std::logic_error("find_accepting_run: solver/flow disagreement");
      for (std::size_t i = 0; i < children_span.size(); ++i)
        run[children_span[i]] = assignment[i];
    }

    if (!is_accepting_run(a, t, run, labels))
      throw std::logic_error("find_accepting_run: produced a non-accepting run");
    return run;
  }

  // Reference path for automata too wide for 64-bit masks. The index's
  // feasibility candidates drop only boxes whose necessary conditions
  // (lo <= supply, lo-sum <= child count) fail — assign_children rejects
  // those too, so the first candidate it accepts is the first box overall.
  std::vector<std::vector<bool>> feasible(t.size(),
                                          std::vector<bool>(a.state_count, false));
  std::vector<std::size_t> supply(a.state_count);
  const auto compute_supply = [&](const std::vector<std::size_t>& children) {
    std::fill(supply.begin(), supply.end(), 0);
    for (const std::size_t c : children)
      for (std::size_t q = 0; q < a.state_count; ++q)
        supply[q] += feasible[c][q] ? 1 : 0;
  };
  std::vector<std::size_t> scratch_assignment;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = *it;
    const auto children_span = t.children(v);
    const std::vector<std::size_t> children(children_span.begin(), children_span.end());
    compute_supply(children);
    for (std::size_t q = 0; q < a.state_count; ++q) {
      const BoxIndex& idx = boxes[q * a.label_count + label_of(labels, v)];
      auto cur = idx.feasibility_candidates(supply.data(), children.size());
      for (std::size_t bi = cur.next(); bi != BoxIndex::npos; bi = cur.next()) {
        if (assign_children(children, feasible, idx.box(bi), a.state_count,
                            scratch_assignment)) {
          feasible[v][q] = true;
          break;
        }
      }
    }
  }

  // Pick an accepting feasible root state.
  std::size_t root_state = SIZE_MAX;
  for (std::size_t q = 0; q < a.state_count; ++q)
    if (a.accepting[q] && feasible[t.root()][q]) {
      root_state = q;
      break;
    }
  if (root_state == SIZE_MAX) return std::nullopt;

  // Top-down extraction.
  Run run(t.size(), SIZE_MAX);
  run[t.root()] = root_state;
  for (std::size_t v : order) {
    const std::size_t q = run[v];
    const auto children_span = t.children(v);
    if (children_span.empty()) continue;
    const std::vector<std::size_t> children(children_span.begin(), children_span.end());
    compute_supply(children);
    bool placed = false;
    const BoxIndex& idx = boxes[q * a.label_count + label_of(labels, v)];
    auto cur = idx.feasibility_candidates(supply.data(), children.size());
    for (std::size_t bi = cur.next(); bi != BoxIndex::npos; bi = cur.next()) {
      std::vector<std::size_t> assignment;
      if (assign_children(children, feasible, idx.box(bi), a.state_count, assignment)) {
        for (std::size_t i = 0; i < children.size(); ++i) run[children[i]] = assignment[i];
        placed = true;
        break;
      }
    }
    if (!placed) throw std::logic_error("find_accepting_run: extraction failed");
  }

  if (!is_accepting_run(a, t, run, labels))
    throw std::logic_error("find_accepting_run: produced a non-accepting run");
  return run;
}

}  // namespace lcert
