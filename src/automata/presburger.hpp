// Unary ordering Presburger constraints (Appendix C.2, following [7]/[36]).
//
//   p ::= t <= t | p & p | ~p        t ::= y | n | t + t
//
// restricted to *unary* constraints: each atom mentions a single variable, so
// every atom normalizes to  y_q <= c  or  y_q >= c. A constraint is evaluated
// against the multiset of children states (y_q = number of children in state
// q). For the nondeterministic run search the constraint is compiled to a
// disjunction of *interval boxes*: conjunctions assigning each state an
// interval [lo, hi] (hi possibly unbounded).
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace lcert {

/// One interval per state; kUnbounded for "no upper limit".
struct IntervalBox {
  static constexpr std::size_t kUnbounded = SIZE_MAX;

  explicit IntervalBox(std::size_t state_count)
      : lo(state_count, 0), hi(state_count, kUnbounded) {}

  std::vector<std::size_t> lo;
  std::vector<std::size_t> hi;

  bool contains(const std::vector<std::size_t>& counts) const;
  /// Allocation-free variant, inline for hot verification loops.
  bool contains(const std::size_t* counts, std::size_t count_len) const {
    if (count_len != lo.size())
      throw std::invalid_argument("IntervalBox::contains: wrong arity");
    const std::size_t* lo_p = lo.data();
    const std::size_t* hi_p = hi.data();
    for (std::size_t q = 0; q < count_len; ++q)
      if (counts[q] < lo_p[q] || (hi_p[q] != kUnbounded && counts[q] > hi_p[q])) return false;
    return true;
  }
  bool empty() const;
  /// Intersection; may produce an empty box.
  IntervalBox intersect(const IntervalBox& other) const;
};

/// AST for unary ordering Presburger constraints over y_0..y_{k-1}.
class UnaryConstraint {
 public:
  /// y_state <= bound.
  static UnaryConstraint le(std::size_t state, std::size_t bound);
  /// y_state >= bound.
  static UnaryConstraint ge(std::size_t state, std::size_t bound);
  /// y_state == bound (sugar: le & ge).
  static UnaryConstraint exactly(std::size_t state, std::size_t bound);
  static UnaryConstraint always_true();
  static UnaryConstraint always_false();

  UnaryConstraint operator&&(const UnaryConstraint& rhs) const;
  UnaryConstraint operator||(const UnaryConstraint& rhs) const;
  UnaryConstraint operator!() const;

  /// Direct evaluation on a counts vector.
  bool eval(const std::vector<std::size_t>& counts) const;

  /// Canonical DNF as interval boxes over `state_count` states: the raw
  /// expansion of to_boxes_raw() pushed through canonicalize_boxes(). Exact
  /// (same membership as eval()); an unsatisfiable constraint yields an
  /// empty vector. Every box consumer — verifier, prover, audit — compiles
  /// through this entry point, so they all iterate one shared canonical
  /// list and the "first matching box" is the same box everywhere.
  std::vector<IntervalBox> to_boxes(std::size_t state_count) const;

  /// Raw DNF as interval boxes, no canonicalization. Negation is pushed to
  /// atoms first (~(y<=c) == y>=c+1), so the result is exact; empty boxes
  /// are dropped. Exposed for the boxes_per_state_raw gauge and for
  /// membership-equivalence tests against the canonical form — the
  /// leaves>=4 automaton expands to ~29k raw boxes in one state where the
  /// canonical form is a handful.
  std::vector<IntervalBox> to_boxes_raw(std::size_t state_count) const;

  std::string to_string() const;

 private:
  enum class Kind { kLe, kGe, kAnd, kOr, kNot, kTrue, kFalse };

  struct Node {
    Kind kind;
    std::size_t state = 0;
    std::size_t bound = 0;
    std::shared_ptr<const Node> a;
    std::shared_ptr<const Node> b;
  };

  explicit UnaryConstraint(std::shared_ptr<const Node> n) : node_(std::move(n)) {}

  std::shared_ptr<const Node> node_;
};

/// True iff `outer` contains every point of `inner` (componentwise
/// lo <= lo and hi >= hi, with kUnbounded as +infinity). Both boxes must
/// share one arity; empty boxes are subsumed by everything of that arity.
bool box_subsumes(const IntervalBox& outer, const IntervalBox& inner);

/// Canonicalizes a DNF of interval boxes without changing its membership
/// predicate (DESIGN.md §16):
///   1. empty boxes are dropped;
///   2. boxes identical in all coordinates but one whose intervals on that
///      coordinate overlap or are adjacent are coalesced into their union;
///   3. boxes subsumed by another box are dropped (skipped above an internal
///      size limit — coalescing is the load-bearing shrink);
///   4. the survivors are sorted lexicographically by (lo, hi).
/// Runs 2–3 to a fixpoint, so the result is idempotent and deterministic:
/// equal input sets (in any order) produce the identical output vector.
/// Exactness and idempotence are pinned by tests and the
/// box-index-divergence fuzz oracle. All boxes must share one arity.
std::vector<IntervalBox> canonicalize_boxes(std::vector<IntervalBox> boxes);

}  // namespace lcert
