#include "src/automata/presburger.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcert {

bool IntervalBox::contains(const std::vector<std::size_t>& counts) const {
  return contains(counts.data(), counts.size());
}

bool IntervalBox::empty() const {
  for (std::size_t q = 0; q < lo.size(); ++q)
    if (hi[q] != kUnbounded && lo[q] > hi[q]) return true;
  return false;
}

IntervalBox IntervalBox::intersect(const IntervalBox& other) const {
  if (lo.size() != other.lo.size())
    throw std::invalid_argument("IntervalBox::intersect: wrong arity");
  IntervalBox out(lo.size());
  for (std::size_t q = 0; q < lo.size(); ++q) {
    out.lo[q] = std::max(lo[q], other.lo[q]);
    out.hi[q] = std::min(hi[q], other.hi[q]);  // kUnbounded == SIZE_MAX sorts last
  }
  return out;
}

UnaryConstraint UnaryConstraint::le(std::size_t state, std::size_t bound) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kLe;
  n->state = state;
  n->bound = bound;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::ge(std::size_t state, std::size_t bound) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kGe;
  n->state = state;
  n->bound = bound;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::exactly(std::size_t state, std::size_t bound) {
  return le(state, bound) && ge(state, bound);
}

UnaryConstraint UnaryConstraint::always_true() {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kTrue;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::always_false() {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kFalse;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::operator&&(const UnaryConstraint& rhs) const {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kAnd;
  n->a = node_;
  n->b = rhs.node_;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::operator||(const UnaryConstraint& rhs) const {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kOr;
  n->a = node_;
  n->b = rhs.node_;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::operator!() const {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kNot;
  n->a = node_;
  return UnaryConstraint(std::move(n));
}

bool UnaryConstraint::eval(const std::vector<std::size_t>& counts) const {
  struct Eval {
    const std::vector<std::size_t>& counts;
    bool run(const Node& n) const {
      switch (n.kind) {
        case Kind::kLe:
          return counts.at(n.state) <= n.bound;
        case Kind::kGe:
          return counts.at(n.state) >= n.bound;
        case Kind::kAnd:
          return run(*n.a) && run(*n.b);
        case Kind::kOr:
          return run(*n.a) || run(*n.b);
        case Kind::kNot:
          return !run(*n.a);
        case Kind::kTrue:
          return true;
        case Kind::kFalse:
          return false;
      }
      throw std::logic_error("UnaryConstraint::eval: unreachable");
    }
  };
  return Eval{counts}.run(*node_);
}

std::vector<IntervalBox> UnaryConstraint::to_boxes(std::size_t state_count) const {
  struct Dnf {
    std::size_t k;
    std::vector<IntervalBox> run(const Node& n, bool negated) const {
      switch (n.kind) {
        case Kind::kTrue:
          return negated ? std::vector<IntervalBox>{} : std::vector<IntervalBox>{IntervalBox(k)};
        case Kind::kFalse:
          return negated ? std::vector<IntervalBox>{IntervalBox(k)} : std::vector<IntervalBox>{};
        case Kind::kLe: {
          IntervalBox box(k);
          if (!negated) {
            box.hi.at(n.state) = n.bound;
          } else {
            box.lo.at(n.state) = n.bound + 1;  // ~(y<=c) == y >= c+1
          }
          return {box};
        }
        case Kind::kGe: {
          IntervalBox box(k);
          if (!negated) {
            box.lo.at(n.state) = n.bound;
          } else {
            if (n.bound == 0) return {};  // ~(y>=0) is unsatisfiable
            box.hi.at(n.state) = n.bound - 1;
          }
          return {box};
        }
        case Kind::kNot:
          return run(*n.a, !negated);
        case Kind::kAnd:
        case Kind::kOr: {
          const bool conjunctive = (n.kind == Kind::kAnd) != negated;
          auto left = run(*n.a, negated);
          auto right = run(*n.b, negated);
          if (!conjunctive) {
            left.insert(left.end(), right.begin(), right.end());
            return left;
          }
          std::vector<IntervalBox> out;
          for (const auto& a : left)
            for (const auto& b : right) {
              IntervalBox merged = a.intersect(b);
              if (!merged.empty()) out.push_back(std::move(merged));
            }
          return out;
        }
      }
      throw std::logic_error("UnaryConstraint::to_boxes: unreachable");
    }
  };
  auto boxes = Dnf{state_count}.run(*node_, false);
  // Drop empty boxes defensively (atoms can create lo > hi through intersect).
  boxes.erase(std::remove_if(boxes.begin(), boxes.end(),
                             [](const IntervalBox& b) { return b.empty(); }),
              boxes.end());
  return boxes;
}

std::string UnaryConstraint::to_string() const {
  struct Render {
    std::string run(const Node& n) const {
      switch (n.kind) {
        case Kind::kLe:
          return "y" + std::to_string(n.state) + "<=" + std::to_string(n.bound);
        case Kind::kGe:
          return "y" + std::to_string(n.state) + ">=" + std::to_string(n.bound);
        case Kind::kAnd:
          return "(" + run(*n.a) + " & " + run(*n.b) + ")";
        case Kind::kOr:
          return "(" + run(*n.a) + " | " + run(*n.b) + ")";
        case Kind::kNot:
          return "~(" + run(*n.a) + ")";
        case Kind::kTrue:
          return "true";
        case Kind::kFalse:
          return "false";
      }
      return "?";
    }
  };
  return Render{}.run(*node_);
}

}  // namespace lcert
