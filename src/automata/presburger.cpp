#include "src/automata/presburger.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace lcert {

bool IntervalBox::contains(const std::vector<std::size_t>& counts) const {
  return contains(counts.data(), counts.size());
}

bool IntervalBox::empty() const {
  for (std::size_t q = 0; q < lo.size(); ++q)
    if (hi[q] != kUnbounded && lo[q] > hi[q]) return true;
  return false;
}

IntervalBox IntervalBox::intersect(const IntervalBox& other) const {
  if (lo.size() != other.lo.size())
    throw std::invalid_argument("IntervalBox::intersect: wrong arity");
  IntervalBox out(lo.size());
  for (std::size_t q = 0; q < lo.size(); ++q) {
    out.lo[q] = std::max(lo[q], other.lo[q]);
    out.hi[q] = std::min(hi[q], other.hi[q]);  // kUnbounded == SIZE_MAX sorts last
  }
  return out;
}

UnaryConstraint UnaryConstraint::le(std::size_t state, std::size_t bound) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kLe;
  n->state = state;
  n->bound = bound;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::ge(std::size_t state, std::size_t bound) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kGe;
  n->state = state;
  n->bound = bound;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::exactly(std::size_t state, std::size_t bound) {
  return le(state, bound) && ge(state, bound);
}

UnaryConstraint UnaryConstraint::always_true() {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kTrue;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::always_false() {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kFalse;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::operator&&(const UnaryConstraint& rhs) const {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kAnd;
  n->a = node_;
  n->b = rhs.node_;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::operator||(const UnaryConstraint& rhs) const {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kOr;
  n->a = node_;
  n->b = rhs.node_;
  return UnaryConstraint(std::move(n));
}

UnaryConstraint UnaryConstraint::operator!() const {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kNot;
  n->a = node_;
  return UnaryConstraint(std::move(n));
}

bool UnaryConstraint::eval(const std::vector<std::size_t>& counts) const {
  struct Eval {
    const std::vector<std::size_t>& counts;
    bool run(const Node& n) const {
      switch (n.kind) {
        case Kind::kLe:
          return counts.at(n.state) <= n.bound;
        case Kind::kGe:
          return counts.at(n.state) >= n.bound;
        case Kind::kAnd:
          return run(*n.a) && run(*n.b);
        case Kind::kOr:
          return run(*n.a) || run(*n.b);
        case Kind::kNot:
          return !run(*n.a);
        case Kind::kTrue:
          return true;
        case Kind::kFalse:
          return false;
      }
      throw std::logic_error("UnaryConstraint::eval: unreachable");
    }
  };
  return Eval{counts}.run(*node_);
}

bool box_subsumes(const IntervalBox& outer, const IntervalBox& inner) {
  if (outer.lo.size() != inner.lo.size())
    throw std::invalid_argument("box_subsumes: wrong arity");
  if (inner.empty()) return true;
  for (std::size_t q = 0; q < outer.lo.size(); ++q) {
    if (outer.lo[q] > inner.lo[q]) return false;
    if (outer.hi[q] == IntervalBox::kUnbounded) continue;
    if (inner.hi[q] == IntervalBox::kUnbounded || inner.hi[q] > outer.hi[q]) return false;
  }
  return true;
}

namespace {

bool box_lex_less(const IntervalBox& a, const IntervalBox& b) {
  if (a.lo != b.lo) return a.lo < b.lo;
  return a.hi < b.hi;
}

bool box_equal(const IntervalBox& a, const IntervalBox& b) {
  return a.lo == b.lo && a.hi == b.hi;
}

}  // namespace

std::vector<IntervalBox> canonicalize_boxes(std::vector<IntervalBox> boxes) {
  if (boxes.empty()) return boxes;
  const std::size_t k = boxes.front().lo.size();
  for (const IntervalBox& b : boxes)
    if (b.lo.size() != k || b.hi.size() != k)
      throw std::invalid_argument("canonicalize_boxes: mixed arity");
  boxes.erase(std::remove_if(boxes.begin(), boxes.end(),
                             [](const IntervalBox& b) { return b.empty(); }),
              boxes.end());

  // Full pairwise subsumption is quadratic; above this size only the
  // per-coordinate coalescing runs (it is the load-bearing shrink — the
  // leaves>=4 cliff collapses through coalescing alone).
  constexpr std::size_t kSubsumptionLimit = 2048;

  bool changed = true;
  while (changed && boxes.size() > 1) {
    changed = false;

    // Coalesce along each coordinate: group boxes agreeing on every other
    // coordinate, merge overlapping/adjacent intervals along this one. The
    // (ordered) map keeps the pass deterministic regardless of input order.
    for (std::size_t c = 0; c < k && boxes.size() > 1; ++c) {
      std::map<std::vector<std::size_t>, std::vector<std::pair<std::size_t, std::size_t>>>
          groups;
      std::vector<std::size_t> key(2 * (k - 1));
      for (const IntervalBox& b : boxes) {
        std::size_t w = 0;
        for (std::size_t q = 0; q < k; ++q) {
          if (q == c) continue;
          key[w++] = b.lo[q];
          key[w++] = b.hi[q];
        }
        groups[key].emplace_back(b.lo[c], b.hi[c]);
      }
      std::vector<IntervalBox> next;
      next.reserve(boxes.size());
      for (auto& [group_key, intervals] : groups) {
        std::sort(intervals.begin(), intervals.end());
        std::size_t cur_lo = intervals.front().first;
        std::size_t cur_hi = intervals.front().second;
        const auto emit = [&]() {
          IntervalBox b(k);
          std::size_t w = 0;
          for (std::size_t q = 0; q < k; ++q) {
            if (q == c) continue;
            b.lo[q] = group_key[w++];
            b.hi[q] = group_key[w++];
          }
          b.lo[c] = cur_lo;
          b.hi[c] = cur_hi;
          next.push_back(std::move(b));
        };
        for (std::size_t i = 1; i < intervals.size(); ++i) {
          const auto [lo, hi] = intervals[i];
          // kUnbounded == SIZE_MAX: an unbounded cur_hi absorbs everything,
          // and max() keeps unboundedness on merge. Any merge shrinks the
          // box count, which the size comparison below reports as a change.
          if (cur_hi == IntervalBox::kUnbounded || lo <= cur_hi + 1) {
            cur_hi = std::max(cur_hi, hi);
          } else {
            emit();
            cur_lo = lo;
            cur_hi = hi;
          }
        }
        emit();
      }
      if (next.size() != boxes.size()) changed = true;
      boxes = std::move(next);
    }

    // Subsumption: drop any box another box fully contains. After the
    // dedup below the relation is a strict partial order, so transitivity
    // makes unguarded drops safe (whatever subsumed the dropper also
    // subsumes the dropped).
    if (boxes.size() <= kSubsumptionLimit) {
      std::sort(boxes.begin(), boxes.end(), box_lex_less);
      const auto dup = std::unique(boxes.begin(), boxes.end(), box_equal);
      if (dup != boxes.end()) {
        boxes.erase(dup, boxes.end());
        changed = true;
      }
      std::vector<char> dead(boxes.size(), 0);
      for (std::size_t i = 0; i < boxes.size(); ++i)
        for (std::size_t j = 0; j < boxes.size(); ++j)
          if (i != j && box_subsumes(boxes[j], boxes[i])) {
            dead[i] = 1;
            changed = true;
            break;
          }
      std::size_t w = 0;
      for (std::size_t i = 0; i < boxes.size(); ++i)
        if (!dead[i]) {
          if (w != i) boxes[w] = std::move(boxes[i]);
          ++w;
        }
      boxes.erase(boxes.begin() + static_cast<std::ptrdiff_t>(w), boxes.end());
    }
  }

  std::sort(boxes.begin(), boxes.end(), box_lex_less);
  return boxes;
}

std::vector<IntervalBox> UnaryConstraint::to_boxes(std::size_t state_count) const {
  return canonicalize_boxes(to_boxes_raw(state_count));
}

std::vector<IntervalBox> UnaryConstraint::to_boxes_raw(std::size_t state_count) const {
  struct Dnf {
    std::size_t k;
    std::vector<IntervalBox> run(const Node& n, bool negated) const {
      switch (n.kind) {
        case Kind::kTrue:
          return negated ? std::vector<IntervalBox>{} : std::vector<IntervalBox>{IntervalBox(k)};
        case Kind::kFalse:
          return negated ? std::vector<IntervalBox>{IntervalBox(k)} : std::vector<IntervalBox>{};
        case Kind::kLe: {
          IntervalBox box(k);
          if (!negated) {
            box.hi.at(n.state) = n.bound;
          } else {
            box.lo.at(n.state) = n.bound + 1;  // ~(y<=c) == y >= c+1
          }
          return {box};
        }
        case Kind::kGe: {
          IntervalBox box(k);
          if (!negated) {
            box.lo.at(n.state) = n.bound;
          } else {
            if (n.bound == 0) return {};  // ~(y>=0) is unsatisfiable
            box.hi.at(n.state) = n.bound - 1;
          }
          return {box};
        }
        case Kind::kNot:
          return run(*n.a, !negated);
        case Kind::kAnd:
        case Kind::kOr: {
          const bool conjunctive = (n.kind == Kind::kAnd) != negated;
          auto left = run(*n.a, negated);
          auto right = run(*n.b, negated);
          if (!conjunctive) {
            left.insert(left.end(), right.begin(), right.end());
            return left;
          }
          std::vector<IntervalBox> out;
          for (const auto& a : left)
            for (const auto& b : right) {
              IntervalBox merged = a.intersect(b);
              if (!merged.empty()) out.push_back(std::move(merged));
            }
          return out;
        }
      }
      throw std::logic_error("UnaryConstraint::to_boxes: unreachable");
    }
  };
  auto boxes = Dnf{state_count}.run(*node_, false);
  // Drop empty boxes defensively (atoms can create lo > hi through intersect).
  boxes.erase(std::remove_if(boxes.begin(), boxes.end(),
                             [](const IntervalBox& b) { return b.empty(); }),
              boxes.end());
  return boxes;
}

std::string UnaryConstraint::to_string() const {
  struct Render {
    std::string run(const Node& n) const {
      switch (n.kind) {
        case Kind::kLe:
          return "y" + std::to_string(n.state) + "<=" + std::to_string(n.bound);
        case Kind::kGe:
          return "y" + std::to_string(n.state) + ">=" + std::to_string(n.bound);
        case Kind::kAnd:
          return "(" + run(*n.a) + " & " + run(*n.b) + ")";
        case Kind::kOr:
          return "(" + run(*n.a) + " | " + run(*n.b) + ")";
        case Kind::kNot:
          return "~(" + run(*n.a) + ")";
        case Kind::kTrue:
          return "true";
        case Kind::kFalse:
          return "false";
      }
      return "?";
    }
  };
  return Render{}.run(*node_);
}

}  // namespace lcert
