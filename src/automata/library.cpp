#include "src/automata/library.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "src/graph/minors.hpp"
#include "src/graph/rooted_tree.hpp"

namespace lcert {

namespace {

using UC = UnaryConstraint;

/// Conjunction "y_q == 0" for every state not in `allowed`.
UC zero_outside(const std::vector<std::size_t>& allowed, std::size_t state_count) {
  UC out = UC::always_true();
  for (std::size_t q = 0; q < state_count; ++q)
    if (std::find(allowed.begin(), allowed.end(), q) == allowed.end())
      out = out && UC::exactly(q, 0);
  return out;
}

std::vector<Vertex> all_vertices(const Graph& g) {
  std::vector<Vertex> out(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) out[v] = v;
  return out;
}

std::vector<Vertex> internal_vertices(const Graph& g) {
  std::vector<Vertex> out;
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (g.degree(v) >= 2) out.push_back(v);
  if (out.empty()) return all_vertices(g);  // n <= 2
  return out;
}

}  // namespace

UOPAutomaton aut_path() {
  AutomatonBuilder b;
  const std::size_t P = b.add_state("P", false);   // downward chain
  const std::size_t R = b.add_state("R", true);    // root of the path
  b.set_transition(P, UC::le(P, 1) && zero_outside({P}, 2));
  b.set_transition(R, UC::le(P, 2) && zero_outside({P}, 2));
  return b.build();
}

UOPAutomaton aut_star() {
  AutomatonBuilder b;
  const std::size_t L = b.add_state("L", false);   // pendant leaf
  const std::size_t C = b.add_state("C", true);    // center
  const std::size_t A = b.add_state("A", true);    // leaf chosen as root
  b.set_transition(L, zero_outside({}, 3));
  b.set_transition(C, zero_outside({L}, 3));
  b.set_transition(A, UC::exactly(C, 1) && zero_outside({C}, 3));
  return b.build();
}

UOPAutomaton aut_caterpillar() {
  AutomatonBuilder b;
  const std::size_t L = b.add_state("L", false);   // leg leaf
  const std::size_t S = b.add_state("S", false);   // downward spine
  const std::size_t R = b.add_state("R", true);    // spine vertex chosen as root
  b.set_transition(L, zero_outside({}, 3));
  b.set_transition(S, UC::le(S, 1) && zero_outside({L, S}, 3));
  b.set_transition(R, UC::le(S, 2) && zero_outside({L, S}, 3));
  return b.build();
}

UOPAutomaton aut_max_degree_le(std::size_t d) {
  if (d == 0) throw std::invalid_argument("aut_max_degree_le: d must be >= 1");
  AutomatonBuilder b;
  const std::size_t N = b.add_state("N", false);
  const std::size_t R = b.add_state("R", true);
  b.set_transition(N, UC::le(N, d - 1) && zero_outside({N}, 2));
  b.set_transition(R, UC::le(N, d) && zero_outside({N}, 2));
  return b.build();
}

UOPAutomaton aut_perfect_matching() {
  AutomatonBuilder b;
  const std::size_t M = b.add_state("M", true);   // subtree perfectly matched
  const std::size_t U = b.add_state("U", false);  // root of subtree unmatched
  b.set_transition(M, UC::exactly(U, 1));         // match the unique U child
  b.set_transition(U, UC::exactly(U, 0));         // all children internally matched
  return b.build();
}

UOPAutomaton aut_perfect_code() {
  AutomatonBuilder b;
  const std::size_t B = b.add_state("B", true);   // in the code
  const std::size_t D = b.add_state("D", true);   // dominated by one child
  const std::size_t N = b.add_state("N", false);  // waits for the parent
  b.set_transition(B, zero_outside({N}, 3));                        // children all N
  b.set_transition(D, UC::exactly(B, 1) && zero_outside({B, D}, 3));  // one B, rest D
  b.set_transition(N, zero_outside({D}, 3));                        // children all D
  return b.build();
}

UOPAutomaton aut_radius_le(std::size_t k) {
  AutomatonBuilder b;
  std::vector<std::size_t> h(k + 1);
  for (std::size_t i = 0; i <= k; ++i)
    h[i] = b.add_state("H" + std::to_string(i), true);
  for (std::size_t i = 0; i <= k; ++i) {
    // Children may only use H_0..H_{i-1}.
    UC c = UC::always_true();
    for (std::size_t j = i; j <= k; ++j) c = c && UC::exactly(h[j], 0);
    b.set_transition(h[i], c);
  }
  return b.build();
}

UOPAutomaton aut_independent_set_ge(std::size_t c) {
  if (c == 0) throw std::invalid_argument("aut_independent_set_ge: c must be >= 1");
  // State (A, B): A = min(c, max IS of the subtree containing the root),
  // B = min(c, max IS avoiding the root). Recurrences over children (a_i,b_i):
  //   A = min(c, 1 + sum b_i),   B = min(c, sum max(a_i, b_i)).
  // Every subtree has A >= 1, so reachable states have 1 <= A <= c, 0 <= B <= c.
  AutomatonBuilder bld;
  const std::size_t states = c * (c + 1);
  auto sid = [c](std::size_t a, std::size_t b) { return (a - 1) * (c + 1) + b; };
  std::vector<std::size_t> p(states), q(states);  // per-child contributions
  for (std::size_t a = 1; a <= c; ++a)
    for (std::size_t b = 0; b <= c; ++b) {
      const std::size_t s =
          bld.add_state("(" + std::to_string(a) + "," + std::to_string(b) + ")",
                        std::max(a, b) >= c);
      p[s] = b;               // contribution to sum b_i
      q[s] = std::max(a, b);  // contribution to sum max(a_i, b_i)
      (void)sid;
    }

  // Builds the transition constraint for target state (A, B).
  auto transition_for = [&](std::size_t A, std::size_t B) {
    UC out = UC::always_false();
    if (B < c) {
      // sum q y == B exactly: q >= 1 for every reachable state, so every
      // child is pinned; enumerate all exact vectors.
      std::vector<std::size_t> y(states, 0);
      auto rec = [&](auto&& self, std::size_t s, std::size_t left_q) -> void {
        if (s == states) {
          if (left_q != 0) return;
          std::size_t s1 = 0;
          for (std::size_t i = 0; i < states; ++i) s1 += p[i] * y[i];
          const bool ok_a = (A < c) ? (s1 == A - 1) : (s1 >= c - 1);
          if (!ok_a) return;
          UC box = UC::always_true();
          for (std::size_t i = 0; i < states; ++i) box = box && UC::exactly(i, y[i]);
          out = out || box;
          return;
        }
        for (std::size_t cnt = 0; cnt * q[s] <= left_q; ++cnt) {
          y[s] = cnt;
          self(self, s + 1, left_q - cnt * q[s]);
          if (q[s] == 0) break;  // unreachable (q >= 1), defensive
        }
        y[s] = 0;
      };
      rec(rec, 0, B);
      return out;
    }
    // B == c: sum q y >= c (monotone).
    if (A < c) {
      // sum p y == A-1 exactly: pin the p>0 states; the p==0 states only
      // need a minimal q-cover of what is left, with no upper bound.
      std::vector<std::size_t> contributors, free_states;
      for (std::size_t s = 0; s < states; ++s)
        (p[s] > 0 ? contributors : free_states).push_back(s);
      std::vector<std::size_t> y(states, 0);
      auto rec_free = [&](auto&& self, std::size_t idx, std::size_t need_q) -> void {
        if (need_q == 0) {
          UC box = UC::always_true();
          for (std::size_t s : contributors) box = box && UC::exactly(s, y[s]);
          for (std::size_t s : free_states) box = box && UC::ge(s, y[s]);
          out = out || box;
          return;
        }
        if (idx == free_states.size()) return;
        const std::size_t s = free_states[idx];
        // Minimality: take just enough of state s (0..ceil(need/q)).
        for (std::size_t cnt = 0; ; ++cnt) {
          y[s] = cnt;
          const std::size_t covered = cnt * q[s];
          self(self, idx + 1, covered >= need_q ? 0 : need_q - covered);
          if (covered >= need_q) break;
        }
        y[s] = 0;
      };
      auto rec_pinned = [&](auto&& self, std::size_t idx, std::size_t left_p) -> void {
        if (idx == contributors.size()) {
          if (left_p != 0) return;
          std::size_t covered = 0;
          for (std::size_t s : contributors) covered += q[s] * y[s];
          rec_free(rec_free, 0, covered >= c ? 0 : c - covered);
          return;
        }
        const std::size_t s = contributors[idx];
        for (std::size_t cnt = 0; cnt * p[s] <= left_p; ++cnt) {
          y[s] = cnt;
          self(self, idx + 1, left_p - cnt * p[s]);
        }
        y[s] = 0;
      };
      rec_pinned(rec_pinned, 0, A - 1);
      return out;
    }
    // A == c and B == c: both sums are thresholds; enumerate minimal joint
    // covers (entries never exceed c per sum) and leave them open above.
    std::vector<std::size_t> y(states, 0);
    auto emit_if_minimal = [&]() {
      std::size_t s1 = 0, s2 = 0;
      for (std::size_t s = 0; s < states; ++s) {
        s1 += p[s] * y[s];
        s2 += q[s] * y[s];
      }
      if (s1 + 1 < c || s2 < c) return;
      // Minimal: removing one child anywhere breaks a constraint.
      for (std::size_t s = 0; s < states; ++s) {
        if (y[s] == 0) continue;
        if (s1 - p[s] + 1 >= c && s2 - q[s] >= c) return;  // not minimal
      }
      UC box = UC::always_true();
      for (std::size_t s = 0; s < states; ++s) box = box && UC::ge(s, y[s]);
      out = out || box;
    };
    auto rec = [&](auto&& self, std::size_t s) -> void {
      if (s == states) {
        emit_if_minimal();
        return;
      }
      for (std::size_t cnt = 0; cnt <= c; ++cnt) {  // > c per state never minimal
        y[s] = cnt;
        self(self, s + 1);
      }
      y[s] = 0;
    };
    rec(rec, 0);
    return out;
  };

  for (std::size_t A = 1; A <= c; ++A)
    for (std::size_t B = 0; B <= c; ++B)
      bld.set_transition(sid(A, B), transition_for(A, B));
  return bld.build();
}

UOPAutomaton aut_leaf_count_ge(std::size_t c) {
  if (c == 0) throw std::invalid_argument("aut_leaf_count_ge: c must be >= 1");
  AutomatonBuilder b;
  // K_j = "subtree contains exactly j leaves" for j < c, K_c = ">= c leaves".
  std::vector<std::size_t> K(c + 1);
  for (std::size_t j = 0; j <= c; ++j)
    K[j] = b.add_state("K" + std::to_string(j), j == c);
  const std::size_t A = b.add_state("A", true);  // leaf chosen as root

  // Enumerate child-count boxes realizing a given (possibly capped) leaf sum.
  // Children in K_0 contribute nothing and are unconstrained; a child in K_j
  // contributes j. "sum == s" with s < c: finitely many compositions since
  // every contributing child adds >= 1.
  auto sum_eq = [&](std::size_t s) {
    // Recursively enumerate y_{K_1}..y_{K_c} with sum of i*y_i == s.
    UC out = UC::always_false();
    std::vector<std::size_t> counts(c + 1, 0);
    auto emit = [&]() {
      UC box = UC::always_true();
      for (std::size_t j = 1; j <= c; ++j) box = box && UC::exactly(K[j], counts[j]);
      box = box && UC::exactly(A, 0);
      out = out || box;
    };
    auto rec = [&](auto&& self, std::size_t j, std::size_t left) -> void {
      if (j > c) {
        if (left == 0) emit();
        return;
      }
      for (std::size_t y = 0; y * j <= left; ++y) {
        counts[j] = y;
        self(self, j + 1, left - y * j);
      }
      counts[j] = 0;
    };
    rec(rec, 1, s);
    return out;
  };

  // K_0: internal node, no leaves below: children all K_0 (and none is A);
  // a childless node is a leaf, not K_0, so require >= 1 child.
  {
    UC internal = UC::always_true();
    for (std::size_t j = 1; j <= c; ++j) internal = internal && UC::exactly(K[j], 0);
    internal = internal && UC::exactly(A, 0) && UC::ge(K[0], 1);
    b.set_transition(K[0], internal);
  }
  // K_j for 0 < j < c: either a leaf itself (j == 1, zero children) or an
  // internal node whose children sum to j.
  for (std::size_t j = 1; j < c; ++j) {
    UC t = sum_eq(j) && UC::ge(K[0], 0);
    if (j == 1) {
      UC leaf = UC::always_true();
      for (std::size_t q = 0; q <= c; ++q) leaf = leaf && UC::exactly(K[q], 0);
      leaf = leaf && UC::exactly(A, 0);
      t = t || leaf;
    }
    // Exclude the all-zero-children case for internal reading when j >= 2 is
    // automatic (sum j >= 2 forces a contributing child). For j == 1 the
    // sum_eq(1) box requires one K_1 child, distinct from the leaf box.
    b.set_transition(K[j], t);
  }
  // K_c: sum >= c. Equivalent to NOT(sum == 0..c-1), computed directly:
  // there is a multiset of children whose contributions reach c; since
  // contributions cap at c, "sum >= c" == OR over compositions of c where the
  // last coordinate may exceed (use >= on one coordinate). Simplest exact
  // form: negate the union of sum_eq(0..c-1) *and* require no A child and not
  // a childless leaf (a leaf is K_1).
  {
    UC small = UC::always_false();
    for (std::size_t s = 0; s < c; ++s) small = small || sum_eq(s);
    // childless: all counts zero — that's sum_eq(0) with zero K_0 children;
    // sum_eq(0) already covers it (all counts zero boxes include y_{K_0}
    // unconstrained... note sum_eq fixes only K_1..K_c and A; K_0 free), so a
    // leaf (all children counts 0) satisfies sum_eq(0) and is excluded from
    // K_c here, as desired — c >= 1 and a leaf has exactly 1 leaf (it may use
    // K_1; for c == 1, K_1 == K_c accepts via the leaf box added below).
    UC t = (!small) && UC::exactly(A, 0);
    if (c == 1) {
      UC leaf = UC::always_true();
      for (std::size_t q = 0; q <= c; ++q) leaf = leaf && UC::exactly(K[q], 0);
      leaf = leaf && UC::exactly(A, 0);
      t = t || leaf;
    }
    b.set_transition(K[c], t);
  }
  // A: a leaf used as root; its single child's subtree must contain the other
  // c-1 leaves (or more).
  {
    UC t = UC::always_false();
    if (c >= 2) {
      UC box = UC::exactly(K[c - 1], 1);
      for (std::size_t j = 0; j <= c; ++j)
        if (j != c - 1) box = box && UC::exactly(K[j], 0);
      t = t || (box && UC::exactly(A, 0));
    }
    UC box_full = UC::exactly(K[c], 1);
    for (std::size_t j = 0; j < c; ++j) box_full = box_full && UC::exactly(K[j], 0);
    t = t || (box_full && UC::exactly(A, 0));
    b.set_transition(A, t);
  }
  return b.build();
}

namespace {

bool oracle_path(const Graph& t) {
  for (Vertex v = 0; v < t.vertex_count(); ++v)
    if (t.degree(v) > 2) return false;
  return true;
}

bool oracle_star(const Graph& t) {
  const std::size_t n = t.vertex_count();
  if (n <= 2) return true;
  std::size_t centers = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (t.degree(v) == n - 1)
      ++centers;
    else if (t.degree(v) != 1)
      return false;
  }
  return centers == 1;
}

bool oracle_caterpillar(const Graph& t) {
  // Remove leaves; remainder must be empty or a path.
  std::vector<Vertex> keep;
  for (Vertex v = 0; v < t.vertex_count(); ++v)
    if (t.degree(v) >= 2) keep.push_back(v);
  if (keep.empty()) return true;
  const Graph spine = t.induced(keep);
  if (!spine.is_connected()) return false;
  return oracle_path(spine);
}

bool oracle_max_degree_3(const Graph& t) {
  for (Vertex v = 0; v < t.vertex_count(); ++v)
    if (t.degree(v) > 3) return false;
  return true;
}

bool oracle_perfect_matching(const Graph& t) {
  // Greedy from the leaves is optimal on trees.
  const std::size_t n = t.vertex_count();
  if (n % 2 != 0) return false;
  std::vector<bool> matched(n, false), removed(n, false);
  std::vector<std::size_t> degree(n);
  std::vector<Vertex> leaves;
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = t.degree(v);
    if (degree[v] <= 1) leaves.push_back(v);
  }
  std::size_t pairs = 0;
  while (!leaves.empty()) {
    const Vertex v = leaves.back();
    leaves.pop_back();
    if (removed[v]) continue;
    removed[v] = true;
    if (matched[v]) continue;
    // v must match its unique remaining neighbor.
    Vertex partner = SIZE_MAX;
    for (Vertex w : t.neighbors(v))
      if (!removed[w]) {
        partner = w;
        break;
      }
    if (partner == SIZE_MAX) return false;  // unmatched isolated leaf
    matched[v] = matched[partner] = true;
    removed[partner] = true;
    ++pairs;
    for (Vertex w : t.neighbors(partner))
      if (!removed[w] && --degree[w] == 1) leaves.push_back(w);
  }
  return pairs * 2 == n;
}

bool oracle_perfect_code(const Graph& t) {
  const std::size_t n = t.vertex_count();
  if (n <= 16) {
    // Exhaustive reference for small trees (exercised against the DP below by
    // the automata tests).
    for (std::uint64_t code = 0; code < (std::uint64_t{1} << n); ++code) {
      bool ok = true;
      for (Vertex v = 0; v < n && ok; ++v) {
        std::size_t dominators = (code >> v) & 1u;
        for (Vertex w : t.neighbors(v)) dominators += (code >> w) & 1u;
        ok = dominators == 1;
      }
      if (ok) return true;
    }
    return false;
  }
  // Tree DP: can[v][s] for s in {in-code, dominated-by-child, needs-parent}.
  const RootedTree rt = RootedTree::from_graph(t, 0);
  const auto order = rt.preorder();
  std::vector<std::array<bool, 3>> can(n, {false, false, false});
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = *it;
    bool all_needs_parent = true;   // every child in state 2
    bool all_dominated = true;      // every child in state 1
    std::size_t ways_one_in_code = 0;
    for (std::size_t ch : rt.children(v)) {
      all_needs_parent = all_needs_parent && can[ch][2];
      all_dominated = all_dominated && can[ch][1];
    }
    // state 1 needs exactly one child in code, the others dominated.
    for (std::size_t ch : rt.children(v)) {
      if (!can[ch][0]) continue;
      bool rest_ok = true;
      for (std::size_t other : rt.children(v))
        if (other != ch && !can[other][1]) rest_ok = false;
      if (rest_ok) ++ways_one_in_code;
    }
    can[v][0] = all_needs_parent;
    can[v][1] = ways_one_in_code >= 1;
    can[v][2] = all_dominated;
  }
  return can[rt.root()][0] || can[rt.root()][1];
}

constexpr std::size_t kRadiusBound = 3;

// On a tree, radius = ceil(diameter / 2), and the centers are the midpoints
// of any diameter path — both computable with two BFS passes.
std::size_t tree_radius(const Graph& t) {
  const auto d0 = t.bfs_distances(0);
  Vertex far = 0;
  for (Vertex v = 0; v < t.vertex_count(); ++v)
    if (d0[v] > d0[far]) far = v;
  const auto d1 = t.bfs_distances(far);
  std::size_t diameter = 0;
  for (std::size_t d : d1) diameter = std::max(diameter, d);
  return (diameter + 1) / 2;
}

bool oracle_radius_le_3(const Graph& t) { return tree_radius(t) <= kRadiusBound; }

constexpr std::size_t kLeafBound = 4;

bool oracle_leaf_count_ge_4(const Graph& t) {
  std::size_t leaves = 0;
  for (Vertex v = 0; v < t.vertex_count(); ++v)
    if (t.degree(v) <= 1) ++leaves;
  return leaves >= kLeafBound;
}

std::vector<Vertex> roots_all(const Graph& g) { return all_vertices(g); }
std::vector<Vertex> roots_internal(const Graph& g) { return internal_vertices(g); }

std::vector<Vertex> roots_centers(const Graph& g) {
  // Centers of a tree = midpoints of a diameter path (double BFS, O(n)).
  const auto d0 = g.bfs_distances(0);
  Vertex a = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (d0[v] > d0[a]) a = v;
  const auto d1 = g.bfs_distances(a);
  Vertex b = a;
  for (Vertex v = 0; v < g.vertex_count(); ++v)
    if (d1[v] > d1[b]) b = v;
  const std::size_t diameter = d1[b];
  // Walk back from b toward a collecting the middle vertex (or two).
  std::vector<Vertex> centers;
  Vertex cur = b;
  std::size_t walked = 0;
  while (true) {
    if (walked == diameter / 2 || walked == (diameter + 1) / 2)
      if (centers.empty() || centers.back() != cur) centers.push_back(cur);
    if (d1[cur] == 0) break;
    for (Vertex w : g.neighbors(cur))
      if (d1[w] + 1 == d1[cur]) {
        cur = w;
        break;
      }
    ++walked;
  }
  return centers;
}

}  // namespace

std::vector<NamedAutomaton> standard_tree_automata() {
  return {
      {"path", aut_path(), &oracle_path, &roots_all, RootPolicy::kAllVertices},
      {"star", aut_star(), &oracle_star, &roots_all, RootPolicy::kAllVertices},
      {"caterpillar", aut_caterpillar(), &oracle_caterpillar, &roots_internal,
       RootPolicy::kInternalVertices},
      {"max-degree<=3", aut_max_degree_le(3), &oracle_max_degree_3, &roots_all,
       RootPolicy::kAllVertices},
      {"perfect-matching", aut_perfect_matching(), &oracle_perfect_matching, &roots_all,
       RootPolicy::kAllVertices},
      {"perfect-code", aut_perfect_code(), &oracle_perfect_code, &roots_all,
       RootPolicy::kAllVertices},
      {"radius<=3", aut_radius_le(kRadiusBound), &oracle_radius_le_3, &roots_centers,
       RootPolicy::kGeneric},
      {"leaves>=4", aut_leaf_count_ge(kLeafBound), &oracle_leaf_count_ge_4, &roots_all,
       RootPolicy::kAllVertices},
  };
}

}  // namespace lcert
