// Unary ordering Presburger (UOP) tree automata, the machinery behind
// Theorem 2.2.
//
// By Proposition 8 of [7], a set of unordered, unranked, node-labeled rooted
// trees is MSO-definable iff it is recognized by such an automaton: the
// transition relation maps (state q, label L) to a unary Presburger
// constraint over the multiset of children states; a run is accepting when
// every vertex's configuration is correct and the root carries an accepting
// state. The MSO -> automaton translation of [7] is non-constructive /
// non-elementary; per DESIGN.md §5 the library ships hand-compiled automata
// (src/automata/library.*) that are property-tested against the brute-force
// MSO evaluator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/automata/presburger.hpp"
#include "src/graph/rooted_tree.hpp"

namespace lcert {

/// A UOP tree automaton A = (Q, Lambda, delta, F).
struct UOPAutomaton {
  std::size_t state_count = 0;
  std::size_t label_count = 1;  ///< node labels (1 for plain trees)
  std::vector<std::string> state_names;
  std::vector<bool> accepting;
  /// delta[q * label_count + label] = constraint over children-state counts.
  std::vector<UnaryConstraint> delta;

  const UnaryConstraint& transition(std::size_t state, std::size_t label = 0) const;

  /// Sanity: sizes agree, at least one state.
  void validate() const;
};

/// Convenience builder.
class AutomatonBuilder {
 public:
  explicit AutomatonBuilder(std::size_t label_count = 1) : label_count_(label_count) {}

  /// Adds a state; returns its index. Transition defaults to always_false.
  std::size_t add_state(std::string name, bool accepting);

  /// Sets delta(state, label).
  void set_transition(std::size_t state, UnaryConstraint c, std::size_t label = 0);

  UOPAutomaton build() const;

 private:
  std::size_t label_count_;
  std::vector<std::string> names_;
  std::vector<bool> accepting_;
  std::vector<std::optional<UnaryConstraint>> delta_;
};

/// A run: a state per tree vertex.
using Run = std::vector<std::size_t>;

/// Checks that `run` is an accepting run of `a` on `t` (labels optional;
/// defaults to all-zero labels).
bool is_accepting_run(const UOPAutomaton& a, const RootedTree& t, const Run& run,
                      const std::vector<std::size_t>* labels = nullptr);

/// Decides whether an accepting run exists and returns one if so.
/// Bottom-up feasible-state computation; the per-vertex assignment problem
/// ("can children pick states from their feasible sets so the counts land in
/// one of the constraint's interval boxes?") is solved as a bounded-flow
/// feasibility problem.
std::optional<Run> find_accepting_run(const UOPAutomaton& a, const RootedTree& t,
                                      const std::vector<std::size_t>* labels = nullptr);

/// Language membership.
inline bool accepts(const UOPAutomaton& a, const RootedTree& t,
                    const std::vector<std::size_t>* labels = nullptr) {
  return find_accepting_run(a, t, labels).has_value();
}

/// Building block for the memoized batch prover (MsoTreeScheme::prove_batch):
/// the per-vertex assignment problem of find_accepting_run, taken over
/// feasibility *masks* — bit q of child_masks[i] is set iff state q is
/// feasible at the i-th child (requires state_count <= 64). Decides whether
/// the children can pick states from their feasible sets so the counts land
/// in `box`; on success writes each child's chosen state into `assignment`.
///
/// Contract: builds the exact same bounded-flow problem, in the exact same
/// node/edge insertion order, as the solver inside find_accepting_run — so
/// the extracted assignment (which is whatever the flow solver picks, and
/// therefore sensitive to edge order) is identical. This is what lets the
/// memoized prover cache assignments by (ordered child shapes, parent state)
/// and still reproduce find_accepting_run's output bit-for-bit.
bool uop_assign_children_masked(std::span<const std::uint64_t> child_masks,
                                const IntervalBox& box, std::size_t state_count,
                                std::vector<std::size_t>& assignment);

}  // namespace lcert
