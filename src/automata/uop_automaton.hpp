// Unary ordering Presburger (UOP) tree automata, the machinery behind
// Theorem 2.2.
//
// By Proposition 8 of [7], a set of unordered, unranked, node-labeled rooted
// trees is MSO-definable iff it is recognized by such an automaton: the
// transition relation maps (state q, label L) to a unary Presburger
// constraint over the multiset of children states; a run is accepting when
// every vertex's configuration is correct and the root carries an accepting
// state. The MSO -> automaton translation of [7] is non-constructive /
// non-elementary; per DESIGN.md §5 the library ships hand-compiled automata
// (src/automata/library.*) that are property-tested against the brute-force
// MSO evaluator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/automata/presburger.hpp"
#include "src/graph/rooted_tree.hpp"
#include "src/util/flow.hpp"

namespace lcert {

/// A UOP tree automaton A = (Q, Lambda, delta, F).
struct UOPAutomaton {
  std::size_t state_count = 0;
  std::size_t label_count = 1;  ///< node labels (1 for plain trees)
  std::vector<std::string> state_names;
  std::vector<bool> accepting;
  /// delta[q * label_count + label] = constraint over children-state counts.
  std::vector<UnaryConstraint> delta;

  const UnaryConstraint& transition(std::size_t state, std::size_t label = 0) const;

  /// Sanity: sizes agree, at least one state.
  void validate() const;
};

/// Convenience builder.
class AutomatonBuilder {
 public:
  explicit AutomatonBuilder(std::size_t label_count = 1) : label_count_(label_count) {}

  /// Adds a state; returns its index. Transition defaults to always_false.
  std::size_t add_state(std::string name, bool accepting);

  /// Sets delta(state, label).
  void set_transition(std::size_t state, UnaryConstraint c, std::size_t label = 0);

  UOPAutomaton build() const;

 private:
  std::size_t label_count_;
  std::vector<std::string> names_;
  std::vector<bool> accepting_;
  std::vector<std::optional<UnaryConstraint>> delta_;
};

/// A run: a state per tree vertex.
using Run = std::vector<std::size_t>;

/// Checks that `run` is an accepting run of `a` on `t` (labels optional;
/// defaults to all-zero labels).
bool is_accepting_run(const UOPAutomaton& a, const RootedTree& t, const Run& run,
                      const std::vector<std::size_t>* labels = nullptr);

/// Decides whether an accepting run exists and returns one if so.
/// Bottom-up feasible-state computation; the per-vertex assignment problem
/// ("can children pick states from their feasible sets so the counts land in
/// one of the constraint's interval boxes?") is solved as a bounded-flow
/// feasibility problem.
std::optional<Run> find_accepting_run(const UOPAutomaton& a, const RootedTree& t,
                                      const std::vector<std::size_t>* labels = nullptr);

/// Language membership.
inline bool accepts(const UOPAutomaton& a, const RootedTree& t,
                    const std::vector<std::size_t>* labels = nullptr) {
  return find_accepting_run(a, t, labels).has_value();
}

/// Building block for the memoized batch prover (MsoTreeScheme::prove_batch):
/// the per-vertex assignment problem of find_accepting_run, taken over
/// feasibility *masks* — bit q of child_masks[i] is set iff state q is
/// feasible at the i-th child (requires state_count <= 64). Decides whether
/// the children can pick states from their feasible sets so the counts land
/// in `box`; on success writes each child's chosen state into `assignment`.
///
/// Contract: builds the exact same bounded-flow problem, in the exact same
/// node/edge insertion order, as the solver inside find_accepting_run — so
/// the extracted assignment (which is whatever the flow solver picks, and
/// therefore sensitive to edge order) is identical. This is what lets the
/// memoized prover cache assignments by (ordered child shapes, parent state)
/// and still reproduce find_accepting_run's output bit-for-bit.
bool uop_assign_children_masked(std::span<const std::uint64_t> child_masks,
                                const IntervalBox& box, std::size_t state_count,
                                std::vector<std::size_t>& assignment);

/// Fast-path tier ceiling for the feasibility *decision* (DESIGN.md §12).
/// 0 = cold Dinic per query (the pre-tier reference path), 1 = + greedy /
/// combinatorial pre-checks, 2 = + warm-started flow (structure reused across
/// the boxes and states queried at one vertex). Tiers change only how fast a
/// query resolves, never its answer.
inline constexpr int kFeasTierFlowOnly = 0;
inline constexpr int kFeasTierGreedy = 1;
inline constexpr int kFeasTierWarm = 2;
inline constexpr int kFeasTierDefault = kFeasTierWarm;

/// How many queries each tier resolved. "warm" vs "flow" splits the flow
/// fallback by whether the scratch network was rebuilt for this vertex
/// (first flow query after begin(): flow) or reused (every later one: warm).
/// Classification depends only on the query sequence at a vertex, so totals
/// are thread-count invariant when the per-vertex sequence is.
struct FeasTierCounts {
  std::uint64_t greedy = 0;
  std::uint64_t warm = 0;
  std::uint64_t flow = 0;

  FeasTierCounts& operator+=(const FeasTierCounts& o) {
    greedy += o.greedy;
    warm += o.warm;
    flow += o.flow;
    return *this;
  }
};

/// Tiered decision engine for the per-vertex assignment problem: answers
/// "can the children pick states from their masks so the counts land in
/// `box`?" with the exact boolean of uop_assign_children_masked, resolving
/// through the cheapest conclusive tier:
///
///   tier 1  greedy/combinatorial — unit (unconstrained) boxes, per-state
///           supply vs lower-bound demand, Hall checks on the bounded and
///           demanded state sets, and a most-constrained-first greedy witness;
///           conclusive answers only, falls through when inconclusive;
///   tier 2  warm flow — one DinicScratch circulation per vertex whose
///           structure (child->state edges) is built on the first flow query
///           and re-bounded in place for every later box/state at the vertex;
///   tier 0  cold flow — the pristine BoundedFlowProblem build, used when
///           tier_max disables the tiers above (differential testing).
///
/// One instance is per-worker scratch: zero steady-state allocations once
/// warm, not thread-safe. It never produces assignments — extraction goes
/// through uop_assign_children_masked on the box this engine said is
/// feasible, so certificates stay bit-identical to the untiered path.
class UopFeasibility {
 public:
  explicit UopFeasibility(int tier_max = kFeasTierDefault) : tier_max_(tier_max) {}

  /// Tier ceiling (clamped to [0, 2]); see kFeasTier* above.
  void set_tier_max(int tier_max) { tier_max_ = tier_max; }
  int tier_max() const noexcept { return tier_max_; }

  /// Starts a new vertex: the child feasibility masks every following
  /// feasible() call is judged against. Copies the masks; also invalidates
  /// the warm flow structure so warm/flow accounting restarts per vertex.
  void begin(std::span<const std::uint64_t> child_masks, std::size_t state_count);

  /// Decision for one interval box at the current vertex. Exact: same boolean
  /// as uop_assign_children_masked(child_masks, box, state_count, ...).
  bool feasible(const IntervalBox& box);

  const FeasTierCounts& counts() const noexcept { return counts_; }

 private:
  enum class Verdict { kFeasible, kInfeasible, kInconclusive };

  Verdict greedy_decide(const IntervalBox& box);
  bool flow_decide(const IntervalBox& box);
  void build_flow_structure();

  int tier_max_;
  FeasTierCounts counts_;

  // Current vertex.
  std::vector<std::uint64_t> masks_;  ///< truncated to state_count bits
  std::size_t state_count_ = 0;

  // Greedy-tier scratch.
  std::vector<std::int64_t> cap_;         ///< per state: min(hi, m), m for unbounded
  std::vector<std::uint64_t> eff_;        ///< per child: mask & usable states
  std::vector<std::size_t> supply_;       ///< per state: children able to take it
  std::vector<std::size_t> order_;        ///< children, most-constrained first
  std::vector<std::size_t> greedy_count_; ///< per demand-subset: sum of lower bounds
  std::vector<std::size_t> hall_count_;   ///< per demand-subset histogram / zeta

  // Warm-flow-tier scratch (tier 2).
  DinicScratch net_;
  bool net_built_ = false;
  std::vector<std::size_t> state_sink_edge_;  ///< per state: state->sink slot
  std::vector<std::size_t> state_super_edge_; ///< per state: state->super-sink slot
  std::size_t super_child_sink_edge_ = 0;     ///< super-source->sink slot
  // Cold-flow-tier scratch (tier 0 fallback), reused across calls.
  std::vector<std::int64_t> cold_flow_;
  std::vector<std::size_t> cold_assignment_;
};

}  // namespace lcert
